package mergepath_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// End-to-end smoke tests: every command-line tool must run to completion
// with tiny inputs and print its table. These compile and execute the real
// binaries via `go run`, so they take a few seconds; skipped under -short.
func runTool(t *testing.T, args ...string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("e2e tool runs are skipped in short mode")
	}
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%v failed: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestMergebenchE2E(t *testing.T) {
	out := runTool(t, "./cmd/mergebench", "-experiment", "balance", "-sizes", "4K", "-reps", "1")
	if !strings.Contains(out, "merge path") || !strings.Contains(out, "shiloach-vishkin") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestMergebenchE2EBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e tool runs are skipped in short mode")
	}
	cmd := exec.Command("go", "run", "./cmd/mergebench", "-experiment", "nope", "-sizes", "1K", "-reps", "1")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("unknown experiment should fail:\n%s", out)
	}
	cmd = exec.Command("go", "run", "./cmd/mergebench", "-sizes", "bogus")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("bad sizes should fail:\n%s", out)
	}
}

func TestSortbenchE2E(t *testing.T) {
	out := runTool(t, "./cmd/sortbench", "-experiment", "external", "-sizes", "16K")
	if !strings.Contains(out, "external merge sort") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestCachesimE2E(t *testing.T) {
	out := runTool(t, "./cmd/cachesim", "-experiment", "private", "-elements", "4096")
	if !strings.Contains(out, "coherence traffic") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestCrewcheckE2E(t *testing.T) {
	out := runTool(t, "./cmd/crewcheck", "-elements", "2048")
	if !strings.Contains(out, "CREW conformance: PASS") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestPathvizE2E(t *testing.T) {
	out := runTool(t, "./cmd/pathviz", "-a", "1,3,5", "-b", "2,4", "-p", "2")
	if !strings.Contains(out, "Merge matrix") || !strings.Contains(out, "merged: [1 2 3 4 5]") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestMergeloadE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e tool runs are skipped in short mode")
	}
	jsonPath := filepath.Join(t.TempDir(), "BENCH_server.json")
	out := runTool(t, "./cmd/mergeload",
		"-duration", "400ms", "-warmup", "100ms", "-conc", "4", "-size", "64",
		"-json", jsonPath)
	if !strings.Contains(out, "self-serving") || !strings.Contains(out, "TOTAL") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	buf, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("mergeload -json wrote nothing: %v", err)
	}
	// Latencies ride the wire in float milliseconds (`_ms`, the repo's
	// JSON unit policy — docs/METRICS.md); the document also carries the
	// per-stage span histograms and the round load-imbalance summary.
	for _, key := range []string{`"req_per_s"`, `"p99_ms"`, `"server_metrics"`, `"stages"`, `"imbalance"`} {
		if !strings.Contains(string(buf), key) {
			t.Errorf("BENCH_server.json missing %s", key)
		}
	}
	if strings.Contains(string(buf), "_ns\"") {
		t.Error("BENCH_server.json still carries raw nanosecond fields; wire unit is milliseconds")
	}
}
