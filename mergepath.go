// Package mergepath is a Go implementation of "Merge Path — Parallel
// Merging Made Simple" (Odeh, Green, Mwassi, Shmueli, Birk; IPPS 2012
// workshops): merging and sorting parallelized by partitioning the merge
// path of two sorted arrays at equispaced cross diagonals, each partition
// point found with an O(log min(|A|,|B|)) binary search.
//
// The package exposes the library's public surface; the implementation
// lives in internal/ subpackages (core, spm, psort, kway) alongside the
// paper's baselines and the reproduction substrates (cache simulator,
// CREW-PRAM checker). See README.md for the map and DESIGN.md /
// EXPERIMENTS.md for the reproduction itself.
//
// All merges and sorts here are stable: equal elements keep their relative
// order, with ties between the two merge inputs resolved in favour of the
// first.
package mergepath

import (
	"cmp"

	"mergepath/internal/batch"
	"mergepath/internal/core"
	"mergepath/internal/kway"
	"mergepath/internal/psort"
	"mergepath/internal/setops"
	"mergepath/internal/spm"
)

// Point is a co-rank pair on the merge grid: crossing the merge path here,
// A elements of the first array and B of the second have been consumed.
// Point{}.Diagonal() == A+B is the output rank of the crossing.
type Point = core.Point

// SearchDiagonal finds where the merge path of a and b crosses cross
// diagonal k (0 <= k <= len(a)+len(b)): the returned point splits the
// merged output into its first k elements (a[:pt.A] and b[:pt.B]) and the
// rest. It runs in O(log min(len(a), len(b), k)) comparisons and never
// materializes anything (Theorem 14 of the paper). As a selection
// primitive it answers "what is the k-th smallest of the union?" without
// merging; see examples/topk.
func SearchDiagonal[T cmp.Ordered](a, b []T, k int) Point {
	return core.SearchDiagonal(a, b, k)
}

// Partition splits the merge of a and b into p contiguous, independent,
// load-balanced jobs (segment lengths differ by at most one element). It
// returns p+1 boundary points; job i merges a[b[i].A:b[i+1].A] with
// b[b[i].B:b[i+1].B] into output positions [b[i].Diagonal(),
// b[i+1].Diagonal()). Cost: p-1 independent diagonal searches.
func Partition[T cmp.Ordered](a, b []T, p int) []Point {
	return core.Partition(a, b, p)
}

// Merge merges sorted slices a and b into out sequentially.
// len(out) must equal len(a)+len(b).
func Merge[T cmp.Ordered](a, b, out []T) {
	core.Merge(a, b, out)
}

// MergeFunc is Merge under a caller-supplied strict weak ordering;
// less(x, y) reports whether x must sort before y.
func MergeFunc[T any](a, b, out []T, less func(x, y T) bool) {
	core.MergeFunc(a, b, out, less)
}

// ParallelMerge merges sorted a and b into out with p goroutines
// (Algorithm 1 of the paper): lock-free, load-balanced, no inter-worker
// communication; the only synchronization is the final barrier.
func ParallelMerge[T cmp.Ordered](a, b, out []T, p int) {
	core.ParallelMerge(a, b, out, p)
}

// ParallelMergeFunc is ParallelMerge under a caller-supplied ordering.
func ParallelMergeFunc[T any](a, b, out []T, p int, less func(x, y T) bool) {
	core.ParallelMergeFunc(a, b, out, p, less)
}

// SegmentedConfig configures SegmentedMerge. Window is the paper's L
// (output elements per iteration; choose cacheElements/3); Workers is p.
// Zero values select spm defaults.
type SegmentedConfig = spm.Config

// SegmentedStats reports what a segmented merge did.
type SegmentedStats = spm.Stats

// SegmentedMerge is the cache-efficient merge of the paper's Algorithm 2:
// the merge proceeds in windows of cfg.Window output elements, staging
// only a window of each input at a time, so at most 3*Window elements are
// live at any instant regardless of input size.
func SegmentedMerge[T cmp.Ordered](a, b, out []T, cfg SegmentedConfig) SegmentedStats {
	return spm.Merge(a, b, out, cfg)
}

// Sort sorts s with p goroutines using parallel merge sort (§III of the
// paper): p sequential chunk sorts, then log2(p) rounds of parallel
// merge-path merges so every round uses all p workers. Stable.
func Sort[T cmp.Ordered](s []T, p int) {
	psort.Sort(s, p)
}

// SortFunc is Sort under a caller-supplied ordering. Stable.
func SortFunc[T any](s []T, p int, less func(x, y T) bool) {
	psort.SortFunc(s, p, less)
}

// CacheEfficientSort sorts s with p workers while keeping every phase's
// working set within cacheElems elements (§IV.C): cache-sized blocks are
// sorted one at a time, then merged with SegmentedMerge.
func CacheEfficientSort[T cmp.Ordered](s []T, cacheElems, p int) {
	psort.CacheEfficientSort(s, cacheElems, p)
}

// MergeK merges k sorted lists into one sorted slice using a binary tree
// of parallel merge-path merges with p workers per round. Stable across
// lists (ties ordered by list index).
func MergeK[T cmp.Ordered](lists [][]T, p int) []T {
	return kway.Merge(lists, p)
}

// SegmentedMergeFunc is SegmentedMerge under a caller-supplied ordering.
func SegmentedMergeFunc[T any](a, b, out []T, cfg SegmentedConfig, less func(x, y T) bool) SegmentedStats {
	return spm.MergeFunc(a, b, out, cfg, less)
}

// MergeKFunc is MergeK under a caller-supplied ordering.
func MergeKFunc[T any](lists [][]T, p int, less func(x, y T) bool) []T {
	return kway.MergeFunc(lists, p, less)
}

// HierarchicalConfig shapes HierarchicalMerge: Blocks coarse segments, each
// merged by TeamSize cooperating workers.
type HierarchicalConfig = core.HierarchicalConfig

// HierarchicalMerge is the two-level refinement of ParallelMerge used by
// the technique's GPU descendants (ModernGPU/Thrust/CUB): a coarse global
// partition into blocks, then cheap local diagonal searches within each
// block. Equivalent output to ParallelMerge; different cost structure.
func HierarchicalMerge[T cmp.Ordered](a, b, out []T, cfg HierarchicalConfig) {
	core.HierarchicalMerge(a, b, out, cfg)
}

// PartitionRanks returns the merge-path crossing points at an arbitrary
// list of output ranks — multiselection: the k-th smallest of the union
// for every k in ranks, located without merging.
func PartitionRanks[T cmp.Ordered](a, b []T, ranks []int) []Point {
	return core.PartitionRanks(a, b, ranks)
}

// Union returns the sorted multiset union of sorted a and b (an element
// with x copies in a and y in b appears max(x,y) times), computed with up
// to p workers over a merge-path partition.
func Union[T cmp.Ordered](a, b []T, p int) []T {
	return setops.Union(a, b, p)
}

// Intersect returns the sorted multiset intersection (min(x,y) copies).
func Intersect[T cmp.Ordered](a, b []T, p int) []T {
	return setops.Intersect(a, b, p)
}

// Diff returns the sorted multiset difference a minus b (max(0,x-y)
// copies).
func Diff[T cmp.Ordered](a, b []T, p int) []T {
	return setops.Diff(a, b, p)
}

// SortDataflow sorts s with p workers using the fine-grain task-graph
// formulation of the merge sort (the §VI Hypercore execution model):
// chunk sorts and merge segments become dependency-linked tasks, so
// merges from different subtree levels overlap instead of waiting at
// round barriers. grain is the leaf chunk size (<2 selects a default).
// Output is identical to Sort's.
func SortDataflow[T cmp.Ordered](s []T, p, grain int) {
	psort.SortDataflow(s, p, grain)
}

// MergedRange writes the elements occupying output ranks [lo, hi) of the
// merge of a and b into out (len(out) == hi-lo) without computing the
// rest — pagination over a merged view in O(log min + (hi-lo)) time.
func MergedRange[T cmp.Ordered](a, b []T, lo, hi int, out []T) {
	core.MergedRange(a, b, lo, hi, out)
}

// MergeIter returns a pull-based iterator over the merged sequence of k
// sorted lists (stable across lists), for consumers that must not
// materialize the merge.
func MergeIter[T cmp.Ordered](lists [][]T) *kway.Iter[T] {
	return kway.NewIter(lists)
}

// BatchPair is one job for MergeBatch: sorted inputs A and B, with Out
// sized len(A)+len(B). (A generic type alias of the internal type would
// need Go 1.23; this module keeps a 1.22 floor, so it is a mirror struct.)
type BatchPair[T cmp.Ordered] struct {
	A, B, Out []T
}

// MergeBatch merges many independent sorted pairs with p workers balanced
// over the *total* output (the batch/segmented-merge primitive): skewed
// pair sizes cannot starve workers, unlike one-goroutine-per-pair
// scheduling.
func MergeBatch[T cmp.Ordered](pairs []BatchPair[T], p int) {
	conv := make([]batch.Pair[T], len(pairs))
	for i, pr := range pairs {
		conv[i] = batch.Pair[T]{A: pr.A, B: pr.B, Out: pr.Out}
	}
	batch.Merge(conv, p)
}

// BatchWorkerLoad reports one worker's share of a MergeBatchStats round:
// output elements produced and distinct pairs touched. Elements are
// always within one of total/p — the balance guarantee the service layer
// exports per round on its /metrics surface.
type BatchWorkerLoad = batch.WorkerLoad

// MergeBatchStats is MergeBatch plus observability: the identical
// globally balanced round, returning one BatchWorkerLoad per worker used.
func MergeBatchStats[T cmp.Ordered](pairs []BatchPair[T], p int) []BatchWorkerLoad {
	conv := make([]batch.Pair[T], len(pairs))
	for i, pr := range pairs {
		conv[i] = batch.Pair[T]{A: pr.A, B: pr.B, Out: pr.Out}
	}
	return batch.MergeWithLoads(conv, p)
}
