package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mergepath/internal/workload"
)

func TestPartitionBalance(t *testing.T) {
	// Corollary 7: equisized segments. With integer rounding, every segment
	// length is floor(total/p) or ceil(total/p).
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 100; trial++ {
		na, nb := rng.Intn(500), rng.Intn(500)
		p := 1 + rng.Intn(32)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		bounds := Partition(a, b, p)
		if len(bounds) != p+1 {
			t.Fatalf("want %d boundaries, got %d", p+1, len(bounds))
		}
		total := na + nb
		floor, ceil := total/p, (total+p-1)/p
		for i, l := range SegmentLengths(bounds) {
			if l != floor && l != ceil {
				t.Fatalf("p=%d total=%d: segment %d has length %d (want %d or %d)",
					p, total, i, l, floor, ceil)
			}
		}
	}
}

func TestPartitionBoundariesMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		kind := workload.Kinds()[trial%len(workload.Kinds())]
		na, nb := rng.Intn(300), rng.Intn(300)
		p := 1 + rng.Intn(16)
		a, b := workload.Pair(kind, na, nb, int64(trial))
		bounds := Partition(a, b, p)
		if bounds[0] != (Point{}) {
			t.Fatalf("first boundary %+v", bounds[0])
		}
		if bounds[p] != (Point{A: na, B: nb}) {
			t.Fatalf("last boundary %+v", bounds[p])
		}
		for i := 1; i <= p; i++ {
			if bounds[i].A < bounds[i-1].A || bounds[i].B < bounds[i-1].B {
				t.Fatalf("kind=%v: boundaries not monotone: %+v then %+v", kind, bounds[i-1], bounds[i])
			}
		}
	}
}

func TestPartitionSegmentsMergeToWhole(t *testing.T) {
	// Theorem 5 / Corollary 6: independently merging each sub-array pair and
	// concatenating in order yields the full merge.
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 100; trial++ {
		na, nb := rng.Intn(400), rng.Intn(400)
		p := 1 + rng.Intn(12)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		want := make([]int32, na+nb)
		Merge(a, b, want)
		bounds := Partition(a, b, p)
		got := make([]int32, na+nb)
		for i := 0; i < p; i++ {
			lo, hi := bounds[i], bounds[i+1]
			Merge(a[lo.A:hi.A], b[lo.B:hi.B], got[lo.Diagonal():hi.Diagonal()])
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("p=%d: mismatch at %d", p, k)
			}
		}
	}
}

func TestPartitionFuncAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	less := func(x, y int32) bool { return x < y }
	for trial := 0; trial < 60; trial++ {
		na, nb := rng.Intn(200), rng.Intn(200)
		p := 1 + rng.Intn(10)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		b1 := Partition(a, b, p)
		b2 := PartitionFunc(a, b, p, less)
		for i := range b1 {
			if b1[i] != b2[i] {
				t.Fatalf("boundary %d: %+v vs %+v", i, b1[i], b2[i])
			}
		}
	}
}

func TestPartitionCountedBound(t *testing.T) {
	// Experiment E11: partition cost is at most (p-1)*(log2(min)+1).
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 30; trial++ {
		na := 1 + rng.Intn(5000)
		nb := 1 + rng.Intn(5000)
		p := 2 + rng.Intn(30)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		_, comparisons := PartitionCounted(a, b, p)
		logMin := 1
		for m := min(na, nb); m > 1; m >>= 1 {
			logMin++
		}
		if bound := (p - 1) * logMin; comparisons > bound {
			t.Fatalf("na=%d nb=%d p=%d: %d comparisons exceeds bound %d", na, nb, p, comparisons, bound)
		}
	}
}

func TestPartitionPanics(t *testing.T) {
	for _, p := range []int{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%d: expected panic", p)
				}
			}()
			Partition([]int32{1}, []int32{2}, p)
		}()
	}
}

func TestPartitionDegenerate(t *testing.T) {
	// p=1 must return just the endpoints; p > total must still be valid
	// (empty segments allowed).
	a := []int32{1, 2}
	b := []int32{3}
	bounds := Partition(a, b, 1)
	if len(bounds) != 2 || bounds[0] != (Point{}) || bounds[1] != (Point{A: 2, B: 1}) {
		t.Fatalf("p=1 bounds: %+v", bounds)
	}
	bounds = Partition(a, b, 10)
	if len(bounds) != 11 {
		t.Fatalf("p=10 bounds: %d", len(bounds))
	}
	for _, l := range SegmentLengths(bounds) {
		if l < 0 || l > 1 {
			t.Fatalf("segment length %d with p>total", l)
		}
	}
}

func TestSegmentLengthsEmpty(t *testing.T) {
	if got := SegmentLengths(nil); got != nil {
		t.Errorf("nil boundaries: %v", got)
	}
	if got := SegmentLengths([]Point{{}}); got != nil {
		t.Errorf("single boundary: %v", got)
	}
}

func TestPartitionQuick(t *testing.T) {
	// Property: partition boundaries are exactly the path points at the
	// chosen diagonals.
	f := func(rawA, rawB []int32, pSeed uint8) bool {
		a, b := sortedCopy(rawA), sortedCopy(rawB)
		p := 1 + int(pSeed)%16
		bounds := Partition(a, b, p)
		path := Path(a, b)
		total := len(a) + len(b)
		for i := 0; i <= p; i++ {
			k := i * total / p
			if i == p {
				k = total
			}
			if bounds[i] != path[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
