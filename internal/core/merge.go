package core

import "cmp"

// Merge merges the sorted slices a and b into out, which must have length
// len(a)+len(b). The merge is stable with a preceding b: equal elements keep
// their relative order, with ties resolved in favour of a. This is the
// sequential kernel every parallel variant in this repository bottoms out
// in; it is also the "truly sequential merge" baseline of the paper's
// single-thread overhead remark (Section VI).
func Merge[T cmp.Ordered](a, b, out []T) {
	if len(out) != len(a)+len(b) {
		panic("core: output length mismatch")
	}
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
		k++
	}
	for i < len(a) {
		out[k] = a[i]
		i++
		k++
	}
	for j < len(b) {
		out[k] = b[j]
		j++
		k++
	}
}

// MergeFunc is Merge under a caller-supplied strict weak ordering.
// less(x, y) reports whether x must order before y. Stability matches
// Merge: an element of b is emitted before an element of a only when it is
// strictly less.
func MergeFunc[T any](a, b, out []T, less func(x, y T) bool) {
	if len(out) != len(a)+len(b) {
		panic("core: output length mismatch")
	}
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	for i < len(a) {
		out[k] = a[i]
		i++
		k++
	}
	for j < len(b) {
		out[k] = b[j]
		j++
		k++
	}
}

// MergeSteps advances a merge of a and b by exactly steps elements starting
// from the co-rank point start, writing the emitted elements to out[:steps].
// It returns the co-rank point reached. This is the worker kernel of
// Algorithm 1 (each worker executes (|A|+|B|)/p steps of sequential merge
// from its diagonal intersection) and of Algorithm 2's in-window merges.
//
// start must be a valid merge-path point for (a, b) — i.e. one produced by
// SearchDiagonal — and steps must not exceed the remaining path length.
func MergeSteps[T cmp.Ordered](a, b []T, start Point, steps int, out []T) Point {
	if steps < 0 || start.Diagonal()+steps > len(a)+len(b) {
		panic("core: merge steps out of range")
	}
	if len(out) < steps {
		panic("core: output shorter than step count")
	}
	i, j := start.A, start.B
	k := 0
	for k < steps && i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
		k++
	}
	for k < steps && i < len(a) {
		out[k] = a[i]
		i++
		k++
	}
	for k < steps && j < len(b) {
		out[k] = b[j]
		j++
		k++
	}
	return Point{A: i, B: j}
}

// MergeStepsFunc is MergeSteps under a caller-supplied ordering.
func MergeStepsFunc[T any](a, b []T, start Point, steps int, out []T, less func(x, y T) bool) Point {
	if steps < 0 || start.Diagonal()+steps > len(a)+len(b) {
		panic("core: merge steps out of range")
	}
	if len(out) < steps {
		panic("core: output shorter than step count")
	}
	i, j := start.A, start.B
	k := 0
	for k < steps && i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	for k < steps && i < len(a) {
		out[k] = a[i]
		i++
		k++
	}
	for k < steps && j < len(b) {
		out[k] = b[j]
		j++
		k++
	}
	return Point{A: i, B: j}
}

// Path materializes the full merge path of a and b as the sequence of
// len(a)+len(b)+1 co-rank points it visits, starting at {0,0} and ending at
// {len(a),len(b)}. Constructing the path costs a full merge's worth of
// comparisons (the reason the paper partitions *without* building it); it
// exists for tests, visualization, and the property-based validation of
// SearchDiagonal: Path(a,b)[k] == SearchDiagonal(a,b,k) for every k.
func Path[T cmp.Ordered](a, b []T) []Point {
	path := make([]Point, 0, len(a)+len(b)+1)
	i, j := 0, 0
	path = append(path, Point{})
	for i < len(a) || j < len(b) {
		switch {
		case i == len(a):
			j++
		case j == len(b):
			i++
		case a[i] <= b[j]: // path moves down: M[i,j] = (a[i] > b[j]) is 0
			i++
		default: // path moves right
			j++
		}
		path = append(path, Point{A: i, B: j})
	}
	return path
}

// MergeMatrix materializes the binary merge matrix M[i][j] = (a[i] > b[j])
// of Definition 1. It is quadratic in size and exists only for tests of the
// matrix propositions (10, 11, Corollary 12) on small inputs.
func MergeMatrix[T cmp.Ordered](a, b []T) [][]bool {
	m := make([][]bool, len(a))
	for i := range m {
		m[i] = make([]bool, len(b))
		for j := range m[i] {
			m[i][j] = a[i] > b[j]
		}
	}
	return m
}
