package core

import "cmp"

// MergeBranchFree is a sequential merge kernel written to avoid the
// data-dependent branch in the inner loop: the take-from-a decision
// becomes a conditional move and index arithmetic instead of an if/else
// with separate bodies. On random data the classic kernel's branch is
// unpredictable (~50% taken), so this form can win despite executing a
// couple more instructions per element; on runny data the branch predictor
// wins. It is an ablation for the paper's observation that merging is
// bound by memory behaviour and per-element instruction costs, not
// algorithmics — see BenchmarkMergeKernels.
//
// Semantics are identical to Merge (stable, ties to a).
func MergeBranchFree[T cmp.Ordered](a, b, out []T) {
	if len(out) != len(a)+len(b) {
		panic("core: output length mismatch")
	}
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		takeA := av <= bv
		v := bv
		if takeA { // compiles to a conditional move, not a branch
			v = av
		}
		out[k] = v
		k++
		d := b2i(takeA)
		i += d
		j += 1 - d
	}
	for i < len(a) {
		out[k] = a[i]
		i++
		k++
	}
	for j < len(b) {
		out[k] = b[j]
		j++
		k++
	}
}

// MergeStepsBranchFree is the branch-free kernel in worker form (exactly
// steps outputs from the co-rank start), so the full parallel merge can be
// run with either kernel.
func MergeStepsBranchFree[T cmp.Ordered](a, b []T, start Point, steps int, out []T) Point {
	if steps < 0 || start.Diagonal()+steps > len(a)+len(b) {
		panic("core: merge steps out of range")
	}
	if len(out) < steps {
		panic("core: output shorter than step count")
	}
	i, j := start.A, start.B
	k := 0
	for k < steps && i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		takeA := av <= bv
		v := bv
		if takeA {
			v = av
		}
		out[k] = v
		k++
		d := b2i(takeA)
		i += d
		j += 1 - d
	}
	for k < steps && i < len(a) {
		out[k] = a[i]
		i++
		k++
	}
	for k < steps && j < len(b) {
		out[k] = b[j]
		j++
		k++
	}
	return Point{A: i, B: j}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
