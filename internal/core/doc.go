// Package core implements the Merge Path algorithm of Odeh, Green, Mwassi,
// Shmueli and Birk ("Merge Path — Parallel Merging Made Simple", IPPS 2012).
//
// Merging two sorted arrays A and B corresponds to a monotone staircase walk
// on an |A|x|B| grid: starting at the upper-left corner, the walk moves right
// when A[i] > B[j] (consuming B[j]) and down otherwise (consuming A[i]).
// The paper's key observations are:
//
//   - The k'th point of this "merge path" lies on the k'th cross diagonal of
//     the grid (Lemma 8), so cutting the path at equispaced cross diagonals
//     yields perfectly equal-length segments (Corollary 7).
//   - Along any cross diagonal the binary merge matrix M[i,j] = (A[i] > B[j])
//     is monotonically non-increasing (Corollary 12), so the path's crossing
//     of a diagonal is the unique 1->0 transition and can be located with a
//     binary search using O(log min(|A|,|B|)) comparisons (Theorem 14),
//     without constructing either the path or the matrix.
//
// This package provides the diagonal search (SearchDiagonal), balanced
// partitioning of a merge into any number of independent jobs (Partition),
// sequential merge kernels, and the paper's Algorithm 1 (Parallel Merge),
// which merges with p goroutines, no locks, and no inter-worker
// communication.
//
// Convention and stability: we resolve ties by consuming from A first
// (the path moves right only when A[i] > B[j], exactly as in the paper's
// Definition 1). Consequently every merge in this package is stable when A
// is regarded as preceding B.
package core
