package core

import "cmp"

// Partition splits the merge of a and b into p balanced, independent
// segments, returning the p+1 co-rank boundary points; segment i covers
// merge-path steps boundaries[i].Diagonal() up to boundaries[i+1].Diagonal().
//
// The boundaries lie on the equispaced cross diagonals k_i = i*(|a|+|b|)/p
// (Theorem 9), computed as i*total/p so that segment lengths differ by at
// most one element when p does not divide the total (Corollary 7's perfect
// balance, up to integer rounding). Partition performs p-1 independent
// diagonal searches and never constructs the path or matrix.
//
// Partition panics if p < 1.
func Partition[T cmp.Ordered](a, b []T, p int) []Point {
	if p < 1 {
		panic("core: partition count must be positive")
	}
	total := len(a) + len(b)
	boundaries := make([]Point, p+1)
	boundaries[p] = Point{A: len(a), B: len(b)}
	for i := 1; i < p; i++ {
		boundaries[i] = SearchDiagonal(a, b, i*total/p)
	}
	return boundaries
}

// PartitionFunc is Partition under a caller-supplied strict weak ordering.
func PartitionFunc[T any](a, b []T, p int, less func(x, y T) bool) []Point {
	if p < 1 {
		panic("core: partition count must be positive")
	}
	total := len(a) + len(b)
	boundaries := make([]Point, p+1)
	boundaries[p] = Point{A: len(a), B: len(b)}
	for i := 1; i < p; i++ {
		boundaries[i] = SearchDiagonalFunc(a, b, i*total/p, less)
	}
	return boundaries
}

// PartitionCounted is Partition instrumented with the total number of
// element comparisons spent in the p-1 diagonal searches, for the work
// complexity experiment (E11): the bound is (p-1)*(log2(min(|a|,|b|))+1).
func PartitionCounted[T cmp.Ordered](a, b []T, p int) ([]Point, int) {
	if p < 1 {
		panic("core: partition count must be positive")
	}
	total := len(a) + len(b)
	boundaries := make([]Point, p+1)
	boundaries[p] = Point{A: len(a), B: len(b)}
	comparisons := 0
	for i := 1; i < p; i++ {
		pt, c := diagonalSearchSteps(a, b, i*total/p)
		boundaries[i] = pt
		comparisons += c
	}
	return boundaries, comparisons
}

// SegmentLengths reports the merge-path length of each segment described by
// a boundary list returned from Partition. With p segments over total
// elements the lengths are each either floor(total/p) or ceil(total/p).
func SegmentLengths(boundaries []Point) []int {
	if len(boundaries) < 2 {
		return nil
	}
	lengths := make([]int, len(boundaries)-1)
	for i := range lengths {
		lengths[i] = boundaries[i+1].Diagonal() - boundaries[i].Diagonal()
	}
	return lengths
}
