package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mergepath/internal/workload"
)

// sortedCopy returns a sorted copy of s (insertion sort; test-local inputs
// are small).
func sortedCopy(s []int32) []int32 {
	out := append([]int32(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// checkPartitionPoint asserts the merge-path partition invariant that
// SearchDiagonal documents.
func checkPartitionPoint(t *testing.T, a, b []int32, k int, pt Point) {
	t.Helper()
	if pt.A+pt.B != k {
		t.Fatalf("diagonal %d: point %+v not on diagonal", k, pt)
	}
	if pt.A < 0 || pt.A > len(a) || pt.B < 0 || pt.B > len(b) {
		t.Fatalf("diagonal %d: point %+v out of bounds (|a|=%d |b|=%d)", k, pt, len(a), len(b))
	}
	if pt.A > 0 && pt.B < len(b) && a[pt.A-1] > b[pt.B] {
		t.Fatalf("diagonal %d: invariant a[ai-1] <= b[bi] violated at %+v: %d > %d",
			k, pt, a[pt.A-1], b[pt.B])
	}
	if pt.B > 0 && pt.A < len(a) && b[pt.B-1] >= a[pt.A] {
		t.Fatalf("diagonal %d: invariant b[bi-1] < a[ai] violated at %+v: %d >= %d",
			k, pt, b[pt.B-1], a[pt.A])
	}
}

func TestSearchDiagonalInvariantExhaustiveSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		na, nb := rng.Intn(12), rng.Intn(12)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		// Small value range forces many ties.
		for i := range a {
			a[i] %= 6
		}
		for i := range b {
			b[i] %= 6
		}
		a, b = sortedCopy(a), sortedCopy(b)
		for k := 0; k <= na+nb; k++ {
			checkPartitionPoint(t, a, b, k, SearchDiagonal(a, b, k))
		}
	}
}

func TestSearchDiagonalMatchesPath(t *testing.T) {
	// Proposition 13 / Theorem 14: the binary search finds exactly the point
	// the materialized path passes through on each diagonal.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		na, nb := rng.Intn(40), rng.Intn(40)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		if trial%3 == 0 { // duplicate-heavy
			for i := range a {
				a[i] %= 5
			}
			for i := range b {
				b[i] %= 5
			}
			a, b = sortedCopy(a), sortedCopy(b)
		}
		path := Path(a, b)
		for k := 0; k <= na+nb; k++ {
			got := SearchDiagonal(a, b, k)
			if got != path[k] {
				t.Fatalf("na=%d nb=%d k=%d: search %+v, path %+v", na, nb, k, got, path[k])
			}
		}
	}
}

func TestSearchDiagonalMatrixAgrees(t *testing.T) {
	// Ablation: the paper's matrix-transition formulation must agree with the
	// co-rank lower-bound formulation on every diagonal.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		na, nb := rng.Intn(30), rng.Intn(30)
		a, b := workload.Pair(workload.Kind(workload.Kinds()[trial%len(workload.Kinds())]), na, nb, int64(trial))
		for k := 0; k <= na+nb; k++ {
			p1 := SearchDiagonal(a, b, k)
			p2 := SearchDiagonalMatrix(a, b, k)
			if p1 != p2 {
				t.Fatalf("kind=%v na=%d nb=%d k=%d: SearchDiagonal %+v != SearchDiagonalMatrix %+v",
					workload.Kinds()[trial%len(workload.Kinds())], na, nb, k, p1, p2)
			}
		}
	}
}

func TestSearchDiagonalFuncAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	less := func(x, y int32) bool { return x < y }
	for trial := 0; trial < 100; trial++ {
		na, nb := rng.Intn(25), rng.Intn(25)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		for k := 0; k <= na+nb; k++ {
			p1 := SearchDiagonal(a, b, k)
			p2 := SearchDiagonalFunc(a, b, k, less)
			if p1 != p2 {
				t.Fatalf("k=%d: ordered %+v != func %+v", k, p1, p2)
			}
		}
	}
}

func TestSearchDiagonalEdges(t *testing.T) {
	a := []int32{1, 3, 5}
	b := []int32{2, 4, 6}
	if got := SearchDiagonal(a, b, 0); got != (Point{}) {
		t.Errorf("k=0: got %+v", got)
	}
	if got := SearchDiagonal(a, b, 6); got != (Point{A: 3, B: 3}) {
		t.Errorf("k=total: got %+v", got)
	}
	// Empty arrays: path is forced along a single axis.
	var empty []int32
	for k := 0; k <= 3; k++ {
		if got := SearchDiagonal(a, empty, k); got != (Point{A: k}) {
			t.Errorf("empty b, k=%d: got %+v", k, got)
		}
		if got := SearchDiagonal(empty, b, k); got != (Point{B: k}) {
			t.Errorf("empty a, k=%d: got %+v", k, got)
		}
	}
	if got := SearchDiagonal(empty, empty, 0); got != (Point{}) {
		t.Errorf("both empty: got %+v", got)
	}
}

func TestSearchDiagonalPanicsOutOfRange(t *testing.T) {
	a := []int32{1}
	b := []int32{2}
	for _, k := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d: expected panic", k)
				}
			}()
			SearchDiagonal(a, b, k)
		}()
	}
}

func TestSearchDiagonalTieGoesToA(t *testing.T) {
	// With every element equal, the path must consume all of a before any of
	// b: on diagonal k <= |a| the crossing is (k, 0).
	a := []int32{7, 7, 7, 7}
	b := []int32{7, 7, 7}
	for k := 0; k <= 7; k++ {
		want := Point{A: min(k, 4), B: max(0, k-4)}
		if got := SearchDiagonal(a, b, k); got != want {
			t.Errorf("k=%d: got %+v want %+v", k, got, want)
		}
	}
}

func TestDiagonalSearchStepBound(t *testing.T) {
	// Experiment E3 / Theorem 14: at most floor(log2(min(|a|,|b|,k,total-k)))+1
	// comparisons per diagonal; we assert the paper's looser bound
	// log2(min(|a|,|b|))+1.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		na := 1 + rng.Intn(2000)
		nb := 1 + rng.Intn(2000)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		bound := 1
		for m := min(na, nb); m > 1; m >>= 1 {
			bound++
		}
		for _, k := range []int{0, 1, (na + nb) / 3, (na + nb) / 2, na + nb} {
			_, steps := SearchDiagonalCounted(a, b, k)
			if steps > bound {
				t.Fatalf("na=%d nb=%d k=%d: %d comparisons exceeds bound %d", na, nb, k, steps, bound)
			}
		}
	}
}

func TestSearchDiagonalQuick(t *testing.T) {
	// Property: for arbitrary sorted inputs and arbitrary diagonal, the
	// returned point splits the merged output exactly: merging the prefixes
	// gives the first k elements of the full merge.
	f := func(rawA, rawB []int32, kSeed uint16) bool {
		a, b := sortedCopy(rawA), sortedCopy(rawB)
		total := len(a) + len(b)
		k := 0
		if total > 0 {
			k = int(kSeed) % (total + 1)
		}
		pt := SearchDiagonal(a, b, k)
		full := make([]int32, total)
		Merge(a, b, full)
		prefix := make([]int32, k)
		Merge(a[:pt.A], b[:pt.B], prefix)
		for i := 0; i < k; i++ {
			if prefix[i] != full[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSearchDiagonal(bench *testing.B) {
	rng := rand.New(rand.NewSource(6))
	a := workload.SortedUniform32(rng, 1<<20)
	b := workload.SortedUniform32(rng, 1<<20)
	bench.Run("corank", func(bench *testing.B) {
		for i := 0; i < bench.N; i++ {
			SearchDiagonal(a, b, len(a))
		}
	})
	bench.Run("matrix", func(bench *testing.B) {
		for i := 0; i < bench.N; i++ {
			SearchDiagonalMatrix(a, b, len(a))
		}
	})
}
