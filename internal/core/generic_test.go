package core

import (
	"math"
	"math/rand"
	"testing"

	"mergepath/internal/verify"
)

// The library is generic over cmp.Ordered; exercise type parameters other
// than int32 to make sure nothing silently assumes integers.

func TestMergeStrings(t *testing.T) {
	a := []string{"apple", "fig", "pear"}
	b := []string{"banana", "cherry", "kiwi", "zucchini"}
	out := make([]string, 7)
	ParallelMerge(a, b, out, 3)
	want := []string{"apple", "banana", "cherry", "fig", "kiwi", "pear", "zucchini"}
	if !verify.Equal(out, want) {
		t.Fatalf("got %v", out)
	}
	pt := SearchDiagonal(a, b, 3)
	if pt.A+pt.B != 3 {
		t.Fatalf("string diagonal: %+v", pt)
	}
}

func TestMergeFloats(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	a := make([]float64, 200)
	b := make([]float64, 300)
	fill := func(s []float64) {
		v := -100.0
		for i := range s {
			v += rng.Float64() * 3
			s[i] = v
		}
	}
	fill(a)
	fill(b)
	out := make([]float64, 500)
	ParallelMerge(a, b, out, 4)
	if !verify.Sorted(out) {
		t.Fatal("float merge unsorted")
	}
	// Partition invariants hold for floats too.
	for _, pt := range Partition(a, b, 7) {
		if pt.A > 0 && pt.B < len(b) && a[pt.A-1] > b[pt.B] {
			t.Fatalf("float partition invariant broken at %+v", pt)
		}
	}
}

func TestMergeFloatsWithInfinities(t *testing.T) {
	a := []float64{math.Inf(-1), -1, 0, math.Inf(1)}
	b := []float64{-2, 0, 1}
	out := make([]float64, 7)
	ParallelMerge(a, b, out, 2)
	if !verify.Sorted(out) {
		t.Fatalf("infinity merge unsorted: %v", out)
	}
	if !math.IsInf(out[0], -1) || !math.IsInf(out[6], 1) {
		t.Fatalf("infinities misplaced: %v", out)
	}
}

func TestMergeUint64Extremes(t *testing.T) {
	a := []uint64{0, 1, math.MaxUint64}
	b := []uint64{2, math.MaxUint64 - 1, math.MaxUint64}
	out := make([]uint64, 6)
	ParallelMerge(a, b, out, 3)
	if !verify.Sorted(out) {
		t.Fatalf("uint64 merge unsorted: %v", out)
	}
	if out[5] != math.MaxUint64 || out[4] != math.MaxUint64 {
		t.Fatalf("max values misplaced: %v", out)
	}
}

func TestMergeBytes(t *testing.T) {
	a := []byte{'a', 'c', 'e'}
	b := []byte{'b', 'd'}
	out := make([]byte, 5)
	Merge(a, b, out)
	if string(out) != "abcde" {
		t.Fatalf("byte merge: %q", out)
	}
}
