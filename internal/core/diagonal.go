package core

import "cmp"

// Point is a position on the merge grid expressed as a pair of co-ranks:
// crossing the merge path at this point, exactly A elements of the first
// array and B elements of the second have been consumed. A+B is the index
// of the cross diagonal the point lies on (Lemma 8).
type Point struct {
	A int // number of elements consumed from the first array
	B int // number of elements consumed from the second array
}

// Diagonal returns the index of the cross diagonal the point lies on, which
// equals the number of merge steps taken to reach it.
func (p Point) Diagonal() int { return p.A + p.B }

// SearchDiagonal locates the intersection of the merge path of a and b with
// cross diagonal k, for 0 <= k <= len(a)+len(b). It returns the co-rank
// point (ai, bi) with ai+bi = k such that the first k elements of the merged
// output are exactly a[:ai] and b[:bi].
//
// The returned point satisfies the merge-path partition invariant
//
//	ai == 0 || bi == len(b) || a[ai-1] <= b[bi]    (everything consumed from
//	                                                a precedes the rest of b)
//	bi == 0 || ai == len(a) || b[bi-1] <  a[ai]    (everything consumed from
//	                                                b strictly precedes the
//	                                                rest of a; ties go to a)
//
// The search is the binary search of Theorem 14: along diagonal k the merge
// matrix M[i,j] = (a[i] > b[j]) is non-increasing (Corollary 12), and the
// path crosses at the unique transition. Cost is O(log min(len(a), len(b), k))
// comparisons. SearchDiagonal panics if k is out of range.
func SearchDiagonal[T cmp.Ordered](a, b []T, k int) Point {
	if k < 0 || k > len(a)+len(b) {
		panic("core: diagonal index out of range")
	}
	// Feasible co-ranks for a on diagonal k form the interval [lo, hi].
	lo := k - len(b)
	if lo < 0 {
		lo = 0
	}
	hi := k
	if hi > len(a) {
		hi = len(a)
	}
	// Find the smallest ai in [lo, hi] with a[ai] > b[k-ai-1]; entries below
	// the transition have a[ai] <= b[k-ai-1], meaning a[ai] still belongs to
	// the first k outputs and the path passes below this grid point.
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] <= b[k-mid-1] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return Point{A: lo, B: k - lo}
}

// SearchDiagonalFunc is SearchDiagonal for a caller-supplied strict weak
// ordering. less(x, y) must report whether x orders before y.
func SearchDiagonalFunc[T any](a, b []T, k int, less func(x, y T) bool) Point {
	if k < 0 || k > len(a)+len(b) {
		panic("core: diagonal index out of range")
	}
	lo := k - len(b)
	if lo < 0 {
		lo = 0
	}
	hi := k
	if hi > len(a) {
		hi = len(a)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		// a[mid] <= b[k-mid-1]  <=>  !(b[k-mid-1] < a[mid])
		if !less(b[k-mid-1], a[mid]) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return Point{A: lo, B: k - lo}
}

// SearchDiagonalMatrix is the paper's own formulation of the diagonal
// search (Proposition 13): walk the cross diagonal of the binary merge
// matrix M[i,j] = (a[i] > b[j]) by bisection, looking for the highest point
// whose left neighbour is 1 — i.e. the 1->0 transition. It is algebraically
// identical to SearchDiagonal and exists so the two formulations can be
// property-tested against each other and benchmarked (see the "search
// variant" ablation in DESIGN.md).
func SearchDiagonalMatrix[T cmp.Ordered](a, b []T, k int) Point {
	if k < 0 || k > len(a)+len(b) {
		panic("core: diagonal index out of range")
	}
	// Points on diagonal k are (i, j) with i+j = k. Parameterize by i, the
	// a-co-rank, valid over [lo, hi] as in SearchDiagonal. M at the grid cell
	// "entered" by co-rank i is M[i, k-i-1] = (a[i] > b[k-i-1]), defined for
	// lo <= i < hi; the sequence over increasing i is non-decreasing in this
	// parameterization (it reverses the diagonal's geometric order), so we
	// bisect for its first 1.
	lo := k - len(b)
	if lo < 0 {
		lo = 0
	}
	hi := k
	if hi > len(a) {
		hi = len(a)
	}
	low, high := lo, hi
	for low < high {
		mid := int(uint(low+high) >> 1)
		one := a[mid] > b[k-mid-1] // M[mid, k-mid-1]
		if one {
			high = mid
		} else {
			low = mid + 1
		}
	}
	return Point{A: low, B: k - low}
}

// SearchRank returns the co-rank point splitting the merged output of a and
// b into its first k elements and the rest. It is an alias for
// SearchDiagonal provided for call sites that think in output ranks (the
// formulation of Deo–Sarkar [2]) rather than grid diagonals.
func SearchRank[T cmp.Ordered](a, b []T, k int) Point {
	return SearchDiagonal(a, b, k)
}

// diagonalSearchSteps reports the number of comparisons SearchDiagonal
// performs for the given inputs, for the complexity experiments (E3, E11).
func diagonalSearchSteps[T cmp.Ordered](a, b []T, k int) (Point, int) {
	if k < 0 || k > len(a)+len(b) {
		panic("core: diagonal index out of range")
	}
	lo := k - len(b)
	if lo < 0 {
		lo = 0
	}
	hi := k
	if hi > len(a) {
		hi = len(a)
	}
	steps := 0
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		steps++
		if a[mid] <= b[k-mid-1] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return Point{A: lo, B: k - lo}, steps
}

// SearchDiagonalCounted is the instrumented form of SearchDiagonal used by
// the complexity experiments: it returns the crossing point together with
// the number of element comparisons spent finding it.
func SearchDiagonalCounted[T cmp.Ordered](a, b []T, k int) (Point, int) {
	return diagonalSearchSteps(a, b, k)
}
