package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

func TestMergeBranchFreeMatchesMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(170))
	for trial := 0; trial < 120; trial++ {
		kind := workload.Kinds()[trial%len(workload.Kinds())]
		na, nb := rng.Intn(400), rng.Intn(400)
		a, b := workload.Pair(kind, na, nb, int64(trial))
		o1 := make([]int32, na+nb)
		o2 := make([]int32, na+nb)
		Merge(a, b, o1)
		MergeBranchFree(a, b, o2)
		if !verify.Equal(o1, o2) {
			t.Fatalf("kind=%v na=%d nb=%d: kernels disagree", kind, na, nb)
		}
	}
}

func TestMergeStepsBranchFreeResumable(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	for trial := 0; trial < 60; trial++ {
		na, nb := rng.Intn(200), rng.Intn(200)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		total := na + nb
		want := make([]int32, total)
		Merge(a, b, want)
		got := make([]int32, total)
		pt := Point{}
		done := 0
		for done < total {
			chunk := 1 + rng.Intn(total-done)
			next := MergeStepsBranchFree(a, b, pt, chunk, got[done:done+chunk])
			if alt := MergeSteps(a, b, pt, chunk, make([]int32, chunk)); alt != next {
				t.Fatalf("kernels reach different points: %+v vs %+v", next, alt)
			}
			pt = next
			done += chunk
		}
		if !verify.Equal(got, want) {
			t.Fatalf("trial %d: chunked branch-free merge differs", trial)
		}
	}
}

func TestMergeBranchFreePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on bad output")
			}
		}()
		MergeBranchFree([]int32{1}, []int32{2}, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on bad steps")
			}
		}()
		MergeStepsBranchFree([]int32{1}, []int32{2}, Point{}, 3, make([]int32, 3))
	}()
}

func TestMergeBranchFreeQuick(t *testing.T) {
	f := func(rawA, rawB []int32) bool {
		a, b := sortedCopy(rawA), sortedCopy(rawB)
		out := make([]int32, len(a)+len(b))
		MergeBranchFree(a, b, out)
		return verify.Equal(out, verify.ReferenceMerge(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMergeKernels(bench *testing.B) {
	rng := rand.New(rand.NewSource(172))
	for _, kind := range []workload.Kind{workload.Uniform, workload.Runs} {
		a, b := workload.Pair(kind, 1<<20, 1<<20, 7)
		_ = rng
		out := make([]int32, 2<<20)
		bench.Run("branching/"+string(kind), func(bench *testing.B) {
			bench.SetBytes(int64(len(out)) * 4)
			for i := 0; i < bench.N; i++ {
				Merge(a, b, out)
			}
		})
		bench.Run("branchfree/"+string(kind), func(bench *testing.B) {
			bench.SetBytes(int64(len(out)) * 4)
			for i := 0; i < bench.N; i++ {
				MergeBranchFree(a, b, out)
			}
		})
	}
}
