package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

func TestHierarchicalMergeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	for trial := 0; trial < 120; trial++ {
		kind := workload.Kinds()[trial%len(workload.Kinds())]
		na, nb := rng.Intn(600), rng.Intn(600)
		a, b := workload.Pair(kind, na, nb, int64(trial))
		cfg := HierarchicalConfig{Blocks: 1 + rng.Intn(6), TeamSize: 1 + rng.Intn(5)}
		out := make([]int32, na+nb)
		HierarchicalMerge(a, b, out, cfg)
		if !verify.Equal(out, verify.ReferenceMerge(a, b)) {
			t.Fatalf("kind=%v na=%d nb=%d cfg=%+v: mismatch", kind, na, nb, cfg)
		}
	}
}

func TestHierarchicalMergeDegenerate(t *testing.T) {
	// Zero-valued config behaves like a sequential merge.
	a := []int32{1, 3, 5}
	b := []int32{2, 4}
	out := make([]int32, 5)
	HierarchicalMerge(a, b, out, HierarchicalConfig{})
	if !verify.IsMergeOf(out, a, b) {
		t.Fatalf("zero config: %v", out)
	}
	// Empty inputs.
	var empty []int32
	HierarchicalMerge(empty, empty, nil, HierarchicalConfig{Blocks: 4, TeamSize: 4})
	// More blocks than elements.
	out2 := make([]int32, 2)
	HierarchicalMerge([]int32{9}, []int32{1}, out2, HierarchicalConfig{Blocks: 64, TeamSize: 8})
	if out2[0] != 1 || out2[1] != 9 {
		t.Fatalf("tiny input: %v", out2)
	}
}

func TestHierarchicalMergePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on output length mismatch")
		}
	}()
	HierarchicalMerge([]int32{1}, []int32{2}, nil, HierarchicalConfig{})
}

func TestHierarchicalEquivalentToFlat(t *testing.T) {
	// Blocks=p, TeamSize=1 must be bitwise identical to ParallelMerge.
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 40; trial++ {
		na, nb := rng.Intn(1000), rng.Intn(1000)
		p := 1 + rng.Intn(8)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		o1 := make([]int32, na+nb)
		o2 := make([]int32, na+nb)
		ParallelMerge(a, b, o1, p)
		HierarchicalMerge(a, b, o2, HierarchicalConfig{Blocks: p, TeamSize: 1})
		if !verify.Equal(o1, o2) {
			t.Fatalf("trial %d: flat and hierarchical diverge", trial)
		}
	}
}

func TestPartitionRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	for trial := 0; trial < 60; trial++ {
		na, nb := rng.Intn(300), rng.Intn(300)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		path := Path(a, b)
		// Arbitrary rank list, including duplicates and endpoints.
		ranks := []int{0, na + nb}
		for i := 0; i < 5; i++ {
			ranks = append(ranks, rng.Intn(na+nb+1))
		}
		points := PartitionRanks(a, b, ranks)
		for i, k := range ranks {
			if points[i] != path[k] {
				t.Fatalf("rank %d: %+v, path %+v", k, points[i], path[k])
			}
		}
	}
}

func TestPartitionRanksEmpty(t *testing.T) {
	if got := PartitionRanks([]int32{1}, []int32{2}, nil); len(got) != 0 {
		t.Fatalf("nil ranks: %v", got)
	}
}

func TestHierarchicalQuick(t *testing.T) {
	f := func(rawA, rawB []int32, blocksSeed, teamSeed uint8) bool {
		a, b := sortedCopy(rawA), sortedCopy(rawB)
		cfg := HierarchicalConfig{Blocks: 1 + int(blocksSeed)%8, TeamSize: 1 + int(teamSeed)%4}
		out := make([]int32, len(a)+len(b))
		HierarchicalMerge(a, b, out, cfg)
		return verify.Equal(out, verify.ReferenceMerge(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHierarchicalVsFlat(b *testing.B) {
	rng := rand.New(rand.NewSource(113))
	x := workload.SortedUniform32(rng, 1<<20)
	y := workload.SortedUniform32(rng, 1<<20)
	out := make([]int32, 2<<20)
	b.Run("flat-p8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ParallelMerge(x, y, out, 8)
		}
	})
	b.Run("blocks4-team2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			HierarchicalMerge(x, y, out, HierarchicalConfig{Blocks: 4, TeamSize: 2})
		}
	})
	b.Run("blocks64-team1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			HierarchicalMerge(x, y, out, HierarchicalConfig{Blocks: 64, TeamSize: 1})
		}
	})
}
