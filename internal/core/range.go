package core

import "cmp"

// MergedRange writes the elements that would occupy output ranks
// [lo, hi) of the merge of a and b into out (len(out) == hi-lo), without
// merging anything outside that window. Cost: two diagonal searches plus
// hi-lo merge steps — the "page k of the merged result" primitive that
// falls directly out of Theorem 14. Panics if the range is invalid.
func MergedRange[T cmp.Ordered](a, b []T, lo, hi int, out []T) {
	if lo < 0 || hi < lo || hi > len(a)+len(b) {
		panic("core: merged range out of bounds")
	}
	if len(out) != hi-lo {
		panic("core: output length mismatch")
	}
	start := SearchDiagonal(a, b, lo)
	MergeSteps(a, b, start, hi-lo, out)
}

// MergedRangeFunc is MergedRange under a caller-supplied ordering.
func MergedRangeFunc[T any](a, b []T, lo, hi int, out []T, less func(x, y T) bool) {
	if lo < 0 || hi < lo || hi > len(a)+len(b) {
		panic("core: merged range out of bounds")
	}
	if len(out) != hi-lo {
		panic("core: output length mismatch")
	}
	start := SearchDiagonalFunc(a, b, lo, less)
	MergeStepsFunc(a, b, start, hi-lo, out, less)
}
