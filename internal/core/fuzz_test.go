package core

import (
	"testing"

	"mergepath/internal/verify"
)

// decodeSortedPair turns fuzz bytes into two sorted int32 arrays: the
// first byte splits the data, the rest become elements (sorted in place).
func decodeSortedPair(data []byte) (a, b []int32) {
	if len(data) == 0 {
		return nil, nil
	}
	split := int(data[0]) % len(data)
	mk := func(bs []byte) []int32 {
		s := make([]int32, len(bs))
		for i, v := range bs {
			s[i] = int32(v)
		}
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return s
	}
	return mk(data[1 : 1+split]), mk(data[1+split:])
}

func FuzzParallelMerge(f *testing.F) {
	f.Add([]byte{3, 1, 5, 2, 9, 4, 4, 0}, uint8(4))
	f.Add([]byte{0}, uint8(1))
	f.Add([]byte{7, 255, 254, 253, 1, 2, 3, 0, 0}, uint8(9))
	f.Fuzz(func(t *testing.T, data []byte, pSeed uint8) {
		a, b := decodeSortedPair(data)
		p := 1 + int(pSeed)%16
		out := make([]int32, len(a)+len(b))
		ParallelMerge(a, b, out, p)
		if !verify.Equal(out, verify.ReferenceMerge(a, b)) {
			t.Fatalf("p=%d a=%v b=%v: got %v", p, a, b, out)
		}
	})
}

func FuzzSearchDiagonalInvariant(f *testing.F) {
	f.Add([]byte{2, 10, 20, 30}, uint16(2))
	f.Add([]byte{0, 1}, uint16(0))
	f.Fuzz(func(t *testing.T, data []byte, kSeed uint16) {
		a, b := decodeSortedPair(data)
		total := len(a) + len(b)
		k := 0
		if total > 0 {
			k = int(kSeed) % (total + 1)
		}
		pt := SearchDiagonal(a, b, k)
		if pt.A+pt.B != k {
			t.Fatalf("off diagonal: %+v for k=%d", pt, k)
		}
		if pt.A > 0 && pt.B < len(b) && a[pt.A-1] > b[pt.B] {
			t.Fatalf("invariant 1: a=%v b=%v k=%d pt=%+v", a, b, k, pt)
		}
		if pt.B > 0 && pt.A < len(a) && b[pt.B-1] >= a[pt.A] {
			t.Fatalf("invariant 2: a=%v b=%v k=%d pt=%+v", a, b, k, pt)
		}
		// Cross-check against the matrix formulation.
		if alt := SearchDiagonalMatrix(a, b, k); alt != pt {
			t.Fatalf("formulations disagree: %+v vs %+v", pt, alt)
		}
	})
}

func FuzzHierarchicalMerge(f *testing.F) {
	f.Add([]byte{4, 8, 6, 7, 5, 3, 0, 9}, uint8(3), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, blocks, team uint8) {
		a, b := decodeSortedPair(data)
		cfg := HierarchicalConfig{Blocks: 1 + int(blocks)%8, TeamSize: 1 + int(team)%4}
		out := make([]int32, len(a)+len(b))
		HierarchicalMerge(a, b, out, cfg)
		if !verify.Equal(out, verify.ReferenceMerge(a, b)) {
			t.Fatalf("cfg=%+v a=%v b=%v: got %v", cfg, a, b, out)
		}
	})
}
