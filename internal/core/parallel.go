package core

import (
	"cmp"
	"sync"
)

// ParallelMerge is Algorithm 1 of the paper: merge the sorted slices a and b
// into out using p concurrent workers.
//
// Each worker i independently computes the intersection of the merge path
// with cross diagonal i*(|a|+|b|)/p by binary search, then executes its
// share of sequential merge steps, writing to a disjoint region of out.
// There are no locks, no atomics and no inter-worker communication; the only
// synchronization is the terminal barrier (the WaitGroup), matching the
// paper's "Barrier" at the end of Algorithm 1.
//
// p < 1 panics; p == 1 degenerates to a sequential merge plus the (small)
// cost of the framework, which experiment E2 measures against Merge.
// out must have length len(a)+len(b).
func ParallelMerge[T cmp.Ordered](a, b, out []T, p int) {
	if p < 1 {
		panic("core: worker count must be positive")
	}
	if len(out) != len(a)+len(b) {
		panic("core: output length mismatch")
	}
	total := len(a) + len(b)
	if p > total {
		p = max(total, 1)
	}
	if p == 1 {
		start := SearchDiagonal(a, b, 0) // the origin; kept for symmetry
		MergeSteps(a, b, start, total, out)
		return
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		go func(i int) {
			defer wg.Done()
			lo := i * total / p
			hi := (i + 1) * total / p
			start := SearchDiagonal(a, b, lo)
			MergeSteps(a, b, start, hi-lo, out[lo:hi])
		}(i)
	}
	wg.Wait()
}

// ParallelMergeFunc is ParallelMerge under a caller-supplied ordering.
func ParallelMergeFunc[T any](a, b, out []T, p int, less func(x, y T) bool) {
	if p < 1 {
		panic("core: worker count must be positive")
	}
	if len(out) != len(a)+len(b) {
		panic("core: output length mismatch")
	}
	total := len(a) + len(b)
	if p > total {
		p = max(total, 1)
	}
	if p == 1 {
		MergeStepsFunc(a, b, Point{}, total, out, less)
		return
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		go func(i int) {
			defer wg.Done()
			lo := i * total / p
			hi := (i + 1) * total / p
			start := SearchDiagonalFunc(a, b, lo, less)
			MergeStepsFunc(a, b, start, hi-lo, out[lo:hi], less)
		}(i)
	}
	wg.Wait()
}

// ParallelMergePrepartitioned merges using an explicit boundary list from
// Partition (or any valid non-overlapping cover of the merge path). It lets
// callers reuse a partition across runs, supply deliberately unbalanced
// partitions for the load-balance experiments, or run segments on an
// existing worker pool.
func ParallelMergePrepartitioned[T cmp.Ordered](a, b, out []T, boundaries []Point) {
	if len(out) != len(a)+len(b) {
		panic("core: output length mismatch")
	}
	if len(boundaries) < 2 {
		panic("core: need at least two boundary points")
	}
	var wg sync.WaitGroup
	wg.Add(len(boundaries) - 1)
	for i := 0; i+1 < len(boundaries); i++ {
		go func(start, end Point) {
			defer wg.Done()
			lo, hi := start.Diagonal(), end.Diagonal()
			MergeSteps(a, b, start, hi-lo, out[lo:hi])
		}(boundaries[i], boundaries[i+1])
	}
	wg.Wait()
}

// mergeJob describes one worker's slice of a merge for the pooled variant.
type mergeJob struct {
	lo, hi int
}

// Pool is a reusable fixed-size worker pool for repeated parallel merges.
// Algorithm 1 spawns workers per call, which is faithful to the paper's
// OpenMP parallel-for but pays goroutine start-up on every merge; the merge
// rounds of a merge sort issue many small merges, where a persistent pool
// amortizes that cost. Pool is safe for sequential reuse, not for
// concurrent Merge calls.
type Pool struct {
	p    int
	jobs []chan mergeJob
	done chan struct{}
	run  func(job mergeJob)
	wg   sync.WaitGroup
}

// NewPool starts a pool of p workers. Close must be called to release them.
func NewPool(p int) *Pool {
	if p < 1 {
		panic("core: worker count must be positive")
	}
	pool := &Pool{
		p:    p,
		jobs: make([]chan mergeJob, p),
		done: make(chan struct{}),
	}
	pool.wg.Add(p)
	for i := range pool.jobs {
		pool.jobs[i] = make(chan mergeJob, 1)
		go func(jobs <-chan mergeJob) {
			defer pool.wg.Done()
			for job := range jobs {
				pool.run(job)
			}
		}(pool.jobs[i])
	}
	return pool
}

// Workers reports the pool size.
func (pl *Pool) Workers() int { return pl.p }

// Close shuts the pool down and waits for its workers to exit.
func (pl *Pool) Close() {
	for _, ch := range pl.jobs {
		close(ch)
	}
	pl.wg.Wait()
}

// Merge runs ParallelMerge on the pool's workers.
//
// The closure handed to the workers is swapped per call; a sync.WaitGroup
// local to the call provides the terminal barrier.
func MergeOnPool[T cmp.Ordered](pl *Pool, a, b, out []T) {
	if len(out) != len(a)+len(b) {
		panic("core: output length mismatch")
	}
	total := len(a) + len(b)
	p := pl.p
	if p > total {
		// Degenerate tiny input: do it inline rather than schedule empty jobs.
		Merge(a, b, out)
		return
	}
	var wg sync.WaitGroup
	wg.Add(p)
	pl.run = func(job mergeJob) {
		defer wg.Done()
		start := SearchDiagonal(a, b, job.lo)
		MergeSteps(a, b, start, job.hi-job.lo, out[job.lo:job.hi])
	}
	for i := 0; i < p; i++ {
		pl.jobs[i] <- mergeJob{lo: i * total / p, hi: (i + 1) * total / p}
	}
	wg.Wait()
}
