package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

func TestMergeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 200; trial++ {
		kind := workload.Kinds()[trial%len(workload.Kinds())]
		na, nb := rng.Intn(200), rng.Intn(200)
		a, b := workload.Pair(kind, na, nb, int64(trial))
		out := make([]int32, na+nb)
		Merge(a, b, out)
		want := verify.ReferenceMerge(a, b)
		if !verify.Equal(out, want) {
			t.Fatalf("kind=%v na=%d nb=%d: merge mismatch", kind, na, nb)
		}
	}
}

func TestMergeEmptyInputs(t *testing.T) {
	var empty []int32
	a := []int32{1, 2, 3}
	out := make([]int32, 3)
	Merge(a, empty, out)
	if !verify.Equal(out, a) {
		t.Errorf("merge with empty b: got %v", out)
	}
	Merge(empty, a, out)
	if !verify.Equal(out, a) {
		t.Errorf("merge with empty a: got %v", out)
	}
	Merge(empty, empty, nil)
}

func TestMergePanicsOnBadOutput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short output")
		}
	}()
	Merge([]int32{1}, []int32{2}, make([]int32, 1))
}

func TestMergeFuncStability(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		na, nb := rng.Intn(60), rng.Intn(60)
		keysA := workload.SortedUniform(rng, na, 8)
		keysB := workload.SortedUniform(rng, nb, 8)
		a := verify.Tag(keysA, 0)
		b := verify.Tag(keysB, 1)
		out := make([]verify.Tagged, na+nb)
		MergeFunc(a, b, out, verify.TaggedLess)
		if !verify.StableMergeOrder(out) {
			t.Fatalf("trial %d: unstable merge: %+v", trial, out)
		}
	}
}

func TestMergeStepsResumable(t *testing.T) {
	// Splitting the merge into arbitrary chunk sequences must reproduce the
	// monolithic merge exactly, and intermediate points must match the path.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 100; trial++ {
		na, nb := rng.Intn(100), rng.Intn(100)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		total := na + nb
		want := make([]int32, total)
		Merge(a, b, want)
		path := Path(a, b)

		got := make([]int32, total)
		pt := Point{}
		done := 0
		for done < total {
			chunk := 1 + rng.Intn(total-done)
			next := MergeSteps(a, b, pt, chunk, got[done:done+chunk])
			done += chunk
			if next != path[done] {
				t.Fatalf("after %d steps: point %+v, path says %+v", done, next, path[done])
			}
			pt = next
		}
		if !verify.Equal(got, want) {
			t.Fatalf("trial %d: chunked merge differs from monolithic", trial)
		}
	}
}

func TestMergeStepsZeroAndBounds(t *testing.T) {
	a := []int32{1, 3}
	b := []int32{2}
	pt := MergeSteps(a, b, Point{}, 0, nil)
	if pt != (Point{}) {
		t.Errorf("zero steps moved the point: %+v", pt)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for steps beyond path end")
			}
		}()
		MergeSteps(a, b, Point{A: 2, B: 1}, 1, make([]int32, 1))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for negative steps")
			}
		}()
		MergeSteps(a, b, Point{}, -1, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for short output")
			}
		}()
		MergeSteps(a, b, Point{}, 3, make([]int32, 2))
	}()
}

func TestMergeStepsFuncAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	less := func(x, y int32) bool { return x < y }
	for trial := 0; trial < 60; trial++ {
		na, nb := rng.Intn(80), rng.Intn(80)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		total := na + nb
		o1 := make([]int32, total)
		o2 := make([]int32, total)
		mid := total / 2
		p1 := MergeSteps(a, b, Point{}, mid, o1)
		MergeSteps(a, b, p1, total-mid, o1[mid:])
		q1 := MergeStepsFunc(a, b, Point{}, mid, o2, less)
		MergeStepsFunc(a, b, q1, total-mid, o2[mid:], less)
		if p1 != q1 || !verify.Equal(o1, o2) {
			t.Fatalf("trial %d: ordered/func disagreement", trial)
		}
	}
}

func TestPathProperties(t *testing.T) {
	// Lemma 8: the k'th point lies on diagonal k. Monotone staircase: each
	// step advances exactly one co-rank by one.
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 100; trial++ {
		na, nb := rng.Intn(50), rng.Intn(50)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		path := Path(a, b)
		if len(path) != na+nb+1 {
			t.Fatalf("path length %d, want %d", len(path), na+nb+1)
		}
		for k, pt := range path {
			if pt.Diagonal() != k {
				t.Fatalf("point %d on diagonal %d", k, pt.Diagonal())
			}
			if k > 0 {
				prev := path[k-1]
				da, db := pt.A-prev.A, pt.B-prev.B
				if !(da == 1 && db == 0) && !(da == 0 && db == 1) {
					t.Fatalf("illegal path step %+v -> %+v", prev, pt)
				}
			}
		}
		last := path[len(path)-1]
		if last.A != na || last.B != nb {
			t.Fatalf("path ends at %+v", last)
		}
	}
}

func TestMergeMatrixPropositions(t *testing.T) {
	// Propositions 10 & 11 and Corollary 12 on random small instances.
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 50; trial++ {
		na, nb := 1+rng.Intn(12), 1+rng.Intn(12)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		for i := range a {
			a[i] %= 8
		}
		for i := range b {
			b[i] %= 8
		}
		a, b = sortedCopy(a), sortedCopy(b)
		m := MergeMatrix(a, b)
		// Proposition 10: a 1 forces 1s below and to the left.
		for i := 0; i < na; i++ {
			for j := 0; j < nb; j++ {
				if m[i][j] {
					for k := i; k < na; k++ {
						for l := 0; l <= j; l++ {
							if !m[k][l] {
								t.Fatalf("prop 10 violated at (%d,%d) given 1 at (%d,%d)", k, l, i, j)
							}
						}
					}
				}
			}
		}
		// Corollary 12: along each cross diagonal (i decreasing, j increasing)
		// entries are non-increasing.
		for d := 0; d < na+nb-1; d++ {
			prev := true
			for i := min(d, na-1); i >= 0 && d-i < nb; i-- {
				j := d - i
				cur := m[i][j]
				if cur && !prev {
					t.Fatalf("corollary 12 violated on diagonal %d", d)
				}
				prev = cur
			}
		}
	}
}

func TestMergeQuickPermutation(t *testing.T) {
	f := func(rawA, rawB []int32) bool {
		a, b := sortedCopy(rawA), sortedCopy(rawB)
		out := make([]int32, len(a)+len(b))
		Merge(a, b, out)
		return verify.IsMergeOf(out, a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMergedRange(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 80; trial++ {
		na, nb := rng.Intn(200), rng.Intn(200)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		full := make([]int32, na+nb)
		Merge(a, b, full)
		total := na + nb
		lo := 0
		if total > 0 {
			lo = rng.Intn(total + 1)
		}
		hi := lo
		if total-lo > 0 {
			hi = lo + rng.Intn(total-lo+1)
		}
		out := make([]int32, hi-lo)
		MergedRange(a, b, lo, hi, out)
		for i := range out {
			if out[i] != full[lo+i] {
				t.Fatalf("range [%d,%d): position %d differs", lo, hi, i)
			}
		}
		// Func variant must agree.
		out2 := make([]int32, hi-lo)
		MergedRangeFunc(a, b, lo, hi, out2, func(x, y int32) bool { return x < y })
		if !verify.Equal(out, out2) {
			t.Fatalf("func variant diverges on [%d,%d)", lo, hi)
		}
	}
}

func TestMergedRangePanics(t *testing.T) {
	a, b := []int32{1}, []int32{2}
	for name, f := range map[string]func(){
		"neg":  func() { MergedRange(a, b, -1, 0, nil) },
		"inv":  func() { MergedRange(a, b, 2, 1, nil) },
		"over": func() { MergedRange(a, b, 0, 3, make([]int32, 3)) },
		"out":  func() { MergedRange(a, b, 0, 2, nil) },
		"fneg": func() { MergedRangeFunc(a, b, -1, 0, nil, func(x, y int32) bool { return x < y }) },
		"fout": func() { MergedRangeFunc(a, b, 0, 2, nil, func(x, y int32) bool { return x < y }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
