package core

import (
	"cmp"
	"context"
	"sync"
	"sync/atomic"
)

// cancelCheckElems is how many output elements a worker produces between
// cancellation checks in the ctx-aware variants. Checking costs one
// atomic load plus (rarely) a ctx.Err call, so the chunk is sized to
// make that noise against ~64K merge steps while still bounding how long
// a canceled 100M-element round keeps the pool busy.
const cancelCheckElems = 1 << 16

// ParallelMergeCtx is ParallelMerge with cooperative cancellation: each
// worker executes its segment in chunks of cancelCheckElems output
// elements and abandons the rest once ctx is done. MergeSteps returns
// the co-rank point it reached, so chunking costs one diagonal search
// per worker total, not per chunk.
//
// Returns nil when the merge completed (out fully written) and ctx.Err()
// when it was abandoned — out is then only partially written and must be
// discarded. Panics exactly where ParallelMerge panics (p < 1, mis-sized
// out).
func ParallelMergeCtx[T cmp.Ordered](ctx context.Context, a, b, out []T, p int) error {
	if p < 1 {
		panic("core: worker count must be positive")
	}
	if len(out) != len(a)+len(b) {
		panic("core: output length mismatch")
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	total := len(a) + len(b)
	if total == 0 {
		return nil
	}
	if p > total {
		p = total
	}
	// stop is the shared abandon flag: the first worker to observe ctx
	// done sets it, and every worker checks it at chunk boundaries —
	// one atomic load instead of p concurrent ctx.Err calls.
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		go func(i int) {
			defer wg.Done()
			lo := i * total / p
			hi := (i + 1) * total / p
			at := SearchDiagonal(a, b, lo)
			for lo < hi {
				if stop.Load() {
					return
				}
				if ctx.Err() != nil {
					stop.Store(true)
					return
				}
				end := min(lo+cancelCheckElems, hi)
				at = MergeSteps(a, b, at, end-lo, out[lo:end])
				lo = end
			}
		}(i)
	}
	wg.Wait()
	if stop.Load() {
		return ctx.Err()
	}
	return nil
}
