package core

import (
	"cmp"
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// cancelCheckElems is how many output elements a worker produces between
// cancellation checks in the ctx-aware variants. Checking costs one
// atomic load plus (rarely) a ctx.Err call, so the chunk is sized to
// make that noise against ~64K merge steps while still bounding how long
// a canceled 100M-element round keeps the pool busy.
const cancelCheckElems = 1 << 16

// WorkerStat reports one worker's share of an instrumented parallel
// merge: how many output elements it produced and how its time split
// between the cross-diagonal binary search (the co-rank step that
// Theorem 5 charges O(log n) per worker) and the sequential merge loop
// (the (|A|+|B|)/p steps of Algorithm 1). The ratio Search/Merge is the
// partition overhead the paper argues is negligible; the Elements
// spread across workers is its load-balance guarantee, directly
// checkable per round.
type WorkerStat struct {
	// Elements is how many output elements this worker wrote. On a
	// canceled round it counts only the chunks actually completed.
	Elements int
	// Search is the time spent in SearchDiagonal finding the worker's
	// starting co-rank point.
	Search time.Duration
	// Merge is the time spent executing sequential merge steps.
	Merge time.Duration
}

// ParallelMergeCtx is ParallelMerge with cooperative cancellation: each
// worker executes its segment in chunks of cancelCheckElems output
// elements and abandons the rest once ctx is done. MergeSteps returns
// the co-rank point it reached, so chunking costs one diagonal search
// per worker total, not per chunk.
//
// Returns nil when the merge completed (out fully written) and ctx.Err()
// when it was abandoned — out is then only partially written and must be
// discarded. Panics exactly where ParallelMerge panics (p < 1, mis-sized
// out).
func ParallelMergeCtx[T cmp.Ordered](ctx context.Context, a, b, out []T, p int) error {
	_, err := parallelMergeCtx(ctx, a, b, out, p, false)
	return err
}

// ParallelMergeCtxStats is ParallelMergeCtx plus per-worker
// observability: it performs the identical chunked cancellable merge and
// additionally returns one WorkerStat per worker actually engaged (p is
// clamped to the total output size, like ParallelMerge). The timing adds
// two monotonic clock reads per chunk per worker — noise against the
// 64K merge steps a chunk performs — so the service layer uses this
// variant unconditionally for large partitioned rounds.
//
// The stats are returned even when the merge was abandoned (partial
// counts, ctx error non-nil), so a canceled round still accounts the
// work it burned.
func ParallelMergeCtxStats[T cmp.Ordered](ctx context.Context, a, b, out []T, p int) ([]WorkerStat, error) {
	return parallelMergeCtx(ctx, a, b, out, p, true)
}

// parallelMergeCtx is the shared engine of ParallelMergeCtx and
// ParallelMergeCtxStats; timed selects whether per-worker search/merge
// timing is collected (the returned slice is nil when it is not).
func parallelMergeCtx[T cmp.Ordered](ctx context.Context, a, b, out []T, p int, timed bool) ([]WorkerStat, error) {
	if p < 1 {
		panic("core: worker count must be positive")
	}
	if len(out) != len(a)+len(b) {
		panic("core: output length mismatch")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	total := len(a) + len(b)
	if total == 0 {
		if timed {
			return []WorkerStat{}, nil
		}
		return nil, nil
	}
	if p > total {
		p = total
	}
	var ws []WorkerStat
	if timed {
		ws = make([]WorkerStat, p)
	}
	// stop is the shared abandon flag: the first worker to observe ctx
	// done sets it, and every worker checks it at chunk boundaries —
	// one atomic load instead of p concurrent ctx.Err calls.
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		go func(i int) {
			defer wg.Done()
			lo := i * total / p
			hi := (i + 1) * total / p
			var t0 time.Time
			if timed {
				t0 = time.Now()
			}
			at := SearchDiagonal(a, b, lo)
			if timed {
				ws[i].Search = time.Since(t0)
			}
			for lo < hi {
				if stop.Load() {
					return
				}
				if ctx.Err() != nil {
					stop.Store(true)
					return
				}
				end := min(lo+cancelCheckElems, hi)
				if timed {
					t0 = time.Now()
				}
				at = MergeSteps(a, b, at, end-lo, out[lo:end])
				if timed {
					ws[i].Merge += time.Since(t0)
					ws[i].Elements += end - lo
				}
				lo = end
			}
		}(i)
	}
	wg.Wait()
	if stop.Load() {
		return ws, ctx.Err()
	}
	return ws, nil
}
