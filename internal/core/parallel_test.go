package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

func TestParallelMergeAllWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, kind := range workload.Kinds() {
		for _, p := range []int{1, 2, 3, 4, 7, 8, 16} {
			na, nb := 1000+rng.Intn(2000), 1000+rng.Intn(2000)
			a, b := workload.Pair(kind, na, nb, 99)
			out := make([]int32, na+nb)
			ParallelMerge(a, b, out, p)
			want := verify.ReferenceMerge(a, b)
			if !verify.Equal(out, want) {
				t.Fatalf("kind=%v p=%d: parallel merge differs from reference", kind, p)
			}
		}
	}
}

func TestParallelMergeTinyInputs(t *testing.T) {
	// p can exceed the total element count; empty inputs are legal.
	for _, p := range []int{1, 2, 5, 64} {
		for na := 0; na <= 4; na++ {
			for nb := 0; nb <= 4; nb++ {
				a := make([]int32, na)
				b := make([]int32, nb)
				for i := range a {
					a[i] = int32(2 * i)
				}
				for i := range b {
					b[i] = int32(2*i + 1)
				}
				out := make([]int32, na+nb)
				ParallelMerge(a, b, out, p)
				if !verify.IsMergeOf(out, a, b) {
					t.Fatalf("p=%d na=%d nb=%d: bad merge %v", p, na, nb, out)
				}
			}
		}
	}
}

func TestParallelMergePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for p=0")
			}
		}()
		ParallelMerge([]int32{1}, []int32{2}, make([]int32, 2), 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for bad output length")
			}
		}()
		ParallelMerge([]int32{1}, []int32{2}, make([]int32, 3), 2)
	}()
}

func TestParallelMergeFuncStability(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		na, nb := rng.Intn(500), rng.Intn(500)
		p := 1 + rng.Intn(8)
		keysA := workload.SortedUniform(rng, na, 10)
		keysB := workload.SortedUniform(rng, nb, 10)
		a := verify.Tag(keysA, 0)
		b := verify.Tag(keysB, 1)
		out := make([]verify.Tagged, na+nb)
		ParallelMergeFunc(a, b, out, p, verify.TaggedLess)
		if !verify.StableMergeOrder(out) {
			t.Fatalf("trial %d p=%d: parallel merge not stable", trial, p)
		}
	}
}

func TestParallelMergePrepartitioned(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 40; trial++ {
		na, nb := rng.Intn(800), rng.Intn(800)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		want := verify.ReferenceMerge(a, b)

		// Deliberately uneven partition: cut at random diagonals.
		cuts := 1 + rng.Intn(6)
		ks := make([]int, 0, cuts+2)
		ks = append(ks, 0)
		for i := 0; i < cuts; i++ {
			ks = append(ks, rng.Intn(na+nb+1))
		}
		ks = append(ks, na+nb)
		// Insertion sort the cut list.
		for i := 1; i < len(ks); i++ {
			for j := i; j > 0 && ks[j] < ks[j-1]; j-- {
				ks[j], ks[j-1] = ks[j-1], ks[j]
			}
		}
		bounds := make([]Point, len(ks))
		for i, k := range ks {
			bounds[i] = SearchDiagonal(a, b, k)
		}
		out := make([]int32, na+nb)
		ParallelMergePrepartitioned(a, b, out, bounds)
		if !verify.Equal(out, want) {
			t.Fatalf("trial %d: prepartitioned merge differs (cuts %v)", trial, ks)
		}
	}
}

func TestParallelMergePrepartitionedPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for single boundary")
			}
		}()
		ParallelMergePrepartitioned([]int32{}, []int32{}, []int32{}, []Point{{}})
	}()
}

func TestPoolMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	pool := NewPool(4)
	defer pool.Close()
	if pool.Workers() != 4 {
		t.Fatalf("workers = %d", pool.Workers())
	}
	for trial := 0; trial < 30; trial++ {
		na, nb := rng.Intn(3000), rng.Intn(3000)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		out := make([]int32, na+nb)
		MergeOnPool(pool, a, b, out)
		if !verify.IsMergeOf(out, a, b) {
			t.Fatalf("trial %d: pool merge incorrect", trial)
		}
	}
	// Tiny input goes through the inline path.
	out := make([]int32, 2)
	MergeOnPool(pool, []int32{5}, []int32{1}, out)
	if out[0] != 1 || out[1] != 5 {
		t.Fatalf("tiny pool merge: %v", out)
	}
}

func TestNewPoolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p=0")
		}
	}()
	NewPool(0)
}

func TestParallelMergeQuick(t *testing.T) {
	f := func(rawA, rawB []int32, pSeed uint8) bool {
		a, b := sortedCopy(rawA), sortedCopy(rawB)
		p := 1 + int(pSeed)%12
		out := make([]int32, len(a)+len(b))
		ParallelMerge(a, b, out, p)
		return verify.Equal(out, verify.ReferenceMerge(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParallelMerge1M(bench *testing.B) {
	rng := rand.New(rand.NewSource(34))
	a := workload.SortedUniform32(rng, 1<<20)
	b := workload.SortedUniform32(rng, 1<<20)
	out := make([]int32, len(a)+len(b))
	for _, p := range []int{1, 2, 4, 8} {
		bench.Run(benchName(p), func(bench *testing.B) {
			bench.SetBytes(int64(len(out) * 4))
			for i := 0; i < bench.N; i++ {
				ParallelMerge(a, b, out, p)
			}
		})
	}
}

func benchName(p int) string {
	return "p=" + string(rune('0'+p/10)) + string(rune('0'+p%10))
}
