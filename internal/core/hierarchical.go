package core

import (
	"cmp"
	"sync"
)

// This file implements the two-level ("hierarchical") refinement of
// Algorithm 1 that the merge-path technique became best known for in its
// GPU adoptions (ModernGPU, Thrust, CUB): a coarse partition splits the
// merge into blocks using global diagonal searches, and each block's team
// of workers then re-partitions its sub-array pair with *local* diagonal
// searches. The local searches bisect ranges of length at most the block
// size, so they cost O(log(blockSize)) instead of O(log min(|A|,|B|)),
// and every team touches only its own O(blockSize) window of the inputs —
// the same locality idea as Algorithm 2, applied to partitioning. On the
// CPU this maps to teams of goroutines; it is benchmarked as an ablation
// against the flat Algorithm 1.

// HierarchicalConfig shapes a two-level merge.
type HierarchicalConfig struct {
	// Blocks is the number of coarse segments (first-level partitions).
	// Values < 1 select one block per team.
	Blocks int
	// TeamSize is the number of workers cooperating inside each block.
	// Values < 1 select 1.
	TeamSize int
}

// HierarchicalMerge merges sorted a and b into out using cfg.Blocks coarse
// segments, each merged concurrently by cfg.TeamSize workers that
// subdivide the block with local diagonal searches. With Blocks=p and
// TeamSize=1 it degenerates to Algorithm 1.
func HierarchicalMerge[T cmp.Ordered](a, b, out []T, cfg HierarchicalConfig) {
	if len(out) != len(a)+len(b) {
		panic("core: output length mismatch")
	}
	blocks := cfg.Blocks
	if blocks < 1 {
		blocks = 1
	}
	team := cfg.TeamSize
	if team < 1 {
		team = 1
	}
	total := len(a) + len(b)
	if blocks > total {
		blocks = max(total, 1)
	}

	// Level 1: global, coarse partition — blocks-1 global diagonal
	// searches, performed in parallel exactly as Theorem 14 permits.
	coarse := make([]Point, blocks+1)
	coarse[blocks] = Point{A: len(a), B: len(b)}
	var wg sync.WaitGroup
	wg.Add(blocks - 1)
	for i := 1; i < blocks; i++ {
		go func(i int) {
			defer wg.Done()
			coarse[i] = SearchDiagonal(a, b, i*total/blocks)
		}(i)
	}
	wg.Wait()

	// Level 2: each block's team re-partitions locally and merges.
	wg.Add(blocks)
	for blk := 0; blk < blocks; blk++ {
		go func(blk int) {
			defer wg.Done()
			lo, hi := coarse[blk], coarse[blk+1]
			subA := a[lo.A:hi.A]
			subB := b[lo.B:hi.B]
			subOut := out[lo.Diagonal():hi.Diagonal()]
			teamMerge(subA, subB, subOut, team)
		}(blk)
	}
	wg.Wait()
}

// teamMerge merges one block with t workers using local diagonal searches.
func teamMerge[T cmp.Ordered](a, b, out []T, t int) {
	total := len(a) + len(b)
	if total == 0 {
		return
	}
	if t > total {
		t = total
	}
	if t == 1 {
		MergeSteps(a, b, Point{}, total, out)
		return
	}
	var wg sync.WaitGroup
	wg.Add(t)
	for w := 0; w < t; w++ {
		go func(w int) {
			defer wg.Done()
			lo := w * total / t
			hi := (w + 1) * total / t
			start := SearchDiagonal(a, b, lo) // local: bisects <= block size
			MergeSteps(a, b, start, hi-lo, out[lo:hi])
		}(w)
	}
	wg.Wait()
}

// PartitionRanks generalizes Partition to an arbitrary ascending list of
// output ranks (the multiselection of Deo–Sarkar [2] and of the paper's
// Theorem 14 with non-equispaced diagonals): the returned points, one per
// rank, are the merge-path crossings at those diagonals. Ranks outside
// [0, len(a)+len(b)] panic. The searches are independent; they run
// sequentially here because callers typically ask for few ranks.
func PartitionRanks[T cmp.Ordered](a, b []T, ranks []int) []Point {
	points := make([]Point, len(ranks))
	for i, k := range ranks {
		points[i] = SearchDiagonal(a, b, k)
	}
	return points
}
