package core

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

func TestParallelMergeCtxMatchesParallelMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 100, 1 << 12, 1<<17 + 13} {
		a := sortedSlice(rng, n)
		b := sortedSlice(rng, n/2+1)
		want := make([]int, len(a)+len(b))
		ParallelMerge(a, b, want, 4)
		got := make([]int, len(a)+len(b))
		if err := ParallelMergeCtx(context.Background(), a, b, got, 4); err != nil {
			t.Fatalf("n=%d: err %v", n, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: mismatch at %d", n, i)
			}
		}
	}
}

func TestParallelMergeCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(2))
	a := sortedSlice(rng, 1<<18)
	b := sortedSlice(rng, 1<<18)
	out := make([]int, len(a)+len(b))
	start := time.Now()
	err := ParallelMergeCtx(ctx, a, b, out, 4)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A canceled merge must return fast, not after doing all the work.
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("pre-canceled merge took %v", d)
	}
}

func TestParallelMergeCtxMidFlightCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Big enough that the merge spans many cancellation chunks.
	a := sortedSlice(rng, 1<<22)
	b := sortedSlice(rng, 1<<22)
	out := make([]int, len(a)+len(b))

	// Baseline: how long the full merge takes here.
	t0 := time.Now()
	ParallelMerge(a, b, out, 2)
	full := time.Since(t0)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(full / 10)
		cancel()
	}()
	t1 := time.Now()
	err := ParallelMergeCtx(ctx, a, b, out, 2)
	aborted := time.Since(t1)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if aborted >= full {
		t.Errorf("canceled merge took %v, full merge only %v — cancellation not observed early", aborted, full)
	}
}

// sortedSlice builds a sorted test input (non-decreasing, with ties).
func sortedSlice(rng *rand.Rand, n int) []int {
	s := make([]int, n)
	v := 0
	for i := range s {
		v += rng.Intn(4)
		s[i] = v
	}
	return s
}
