package fault

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNilInjectorIsNoop(t *testing.T) {
	var in *Injector
	for i := 0; i < 100; i++ {
		if err := in.Before("merge"); err != nil {
			t.Fatalf("nil injector returned %v", err)
		}
	}
}

func TestNoRuleNoFault(t *testing.T) {
	in := New(map[string]Rule{"sort": {Panic: 1}}, 1)
	for i := 0; i < 100; i++ {
		if err := in.Before("merge"); err != nil {
			t.Fatalf("op without rule returned %v", err)
		}
	}
	if n := in.Panics.Load(); n != 0 {
		t.Fatalf("panics = %d, want 0", n)
	}
}

func TestPanicProbabilityOne(t *testing.T) {
	in := New(map[string]Rule{"merge": {Panic: 1}}, 1)
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("panic=1 rule did not panic")
		}
		pv, ok := v.(PanicValue)
		if !ok || pv.Op != "merge" {
			t.Fatalf("panic value %v, want PanicValue{merge}", v)
		}
		if in.Panics.Load() != 1 {
			t.Fatalf("panic counter = %d, want 1", in.Panics.Load())
		}
	}()
	in.Before("merge")
}

func TestErrorProbabilityOne(t *testing.T) {
	in := New(map[string]Rule{"sort": {Error: 1}}, 1)
	err := in.Before("sort")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("error=1 rule returned %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "op=sort") {
		t.Fatalf("error %q does not name the op", err)
	}
	if in.Errors.Load() != 1 {
		t.Fatalf("error counter = %d, want 1", in.Errors.Load())
	}
}

func TestLatencyInjection(t *testing.T) {
	in := New(map[string]Rule{"*": {Latency: 20 * time.Millisecond, LatencyProb: 1}}, 1)
	start := time.Now()
	if err := in.Before("anything"); err != nil {
		t.Fatalf("latency-only rule returned %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("Before returned after %v, want >= 20ms", d)
	}
	if in.Sleeps.Load() != 1 {
		t.Fatalf("sleep counter = %d, want 1", in.Sleeps.Load())
	}
}

func TestWildcardFallback(t *testing.T) {
	in := New(map[string]Rule{"*": {Error: 1}, "sort": {}}, 1)
	if err := in.Before("merge"); !errors.Is(err, ErrInjected) {
		t.Fatalf("wildcard did not apply to merge: %v", err)
	}
	// sort has its own (empty) rule, which shadows the wildcard.
	if err := in.Before("sort"); err != nil {
		t.Fatalf("specific empty rule shadowed by wildcard: %v", err)
	}
}

func TestDeterministicAcrossSeeds(t *testing.T) {
	count := func(seed int64) uint64 {
		in := New(map[string]Rule{"merge": {Error: 0.3}}, seed)
		for i := 0; i < 1000; i++ {
			in.Before("merge")
		}
		return in.Errors.Load()
	}
	if a, b := count(7), count(7); a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
	n := count(7)
	if n < 200 || n > 400 {
		t.Fatalf("error=0.3 over 1000 trials fired %d times", n)
	}
}

func TestParse(t *testing.T) {
	in, err := Parse("merge:panic=0.5;sort:error=0.25,latency=2ms@0.75;*:latency=1ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]Rule{
		"merge": {Panic: 0.5},
		"sort":  {Error: 0.25, Latency: 2 * time.Millisecond, LatencyProb: 0.75},
		"*":     {Latency: time.Millisecond, LatencyProb: 1},
	}
	for op, want := range cases {
		if got := in.rules[op]; got != want {
			t.Errorf("rules[%q] = %+v, want %+v", op, got, want)
		}
	}
	// Empty spec: valid, no rules.
	if in, err := Parse("", 1); err != nil || len(in.rules) != 0 {
		t.Errorf("empty spec: %v, %d rules", err, len(in.rules))
	}
}

func TestParseRejectsMalformedSpecs(t *testing.T) {
	for _, spec := range []string{
		"nokey",             // no op separator
		":panic=1",          // empty op
		"merge:panic",       // no value
		"merge:panic=2",     // probability out of range
		"merge:panic=x",     // non-numeric probability
		"merge:latency=-1s", // negative duration
		"merge:latency=1ms@1.5",
		"merge:explode=1", // unknown key
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", spec)
		}
	}
}
