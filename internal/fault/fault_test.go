package fault

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsNoop(t *testing.T) {
	var in *Injector
	for i := 0; i < 100; i++ {
		if err := in.Before("merge"); err != nil {
			t.Fatalf("nil injector returned %v", err)
		}
	}
}

func TestNoRuleNoFault(t *testing.T) {
	in := New(map[string]Rule{"sort": {Panic: 1}}, 1)
	for i := 0; i < 100; i++ {
		if err := in.Before("merge"); err != nil {
			t.Fatalf("op without rule returned %v", err)
		}
	}
	if n := in.Panics.Load(); n != 0 {
		t.Fatalf("panics = %d, want 0", n)
	}
}

func TestPanicProbabilityOne(t *testing.T) {
	in := New(map[string]Rule{"merge": {Panic: 1}}, 1)
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("panic=1 rule did not panic")
		}
		pv, ok := v.(PanicValue)
		if !ok || pv.Op != "merge" {
			t.Fatalf("panic value %v, want PanicValue{merge}", v)
		}
		if in.Panics.Load() != 1 {
			t.Fatalf("panic counter = %d, want 1", in.Panics.Load())
		}
	}()
	in.Before("merge")
}

func TestErrorProbabilityOne(t *testing.T) {
	in := New(map[string]Rule{"sort": {Error: 1}}, 1)
	err := in.Before("sort")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("error=1 rule returned %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "op=sort") {
		t.Fatalf("error %q does not name the op", err)
	}
	if in.Errors.Load() != 1 {
		t.Fatalf("error counter = %d, want 1", in.Errors.Load())
	}
}

func TestLatencyInjection(t *testing.T) {
	in := New(map[string]Rule{"*": {Latency: 20 * time.Millisecond, LatencyProb: 1}}, 1)
	start := time.Now()
	if err := in.Before("anything"); err != nil {
		t.Fatalf("latency-only rule returned %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("Before returned after %v, want >= 20ms", d)
	}
	if in.Sleeps.Load() != 1 {
		t.Fatalf("sleep counter = %d, want 1", in.Sleeps.Load())
	}
}

func TestWildcardFallback(t *testing.T) {
	in := New(map[string]Rule{"*": {Error: 1}, "sort": {}}, 1)
	if err := in.Before("merge"); !errors.Is(err, ErrInjected) {
		t.Fatalf("wildcard did not apply to merge: %v", err)
	}
	// sort has its own (empty) rule, which shadows the wildcard.
	if err := in.Before("sort"); err != nil {
		t.Fatalf("specific empty rule shadowed by wildcard: %v", err)
	}
}

func TestDeterministicAcrossSeeds(t *testing.T) {
	count := func(seed int64) uint64 {
		in := New(map[string]Rule{"merge": {Error: 0.3}}, seed)
		for i := 0; i < 1000; i++ {
			in.Before("merge")
		}
		return in.Errors.Load()
	}
	if a, b := count(7), count(7); a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
	n := count(7)
	if n < 200 || n > 400 {
		t.Fatalf("error=0.3 over 1000 trials fired %d times", n)
	}
}

func TestParse(t *testing.T) {
	in, err := Parse("merge:panic=0.5;sort:error=0.25,latency=2ms@0.75;*:latency=1ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]Rule{
		"merge": {Panic: 0.5},
		"sort":  {Error: 0.25, Latency: 2 * time.Millisecond, LatencyProb: 0.75},
		"*":     {Latency: time.Millisecond, LatencyProb: 1},
	}
	for op, want := range cases {
		if got := in.rules[op]; got != want {
			t.Errorf("rules[%q] = %+v, want %+v", op, got, want)
		}
	}
	// Empty spec: valid, no rules.
	if in, err := Parse("", 1); err != nil || len(in.rules) != 0 {
		t.Errorf("empty spec: %v, %d rules", err, len(in.rules))
	}
}

func TestSetEnabledGatesInjection(t *testing.T) {
	in := New(map[string]Rule{"*": {Error: 1}}, 1)
	if !in.Enabled() {
		t.Fatal("injector should start enabled")
	}
	if err := in.Before("merge"); !errors.Is(err, ErrInjected) {
		t.Fatalf("enabled injector returned %v, want ErrInjected", err)
	}
	in.SetEnabled(false)
	if in.Enabled() {
		t.Fatal("Enabled() after SetEnabled(false)")
	}
	for i := 0; i < 50; i++ {
		if err := in.Before("merge"); err != nil {
			t.Fatalf("disabled injector returned %v", err)
		}
	}
	if n := in.Errors.Load(); n != 1 {
		t.Fatalf("errors while disabled: counter = %d, want 1", n)
	}
	in.SetEnabled(true)
	if err := in.Before("merge"); !errors.Is(err, ErrInjected) {
		t.Fatalf("re-enabled injector returned %v, want ErrInjected", err)
	}
	// Nil receiver: both gates are safe no-ops.
	var nilIn *Injector
	nilIn.SetEnabled(true)
	if nilIn.Enabled() {
		t.Fatal("nil injector reports enabled")
	}
}

// TestConcurrentBeforeDeterministic hammers one seeded Spec from many
// goroutines (run under -race via the Makefile race/soak targets). With
// a single shared rule every call's coin flips consume the same rng
// draw pattern, so the aggregate fault counts must be identical across
// runs regardless of goroutine interleaving.
func TestConcurrentBeforeDeterministic(t *testing.T) {
	const goroutines, perG = 8, 500
	runOnce := func() (errs, sleeps uint64) {
		in := New(map[string]Rule{"*": {Error: 0.3, Latency: time.Nanosecond, LatencyProb: 0.5}}, 99)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				op := []string{"merge", "sort", "mergek"}[g%3]
				for i := 0; i < perG; i++ {
					in.Before(op)
				}
			}(g)
		}
		wg.Wait()
		return in.Errors.Load(), in.Sleeps.Load()
	}
	e1, s1 := runOnce()
	e2, s2 := runOnce()
	if e1 != e2 || s1 != s2 {
		t.Fatalf("same seed diverged under concurrency: errors %d vs %d, sleeps %d vs %d", e1, e2, s1, s2)
	}
	const n = goroutines * perG
	if e1 < n/5 || e1 > n/2 {
		t.Fatalf("error=0.3 over %d concurrent trials fired %d times", n, e1)
	}
}

// TestConcurrentPanicRecovery drives a panic-heavy rule from many
// goroutines, each recovering, to prove the injector itself stays
// consistent when callers blow up mid-call.
func TestConcurrentPanicRecovery(t *testing.T) {
	in := New(map[string]Rule{"merge": {Panic: 0.5}}, 7)
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				func() {
					defer func() {
						if v := recover(); v != nil {
							if pv, ok := v.(PanicValue); !ok || pv.Op != "merge" {
								t.Errorf("panic value %v, want PanicValue{merge}", v)
							}
						}
					}()
					in.Before("merge")
				}()
			}
		}()
	}
	wg.Wait()
	if n := in.Panics.Load(); n == 0 || n > goroutines*perG {
		t.Fatalf("panic counter = %d out of %d calls", n, goroutines*perG)
	}
}

func TestParseEdgeCases(t *testing.T) {
	// Whitespace-and-separator-only specs are valid and empty.
	for _, spec := range []string{";;", "  ;  ; ", ";"} {
		in, err := Parse(spec, 1)
		if err != nil || len(in.rules) != 0 {
			t.Errorf("Parse(%q) = %v, %d rules; want valid empty", spec, err, len(in.rules))
		}
	}
	// Zero-probability entries parse fine and never fire.
	in, err := Parse("merge:panic=0,error=0,latency=1ms@0", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := in.Before("merge"); err != nil {
			t.Fatalf("zero-probability rule fired: %v", err)
		}
	}
	if in.Panics.Load()+in.Errors.Load()+in.Sleeps.Load() != 0 {
		t.Fatal("zero-probability rule moved a counter")
	}
	// An op clause with an unknown key is rejected, even alongside
	// valid keys.
	if _, err := Parse("merge:error=0.1,jitter=1ms", 1); err == nil {
		t.Error("unknown key in a multi-key clause was accepted")
	}
}

func TestParseRejectsMalformedSpecs(t *testing.T) {
	for _, spec := range []string{
		"nokey",             // no op separator
		":panic=1",          // empty op
		"merge:panic",       // no value
		"merge:panic=2",     // probability out of range
		"merge:panic=x",     // non-numeric probability
		"merge:latency=-1s", // negative duration
		"merge:latency=1ms@1.5",
		"merge:explode=1", // unknown key
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", spec)
		}
	}
}

func TestHitDrawsTheErrorCoin(t *testing.T) {
	in, err := Parse("disk.enospc:error=1;disk.flip:error=0", 7)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Hit("disk.enospc") {
		t.Fatal("error=1 rule did not hit")
	}
	if in.Hit("disk.flip") {
		t.Fatal("error=0 rule hit")
	}
	if in.Hit("disk.unruled") {
		t.Fatal("op without a rule hit")
	}
	if got := in.Errors.Load(); got != 1 {
		t.Fatalf("Errors counter: %d, want 1", got)
	}
	// The runtime gate applies to Hit like it does to Before.
	in.SetEnabled(false)
	if in.Hit("disk.enospc") {
		t.Fatal("disabled injector hit")
	}
	// A nil injector never hits.
	var nilInj *Injector
	if nilInj.Hit("disk.enospc") {
		t.Fatal("nil injector hit")
	}
}
