// Package fault is deterministic probabilistic fault injection for the
// service layer: panics, synthetic errors, and added latency, keyed by
// request op ("merge", "sort", ...). The dispatcher calls Before(op) at
// the start of a round; the injector then, by seeded coin flips, sleeps,
// returns an error, or panics — exercising exactly the failure paths the
// hardening layer (panic recovery, cancellation, shed-at-flush) exists
// to contain. Production daemons run with a nil *Injector, which is a
// no-op on every call.
//
// Rules are written as a compact spec, one clause per op, ';'-separated:
//
//	merge:panic=0.1;sort:error=0.05,latency=2ms@0.5;*:latency=1ms
//
// Keys: panic=<prob> and error=<prob> are probabilities in [0,1];
// latency=<duration>[@<prob>] sleeps for the duration with the given
// probability (default 1). The op "*" applies to every op without a more
// specific clause.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error returned by error-injection rules; the server
// maps it (like any other round error) to a 500.
var ErrInjected = errors.New("fault: injected error")

// Rule is the per-op fault mix.
type Rule struct {
	Panic       float64       // probability of panicking
	Error       float64       // probability of returning ErrInjected
	Latency     time.Duration // added latency when the latency coin hits
	LatencyProb float64       // probability of sleeping Latency
}

// Injector applies Rules with a seeded RNG so chaos runs are
// reproducible. The zero Injector (and a nil *Injector) injects nothing.
type Injector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	rules    map[string]Rule
	disabled atomic.Bool // runtime gate: soak tests clear the fault mid-run

	// Panics counts injected panics; exported (with Errors and Sleeps)
	// so tests and the chaos load generator can assert how much havoc
	// was actually wreaked.
	Panics atomic.Uint64
	// Errors counts injected errors (Before's ErrInjected returns and
	// Hit's true verdicts).
	Errors atomic.Uint64
	// Sleeps counts injected latency sleeps.
	Sleeps atomic.Uint64
}

// SetEnabled turns injection on or off at runtime without swapping the
// injector out of the server config. Chaos soaks use it to model a
// fault that clears: inject until the overload machinery trips, then
// disable and watch the system recover. Injectors start enabled; safe
// on a nil receiver (no-op).
func (in *Injector) SetEnabled(on bool) {
	if in != nil {
		in.disabled.Store(!on)
	}
}

// Enabled reports whether the injector is currently injecting. A nil
// injector is never enabled.
func (in *Injector) Enabled() bool { return in != nil && !in.disabled.Load() }

// New builds an Injector over explicit rules. The op "*" is the
// fallback for ops without their own rule.
func New(rules map[string]Rule, seed int64) *Injector {
	r := make(map[string]Rule, len(rules))
	for op, rule := range rules {
		r[op] = rule
	}
	return &Injector{rng: rand.New(rand.NewSource(seed)), rules: r}
}

// Parse builds an Injector from a spec string (see the package comment
// for the grammar). An empty spec yields an injector with no rules.
func Parse(spec string, seed int64) (*Injector, error) {
	rules := map[string]Rule{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		op, body, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("fault: clause %q missing op (want op:key=val,...)", clause)
		}
		op = strings.TrimSpace(op)
		if op == "" {
			return nil, fmt.Errorf("fault: clause %q has empty op", clause)
		}
		var rule Rule
		for _, kv := range strings.Split(body, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("fault: %q is not key=value", kv)
			}
			switch key {
			case "panic", "error":
				p, err := strconv.ParseFloat(val, 64)
				if err != nil || p < 0 || p > 1 {
					return nil, fmt.Errorf("fault: %s=%q is not a probability in [0,1]", key, val)
				}
				if key == "panic" {
					rule.Panic = p
				} else {
					rule.Error = p
				}
			case "latency":
				dur, prob := val, "1"
				if d, pr, ok := strings.Cut(val, "@"); ok {
					dur, prob = d, pr
				}
				d, err := time.ParseDuration(dur)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("fault: latency=%q is not a non-negative duration", val)
				}
				p, err := strconv.ParseFloat(prob, 64)
				if err != nil || p < 0 || p > 1 {
					return nil, fmt.Errorf("fault: latency probability %q is not in [0,1]", prob)
				}
				rule.Latency, rule.LatencyProb = d, p
			default:
				return nil, fmt.Errorf("fault: unknown key %q (want panic, error or latency)", key)
			}
		}
		rules[op] = rule
	}
	return New(rules, seed), nil
}

// PanicValue is what an injected panic carries, so recovery sites (and
// their tests) can tell injected panics from real bugs.
type PanicValue struct {
	// Op is the request op whose rule fired the panic.
	Op string
}

// String renders the panic value for logs and recovery sites.
func (v PanicValue) String() string { return "fault: injected panic (op=" + v.Op + ")" }

// Hit draws op's error coin and reports whether it fired, honouring the
// rule's latency clause first (counted like Before's). It exists for
// callers that implement their own fault shape instead of taking the
// generic ErrInjected — the storage layer keys disk faults this way
// (short write, ENOSPC, fsync failure, read-side bit flip) so one spec
// grammar drives both request-path and disk-path chaos:
//
//	disk.enospc:error=0.01;disk.flip:error=0.001
//
// Panic clauses are ignored: a disk does not panic, it fails. Safe on a
// nil receiver (never hits).
func (in *Injector) Hit(op string) bool {
	if in == nil || in.disabled.Load() {
		return false
	}
	rule, ok := in.rules[op]
	if !ok {
		rule, ok = in.rules["*"]
		if !ok {
			return false
		}
	}
	sleep, fail, _ := in.flip(rule)
	if sleep {
		in.Sleeps.Add(1)
		time.Sleep(rule.Latency)
	}
	if fail {
		in.Errors.Add(1)
	}
	return fail
}

// Before runs the op's rule: it may sleep, return ErrInjected, or panic
// with a PanicValue — in that order of evaluation, so a rule with both
// latency and panic delays before blowing up (the realistic failure
// shape: a slow request that then dies). Safe on a nil receiver.
func (in *Injector) Before(op string) error {
	if in == nil || in.disabled.Load() {
		return nil
	}
	rule, ok := in.rules[op]
	if !ok {
		rule, ok = in.rules["*"]
		if !ok {
			return nil
		}
	}
	sleep, fail, die := in.flip(rule)
	if sleep {
		in.Sleeps.Add(1)
		time.Sleep(rule.Latency)
	}
	if die {
		in.Panics.Add(1)
		panic(PanicValue{Op: op})
	}
	if fail {
		in.Errors.Add(1)
		return fmt.Errorf("%w (op=%s)", ErrInjected, op)
	}
	return nil
}

// flip draws the three coins under one lock so concurrent callers keep
// the rng's determinism (a fixed seed yields a fixed total fault count,
// independent of interleaving only in the single-caller case — which is
// exactly the dispatcher's usage).
func (in *Injector) flip(rule Rule) (sleep, fail, die bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	sleep = rule.Latency > 0 && rule.LatencyProb > 0 && in.rng.Float64() < rule.LatencyProb
	die = rule.Panic > 0 && in.rng.Float64() < rule.Panic
	fail = !die && rule.Error > 0 && in.rng.Float64() < rule.Error
	return sleep, fail, die
}
