// Package promtext renders the Prometheus text exposition format
// (version 0.0.4) used by the daemons' /metrics/prom endpoints. It
// exists so mergepathd and mergerouter emit byte-compatible documents
// from one writer instead of two hand-rolled ones: each Writer
// accumulates samples, emitting every metric's # HELP / # TYPE preamble
// exactly once, on first use. Latency histograms are exported as
// summaries (quantile series plus _sum and _count), which is what the
// fixed-bucket streaming histogram supports without re-bucketing; the
// unit convention is seconds, per Prometheus practice (see
// stats.Millis for the repo-wide unit policy).
package promtext

import (
	"fmt"
	"strconv"
	"strings"

	"mergepath/internal/stats"
)

// ContentType is the content type Prometheus scrapers expect for the
// text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Writer accumulates one exposition document. The zero value is not
// usable; construct with NewWriter.
type Writer struct {
	b      strings.Builder
	headed map[string]bool
}

// NewWriter returns an empty exposition document.
func NewWriter() *Writer {
	return &Writer{headed: make(map[string]bool)}
}

// Head writes the HELP/TYPE preamble for name once; later calls for the
// same name are no-ops so labelled series can share one preamble.
func (w *Writer) Head(name, typ, help string) {
	if w.headed[name] {
		return
	}
	w.headed[name] = true
	fmt.Fprintf(&w.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Sample emits one series: name{labels} value. labels may be "".
func (w *Writer) Sample(name, labels string, value float64) {
	w.b.WriteString(name)
	if labels != "" {
		w.b.WriteByte('{')
		w.b.WriteString(labels)
		w.b.WriteByte('}')
	}
	w.b.WriteByte(' ')
	w.b.WriteString(strconv.FormatFloat(value, 'g', -1, 64))
	w.b.WriteByte('\n')
}

// Counter emits a labelled counter sample with its preamble.
func (w *Writer) Counter(name, labels, help string, value float64) {
	w.Head(name, "counter", help)
	w.Sample(name, labels, value)
}

// Gauge emits a labelled gauge sample with its preamble.
func (w *Writer) Gauge(name, labels, help string, value float64) {
	w.Head(name, "gauge", help)
	w.Sample(name, labels, value)
}

// Secs converts a wire-format millisecond value to seconds, the
// exposition's unit convention.
func Secs(ms float64) float64 { return ms / 1e3 }

// LatencySummary emits one latency histogram snapshot as a Prometheus
// summary in seconds: p50/p95/p99 quantile series plus _sum and _count.
func (w *Writer) LatencySummary(name, labels, help string, h stats.HistogramSnapshot) {
	w.Head(name, "summary", help)
	sep := ""
	if labels != "" {
		sep = ","
	}
	w.Sample(name, labels+sep+`quantile="0.5"`, Secs(h.P50MS))
	w.Sample(name, labels+sep+`quantile="0.95"`, Secs(h.P95MS))
	w.Sample(name, labels+sep+`quantile="0.99"`, Secs(h.P99MS))
	w.Sample(name+"_sum", labels, Secs(h.SumMS))
	w.Sample(name+"_count", labels, float64(h.Count))
}

// String returns the accumulated exposition document.
func (w *Writer) String() string { return w.b.String() }
