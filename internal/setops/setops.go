// Package setops implements parallel sorted-set operations — union,
// intersection, difference — on top of merge-path partitioning. These are
// the postings-list / sorted-index workloads where parallel merging earns
// its keep in practice (§I motivates merging as a building block; set
// operations are the same two-pointer walk with filtering).
//
// Parallelization reuses Corollary 6 unchanged: any cut of the merge path
// yields independent sub-walks whose outputs concatenate in order. The
// wrinkle is duplicates straddling a cut: a naive per-segment two-pointer
// walk can match the same b-copy from two workers. The implementation is
// therefore *rank-canonical*: within an equal-value run holding x copies
// in a and y copies in b, the t-th a-copy is defined to match the t-th
// b-copy. Every emission decision depends only on a copy's global rank
// within its run (recovered with one binary search per distinct boundary
// value) and the run's global counts — quantities identical no matter
// where cuts fall, so segments never disagree or double-count.
//
// Multiset semantics for an element with x copies in a and y in b:
//
//	Union:     max(x, y) copies
//	Intersect: min(x, y) copies
//	Diff:      max(0, x-y) copies
//
// With true set inputs (no internal duplicates) these are the classic set
// operations. Inputs must be sorted; outputs are sorted.
package setops

import (
	"cmp"
	"sync"

	"mergepath/internal/core"
)

// minParallel is the total input size under which parallel dispatch is
// pure overhead and the walks run sequentially.
const minParallel = 1 << 12

// Union returns the sorted multiset union of a and b using up to p
// workers.
func Union[T cmp.Ordered](a, b []T, p int) []T {
	return run(a, b, p, unionWalk[T])
}

// Intersect returns the sorted multiset intersection.
func Intersect[T cmp.Ordered](a, b []T, p int) []T {
	return run(a, b, p, intersectWalk[T])
}

// Diff returns the sorted multiset difference a minus b.
func Diff[T cmp.Ordered](a, b []T, p int) []T {
	return run(a, b, p, diffWalk[T])
}

// walkFunc processes merge-path segment [lo, hi), appending the
// operation's output to dst. It may read anywhere in a and b (to recover
// global run ranks) but owns only its segment's emissions.
type walkFunc[T cmp.Ordered] func(a, b []T, lo, hi core.Point, dst []T) []T

func run[T cmp.Ordered](a, b []T, p int, walk walkFunc[T]) []T {
	if p < 1 {
		panic("setops: worker count must be positive")
	}
	total := len(a) + len(b)
	if limit := total / minParallel; p > limit {
		p = limit
	}
	if p <= 1 {
		return walk(a, b, core.Point{}, core.Point{A: len(a), B: len(b)}, nil)
	}
	bounds := core.Partition(a, b, p)
	parts := make([][]T, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		go func(i int) {
			defer wg.Done()
			parts[i] = walk(a, b, bounds[i], bounds[i+1], nil)
		}(i)
	}
	wg.Wait()
	n := 0
	for _, part := range parts {
		n += len(part)
	}
	out := make([]T, 0, n)
	for _, part := range parts {
		out = append(out, part...)
	}
	return out
}

// lowerBound returns the first index with s[i] >= v.
func lowerBound[T cmp.Ordered](s []T, v T) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the first index with s[i] > v.
func upperBound[T cmp.Ordered](s []T, v T) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// appendN appends c copies of v.
func appendN[T any](dst []T, v T, c int) []T {
	for ; c > 0; c-- {
		dst = append(dst, v)
	}
	return dst
}

// intersectWalk emits, for each a-run slice [i, e) of value v inside the
// segment, the copies whose global run rank t (t = index - first index of
// v in a) falls below y = count of v in b: rank-canonical pairing.
func intersectWalk[T cmp.Ordered](a, b []T, lo, hi core.Point, dst []T) []T {
	i := lo.A
	bHint := lo.B // b is only consulted from here rightward
	for i < hi.A {
		v := a[i]
		e := i + 1
		for e < hi.A && a[e] == v {
			e++
		}
		// Global rank of a[i] within its run: nonzero only when the
		// segment starts mid-run, so the binary search is rare.
		t0 := 0
		if i > 0 && a[i-1] == v {
			t0 = i - lowerBound(a[:i], v)
		}
		yLo := bHint + lowerBound(b[bHint:], v)
		yHi := yLo + upperBound(b[yLo:], v)
		bHint = yHi
		y := yHi - yLo
		// Copies t0 .. t0+(e-i)-1 pair with b-copies while t < y.
		emit := min(e-i, max(0, y-t0))
		dst = appendN(dst, v, emit)
		i = e
	}
	return dst
}

// diffWalk emits a-copies whose rank t is at least y (the first y copies
// are cancelled by b's copies, canonically).
func diffWalk[T cmp.Ordered](a, b []T, lo, hi core.Point, dst []T) []T {
	i := lo.A
	bHint := lo.B
	for i < hi.A {
		v := a[i]
		e := i + 1
		for e < hi.A && a[e] == v {
			e++
		}
		t0 := 0
		if i > 0 && a[i-1] == v {
			t0 = i - lowerBound(a[:i], v)
		}
		yLo := bHint + lowerBound(b[bHint:], v)
		yHi := yLo + upperBound(b[yLo:], v)
		bHint = yHi
		y := yHi - yLo
		// Copy with rank t survives iff t >= y.
		surviveFrom := max(t0, y)
		emit := max(0, t0+(e-i)-surviveFrom)
		dst = appendN(dst, v, emit)
		i = e
	}
	return dst
}

// unionWalk walks the segment's path steps in order: every a-step emits;
// a b-step of value v and global run rank t emits iff t >= x, where x is
// v's count in a (those b-copies have no a-partner). Order is preserved
// because the path visits all of a run's a-steps before its b-steps
// (the tie rule) and omissions do not reorder.
func unionWalk[T cmp.Ordered](a, b []T, lo, hi core.Point, dst []T) []T {
	i, j := lo.A, lo.B
	for i < hi.A || j < hi.B {
		if i < hi.A && (j >= len(b) || a[i] <= b[j]) {
			dst = append(dst, a[i])
			i++
			continue
		}
		// b-step for value v: process the whole in-segment b-run at once.
		v := b[j]
		e := j + 1
		for e < hi.B && b[e] == v {
			e++
		}
		t0 := 0
		if j > 0 && b[j-1] == v {
			t0 = j - lowerBound(b[:j], v)
		}
		// Count of v in a. The path visits all equal a-copies before these
		// b-steps, and i tracks the path's global a-co-rank, so every
		// v-copy in a lies inside a[:i].
		aEnd := min(i, len(a))
		xLo := lowerBound(a[:aEnd], v)
		x := upperBound(a[xLo:aEnd], v)
		// Ranks t0 .. t0+(e-j)-1; emit those with t >= x.
		emitFrom := max(t0, x)
		emit := max(0, t0+(e-j)-emitFrom)
		dst = appendN(dst, v, emit)
		j = e
	}
	return dst
}
