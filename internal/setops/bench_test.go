package setops

import (
	"fmt"
	"math/rand"
	"testing"

	"mergepath/internal/workload"
)

func benchLists(n int) (a, b []int32) {
	rng := rand.New(rand.NewSource(1))
	// Zipf-skewed document frequencies: the realistic postings shape.
	return workload.SortedZipf(rng, n, n/4), workload.SortedZipf(rng, n, n/4)
}

func BenchmarkSetOps(b *testing.B) {
	const n = 1 << 20
	x, y := benchLists(n)
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("union/p=%d", p), func(b *testing.B) {
			b.SetBytes(int64(2*n) * 4)
			for i := 0; i < b.N; i++ {
				Union(x, y, p)
			}
		})
		b.Run(fmt.Sprintf("intersect/p=%d", p), func(b *testing.B) {
			b.SetBytes(int64(2*n) * 4)
			for i := 0; i < b.N; i++ {
				Intersect(x, y, p)
			}
		})
		b.Run(fmt.Sprintf("diff/p=%d", p), func(b *testing.B) {
			b.SetBytes(int64(2*n) * 4)
			for i := 0; i < b.N; i++ {
				Diff(x, y, p)
			}
		})
	}
}

func TestSetOpsOnZipf(t *testing.T) {
	// The Zipf workload stresses very long equal runs; validate against
	// the references under forced cuts.
	rng := rand.New(rand.NewSource(2))
	a := workload.SortedZipf(rng, 5000, 100)
	b := workload.SortedZipf(rng, 4000, 100)
	for _, p := range []int{3, 9, 17} {
		if got, want := forceParallel(a, b, p, unionWalk[int32]), refUnion(a, b); !equal(got, want) {
			t.Fatalf("union p=%d on zipf: mismatch", p)
		}
		if got, want := forceParallel(a, b, p, intersectWalk[int32]), refIntersect(a, b); !equal(got, want) {
			t.Fatalf("intersect p=%d on zipf: mismatch", p)
		}
		if got, want := forceParallel(a, b, p, diffWalk[int32]), refDiff(a, b); !equal(got, want) {
			t.Fatalf("diff p=%d on zipf: mismatch", p)
		}
	}
}
