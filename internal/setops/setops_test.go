package setops

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mergepath/internal/core"
	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

// Reference implementations: simple sequential multiset operations.

func refUnion(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func refIntersect(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case b[j] < a[i]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func refDiff(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) {
		switch {
		case j >= len(b) || a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			j++
		default:
			i++
			j++
		}
	}
	return out
}

func sortedDup(rng *rand.Rand, n, domain int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(rng.Intn(domain))
	}
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s
}

func TestOpsMatchReferenceSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(180))
	for trial := 0; trial < 200; trial++ {
		domain := 1 + rng.Intn(20) // heavy duplication
		a := sortedDup(rng, rng.Intn(60), domain)
		b := sortedDup(rng, rng.Intn(60), domain)
		if got, want := Union(a, b, 1), refUnion(a, b); !equal(got, want) {
			t.Fatalf("union a=%v b=%v: got %v want %v", a, b, got, want)
		}
		if got, want := Intersect(a, b, 1), refIntersect(a, b); !equal(got, want) {
			t.Fatalf("intersect a=%v b=%v: got %v want %v", a, b, got, want)
		}
		if got, want := Diff(a, b, 1), refDiff(a, b); !equal(got, want) {
			t.Fatalf("diff a=%v b=%v: got %v want %v", a, b, got, want)
		}
	}
}

// forceParallel runs a walk with explicit cuts (bypassing the size gate) to
// test boundary behaviour deterministically on small inputs.
func forceParallel(a, b []int32, p int, walk walkFunc[int32]) []int32 {
	bounds := core.Partition(a, b, p)
	var out []int32
	for i := 0; i+1 < len(bounds); i++ {
		out = walk(a, b, bounds[i], bounds[i+1], out)
	}
	return out
}

func TestOpsCutSafetyExhaustive(t *testing.T) {
	// Every possible p for small duplicate-heavy inputs: segment
	// concatenation must equal the sequential reference regardless of where
	// cuts fall — the rank-canonical matching property.
	rng := rand.New(rand.NewSource(181))
	for trial := 0; trial < 150; trial++ {
		domain := 1 + rng.Intn(6)
		a := sortedDup(rng, rng.Intn(30), domain)
		b := sortedDup(rng, rng.Intn(30), domain)
		for p := 2; p <= len(a)+len(b)+1; p++ {
			if got, want := forceParallel(a, b, p, unionWalk[int32]), refUnion(a, b); !equal(got, want) {
				t.Fatalf("union p=%d a=%v b=%v: got %v want %v", p, a, b, got, want)
			}
			if got, want := forceParallel(a, b, p, intersectWalk[int32]), refIntersect(a, b); !equal(got, want) {
				t.Fatalf("intersect p=%d a=%v b=%v: got %v want %v", p, a, b, got, want)
			}
			if got, want := forceParallel(a, b, p, diffWalk[int32]), refDiff(a, b); !equal(got, want) {
				t.Fatalf("diff p=%d a=%v b=%v: got %v want %v", p, a, b, got, want)
			}
		}
	}
}

func TestOpsRegressionSplitRun(t *testing.T) {
	// The case that breaks naive per-segment two-pointer walks: x=2 copies
	// in a, y=1 in b, cut between the two a-copies.
	a := []int32{5, 5}
	b := []int32{5}
	if got := forceParallel(a, b, 3, intersectWalk[int32]); len(got) != 1 {
		t.Fatalf("intersect must emit exactly 1 copy, got %v", got)
	}
	if got := forceParallel(a, b, 3, unionWalk[int32]); len(got) != 2 {
		t.Fatalf("union must emit exactly 2 copies, got %v", got)
	}
	if got := forceParallel(a, b, 3, diffWalk[int32]); len(got) != 1 {
		t.Fatalf("diff must emit exactly 1 copy, got %v", got)
	}
}

func TestOpsParallelLargeInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(182))
	a := sortedDup(rng, 40000, 500) // big enough to clear the size gate
	b := sortedDup(rng, 30000, 500)
	for _, p := range []int{2, 4, 8} {
		if got, want := Union(a, b, p), refUnion(a, b); !equal(got, want) {
			t.Fatalf("union p=%d: mismatch (lengths %d vs %d)", p, len(got), len(want))
		}
		if got, want := Intersect(a, b, p), refIntersect(a, b); !equal(got, want) {
			t.Fatalf("intersect p=%d: mismatch", p)
		}
		if got, want := Diff(a, b, p), refDiff(a, b); !equal(got, want) {
			t.Fatalf("diff p=%d: mismatch", p)
		}
	}
}

func TestOpsDisjointAndIdentical(t *testing.T) {
	a, b := workload.Pair(workload.AllAGreater, 100, 100, 1)
	if got := Intersect(a, b, 1); len(got) != 0 {
		t.Fatalf("disjoint intersect: %v", got)
	}
	if got := Union(a, b, 1); len(got) != 200 {
		t.Fatalf("disjoint union length: %d", len(got))
	}
	if got := Diff(a, b, 1); len(got) != 100 {
		t.Fatalf("disjoint diff length: %d", len(got))
	}
	same := []int32{1, 2, 3}
	if got := Diff(same, same, 1); len(got) != 0 {
		t.Fatalf("self diff: %v", got)
	}
	if got := Intersect(same, same, 1); !equal(got, same) {
		t.Fatalf("self intersect: %v", got)
	}
	if got := Union(same, same, 1); !equal(got, same) {
		t.Fatalf("self union: %v", got)
	}
}

func TestOpsEmpty(t *testing.T) {
	var empty []int32
	s := []int32{1, 2}
	if got := Union(empty, s, 2); !equal(got, s) {
		t.Fatalf("empty union: %v", got)
	}
	if got := Union(s, empty, 2); !equal(got, s) {
		t.Fatalf("union empty: %v", got)
	}
	if got := Intersect(empty, s, 2); len(got) != 0 {
		t.Fatalf("empty intersect: %v", got)
	}
	if got := Diff(empty, s, 2); len(got) != 0 {
		t.Fatalf("empty diff: %v", got)
	}
	if got := Diff(s, empty, 2); !equal(got, s) {
		t.Fatalf("diff empty: %v", got)
	}
}

func TestOpsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p=0")
		}
	}()
	Union([]int32{1}, []int32{2}, 0)
}

func TestOpsQuick(t *testing.T) {
	sorted := func(raw []int32) []int32 {
		s := append([]int32(nil), raw...)
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		// Shrink the value domain to force duplicates.
		for i := range s {
			s[i] = s[i] % 9
			if s[i] < 0 {
				s[i] += 9
			}
		}
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return s
	}
	f := func(rawA, rawB []int32, pSeed uint8) bool {
		a, b := sorted(rawA), sorted(rawB)
		p := 2 + int(pSeed)%6
		return equal(forceParallel(a, b, p, unionWalk[int32]), refUnion(a, b)) &&
			equal(forceParallel(a, b, p, intersectWalk[int32]), refIntersect(a, b)) &&
			equal(forceParallel(a, b, p, diffWalk[int32]), refDiff(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSortednessOfOutputs(t *testing.T) {
	rng := rand.New(rand.NewSource(183))
	a := sortedDup(rng, 5000, 40)
	b := sortedDup(rng, 7000, 40)
	for _, out := range [][]int32{
		forceParallel(a, b, 7, unionWalk[int32]),
		forceParallel(a, b, 7, intersectWalk[int32]),
		forceParallel(a, b, 7, diffWalk[int32]),
	} {
		if !verify.Sorted(out) {
			t.Fatal("unsorted output")
		}
	}
}

func equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
