// Package trace captures the memory access sequences of the merge
// algorithms so the cache simulator (internal/cachesim) can replay them.
// The paper's cache claims (§IV) are about which addresses the algorithms
// touch and when; these walkers re-execute the algorithms' exact control
// flow — data dependent, on real inputs — while emitting one event per
// element read or write into a virtual address space whose layout the
// experiments control (alignment is what provokes or avoids conflict
// misses).
package trace

// Event is a single data-memory access by one core.
type Event struct {
	Core  uint8
	Write bool
	Addr  uint64
}

// Space is a bump allocator for the virtual address space traces live in.
type Space struct {
	next uint64
}

// NewSpace returns an empty address space. Address 0 is never allocated.
func NewSpace() *Space { return &Space{next: 64} }

// Alloc reserves n bytes aligned to align (a power of two) and returns the
// base address. Alignment is the experimental knob: aligning all arrays to
// the same large boundary makes same-index elements collide in cache sets.
func (s *Space) Alloc(n int, align uint64) uint64 {
	if align == 0 {
		align = 1
	}
	if align&(align-1) != 0 {
		panic("trace: alignment must be a power of two")
	}
	base := (s.next + align - 1) &^ (align - 1)
	s.next = base + uint64(n)
	return base
}

// Array maps logical element indices to addresses.
type Array struct {
	Base   uint64
	Stride uint64 // element size in bytes
}

// AllocArray reserves space for n elements of elemSize bytes.
func (s *Space) AllocArray(n, elemSize int, align uint64) Array {
	return Array{Base: s.Alloc(n*elemSize, align), Stride: uint64(elemSize)}
}

// Addr returns the address of element i.
func (a Array) Addr(i int) uint64 { return a.Base + uint64(i)*a.Stride }

// RoundRobin interleaves per-worker event streams one event at a time, the
// synchronous-PRAM approximation of concurrent execution: at "cycle" t,
// worker w issues its t'th access. Exhausted workers drop out.
func RoundRobin(workers [][]Event) []Event {
	total := 0
	for _, w := range workers {
		total += len(w)
	}
	out := make([]Event, 0, total)
	for t := 0; len(out) < total; t++ {
		for _, w := range workers {
			if t < len(w) {
				out = append(out, w[t])
			}
		}
	}
	return out
}
