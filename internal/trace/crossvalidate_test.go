package trace

import (
	"math/rand"
	"testing"

	"mergepath/internal/spm"
	"mergepath/internal/workload"
)

// The trace walkers re-implement the algorithms' control flow; these tests
// pin them to the real implementations so the cache experiments measure
// the same algorithm the library ships.

func TestSPMTraceWindowCountMatchesImplementation(t *testing.T) {
	rng := rand.New(rand.NewSource(190))
	for trial := 0; trial < 40; trial++ {
		na, nb := rng.Intn(2000), rng.Intn(2000)
		if na+nb == 0 {
			continue
		}
		window := 1 + rng.Intn(128)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)

		// Real implementation's window count.
		out := make([]int32, na+nb)
		stats := spm.Merge(a, b, out, spm.Config{Window: window, Workers: 1})

		// Trace walker's window count = number of fetch-phase boundaries.
		// Fetch reads are the only core-0 reads into the inputs that touch
		// monotonically increasing addresses twice... simpler: count
		// windows by replaying the same consumption rule: each window
		// produces min(window, remaining) outputs, so window count is
		// directly ceil(total/window) in both. Verify against both.
		space := NewSpace()
		lay := StandardLayout(space, na, nb, 64)
		events := SPM(a, b, window, 1, lay)
		writes := 0
		for _, e := range events {
			if e.Write {
				writes++
			}
		}
		if writes != na+nb {
			t.Fatalf("trace writes %d, want %d", writes, na+nb)
		}
		wantWindows := (na + nb + window - 1) / window
		if stats.Windows != wantWindows {
			t.Fatalf("implementation windows %d, want %d", stats.Windows, wantWindows)
		}
	}
}

func TestSPMTraceOutputOrderMatchesMerge(t *testing.T) {
	// The sequence of output addresses written must be exactly out[0],
	// out[1], ... — i.e. the walker emits outputs in merge order like the
	// implementation does, independent of window and worker count (within
	// one window, round-robin interleaving permutes time order, so we only
	// require the per-worker subsequences to be ordered and the union to
	// cover each position once).
	rng := rand.New(rand.NewSource(191))
	a := workload.SortedUniform32(rng, 777)
	b := workload.SortedUniform32(rng, 555)
	space := NewSpace()
	lay := StandardLayout(space, len(a), len(b), 64)
	events := SPM(a, b, 96, 3, lay)
	seen := make([]int, len(a)+len(b))
	lastPerCore := map[uint8]uint64{}
	for _, e := range events {
		if !e.Write {
			continue
		}
		idx := int((e.Addr - lay.Out.Addr(0)) / 4)
		if idx < 0 || idx >= len(seen) {
			t.Fatalf("write outside output: %d", e.Addr)
		}
		seen[idx]++
		if last, ok := lastPerCore[e.Core]; ok && e.Addr <= last {
			t.Fatalf("core %d wrote backwards: %d after %d", e.Core, e.Addr, last)
		}
		lastPerCore[e.Core] = e.Addr
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("output %d written %d times", i, c)
		}
	}
}

func TestParallelMergeTraceCoversOutputOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(192))
	for trial := 0; trial < 20; trial++ {
		na, nb := rng.Intn(1000), rng.Intn(1000)
		p := 1 + rng.Intn(8)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		space := NewSpace()
		lay := StandardLayout(space, na, nb, 64)
		seen := make([]int, na+nb)
		for _, w := range ParallelMerge(a, b, p, lay) {
			for _, e := range w {
				if e.Write {
					seen[(e.Addr-lay.Out.Addr(0))/4]++
				}
			}
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("p=%d: output %d written %d times", p, i, c)
			}
		}
	}
}
