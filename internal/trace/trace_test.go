package trace

import (
	"math/rand"
	"testing"

	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

func TestSpaceAllocAlignment(t *testing.T) {
	s := NewSpace()
	a := s.Alloc(100, 64)
	if a%64 != 0 {
		t.Errorf("base %d not 64-aligned", a)
	}
	b := s.Alloc(10, 256)
	if b%256 != 0 || b < a+100 {
		t.Errorf("second alloc %d overlaps or misaligned", b)
	}
	c := s.Alloc(8, 0) // align 0 treated as 1
	if c < b+10 {
		t.Errorf("third alloc %d overlaps", c)
	}
}

func TestArrayAddr(t *testing.T) {
	s := NewSpace()
	arr := s.AllocArray(10, 4, 64)
	if arr.Addr(0) != arr.Base || arr.Addr(3) != arr.Base+12 {
		t.Errorf("addressing wrong: %d %d", arr.Addr(0), arr.Addr(3))
	}
}

func TestRoundRobinInterleave(t *testing.T) {
	w0 := []Event{{Addr: 1}, {Addr: 2}, {Addr: 3}}
	w1 := []Event{{Addr: 10}}
	got := RoundRobin([][]Event{w0, w1})
	want := []uint64{1, 10, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("length %d", len(got))
	}
	for i, e := range got {
		if e.Addr != want[i] {
			t.Fatalf("position %d: %d want %d", i, e.Addr, want[i])
		}
	}
	if got := RoundRobin(nil); len(got) != 0 {
		t.Error("empty interleave")
	}
}

// replayMergeOrder extracts the merged output implied by a trace's write
// sequence to Out and checks it is exactly the reference merge: the k'th
// write to Out must be preceded by reads of the element that belongs at
// position k. We verify more simply and robustly: writes to Out occur at
// strictly increasing addresses within each worker's segment, and the
// total write count equals the output size.
func countOutWrites(events []Event, out Array, n int) int {
	writes := 0
	for _, e := range events {
		if e.Write && e.Addr >= out.Addr(0) && e.Addr < out.Addr(n) {
			writes++
		}
	}
	return writes
}

func TestSequentialMergeTraceShape(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	a := workload.SortedUniform32(rng, 100)
	b := workload.SortedUniform32(rng, 150)
	s := NewSpace()
	lay := StandardLayout(s, len(a), len(b), 64)
	events := SequentialMerge(a, b, lay)
	n := len(a) + len(b)
	if got := countOutWrites(events, lay.Out, n); got != n {
		t.Fatalf("output writes %d, want %d", got, n)
	}
	// Every read address must fall inside a or b.
	for _, e := range events {
		if e.Write {
			continue
		}
		inA := e.Addr >= lay.A.Addr(0) && e.Addr < lay.A.Addr(len(a))
		inB := e.Addr >= lay.B.Addr(0) && e.Addr < lay.B.Addr(len(b))
		if !inA && !inB {
			t.Fatalf("stray read at %d", e.Addr)
		}
	}
	// Core 0 only.
	for _, e := range events {
		if e.Core != 0 {
			t.Fatal("sequential trace must be single-core")
		}
	}
}

func TestParallelMergeTraceShape(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	a := workload.SortedUniform32(rng, 300)
	b := workload.SortedUniform32(rng, 200)
	p := 4
	s := NewSpace()
	lay := StandardLayout(s, len(a), len(b), 64)
	workers := ParallelMerge(a, b, p, lay)
	if len(workers) != p {
		t.Fatalf("workers %d", len(workers))
	}
	n := len(a) + len(b)
	totalWrites := 0
	for w, events := range workers {
		for _, e := range events {
			if int(e.Core) != w {
				t.Fatalf("worker %d emitted core %d", w, e.Core)
			}
		}
		writes := countOutWrites(events, lay.Out, n)
		lo, hi := w*n/p, (w+1)*n/p
		if writes != hi-lo {
			t.Fatalf("worker %d wrote %d, want %d", w, writes, hi-lo)
		}
		// Worker writes land only in its own segment — the lock-free
		// disjointness the paper's Remark claims.
		for _, e := range events {
			if e.Write {
				if e.Addr < lay.Out.Addr(lo) || e.Addr >= lay.Out.Addr(hi) {
					t.Fatalf("worker %d wrote outside its segment", w)
				}
			}
		}
		totalWrites += writes
	}
	if totalWrites != n {
		t.Fatalf("total writes %d, want %d", totalWrites, n)
	}
}

func TestParallelMergeTraceTiny(t *testing.T) {
	s := NewSpace()
	lay := StandardLayout(s, 1, 1, 64)
	workers := ParallelMerge([]int32{5}, []int32{3}, 8, lay)
	if len(workers) != 2 { // clamped to total
		t.Fatalf("workers %d, want 2", len(workers))
	}
}

func TestSPMTraceShape(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	a := workload.SortedUniform32(rng, 500)
	b := workload.SortedUniform32(rng, 300)
	window, p := 64, 4
	s := NewSpace()
	lay := StandardLayout(s, len(a), len(b), 64)
	events := SPM(a, b, window, p, lay)
	n := len(a) + len(b)
	if got := countOutWrites(events, lay.Out, n); got != n {
		t.Fatalf("output writes %d, want %d", got, n)
	}
	// The fetch phase touches every input element exactly once; merge-phase
	// reads then revisit staged elements. So per-element read counts are at
	// least 1 and every read stays inside the inputs.
	readsA := make([]int, len(a))
	readsB := make([]int, len(b))
	for _, e := range events {
		if e.Write {
			continue
		}
		switch {
		case e.Addr >= lay.A.Addr(0) && e.Addr < lay.A.Addr(len(a)):
			readsA[(e.Addr-lay.A.Addr(0))/4]++
		case e.Addr >= lay.B.Addr(0) && e.Addr < lay.B.Addr(len(b)):
			readsB[(e.Addr-lay.B.Addr(0))/4]++
		default:
			t.Fatalf("stray read at %d", e.Addr)
		}
	}
	for i, c := range readsA {
		if c < 1 {
			t.Fatalf("a[%d] never fetched", i)
		}
	}
	for i, c := range readsB {
		if c < 1 {
			t.Fatalf("b[%d] never fetched", i)
		}
	}
}

func TestSPMTraceWindowLocality(t *testing.T) {
	// The residency claim behind Algorithm 2: between two consecutive
	// fetch-phase boundaries, merge-phase reads span at most `window`
	// consecutive elements of each input.
	rng := rand.New(rand.NewSource(84))
	a := workload.SortedUniform32(rng, 400)
	b := workload.SortedUniform32(rng, 400)
	window := 32
	s := NewSpace()
	lay := StandardLayout(s, len(a), len(b), 64)
	events := SPM(a, b, window, 4, lay)
	// Track, for each read of a, the rolling min index not yet consumed:
	// every read must be within `window` elements of the furthest fetch.
	maxFetchedA, maxFetchedB := -1, -1
	for _, e := range events {
		if e.Write {
			continue
		}
		switch {
		case e.Addr >= lay.A.Addr(0) && e.Addr < lay.A.Addr(len(a)):
			idx := int((e.Addr - lay.A.Addr(0)) / 4)
			if idx > maxFetchedA {
				maxFetchedA = idx // fetch-phase read extends the window
			}
			if idx <= maxFetchedA-window {
				t.Fatalf("read of a[%d] outside the %d-element window ending at %d", idx, window, maxFetchedA)
			}
		case e.Addr >= lay.B.Addr(0) && e.Addr < lay.B.Addr(len(b)):
			idx := int((e.Addr - lay.B.Addr(0)) / 4)
			if idx > maxFetchedB {
				maxFetchedB = idx
			}
			if idx <= maxFetchedB-window {
				t.Fatalf("read of b[%d] outside the %d-element window ending at %d", idx, window, maxFetchedB)
			}
		}
	}
}

func TestSPMTracePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for window < 1")
		}
	}()
	s := NewSpace()
	lay := StandardLayout(s, 1, 1, 64)
	SPM([]int32{1}, []int32{2}, 0, 1, lay)
}

func TestSPMTraceDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	a := workload.SortedUniform32(rng, 200)
	b := workload.SortedUniform32(rng, 100)
	s1 := NewSpace()
	lay1 := StandardLayout(s1, len(a), len(b), 64)
	e1 := SPM(a, b, 32, 3, lay1)
	s2 := NewSpace()
	lay2 := StandardLayout(s2, len(a), len(b), 64)
	e2 := SPM(a, b, 32, 3, lay2)
	if len(e1) != len(e2) {
		t.Fatalf("nondeterministic trace: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
	_ = verify.Sorted(a) // keep the import honest: inputs must be sorted
}
