package trace

import "mergepath/internal/core"

// Layout bundles the three merge arrays' placements in the virtual space.
type Layout struct {
	A, B, Out Array
}

// StandardLayout allocates a, b and out back to back with the given
// alignment for na and nb int32-sized elements.
func StandardLayout(s *Space, na, nb int, align uint64) Layout {
	return Layout{
		A:   s.AllocArray(na, 4, align),
		B:   s.AllocArray(nb, 4, align),
		Out: s.AllocArray(na+nb, 4, align),
	}
}

// SequentialMerge emits the access sequence of the plain two-pointer merge
// on core 0: each step reads the two candidate heads and writes one output
// element. (Re-reads of a head that stays put across steps are emitted
// every step, as real scalar code without register promotion would; the
// cache makes them hits, which is precisely what is being measured.)
func SequentialMerge(a, b []int32, lay Layout) []Event {
	events := make([]Event, 0, 3*(len(a)+len(b)))
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		events = append(events,
			Event{Core: 0, Addr: lay.A.Addr(i)},
			Event{Core: 0, Addr: lay.B.Addr(j)},
		)
		if a[i] <= b[j] {
			i++
		} else {
			j++
		}
		events = append(events, Event{Core: 0, Write: true, Addr: lay.Out.Addr(k)})
		k++
	}
	for ; i < len(a); i++ {
		events = append(events,
			Event{Core: 0, Addr: lay.A.Addr(i)},
			Event{Core: 0, Write: true, Addr: lay.Out.Addr(k)},
		)
		k++
	}
	for ; j < len(b); j++ {
		events = append(events,
			Event{Core: 0, Addr: lay.B.Addr(j)},
			Event{Core: 0, Write: true, Addr: lay.Out.Addr(k)},
		)
		k++
	}
	return events
}

// diagonalSearch emits the binary search's reads (one element of each array
// per probe) for worker w and returns the crossing point.
func diagonalSearch(a, b []int32, k int, w uint8, lay Layout, events []Event) (core.Point, []Event) {
	lo := k - len(b)
	if lo < 0 {
		lo = 0
	}
	hi := k
	if hi > len(a) {
		hi = len(a)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		events = append(events,
			Event{Core: w, Addr: lay.A.Addr(mid)},
			Event{Core: w, Addr: lay.B.Addr(k - mid - 1)},
		)
		if a[mid] <= b[k-mid-1] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return core.Point{A: lo, B: k - lo}, events
}

// mergeRun emits worker w's sequential merge of steps elements from start,
// reading both heads and writing one output element per step.
func mergeRun(a, b []int32, start core.Point, steps, outBase int, w uint8, lay Layout, events []Event) []Event {
	i, j := start.A, start.B
	for k := 0; k < steps; k++ {
		switch {
		case i == len(a):
			events = append(events, Event{Core: w, Addr: lay.B.Addr(j)})
			j++
		case j == len(b):
			events = append(events, Event{Core: w, Addr: lay.A.Addr(i)})
			i++
		default:
			events = append(events,
				Event{Core: w, Addr: lay.A.Addr(i)},
				Event{Core: w, Addr: lay.B.Addr(j)},
			)
			if a[i] <= b[j] {
				i++
			} else {
				j++
			}
		}
		events = append(events, Event{Core: w, Write: true, Addr: lay.Out.Addr(outBase + k)})
	}
	return events
}

// ParallelMerge emits the per-worker access streams of Algorithm 1
// (diagonal search, then the worker's merge segment). The caller typically
// interleaves them with RoundRobin before replay.
func ParallelMerge(a, b []int32, p int, lay Layout) [][]Event {
	total := len(a) + len(b)
	if p > total {
		p = max(total, 1)
	}
	workers := make([][]Event, p)
	for w := 0; w < p; w++ {
		lo := w * total / p
		hi := (w + 1) * total / p
		var events []Event
		start, events := diagonalSearch(a, b, lo, uint8(w), lay, events)
		workers[w] = mergeRun(a, b, start, hi-lo, lo, uint8(w), lay, events)
	}
	return workers
}

// SPM emits the access stream of Algorithm 2, the segmented parallel
// merge. In the paper's model the "cyclic buffers" of staged elements ARE
// the cache-resident copies of the input lines: fetching L elements means
// touching the next L input addresses (which loads their lines), and the
// in-window merge then re-reads the same addresses, hitting in cache.
// There is no separate staging array in memory, so SPM pays exactly the
// basic algorithm's compulsory traffic; what changes is the access
// *locality*: at any instant only an L-element window of each input and of
// the output is live (3L = C elements), and every worker operates inside
// that window.
//
// Per window: core 0 performs the fetch phase (sequential reads of the
// newly staged elements of a and b); then the p workers' in-window
// diagonal searches and merges are interleaved round-robin; output is
// written directly to its final location, as Algorithm 2 step 3 specifies.
func SPM(a, b []int32, window, p int, lay Layout) []Event {
	if window < 1 {
		panic("trace: window must be positive")
	}
	total := len(a) + len(b)
	events := make([]Event, 0, 4*total)

	// Window state: staged elements of a are a[consA:consA+nA] where consA
	// counts consumed elements; similarly for b.
	consA, consB := 0, 0 // consumed
	nA, nB := 0, 0       // staged but unconsumed
	done := 0
	for done < total {
		// Fetch phase: top both staged windows up to `window` elements.
		for nA < window && consA+nA < len(a) {
			events = append(events, Event{Core: 0, Addr: lay.A.Addr(consA + nA)})
			nA++
		}
		for nB < window && consB+nB < len(b) {
			events = append(events, Event{Core: 0, Addr: lay.B.Addr(consB + nB)})
			nB++
		}
		steps := window
		if avail := nA + nB; steps > avail {
			steps = avail
		}

		viewA := a[consA : consA+nA]
		viewB := b[consB : consB+nB]

		pw := p
		if pw > steps {
			pw = max(steps, 1)
		}
		workers := make([][]Event, pw)
		for w := 0; w < pw; w++ {
			lo := w * steps / pw
			hi := (w + 1) * steps / pw
			var ev []Event
			start, ev := spmDiagonalSearch(viewA, viewB, lo, uint8(w), lay, consA, consB, ev)
			workers[w] = spmMergeRun(viewA, viewB, start, hi-lo, done+lo, uint8(w), lay, consA, consB, ev)
		}
		events = append(events, RoundRobin(workers)...)

		end := core.SearchDiagonal(viewA, viewB, steps)
		consA += end.A
		consB += end.B
		nA -= end.A
		nB -= end.B
		done += steps
	}
	return events
}

// spmDiagonalSearch is the in-window diagonal search; offA/offB translate
// window co-ranks to global array indices for addressing.
func spmDiagonalSearch(a, b []int32, k int, w uint8, lay Layout, offA, offB int, events []Event) (core.Point, []Event) {
	lo := k - len(b)
	if lo < 0 {
		lo = 0
	}
	hi := k
	if hi > len(a) {
		hi = len(a)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		events = append(events,
			Event{Core: w, Addr: lay.A.Addr(offA + mid)},
			Event{Core: w, Addr: lay.B.Addr(offB + k - mid - 1)},
		)
		if a[mid] <= b[k-mid-1] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return core.Point{A: lo, B: k - lo}, events
}

func spmMergeRun(a, b []int32, start core.Point, steps, outBase int, w uint8, lay Layout, offA, offB int, events []Event) []Event {
	i, j := start.A, start.B
	for k := 0; k < steps; k++ {
		switch {
		case i == len(a):
			events = append(events, Event{Core: w, Addr: lay.B.Addr(offB + j)})
			j++
		case j == len(b):
			events = append(events, Event{Core: w, Addr: lay.A.Addr(offA + i)})
			i++
		default:
			events = append(events,
				Event{Core: w, Addr: lay.A.Addr(offA + i)},
				Event{Core: w, Addr: lay.B.Addr(offB + j)},
			)
			if a[i] <= b[j] {
				i++
			} else {
				j++
			}
		}
		events = append(events, Event{Core: w, Write: true, Addr: lay.Out.Addr(outBase + k)})
	}
	return events
}
