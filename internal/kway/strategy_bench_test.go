package kway

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"mergepath/internal/workload"
)

// BenchmarkKWayStrategies compares the three strategies at the issue's
// k sweep over a fixed total output size (so the heap/tree/co-rank
// columns are directly comparable per row). `make bench-kway` runs it.
func BenchmarkKWayStrategies(b *testing.B) {
	const total = 1 << 20
	p := runtime.GOMAXPROCS(0)
	for _, k := range []int{4, 16, 64} {
		rng := rand.New(rand.NewSource(42))
		lists := make([][]int32, k)
		for i := range lists {
			lists[i] = workload.SortedUniform32(rng, total/k)
		}
		dst := make([]int32, total)
		for _, strat := range []Strategy{StrategyHeap, StrategyTree, StrategyCoRank} {
			b.Run(fmt.Sprintf("k=%d/%s", k, strat), func(b *testing.B) {
				b.SetBytes(int64(total) * 4)
				for i := 0; i < b.N; i++ {
					MergeIntoStats(dst, lists, p, strat)
				}
			})
		}
	}
}

// BenchmarkCoRankSearch isolates the partitioner: the p-1 cut searches
// must stay microscopic next to the merge itself.
func BenchmarkCoRankSearch(b *testing.B) {
	const total = 1 << 20
	for _, k := range []int{4, 16, 64} {
		rng := rand.New(rand.NewSource(7))
		lists := make([][]int32, k)
		for i := range lists {
			lists[i] = workload.SortedUniform32(rng, total/k)
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				CoRank(lists, total/2)
			}
		})
	}
}
