package kway

import (
	"cmp"
	"fmt"

	"mergepath/internal/core"
)

// Strategy selects the k-way merge implementation behind MergeInto.
// The zero value is StrategyAuto. All strategies produce byte-identical
// output (the stable order is unique); they differ only in work shape,
// memory traffic and parallelism — see docs/KWAY.md for selection
// guidance.
type Strategy uint8

const (
	// StrategyAuto picks per call: the pairwise merge-path round for
	// k <= 2, the sequential heap below coRankMinTotal elements or for
	// p == 1, and co-ranking otherwise.
	StrategyAuto Strategy = iota
	// StrategyHeap is the sequential cursor-heap merge: O(N·log k)
	// comparisons, one pass, no parallelism — the classic baseline and
	// the cheapest choice for small outputs.
	StrategyHeap
	// StrategyTree is the binary tree of pairwise merge-path merges:
	// every level is fully parallel but the data moves ceil(log2 k)
	// times, so it pays O(N·log k) memory traffic.
	StrategyTree
	// StrategyCoRank cuts the k runs at p equal output ranks with
	// CoRank and lets p workers each heap-merge a disjoint window
	// lock-free: O(N·log k) comparisons but only O(N) data movement,
	// in one pass, with per-worker loads balanced to within one
	// element.
	StrategyCoRank
)

// String returns the flag spelling: auto, heap, tree or corank.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyHeap:
		return "heap"
	case StrategyTree:
		return "tree"
	case StrategyCoRank:
		return "corank"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// ParseStrategy parses a flag spelling (auto | heap | tree | corank).
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "", "auto":
		return StrategyAuto, nil
	case "heap":
		return StrategyHeap, nil
	case "tree":
		return StrategyTree, nil
	case "corank":
		return StrategyCoRank, nil
	default:
		return StrategyAuto, fmt.Errorf("kway: unknown strategy %q (want auto, heap, tree or corank)", s)
	}
}

// Stats reports what one MergeIntoStats call did, for the service
// metrics that extend the Theorem 5 imbalance validation from 2-way to
// k-way merges.
type Stats struct {
	// Strategy is the implementation actually executed (never
	// StrategyAuto: the auto choice is resolved before running).
	Strategy Strategy
	// K is the number of input runs, empty runs included.
	K int
	// Workers is how many parallel output windows were merged: the
	// co-rank window count, the requested p for the tree, 1 for the
	// heap.
	Workers int
	// PerWorker is the elements each co-rank window wrote, in window
	// order; nil for the heap and tree paths, which have no per-worker
	// output windows.
	PerWorker []int
	// Imbalance is max/mean of PerWorker — the k-way generalization of
	// the paper's Theorem 5 balance check, ~1.0 by construction because
	// windows are cut at equispaced output ranks. Zero when PerWorker
	// is nil.
	Imbalance float64
}

// coRankMinTotal is the output size below which StrategyAuto prefers
// the sequential heap: under a few thousand elements the goroutine
// hand-off and the p-1 co-rank searches cost more than the merge.
const coRankMinTotal = 1 << 13

// autoStrategy is the StrategyAuto decision: k <= 2 degenerates to the
// paper's pairwise merge (the tree path runs exactly one parallel
// merge-path round straight into dst), tiny or sequential merges take
// the heap, everything else co-ranks.
func autoStrategy(k, total, p int) Strategy {
	switch {
	case k <= 2:
		return StrategyTree
	case p == 1 || total < coRankMinTotal:
		return StrategyHeap
	default:
		return StrategyCoRank
	}
}

// MergeIntoStats is MergeInto with an explicit strategy and the
// per-call Stats: dst must have len >= the total element count of lists
// and must not alias any input; the merged output is returned as
// dst[:total]. Output bytes are identical across strategies.
func MergeIntoStats[T cmp.Ordered](dst []T, lists [][]T, p int, strat Strategy) ([]T, Stats) {
	if p < 1 {
		panic("kway: worker count must be positive")
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if len(dst) < total {
		panic("kway: destination shorter than total input length")
	}
	dst = dst[:total]
	st := Stats{Strategy: strat, K: len(lists), Workers: 1}
	if strat == StrategyAuto {
		st.Strategy = autoStrategy(len(lists), total, p)
	}
	switch {
	case len(lists) == 0:
	case len(lists) == 1:
		copy(dst, lists[0])
	default:
		switch st.Strategy {
		case StrategyHeap:
			heapMergeInto(dst, lists)
		case StrategyTree:
			st.Workers = p
			treeMerge(dst, lists, p, func(a, b, out []T, workers int) {
				core.ParallelMerge(a, b, out, workers)
			})
		default:
			coRankMergeInto(dst, lists, p, &st)
		}
	}
	return dst, st
}

// MergeCoRank is MergeInto pinned to the co-ranking strategy: CoRank
// cuts the k runs at p equispaced output ranks and p workers each merge
// their disjoint window lock-free in a single pass. Stability matches
// Merge (ties by source-list index, then position).
func MergeCoRank[T cmp.Ordered](dst []T, lists [][]T, p int) ([]T, Stats) {
	return MergeIntoStats(dst, lists, p, StrategyCoRank)
}

// coRankMergeInto runs the co-ranking strategy proper. The p-1 cut
// vectors are componentwise monotone (prefix sets are nested), so the
// windows partition every input exactly once and each worker writes a
// pre-assigned disjoint span of dst: no locks, no coordination.
func coRankMergeInto[T cmp.Ordered](dst []T, lists [][]T, p int, st *Stats) {
	total := len(dst)
	if p > total {
		p = total // no worker should own an empty window
	}
	cuts := make([][]int, p+1)
	cuts[0] = make([]int, len(lists))
	ends := make([]int, len(lists))
	for i, l := range lists {
		ends[i] = len(l)
	}
	cuts[p] = ends
	for w := 1; w < p; w++ {
		cuts[w] = CoRank(lists, w*total/p)
	}
	st.Workers = p
	st.PerWorker = make([]int, p)
	if p == 1 {
		st.PerWorker[0] = total
		st.Imbalance = 1
		mergeWindows(dst, lists, cuts[0], cuts[1])
		return
	}
	done := make(chan struct{})
	for w := 0; w < p; w++ {
		start, end := w*total/p, (w+1)*total/p
		st.PerWorker[w] = end - start
		go func(w, start, end int) {
			mergeWindows(dst[start:end], lists, cuts[w], cuts[w+1])
			done <- struct{}{}
		}(w, start, end)
	}
	for w := 0; w < p; w++ {
		<-done
	}
	maxLoad, sum := 0, 0
	for _, n := range st.PerWorker {
		sum += n
		if n > maxLoad {
			maxLoad = n
		}
	}
	if mean := float64(sum) / float64(p); mean > 0 {
		st.Imbalance = float64(maxLoad) / mean
	}
}

// heapMergeInto is the sequential strategy writing into a caller buffer
// (HeapMerge allocates; this path does not).
func heapMergeInto[T cmp.Ordered](dst []T, lists [][]T) {
	lo := make([]int, len(lists))
	hi := make([]int, len(lists))
	for i, l := range lists {
		hi[i] = len(l)
	}
	mergeWindows(dst, lists, lo, hi)
}

// wcursor is one active run window inside a worker's merge: the head
// value is cached in the node so sift comparisons touch only the heap
// slice, not the run memory.
type wcursor[T cmp.Ordered] struct {
	head T
	list int
	pos  int
	end  int
}

// mergeWindows merges lists[i][lo[i]:hi[i]] for every i into out (whose
// length must equal the combined window length) with a cursor min-heap
// ordered by (value, list index) — the package's stability contract.
// This is each co-rank worker's inner loop: one pass, every element
// moves exactly once.
func mergeWindows[T cmp.Ordered](out []T, lists [][]T, lo, hi []int) {
	h := make([]wcursor[T], 0, len(lists))
	for i := range lists {
		if lo[i] < hi[i] {
			h = append(h, wcursor[T]{head: lists[i][lo[i]], list: i, pos: lo[i], end: hi[i]})
		}
	}
	switch len(h) {
	case 0:
		return
	case 1:
		c := h[0]
		copy(out, lists[c.list][c.pos:c.end])
		return
	}
	// Cursors were appended in list order; heapify from the last
	// parent. The (value, list) order makes ties pop lowest list first.
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftWindow(h, i)
	}
	for n := 0; ; n++ {
		top := &h[0]
		out[n] = top.head
		if top.pos+1 < top.end {
			top.pos++
			top.head = lists[top.list][top.pos]
		} else {
			last := len(h) - 1
			h[0] = h[last]
			h = h[:last]
			if last == 1 {
				// One run left: drain it with a straight copy.
				c := h[0]
				copy(out[n+1:], lists[c.list][c.pos:c.end])
				return
			}
		}
		siftWindow(h, 0)
	}
}

// siftWindow restores the min-heap order at index i, comparing by
// cached head value then list index.
func siftWindow[T cmp.Ordered](h []wcursor[T], i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && cursorLess(h[l], h[smallest]) {
			smallest = l
		}
		if r < len(h) && cursorLess(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// cursorLess orders cursors by head value, then source-list index.
func cursorLess[T cmp.Ordered](x, y wcursor[T]) bool {
	if x.head != y.head {
		return x.head < y.head
	}
	return x.list < y.list
}
