package kway

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

func TestMergeBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(12)
		p := 1 + rng.Intn(8)
		lists := make([][]int32, k)
		var all []int32
		for i := range lists {
			lists[i] = workload.SortedUniform32(rng, rng.Intn(400))
			all = append(all, lists[i]...)
		}
		got := Merge(lists, p)
		if !verify.Sorted(got) {
			t.Fatalf("k=%d p=%d: not sorted", k, p)
		}
		if !verify.SameMultiset(got, all) {
			t.Fatalf("k=%d p=%d: elements lost", k, p)
		}
	}
}

func TestMergeEdgeCases(t *testing.T) {
	if got := Merge[int32](nil, 4); got != nil {
		t.Errorf("nil lists: %v", got)
	}
	if got := Merge([][]int32{{}, {}, {}}, 2); len(got) != 0 {
		t.Errorf("all-empty lists: %v", got)
	}
	single := []int32{3, 1} // deliberately unsorted single list is returned as-is (copied)
	got := Merge([][]int32{single}, 2)
	if &got[0] == &single[0] {
		t.Error("single list must be copied, not aliased")
	}
	if got[0] != 3 || got[1] != 1 {
		t.Errorf("single list content: %v", got)
	}
}

func TestMergePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p=0")
		}
	}()
	Merge([][]int32{{1}}, 0)
}

func TestMergeAgainstHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(9)
		lists := make([][]int32, k)
		for i := range lists {
			lists[i] = workload.SortedUniform32(rng, rng.Intn(200))
			for j := range lists[i] {
				lists[i][j] %= 10 // duplicate-heavy: stresses tie order
			}
			insertion(lists[i])
		}
		got := Merge(lists, 3)
		want := HeapMerge(lists)
		if !verify.Equal(got, want) {
			t.Fatalf("k=%d: tree merge differs from heap merge", k)
		}
	}
}

func TestMergeStabilityAcrossLists(t *testing.T) {
	// Equal keys must come out ordered by list index. Use disjoint markers:
	// all keys equal, k lists — positions in the output identify lists only
	// through the heap/tree tie rule, so compare against HeapMerge, whose
	// tie rule is explicit.
	lists := [][]int32{{5, 5}, {5}, {5, 5, 5}}
	got := Merge(lists, 2)
	if len(got) != 6 {
		t.Fatalf("length %d", len(got))
	}
	for _, v := range got {
		if v != 5 {
			t.Fatalf("content %v", got)
		}
	}
}

func TestHeapMergeEmpty(t *testing.T) {
	if got := HeapMerge[int32](nil); len(got) != 0 {
		t.Errorf("nil: %v", got)
	}
	if got := HeapMerge([][]int32{{}, {1, 2}, {}}); len(got) != 2 {
		t.Errorf("mixed empties: %v", got)
	}
}

func TestMergeQuick(t *testing.T) {
	f := func(raw [][]int32, pSeed uint8) bool {
		lists := make([][]int32, len(raw))
		var all []int32
		for i, l := range raw {
			lists[i] = append([]int32(nil), l...)
			insertion(lists[i])
			all = append(all, lists[i]...)
		}
		got := Merge(lists, 1+int(pSeed)%6)
		return verify.Sorted(got) && verify.SameMultiset(got, all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func insertion(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestMergeFuncMatchesOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	less := func(x, y int32) bool { return x < y }
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(10)
		p := 1 + rng.Intn(6)
		lists := make([][]int32, k)
		for i := range lists {
			lists[i] = workload.SortedUniform32(rng, rng.Intn(300))
		}
		got := MergeFunc(lists, p, less)
		want := Merge(lists, p)
		if !verify.Equal(got, want) {
			t.Fatalf("k=%d p=%d: func and ordered variants diverge", k, p)
		}
	}
}

func TestMergeFuncStability(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(6)
		lists := make([][]verify.Tagged, k)
		for i := range lists {
			lists[i] = verify.Tag(workload.SortedUniform(rng, rng.Intn(100), 5), i)
		}
		out := MergeFunc(lists, 3, verify.TaggedLess)
		// Cross-list stability: equal keys ordered by source list, then by
		// per-list index.
		for i := 1; i < len(out); i++ {
			prev, cur := out[i-1], out[i]
			if cur.Key < prev.Key {
				t.Fatalf("unsorted at %d", i)
			}
			if cur.Key == prev.Key {
				if prev.Source > cur.Source {
					t.Fatalf("list-order tie violation at %d: %+v then %+v", i, prev, cur)
				}
				if prev.Source == cur.Source && prev.Index >= cur.Index {
					t.Fatalf("in-list order violation at %d", i)
				}
			}
		}
	}
}

func TestMergeFuncEdge(t *testing.T) {
	less := func(x, y int32) bool { return x < y }
	if got := MergeFunc[int32](nil, 2, less); got != nil {
		t.Errorf("nil lists: %v", got)
	}
	got := MergeFunc([][]int32{{1, 2}}, 2, less)
	if len(got) != 2 || got[0] != 1 {
		t.Errorf("single list: %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for p=0")
			}
		}()
		MergeFunc([][]int32{{1}}, 0, less)
	}()
}
