package kway

import (
	"math/rand"
	"testing"

	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

func drain[T any](it *Iter[int32]) []int32 {
	var out []int32
	for {
		v, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

func TestIterMatchesHeapMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(240))
	for trial := 0; trial < 60; trial++ {
		k := 1 + rng.Intn(10)
		lists := make([][]int32, k)
		for i := range lists {
			lists[i] = workload.SortedUniform32(rng, rng.Intn(200))
			for j := range lists[i] {
				lists[i][j] %= 9 // force ties
			}
			insertion(lists[i])
		}
		got := drain[int32](NewIter(lists))
		want := HeapMerge(lists)
		if !verify.Equal(got, want) {
			t.Fatalf("k=%d: iterator diverges from heap merge", k)
		}
	}
}

func TestIterEmpty(t *testing.T) {
	it := NewIter[int32](nil)
	if _, ok := it.Next(); ok {
		t.Fatal("empty iterator produced a value")
	}
	if _, ok := it.Peek(); ok {
		t.Fatal("empty iterator peeked a value")
	}
	if it.Remaining() != 0 {
		t.Fatal("empty iterator has remaining elements")
	}
	it2 := NewIter([][]int32{{}, {}, {}})
	if _, ok := it2.Next(); ok {
		t.Fatal("all-empty lists produced a value")
	}
}

func TestIterPeekAndRemaining(t *testing.T) {
	it := NewIter([][]int32{{1, 3}, {2}})
	if it.Remaining() != 3 {
		t.Fatalf("remaining %d", it.Remaining())
	}
	v, ok := it.Peek()
	if !ok || v != 1 {
		t.Fatalf("peek %d %v", v, ok)
	}
	if it.Remaining() != 3 {
		t.Fatal("peek consumed")
	}
	it.Next()
	if v, _ := it.Peek(); v != 2 {
		t.Fatalf("after one next, peek %d", v)
	}
	it.Next()
	it.Next()
	if it.Remaining() != 0 {
		t.Fatal("not drained")
	}
}

func TestIterStabilityAcrossLists(t *testing.T) {
	// Track source lists through distinct value encodings: value*8+list is
	// not usable directly (changes order), so verify via the documented
	// rule on an all-equal input: list order must be preserved per pop.
	it := NewIter([][]int32{{7, 7}, {7}, {7, 7, 7}})
	// With equal values the heap must yield list 0, 0, 1, 2, 2, 2? No —
	// stability means: at each pop, the smallest (value, list) pair wins,
	// and within a list positions advance in order. After list 0's first 7
	// is taken, its second 7 still beats list 1. Expected: 0,0,1,2,2,2.
	wantLists := []int{0, 0, 1, 2, 2, 2}
	for i, want := range wantLists {
		if len(it.heap) == 0 {
			t.Fatal("exhausted early")
		}
		top := it.heap[0]
		if top.list != want {
			t.Fatalf("pop %d from list %d, want %d", i, top.list, want)
		}
		it.Next()
	}
}
