package kway

import (
	"math/rand"
	"sort"
	"testing"

	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

// genLists builds k sorted lists with the requested value domain (small
// domains force duplicate-heavy ties) and a sprinkling of empty and
// singleton runs, the shapes the co-rank search must survive.
func genLists(rng *rand.Rand, k, maxLen int, domain int32) [][]int32 {
	lists := make([][]int32, k)
	for i := range lists {
		var n int
		switch rng.Intn(6) {
		case 0:
			n = 0 // empty run
		case 1:
			n = 1 // singleton run
		default:
			n = rng.Intn(maxLen + 1)
		}
		l := workload.SortedUniform32(rng, n)
		if domain > 0 {
			for j := range l {
				if l[j] %= domain; l[j] < 0 {
					l[j] += domain
				}
			}
			insertion(l)
		}
		lists[i] = l
	}
	return lists
}

// TestMergeIntoMatchesHeap is the differential gate wired into `make
// verify`: every strategy must be byte-identical to the sequential heap
// baseline across k x sizes x duplicate densities x empty/singleton
// runs.
func TestMergeIntoMatchesHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	strategies := []Strategy{StrategyAuto, StrategyHeap, StrategyTree, StrategyCoRank}
	for _, k := range []int{1, 2, 3, 4, 7, 16, 33, 64} {
		for _, domain := range []int32{0, 3, 50} {
			for trial := 0; trial < 6; trial++ {
				lists := genLists(rng, k, 300, domain)
				want := HeapMerge(lists)
				p := 1 + rng.Intn(8)
				for _, strat := range strategies {
					dst := make([]int32, len(want))
					got, st := MergeIntoStats(dst, lists, p, strat)
					if !verify.Equal(got, want) {
						t.Fatalf("k=%d domain=%d p=%d strategy=%v: output differs from heap baseline", k, domain, p, st.Strategy)
					}
					if st.Strategy == StrategyAuto {
						t.Fatalf("stats must report the resolved strategy, got auto")
					}
				}
			}
		}
	}
}

// referenceCuts computes the cut vector at rank r from a tagged stable
// merge: concatenate (value, list, index) triples in list order, stable
// sort by value (which leaves ties in list-then-index order), and count
// the first r elements per list. This is the spec CoRank must match.
func referenceCuts(lists [][]int32, r int) []int {
	type tagged struct {
		v    int32
		list int
	}
	var all []tagged
	for i, l := range lists {
		for _, v := range l {
			all = append(all, tagged{v, i})
		}
	}
	sort.SliceStable(all, func(x, y int) bool { return all[x].v < all[y].v })
	cuts := make([]int, len(lists))
	for _, e := range all[:r] {
		cuts[e.list]++
	}
	return cuts
}

// TestCoRankMatchesReference pins the tie-break order: the cuts must
// agree with a tagged stable sort at every rank, so equal elements are
// charged to lower-indexed lists first, in position order.
func TestCoRankMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 40; trial++ {
		k := 1 + rng.Intn(10)
		lists := genLists(rng, k, 60, int32(1+rng.Intn(8))) // heavy ties
		total := 0
		for _, l := range lists {
			total += len(l)
		}
		for _, r := range []int{0, total / 3, total / 2, total} {
			got := CoRank(lists, r)
			want := referenceCuts(lists, r)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d rank %d: cuts %v, want %v (lists %v)", trial, r, got, want, lists)
				}
			}
		}
	}
}

// TestCoRankAllEqual is the degenerate tie case spelled out: with every
// value equal, rank r must drain lists in index order.
func TestCoRankAllEqual(t *testing.T) {
	lists := [][]int32{{7, 7, 7}, {7}, {7, 7, 7, 7}, {7, 7}}
	wants := map[int][]int{
		0:  {0, 0, 0, 0},
		2:  {2, 0, 0, 0},
		3:  {3, 0, 0, 0},
		4:  {3, 1, 0, 0},
		6:  {3, 1, 2, 0},
		10: {3, 1, 4, 2},
	}
	for r, want := range wants {
		got := CoRank(lists, r)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rank %d: cuts %v, want %v", r, got, want)
			}
		}
	}
}

// TestCoRankInvariant checks the pairwise partition invariant directly:
// nothing left behind a cut may precede anything taken by another cut,
// under (value, list index) order.
func TestCoRankInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 60; trial++ {
		k := 2 + rng.Intn(12)
		lists := genLists(rng, k, 120, int32(rng.Intn(20)))
		total := 0
		for _, l := range lists {
			total += len(l)
		}
		r := rng.Intn(total + 1)
		cuts := CoRank(lists, r)
		assertValidCuts(t, lists, r, cuts)
	}
}

// assertValidCuts checks sum, bounds and the pairwise invariant of one
// cut vector (shared with FuzzCoRank).
func assertValidCuts(t *testing.T, lists [][]int32, r int, cuts []int) {
	t.Helper()
	sum := 0
	for i, c := range cuts {
		if c < 0 || c > len(lists[i]) {
			t.Fatalf("rank %d: cut %d out of bounds: %v", r, i, cuts)
		}
		sum += c
	}
	if sum != r {
		t.Fatalf("cuts sum to %d, want rank %d: %v", sum, r, cuts)
	}
	for i, ci := range cuts {
		if ci == 0 {
			continue
		}
		last := lists[i][ci-1]
		for j, cj := range cuts {
			if cj == len(lists[j]) {
				continue
			}
			next := lists[j][cj]
			// (last, i) must precede (next, j): last < next, or equal
			// values with i <= j (same-list ties are ordered by
			// position, and next sits at a later position than last).
			if last < next || (last == next && i <= j) {
				continue
			}
			t.Fatalf("rank %d: lists[%d][%d]=%v taken but lists[%d][%d]=%v left behind precedes it (cuts %v)",
				r, i, ci-1, last, j, cj, next, cuts)
		}
	}
}

// TestCoRankMonotone: cuts at increasing ranks must be componentwise
// monotone, so the windows between consecutive cuts are disjoint and
// cover every element — what makes the p-worker merge lock-free.
func TestCoRankMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	for trial := 0; trial < 30; trial++ {
		lists := genLists(rng, 2+rng.Intn(8), 80, 10)
		total := 0
		for _, l := range lists {
			total += len(l)
		}
		p := 1 + rng.Intn(9)
		prev := make([]int, len(lists))
		for w := 1; w <= p; w++ {
			r := w * total / p
			cuts := CoRank(lists, r)
			for i := range cuts {
				if cuts[i] < prev[i] {
					t.Fatalf("cuts not monotone at rank %d: %v after %v", r, cuts, prev)
				}
			}
			prev = cuts
		}
		for i := range prev {
			if prev[i] != len(lists[i]) {
				t.Fatalf("final cut does not cover list %d: %v", i, prev)
			}
		}
	}
}

func TestCoRankPanicsOutOfRange(t *testing.T) {
	lists := [][]int32{{1, 2}, {3}}
	for _, r := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rank %d: expected panic", r)
				}
			}()
			CoRank(lists, r)
		}()
	}
}

func TestCoRankFuncMatchesOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	less := func(x, y int32) bool { return x < y }
	for trial := 0; trial < 30; trial++ {
		lists := genLists(rng, 1+rng.Intn(8), 100, 6)
		total := 0
		for _, l := range lists {
			total += len(l)
		}
		r := rng.Intn(total + 1)
		got := CoRankFunc(lists, r, less)
		want := CoRank(lists, r)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rank %d: func cuts %v, ordered cuts %v", r, got, want)
			}
		}
	}
}

// TestMergeCoRankStats: per-worker loads must sum to the total and be
// balanced to within one element (imbalance ~1.0), extending the
// Theorem 5 validation from 2-way to k-way.
func TestMergeCoRankStats(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	for trial := 0; trial < 25; trial++ {
		lists := genLists(rng, 3+rng.Intn(14), 500, 0)
		total := 0
		for _, l := range lists {
			total += len(l)
		}
		p := 1 + rng.Intn(8)
		dst := make([]int32, total)
		got, st := MergeCoRank(dst, lists, p)
		if !verify.Equal(got, HeapMerge(lists)) {
			t.Fatal("co-rank merge differs from heap baseline")
		}
		if st.Strategy != StrategyCoRank {
			t.Fatalf("strategy %v", st.Strategy)
		}
		sum := 0
		for _, n := range st.PerWorker {
			sum += n
		}
		if sum != total {
			t.Fatalf("per-worker loads sum to %d, want %d", sum, total)
		}
		if total >= p && p > 0 {
			lo, hi := total/p, (total+p-1)/p
			for w, n := range st.PerWorker {
				if n < lo || n > hi {
					t.Fatalf("worker %d load %d outside [%d,%d]", w, n, lo, hi)
				}
			}
		}
		if total > 0 && st.Imbalance > 1.5 {
			t.Fatalf("imbalance %.3f", st.Imbalance)
		}
	}
}

func TestStrategyParseAndString(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Strategy
	}{
		{"", StrategyAuto}, {"auto", StrategyAuto}, {"heap", StrategyHeap},
		{"tree", StrategyTree}, {"corank", StrategyCoRank},
	} {
		got, err := ParseStrategy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseStrategy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseStrategy("loser-tree"); err == nil {
		t.Fatal("expected error for unknown strategy")
	}
	for _, s := range []Strategy{StrategyHeap, StrategyTree, StrategyCoRank} {
		rt, err := ParseStrategy(s.String())
		if err != nil || rt != s {
			t.Fatalf("round-trip %v: %v, %v", s, rt, err)
		}
	}
}

// TestMergeIntoStatsEdges: empty and single-list inputs short-circuit
// before any strategy runs.
func TestMergeIntoStatsEdges(t *testing.T) {
	out, st := MergeIntoStats([]int32{}, nil, 4, StrategyCoRank)
	if len(out) != 0 || st.K != 0 {
		t.Fatalf("nil lists: %v %+v", out, st)
	}
	dst := make([]int32, 3)
	out, _ = MergeIntoStats(dst, [][]int32{{3, 1, 2}}, 4, StrategyCoRank)
	if out[0] != 3 || out[1] != 1 || out[2] != 2 {
		t.Fatalf("single list must be copied verbatim: %v", out)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for short dst")
			}
		}()
		MergeIntoStats(make([]int32, 1), [][]int32{{1}, {2}}, 2, StrategyAuto)
	}()
}
