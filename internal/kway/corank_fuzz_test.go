package kway

import (
	"testing"
)

// FuzzCoRank decodes arbitrary bytes into k sorted runs plus a target
// rank and checks cut-index validity: cuts stay in bounds, sum to the
// target rank, satisfy the pairwise partition invariant, and the
// windows between cuts at consecutive ranks are disjoint and cover
// every element. Run via `go test -fuzz FuzzCoRank ./internal/kway`.
func FuzzCoRank(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5, 6}, uint16(3))
	f.Add([]byte{1}, uint16(0))
	f.Add([]byte{5, 9, 9, 9, 9, 9, 9, 9, 9}, uint16(7))
	f.Add([]byte{0}, uint16(0))
	f.Fuzz(func(t *testing.T, raw []byte, rankSeed uint16) {
		if len(raw) == 0 {
			return
		}
		k := int(raw[0])%8 + 1
		raw = raw[1:]
		lists := make([][]int32, k)
		for i := range lists {
			n := len(raw) / (k - i)
			chunk := raw[:n]
			raw = raw[n:]
			l := make([]int32, len(chunk))
			for j, b := range chunk {
				l[j] = int32(b) % 16 // small domain: force ties
			}
			insertion(l)
			lists[i] = l
		}
		total := 0
		for _, l := range lists {
			total += len(l)
		}
		r := int(rankSeed) % (total + 1)
		assertValidCuts(t, lists, r, CoRank(lists, r))
		// Disjoint-and-covering across consecutive ranks: monotone
		// componentwise, ending exactly at the list lengths.
		prev := make([]int, k)
		for _, rr := range []int{total / 4, total / 2, total} {
			cuts := CoRank(lists, rr)
			for i := range cuts {
				if cuts[i] < prev[i] {
					t.Fatalf("cuts regress at rank %d: %v after %v", rr, cuts, prev)
				}
			}
			prev = cuts
		}
		for i := range prev {
			if prev[i] != len(lists[i]) {
				t.Fatalf("windows do not cover list %d: %v", i, prev)
			}
		}
	})
}
