package kway

import (
	"math/rand"
	"sort"
	"testing"
)

// sortedList draws n values from [0, bound) in sorted order.
func sortedList(rng *rand.Rand, n int, bound int64) []int64 {
	s := make([]int64, n)
	for i := range s {
		s[i] = rng.Int63n(bound)
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

func TestMergeIntoMatchesMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(9)
		lists := make([][]int64, k)
		total := 0
		for i := range lists {
			lists[i] = sortedList(rng, rng.Intn(200), 64)
			total += len(lists[i])
		}
		want := HeapMerge(lists)
		dst := make([]int64, total+rng.Intn(5)) // spare capacity must be tolerated
		got := MergeInto(dst, lists, 1+rng.Intn(4))
		if len(got) != total {
			t.Fatalf("trial %d: got %d elements, want %d", trial, len(got), total)
		}
		if total > 0 && &got[0] != &dst[0] {
			t.Fatalf("trial %d: result does not alias dst", trial)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: mismatch at %d: got %d want %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestMergeIntoEdgeCases(t *testing.T) {
	if got := MergeInto([]int64{}, nil, 2); len(got) != 0 {
		t.Fatalf("no lists: got %v", got)
	}
	one := MergeInto(make([]int64, 3), [][]int64{{1, 2, 3}}, 2)
	if len(one) != 3 || one[0] != 1 || one[2] != 3 {
		t.Fatalf("single list: got %v", one)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short dst: expected panic")
		}
	}()
	MergeInto(make([]int64, 2), [][]int64{{1, 2}, {3}}, 1)
}
