package kway

import (
	"cmp"
	"sort"
)

// Multi-way co-ranking: cut k sorted runs at one output rank without
// merging anything. This generalizes the paper's two-array diagonal
// search (Theorem 14 / the co-rank Point of internal/core) from a
// one-dimensional binary search along a cross diagonal to a k-dimensional
// search over the product of run indices, following the index-space
// partitioning idea of "Multi-Way Co-Ranking: Index-Space Partitioning of
// Sorted Sequences Without Merge" (arXiv 2510.22882). docs/KWAY.md holds
// the full invariant statement and the balance proof sketch.
//
// The output order every cut respects is the package's stability
// contract: elements compare by value, then source-list index, then
// position — exactly the order Merge, HeapMerge and Iter emit.

// CoRank computes the cut indices c[0..k-1] that split k sorted lists at
// output rank r: c[i] elements of lists[i] belong to the first r elements
// of the stable k-way merged output, with sum(c) == r. No merging is
// performed and no list is modified. The cut is unique under the
// package's tie rule (equal elements ordered by list index, then
// position), and satisfies the pairwise partition invariant
//
//	c[i] > 0 && c[j] < len(lists[j])  =>  lists[i][c[i]-1] "precedes"
//	                                      lists[j][c[j]]
//
// where "precedes" is (value, list index) lexicographic order — the
// k-way generalization of core.SearchDiagonal's two-array invariant.
// Because prefix sets at increasing ranks are nested, cuts taken at a
// sequence of ranks are componentwise monotone: the windows between
// consecutive cuts are disjoint and cover every input element exactly
// once. CoRank panics if r is negative or exceeds the total input
// length.
//
// Cost: O(k·log k·log N + k·log n·log N) comparisons where n is the
// longest run and N the total length — each probe is a weighted-median
// pivot that discards at least a quarter of the remaining index
// uncertainty (see docs/KWAY.md for the argument).
func CoRank[T cmp.Ordered](lists [][]T, r int) []int {
	return coRank(lists, r, cmp.Less[T])
}

// CoRankFunc is CoRank under a caller-supplied strict weak ordering,
// with the same tie rule on equal elements (list index, then position).
func CoRankFunc[T any](lists [][]T, r int, less func(x, y T) bool) []int {
	return coRank(lists, r, less)
}

// coRank is the shared search. It maintains, per list, a feasible cut
// interval [lo_i, hi_i] bracketing the true cut, and repeatedly probes
// the weighted median of the interval midpoints: ranking one concrete
// pivot element places every list's cut on one side of it, so each
// probe narrows all k intervals at once and retires at least a quarter
// of their combined length.
func coRank[T any](lists [][]T, r int, less func(x, y T) bool) []int {
	k := len(lists)
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if r < 0 || r > total {
		panic("kway: co-rank target outside the merged output")
	}
	lo := make([]int, k)
	hi := make([]int, k)
	for i, l := range lists {
		// Feasible cuts: even if every other list contributes all of
		// itself, list i must still supply r - (total - len(l)); it can
		// never supply more than min(len(l), r).
		if low := r - (total - len(l)); low > 0 {
			lo[i] = low
		}
		hi[i] = len(l)
		if hi[i] > r {
			hi[i] = r
		}
	}
	type probe struct {
		list, mid, weight int
	}
	probes := make([]probe, 0, k)
	counts := make([]int, k)
	for {
		probes = probes[:0]
		totalW := 0
		for i := range lists {
			if w := hi[i] - lo[i]; w > 0 {
				probes = append(probes, probe{list: i, mid: int(uint(lo[i]+hi[i]) >> 1), weight: w})
				totalW += w
			}
		}
		if totalW == 0 {
			break // every interval collapsed: lo is the cut
		}
		// Pivot = weighted median of the midpoint elements under the
		// output order. Sorting k candidates costs O(k log k); k is the
		// run count, tiny next to the runs themselves.
		sort.Slice(probes, func(x, y int) bool {
			px, py := probes[x], probes[y]
			vx, vy := lists[px.list][px.mid], lists[py.list][py.mid]
			if less(vx, vy) {
				return true
			}
			if less(vy, vx) {
				return false
			}
			return px.list < py.list
		})
		var pv probe
		for acc, i := 0, 0; i < len(probes); i++ {
			acc += probes[i].weight
			if 2*acc >= totalW {
				pv = probes[i]
				break
			}
		}
		m, pos := pv.list, pv.mid
		v := lists[m][pos]
		// Rank the pivot element (v, m, pos): per list, how many
		// elements are at or before it in the output order. Ties
		// resolve by list index, so lists below m count elements <= v
		// and lists above m count elements < v; within list m the
		// position answers directly.
		n := 0
		for j, l := range lists {
			var c int
			switch {
			case j == m:
				c = pos + 1
			case j < m:
				c = sort.Search(len(l), func(i int) bool { return less(v, l[i]) })
			default:
				c = sort.Search(len(l), func(i int) bool { return !less(l[i], v) })
			}
			counts[j] = c
			n += c
		}
		if n <= r {
			// The pivot is inside the prefix, and so is everything at
			// or before it: raise every floor.
			for j := range lists {
				if counts[j] > lo[j] {
					lo[j] = counts[j]
				}
			}
		} else {
			// The pivot is past the prefix, and so is everything at or
			// after it: lower every ceiling. In the pivot's own list
			// the pivot itself is the first excluded element.
			counts[m] = pos
			for j := range lists {
				if counts[j] < hi[j] {
					hi[j] = counts[j]
				}
			}
		}
	}
	return lo
}
