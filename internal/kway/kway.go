// Package kway builds k-way merging out of the paper's pairwise parallel
// merge — the "later rounds" structure of merge sort that motivates the
// paper's introduction, packaged as a standalone utility (merging sorted
// runs from k producers: log-structured storage compactions, sharded log
// replay, external sort phases). A binary tree of merge-path merges does
// O(N·log k) total work with every level fully parallel; a sequential
// loser-tree heap merge is included as the classic baseline.
package kway

import (
	"cmp"
	"container/heap"

	"mergepath/internal/core"
)

// Merge merges k sorted lists into a single sorted slice using rounds of
// pairwise merge-path merges, with p workers shared across each round's
// merges. Stability: the result orders equal elements by source list
// index, then by position — the same guarantee sort.Stable would give on a
// concatenation.
func Merge[T cmp.Ordered](lists [][]T, p int) []T {
	if p < 1 {
		panic("kway: worker count must be positive")
	}
	if len(lists) == 0 {
		return nil
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	return MergeInto(make([]T, total), lists, p)
}

// MergeInto is Merge writing its result into a caller-supplied buffer:
// dst must have len ≥ the total element count of lists, and the merged
// output is returned as dst[:total]. The final merge round targets dst
// directly, so a caller that already owns the response buffer (the
// mergerouter gather stage, pooled arenas) saves the last full-size
// allocation+copy. Intermediate rounds still allocate scratch; lists
// are never modified. dst must not alias any input list.
func MergeInto[T cmp.Ordered](dst []T, lists [][]T, p int) []T {
	if p < 1 {
		panic("kway: worker count must be positive")
	}
	total := 0
	runs := make([][]T, 0, len(lists))
	for _, l := range lists {
		total += len(l)
		runs = append(runs, l)
	}
	if len(dst) < total {
		panic("kway: destination shorter than total input length")
	}
	dst = dst[:total]
	if len(runs) == 0 {
		return dst
	}
	if len(runs) == 1 {
		copy(dst, runs[0])
		return dst
	}
	for len(runs) > 1 {
		// Each round writes into a fresh backing array (the final round
		// into dst); inputs (slices of the previous round's array or the
		// caller's lists) stay intact.
		buf := dst
		if len(runs) > 2 {
			buf = make([]T, total)
		}
		pairs := len(runs) / 2
		next := make([][]T, 0, (len(runs)+1)/2)
		perMerge := p / pairs
		if perMerge < 1 {
			perMerge = 1
		}
		type job struct{ a, b, out []T }
		jobs := make([]job, 0, pairs)
		offset := 0
		for m := 0; m < pairs; m++ {
			a, b := runs[2*m], runs[2*m+1]
			out := buf[offset : offset+len(a)+len(b)]
			offset += len(a) + len(b)
			jobs = append(jobs, job{a, b, out})
			next = append(next, out)
		}
		if len(runs)%2 == 1 {
			last := runs[len(runs)-1]
			out := buf[offset : offset+len(last)]
			copy(out, last)
			next = append(next, out)
		}
		done := make(chan struct{})
		for _, j := range jobs {
			go func(j job) {
				core.ParallelMerge(j.a, j.b, j.out, perMerge)
				done <- struct{}{}
			}(j)
		}
		for range jobs {
			<-done
		}
		runs = next
	}
	return runs[0]
}

// heapItem is one cursor into a source list.
type heapItem[T cmp.Ordered] struct {
	value T
	list  int
	pos   int
}

type mergeHeap[T cmp.Ordered] []heapItem[T]

func (h mergeHeap[T]) Len() int { return len(h) }
func (h mergeHeap[T]) Less(i, j int) bool {
	if h[i].value != h[j].value {
		return h[i].value < h[j].value
	}
	return h[i].list < h[j].list // stability across lists
}
func (h mergeHeap[T]) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap[T]) Push(x interface{}) { *h = append(*h, x.(heapItem[T])) }
func (h *mergeHeap[T]) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// HeapMerge merges k sorted lists sequentially with a binary heap — the
// O(N·log k) classic that the tree-of-merge-paths variant is benchmarked
// against. Stable in the same sense as Merge.
func HeapMerge[T cmp.Ordered](lists [][]T) []T {
	total := 0
	h := make(mergeHeap[T], 0, len(lists))
	for i, l := range lists {
		total += len(l)
		if len(l) > 0 {
			h = append(h, heapItem[T]{value: l[0], list: i, pos: 0})
		}
	}
	heap.Init(&h)
	out := make([]T, 0, total)
	for h.Len() > 0 {
		item := h[0]
		out = append(out, item.value)
		l := lists[item.list]
		if item.pos+1 < len(l) {
			h[0] = heapItem[T]{value: l[item.pos+1], list: item.list, pos: item.pos + 1}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}

// MergeFunc is Merge under a caller-supplied strict weak ordering. The
// cross-list tie rule matches Merge: lower list index wins. (The pairing
// tree preserves it because round r merges neighbouring subtrees with the
// lower-indexed one as the tie-winning first input.)
func MergeFunc[T any](lists [][]T, p int, less func(x, y T) bool) []T {
	if p < 1 {
		panic("kway: worker count must be positive")
	}
	total := 0
	runs := make([][]T, 0, len(lists))
	for _, l := range lists {
		total += len(l)
		runs = append(runs, l)
	}
	if len(runs) == 0 {
		return nil
	}
	if len(runs) == 1 {
		return append([]T(nil), runs[0]...)
	}
	for len(runs) > 1 {
		buf := make([]T, total)
		pairs := len(runs) / 2
		next := make([][]T, 0, (len(runs)+1)/2)
		perMerge := p / pairs
		if perMerge < 1 {
			perMerge = 1
		}
		type job struct{ a, b, out []T }
		jobs := make([]job, 0, pairs)
		offset := 0
		for m := 0; m < pairs; m++ {
			a, b := runs[2*m], runs[2*m+1]
			out := buf[offset : offset+len(a)+len(b)]
			offset += len(a) + len(b)
			jobs = append(jobs, job{a, b, out})
			next = append(next, out)
		}
		if len(runs)%2 == 1 {
			last := runs[len(runs)-1]
			out := buf[offset : offset+len(last)]
			copy(out, last)
			next = append(next, out)
		}
		done := make(chan struct{})
		for _, j := range jobs {
			go func(j job) {
				core.ParallelMergeFunc(j.a, j.b, j.out, perMerge, less)
				done <- struct{}{}
			}(j)
		}
		for range jobs {
			<-done
		}
		runs = next
	}
	return runs[0]
}
