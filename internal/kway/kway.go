// Package kway builds k-way merging out of the paper's machinery — the
// "later rounds" structure of merge sort that motivates the paper's
// introduction, packaged as a standalone utility (merging sorted runs
// from k producers: log-structured storage compactions, sharded log
// replay, external sort phases). Three strategies share one stability
// contract (equal elements ordered by source-list index, then
// position) and produce byte-identical output:
//
//   - co-ranking (the default for large merges): CoRank cuts the k runs
//     at p equispaced output ranks without merging — the k-way
//     generalization of the paper's Theorem 5 two-array partition — so
//     p workers each merge a disjoint window lock-free in a single
//     pass: O(N) data movement, per-worker loads balanced to within one
//     element;
//   - a binary tree of pairwise merge-path merges: every level fully
//     parallel, O(N·log k) total data movement;
//   - a sequential cursor-heap merge, the classic O(N·log k) baseline.
//
// See docs/KWAY.md for the co-ranking invariants, the balance proof
// sketch and strategy-selection guidance.
package kway

import (
	"cmp"
	"container/heap"

	"mergepath/internal/core"
)

// Merge merges k sorted lists into a single sorted slice, picking the
// strategy automatically (see StrategyAuto) with p workers. Stability:
// the result orders equal elements by source list index, then by
// position — the same guarantee sort.Stable would give on a
// concatenation.
func Merge[T cmp.Ordered](lists [][]T, p int) []T {
	if p < 1 {
		panic("kway: worker count must be positive")
	}
	if len(lists) == 0 {
		return nil
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	return MergeInto(make([]T, total), lists, p)
}

// MergeInto is Merge writing its result into a caller-supplied buffer:
// dst must have len >= the total element count of lists, and the merged
// output is returned as dst[:total]. All strategies write the final
// merge straight into dst, so a caller that already owns the response
// buffer (the mergerouter gather stage, pooled arenas) never pays a
// full-size allocation+copy; the tree strategy keeps a single flip-flop
// scratch buffer across its intermediate rounds. Lists are never
// modified. dst must not alias any input list.
//
// MergeInto runs StrategyAuto; use MergeIntoStats to pin a strategy or
// observe per-worker load stats.
func MergeInto[T cmp.Ordered](dst []T, lists [][]T, p int) []T {
	out, _ := MergeIntoStats(dst, lists, p, StrategyAuto)
	return out
}

// treeMerge runs the binary tree of pairwise merges into dst using at
// most one scratch buffer: rounds alternate between scratch and dst
// (flip-flop), with the parity chosen so the last round lands on dst.
// Round r+2 may overwrite round r's buffer because round r+1 already
// consumed it. merge performs one pairwise merge with the given worker
// count; its first input is always the lower-indexed subtree, which is
// what preserves the cross-list tie rule through the tree.
func treeMerge[T any](dst []T, lists [][]T, p int, merge func(a, b, out []T, workers int)) {
	total := len(dst)
	runs := append(make([][]T, 0, len(lists)), lists...)
	rounds := 0
	for n := len(runs); n > 1; n = (n + 1) / 2 {
		rounds++
	}
	var scratch []T
	if rounds > 1 {
		scratch = make([]T, total)
	}
	round := 0
	for len(runs) > 1 {
		round++
		buf := dst
		if (rounds-round)%2 == 1 {
			buf = scratch
		}
		pairs := len(runs) / 2
		next := make([][]T, 0, (len(runs)+1)/2)
		perMerge := p / pairs
		if perMerge < 1 {
			perMerge = 1
		}
		type job struct{ a, b, out []T }
		jobs := make([]job, 0, pairs)
		offset := 0
		for m := 0; m < pairs; m++ {
			a, b := runs[2*m], runs[2*m+1]
			out := buf[offset : offset+len(a)+len(b)]
			offset += len(a) + len(b)
			jobs = append(jobs, job{a, b, out})
			next = append(next, out)
		}
		if len(runs)%2 == 1 {
			last := runs[len(runs)-1]
			out := buf[offset : offset+len(last)]
			copy(out, last)
			next = append(next, out)
		}
		done := make(chan struct{})
		for _, j := range jobs {
			go func(j job) {
				merge(j.a, j.b, j.out, perMerge)
				done <- struct{}{}
			}(j)
		}
		for range jobs {
			<-done
		}
		runs = next
	}
}

// heapItem is one cursor into a source list.
type heapItem[T cmp.Ordered] struct {
	value T
	list  int
	pos   int
}

type mergeHeap[T cmp.Ordered] []heapItem[T]

func (h mergeHeap[T]) Len() int { return len(h) }
func (h mergeHeap[T]) Less(i, j int) bool {
	if h[i].value != h[j].value {
		return h[i].value < h[j].value
	}
	return h[i].list < h[j].list // stability across lists
}
func (h mergeHeap[T]) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap[T]) Push(x interface{}) { *h = append(*h, x.(heapItem[T])) }
func (h *mergeHeap[T]) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// HeapMerge merges k sorted lists sequentially with a binary heap — the
// O(N·log k) classic that the tree and co-rank strategies are
// benchmarked (and property-tested) against. Stable in the same sense
// as Merge.
func HeapMerge[T cmp.Ordered](lists [][]T) []T {
	total := 0
	h := make(mergeHeap[T], 0, len(lists))
	for i, l := range lists {
		total += len(l)
		if len(l) > 0 {
			h = append(h, heapItem[T]{value: l[0], list: i, pos: 0})
		}
	}
	heap.Init(&h)
	out := make([]T, 0, total)
	for h.Len() > 0 {
		item := h[0]
		out = append(out, item.value)
		l := lists[item.list]
		if item.pos+1 < len(l) {
			h[0] = heapItem[T]{value: l[item.pos+1], list: item.list, pos: item.pos + 1}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}

// MergeFunc is Merge under a caller-supplied strict weak ordering,
// using the tree strategy. The cross-list tie rule matches Merge: lower
// list index wins. (The pairing tree preserves it because round r
// merges neighbouring subtrees with the lower-indexed one as the
// tie-winning first input.)
func MergeFunc[T any](lists [][]T, p int, less func(x, y T) bool) []T {
	if p < 1 {
		panic("kway: worker count must be positive")
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if len(lists) == 0 {
		return nil
	}
	dst := make([]T, total)
	if len(lists) == 1 {
		copy(dst, lists[0])
		return dst
	}
	treeMerge(dst, lists, p, func(a, b, out []T, workers int) {
		core.ParallelMergeFunc(a, b, out, workers, less)
	})
	return dst
}
