package kway

import "cmp"

// Iter is a pull-based merged iterator over k sorted lists: the streaming
// counterpart of Merge for consumers that process the merged sequence
// incrementally (cursors over index runs, merge joins) and must not
// materialize it. It uses a tournament (loser-tree-style) binary heap over
// the list heads with the same cross-list tie rule as Merge/HeapMerge:
// equal elements come out ordered by list index.
type Iter[T cmp.Ordered] struct {
	lists [][]T
	heap  []cursor // binary min-heap of active list cursors
}

type cursor struct {
	list int
	pos  int
}

// NewIter returns an iterator over the merged sequence of lists. The
// lists are not copied; mutating them during iteration is undefined.
func NewIter[T cmp.Ordered](lists [][]T) *Iter[T] {
	it := &Iter[T]{lists: lists}
	for i, l := range lists {
		if len(l) > 0 {
			it.heap = append(it.heap, cursor{list: i})
		}
	}
	for i := len(it.heap)/2 - 1; i >= 0; i-- {
		it.siftDown(i)
	}
	return it
}

// Next returns the next merged element, or ok=false when exhausted.
func (it *Iter[T]) Next() (v T, ok bool) {
	if len(it.heap) == 0 {
		return v, false
	}
	top := it.heap[0]
	v = it.lists[top.list][top.pos]
	if top.pos+1 < len(it.lists[top.list]) {
		it.heap[0].pos++
	} else {
		last := len(it.heap) - 1
		it.heap[0] = it.heap[last]
		it.heap = it.heap[:last]
	}
	it.siftDown(0)
	return v, true
}

// Peek returns the next element without consuming it.
func (it *Iter[T]) Peek() (v T, ok bool) {
	if len(it.heap) == 0 {
		return v, false
	}
	top := it.heap[0]
	return it.lists[top.list][top.pos], true
}

// Remaining reports how many elements are left.
func (it *Iter[T]) Remaining() int {
	n := 0
	for _, c := range it.heap {
		n += len(it.lists[c.list]) - c.pos
	}
	return n
}

// less orders cursors by value, then list index (stability).
func (it *Iter[T]) less(x, y cursor) bool {
	vx := it.lists[x.list][x.pos]
	vy := it.lists[y.list][y.pos]
	if vx != vy {
		return vx < vy
	}
	return x.list < y.list
}

func (it *Iter[T]) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(it.heap) && it.less(it.heap[l], it.heap[smallest]) {
			smallest = l
		}
		if r < len(it.heap) && it.less(it.heap[r], it.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		it.heap[i], it.heap[smallest] = it.heap[smallest], it.heap[i]
		i = smallest
	}
}
