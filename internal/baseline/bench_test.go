package baseline

import (
	"fmt"
	"testing"

	"mergepath/internal/workload"
)

func BenchmarkMergers(b *testing.B) {
	const n = 1 << 20
	x, y := workload.Pair(workload.Uniform, n, n, 1)
	out := make([]int32, 2*n)
	b.Run("sequential", func(b *testing.B) {
		b.SetBytes(int64(2*n) * 4)
		for i := 0; i < b.N; i++ {
			SequentialMerge(x, y, out)
		}
	})
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("akl-santoro/p=%d", p), func(b *testing.B) {
			b.SetBytes(int64(2*n) * 4)
			for i := 0; i < b.N; i++ {
				AklSantoroMerge(x, y, out, p)
			}
		})
		b.Run(fmt.Sprintf("deo-sarkar/p=%d", p), func(b *testing.B) {
			b.SetBytes(int64(2*n) * 4)
			for i := 0; i < b.N; i++ {
				DeoSarkarMerge(x, y, out, p)
			}
		})
		b.Run(fmt.Sprintf("shiloach-vishkin/p=%d", p), func(b *testing.B) {
			b.SetBytes(int64(2*n) * 4)
			for i := 0; i < b.N; i++ {
				ShiloachVishkinMerge(x, y, out, p)
			}
		})
	}
}

func BenchmarkPartitioners(b *testing.B) {
	const n = 1 << 20
	x, y := workload.Pair(workload.Uniform, n, n, 2)
	b.Run("shiloach-vishkin-partition", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ShiloachVishkinPartition(x, y, 12)
		}
	})
	b.Run("median-split", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			medianSplit(x, y, n)
		}
	})
	b.Run("select-kth", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			selectKth(x, y, n)
		}
	})
}
