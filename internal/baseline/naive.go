package baseline

import (
	"cmp"
	"sync"
)

// NaiveEqualSplitMerge is the incorrect strawman from the paper's
// introduction: cut a into p equal contiguous chunks, cut b into p equal
// contiguous chunks, merge same-numbered chunk pairs in parallel, and
// concatenate the results. Whenever values from chunk pair i belong after
// values from chunk pair i+1 (e.g. when every element of a exceeds every
// element of b), the concatenation is not sorted.
//
// It returns the (possibly unsorted) result; callers in experiment E12 use
// it to demonstrate the failure mode that motivates merge-path
// partitioning. It is still a permutation of the inputs.
func NaiveEqualSplitMerge[T cmp.Ordered](a, b []T, p int) []T {
	if p < 1 {
		panic("baseline: worker count must be positive")
	}
	out := make([]T, len(a)+len(b))
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		go func(i int) {
			defer wg.Done()
			aLo, aHi := i*len(a)/p, (i+1)*len(a)/p
			bLo, bHi := i*len(b)/p, (i+1)*len(b)/p
			outLo := aLo + bLo
			SequentialMerge(a[aLo:aHi], b[bLo:bHi], out[outLo:outLo+(aHi-aLo)+(bHi-bLo)])
		}(i)
	}
	wg.Wait()
	return out
}
