package baseline

import (
	"cmp"
	"sort"
	"sync"
)

// svCut is a correct merge cut point expressed as co-ranks into a and b.
type svCut struct{ i, j int }

// ShiloachVishkinPartition computes the block partition of Shiloach–Vishkin
// [6]: take p-1 equispaced marker elements from each input array, rank each
// marker in the other array by binary search, and cut the output at the
// resulting 2(p-1) positions. The 2p-1 segments are then dealt to p
// processors two-at-a-time. Every segment holds at most ceil(|a|/p) elements
// of a and at most ceil(|b|/p) of b, so a processor carries at most ~2N/p
// elements — the up-to-2x imbalance the paper's related-work section calls
// out — while a lucky processor may get almost nothing.
//
// The returned cut list starts at {0,0}, ends at {len(a),len(b)}, and is
// non-decreasing in both co-ranks; segment s covers cuts[s] to cuts[s+1].
func ShiloachVishkinPartition[T cmp.Ordered](a, b []T, p int) []svCut {
	if p < 1 {
		panic("baseline: worker count must be positive")
	}
	cuts := make([]svCut, 0, 2*p)
	cuts = append(cuts, svCut{0, 0})
	for r := 1; r < p; r++ {
		// Marker from a: cut just before a[x]; every b element strictly less
		// than a[x] precedes it (ties go to a, so equal b elements follow).
		if x := r * len(a) / p; x > 0 && x < len(a) {
			cuts = append(cuts, svCut{x, lowerBound(b, a[x])})
		}
		// Marker from b: cut just before b[y]; every a element <= b[y]
		// precedes it under the tie rule.
		if y := r * len(b) / p; y > 0 && y < len(b) {
			cuts = append(cuts, svCut{upperBound(a, b[y]), y})
		}
	}
	cuts = append(cuts, svCut{len(a), len(b)})
	sort.Slice(cuts, func(x, y int) bool {
		if cuts[x].i+cuts[x].j != cuts[y].i+cuts[y].j {
			return cuts[x].i+cuts[x].j < cuts[y].i+cuts[y].j
		}
		return cuts[x].i < cuts[y].i
	})
	// Drop duplicate cut positions (markers can coincide).
	dedup := cuts[:1]
	for _, c := range cuts[1:] {
		if c != dedup[len(dedup)-1] {
			dedup = append(dedup, c)
		}
	}
	return dedup
}

// ShiloachVishkinMerge merges sorted a and b into out with p processors
// using ShiloachVishkinPartition; processor r handles segments 2r and 2r+1
// of the cut list. The result is correct; only the load balance differs
// from Merge Path.
func ShiloachVishkinMerge[T cmp.Ordered](a, b, out []T, p int) {
	if len(out) != len(a)+len(b) {
		panic("baseline: output length mismatch")
	}
	cuts := ShiloachVishkinPartition(a, b, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		lo := 2 * r
		if lo >= len(cuts)-1 {
			break
		}
		hi := lo + 2
		if hi > len(cuts)-1 {
			hi = len(cuts) - 1
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for s := lo; s < hi; s++ {
				c0, c1 := cuts[s], cuts[s+1]
				SequentialMerge(a[c0.i:c1.i], b[c0.j:c1.j], out[c0.i+c0.j:c1.i+c1.j])
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ShiloachVishkinLoads reports, for the given inputs and processor count,
// the number of output elements each processor would merge under the
// Shiloach–Vishkin dealing. Experiment E4 compares max(load)/mean(load)
// against Merge Path's exact balance.
func ShiloachVishkinLoads[T cmp.Ordered](a, b []T, p int) []int {
	cuts := ShiloachVishkinPartition(a, b, p)
	loads := make([]int, p)
	for r := 0; r < p; r++ {
		lo := 2 * r
		if lo >= len(cuts)-1 {
			break
		}
		hi := lo + 2
		if hi > len(cuts)-1 {
			hi = len(cuts) - 1
		}
		for s := lo; s < hi; s++ {
			loads[r] += (cuts[s+1].i - cuts[s].i) + (cuts[s+1].j - cuts[s].j)
		}
	}
	return loads
}
