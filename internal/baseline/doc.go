// Package baseline implements the comparison algorithms discussed in the
// paper's introduction and related-work section (§I, §V):
//
//   - SequentialMerge: the plain two-pointer merge, the baseline for
//     Figure 5's speedups and the ~6% single-thread overhead remark (§VI).
//   - NaiveEqualSplitMerge: the strawman of §I that cuts both inputs into
//     equal contiguous chunks and merges same-numbered pairs. It is
//     *incorrect* by design (see the all-A-greater counterexample) and
//     exists so experiment E12 can demonstrate the failure.
//   - AklSantoroMerge [5]: recursive median bisection (EREW-friendly),
//     O(N/p + logN·logp) time.
//   - DeoSarkarMerge [2]: equispaced output-rank multiselection via two-array
//     k-th smallest selection, O(N/p + logN) time — the algorithm the paper
//     says is "very similar" to Merge Path, expressed without the grid.
//   - ShiloachVishkinMerge [6]: block partitioning by ranking p-1 markers
//     from each input into the output; correct and O(N/p + logN), but with
//     load imbalance up to 2N/p per processor — the imbalance experiment E4
//     measures exactly this against Merge Path's ±1 balance.
//
// All implementations here are written independently of package core's
// diagonal search (they use their own rank/selection searches) so the
// comparisons in experiments E4 and E9 measure genuinely different code.
package baseline
