package baseline

import "cmp"

// SequentialMerge merges sorted a and b into out (len(out) ==
// len(a)+len(b)) with the classic two-pointer loop and no parallel
// framework whatsoever. It is the reference point for the paper's §VI
// remark that single-threaded Merge Path runs ~6% slower than a truly
// sequential merge.
func SequentialMerge[T cmp.Ordered](a, b, out []T) {
	if len(out) != len(a)+len(b) {
		panic("baseline: output length mismatch")
	}
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
		k++
	}
	if i < len(a) {
		copy(out[k:], a[i:])
	} else {
		copy(out[k:], b[j:])
	}
}

// lowerBound returns the smallest index i with s[i] >= v (len(s) if none).
func lowerBound[T cmp.Ordered](s []T, v T) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the smallest index i with s[i] > v (len(s) if none).
func upperBound[T cmp.Ordered](s []T, v T) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
