package baseline

import (
	"cmp"
	"sync"
)

// aklJob is one sub-merge produced by the recursive median bisection: merge
// a[aLo:aHi] with b[bLo:bHi] into out starting at aLo+bLo.
type aklJob struct {
	aLo, aHi, bLo, bHi int
}

// medianSplit finds (i, j) with i+j = k such that a[:i] and b[:j] jointly
// hold the k smallest elements of the merged output (ties to a). This is the
// "median finding" primitive of Akl–Santoro [5], implemented as a bisection
// over how many elements a contributes — deliberately written in rank terms,
// not grid terms, to stay faithful to their formulation.
func medianSplit[T cmp.Ordered](a, b []T, k int) (int, int) {
	lo := k - len(b)
	if lo < 0 {
		lo = 0
	}
	hi := k
	if hi > len(a) {
		hi = len(a)
	}
	for lo < hi {
		i := int(uint(lo+hi) >> 1)
		j := k - i
		// a contributes too few elements if a[i] still belongs among the
		// first k outputs, i.e. a[i] <= b[j-1].
		if j > 0 && a[i] <= b[j-1] {
			lo = i + 1
		} else {
			hi = i
		}
	}
	return lo, k - lo
}

// AklSantoroMerge merges sorted a and b into out with p workers using the
// Akl–Santoro recursive bisection [5]: split the output at its midpoint by
// median finding, recurse on both halves for ceil(log2 p) rounds until p
// conflict-free jobs exist, then merge each job sequentially, all jobs in
// parallel. Time O(N/p + logN·logp): the logN·logp term is the sequential
// critical path of the recursive splitting, the price the paper notes for
// EREW conflict freedom.
func AklSantoroMerge[T cmp.Ordered](a, b, out []T, p int) {
	if p < 1 {
		panic("baseline: worker count must be positive")
	}
	if len(out) != len(a)+len(b) {
		panic("baseline: output length mismatch")
	}
	jobs := []aklJob{{0, len(a), 0, len(b)}}
	// log2(p) rounds of synchronized bisection, mirroring the paper's
	// description of [5]: each round splits every current job at its median.
	for len(jobs) < p {
		next := make([]aklJob, 0, 2*len(jobs))
		var wg sync.WaitGroup
		results := make([][2]aklJob, len(jobs))
		wg.Add(len(jobs))
		for idx, job := range jobs {
			go func(idx int, job aklJob) {
				defer wg.Done()
				subA := a[job.aLo:job.aHi]
				subB := b[job.bLo:job.bHi]
				k := (len(subA) + len(subB)) / 2
				i, j := medianSplit(subA, subB, k)
				results[idx] = [2]aklJob{
					{job.aLo, job.aLo + i, job.bLo, job.bLo + j},
					{job.aLo + i, job.aHi, job.bLo + j, job.bHi},
				}
			}(idx, job)
		}
		wg.Wait()
		for _, pair := range results {
			next = append(next, pair[0], pair[1])
		}
		jobs = next
	}
	var wg sync.WaitGroup
	wg.Add(len(jobs))
	for _, job := range jobs {
		go func(job aklJob) {
			defer wg.Done()
			lo := job.aLo + job.bLo
			hi := job.aHi + job.bHi
			SequentialMerge(a[job.aLo:job.aHi], b[job.bLo:job.bHi], out[lo:hi])
		}(job)
	}
	wg.Wait()
}
