package baseline

import (
	"cmp"
	"sync"
)

// selectKth finds, in O(log(min(|a|,|b|))) comparisons, the pair of
// co-ranks (i, j) with i+j = k such that the k smallest elements of the
// merged output are exactly a[:i] followed-in-order by b[:j] (ties to a).
// This is the two-array selection ("find the k-th smallest of A union B")
// primitive of Deo–Sarkar [2], phrased as a guessing game on how many of the
// k outputs a supplies: classic textbook selection rather than the paper's
// grid-diagonal view.
func selectKth[T cmp.Ordered](a, b []T, k int) (int, int) {
	// Keep the bisection on the shorter array so the cost is
	// O(log min(|a|,|b|)), as [2] requires.
	if len(a) > len(b) {
		// Mirror the tie rule: when roles swap, b's elements must lose ties.
		j, i := selectKthFlipped(b, a, k)
		return i, j
	}
	lo := k - len(b)
	if lo < 0 {
		lo = 0
	}
	hi := k
	if hi > len(a) {
		hi = len(a)
	}
	for lo < hi {
		i := int(uint(lo+hi) >> 1)
		j := k - i
		if j > 0 && a[i] <= b[j-1] {
			lo = i + 1
		} else {
			hi = i
		}
	}
	return lo, k - lo
}

// selectKthFlipped is selectKth with the arrays' roles exchanged: x plays
// the "second" array (loses ties) and y the "first" (wins ties). It bisects
// on x, which the caller guarantees is the shorter array.
func selectKthFlipped[T cmp.Ordered](x, y []T, k int) (int, int) {
	lo := k - len(y)
	if lo < 0 {
		lo = 0
	}
	hi := k
	if hi > len(x) {
		hi = len(x)
	}
	for lo < hi {
		i := int(uint(lo+hi) >> 1)
		j := k - i
		// x loses ties: x[i] belongs among the first k only if strictly less
		// than y[j-1]... i.e. x[i] < y[j-1] keeps it in; on equality y wins.
		if j > 0 && x[i] < y[j-1] {
			lo = i + 1
		} else {
			hi = i
		}
	}
	return lo, k - lo
}

// DeoSarkarMerge merges sorted a and b into out with p workers following
// Deo–Sarkar [2]: the p-1 output ranks i*N/p are multiselected
// independently (in parallel), each via two-array k-th smallest selection,
// and each worker then merges its conflict-free sub-array pair
// sequentially. Time O(N/p + logN) on CREW — the same bounds as Merge Path,
// which is precisely the paper's point that its contribution is the
// intuition, not the asymptotics.
func DeoSarkarMerge[T cmp.Ordered](a, b, out []T, p int) {
	if p < 1 {
		panic("baseline: worker count must be positive")
	}
	if len(out) != len(a)+len(b) {
		panic("baseline: output length mismatch")
	}
	total := len(a) + len(b)
	type split struct{ i, j int }
	splits := make([]split, p+1)
	splits[p] = split{len(a), len(b)}
	var wg sync.WaitGroup
	wg.Add(p - 1)
	for r := 1; r < p; r++ {
		go func(r int) {
			defer wg.Done()
			i, j := selectKth(a, b, r*total/p)
			splits[r] = split{i, j}
		}(r)
	}
	wg.Wait()
	wg.Add(p)
	for r := 0; r < p; r++ {
		go func(r int) {
			defer wg.Done()
			lo, hi := splits[r], splits[r+1]
			SequentialMerge(a[lo.i:hi.i], b[lo.j:hi.j], out[lo.i+lo.j:hi.i+hi.j])
		}(r)
	}
	wg.Wait()
}
