package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

func TestSequentialMergeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 150; trial++ {
		kind := workload.Kinds()[trial%len(workload.Kinds())]
		na, nb := rng.Intn(300), rng.Intn(300)
		a, b := workload.Pair(kind, na, nb, int64(trial))
		out := make([]int32, na+nb)
		SequentialMerge(a, b, out)
		if !verify.Equal(out, verify.ReferenceMerge(a, b)) {
			t.Fatalf("kind=%v na=%d nb=%d: mismatch", kind, na, nb)
		}
	}
}

func TestSequentialMergePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SequentialMerge([]int32{1}, []int32{2}, nil)
}

func TestBounds(t *testing.T) {
	s := []int32{1, 3, 3, 3, 7}
	cases := []struct {
		v            int32
		lower, upper int
	}{
		{0, 0, 0}, {1, 0, 1}, {2, 1, 1}, {3, 1, 4}, {5, 4, 4}, {7, 4, 5}, {9, 5, 5},
	}
	for _, c := range cases {
		if got := lowerBound(s, c.v); got != c.lower {
			t.Errorf("lowerBound(%d) = %d, want %d", c.v, got, c.lower)
		}
		if got := upperBound(s, c.v); got != c.upper {
			t.Errorf("upperBound(%d) = %d, want %d", c.v, got, c.upper)
		}
	}
	if lowerBound(nil, int32(1)) != 0 || upperBound(nil, int32(1)) != 0 {
		t.Error("bounds on empty slice")
	}
}

func TestNaivePartitionIncorrect(t *testing.T) {
	// Experiment E12: the §I counterexample. With all of a greater than all
	// of b and p >= 2, the naive equal-split concatenation cannot be sorted.
	a, b := workload.Pair(workload.AllAGreater, 64, 64, 1)
	out := NaiveEqualSplitMerge(a, b, 4)
	if verify.Sorted(out) {
		t.Fatal("naive equal-split produced a sorted result on the counterexample; it should fail")
	}
	// It must still be a permutation — the elements are all there, just
	// misordered.
	joined := append(append([]int32{}, a...), b...)
	if !verify.SameMultiset(out, joined) {
		t.Fatal("naive merge lost elements")
	}
	// Sanity: with p=1 it degenerates to a correct sequential merge.
	if !verify.Sorted(NaiveEqualSplitMerge(a, b, 1)) {
		t.Fatal("p=1 naive merge should be correct")
	}
}

func TestNaivePartitionSometimesLucky(t *testing.T) {
	// On perfectly interleaved inputs the naive split happens to be correct;
	// the point of E12 is that correctness is data-dependent.
	a, b := workload.Pair(workload.Interleave, 64, 64, 1)
	if out := NaiveEqualSplitMerge(a, b, 4); !verify.Sorted(out) {
		t.Fatal("interleaved workload should be the naive split's lucky case")
	}
}

func TestAklSantoroMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 120; trial++ {
		kind := workload.Kinds()[trial%len(workload.Kinds())]
		na, nb := rng.Intn(400), rng.Intn(400)
		p := 1 + rng.Intn(9)
		a, b := workload.Pair(kind, na, nb, int64(trial))
		out := make([]int32, na+nb)
		AklSantoroMerge(a, b, out, p)
		if !verify.Equal(out, verify.ReferenceMerge(a, b)) {
			t.Fatalf("kind=%v na=%d nb=%d p=%d: mismatch", kind, na, nb, p)
		}
	}
}

func TestMedianSplit(t *testing.T) {
	a := []int32{1, 3, 5, 7}
	b := []int32{2, 4, 6, 8}
	for k := 0; k <= 8; k++ {
		i, j := medianSplit(a, b, k)
		if i+j != k {
			t.Fatalf("k=%d: i+j=%d", k, i+j)
		}
		if i > 0 && j < len(b) && a[i-1] > b[j] {
			t.Fatalf("k=%d: invariant 1 violated (i=%d j=%d)", k, i, j)
		}
		if j > 0 && i < len(a) && b[j-1] >= a[i] {
			t.Fatalf("k=%d: invariant 2 violated (i=%d j=%d)", k, i, j)
		}
	}
}

func TestDeoSarkarMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 120; trial++ {
		kind := workload.Kinds()[trial%len(workload.Kinds())]
		na, nb := rng.Intn(400), rng.Intn(400)
		p := 1 + rng.Intn(9)
		a, b := workload.Pair(kind, na, nb, int64(trial))
		out := make([]int32, na+nb)
		DeoSarkarMerge(a, b, out, p)
		if !verify.Equal(out, verify.ReferenceMerge(a, b)) {
			t.Fatalf("kind=%v na=%d nb=%d p=%d: mismatch", kind, na, nb, p)
		}
	}
}

func TestSelectKthBothOrientations(t *testing.T) {
	// selectKth must behave identically whether a or b is shorter (the
	// flipped path must preserve the tie rule).
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		na, nb := rng.Intn(20), 20+rng.Intn(20)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		for i := range a {
			a[i] %= 7
		}
		for i := range b {
			b[i] %= 7
		}
		sortInPlace(a)
		sortInPlace(b)
		for k := 0; k <= na+nb; k += 1 + rng.Intn(3) {
			i1, j1 := selectKth(a, b, k) // bisects on a (shorter)
			i2, j2 := selectKth(b, a, k) // bisects via flipped path
			// Consistency within each orientation: prefix merge = full prefix.
			full := verify.ReferenceMerge(a, b)
			prefix := verify.ReferenceMerge(a[:i1], b[:j1])
			for x := range prefix {
				if prefix[x] != full[x] {
					t.Fatalf("k=%d: orientation1 split wrong at %d", k, x)
				}
			}
			// Orientation 2 swaps the tie rule (b wins), so only the value
			// multiset of the prefix must agree, not the exact co-ranks.
			if i2+j2 != k {
				t.Fatalf("k=%d: flipped split off-diagonal", k)
			}
			prefix2 := verify.ReferenceMerge(b[:i2], a[:j2])
			for x := range prefix2 {
				if prefix2[x] != full[x] {
					t.Fatalf("k=%d: orientation2 split wrong at %d (i2=%d j2=%d)", k, x, i2, j2)
				}
			}
			_ = j1
		}
	}
}

func TestShiloachVishkinMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 120; trial++ {
		kind := workload.Kinds()[trial%len(workload.Kinds())]
		na, nb := rng.Intn(400), rng.Intn(400)
		p := 1 + rng.Intn(9)
		a, b := workload.Pair(kind, na, nb, int64(trial))
		out := make([]int32, na+nb)
		ShiloachVishkinMerge(a, b, out, p)
		if !verify.Equal(out, verify.ReferenceMerge(a, b)) {
			t.Fatalf("kind=%v na=%d nb=%d p=%d: mismatch", kind, na, nb, p)
		}
	}
}

func TestShiloachVishkinPartitionValid(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 100; trial++ {
		na, nb := rng.Intn(500), rng.Intn(500)
		p := 1 + rng.Intn(12)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		cuts := ShiloachVishkinPartition(a, b, p)
		if cuts[0] != (svCut{0, 0}) || cuts[len(cuts)-1] != (svCut{na, nb}) {
			t.Fatalf("bad endpoints: %+v ... %+v", cuts[0], cuts[len(cuts)-1])
		}
		for s := 1; s < len(cuts); s++ {
			if cuts[s].i < cuts[s-1].i || cuts[s].j < cuts[s-1].j {
				t.Fatalf("cuts not monotone: %+v then %+v", cuts[s-1], cuts[s])
			}
		}
	}
}

func TestShiloachVishkinLoadBound(t *testing.T) {
	// The classic bound: every processor carries at most
	// ceil(|a|/p) + ceil(|b|/p) + (same again) ~ 2N/p elements (two segments,
	// each at most ceil(|a|/p)+ceil(|b|/p) long... each *segment* is bounded
	// by one marker stride from each array).
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 60; trial++ {
		na, nb := 100+rng.Intn(2000), 100+rng.Intn(2000)
		p := 2 + rng.Intn(10)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		loads := ShiloachVishkinLoads(a, b, p)
		totalLoad := 0
		strideA, strideB := (na+p-1)/p+1, (nb+p-1)/p+1
		bound := 2 * (strideA + strideB)
		for r, l := range loads {
			totalLoad += l
			if l > bound {
				t.Fatalf("p=%d: processor %d load %d exceeds 2N/p-style bound %d", p, r, l, bound)
			}
		}
		if totalLoad != na+nb {
			t.Fatalf("loads sum to %d, want %d", totalLoad, na+nb)
		}
	}
}

func TestShiloachVishkinImbalanceExists(t *testing.T) {
	// The imbalance the paper criticizes must actually be observable: on the
	// staircase workload some processor gets well above the mean.
	a, b := workload.Pair(workload.Staircase, 1<<14, 1<<14, 7)
	p := 8
	loads := ShiloachVishkinLoads(a, b, p)
	mean := float64(len(a)+len(b)) / float64(p)
	maxLoad := 0
	for _, l := range loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	if float64(maxLoad) < 1.2*mean {
		t.Skipf("staircase did not trigger imbalance (max %d vs mean %.0f); acceptable but unexpected", maxLoad, mean)
	}
}

func TestBaselinePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"akl-p0":   func() { AklSantoroMerge([]int32{1}, []int32{2}, make([]int32, 2), 0) },
		"akl-out":  func() { AklSantoroMerge([]int32{1}, []int32{2}, nil, 2) },
		"deo-p0":   func() { DeoSarkarMerge([]int32{1}, []int32{2}, make([]int32, 2), 0) },
		"deo-out":  func() { DeoSarkarMerge([]int32{1}, []int32{2}, nil, 2) },
		"sv-p0":    func() { ShiloachVishkinMerge([]int32{1}, []int32{2}, make([]int32, 2), 0) },
		"sv-out":   func() { ShiloachVishkinMerge([]int32{1}, []int32{2}, nil, 2) },
		"naive-p0": func() { NaiveEqualSplitMerge([]int32{1}, []int32{2}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBaselinesQuick(t *testing.T) {
	mk := func(raw []int32) []int32 {
		s := append([]int32(nil), raw...)
		sortInPlace(s)
		return s
	}
	f := func(rawA, rawB []int32, pSeed uint8) bool {
		a, b := mk(rawA), mk(rawB)
		p := 1 + int(pSeed)%8
		want := verify.ReferenceMerge(a, b)
		for _, merge := range []func(x, y, o []int32, p int){
			AklSantoroMerge[int32], DeoSarkarMerge[int32], ShiloachVishkinMerge[int32],
		} {
			out := make([]int32, len(a)+len(b))
			merge(a, b, out, p)
			if !verify.Equal(out, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func sortInPlace(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
