package batch

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

func makePairs(rng *rand.Rand, k, maxLen int) []Pair[int32] {
	pairs := make([]Pair[int32], k)
	for i := range pairs {
		na, nb := rng.Intn(maxLen), rng.Intn(maxLen)
		a, b := workload.Pair(workload.Kinds()[i%len(workload.Kinds())], na, nb, int64(i))
		pairs[i] = Pair[int32]{A: a, B: b, Out: make([]int32, na+nb)}
	}
	return pairs
}

func TestMergeAllPairsCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(250))
	for trial := 0; trial < 40; trial++ {
		pairs := makePairs(rng, 1+rng.Intn(12), 300)
		Merge(pairs, 1+rng.Intn(8))
		for i, pr := range pairs {
			if !verify.Equal(pr.Out, verify.ReferenceMerge(pr.A, pr.B)) {
				t.Fatalf("trial %d pair %d: wrong merge", trial, i)
			}
		}
	}
}

func TestMergeSkewedPairs(t *testing.T) {
	// One giant pair among many tiny ones: the global balance must still
	// split the giant across workers (correctness check here; the wall
	// time benefit is benchmarked).
	rng := rand.New(rand.NewSource(251))
	pairs := make([]Pair[int32], 9)
	for i := range pairs {
		n := 10
		if i == 4 {
			n = 100000
		}
		a := workload.SortedUniform32(rng, n)
		b := workload.SortedUniform32(rng, n)
		pairs[i] = Pair[int32]{A: a, B: b, Out: make([]int32, 2*n)}
	}
	Merge(pairs, 8)
	for i, pr := range pairs {
		if !verify.IsMergeOf(pr.Out, pr.A, pr.B) {
			t.Fatalf("pair %d incorrect", i)
		}
	}
}

func TestMergeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(252))
	pairs1 := makePairs(rng, 10, 500)
	pairs2 := make([]Pair[int32], len(pairs1))
	for i, pr := range pairs1 {
		pairs2[i] = Pair[int32]{A: pr.A, B: pr.B, Out: make([]int32, len(pr.Out))}
	}
	Merge(pairs1, 5)
	MergeNaive(pairs2, 5)
	for i := range pairs1 {
		if !verify.Equal(pairs1[i].Out, pairs2[i].Out) {
			t.Fatalf("pair %d: balanced and naive disagree", i)
		}
	}
}

func TestMergeEdgeCases(t *testing.T) {
	Merge[int32](nil, 4)                      // no pairs
	Merge([]Pair[int32]{{Out: []int32{}}}, 4) // one empty pair
	MergeNaive([]Pair[int32]{{Out: []int32{}}}, 2)
	pairs := []Pair[int32]{
		{A: []int32{1}, B: nil, Out: make([]int32, 1)},
		{A: nil, B: []int32{2}, Out: make([]int32, 1)},
	}
	Merge(pairs, 16) // p > total clamps
	if pairs[0].Out[0] != 1 || pairs[1].Out[0] != 2 {
		t.Fatalf("degenerate pairs: %v %v", pairs[0].Out, pairs[1].Out)
	}
}

func TestMergePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"p0":        func() { Merge([]Pair[int32]{}, 0) },
		"naive-p0":  func() { MergeNaive([]Pair[int32]{}, 0) },
		"out":       func() { Merge([]Pair[int32]{{A: []int32{1}, Out: nil}}, 1) },
		"naive-out": func() { MergeNaive([]Pair[int32]{{A: []int32{1}, Out: nil}}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestWorkerLoadsBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(253))
	pairs := makePairs(rng, 7, 1000)
	total := 0
	for _, pr := range pairs {
		total += len(pr.Out)
	}
	for _, p := range []int{1, 3, 16} {
		loads := WorkerLoads(pairs, p)
		sum := 0
		for _, l := range loads {
			sum += l
			if l > total/p+1 || l < total/p-1 {
				t.Fatalf("p=%d: load %d far from %d", p, l, total/p)
			}
		}
		if sum != total {
			t.Fatalf("p=%d: loads sum %d != %d", p, sum, total)
		}
	}
}

func TestMergeWithLoads(t *testing.T) {
	rng := rand.New(rand.NewSource(255))
	for trial := 0; trial < 20; trial++ {
		pairs := makePairs(rng, 1+rng.Intn(10), 400)
		total := 0
		for _, pr := range pairs {
			total += len(pr.Out)
		}
		p := 1 + rng.Intn(8)
		loads := MergeWithLoads(pairs, p)
		for i, pr := range pairs {
			if !verify.Equal(pr.Out, verify.ReferenceMerge(pr.A, pr.B)) {
				t.Fatalf("trial %d pair %d: wrong merge", trial, i)
			}
		}
		if total == 0 {
			if len(loads) != 0 {
				t.Fatalf("trial %d: empty batch returned %d loads", trial, len(loads))
			}
			continue
		}
		wantP := p
		if wantP > total {
			wantP = total
		}
		if len(loads) != wantP {
			t.Fatalf("trial %d: %d loads, want %d", trial, len(loads), wantP)
		}
		sum := 0
		nonEmpty := 0
		for _, pr := range pairs {
			if len(pr.Out) > 0 {
				nonEmpty++
			}
		}
		pairsSum := 0
		for w, l := range loads {
			sum += l.Elements
			pairsSum += l.Pairs
			if l.Elements > total/wantP+1 || l.Elements < total/wantP {
				t.Fatalf("trial %d worker %d: %d elements, want ~%d", trial, w, l.Elements, total/wantP)
			}
			if l.Elements > 0 && l.Pairs < 1 {
				t.Fatalf("trial %d worker %d: merged %d elements across 0 pairs", trial, w, l.Elements)
			}
		}
		if sum != total {
			t.Fatalf("trial %d: elements sum %d != total %d", trial, sum, total)
		}
		// Each of the nonEmpty pairs is touched by >= 1 worker; a pair
		// split across workers is counted once per worker, and a worker
		// spans at most all pairs, so the sum is bounded both ways.
		if pairsSum < nonEmpty || pairsSum > nonEmpty+wantP-1 {
			t.Fatalf("trial %d: pairs sum %d outside [%d, %d]", trial, pairsSum, nonEmpty, nonEmpty+wantP-1)
		}
	}
}

func TestMergeWithLoadsSkewed(t *testing.T) {
	// One giant pair among tiny ones: every worker must receive work even
	// though most pairs are trivial — the whole point of the global split.
	rng := rand.New(rand.NewSource(256))
	pairs := make([]Pair[int32], 9)
	for i := range pairs {
		n := 4
		if i == 4 {
			n = 50000
		}
		a := workload.SortedUniform32(rng, n)
		b := workload.SortedUniform32(rng, n)
		pairs[i] = Pair[int32]{A: a, B: b, Out: make([]int32, 2*n)}
	}
	loads := MergeWithLoads(pairs, 8)
	for w, l := range loads {
		if l.Elements == 0 {
			t.Errorf("worker %d idle under skew", w)
		}
	}
	for i, pr := range pairs {
		if !verify.IsMergeOf(pr.Out, pr.A, pr.B) {
			t.Fatalf("pair %d incorrect", i)
		}
	}
}

func TestMergeQuick(t *testing.T) {
	f := func(seeds []uint16, pSeed uint8) bool {
		rng := rand.New(rand.NewSource(int64(len(seeds))))
		k := len(seeds)%8 + 1
		pairs := makePairs(rng, k, 60)
		Merge(pairs, 1+int(pSeed)%6)
		for _, pr := range pairs {
			if !verify.Equal(pr.Out, verify.ReferenceMerge(pr.A, pr.B)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBatchSkewed(b *testing.B) {
	// 63 tiny pairs + 1 giant: global balancing vs per-pair scheduling.
	rng := rand.New(rand.NewSource(254))
	build := func() []Pair[int32] {
		pairs := make([]Pair[int32], 64)
		for i := range pairs {
			n := 1 << 8
			if i == 0 {
				n = 1 << 20
			}
			a := workload.SortedUniform32(rng, n)
			bb := workload.SortedUniform32(rng, n)
			pairs[i] = Pair[int32]{A: a, B: bb, Out: make([]int32, 2*n)}
		}
		return pairs
	}
	pairs := build()
	for _, p := range []int{4, 8} {
		b.Run(fmt.Sprintf("balanced/p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Merge(pairs, p)
			}
		})
		b.Run(fmt.Sprintf("per-pair/p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MergeNaive(pairs, p)
			}
		})
	}
}
