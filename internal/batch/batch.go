// Package batch merges many independent sorted-array pairs with one
// globally load-balanced worker pool — the batch/segmented-merge primitive
// that merge-path partitioning enables and that the technique's GPU
// descendants ship as "segmented merge". The point: scheduling one worker
// (or one fixed team) per pair starves when pair sizes are skewed, exactly
// the §I late-rounds problem in another costume. Here the p workers split
// the *total* output across all pairs evenly: worker boundaries are found
// by a binary search over the pairs' offset table followed by an in-pair
// diagonal search, so every worker gets total/p elements regardless of how
// the work is distributed among pairs.
//
// # Stability
//
// Every merge in this package is stable: within a pair, equal elements
// keep their relative order and ties between A and B resolve in favour of
// A (the core tie policy), so each Pair's Out is bit-identical to a
// sequential stable merge of its inputs. The global balancing cannot
// perturb this — workers write disjoint ranges of each pair's one merge
// path, and pairs never interleave (pair i's output goes only to pair i's
// Out). Merge, MergeWithLoads and MergeNaive therefore produce identical
// output for identical input.
package batch

import (
	"cmp"
	"sort"
	"sync"
	"time"

	"mergepath/internal/core"
	"mergepath/internal/stats"
)

// Pair is one merge job: A and B are sorted; Out receives the merge and
// must have length len(A)+len(B).
type Pair[T cmp.Ordered] struct {
	A, B, Out []T // sorted inputs A and B; Out receives their merge
}

// Merge merges every pair with p workers balanced over the total output
// size. Panics on a mis-sized Out or p < 1.
func Merge[T cmp.Ordered](pairs []Pair[T], p int) {
	if p < 1 {
		panic("batch: worker count must be positive")
	}
	// Offset table: offsets[i] is the global output rank where pair i
	// begins; offsets[len(pairs)] is the total.
	offsets := make([]int, len(pairs)+1)
	for i, pr := range pairs {
		if len(pr.Out) != len(pr.A)+len(pr.B) {
			panic("batch: output length mismatch")
		}
		offsets[i+1] = offsets[i] + len(pr.Out)
	}
	total := offsets[len(pairs)]
	if total == 0 {
		return
	}
	if p > total {
		p = total
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			lo := w * total / p
			hi := (w + 1) * total / p
			mergeGlobalRange(pairs, offsets, lo, hi)
		}(w)
	}
	wg.Wait()
}

// mergeGlobalRange produces global output ranks [lo, hi), which may span
// multiple pairs: a partial tail of the first pair, whole middle pairs,
// and a partial head of the last.
func mergeGlobalRange[T cmp.Ordered](pairs []Pair[T], offsets []int, lo, hi int) {
	// First pair whose range extends past lo.
	i := sort.SearchInts(offsets, lo+1) - 1
	for ; lo < hi; i++ {
		pr := pairs[i]
		pLo := lo - offsets[i]                 // local start rank within pair i
		pHi := min(hi-offsets[i], len(pr.Out)) // local end rank
		if pLo < pHi {
			start := core.SearchDiagonal(pr.A, pr.B, pLo)
			core.MergeSteps(pr.A, pr.B, start, pHi-pLo, pr.Out[pLo:pHi])
		}
		lo = offsets[i] + len(pr.Out)
	}
}

// MergeNaive merges the pairs with one goroutine per pair (up to p at a
// time) — the per-pair scheduling baseline the balance experiment compares
// against. Exported for benchmarks and tests.
func MergeNaive[T cmp.Ordered](pairs []Pair[T], p int) {
	if p < 1 {
		panic("batch: worker count must be positive")
	}
	sem := make(chan struct{}, p)
	var wg sync.WaitGroup
	wg.Add(len(pairs))
	for _, pr := range pairs {
		if len(pr.Out) != len(pr.A)+len(pr.B) {
			panic("batch: output length mismatch")
		}
		sem <- struct{}{}
		go func(pr Pair[T]) {
			defer wg.Done()
			core.Merge(pr.A, pr.B, pr.Out)
			<-sem
		}(pr)
	}
	wg.Wait()
}

// WorkerLoad reports what one worker of a globally balanced round did:
// how many output elements it produced, how many distinct pairs (whole
// or partial) it touched to produce them, and how its time split between
// diagonal/offset searches (partitioning) and sequential merge steps.
// The coalescing service layer exports these per-round counts on its
// metrics surface; durations follow the repository's JSON unit policy
// (float milliseconds — see stats.Millis).
type WorkerLoad struct {
	Elements int `json:"elements"` // output elements this worker produced
	Pairs    int `json:"pairs"`    // distinct pairs (whole or partial) it touched
	// SearchMS is time spent locating work: the offset-table binary
	// search plus the per-pair diagonal (co-rank) searches.
	SearchMS float64 `json:"search_ms"`
	// MergeMS is time spent emitting output elements.
	MergeMS float64 `json:"merge_ms"`
}

// Summarize condenses per-worker loads into the min/max/mean/imbalance
// summary the metrics layer exports per round.
func Summarize(loads []WorkerLoad) stats.LoadSummary {
	elems := make([]int, len(loads))
	for i, l := range loads {
		elems[i] = l.Elements
	}
	return stats.SummarizeLoads(elems)
}

// MergeWithLoads is Merge plus observability: it performs the identical
// globally balanced round and returns one WorkerLoad per worker actually
// used (p is clamped to the total output size, like Merge). Elements are
// always within one of total/p; Pairs shows how pair boundaries fell
// across workers this round; SearchMS/MergeMS split each worker's wall
// time between partitioning (offset + diagonal searches) and merging, at
// a cost of two clock reads per pair segment per worker.
func MergeWithLoads[T cmp.Ordered](pairs []Pair[T], p int) []WorkerLoad {
	if p < 1 {
		panic("batch: worker count must be positive")
	}
	offsets := make([]int, len(pairs)+1)
	for i, pr := range pairs {
		if len(pr.Out) != len(pr.A)+len(pr.B) {
			panic("batch: output length mismatch")
		}
		offsets[i+1] = offsets[i] + len(pr.Out)
	}
	total := offsets[len(pairs)]
	if total == 0 {
		return []WorkerLoad{}
	}
	if p > total {
		p = total
	}
	loads := make([]WorkerLoad, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			lo := w * total / p
			hi := (w + 1) * total / p
			search, merge := mergeGlobalRangeTimed(pairs, offsets, lo, hi)
			loads[w] = WorkerLoad{
				Elements: hi - lo,
				Pairs:    pairsSpanned(pairs, offsets, lo, hi),
				SearchMS: stats.Millis(search),
				MergeMS:  stats.Millis(merge),
			}
		}(w)
	}
	wg.Wait()
	return loads
}

// mergeGlobalRangeTimed is mergeGlobalRange with the partition/merge
// time split measured. It is a separate copy so the untimed path
// (Merge) stays free of clock reads.
func mergeGlobalRangeTimed[T cmp.Ordered](pairs []Pair[T], offsets []int, lo, hi int) (search, merge time.Duration) {
	t0 := time.Now()
	i := sort.SearchInts(offsets, lo+1) - 1
	search = time.Since(t0)
	for ; lo < hi; i++ {
		pr := pairs[i]
		pLo := lo - offsets[i]
		pHi := min(hi-offsets[i], len(pr.Out))
		if pLo < pHi {
			t0 = time.Now()
			start := core.SearchDiagonal(pr.A, pr.B, pLo)
			search += time.Since(t0)
			t0 = time.Now()
			core.MergeSteps(pr.A, pr.B, start, pHi-pLo, pr.Out[pLo:pHi])
			merge += time.Since(t0)
		}
		lo = offsets[i] + len(pr.Out)
	}
	return search, merge
}

// pairsSpanned counts pairs whose non-empty output range intersects
// global ranks [lo, hi).
func pairsSpanned[T cmp.Ordered](pairs []Pair[T], offsets []int, lo, hi int) int {
	n := 0
	for i := sort.SearchInts(offsets, lo+1) - 1; i < len(pairs) && offsets[i] < hi; i++ {
		if offsets[i+1] > lo && offsets[i] < offsets[i+1] {
			n++
		}
	}
	return n
}

// WorkerLoads reports, for diagnostic purposes, how many output elements
// each of p workers receives under the global balancing (always within one
// element of total/p) — the counterpoint to per-pair scheduling where one
// giant pair serializes.
func WorkerLoads[T cmp.Ordered](pairs []Pair[T], p int) []int {
	total := 0
	for _, pr := range pairs {
		total += len(pr.A) + len(pr.B)
	}
	loads := make([]int, p)
	for w := 0; w < p; w++ {
		loads[w] = (w+1)*total/p - w*total/p
	}
	return loads
}
