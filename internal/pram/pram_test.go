package pram

import (
	"math"
	"math/rand"
	"testing"

	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

func TestNewMachinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMachine(0)
}

func TestPhaseRecordsCounts(t *testing.T) {
	m := NewMachine(2)
	arr := m.NewArray([]int32{10, 20})
	out := m.NewZeroArray(2)
	m.Phase("copy", func(p *Proc) {
		p.Write(out, p.ID, p.Read(arr, p.ID))
	})
	r := m.Report()
	if !r.CREW() {
		t.Fatalf("disjoint copy flagged: %v", r.Violations)
	}
	ph := r.Phases[0]
	if ph.Reads[0] != 1 || ph.Writes[0] != 1 || ph.Reads[1] != 1 || ph.Writes[1] != 1 {
		t.Fatalf("counts %+v", ph)
	}
	if ph.ConcurrentReads != 0 || ph.UniqueReads != 2 {
		t.Fatalf("read accounting %+v", ph)
	}
	if got := out.Snapshot(); got[0] != 10 || got[1] != 20 {
		t.Fatalf("data %v", got)
	}
}

func TestConcurrentWriteDetected(t *testing.T) {
	m := NewMachine(3)
	out := m.NewZeroArray(1)
	m.Phase("collide", func(p *Proc) {
		p.Write(out, 0, int32(p.ID))
	})
	r := m.Report()
	if r.CREW() {
		t.Fatal("concurrent write not detected")
	}
	if r.Violations[0].Kind != "concurrent-write" || len(r.Violations[0].Procs) != 3 {
		t.Fatalf("violation %+v", r.Violations[0])
	}
	if r.Violations[0].String() == "" {
		t.Fatal("empty violation string")
	}
}

func TestReadWriteRaceDetected(t *testing.T) {
	m := NewMachine(2)
	cell := m.NewZeroArray(1)
	m.Phase("race", func(p *Proc) {
		if p.ID == 0 {
			p.Write(cell, 0, 42)
		} else {
			p.Read(cell, 0)
		}
	})
	r := m.Report()
	if r.CREW() {
		t.Fatal("read-write race not detected")
	}
	if r.Violations[0].Kind != "read-write-race" {
		t.Fatalf("violation %+v", r.Violations[0])
	}
}

func TestOwnReadWriteAllowed(t *testing.T) {
	// A processor may read and write the same address within a phase.
	m := NewMachine(2)
	arr := m.NewArray([]int32{1, 2})
	m.Phase("rmw", func(p *Proc) {
		p.Write(arr, p.ID, p.Read(arr, p.ID)+1)
	})
	if r := m.Report(); !r.CREW() {
		t.Fatalf("own-cell RMW flagged: %v", r.Violations)
	}
}

func TestConcurrentReadsCountedNotFlagged(t *testing.T) {
	m := NewMachine(4)
	arr := m.NewArray([]int32{7})
	m.Phase("broadcast", func(p *Proc) {
		p.Read(arr, 0)
	})
	r := m.Report()
	if !r.CREW() {
		t.Fatal("concurrent read must be legal on CREW")
	}
	if r.Phases[0].ConcurrentReads != 1 {
		t.Fatalf("concurrent reads %d", r.Phases[0].ConcurrentReads)
	}
}

func TestParallelMergeCREWAndCorrect(t *testing.T) {
	// Experiment E10 in miniature: Algorithm 1 is CREW for every workload
	// and processor count tried.
	rng := rand.New(rand.NewSource(90))
	for _, kind := range workload.Kinds() {
		for _, p := range []int{1, 2, 3, 8} {
			na, nb := 100+rng.Intn(300), 100+rng.Intn(300)
			av, bv := workload.Pair(kind, na, nb, 5)
			m := NewMachine(p)
			a, b := m.NewArray(av), m.NewArray(bv)
			res := ParallelMerge(m, a, b)
			if !res.Report.CREW() {
				t.Fatalf("kind=%v p=%d: CREW violations: %v", kind, p, res.Report.Violations)
			}
			if got := res.Out.Snapshot(); !verify.Equal(got, verify.ReferenceMerge(av, bv)) {
				t.Fatalf("kind=%v p=%d: wrong merge", kind, p)
			}
		}
	}
}

func TestParallelMergeLoadBalance(t *testing.T) {
	// Corollary 7 audited: per-processor ops differ only by the rounding of
	// segment lengths plus the log-size search disparity.
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 20; trial++ {
		na, nb := 500+rng.Intn(2000), 500+rng.Intn(2000)
		p := 2 + rng.Intn(8)
		av := workload.SortedUniform32(rng, na)
		bv := workload.SortedUniform32(rng, nb)
		m := NewMachine(p)
		res := ParallelMerge(m, m.NewArray(av), m.NewArray(bv))
		spread := res.Report.MaxOps() - res.Report.MinOps()
		// Each merge step costs 2-3 ops; segments differ by <=1 step; the
		// search adds <= 2*(log2(min)+1) ops; slack for the boundary cases.
		allowance := 3 + 2*(int(math.Log2(float64(min(na, nb))))+2)
		if spread > allowance {
			t.Fatalf("p=%d: op spread %d exceeds allowance %d (max=%d min=%d)",
				p, spread, allowance, res.Report.MaxOps(), res.Report.MinOps())
		}
	}
}

func TestWorkComplexityBound(t *testing.T) {
	// Experiment E11: total operations are O(N + p*logN) with small
	// constants: <= 3 ops per merge step + 2(log2(min)+1) per processor.
	rng := rand.New(rand.NewSource(92))
	for _, p := range []int{2, 4, 16} {
		na, nb := 4000, 6000
		av := workload.SortedUniform32(rng, na)
		bv := workload.SortedUniform32(rng, nb)
		m := NewMachine(p)
		res := ParallelMerge(m, m.NewArray(av), m.NewArray(bv))
		total := 0
		for proc := 0; proc < p; proc++ {
			total += res.Report.TotalOps(proc)
		}
		n := na + nb
		bound := 3*n + p*2*(int(math.Log2(float64(min(na, nb))))+1)
		if total > bound {
			t.Fatalf("p=%d: total ops %d exceed bound %d", p, total, bound)
		}
	}
}

func TestConcurrentReadsRare(t *testing.T) {
	// The §III Remark: with N >> p, concurrent reads (which only occur
	// during the diagonal searches) are a vanishing fraction.
	rng := rand.New(rand.NewSource(93))
	av := workload.SortedUniform32(rng, 20000)
	bv := workload.SortedUniform32(rng, 20000)
	m := NewMachine(8)
	res := ParallelMerge(m, m.NewArray(av), m.NewArray(bv))
	if frac := res.Report.ConcurrentReadFraction(); frac > 0.01 {
		t.Fatalf("concurrent read fraction %.4f, expected rare (<1%%)", frac)
	}
}

func TestNaiveBlockMergeCREWButWrong(t *testing.T) {
	av, bv := workload.Pair(workload.AllAGreater, 64, 64, 2)
	m := NewMachine(4)
	res := NaiveBlockMerge(m, m.NewArray(av), m.NewArray(bv))
	if !res.Report.CREW() {
		t.Fatal("naive block merge is write-disjoint; must pass the CREW audit")
	}
	if verify.Sorted(res.Out.Snapshot()) {
		t.Fatal("naive block merge should produce unsorted output here")
	}
}

func TestOverlappingWriteMergeFlagged(t *testing.T) {
	av, bv := workload.Pair(workload.Uniform, 32, 32, 3)
	m := NewMachine(2)
	res := OverlappingWriteMerge(m, m.NewArray(av), m.NewArray(bv))
	if res.Report.CREW() {
		t.Fatal("overlapping writes must be flagged")
	}
}

func TestParallelMergeDegenerate(t *testing.T) {
	m := NewMachine(4)
	var emptyVals []int32
	a := m.NewArray(emptyVals)
	b := m.NewArray([]int32{1, 2})
	res := ParallelMerge(m, a, b)
	if got := res.Out.Snapshot(); len(got) != 2 || got[0] != 1 {
		t.Fatalf("degenerate merge %v", got)
	}
	// Both empty.
	m2 := NewMachine(2)
	res2 := ParallelMerge(m2, m2.NewArray(emptyVals), m2.NewArray(emptyVals))
	if res2.Out.Len() != 0 || !res2.Report.CREW() {
		t.Fatal("empty merge misbehaved")
	}
}

func TestReportAggregates(t *testing.T) {
	var r Report
	if r.MaxOps() != 0 || r.MinOps() != 0 || r.ConcurrentReadFraction() != 0 {
		t.Fatal("zero-value report aggregates")
	}
}

func TestHierarchicalMergeCREWAndCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	for trial := 0; trial < 20; trial++ {
		na, nb := rng.Intn(800), rng.Intn(800)
		blocks := 1 + rng.Intn(5)
		team := 1 + rng.Intn(4)
		p := 1 + rng.Intn(8)
		av := workload.SortedUniform32(rng, na)
		bv := workload.SortedUniform32(rng, nb)
		m := NewMachine(p)
		res := HierarchicalMerge(m, m.NewArray(av), m.NewArray(bv), blocks, team)
		if !res.Report.CREW() {
			t.Fatalf("blocks=%d team=%d p=%d: violations %v", blocks, team, p,
				res.Report.Violations[:min(2, len(res.Report.Violations))])
		}
		if got := res.Out.Snapshot(); !verify.Equal(got, verify.ReferenceMerge(av, bv)) {
			t.Fatalf("blocks=%d team=%d p=%d: wrong merge", blocks, team, p)
		}
	}
}

func TestHierarchicalMergePanics(t *testing.T) {
	m := NewMachine(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HierarchicalMerge(m, m.NewArray([]int32{1}), m.NewArray([]int32{2}), 0, 1)
}
