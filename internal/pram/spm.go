package pram

// This file runs the paper's Algorithm 2 (Segmented Parallel Merge) on the
// machine model. Each iteration of the algorithm becomes two audited
// phases — the sequential fetch into the cyclic staging buffers, then the
// parallel in-window merge — so the CREW discipline of the segmented
// variant is certified exactly like Algorithm 1's (experiment E10).

// SegmentedParallelMerge merges shared arrays a and b through staging
// buffers of window elements, using the machine's processors inside each
// window. Returns the output array and the audit report.
func SegmentedParallelMerge(m *Machine, a, b *Array, window int) MergeResult {
	if window < 1 {
		panic("pram: window must be positive")
	}
	total := a.Len() + b.Len()
	out := m.NewZeroArray(total)
	bufA := m.NewZeroArray(window)
	bufB := m.NewZeroArray(window)

	headA, headB, nA, nB := 0, 0, 0, 0 // cyclic buffer state
	remA, remB := 0, 0                 // next unfetched input index
	done := 0
	win := 0
	for done < total {
		win++
		// Fetch phase: processor 0 tops both buffers up (step 1 of
		// Algorithm 2 is sequential in the paper).
		m.Phase(phaseLabel("fetch", win), func(proc *Proc) {
			if proc.ID != 0 {
				return
			}
			for nA < window && remA < a.Len() {
				v := proc.Read(a, remA)
				proc.Write(bufA, (headA+nA)%window, v)
				remA++
				nA++
			}
			for nB < window && remB < b.Len() {
				v := proc.Read(b, remB)
				proc.Write(bufB, (headB+nB)%window, v)
				remB++
				nB++
			}
		})

		steps := window
		if avail := nA + nB; steps > avail {
			steps = avail
		}
		// Merge phase: each processor finds its in-window start point on
		// the staged elements and merges its share into the output.
		base := done
		hA, hB, cntA, cntB := headA, headB, nA, nB
		p := m.p
		if p > steps {
			p = steps
		}
		var endA int
		m.Phase(phaseLabel("merge", win), func(proc *Proc) {
			if proc.ID >= p {
				return
			}
			atA := func(proc *Proc, i int) int32 { return proc.Read(bufA, (hA+i)%window) }
			atB := func(proc *Proc, i int) int32 { return proc.Read(bufB, (hB+i)%window) }
			lo := proc.ID * steps / p
			hi := (proc.ID + 1) * steps / p
			// Diagonal search over the staged views.
			sLo := lo - cntB
			if sLo < 0 {
				sLo = 0
			}
			sHi := lo
			if sHi > cntA {
				sHi = cntA
			}
			for sLo < sHi {
				mid := int(uint(sLo+sHi) >> 1)
				if atA(proc, mid) <= atB(proc, lo-mid-1) {
					sLo = mid + 1
				} else {
					sHi = mid
				}
			}
			ai, bi := sLo, lo-sLo
			for k := lo; k < hi; k++ {
				switch {
				case ai == cntA:
					proc.Write(out, base+k, atB(proc, bi))
					bi++
				case bi == cntB:
					proc.Write(out, base+k, atA(proc, ai))
					ai++
				default:
					av, bv := atA(proc, ai), atB(proc, bi)
					if av <= bv {
						proc.Write(out, base+k, av)
						ai++
					} else {
						proc.Write(out, base+k, bv)
						bi++
					}
				}
			}
			if proc.ID == p-1 {
				endA = ai // the window's total consumption from a
			}
		})
		usedA := endA
		usedB := steps - usedA
		headA = (headA + usedA) % window
		headB = (headB + usedB) % window
		nA -= usedA
		nB -= usedB
		done += steps
	}
	return MergeResult{Out: out, Report: m.Report()}
}

func phaseLabel(kind string, win int) string {
	return kind + "-" + itoa(win)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
