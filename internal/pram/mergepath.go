package pram

// This file runs the paper's Algorithm 1 on the PRAM machine model so its
// CREW discipline, load balance and work complexity can be audited (the
// claims of §II–III, experiments E4/E10/E11).

// MergeResult bundles the audited merge's output array and the machine
// report.
type MergeResult struct {
	Out    *Array
	Report Report
}

// ParallelMerge executes Algorithm 1 with the machine's p processors as a
// single phase (the algorithm has exactly one barrier, at the end): each
// processor searches its start diagonal and merges its (|a|+|b|)/p output
// segment. All element touches go through the machine, so the returned
// report certifies whether this exact execution was CREW and how many
// operations each processor performed.
func ParallelMerge(m *Machine, a, b *Array) MergeResult {
	total := a.Len() + b.Len()
	out := m.NewZeroArray(total)
	p := m.p
	if p > total && total > 0 {
		p = total
	}
	m.Phase("merge-path", func(proc *Proc) {
		if proc.ID >= p || total == 0 {
			return
		}
		lo := proc.ID * total / p
		hi := (proc.ID + 1) * total / p
		ai, bi := searchDiagonal(proc, a, b, lo)
		for k := lo; k < hi; k++ {
			switch {
			case ai == a.Len():
				proc.Write(out, k, proc.Read(b, bi))
				bi++
			case bi == b.Len():
				proc.Write(out, k, proc.Read(a, ai))
				ai++
			default:
				av, bv := proc.Read(a, ai), proc.Read(b, bi)
				if av <= bv {
					proc.Write(out, k, av)
					ai++
				} else {
					proc.Write(out, k, bv)
					bi++
				}
			}
		}
	})
	return MergeResult{Out: out, Report: m.Report()}
}

// searchDiagonal is the Theorem 14 binary search executing through the
// machine's instrumented reads.
func searchDiagonal(proc *Proc, a, b *Array, k int) (int, int) {
	lo := k - b.Len()
	if lo < 0 {
		lo = 0
	}
	hi := k
	if hi > a.Len() {
		hi = a.Len()
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if proc.Read(a, mid) <= proc.Read(b, k-mid-1) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, k - lo
}

// NaiveBlockMerge executes the §I strawman on the machine: processor i
// merges equal chunks of a and b into the output region starting at the
// sum of its chunk offsets. It is CREW-clean but produces wrong output —
// included so tests can demonstrate that the machine audits concurrency,
// not correctness, and that the two properties are independent.
func NaiveBlockMerge(m *Machine, a, b *Array) MergeResult {
	out := m.NewZeroArray(a.Len() + b.Len())
	p := m.p
	m.Phase("naive-block", func(proc *Proc) {
		aLo, aHi := proc.ID*a.Len()/p, (proc.ID+1)*a.Len()/p
		bLo, bHi := proc.ID*b.Len()/p, (proc.ID+1)*b.Len()/p
		ai, bi, k := aLo, bLo, aLo+bLo
		for ai < aHi || bi < bHi {
			switch {
			case ai == aHi:
				proc.Write(out, k, proc.Read(b, bi))
				bi++
			case bi == bHi:
				proc.Write(out, k, proc.Read(a, ai))
				ai++
			default:
				av, bv := proc.Read(a, ai), proc.Read(b, bi)
				if av <= bv {
					proc.Write(out, k, av)
					ai++
				} else {
					proc.Write(out, k, bv)
					bi++
				}
			}
			k++
		}
	})
	return MergeResult{Out: out, Report: m.Report()}
}

// OverlappingWriteMerge is a deliberately broken "parallelization" in which
// every processor merges the full inputs into the full output — the kind
// of bug the CREW audit exists to catch. Used in tests only.
func OverlappingWriteMerge(m *Machine, a, b *Array) MergeResult {
	out := m.NewZeroArray(a.Len() + b.Len())
	m.Phase("overlapping", func(proc *Proc) {
		ai, bi := 0, 0
		for k := 0; k < out.Len(); k++ {
			switch {
			case ai == a.Len():
				proc.Write(out, k, proc.Read(b, bi))
				bi++
			case bi == b.Len():
				proc.Write(out, k, proc.Read(a, ai))
				ai++
			default:
				av, bv := proc.Read(a, ai), proc.Read(b, bi)
				if av <= bv {
					proc.Write(out, k, av)
					ai++
				} else {
					proc.Write(out, k, bv)
					bi++
				}
			}
		}
	})
	return MergeResult{Out: out, Report: m.Report()}
}

// HierarchicalMerge executes the two-level merge on the machine: a first
// phase of coarse partitioning reads (blocks-1 global diagonal searches,
// done by the first blocks-1 processors), then one merge phase in which
// each processor serves a (block, team-slot) pair with a local search —
// auditing that the GPU-style decomposition is CREW end to end.
func HierarchicalMerge(m *Machine, a, b *Array, blocks, team int) MergeResult {
	if blocks < 1 || team < 1 {
		panic("pram: blocks and team must be positive")
	}
	total := a.Len() + b.Len()
	out := m.NewZeroArray(total)
	if blocks > total && total > 0 {
		blocks = total
	}
	coarseA := make([]int, blocks+1)
	coarseB := make([]int, blocks+1)
	coarseA[blocks], coarseB[blocks] = a.Len(), b.Len()
	m.Phase("coarse-partition", func(proc *Proc) {
		for i := proc.ID + 1; i < blocks; i += m.p {
			ai, bi := searchDiagonal(proc, a, b, i*total/blocks)
			coarseA[i], coarseB[i] = ai, bi
		}
	})
	m.Phase("hierarchical-merge", func(proc *Proc) {
		for idx := proc.ID; idx < blocks*team; idx += m.p {
			blk, slot := idx/team, idx%team
			mergeBlockSlot(proc, a, b, out,
				coarseA[blk], coarseA[blk+1], coarseB[blk], coarseB[blk+1], slot, team)
		}
	})
	return MergeResult{Out: out, Report: m.Report()}
}

// mergeBlockSlot merges team-slot `slot` of the block covering
// a[aLo:aHi] and b[bLo:bHi]: a local diagonal search over the sub-ranges,
// then the slot's merge steps, written to out at the block's offset.
func mergeBlockSlot(proc *Proc, a, b, out *Array, aLo, aHi, bLo, bHi, slot, team int) {
	na, nb := aHi-aLo, bHi-bLo
	blockTotal := na + nb
	lo := slot * blockTotal / team
	hi := (slot + 1) * blockTotal / team

	sLo := lo - nb
	if sLo < 0 {
		sLo = 0
	}
	sHi := lo
	if sHi > na {
		sHi = na
	}
	for sLo < sHi {
		mid := int(uint(sLo+sHi) >> 1)
		if proc.Read(a, aLo+mid) <= proc.Read(b, bLo+lo-mid-1) {
			sLo = mid + 1
		} else {
			sHi = mid
		}
	}
	ai, bi := sLo, lo-sLo
	base := aLo + bLo
	for k := lo; k < hi; k++ {
		switch {
		case ai == na:
			proc.Write(out, base+k, proc.Read(b, bLo+bi))
			bi++
		case bi == nb:
			proc.Write(out, base+k, proc.Read(a, aLo+ai))
			ai++
		default:
			av, bv := proc.Read(a, aLo+ai), proc.Read(b, bLo+bi)
			if av <= bv {
				proc.Write(out, base+k, av)
				ai++
			} else {
				proc.Write(out, base+k, bv)
				bi++
			}
		}
	}
}
