package pram

import "fmt"

// This file runs the paper's §III parallel merge sort on the machine
// model: one phase for the concurrent sequential chunk sorts, then one
// phase per merge round. The audit extends experiment E10 from a single
// merge to the full sort: every round must be CREW, and the per-round
// load spread exposes how the paper's "all p workers on every merge"
// property keeps the late rounds (the motivation in §I) balanced.

// SortResult bundles the audited sort's output array and machine report.
type SortResult struct {
	Out    *Array
	Report Report
}

// ParallelMergeSort sorts the contents of input (not mutated) with the
// machine's p processors: p concurrent chunk sorts (bottom-up merge sort
// within each chunk, all accesses audited), then log2(p) rounds of
// pairwise merges, each merge parallelized over its share of processors
// via diagonal searches — the structure of psort.Sort, executed under the
// CREW audit.
func ParallelMergeSort(m *Machine, input *Array) SortResult {
	n := input.Len()
	p := m.p
	if p > n && n > 0 {
		p = n
	}
	src := m.NewArray(input.Snapshot())
	dst := m.NewZeroArray(n)
	if n < 2 {
		return SortResult{Out: src, Report: m.Report()}
	}

	// Phase 1: each processor sorts its chunk with an audited insertion
	// sort (quadratic in the chunk, but every access is its own — the
	// point is the audit, not speed).
	runs := make([][2]int, p)
	for i := 0; i < p; i++ {
		runs[i] = [2]int{i * n / p, (i + 1) * n / p}
	}
	m.Phase("chunk-sort", func(proc *Proc) {
		if proc.ID >= p {
			return
		}
		lo, hi := runs[proc.ID][0], runs[proc.ID][1]
		for i := lo + 1; i < hi; i++ {
			v := proc.Read(src, i)
			j := i
			for j > lo {
				w := proc.Read(src, j-1)
				if w <= v {
					break
				}
				proc.Write(src, j, w)
				j--
			}
			proc.Write(src, j, v)
		}
	})

	// Phase 2..: merge rounds, ping-ponging between src and dst.
	round := 0
	for len(runs) > 1 {
		round++
		pairs := len(runs) / 2
		next := make([][2]int, 0, (len(runs)+1)/2)
		perMerge := p / pairs
		if perMerge < 1 {
			perMerge = 1
		}
		for mi := 0; mi < pairs; mi++ {
			next = append(next, [2]int{runs[2*mi][0], runs[2*mi+1][1]})
		}
		odd := len(runs)%2 == 1
		if odd {
			next = append(next, runs[len(runs)-1])
		}
		srcArr, dstArr := src, dst
		runsCopy := runs
		// The odd carried run is copied by the first processor with no
		// merge assignment, or — when every processor is on a merge team —
		// by the last processor in addition to its merge segment (the two
		// write regions are disjoint, so CREW is preserved).
		copier := pairs * perMerge
		if copier > p-1 {
			copier = p - 1
		}
		m.Phase(phaseName(round), func(proc *Proc) {
			if odd && proc.ID == copier {
				lo, hi := runsCopy[len(runsCopy)-1][0], runsCopy[len(runsCopy)-1][1]
				for i := lo; i < hi; i++ {
					proc.Write(dstArr, i, proc.Read(srcArr, i))
				}
			}
			// Processor proc.ID serves merge proc.ID/perMerge as its
			// (proc.ID%perMerge)-th team member.
			mi := proc.ID / perMerge
			slot := proc.ID % perMerge
			if mi >= pairs {
				return
			}
			r1, r2 := runsCopy[2*mi], runsCopy[2*mi+1]
			mergeSegment(proc, srcArr, dstArr, r1[0], r1[1], r2[0], r2[1], slot, perMerge)
		})
		runs = next
		src, dst = dst, src
	}
	return SortResult{Out: src, Report: m.Report()}
}

func phaseName(round int) string {
	return fmt.Sprintf("merge-round-%d", round)
}

// mergeSegment is one team member's share of merging src[aLo:aHi] with
// src[bLo:bHi] into dst starting at aLo (the runs are adjacent): diagonal
// search for the member's start, then its merge steps.
func mergeSegment(proc *Proc, src, dst *Array, aLo, aHi, bLo, bHi, slot, team int) {
	na, nb := aHi-aLo, bHi-bLo
	total := na + nb
	lo := slot * total / team
	hi := (slot + 1) * total / team

	// Diagonal search over the sub-arrays, audited.
	sLo := lo - nb
	if sLo < 0 {
		sLo = 0
	}
	sHi := lo
	if sHi > na {
		sHi = na
	}
	for sLo < sHi {
		mid := int(uint(sLo+sHi) >> 1)
		if proc.Read(src, aLo+mid) <= proc.Read(src, bLo+lo-mid-1) {
			sLo = mid + 1
		} else {
			sHi = mid
		}
	}
	ai, bi := sLo, lo-sLo
	for k := lo; k < hi; k++ {
		switch {
		case ai == na:
			proc.Write(dst, aLo+k, proc.Read(src, bLo+bi))
			bi++
		case bi == nb:
			proc.Write(dst, aLo+k, proc.Read(src, aLo+ai))
			ai++
		default:
			av, bv := proc.Read(src, aLo+ai), proc.Read(src, bLo+bi)
			if av <= bv {
				proc.Write(dst, aLo+k, av)
				ai++
			} else {
				proc.Write(dst, aLo+k, bv)
				bi++
			}
		}
	}
}
