// Package pram is a phase-synchronous CREW-PRAM machine model used to
// *check* the paper's concurrency claims rather than to run fast. The
// paper asserts (§III Remark) that Merge Path workers write to disjoint
// addresses, read from mostly disjoint addresses, and need no
// synchronization beyond the final barrier — i.e. the algorithm is CREW:
// concurrent reads allowed, exclusive writes required.
//
// A Machine executes algorithms as a sequence of phases (the intervals
// between barriers). Within a phase every processor's reads and writes are
// recorded; at the phase boundary the machine checks, for every address:
//
//   - written by two or more processors  -> concurrent-write violation
//     (would need CRCW);
//   - written by one and read by another -> read/write race (the value
//     read would depend on scheduling; also not CREW-safe within a phase);
//   - read by several processors         -> allowed, but counted, because
//     the paper claims such reads are rare (experiment E10 measures the
//     fraction).
//
// Per-processor operation counts double as the work-accounting used by the
// load-balance (E4) and work-complexity (E11) experiments.
package pram

import "fmt"

// Violation describes one CREW breach detected at a phase boundary.
type Violation struct {
	Phase string
	Addr  uint64
	Kind  string // "concurrent-write" or "read-write-race"
	Procs []int
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at addr %d in phase %q by procs %v", v.Kind, v.Addr, v.Phase, v.Procs)
}

// PhaseReport summarizes one phase.
type PhaseReport struct {
	Name            string
	Reads           []int // per processor
	Writes          []int
	ConcurrentReads int // addresses read by more than one processor
	UniqueReads     int // distinct addresses read
}

// Report is a machine's full execution record.
type Report struct {
	Processors int
	Phases     []PhaseReport
	Violations []Violation
}

// CREW reports whether the execution satisfied the CREW discipline.
func (r Report) CREW() bool { return len(r.Violations) == 0 }

// TotalOps returns the summed read+write counts of one processor across
// all phases.
func (r Report) TotalOps(proc int) int {
	total := 0
	for _, ph := range r.Phases {
		total += ph.Reads[proc] + ph.Writes[proc]
	}
	return total
}

// MaxOps and MinOps report the extreme per-processor operation counts, the
// load-balance measurement of experiment E4.
func (r Report) MaxOps() int {
	maxOps := 0
	for p := 0; p < r.Processors; p++ {
		if ops := r.TotalOps(p); ops > maxOps {
			maxOps = ops
		}
	}
	return maxOps
}

func (r Report) MinOps() int {
	if r.Processors == 0 {
		return 0
	}
	minOps := r.TotalOps(0)
	for p := 1; p < r.Processors; p++ {
		if ops := r.TotalOps(p); ops < minOps {
			minOps = ops
		}
	}
	return minOps
}

// ConcurrentReadFraction returns the share of distinct read addresses that
// were read by more than one processor, aggregated over phases.
func (r Report) ConcurrentReadFraction() float64 {
	concurrent, unique := 0, 0
	for _, ph := range r.Phases {
		concurrent += ph.ConcurrentReads
		unique += ph.UniqueReads
	}
	if unique == 0 {
		return 0
	}
	return float64(concurrent) / float64(unique)
}

// Machine is the phase-synchronous model. Create with NewMachine, allocate
// shared arrays, then call Phase for every barrier-delimited step of the
// algorithm under test.
type Machine struct {
	p      int
	next   uint64
	report Report
}

// NewMachine returns a machine with p processors.
func NewMachine(p int) *Machine {
	if p < 1 {
		panic("pram: need at least one processor")
	}
	return &Machine{p: p, next: 1, report: Report{Processors: p}}
}

// Processors returns p.
func (m *Machine) Processors() int { return m.p }

// Report returns the execution record so far.
func (m *Machine) Report() Report { return m.report }

// Array is a shared-memory array of int32 cells with machine-wide unique
// addresses.
type Array struct {
	m    *Machine
	base uint64
	data []int32
}

// NewArray allocates a shared array initialized with vals (copied).
func (m *Machine) NewArray(vals []int32) *Array {
	a := &Array{m: m, base: m.next, data: append([]int32(nil), vals...)}
	m.next += uint64(len(vals))
	return a
}

// NewZeroArray allocates a zeroed shared array of length n.
func (m *Machine) NewZeroArray(n int) *Array {
	a := &Array{m: m, base: m.next, data: make([]int32, n)}
	m.next += uint64(n)
	return a
}

// Len returns the array length. Snapshot returns a copy of the contents.
func (a *Array) Len() int          { return len(a.data) }
func (a *Array) Snapshot() []int32 { return append([]int32(nil), a.data...) }

// Proc is one processor's handle within a phase.
type Proc struct {
	ID     int
	reads  map[uint64]struct{}
	writes map[uint64]struct{}
	nReads int
	nWrite int
}

// Read returns element i of arr, recording the access.
func (p *Proc) Read(arr *Array, i int) int32 {
	p.nReads++
	p.reads[arr.base+uint64(i)] = struct{}{}
	return arr.data[i]
}

// Write stores v into element i of arr, recording the access.
func (p *Proc) Write(arr *Array, i int, v int32) {
	p.nWrite++
	p.writes[arr.base+uint64(i)] = struct{}{}
	arr.data[i] = v
}

// Phase executes body for each processor (sequentially, in processor
// order — the model checks what a parallel schedule would be allowed to
// do, it does not need real concurrency), then performs the CREW audit.
func (m *Machine) Phase(name string, body func(proc *Proc)) {
	procs := make([]*Proc, m.p)
	for i := range procs {
		procs[i] = &Proc{
			ID:     i,
			reads:  make(map[uint64]struct{}),
			writes: make(map[uint64]struct{}),
		}
		body(procs[i])
	}

	ph := PhaseReport{
		Name:   name,
		Reads:  make([]int, m.p),
		Writes: make([]int, m.p),
	}
	writers := make(map[uint64][]int)
	readers := make(map[uint64][]int)
	for _, proc := range procs {
		ph.Reads[proc.ID] = proc.nReads
		ph.Writes[proc.ID] = proc.nWrite
		for addr := range proc.writes {
			writers[addr] = append(writers[addr], proc.ID)
		}
		for addr := range proc.reads {
			readers[addr] = append(readers[addr], proc.ID)
		}
	}
	for addr, ws := range writers {
		if len(ws) > 1 {
			m.report.Violations = append(m.report.Violations, Violation{
				Phase: name, Addr: addr, Kind: "concurrent-write", Procs: ws,
			})
		}
		if rs, ok := readers[addr]; ok {
			for _, r := range rs {
				if len(ws) != 1 || ws[0] != r {
					m.report.Violations = append(m.report.Violations, Violation{
						Phase: name, Addr: addr, Kind: "read-write-race", Procs: append(append([]int{}, ws...), r),
					})
					break
				}
			}
		}
	}
	ph.UniqueReads = len(readers)
	for _, rs := range readers {
		if len(rs) > 1 {
			ph.ConcurrentReads++
		}
	}
	m.report.Phases = append(m.report.Phases, ph)
}
