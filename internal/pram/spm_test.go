package pram

import (
	"math/rand"
	"testing"

	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

func TestSegmentedParallelMergeCorrectAndCREW(t *testing.T) {
	rng := rand.New(rand.NewSource(160))
	for trial := 0; trial < 30; trial++ {
		kind := workload.Kinds()[trial%len(workload.Kinds())]
		na, nb := rng.Intn(400), rng.Intn(400)
		window := 1 + rng.Intn(48)
		p := 1 + rng.Intn(6)
		av, bv := workload.Pair(kind, na, nb, int64(trial))
		m := NewMachine(p)
		res := SegmentedParallelMerge(m, m.NewArray(av), m.NewArray(bv), window)
		if !res.Report.CREW() {
			t.Fatalf("kind=%v L=%d p=%d: violations %v", kind, window, p,
				res.Report.Violations[:min(3, len(res.Report.Violations))])
		}
		if got := res.Out.Snapshot(); !verify.Equal(got, verify.ReferenceMerge(av, bv)) {
			t.Fatalf("kind=%v L=%d p=%d: wrong merge", kind, window, p)
		}
	}
}

func TestSegmentedParallelMergePhaseStructure(t *testing.T) {
	av, bv := workload.Pair(workload.Uniform, 100, 100, 1)
	m := NewMachine(2)
	res := SegmentedParallelMerge(m, m.NewArray(av), m.NewArray(bv), 50)
	// 200 outputs at window 50: 4 windows = 8 phases (fetch+merge each).
	if got := len(res.Report.Phases); got != 8 {
		t.Fatalf("phases: %d, want 8", got)
	}
	if res.Report.Phases[0].Name != "fetch-1" || res.Report.Phases[1].Name != "merge-1" {
		t.Fatalf("phase names: %s, %s", res.Report.Phases[0].Name, res.Report.Phases[1].Name)
	}
	// The fetch phase is sequential: only processor 0 works.
	if res.Report.Phases[0].Reads[1] != 0 {
		t.Fatal("processor 1 worked during a fetch phase")
	}
}

func TestSegmentedParallelMergePanics(t *testing.T) {
	m := NewMachine(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SegmentedParallelMerge(m, m.NewArray([]int32{1}), m.NewArray([]int32{2}), 0)
}

func TestItoa(t *testing.T) {
	for v, want := range map[int]string{0: "0", 7: "7", 42: "42", 1234: "1234"} {
		if got := itoa(v); got != want {
			t.Errorf("itoa(%d) = %q", v, got)
		}
	}
}
