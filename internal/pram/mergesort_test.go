package pram

import (
	"math/rand"
	"testing"

	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

func TestParallelMergeSortCorrectAndCREW(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(2000)
		p := 1 + rng.Intn(8)
		data := workload.Unsorted(rng, n)
		m := NewMachine(p)
		res := ParallelMergeSort(m, m.NewArray(data))
		if !res.Report.CREW() {
			t.Fatalf("n=%d p=%d: CREW violations: %v", n, p, res.Report.Violations[:min(3, len(res.Report.Violations))])
		}
		got := res.Out.Snapshot()
		if !verify.Sorted(got) {
			t.Fatalf("n=%d p=%d: not sorted", n, p)
		}
		if !verify.SameMultiset(got, data) {
			t.Fatalf("n=%d p=%d: elements lost", n, p)
		}
	}
}

func TestParallelMergeSortPhases(t *testing.T) {
	// With p processors the sort runs 1 chunk phase + ceil(log2 p) merge
	// rounds.
	data := workload.Unsorted(rand.New(rand.NewSource(121)), 1024)
	for _, tc := range []struct{ p, rounds int }{
		{1, 0}, {2, 1}, {4, 2}, {5, 3}, {8, 3},
	} {
		m := NewMachine(tc.p)
		res := ParallelMergeSort(m, m.NewArray(data))
		if got := len(res.Report.Phases); got != 1+tc.rounds {
			t.Errorf("p=%d: %d phases, want %d", tc.p, got, 1+tc.rounds)
		}
	}
}

func TestParallelMergeSortDegenerate(t *testing.T) {
	m := NewMachine(4)
	var emptyVals []int32
	res := ParallelMergeSort(m, m.NewArray(emptyVals))
	if res.Out.Len() != 0 {
		t.Fatal("empty sort misbehaved")
	}
	m2 := NewMachine(4)
	res2 := ParallelMergeSort(m2, m2.NewArray([]int32{7}))
	if got := res2.Out.Snapshot(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("single element: %v", got)
	}
}

func TestParallelMergeSortDoesNotMutateInput(t *testing.T) {
	m := NewMachine(2)
	in := m.NewArray([]int32{3, 1, 2})
	before := in.Snapshot()
	ParallelMergeSort(m, in)
	after := in.Snapshot()
	// The machine copies input into a working array; the caller's array
	// object handed in must keep its contents.
	if !verify.Equal(before, after) {
		t.Fatalf("input mutated: %v -> %v", before, after)
	}
}

func TestParallelMergeSortRoundBalance(t *testing.T) {
	// The §I motivation: in the late rounds few merges remain, but every
	// processor still works. Check the last round's per-processor write
	// counts are all nonzero and within 2x of each other.
	data := workload.Unsorted(rand.New(rand.NewSource(122)), 4096)
	p := 8
	m := NewMachine(p)
	res := ParallelMergeSort(m, m.NewArray(data))
	last := res.Report.Phases[len(res.Report.Phases)-1]
	minW, maxW := last.Writes[0], last.Writes[0]
	for _, w := range last.Writes {
		if w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
	}
	if minW == 0 {
		t.Fatalf("a processor idled in the final round: %v", last.Writes)
	}
	if maxW > 2*minW {
		t.Fatalf("final-round imbalance: %v", last.Writes)
	}
}
