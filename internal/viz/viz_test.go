package viz

import (
	"strings"
	"testing"
)

func TestMatrixRendering(t *testing.T) {
	a := []int32{3, 7}
	b := []int32{2, 5, 9}
	out := Matrix(a, b)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("lines: %d\n%s", len(lines), out)
	}
	// Row for 3: 3>2 -> 1, 3>5 -> ., 3>9 -> .
	if !strings.Contains(lines[1], "1 . .") {
		t.Errorf("row for 3 wrong: %q", lines[1])
	}
	// Row for 7: 7>2, 7>5 -> 1 1 ., 7>9 -> .
	if !strings.Contains(lines[2], "1 1 .") {
		t.Errorf("row for 7 wrong: %q", lines[2])
	}
}

func TestMatrixMonotoneStaircase(t *testing.T) {
	// The rendered 1-region must be a lower-left staircase: within a row,
	// no '1' after a '.'; down a column, no '.' after a '1'.
	a := []int32{1, 4, 4, 8}
	b := []int32{0, 3, 5, 9}
	out := Matrix(a, b)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")[1:]
	for _, line := range lines {
		cells := strings.Fields(line)[1:] // drop label
		seenDot := false
		for _, c := range cells {
			if c == "." {
				seenDot = true
			} else if seenDot {
				t.Fatalf("non-monotone row: %q", line)
			}
		}
	}
}

func TestPathRendering(t *testing.T) {
	a := []int32{1, 3}
	b := []int32{2, 4}
	out := Path(a, b, 1)
	// The path has 5 points; count '#'.
	if got := strings.Count(out, "#"); got != 5 {
		t.Fatalf("path marks: %d\n%s", got, out)
	}
	// Starts at top-left grid point of the first grid row.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[1], "#") {
		t.Fatalf("path missing from first grid row:\n%s", out)
	}
}

func TestPathPartitionMarks(t *testing.T) {
	a := []int32{1, 2, 3, 4}
	b := []int32{5, 6, 7, 8}
	out := Path(a, b, 4)
	// p=4: cuts 1..3 marked with digits, replacing three '#'.
	for _, mark := range []string{"1", "2", "3"} {
		if !strings.Contains(out, mark+" ") && !strings.Contains(out, " "+mark) {
			t.Fatalf("cut mark %s missing:\n%s", mark, out)
		}
	}
	if got := strings.Count(out, "#"); got != 9-3 {
		t.Fatalf("path marks after cuts: %d\n%s", got, out)
	}
}

func TestPathEmptyInputs(t *testing.T) {
	var empty []int32
	out := Path(empty, []int32{1, 2}, 1)
	if got := strings.Count(out, "#"); got != 3 {
		t.Fatalf("degenerate path marks: %d\n%s", got, out)
	}
	out = Path(empty, empty, 1)
	if got := strings.Count(out, "#"); got != 1 {
		t.Fatalf("empty-empty marks: %d\n%s", got, out)
	}
}

func TestCutMark(t *testing.T) {
	if cutMark(3) != '3' || cutMark(10) != 'a' || cutMark(35) != 'z' || cutMark(36) != '+' {
		t.Error("cut mark mapping wrong")
	}
}
