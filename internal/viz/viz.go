// Package viz renders merge matrices and merge paths as ASCII diagrams in
// the style of the paper's Figures 1 and 2 — the "one can see the merge"
// intuition that is the paper's central pedagogical contribution. Intended
// for small inputs (the grid is |A|x|B| characters); used by cmd/pathviz
// and handy in test failure output.
package viz

import (
	"cmp"
	"fmt"
	"strings"

	"mergepath/internal/core"
)

// Matrix renders the binary merge matrix of Definition 1: rows labelled
// with A's elements, columns with B's, cells '1' where A[i] > B[j] and '.'
// otherwise. The 1-region is the lower-left staircase the paper's
// Proposition 10 describes.
func Matrix[T cmp.Ordered](a, b []T) string {
	var sb strings.Builder
	labelsA, widthA := labels(a)
	labelsB, widthB := labels(b)
	sb.WriteString(strings.Repeat(" ", widthA+1))
	for _, l := range labelsB {
		fmt.Fprintf(&sb, "%*s ", widthB, l)
	}
	sb.WriteByte('\n')
	for i := range a {
		fmt.Fprintf(&sb, "%*s ", widthA, labelsA[i])
		for j := range b {
			cell := "."
			if a[i] > b[j] {
				cell = "1"
			}
			fmt.Fprintf(&sb, "%*s ", widthB, cell)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Path renders the merge path on the (|A|+1)x(|B|+1) grid of co-rank
// points: the path is drawn with '#', grid points with '.', and, when
// p > 1, the p-1 equispaced partition crossings with the worker digit
// ('1'..'9', then letters). Row r corresponds to r elements of A consumed;
// column c to c elements of B consumed — down-steps consume A, right-steps
// consume B, exactly the construction of §II.A.
func Path[T cmp.Ordered](a, b []T, p int) string {
	grid := make([][]byte, len(a)+1)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(". ", len(b)+1))
	}
	set := func(pt core.Point, c byte) {
		grid[pt.A][2*pt.B] = c
	}
	for _, pt := range core.Path(a, b) {
		set(pt, '#')
	}
	if p > 1 {
		for i, pt := range core.Partition(a, b, p) {
			if i == 0 || i == p {
				continue
			}
			set(pt, cutMark(i))
		}
	}

	var sb strings.Builder
	labelsA, widthA := labels(a)
	labelsB, widthB := labels(b)
	// Column headers sit between grid columns (element j is consumed
	// moving from column j to j+1).
	sb.WriteString(strings.Repeat(" ", widthA+2))
	for _, l := range labelsB {
		fmt.Fprintf(&sb, "%-2s", l)
		if widthB > 1 {
			sb.WriteString(strings.Repeat(" ", 0))
		}
	}
	sb.WriteByte('\n')
	for r := 0; r < len(grid); r++ {
		label := ""
		if r > 0 {
			label = labelsA[r-1]
		}
		fmt.Fprintf(&sb, "%*s %s\n", widthA, label, string(grid[r]))
	}
	return sb.String()
}

func cutMark(i int) byte {
	if i < 10 {
		return byte('0' + i)
	}
	if i < 36 {
		return byte('a' + i - 10)
	}
	return '+'
}

func labels[T any](s []T) ([]string, int) {
	out := make([]string, len(s))
	width := 1
	for i, v := range s {
		out[i] = fmt.Sprint(v)
		if len(out[i]) > width {
			width = len(out[i])
		}
	}
	return out, width
}
