package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

func TestRoundTripInt64(t *testing.T) {
	cases := [][][]int64{
		{},
		{{}},
		{{42}},
		{{1, 2, 3}, {4, 5}},
		{{}, {1}, {}},
		{{math.MinInt64, -1, 0, 1, math.MaxInt64}},
	}
	for _, lists := range cases {
		var buf bytes.Buffer
		if err := EncodeInt64(&buf, lists...); err != nil {
			t.Fatalf("encode: %v", err)
		}
		if got, want := int64(buf.Len()), Size(lens(lists)...); got != want {
			t.Fatalf("Size=%d but encoded %d bytes", want, got)
		}
		f, err := Decode(&buf, Limits{})
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if f.Type != Int64 {
			t.Fatalf("type = %v", f.Type)
		}
		if len(f.Ints) != len(lists) {
			t.Fatalf("lists = %d, want %d", len(f.Ints), len(lists))
		}
		for i := range lists {
			if !equal(f.Ints[i], lists[i]) {
				t.Fatalf("list %d = %v, want %v", i, f.Ints[i], lists[i])
			}
		}
		f.Release()
	}
}

func TestRoundTripFloat64(t *testing.T) {
	lists := [][]float64{
		{-math.MaxFloat64, -1.5, 0, math.SmallestNonzeroFloat64, math.Inf(1)},
		{math.NaN()},
		{},
	}
	var buf bytes.Buffer
	if err := EncodeFloat64(&buf, lists...); err != nil {
		t.Fatalf("encode: %v", err)
	}
	f, err := Decode(&buf, Limits{})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	defer f.Release()
	if f.Type != Float64 || len(f.Floats) != 3 {
		t.Fatalf("got type %v, %d lists", f.Type, len(f.Floats))
	}
	for i := range lists {
		if len(f.Floats[i]) != len(lists[i]) {
			t.Fatalf("list %d length %d, want %d", i, len(f.Floats[i]), len(lists[i]))
		}
		for j := range lists[i] {
			// Bit-exact comparison so NaN round-trips count as equal.
			if math.Float64bits(f.Floats[i][j]) != math.Float64bits(lists[i][j]) {
				t.Fatalf("list %d[%d] = %v, want %v", i, j, f.Floats[i][j], lists[i][j])
			}
		}
	}
}

// TestRoundTripLarge crosses several chunk boundaries in both
// directions.
func TestRoundTripLarge(t *testing.T) {
	n := chunkBytes/8*3 + 17
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(i * 3)
	}
	var buf bytes.Buffer
	if err := EncodeInt64(&buf, a, a[:5]); err != nil {
		t.Fatalf("encode: %v", err)
	}
	f, err := Decode(&buf, Limits{})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	defer f.Release()
	if !equal(f.Ints[0], a) || !equal(f.Ints[1], a[:5]) {
		t.Fatal("large round trip mismatch")
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := AppendInt64(nil, []int64{1, 2}, []int64{3})
	cases := []struct {
		name string
		body []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", valid[:5], ErrTruncated},
		{"bad magic", append([]byte("NOPE"), valid[4:]...), ErrMagic},
		{"bad version", mutate(valid, 4, 9), ErrVersion},
		{"bad type", mutate(valid, 5, 7), ErrType},
		{"truncated table", valid[:headerSize+3], ErrTruncated},
		{"truncated payload", valid[:len(valid)-1], ErrTruncated},
		{"trailing bytes", append(append([]byte{}, valid...), 0), ErrTrailing},
	}
	for _, tc := range cases {
		f, err := Decode(bytes.NewReader(tc.body), Limits{})
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		if f != nil {
			t.Errorf("%s: non-nil frame on error", tc.name)
		}
	}
}

// TestDecodeLimit proves an absurd length table is rejected before any
// payload allocation: the limit error arrives from an 24-byte body that
// claims 2^60 elements.
func TestDecodeLimit(t *testing.T) {
	body := AppendInt64(nil, []int64{1, 2, 3})
	huge := mutateLen(body, 0, 1<<60)
	if _, err := Decode(bytes.NewReader(huge), Limits{}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	// A wrapping sum of lengths must not sneak under the limit.
	two := AppendInt64(nil, []int64{1}, []int64{2})
	two = mutateLen(two, 0, math.MaxUint64)
	two = mutateLen(two, 1, 2)
	if _, err := Decode(bytes.NewReader(two), Limits{}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("overflow err = %v, want ErrTooLarge", err)
	}
	// A tight explicit limit applies too.
	if _, err := Decode(bytes.NewReader(body), Limits{MaxElements: 2}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("tight limit err = %v, want ErrTooLarge", err)
	}
	if f, err := Decode(bytes.NewReader(body), Limits{MaxElements: 3}); err != nil {
		t.Fatalf("at-limit decode: %v", err)
	} else {
		f.Release()
	}
}

func TestPoolReuse(t *testing.T) {
	s := GetInt64(100)
	for i := range s {
		s[i] = int64(i)
	}
	PutInt64(s)
	s2 := GetInt64(50)
	if len(s2) != 50 {
		t.Fatalf("len = %d", len(s2))
	}
	PutInt64(s2)
	// Oversized arenas are not retained.
	big := make([]int64, maxPooledCap+1)
	PutInt64(big)
}

func TestEncodeTooManyLists(t *testing.T) {
	lists := make([][]int64, math.MaxUint16+1)
	if err := EncodeInt64(io.Discard, lists...); !errors.Is(err, ErrTooManyLists) {
		t.Fatalf("err = %v, want ErrTooManyLists", err)
	}
}

func lens[T any](lists [][]T) []int {
	ns := make([]int, len(lists))
	for i, l := range lists {
		ns[i] = len(l)
	}
	return ns
}

func equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func mutate(b []byte, idx int, v byte) []byte {
	out := append([]byte{}, b...)
	out[idx] = v
	return out
}

// mutateLen overwrites the idx-th entry of the length table.
func mutateLen(b []byte, idx int, v uint64) []byte {
	out := append([]byte{}, b...)
	off := headerSize + 8*idx
	for i := 0; i < 8; i++ {
		out[off+i] = byte(v >> (8 * i))
	}
	return out
}
