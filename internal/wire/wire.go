// Package wire defines the mergepath binary frame: the length-prefixed
// little-endian wire format negotiated on the /v1 endpoints via
// Content-Type/Accept (see docs/WIRE.md for the byte-level spec).
//
// JSON decode is a top-two latency stage on the service (BENCH_server:
// parsing numbers costs more than merging them), so the frame carries
// int64/float64 arrays as raw little-endian payloads behind an 8-byte
// header and a per-list length table. Decode streams the payload
// chunk-by-chunk straight into one sync.Pool-recycled arena — a frame
// with k lists costs one pooled allocation, not k, and the bytes never
// materialize twice — and Encode writes straight from the result slice
// with no intermediate buffer. Callers return arenas with
// Frame.Release / PutInt64 / PutFloat64 once the response is written.
//
// Layout (all integers little-endian):
//
//	offset 0  4 bytes  magic "MPW1"
//	offset 4  1 byte   version (1)
//	offset 5  1 byte   element type: 1 = int64, 2 = float64
//	offset 6  uint16   list count n
//	offset 8  n×uint64 per-list element counts
//	then      payload  lists concatenated, 8 bytes per element
//
// Decode validates the length table against Limits before allocating
// anything, so a hostile 8-byte header cannot demand gigabytes, and it
// rejects trailing bytes after the payload — a frame is the whole body,
// exactly, mirroring the JSON path's trailing-garbage check.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync"
)

// ContentType is the MIME type that selects the binary frame on the /v1
// endpoints (request via Content-Type, response via Accept).
const ContentType = "application/x-mergepath-frame"

// Version is the only frame version this package reads and writes.
const Version = 1

// Type identifies the element encoding of a frame's payload.
type Type byte

// Element types. Every list in a frame shares one type.
const (
	// Int64 payloads are two's-complement little-endian int64 values.
	Int64 Type = 1
	// Float64 payloads are IEEE-754 binary64 values, little-endian.
	Float64 Type = 2
)

// String names the type for errors and logs.
func (t Type) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	default:
		return fmt.Sprintf("type(%d)", byte(t))
	}
}

func (t Type) valid() bool { return t == Int64 || t == Float64 }

// headerSize is the fixed prefix before the length table.
const headerSize = 8

// magic is the first four body bytes of every frame.
var magic = [4]byte{'M', 'P', 'W', '1'}

// Decode error classes. Decode wraps them with detail; match with
// errors.Is. All of them are client errors (a malformed or oversized
// frame), never internal failures.
var (
	// ErrMagic reports a body that is not a mergepath frame at all.
	ErrMagic = errors.New("wire: bad magic (not a mergepath frame)")
	// ErrVersion reports a frame version this build does not speak.
	ErrVersion = errors.New("wire: unsupported frame version")
	// ErrType reports an element type byte outside {int64, float64}.
	ErrType = errors.New("wire: unknown element type")
	// ErrTooLarge reports a length table demanding more elements than
	// Limits allows; nothing was allocated.
	ErrTooLarge = errors.New("wire: frame exceeds element limit")
	// ErrTruncated reports a body that ended before header + length
	// table + payload were complete.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrTrailing reports bytes after the declared payload: the frame
	// must be the entire body.
	ErrTrailing = errors.New("wire: trailing bytes after frame payload")
	// ErrTooManyLists reports an Encode call with more lists than the
	// uint16 list-count field can carry.
	ErrTooManyLists = errors.New("wire: too many lists for one frame")
)

// DefaultMaxElements bounds decode when Limits.MaxElements is zero:
// 2^27 elements = 1 GiB of payload.
const DefaultMaxElements = 1 << 27

// Limits bounds what Decode will allocate. The length table is
// validated against it before the arena is sized, so the limit also
// caps the damage of an absurd-length header on a tiny body.
type Limits struct {
	// MaxElements caps the total element count across all lists of one
	// frame. Zero selects DefaultMaxElements.
	MaxElements int
}

// Frame is one decoded message: n lists sharing one element type. The
// non-nil one of Ints/Floats holds the lists; all of them alias a
// single pooled arena, so the caller must not retain any list beyond
// Release.
type Frame struct {
	// Type says which of Ints/Floats is populated.
	Type Type
	// Ints holds the lists of an Int64 frame (nil otherwise). Lists are
	// sub-slices of one shared arena.
	Ints [][]int64
	// Floats holds the lists of a Float64 frame (nil otherwise).
	Floats [][]float64

	arenaI []int64
	arenaF []float64
}

// Lists reports the number of lists in the frame.
func (f *Frame) Lists() int {
	if f.Type == Float64 {
		return len(f.Floats)
	}
	return len(f.Ints)
}

// Elements reports the total element count across all lists.
func (f *Frame) Elements() int {
	if f.Type == Float64 {
		return len(f.arenaF)
	}
	return len(f.arenaI)
}

// Release returns the frame's arena to the pool and clears the list
// headers. Safe on nil and safe to call twice; every Ints/Floats slice
// is invalid afterward.
func (f *Frame) Release() {
	if f == nil {
		return
	}
	if f.arenaI != nil {
		PutInt64(f.arenaI)
		f.arenaI, f.Ints = nil, nil
	}
	if f.arenaF != nil {
		PutFloat64(f.arenaF)
		f.arenaF, f.Floats = nil, nil
	}
}

// chunkBytes is the streaming unit for both directions: big enough to
// amortize Read/Write calls, small enough to stay pool-friendly. A
// multiple of 8 so chunks never split an element.
const chunkBytes = 64 << 10

var chunkPool = sync.Pool{New: func() any { b := make([]byte, chunkBytes); return &b }}

// maxPooledCap caps what the arena pools retain: 1<<22 elements
// (32 MiB). Larger arenas serve their one request and go to the GC, so
// a single huge frame doesn't pin its high-water mark forever.
const maxPooledCap = 1 << 22

var (
	int64Pool   = sync.Pool{New: func() any { return new([]int64) }}
	float64Pool = sync.Pool{New: func() any { return new([]float64) }}
)

// roundCap rounds an arena request up to a power of two so pooled
// arenas converge on a few size classes instead of one per body size.
func roundCap(n int) int {
	if n <= 0 {
		return 0
	}
	return 1 << bits.Len(uint(n-1))
}

// GetInt64 returns a pooled []int64 of length n (contents undefined).
// Pair with PutInt64.
func GetInt64(n int) []int64 {
	p := int64Pool.Get().(*[]int64)
	if cap(*p) < n {
		*p = make([]int64, roundCap(n))
	}
	return (*p)[:n]
}

// PutInt64 returns a slice obtained from GetInt64 to the pool.
func PutInt64(s []int64) {
	if cap(s) == 0 || cap(s) > maxPooledCap {
		return
	}
	s = s[:0]
	int64Pool.Put(&s)
}

// GetFloat64 returns a pooled []float64 of length n (contents
// undefined). Pair with PutFloat64.
func GetFloat64(n int) []float64 {
	p := float64Pool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, roundCap(n))
	}
	return (*p)[:n]
}

// PutFloat64 returns a slice obtained from GetFloat64 to the pool.
func PutFloat64(s []float64) {
	if cap(s) == 0 || cap(s) > maxPooledCap {
		return
	}
	s = s[:0]
	float64Pool.Put(&s)
}

func truncated(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return err
}

// Decode reads one complete frame from r into a pooled arena,
// streaming the payload in 64 KiB chunks. The length table is checked
// against lim before any allocation. The body must end exactly at the
// payload's last byte; anything further is ErrTrailing. Call
// frame.Release when done with the lists.
func Decode(r io.Reader, lim Limits) (*Frame, error) {
	maxElems := lim.MaxElements
	if maxElems <= 0 {
		maxElems = DefaultMaxElements
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, truncated(err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, ErrMagic
	}
	if hdr[4] != Version {
		return nil, fmt.Errorf("%w: got %d, speak %d", ErrVersion, hdr[4], Version)
	}
	t := Type(hdr[5])
	if !t.valid() {
		return nil, fmt.Errorf("%w: %d", ErrType, hdr[5])
	}
	n := int(binary.LittleEndian.Uint16(hdr[6:8]))
	// The length table is at most 65535×8 B = 512 KiB — bounded by the
	// format, so reading it whole before validation is safe.
	lenBuf := make([]byte, 8*n)
	if _, err := io.ReadFull(r, lenBuf); err != nil {
		return nil, truncated(err)
	}
	lengths := make([]int, n)
	var total uint64
	for i := range lengths {
		l := binary.LittleEndian.Uint64(lenBuf[8*i:])
		total += l
		// Check per-list and cumulative against the limit in uint64 so
		// neither a huge single length nor a wrapping sum sneaks by.
		if l > uint64(maxElems) || total > uint64(maxElems) {
			return nil, fmt.Errorf("%w: %d elements > limit %d", ErrTooLarge, total, maxElems)
		}
		lengths[i] = int(l)
	}
	f := &Frame{Type: t}
	var err error
	switch t {
	case Int64:
		f.arenaI = GetInt64(int(total))
		err = readPayload(r, f.arenaI, func(b []byte) int64 {
			return int64(binary.LittleEndian.Uint64(b))
		})
		if err == nil {
			f.Ints = split(f.arenaI, lengths)
		}
	case Float64:
		f.arenaF = GetFloat64(int(total))
		err = readPayload(r, f.arenaF, func(b []byte) float64 {
			return math.Float64frombits(binary.LittleEndian.Uint64(b))
		})
		if err == nil {
			f.Floats = split(f.arenaF, lengths)
		}
	}
	if err == nil {
		err = expectEOF(r)
	}
	if err != nil {
		f.Release()
		return nil, err
	}
	return f, nil
}

// readPayload streams len(dst)*8 bytes from r through a pooled chunk
// into dst.
func readPayload[T int64 | float64](r io.Reader, dst []T, from func([]byte) T) error {
	if len(dst) == 0 {
		return nil
	}
	bp := chunkPool.Get().(*[]byte)
	defer chunkPool.Put(bp)
	buf := *bp
	for idx := 0; idx < len(dst); {
		c := (len(dst) - idx) * 8
		if c > chunkBytes {
			c = chunkBytes
		}
		if _, err := io.ReadFull(r, buf[:c]); err != nil {
			return truncated(err)
		}
		for off := 0; off < c; off += 8 {
			dst[idx] = from(buf[off : off+8])
			idx++
		}
	}
	return nil
}

// expectEOF asserts the reader is exhausted.
func expectEOF(r io.Reader) error {
	var one [1]byte
	switch _, err := io.ReadFull(r, one[:]); err {
	case io.EOF:
		return nil
	case nil:
		return ErrTrailing
	default:
		return err
	}
}

// split cuts an arena into per-list views without copying.
func split[T any](arena []T, lengths []int) [][]T {
	lists := make([][]T, len(lengths))
	off := 0
	for i, l := range lengths {
		lists[i] = arena[off : off+l : off+l]
		off += l
	}
	return lists
}

// Size reports the encoded byte size of a frame carrying lists of the
// given element counts — header, length table and payload. Use it for
// Content-Length before Encode.
func Size(listLens ...int) int64 {
	total := int64(0)
	for _, l := range listLens {
		total += int64(l)
	}
	return headerSize + 8*int64(len(listLens)) + 8*total
}

// EncodeInt64 writes one Int64 frame carrying the given lists to w,
// streaming through a pooled chunk (no whole-payload buffer).
func EncodeInt64(w io.Writer, lists ...[]int64) error {
	return encode(w, Int64, lists, func(b []byte, v int64) {
		binary.LittleEndian.PutUint64(b, uint64(v))
	})
}

// EncodeFloat64 writes one Float64 frame carrying the given lists to w.
func EncodeFloat64(w io.Writer, lists ...[]float64) error {
	return encode(w, Float64, lists, func(b []byte, v float64) {
		binary.LittleEndian.PutUint64(b, math.Float64bits(v))
	})
}

func encode[T int64 | float64](w io.Writer, t Type, lists [][]T, put func([]byte, T)) error {
	if len(lists) > math.MaxUint16 {
		return fmt.Errorf("%w: %d > %d", ErrTooManyLists, len(lists), math.MaxUint16)
	}
	bp := chunkPool.Get().(*[]byte)
	defer chunkPool.Put(bp)
	buf := *bp
	// Header + length table first; the table fits the chunk only up to
	// ~8K lists, so flush it in chunk-sized pieces like the payload.
	copy(buf, magic[:])
	buf[4] = Version
	buf[5] = byte(t)
	binary.LittleEndian.PutUint16(buf[6:8], uint16(len(lists)))
	fill := headerSize
	flush := func(need int) error {
		if fill+need <= chunkBytes {
			return nil
		}
		_, err := w.Write(buf[:fill])
		fill = 0
		return err
	}
	for _, list := range lists {
		if err := flush(8); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf[fill:], uint64(len(list)))
		fill += 8
	}
	for _, list := range lists {
		for _, v := range list {
			if err := flush(8); err != nil {
				return err
			}
			put(buf[fill:fill+8], v)
			fill += 8
		}
	}
	if fill > 0 {
		if _, err := w.Write(buf[:fill]); err != nil {
			return err
		}
	}
	return nil
}

// AppendInt64 encodes an Int64 frame into a byte slice (appended to
// dst) — the convenience path for clients and tests that want a body
// []byte rather than a stream.
func AppendInt64(dst []byte, lists ...[]int64) []byte {
	var sb sliceBuf
	sb.b = dst
	_ = EncodeInt64(&sb, lists...)
	return sb.b
}

// AppendFloat64 encodes a Float64 frame into a byte slice appended to
// dst.
func AppendFloat64(dst []byte, lists ...[]float64) []byte {
	var sb sliceBuf
	sb.b = dst
	_ = EncodeFloat64(&sb, lists...)
	return sb.b
}

type sliceBuf struct{ b []byte }

func (s *sliceBuf) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}
