package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// FuzzDecode feeds arbitrary bodies to the frame decoder under a tight
// element limit and asserts the safety contract: never panic, never
// allocate past the limit, classify every malformed body as one of the
// exported error classes, and — when a body does decode — survive a
// re-encode/re-decode round trip bit-exactly.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendInt64(nil))
	f.Add(AppendInt64(nil, []int64{1, 2, 3}, []int64{4}))
	f.Add(AppendFloat64(nil, []float64{1.5, math.Inf(-1)}, nil))
	f.Add([]byte("MPW1 not a frame"))
	f.Add(mutateLen(AppendInt64(nil, []int64{1}), 0, math.MaxUint64))
	f.Add(append(AppendInt64(nil, []int64{7}), 0xFF))
	f.Fuzz(func(t *testing.T, body []byte) {
		const limit = 1 << 16
		fr, err := Decode(bytes.NewReader(body), Limits{MaxElements: limit})
		if err != nil {
			if fr != nil {
				t.Fatal("non-nil frame alongside error")
			}
			for _, known := range []error{ErrMagic, ErrVersion, ErrType, ErrTooLarge, ErrTruncated, ErrTrailing} {
				if errors.Is(err, known) {
					return
				}
			}
			t.Fatalf("unclassified decode error: %v", err)
		}
		defer fr.Release()
		if fr.Elements() > limit {
			t.Fatalf("decoded %d elements past limit %d", fr.Elements(), limit)
		}
		// A valid frame must re-encode to the exact input bytes (the
		// format has one canonical encoding) and decode again equal.
		var re bytes.Buffer
		switch fr.Type {
		case Int64:
			if err := EncodeInt64(&re, fr.Ints...); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
		case Float64:
			if err := EncodeFloat64(&re, fr.Floats...); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
		default:
			t.Fatalf("decoded impossible type %v", fr.Type)
		}
		if !bytes.Equal(re.Bytes(), body) {
			t.Fatalf("re-encode differs from input: %d vs %d bytes", re.Len(), len(body))
		}
	})
}
