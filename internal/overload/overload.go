// Package overload is the daemon's adaptive overload controller: a
// queue-delay (CoDel-style) admission governor with brownout
// degradation and hysteresis.
//
// The classic CoDel insight is that queue *length* is a bad congestion
// signal (bursts legitimately fill queues) but queue *sojourn time* is a
// good one: if even the luckiest job of the last interval waited longer
// than the target, the queue is standing, not draining. The paper's
// Theorem 5 makes this unusually tractable here — every round hands each
// worker (|A|+|B|)/p elements, so per-element service cost is stable and
// the controller can convert "queued elements ÷ measured drain rate"
// into an honest Retry-After instead of a guess.
//
// The controller runs a three-state machine with hysteresis:
//
//	healthy  --(1 bad interval)-->  degraded  --(ShedIntervals consecutive
//	   ^                               |  ^          bad intervals)--> shedding
//	   |                               |  |                               |
//	   +--(RecoverIntervals good)------+  +----(RecoverIntervals good)----+
//
// An interval is *bad* when the minimum queue sojourn observed during it
// exceeds Target (or when nothing dequeued at all while a backlog was
// standing). In degraded the server browns out — smaller coalesce
// window, capped per-job parallelism — but still serves everything; in
// shedding it refuses new work with 429 and a computed Retry-After.
// Stepping down (shedding→degraded→healthy) requires RecoverIntervals
// consecutive good intervals per step, so recovery is clean rather than
// oscillating on the first quiet millisecond.
//
// All methods are safe for concurrent use. The zero Controller is not
// usable; construct with New.
package overload

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// State is the controller's position in the overload state machine.
type State int32

// The three overload states, in order of escalation.
const (
	// Healthy: sojourn under target; full coalesce window and
	// parallelism, everything admitted.
	Healthy State = iota
	// Degraded: sustained sojourn over target; the server browns out
	// (shorter coalesce window, capped per-job parallelism) but still
	// admits all work.
	Degraded
	// Shedding: pressure persisted through the brownout; new work is
	// refused with 429 and a Retry-After computed from the measured
	// drain rate.
	Shedding
)

// String names the state for /healthz, /metrics and logs.
func (s State) String() string {
	switch s {
	case Degraded:
		return "degraded"
	case Shedding:
		return "shedding"
	default:
		return "healthy"
	}
}

// Config tunes the controller. Zero values select the documented
// defaults.
type Config struct {
	// Target is the acceptable minimum queue sojourn per interval; an
	// interval whose best job waited longer is bad. Default 5ms.
	Target time.Duration
	// Interval is the evaluation window over which the minimum sojourn
	// is tracked. Default 100ms.
	Interval time.Duration
	// ShedIntervals is how many consecutive bad intervals escalate
	// degraded to shedding (the first bad interval already entered
	// degraded). Default 3.
	ShedIntervals int
	// RecoverIntervals is how many consecutive good intervals step the
	// state down one level (shedding→degraded, degraded→healthy) — the
	// hysteresis that keeps recovery from oscillating. Default 2.
	RecoverIntervals int
	// MinRetryAfter is the lower clamp of the computed Retry-After.
	// Default 1s.
	MinRetryAfter time.Duration
	// MaxRetryAfter is the upper clamp of the computed Retry-After.
	// Default 30s.
	MaxRetryAfter time.Duration
	// DrainAlpha is the EWMA weight of the newest drain-rate sample in
	// (0,1]. Default 0.3.
	DrainAlpha float64
}

func (c Config) withDefaults() Config {
	if c.Target <= 0 {
		c.Target = 5 * time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.ShedIntervals <= 0 {
		c.ShedIntervals = 3
	}
	if c.RecoverIntervals <= 0 {
		c.RecoverIntervals = 2
	}
	if c.MinRetryAfter <= 0 {
		c.MinRetryAfter = time.Second
	}
	if c.MaxRetryAfter <= 0 {
		c.MaxRetryAfter = 30 * time.Second
	}
	if c.MaxRetryAfter < c.MinRetryAfter {
		c.MaxRetryAfter = c.MinRetryAfter
	}
	if c.DrainAlpha <= 0 || c.DrainAlpha > 1 {
		c.DrainAlpha = 0.3
	}
	return c
}

// Controller tracks queue sojourn, backlog and drain rate, and runs the
// healthy/degraded/shedding state machine.
type Controller struct {
	cfg Config

	state   atomic.Int32 // State; atomic so brownout checks are lock-free
	backlog atomic.Int64 // elements admitted but not yet finished

	mu            sync.Mutex
	intervalStart time.Time
	minSojourn    time.Duration // min sojourn observed this interval
	sawSojourn    bool          // any dequeue observed this interval
	lastMin       time.Duration // min sojourn of the last completed interval
	lastMinValid  bool
	badStreak     int     // consecutive bad intervals
	goodStreak    int     // consecutive good intervals
	drainRate     float64 // elements/second, EWMA; 0 = no sample yet

	// Transition and shed counters, exported via Snapshot.
	sheds      atomic.Uint64 // admissions refused while shedding
	toDegraded atomic.Uint64 // transitions into degraded (either direction)
	toShedding atomic.Uint64 // transitions into shedding
	toHealthy  atomic.Uint64 // full recoveries back to healthy
}

// New builds a Controller; the first interval starts now.
func New(cfg Config) *Controller {
	return &Controller{cfg: cfg.withDefaults(), intervalStart: time.Now()}
}

// Config reports the effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// State reports the current overload state (lock-free; the dispatcher
// reads it on every flush decision).
func (c *Controller) State() State { return State(c.state.Load()) }

// Enqueue records n elements entering the admission backlog.
func (c *Controller) Enqueue(n int) { c.backlog.Add(int64(n)) }

// Done records n elements leaving the backlog (finished, shed at flush,
// or dropped at dequeue).
func (c *Controller) Done(n int) { c.backlog.Add(int64(-n)) }

// Backlog reports elements admitted but not yet finished.
func (c *Controller) Backlog() int64 { return c.backlog.Load() }

// ObserveSojourn records one job's queue wait (submit → dequeue). This
// is the controller's congestion signal: the per-interval minimum of
// these is compared against Target.
func (c *Controller) ObserveSojourn(wait time.Duration) { c.observeSojourn(wait, time.Now()) }

func (c *Controller) observeSojourn(wait time.Duration, now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tickLocked(now)
	if !c.sawSojourn || wait < c.minSojourn {
		c.minSojourn = wait
	}
	c.sawSojourn = true
}

// ObserveDrain folds one completed round (elems output elements in
// took wall time) into the EWMA drain-rate estimate.
func (c *Controller) ObserveDrain(elems int, took time.Duration) {
	if elems <= 0 || took <= 0 {
		return
	}
	sample := float64(elems) / took.Seconds()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.drainRate == 0 {
		c.drainRate = sample
	} else {
		c.drainRate += c.cfg.DrainAlpha * (sample - c.drainRate)
	}
}

// Admit decides one new request's fate: admitted (true, 0) or shed
// (false, computed Retry-After). Only the shedding state refuses work.
func (c *Controller) Admit() (bool, time.Duration) { return c.admit(time.Now()) }

func (c *Controller) admit(now time.Time) (bool, time.Duration) {
	c.mu.Lock()
	c.tickLocked(now)
	shedding := State(c.state.Load()) == Shedding
	ra := time.Duration(0)
	if shedding {
		ra = c.retryAfterLocked()
	}
	c.mu.Unlock()
	if shedding {
		c.sheds.Add(1)
		return false, ra
	}
	return true, 0
}

// RetryAfter estimates how long the standing backlog takes to drain at
// the measured rate, clamped to [MinRetryAfter, MaxRetryAfter]. This is
// the value 429s and 503s carry instead of a hardcoded constant.
func (c *Controller) RetryAfter() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retryAfterLocked()
}

func (c *Controller) retryAfterLocked() time.Duration {
	ra := c.cfg.MinRetryAfter
	if rate := c.drainRate; rate > 0 {
		if est := time.Duration(float64(c.backlog.Load()) / rate * float64(time.Second)); est > ra {
			ra = est
		}
	}
	if ra > c.cfg.MaxRetryAfter {
		ra = c.cfg.MaxRetryAfter
	}
	return ra
}

// RetryAfterSeconds is RetryAfter rounded up to whole seconds — the
// integer form the HTTP Retry-After header speaks. Always ≥ 1.
func (c *Controller) RetryAfterSeconds() int {
	secs := int(math.Ceil(c.RetryAfter().Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// tickLocked closes out every interval that has fully elapsed since the
// last evaluation. The controller is driven by traffic (and by metrics
// scrapes), not by its own timer: after an idle gap, all the elapsed
// intervals are settled here — empty intervals with no standing backlog
// count as good, so an idle daemon recovers.
func (c *Controller) tickLocked(now time.Time) {
	// Intervals with no sojourn sample all get the same verdict (decided
	// by the standing backlog alone), and identical verdicts beyond one
	// full escalation (1+ShedIntervals bad) or recovery
	// (2×RecoverIntervals good) streak are idempotent. After a long gap,
	// fast-forward across the idempotent span instead of settling
	// O(gap/Interval) intervals one at a time under the lock.
	keep := c.cfg.Interval * time.Duration(2*c.cfg.RecoverIntervals+c.cfg.ShedIntervals+1)
	for now.Sub(c.intervalStart) >= c.cfg.Interval {
		if !c.sawSojourn && now.Sub(c.intervalStart) > keep {
			c.intervalStart = now.Add(-keep)
		}
		bad := false
		switch {
		case c.sawSojourn:
			bad = c.minSojourn > c.cfg.Target
		case c.backlog.Load() > 0:
			// Nothing dequeued all interval while work was standing: the
			// queue is stalled, which is at least as bad as slow.
			bad = true
		}
		c.lastMin, c.lastMinValid = c.minSojourn, c.sawSojourn
		c.sawSojourn = false
		c.minSojourn = 0
		c.evaluateLocked(bad)
		c.intervalStart = c.intervalStart.Add(c.cfg.Interval)
	}
}

// evaluateLocked applies one interval verdict to the state machine.
func (c *Controller) evaluateLocked(bad bool) {
	st := State(c.state.Load())
	if bad {
		c.goodStreak = 0
		c.badStreak++
		switch {
		case st == Healthy:
			c.state.Store(int32(Degraded))
			c.toDegraded.Add(1)
		case st == Degraded && c.badStreak >= c.cfg.ShedIntervals:
			c.state.Store(int32(Shedding))
			c.toShedding.Add(1)
		}
		return
	}
	c.badStreak = 0
	c.goodStreak++
	if c.goodStreak < c.cfg.RecoverIntervals {
		return
	}
	// One full recovery streak steps down exactly one level, then the
	// streak restarts: shedding must hold degraded for another
	// RecoverIntervals before healthy.
	c.goodStreak = 0
	switch st {
	case Shedding:
		c.state.Store(int32(Degraded))
		c.toDegraded.Add(1)
	case Degraded:
		c.state.Store(int32(Healthy))
		c.toHealthy.Add(1)
	}
}

// Snapshot is the controller's exported view, embedded in the daemon's
// /metrics document and rendered on /metrics/prom and /healthz.
type Snapshot struct {
	// State is the current overload state: "healthy", "degraded" or
	// "shedding".
	State string `json:"state"`
	// StateCode is the numeric form of State (0 healthy, 1 degraded,
	// 2 shedding) for dashboards that want a plottable series.
	StateCode int `json:"state_code"`
	// TargetMS echoes the configured sojourn target in milliseconds.
	TargetMS float64 `json:"target_ms"`
	// IntervalMS echoes the configured evaluation interval in
	// milliseconds.
	IntervalMS float64 `json:"interval_ms"`
	// SojournMinMS is the minimum queue sojourn of the last completed
	// interval that saw traffic (the CoDel congestion signal).
	SojournMinMS float64 `json:"sojourn_min_ms"`
	// BacklogElements is elements admitted but not yet finished.
	BacklogElements int64 `json:"backlog_elements"`
	// DrainElemsPerSec is the EWMA element throughput of completed
	// rounds; 0 until the first round finishes.
	DrainElemsPerSec float64 `json:"drain_elems_per_sec"`
	// RetryAfterSeconds is the current computed Retry-After (whole
	// seconds, ≥1): backlog ÷ drain rate, clamped.
	RetryAfterSeconds int `json:"retry_after_s"`
	// ShedTotal counts admissions refused with 429 while shedding.
	ShedTotal uint64 `json:"shed_total"`
	// TransitionsDegraded counts state-machine entries into degraded
	// (escalations from healthy and step-downs from shedding).
	TransitionsDegraded uint64 `json:"transitions_degraded_total"`
	// TransitionsShedding counts escalations into shedding.
	TransitionsShedding uint64 `json:"transitions_shedding_total"`
	// TransitionsHealthy counts full recoveries back to healthy.
	TransitionsHealthy uint64 `json:"transitions_healthy_total"`
}

// SnapshotNow settles elapsed intervals and returns the current view, so
// metrics scrapes both report fresh state and drive recovery during
// idle periods.
func (c *Controller) SnapshotNow() Snapshot { return c.snapshotAt(time.Now()) }

func (c *Controller) snapshotAt(now time.Time) Snapshot {
	c.mu.Lock()
	c.tickLocked(now)
	st := State(c.state.Load())
	s := Snapshot{
		State:            st.String(),
		StateCode:        int(st),
		TargetMS:         float64(c.cfg.Target) / float64(time.Millisecond),
		IntervalMS:       float64(c.cfg.Interval) / float64(time.Millisecond),
		BacklogElements:  c.backlog.Load(),
		DrainElemsPerSec: c.drainRate,
	}
	if c.lastMinValid {
		s.SojournMinMS = float64(c.lastMin) / float64(time.Millisecond)
	}
	ra := int(math.Ceil(c.retryAfterLocked().Seconds()))
	c.mu.Unlock()
	if ra < 1 {
		ra = 1
	}
	s.RetryAfterSeconds = ra
	s.ShedTotal = c.sheds.Load()
	s.TransitionsDegraded = c.toDegraded.Load()
	s.TransitionsShedding = c.toShedding.Load()
	s.TransitionsHealthy = c.toHealthy.Load()
	return s
}
