package overload

import (
	"sync"
	"testing"
	"time"
)

// clock hands out deterministic instants so interval math is exact.
type clock struct{ t time.Time }

func newClock() *clock { return &clock{t: time.Unix(1000, 0)} }

func (c *clock) now() time.Time                    { return c.t }
func (c *clock) advance(d time.Duration) time.Time { c.t = c.t.Add(d); return c.t }
func newTestController(cl *clock, cfg Config) *Controller {
	ctrl := New(cfg)
	ctrl.mu.Lock()
	ctrl.intervalStart = cl.t
	ctrl.mu.Unlock()
	return ctrl
}

var testCfg = Config{
	Target:           time.Millisecond,
	Interval:         10 * time.Millisecond,
	ShedIntervals:    3,
	RecoverIntervals: 2,
}

// badInterval feeds one over-target sojourn and closes the interval.
func badInterval(ctrl *Controller, cl *clock) {
	ctrl.observeSojourn(5*time.Millisecond, cl.now())
	cl.advance(testCfg.Interval)
	ctrl.admit(cl.now())
}

// goodInterval feeds one under-target sojourn and closes the interval.
func goodInterval(ctrl *Controller, cl *clock) {
	ctrl.observeSojourn(100*time.Microsecond, cl.now())
	cl.advance(testCfg.Interval)
	ctrl.admit(cl.now())
}

func TestEscalationHealthyDegradedShedding(t *testing.T) {
	cl := newClock()
	ctrl := newTestController(cl, testCfg)
	if st := ctrl.State(); st != Healthy {
		t.Fatalf("initial state %v, want healthy", st)
	}
	badInterval(ctrl, cl)
	if st := ctrl.State(); st != Degraded {
		t.Fatalf("after 1 bad interval: %v, want degraded", st)
	}
	badInterval(ctrl, cl) // streak 2: still degraded
	if st := ctrl.State(); st != Degraded {
		t.Fatalf("after 2 bad intervals: %v, want degraded", st)
	}
	badInterval(ctrl, cl) // streak 3 = ShedIntervals: shedding
	if st := ctrl.State(); st != Shedding {
		t.Fatalf("after 3 bad intervals: %v, want shedding", st)
	}
	if ok, ra := ctrl.admit(cl.now()); ok || ra < ctrl.cfg.MinRetryAfter {
		t.Fatalf("shedding admit = (%v, %v), want refusal with Retry-After >= min", ok, ra)
	}
	snap := ctrl.snapshotAt(cl.now())
	if snap.ShedTotal == 0 || snap.TransitionsShedding != 1 || snap.TransitionsDegraded != 1 {
		t.Fatalf("snapshot counters %+v", snap)
	}
}

func TestRecoveryHysteresis(t *testing.T) {
	cl := newClock()
	ctrl := newTestController(cl, testCfg)
	for i := 0; i < 3; i++ {
		badInterval(ctrl, cl)
	}
	if st := ctrl.State(); st != Shedding {
		t.Fatalf("setup: %v, want shedding", st)
	}
	// One good interval is not enough (hysteresis).
	goodInterval(ctrl, cl)
	if st := ctrl.State(); st != Shedding {
		t.Fatalf("after 1 good interval: %v, want still shedding", st)
	}
	goodInterval(ctrl, cl)
	if st := ctrl.State(); st != Degraded {
		t.Fatalf("after 2 good intervals: %v, want degraded", st)
	}
	// Stepping down resets the streak: two more needed for healthy.
	goodInterval(ctrl, cl)
	if st := ctrl.State(); st != Degraded {
		t.Fatalf("one good interval after step-down: %v, want degraded", st)
	}
	goodInterval(ctrl, cl)
	if st := ctrl.State(); st != Healthy {
		t.Fatalf("after full recovery streak: %v, want healthy", st)
	}
	if n := ctrl.snapshotAt(cl.now()).TransitionsHealthy; n != 1 {
		t.Fatalf("recoveries = %d, want 1", n)
	}
}

func TestGoodTrafficInterruptsEscalation(t *testing.T) {
	cl := newClock()
	ctrl := newTestController(cl, testCfg)
	badInterval(ctrl, cl)
	badInterval(ctrl, cl)
	goodInterval(ctrl, cl) // resets the bad streak
	badInterval(ctrl, cl)
	badInterval(ctrl, cl)
	if st := ctrl.State(); st != Degraded {
		t.Fatalf("bad streak never reached ShedIntervals consecutively: %v, want degraded", st)
	}
}

func TestStalledQueueIsBad(t *testing.T) {
	cl := newClock()
	ctrl := newTestController(cl, testCfg)
	ctrl.Enqueue(1000)
	// A whole interval with a standing backlog and zero dequeues must
	// count as bad even though no sojourn was observed.
	cl.advance(testCfg.Interval)
	ctrl.admit(cl.now())
	if st := ctrl.State(); st != Degraded {
		t.Fatalf("stalled interval: %v, want degraded", st)
	}
	// Drained backlog + idle intervals are good: idle recovery works.
	ctrl.Done(1000)
	cl.advance(4 * testCfg.Interval)
	ctrl.admit(cl.now())
	if st := ctrl.State(); st != Healthy {
		t.Fatalf("idle after drain: %v, want healthy", st)
	}
}

func TestLongIdleGapFastForwards(t *testing.T) {
	// A year-long gap is ~3e9 intervals at the test cadence; without the
	// fast-forward the first admit after the gap would iterate them one
	// at a time under the lock (and this test would time out).
	cl := newClock()
	ctrl := newTestController(cl, testCfg)
	for i := 0; i < 3; i++ {
		badInterval(ctrl, cl)
	}
	if st := ctrl.State(); st != Shedding {
		t.Fatalf("setup: %v, want shedding", st)
	}
	cl.advance(365 * 24 * time.Hour)
	if ok, _ := ctrl.admit(cl.now()); !ok {
		t.Fatal("admit refused after a long idle gap")
	}
	if st := ctrl.State(); st != Healthy {
		t.Fatalf("after long idle gap: %v, want healthy", st)
	}
	// Same gap with a standing backlog: every empty interval is bad, the
	// fast-forward must still apply, and the state must escalate.
	ctrl.Enqueue(1000)
	cl.advance(365 * 24 * time.Hour)
	if ok, ra := ctrl.admit(cl.now()); ok || ra < ctrl.cfg.MinRetryAfter {
		t.Fatalf("stalled-gap admit = (%v, %v), want refusal with Retry-After >= min", ok, ra)
	}
	if st := ctrl.State(); st != Shedding {
		t.Fatalf("after long stalled gap: %v, want shedding", st)
	}
}

func TestRetryAfterUsesDrainRate(t *testing.T) {
	cl := newClock()
	ctrl := newTestController(cl, testCfg)
	// No drain sample yet: the clamp floor applies.
	if ra := ctrl.RetryAfter(); ra != ctrl.cfg.MinRetryAfter {
		t.Fatalf("no-sample RetryAfter = %v, want min %v", ra, ctrl.cfg.MinRetryAfter)
	}
	// 10k elements/second measured, 50k queued => 5 seconds.
	ctrl.ObserveDrain(10_000, time.Second)
	ctrl.Enqueue(50_000)
	if ra := ctrl.RetryAfter(); ra != 5*time.Second {
		t.Fatalf("RetryAfter = %v, want 5s", ra)
	}
	if s := ctrl.RetryAfterSeconds(); s != 5 {
		t.Fatalf("RetryAfterSeconds = %d, want 5", s)
	}
	// A huge backlog clamps at the max.
	ctrl.Enqueue(100_000_000)
	if ra := ctrl.RetryAfter(); ra != ctrl.cfg.MaxRetryAfter {
		t.Fatalf("clamped RetryAfter = %v, want max %v", ra, ctrl.cfg.MaxRetryAfter)
	}
}

func TestDrainRateEWMA(t *testing.T) {
	ctrl := New(Config{DrainAlpha: 0.5})
	ctrl.ObserveDrain(1000, time.Second) // seeds at 1000/s
	ctrl.ObserveDrain(3000, time.Second) // EWMA: 1000 + 0.5*(3000-1000) = 2000
	if r := ctrl.SnapshotNow().DrainElemsPerSec; r != 2000 {
		t.Fatalf("EWMA rate = %v, want 2000", r)
	}
	// Zero-element and zero-duration samples are ignored.
	ctrl.ObserveDrain(0, time.Second)
	ctrl.ObserveDrain(100, 0)
	if r := ctrl.SnapshotNow().DrainElemsPerSec; r != 2000 {
		t.Fatalf("rate after degenerate samples = %v, want 2000", r)
	}
}

func TestSnapshotReportsSignal(t *testing.T) {
	cl := newClock()
	ctrl := newTestController(cl, testCfg)
	ctrl.observeSojourn(3*time.Millisecond, cl.now())
	ctrl.observeSojourn(2*time.Millisecond, cl.now())
	cl.advance(testCfg.Interval)
	snap := ctrl.snapshotAt(cl.now())
	if snap.SojournMinMS != 2 {
		t.Fatalf("sojourn_min_ms = %v, want 2 (the interval minimum)", snap.SojournMinMS)
	}
	if snap.State != "degraded" || snap.StateCode != 1 {
		t.Fatalf("state = %q/%d, want degraded/1", snap.State, snap.StateCode)
	}
	if snap.TargetMS != 1 || snap.IntervalMS != 10 {
		t.Fatalf("config echo %v/%v, want 1/10", snap.TargetMS, snap.IntervalMS)
	}
}

func TestConcurrentUse(t *testing.T) {
	// Shake the controller from many goroutines under -race; the final
	// backlog must balance.
	ctrl := New(Config{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ctrl.Enqueue(10)
				ctrl.ObserveSojourn(time.Duration(i) * time.Microsecond)
				ctrl.ObserveDrain(10, time.Millisecond)
				ctrl.Admit()
				ctrl.SnapshotNow()
				ctrl.Done(10)
			}
		}()
	}
	wg.Wait()
	if b := ctrl.Backlog(); b != 0 {
		t.Fatalf("backlog = %d after balanced enqueue/done, want 0", b)
	}
}
