package bitonic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

func TestSortPowerOfTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for _, n := range []int{2, 4, 8, 64, 256, 1024} {
		s := workload.Unsorted(rng, n)
		want := append([]int32(nil), s...)
		Sort(s)
		if !verify.Sorted(s) {
			t.Fatalf("n=%d: not sorted", n)
		}
		if !verify.SameMultiset(s, want) {
			t.Fatalf("n=%d: elements lost", n)
		}
	}
}

func TestSortArbitraryLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for n := 0; n <= 130; n++ {
		s := workload.Unsorted(rng, n)
		want := append([]int32(nil), s...)
		Sort(s)
		if !verify.Sorted(s) {
			t.Fatalf("n=%d: not sorted: %v", n, s)
		}
		if !verify.SameMultiset(s, want) {
			t.Fatalf("n=%d: elements lost", n)
		}
	}
}

func TestSortDuplicateHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		s := make([]int32, n)
		for i := range s {
			s[i] = int32(rng.Intn(3))
		}
		want := append([]int32(nil), s...)
		Sort(s)
		if !verify.Sorted(s) || !verify.SameMultiset(s, want) {
			t.Fatalf("n=%d: bad sort of duplicates", n)
		}
	}
}

func TestSortParallelAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(2000)
		p := 1 + rng.Intn(8)
		s1 := workload.Unsorted(rng, n)
		s2 := append([]int32(nil), s1...)
		Sort(s1)
		SortParallel(s2, p)
		if !verify.Equal(s1, s2) {
			t.Fatalf("n=%d p=%d: parallel disagrees with sequential", n, p)
		}
	}
}

func TestMergeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 120; trial++ {
		kind := workload.Kinds()[trial%len(workload.Kinds())]
		na, nb := rng.Intn(300), rng.Intn(300)
		a, b := workload.Pair(kind, na, nb, int64(trial))
		out := make([]int32, na+nb)
		Merge(a, b, out)
		ref := verify.ReferenceMerge(a, b)
		if !verify.Equal(out, ref) {
			t.Fatalf("kind=%v na=%d nb=%d: mismatch", kind, na, nb)
		}
	}
}

func TestMergeParallelAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 60; trial++ {
		na, nb := rng.Intn(500), rng.Intn(500)
		p := 1 + rng.Intn(8)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		out := make([]int32, na+nb)
		MergeParallel(a, b, out, p)
		if !verify.Equal(out, verify.ReferenceMerge(a, b)) {
			t.Fatalf("na=%d nb=%d p=%d: mismatch", na, nb, p)
		}
	}
}

func TestMergeEmptySides(t *testing.T) {
	a := []int32{1, 2, 3}
	out := make([]int32, 3)
	var empty []int32
	Merge(a, empty, out)
	if !verify.Equal(out, a) {
		t.Errorf("empty b: %v", out)
	}
	Merge(empty, a, out)
	if !verify.Equal(out, a) {
		t.Errorf("empty a: %v", out)
	}
	Merge(empty, empty, nil)
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"sortpar-p0":  func() { SortParallel([]int32{2, 1}, 0) },
		"merge-out":   func() { Merge([]int32{1}, []int32{2}, nil) },
		"mergepar-p0": func() { MergeParallel([]int32{1}, []int32{2}, make([]int32, 2), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestComparatorCounts(t *testing.T) {
	// Network size must match the closed forms: sort has m/2 * L(L+1)/2
	// exchanges for m = 2^L; merge-clean has m/2 * L.
	if got := SortComparators(1); got != 0 {
		t.Errorf("SortComparators(1) = %d", got)
	}
	if got := SortComparators(8); got != 4*6 { // L=3: 3*4/2=6 sub-stages * 4
		t.Errorf("SortComparators(8) = %d, want 24", got)
	}
	if got := MergeComparators(8); got != 4*3 {
		t.Errorf("MergeComparators(8) = %d, want 12", got)
	}
	// Non power of two rounds up.
	if got := SortComparators(9); got != SortComparators(16) {
		t.Errorf("SortComparators(9) = %d, want %d", got, SortComparators(16))
	}
	// Work is superlinear: per-element comparator count grows with n.
	if float64(SortComparators(1<<12))/float64(1<<12) <= float64(SortComparators(1<<6))/float64(1<<6) {
		t.Error("sorting network work should grow superlinearly")
	}
}

func TestSortQuick(t *testing.T) {
	f := func(raw []int32) bool {
		s := append([]int32(nil), raw...)
		Sort(s)
		return verify.Sorted(s) && verify.SameMultiset(s, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeQuick(t *testing.T) {
	sorted := func(raw []int32) []int32 {
		s := append([]int32(nil), raw...)
		Sort(s)
		return s
	}
	f := func(rawA, rawB []int32) bool {
		a, b := sorted(rawA), sorted(rawB)
		out := make([]int32, len(a)+len(b))
		Merge(a, b, out)
		return verify.Equal(out, verify.ReferenceMerge(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
