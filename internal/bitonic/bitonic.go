// Package bitonic implements Batcher's bitonic sorting network [4], the
// representative of the paper's "problem-size dependent number of
// processors" category of parallel sorts (§V). It provides a sequential
// network evaluation, a data-parallel evaluation that splits each
// compare-exchange sub-stage across workers, and a bitonic *merger* for two
// sorted arrays (concatenate one side ascending and the other descending,
// then run the cleaning half of the network), which experiment E9 compares
// against Merge Path: the network does Theta(N·log^2 N) sorting work and
// Theta(N·logN) merging work versus merge path's O(N), the asymmetry the
// paper's taxonomy highlights.
//
// The network itself requires power-of-two sizes; arbitrary lengths are
// handled by physically padding a scratch buffer with copies of the input
// maximum. Copies of the maximum are >= every element and equal only to
// genuine maxima, so the first n positions of the sorted padded buffer are
// exactly the sorted input.
package bitonic

import (
	"cmp"
	"sync"
)

// Sort sorts s in place using the bitonic network. Arbitrary lengths are
// supported via a max-padded scratch buffer when len(s) is not a power of
// two.
func Sort[T cmp.Ordered](s []T) {
	n := len(s)
	if n < 2 {
		return
	}
	if m := nextPow2(n); m != n {
		buf := padWithMax(s, m)
		runNetwork(buf)
		copy(s, buf[:n])
		return
	}
	runNetwork(s)
}

// SortParallel sorts s in place, evaluating each sub-stage's independent
// compare-exchanges with p workers separated by barriers — the network's
// natural parallelization with N/2 comparators per synchronous cycle.
func SortParallel[T cmp.Ordered](s []T, p int) {
	if p < 1 {
		panic("bitonic: worker count must be positive")
	}
	n := len(s)
	if n < 2 {
		return
	}
	if p == 1 {
		Sort(s)
		return
	}
	if m := nextPow2(n); m != n {
		buf := padWithMax(s, m)
		runNetworkParallel(buf, p)
		copy(s, buf[:n])
		return
	}
	runNetworkParallel(s, p)
}

// Merge merges two sorted slices with the bitonic half-cleaner: lay out a
// ascending followed by b descending (a bitonic sequence), run the cleaning
// sub-stages, and the buffer is sorted. Work is Theta(N·logN). out must
// have length len(a)+len(b).
func Merge[T cmp.Ordered](a, b, out []T) {
	buf, pow2 := mergeLayout(a, b, out)
	if buf == nil {
		return // one input empty; layout already copied the other
	}
	clean(buf)
	if !pow2 {
		copy(out, buf[:len(out)])
	}
}

// MergeParallel is Merge with each cleaning sub-stage split across p
// workers.
func MergeParallel[T cmp.Ordered](a, b, out []T, p int) {
	if p < 1 {
		panic("bitonic: worker count must be positive")
	}
	buf, pow2 := mergeLayout(a, b, out)
	if buf == nil {
		return
	}
	if p == 1 {
		clean(buf)
	} else {
		cleanParallel(buf, p)
	}
	if !pow2 {
		copy(out, buf[:len(out)])
	}
}

// mergeLayout prepares the bitonic buffer for merging a and b into out:
// a ascending, then (for non power-of-two totals) padding equal to the
// global maximum, then b descending. With power-of-two totals it lays out
// directly in out and returns (out, true); otherwise it allocates. The
// padding sits between the ascending and descending runs so the whole
// buffer stays bitonic. A nil buffer means one input was empty and out has
// already been filled.
func mergeLayout[T cmp.Ordered](a, b, out []T) ([]T, bool) {
	if len(out) != len(a)+len(b) {
		panic("bitonic: output length mismatch")
	}
	if len(a) == 0 {
		copy(out, b)
		return nil, false
	}
	if len(b) == 0 {
		copy(out, a)
		return nil, false
	}
	n := len(out)
	m := nextPow2(n)
	buf := out
	if m != n {
		buf = make([]T, m)
	}
	copy(buf, a)
	if m != n {
		// Padding = max of the union = max(last of a, last of b), both sorted.
		pad := a[len(a)-1]
		if b[len(b)-1] > pad {
			pad = b[len(b)-1]
		}
		for i := len(a); i < m-len(b); i++ {
			buf[i] = pad
		}
	}
	for i, v := range b {
		buf[m-1-i] = v
	}
	return buf, m == n
}

// runNetwork evaluates the full bitonic sorting network in place;
// len(s) must be a power of two.
func runNetwork[T cmp.Ordered](s []T) {
	m := len(s)
	for k := 2; k <= m; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			for i := 0; i < m; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				if i&k == 0 {
					if s[i] > s[l] {
						s[i], s[l] = s[l], s[i]
					}
				} else {
					if s[i] < s[l] {
						s[i], s[l] = s[l], s[i]
					}
				}
			}
		}
	}
}

func runNetworkParallel[T cmp.Ordered](s []T, p int) {
	m := len(s)
	var wg sync.WaitGroup
	for k := 2; k <= m; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			wg.Add(p)
			for w := 0; w < p; w++ {
				go func(w, k, j int) {
					defer wg.Done()
					for i := w * m / p; i < (w+1)*m/p; i++ {
						l := i ^ j
						if l <= i {
							continue
						}
						if i&k == 0 {
							if s[i] > s[l] {
								s[i], s[l] = s[l], s[i]
							}
						} else {
							if s[i] < s[l] {
								s[i], s[l] = s[l], s[i]
							}
						}
					}
				}(w, k, j)
			}
			wg.Wait()
		}
	}
}

// clean ascending-sorts a bitonic sequence in place; len(s) must be a power
// of two.
func clean[T cmp.Ordered](s []T) {
	m := len(s)
	for j := m >> 1; j > 0; j >>= 1 {
		for i := 0; i < m; i++ {
			l := i ^ j
			if l > i && s[i] > s[l] {
				s[i], s[l] = s[l], s[i]
			}
		}
	}
}

func cleanParallel[T cmp.Ordered](s []T, p int) {
	m := len(s)
	var wg sync.WaitGroup
	for j := m >> 1; j > 0; j >>= 1 {
		wg.Add(p)
		for w := 0; w < p; w++ {
			go func(w, j int) {
				defer wg.Done()
				for i := w * m / p; i < (w+1)*m/p; i++ {
					l := i ^ j
					if l > i && s[i] > s[l] {
						s[i], s[l] = s[l], s[i]
					}
				}
			}(w, j)
		}
		wg.Wait()
	}
}

// padWithMax copies s into a length-m buffer padded with s's maximum.
func padWithMax[T cmp.Ordered](s []T, m int) []T {
	buf := make([]T, m)
	copy(buf, s)
	maxv := s[0]
	for _, v := range s[1:] {
		if v > maxv {
			maxv = v
		}
	}
	for i := len(s); i < m; i++ {
		buf[i] = maxv
	}
	return buf
}

// SortComparators reports the number of compare-exchange operations the
// full sorting network executes on the padded size for n elements — the
// work-count line in experiment E9's table.
func SortComparators(n int) int {
	if n < 2 {
		return 0
	}
	m := nextPow2(n)
	stages := 0
	for k := 2; k <= m; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			stages++
		}
	}
	return stages * m / 2
}

// MergeComparators reports the compare-exchange count of the cleaning
// network for a merge of n total elements.
func MergeComparators(n int) int {
	if n < 2 {
		return 0
	}
	m := nextPow2(n)
	stages := 0
	for j := m >> 1; j > 0; j >>= 1 {
		stages++
	}
	return stages * m / 2
}

func nextPow2(n int) int {
	m := 1
	for m < n {
		m <<= 1
	}
	return m
}
