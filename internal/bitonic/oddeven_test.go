package bitonic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

func TestOddEvenSortPowerOfTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(210))
	for _, n := range []int{2, 4, 16, 128, 1024} {
		s := workload.Unsorted(rng, n)
		want := append([]int32(nil), s...)
		OddEvenSort(s)
		if !verify.Sorted(s) {
			t.Fatalf("n=%d: not sorted", n)
		}
		if !verify.SameMultiset(s, want) {
			t.Fatalf("n=%d: elements lost", n)
		}
	}
}

func TestOddEvenSortArbitraryLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for n := 0; n <= 100; n++ {
		s := workload.Unsorted(rng, n)
		want := append([]int32(nil), s...)
		OddEvenSort(s)
		if !verify.Sorted(s) || !verify.SameMultiset(s, want) {
			t.Fatalf("n=%d: failed: %v", n, s)
		}
	}
}

func TestOddEvenSortExhaustivePermutations(t *testing.T) {
	// All permutations of 0..6: a sorting network must sort every one
	// (0-1 principle would suffice, but permutations catch swaps too).
	var perm func(s []int32, k int)
	var fail []int32
	perm = func(s []int32, k int) {
		if fail != nil {
			return
		}
		if k == len(s) {
			c := append([]int32(nil), s...)
			OddEvenSort(c)
			if !verify.Sorted(c) {
				fail = append([]int32(nil), s...)
			}
			return
		}
		for i := k; i < len(s); i++ {
			s[k], s[i] = s[i], s[k]
			perm(s, k+1)
			s[k], s[i] = s[i], s[k]
		}
	}
	perm([]int32{0, 1, 2, 3, 4, 5, 6}, 0)
	if fail != nil {
		t.Fatalf("network fails on permutation %v", fail)
	}
}

func TestOddEvenZeroOnePrinciple(t *testing.T) {
	// The 0-1 principle: a comparator network sorts all inputs iff it
	// sorts all 0-1 inputs. Check every 0-1 vector for n=8 and n=16.
	for _, n := range []int{8, 16} {
		for bits := 0; bits < 1<<n; bits++ {
			s := make([]int32, n)
			for i := range s {
				s[i] = int32((bits >> i) & 1)
			}
			OddEvenSort(s)
			if !verify.Sorted(s) {
				t.Fatalf("n=%d bits=%b: not sorted: %v", n, bits, s)
			}
		}
	}
}

func TestOddEvenSortParallelAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(212))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(3000)
		p := 1 + rng.Intn(8)
		s1 := workload.Unsorted(rng, n)
		s2 := append([]int32(nil), s1...)
		OddEvenSort(s1)
		OddEvenSortParallel(s2, p)
		if !verify.Equal(s1, s2) {
			t.Fatalf("n=%d p=%d: parallel disagrees", n, p)
		}
	}
}

func TestOddEvenSortParallelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OddEvenSortParallel([]int32{2, 1}, 0)
}

func TestOddEvenComparators(t *testing.T) {
	if got := OddEvenComparators(1); got != 0 {
		t.Errorf("n=1: %d", got)
	}
	// Known value: odd-even mergesort on 8 inputs uses 19 comparators.
	if got := OddEvenComparators(8); got != 19 {
		t.Errorf("n=8: %d comparators, want 19", got)
	}
	// Fewer than bitonic at every size.
	for _, n := range []int{8, 64, 1024} {
		if OddEvenComparators(n) >= SortComparators(n) {
			t.Errorf("n=%d: odd-even (%d) should beat bitonic (%d)",
				n, OddEvenComparators(n), SortComparators(n))
		}
	}
}

func TestOddEvenQuick(t *testing.T) {
	f := func(raw []int32) bool {
		s := append([]int32(nil), raw...)
		OddEvenSort(s)
		return verify.Sorted(s) && verify.SameMultiset(s, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOddEvenMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(213))
	for trial := 0; trial < 150; trial++ {
		kind := workload.Kinds()[trial%len(workload.Kinds())]
		na, nb := rng.Intn(300), rng.Intn(300)
		a, b := workload.Pair(kind, na, nb, int64(trial))
		out := make([]int32, na+nb)
		OddEvenMerge(a, b, out)
		want := verify.ReferenceMerge(a, b)
		if !verify.Equal(out, want) {
			t.Fatalf("kind=%v na=%d nb=%d: mismatch", kind, na, nb)
		}
	}
}

func TestOddEvenMergeEdges(t *testing.T) {
	var empty []int32
	s := []int32{1, 2, 3}
	out := make([]int32, 3)
	OddEvenMerge(s, empty, out)
	if !verify.Equal(out, s) {
		t.Fatalf("empty b: %v", out)
	}
	OddEvenMerge(empty, s, out)
	if !verify.Equal(out, s) {
		t.Fatalf("empty a: %v", out)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		OddEvenMerge(s, s, nil)
	}()
}

func TestOddEvenMergeExtremeSplits(t *testing.T) {
	// len(a) far from len(b): exercises the fallback path.
	rng := rand.New(rand.NewSource(214))
	for trial := 0; trial < 50; trial++ {
		na, nb := 1+rng.Intn(5), 200+rng.Intn(300)
		if trial%2 == 0 {
			na, nb = nb, na
		}
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		out := make([]int32, na+nb)
		OddEvenMerge(a, b, out)
		if !verify.Equal(out, verify.ReferenceMerge(a, b)) {
			t.Fatalf("na=%d nb=%d: mismatch", na, nb)
		}
	}
}
