package bitonic

import (
	"cmp"
	"sync"
)

// Batcher's odd-even mergesort, the second classical sorting network from
// the paper's reference [4]. It performs fewer compare-exchanges than the
// bitonic network (its stages are sparser) and serves as an additional
// member of the §V "problem-size dependent processor count" family in the
// E9 comparisons.
//
// The iterative formulation is the canonical one: for phase sizes
// P = 1, 2, 4, ... and sub-strides K = P, P/2, ..., 1, exchange (x, x+K)
// whenever both indices fall in the same 2P-aligned region, restricted to
// offsets j ≡ K (mod P) — Batcher's condition guaranteeing each sub-stage
// touches every index at most once (so sub-stages parallelize with a
// simple range split).

// OddEvenSort sorts s in place with Batcher's odd-even merge network.
// Arbitrary lengths are handled with the same max-padding scheme as Sort.
func OddEvenSort[T cmp.Ordered](s []T) {
	oddEvenSortWorkers(s, 1)
}

// OddEvenSortParallel evaluates each sub-stage with p workers.
func OddEvenSortParallel[T cmp.Ordered](s []T, p int) {
	if p < 1 {
		panic("bitonic: worker count must be positive")
	}
	oddEvenSortWorkers(s, p)
}

func oddEvenSortWorkers[T cmp.Ordered](s []T, p int) {
	n := len(s)
	if n < 2 {
		return
	}
	if m := nextPow2(n); m != n {
		buf := padWithMax(s, m)
		oddEvenNetwork(buf, p)
		copy(s, buf[:n])
		return
	}
	oddEvenNetwork(s, p)
}

// oddEvenNetwork runs the network on a power-of-two length slice with p
// workers per sub-stage.
func oddEvenNetwork[T cmp.Ordered](s []T, p int) {
	n := len(s)
	var wg sync.WaitGroup
	for phase := 1; phase < n; phase <<= 1 {
		for k := phase; k >= 1; k >>= 1 {
			jStart := k % phase
			// Sub-stage exchanges: (x, x+k) for x = jStart+i stepping
			// blocks of 2k, i in [0, k), same 2*phase region.
			stage := func(blockLo, blockHi int) {
				for j := jStart + blockLo*2*k; j+k < n && j < jStart+blockHi*2*k; j += 2 * k {
					for i := 0; i < k && j+i+k < n; i++ {
						x := j + i
						if x/(2*phase) == (x+k)/(2*phase) {
							if s[x] > s[x+k] {
								s[x], s[x+k] = s[x+k], s[x]
							}
						}
					}
				}
			}
			blocks := (n + 2*k - 1) / (2 * k)
			if p == 1 || blocks == 1 {
				stage(0, blocks)
				continue
			}
			w := p
			if w > blocks {
				w = blocks
			}
			wg.Add(w)
			for t := 0; t < w; t++ {
				go func(lo, hi int) {
					defer wg.Done()
					stage(lo, hi)
				}(t*blocks/w, (t+1)*blocks/w)
			}
			wg.Wait()
		}
	}
}

// OddEvenComparators reports the network's compare-exchange count for the
// padded size, for the E9 work-count table.
func OddEvenComparators(n int) int {
	if n < 2 {
		return 0
	}
	m := nextPow2(n)
	count := 0
	for phase := 1; phase < m; phase <<= 1 {
		for k := phase; k >= 1; k >>= 1 {
			for j := k % phase; j+k < m; j += 2 * k {
				for i := 0; i < k && j+i+k < m; i++ {
					if (j+i)/(2*phase) == (j+i+k)/(2*phase) {
						count++
					}
				}
			}
		}
	}
	return count
}

// OddEvenMerge merges two sorted slices with Batcher's odd-even merge
// network — the final phase of the odd-even mergesort applied to the
// concatenation [a | b]. Work is Theta(N·logN) like the bitonic merger,
// with a smaller constant; it joins the E9 comparison family. out must
// have length len(a)+len(b).
func OddEvenMerge[T cmp.Ordered](a, b, out []T) {
	if len(out) != len(a)+len(b) {
		panic("bitonic: output length mismatch")
	}
	n := len(out)
	if len(a) == 0 {
		copy(out, b)
		return
	}
	if len(b) == 0 {
		copy(out, a)
		return
	}
	m := nextPow2(n)
	buf := out
	if m != n {
		buf = make([]T, m)
	}
	// Layout [a | pad | b]: the network's final phase merges the sorted
	// left half with the sorted right half, so the pad (copies of a's max,
	// all >= a's elements, sorted position inside the left half's tail)
	// must keep each half sorted. Use max(a's last, b's last) appended to
	// a's half... the halves must each be sorted; placing pad after a
	// keeps the left half sorted only if pad >= a's last. Then the merged
	// result's first n slots hold the true merge iff pad also >= b's
	// elements, i.e. pad = overall max.
	half := m / 2
	if len(a) > half || len(b) > half {
		// Uneven split beyond the power-of-two halves: fall back on the
		// full sorting network over the bitonic-style padded buffer, which
		// handles any layout. (Rare: only when len(a) and len(b) differ by
		// more than the padding can absorb.)
		copy(buf, a)
		pad := a[len(a)-1]
		if b[len(b)-1] > pad {
			pad = b[len(b)-1]
		}
		for i := len(a); i < m-len(b); i++ {
			buf[i] = pad
		}
		copy(buf[m-len(b):], b)
		oddEvenNetwork(buf, 1)
		if m != n {
			copy(out, buf[:n])
		}
		return
	}
	pad := a[len(a)-1]
	if b[len(b)-1] > pad {
		pad = b[len(b)-1]
	}
	copy(buf, a)
	for i := len(a); i < half; i++ {
		buf[i] = pad
	}
	copy(buf[half:], b)
	for i := half + len(b); i < m; i++ {
		buf[i] = pad
	}
	// Final phase of the odd-even mergesort: phase = half.
	phase := half
	for k := phase; k >= 1; k >>= 1 {
		for j := k % phase; j+k < m; j += 2 * k {
			for i := 0; i < k && j+i+k < m; i++ {
				x := j + i
				if x/(2*phase) == (x+k)/(2*phase) {
					if buf[x] > buf[x+k] {
						buf[x], buf[x+k] = buf[x+k], buf[x]
					}
				}
			}
		}
	}
	if m != n {
		copy(out, buf[:n])
	}
}
