// Package workload generates the deterministic inputs used across the test
// suites and the experiment harness: uniform random sorted arrays (the
// paper's Figure 5 workload), adversarial interleavings that defeat naive
// partitioning (the Section I counterexample), duplicate-heavy arrays that
// stress tie handling, and structured patterns (runs, staircase, organ
// pipe) that exercise extreme merge-path shapes.
//
// All generators are pure functions of their seed so every experiment is
// reproducible bit-for-bit.
package workload

import (
	"math/rand"
	"sort"
)

// Kind names a generator, usable as a CLI flag value.
type Kind string

const (
	Uniform     Kind = "uniform"       // i.i.d. uniform values, then sorted (Figure 5 workload)
	AllAGreater Kind = "all-a-greater" // every element of A exceeds every element of B (§I counterexample)
	AllBGreater Kind = "all-b-greater" // mirror image of AllAGreater
	Interleave  Kind = "interleave"    // perfectly alternating values: path hugs the diagonal
	Duplicates  Kind = "duplicates"    // few distinct values, long runs of ties
	Runs        Kind = "runs"          // piecewise constant-gap runs: long straight path segments
	Staircase   Kind = "staircase"     // alternating blocks: path is a coarse staircase
	OnePoison   Kind = "one-poison"    // sorted uniform with a single extreme element
)

// Kinds lists every generator, for sweeps that iterate all workloads.
func Kinds() []Kind {
	return []Kind{Uniform, AllAGreater, AllBGreater, Interleave, Duplicates, Runs, Staircase, OnePoison}
}

// Pair produces two sorted int32 slices of lengths na and nb for the given
// workload kind and seed.
func Pair(kind Kind, na, nb int, seed int64) (a, b []int32) {
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case Uniform:
		return SortedUniform32(rng, na), SortedUniform32(rng, nb)
	case AllAGreater:
		b = ascending32(0, nb)
		a = ascending32(int32(nb)+1, na)
		return a, b
	case AllBGreater:
		a = ascending32(0, na)
		b = ascending32(int32(na)+1, nb)
		return a, b
	case Interleave:
		a = make([]int32, na)
		for i := range a {
			a[i] = int32(2 * i)
		}
		b = make([]int32, nb)
		for i := range b {
			b[i] = int32(2*i + 1)
		}
		return a, b
	case Duplicates:
		distinct := int32(4)
		a = sortedMod32(rng, na, distinct)
		b = sortedMod32(rng, nb, distinct)
		return a, b
	case Runs:
		a = runs32(rng, na, 1<<10)
		b = runs32(rng, nb, 1<<10)
		return a, b
	case Staircase:
		a = blocks32(na, 1<<8, 0)
		b = blocks32(nb, 1<<8, 1)
		return a, b
	case OnePoison:
		a = SortedUniform32(rng, na)
		b = SortedUniform32(rng, nb)
		if len(a) > 0 {
			a[len(a)-1] = 1<<31 - 1
		}
		return a, b
	default:
		panic("workload: unknown kind " + string(kind))
	}
}

// SortedUniform32 returns n i.i.d. uniform int32 values in ascending order.
func SortedUniform32(rng *rand.Rand, n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(rng.Uint32() >> 1) // non-negative, full positive range
	}
	sortInt32(s)
	return s
}

// SortedUniform returns n i.i.d. uniform ints in [0, limit) in ascending
// order. limit <= 0 means the full non-negative int63 range.
func SortedUniform(rng *rand.Rand, n int, limit int) []int {
	s := make([]int, n)
	for i := range s {
		if limit > 0 {
			s[i] = rng.Intn(limit)
		} else {
			s[i] = int(rng.Int63())
		}
	}
	sort.Ints(s)
	return s
}

// Unsorted returns n i.i.d. uniform int32 values (not sorted), the input to
// the sort experiments.
func Unsorted(rng *rand.Rand, n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(rng.Uint32() >> 1)
	}
	return s
}

// UnsortedInts is Unsorted for int elements in [0, limit), full range when
// limit <= 0.
func UnsortedInts(rng *rand.Rand, n, limit int) []int {
	s := make([]int, n)
	for i := range s {
		if limit > 0 {
			s[i] = rng.Intn(limit)
		} else {
			s[i] = int(rng.Int63())
		}
	}
	return s
}

func ascending32(from int32, n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = from + int32(i)
	}
	return s
}

func sortedMod32(rng *rand.Rand, n int, mod int32) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = rng.Int31n(mod)
	}
	sortInt32(s)
	return s
}

// runs32 builds a sorted array whose value gaps alternate between tiny and
// huge every runLen elements, producing long straight stretches of merge
// path when merged against an independently generated partner.
func runs32(rng *rand.Rand, n, runLen int) []int32 {
	s := make([]int32, n)
	var v int32
	for i := range s {
		if i%runLen == 0 {
			v += rng.Int31n(1 << 16)
		}
		v += rng.Int31n(4)
		s[i] = v
	}
	return s
}

// blocks32 builds a sorted array from value blocks of width blockLen; the
// phase argument offsets the block values so that two arrays with opposite
// phases merge as a coarse staircase.
func blocks32(n, blockLen, phase int) []int32 {
	s := make([]int32, n)
	for i := range s {
		block := i / blockLen
		s[i] = int32(2*block+phase)*int32(blockLen) + int32(i%blockLen)
	}
	return s
}

func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// SortedZipf returns n sorted values drawn from a discrete Zipf-like
// distribution over [0, domain): heavy duplication of the smallest values,
// a long tail of rare ones. This is the shape of posting-list document
// frequencies and of skewed join keys, used by the set-operation
// experiments.
func SortedZipf(rng *rand.Rand, n, domain int) []int32 {
	if domain < 1 {
		domain = 1
	}
	z := rand.NewZipf(rng, 1.3, 1, uint64(domain-1))
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(z.Uint64())
	}
	sortInt32(s)
	return s
}
