package workload

import (
	"math/rand"
	"testing"
)

func sorted32(s []int32) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

func TestAllKindsProduceSortedPairs(t *testing.T) {
	for _, kind := range Kinds() {
		for _, na := range []int{0, 1, 17, 1000} {
			for _, nb := range []int{0, 1, 23, 1000} {
				a, b := Pair(kind, na, nb, 7)
				if len(a) != na || len(b) != nb {
					t.Fatalf("kind=%v: lengths %d/%d, want %d/%d", kind, len(a), len(b), na, nb)
				}
				if !sorted32(a) || !sorted32(b) {
					t.Fatalf("kind=%v na=%d nb=%d: unsorted output", kind, na, nb)
				}
			}
		}
	}
}

func TestPairDeterministic(t *testing.T) {
	for _, kind := range Kinds() {
		a1, b1 := Pair(kind, 500, 300, 42)
		a2, b2 := Pair(kind, 500, 300, 42)
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatalf("kind=%v: a not deterministic at %d", kind, i)
			}
		}
		for i := range b1 {
			if b1[i] != b2[i] {
				t.Fatalf("kind=%v: b not deterministic at %d", kind, i)
			}
		}
	}
}

func TestPairSeedSensitivity(t *testing.T) {
	a1, _ := Pair(Uniform, 1000, 0, 1)
	a2, _ := Pair(Uniform, 1000, 0, 2)
	same := true
	for i := range a1 {
		if a1[i] != a2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical uniform workloads")
	}
}

func TestAllAGreaterProperty(t *testing.T) {
	a, b := Pair(AllAGreater, 100, 100, 3)
	if a[0] <= b[len(b)-1] {
		t.Fatalf("min(a)=%d should exceed max(b)=%d", a[0], b[len(b)-1])
	}
	a, b = Pair(AllBGreater, 100, 100, 3)
	if b[0] <= a[len(a)-1] {
		t.Fatalf("min(b)=%d should exceed max(a)=%d", b[0], a[len(a)-1])
	}
}

func TestInterleaveProperty(t *testing.T) {
	a, b := Pair(Interleave, 50, 50, 1)
	// Strictly alternating values: a[i]=2i, b[i]=2i+1.
	for i := range a {
		if a[i] != int32(2*i) || b[i] != int32(2*i+1) {
			t.Fatalf("interleave broken at %d: a=%d b=%d", i, a[i], b[i])
		}
	}
}

func TestDuplicatesProperty(t *testing.T) {
	a, _ := Pair(Duplicates, 1000, 0, 5)
	distinct := map[int32]bool{}
	for _, v := range a {
		distinct[v] = true
	}
	if len(distinct) > 4 {
		t.Fatalf("duplicates workload has %d distinct values, want <= 4", len(distinct))
	}
}

func TestOnePoisonProperty(t *testing.T) {
	a, _ := Pair(OnePoison, 100, 100, 5)
	if a[len(a)-1] != 1<<31-1 {
		t.Fatalf("poison element missing: %d", a[len(a)-1])
	}
	if !sorted32(a) {
		t.Fatal("poisoned array must stay sorted")
	}
}

func TestPairUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Pair(Kind("nonsense"), 1, 1, 1)
}

func TestSortedUniformLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := SortedUniform(rng, 1000, 10)
	for _, v := range s {
		if v < 0 || v >= 10 {
			t.Fatalf("value %d outside [0,10)", v)
		}
	}
	full := SortedUniform(rng, 10, 0)
	for i := 1; i < len(full); i++ {
		if full[i] < full[i-1] {
			t.Fatal("full-range variant unsorted")
		}
	}
}

func TestUnsortedGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := Unsorted(rng, 10000)
	if sorted32(s) {
		t.Fatal("unsorted generator produced sorted output (astronomically unlikely)")
	}
	ints := UnsortedInts(rng, 100, 5)
	for _, v := range ints {
		if v < 0 || v >= 5 {
			t.Fatalf("value %d outside [0,5)", v)
		}
	}
	free := UnsortedInts(rng, 10, 0)
	if len(free) != 10 {
		t.Fatal("length wrong")
	}
}

func TestStaircaseShape(t *testing.T) {
	a, b := Pair(Staircase, 1024, 1024, 1)
	// Opposite phases: the first block of a (values < blockLen*1) precedes
	// the first block of b entirely.
	if a[0] >= b[0] {
		t.Fatalf("phase 0 should start below phase 1: %d vs %d", a[0], b[0])
	}
	if a[255] >= b[0] {
		t.Fatalf("block 0 of a should finish before block 0 of b: %d vs %d", a[255], b[0])
	}
	if b[255] >= a[256] {
		t.Fatalf("block 0 of b should finish before block 1 of a: %d vs %d", b[255], a[256])
	}
}

func TestRunsShape(t *testing.T) {
	a, _ := Pair(Runs, 4096, 0, 9)
	if !sorted32(a) {
		t.Fatal("runs workload unsorted")
	}
	// Gaps alternate between small (<4 within a run) and potentially large
	// at run boundaries; verify at least one large jump exists.
	bigJump := false
	for i := 1; i < len(a); i++ {
		if a[i]-a[i-1] > 1000 {
			bigJump = true
			break
		}
	}
	if !bigJump {
		t.Fatal("runs workload lacks run-boundary jumps")
	}
}

func TestKindsComplete(t *testing.T) {
	if len(Kinds()) != 8 {
		t.Fatalf("Kinds() has %d entries", len(Kinds()))
	}
	seen := map[Kind]bool{}
	for _, k := range Kinds() {
		if seen[k] {
			t.Fatalf("duplicate kind %v", k)
		}
		seen[k] = true
	}
}

func TestSortedZipf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := SortedZipf(rng, 10000, 1000)
	if !sorted32(s) {
		t.Fatal("zipf output unsorted")
	}
	for _, v := range s {
		if v < 0 || v >= 1000 {
			t.Fatalf("value %d outside domain", v)
		}
	}
	// Skew: the most common value should dominate.
	counts := map[int32]int{}
	for _, v := range s {
		counts[v]++
	}
	if counts[0] < len(s)/10 {
		t.Fatalf("zipf skew missing: count(0)=%d", counts[0])
	}
	// Degenerate domain.
	one := SortedZipf(rng, 5, 0)
	for _, v := range one {
		if v != 0 {
			t.Fatalf("domain 1 value %d", v)
		}
	}
}
