package resilience

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenFor: time.Second, HalfOpenProbes: 1})
	// Closed: failures below the threshold keep it closed; a success
	// resets the streak.
	for i := 0; i < 2; i++ {
		if err := b.allow(now); err != nil {
			t.Fatalf("closed breaker rejected: %v", err)
		}
		b.record(false, now)
	}
	b.record(true, now) // needs an Allow in real use; state math is what's under test
	b.record(false, now)
	b.record(false, now)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("streak broken by success, state %v, want closed", st)
	}
	b.record(false, now) // third consecutive: trips
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", st)
	}
	// Open: fail fast until the cooldown elapses.
	if err := b.allow(now.Add(500 * time.Millisecond)); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker admitted during cooldown: %v", err)
	}
	// Cooldown over: half-open admits exactly HalfOpenProbes.
	now = now.Add(2 * time.Second)
	if err := b.allow(now); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", st)
	}
	if err := b.allow(now); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("second concurrent probe admitted beyond HalfOpenProbes")
	}
	// Probe fails: re-open, counters track it.
	b.record(false, now)
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", st)
	}
	if b.opens.Load() != 2 || b.reopens.Load() != 1 {
		t.Fatalf("opens=%d reopens=%d, want 2/1", b.opens.Load(), b.reopens.Load())
	}
	// Second probe succeeds: closed again.
	now = now.Add(2 * time.Second)
	if err := b.allow(now); err != nil {
		t.Fatalf("probe after second cooldown rejected: %v", err)
	}
	b.record(true, now)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	if b.closes.Load() != 1 {
		t.Fatalf("closes = %d, want 1", b.closes.Load())
	}
}

func TestBudgetTokenBucket(t *testing.T) {
	now := time.Unix(0, 0)
	g := NewBudget(BudgetConfig{RatePerSec: 2, Burst: 3})
	g.last = now
	for i := 0; i < 3; i++ {
		if !g.allow(now) {
			t.Fatalf("burst token %d denied", i)
		}
	}
	if g.allow(now) {
		t.Fatal("empty bucket allowed a retry")
	}
	if g.denied.Load() != 1 {
		t.Fatalf("denied = %d, want 1", g.denied.Load())
	}
	// Refill: 2 tokens/s, so after 1s two more retries fit.
	now = now.Add(time.Second)
	if !g.allow(now) || !g.allow(now) {
		t.Fatal("refilled tokens denied")
	}
	if g.allow(now) {
		t.Fatal("bucket over-refilled")
	}
	// Refill never exceeds Burst.
	now = now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if !g.allow(now) {
			t.Fatalf("token %d after long idle denied", i)
		}
	}
	if g.allow(now) {
		t.Fatal("burst cap not enforced after long idle")
	}
}

func TestBackoffFullJitterBounds(t *testing.T) {
	cfg := BackoffConfig{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}.withDefaults()
	rng := rand.New(rand.NewSource(1))
	for attempt := 0; attempt < 12; attempt++ {
		window := cfg.Base << uint(attempt)
		if window <= 0 || window > cfg.Max {
			window = cfg.Max
		}
		for i := 0; i < 200; i++ {
			d := cfg.delay(attempt, rng)
			if d < 0 || d > window {
				t.Fatalf("attempt %d: delay %v outside [0, %v]", attempt, d, window)
			}
		}
	}
}

// failNTimes serves failStatus for the first n requests, then 200.
func failNTimes(n int, failStatus int, hdr http.Header) (*httptest.Server, *atomic.Int64) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(n) {
			for k, vs := range hdr {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(failStatus)
			return
		}
		w.Write([]byte("ok"))
	}))
	return ts, &calls
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	ts, calls := failNTimes(2, http.StatusServiceUnavailable, nil)
	defer ts.Close()
	c := New(ts.Client(), Config{
		MaxRetries: 3,
		Backoff:    BackoffConfig{Base: time.Millisecond, Max: 2 * time.Millisecond},
		Budget:     BudgetConfig{RatePerSec: 100, Burst: 10},
	})
	resp, err := c.Post(context.Background(), ts.URL+"/v1/merge", "application/json", []byte("{}"))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	drain(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	s := c.StatsSnapshot()
	if s.Retries != 2 || s.Attempts != 3 || s.Calls != 1 {
		t.Fatalf("stats %+v, want retries=2 attempts=3 calls=1", s)
	}
}

func TestRetryHonorsRetryAfter(t *testing.T) {
	hdr := http.Header{}
	hdr.Set("Retry-After", "1")
	ts, _ := failNTimes(1, http.StatusTooManyRequests, hdr)
	defer ts.Close()
	c := New(ts.Client(), Config{
		MaxRetries: 1,
		Backoff:    BackoffConfig{Base: time.Millisecond, Max: time.Millisecond},
		Budget:     BudgetConfig{RatePerSec: 100, Burst: 10},
	})
	start := time.Now()
	resp, err := c.Post(context.Background(), ts.URL, "application/json", []byte("{}"))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	drain(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 after honoring Retry-After", resp.StatusCode)
	}
	if waited := time.Since(start); waited < time.Second {
		t.Fatalf("retried after %v, want >= the server's Retry-After of 1s", waited)
	}
	if s := c.StatsSnapshot(); s.RetryAfterHonored != 1 {
		t.Fatalf("retry_after_honored = %d, want 1", s.RetryAfterHonored)
	}
}

func TestNonRetryableStatusIsNotRetried(t *testing.T) {
	ts, calls := failNTimes(100, http.StatusBadRequest, nil)
	defer ts.Close()
	c := New(ts.Client(), Config{MaxRetries: 3})
	resp, err := c.Post(context.Background(), ts.URL, "application/json", []byte("{}"))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	drain(resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want the 400 passed through", resp.StatusCode)
	}
	if calls.Load() != 1 {
		t.Fatalf("400 was retried: %d calls", calls.Load())
	}
}

func TestBudgetStopsRetryStorm(t *testing.T) {
	ts, calls := failNTimes(1000, http.StatusServiceUnavailable, nil)
	defer ts.Close()
	c := New(ts.Client(), Config{
		MaxRetries: 10,
		Backoff:    BackoffConfig{Base: time.Millisecond, Max: time.Millisecond},
		Budget:     BudgetConfig{RatePerSec: 0.001, Burst: 2},
	})
	resp, _ := c.Post(context.Background(), ts.URL, "application/json", []byte("{}"))
	drain(resp)
	// 1 initial attempt + 2 budgeted retries; the 8 remaining allowed
	// retries were denied by the empty bucket.
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3 (budget must cap the storm)", calls.Load())
	}
	if s := c.StatsSnapshot(); s.BudgetDenied != 1 {
		t.Fatalf("budget_denied = %d, want 1", s.BudgetDenied)
	}
}

func TestClientBreakerOpensAndRecovers(t *testing.T) {
	ts, calls := failNTimes(3, http.StatusInternalServerError, nil)
	defer ts.Close()
	c := New(ts.Client(), Config{
		MaxRetries: 0, // isolate the breaker from retry effects
		Breaker:    BreakerConfig{FailureThreshold: 3, OpenFor: 50 * time.Millisecond},
	})
	for i := 0; i < 3; i++ {
		resp, err := c.Post(context.Background(), ts.URL+"/v1/merge", "application/json", []byte("{}"))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		drain(resp)
	}
	// Tripped: next call is rejected without touching the network.
	if _, err := c.Post(context.Background(), ts.URL+"/v1/merge", "application/json", []byte("{}")); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("call while open: %v, want ErrBreakerOpen", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("open breaker leaked a request: %d calls", calls.Load())
	}
	if st := c.BreakerStates()["/v1/merge"]; st != "open" {
		t.Fatalf("breaker state %q, want open", st)
	}
	// After the cooldown the half-open probe hits the now-recovered
	// server and closes the circuit.
	time.Sleep(60 * time.Millisecond)
	resp, err := c.Post(context.Background(), ts.URL+"/v1/merge", "application/json", []byte("{}"))
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	drain(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe status %d, want 200", resp.StatusCode)
	}
	if st := c.BreakerStates()["/v1/merge"]; st != "closed" {
		t.Fatalf("breaker state after probe %q, want closed", st)
	}
	s := c.StatsSnapshot()
	if s.BreakerOpens != 1 || s.BreakerCloses != 1 || s.BreakerRejects != 1 {
		t.Fatalf("stats %+v, want opens=1 closes=1 rejects=1", s)
	}
}

func TestBreakersArePerEndpoint(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/bad" {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer ts.Close()
	c := New(ts.Client(), Config{Breaker: BreakerConfig{FailureThreshold: 2, OpenFor: time.Minute}})
	for i := 0; i < 2; i++ {
		resp, _ := c.Post(context.Background(), ts.URL+"/bad", "application/json", nil)
		drain(resp)
	}
	if _, err := c.Post(context.Background(), ts.URL+"/bad", "application/json", nil); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("bad endpoint breaker not open: %v", err)
	}
	resp, err := c.Post(context.Background(), ts.URL+"/good", "application/json", nil)
	if err != nil {
		t.Fatalf("good endpoint collateral damage: %v", err)
	}
	drain(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good endpoint status %d", resp.StatusCode)
	}
}

func TestHedgedRequestWinsOnSlowPrimary(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// First arrival stalls; the hedge (second arrival) answers fast.
		if calls.Add(1) == 1 {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(2 * time.Second):
			}
		}
		w.Write([]byte("ok"))
	}))
	defer ts.Close()
	c := New(ts.Client(), Config{HedgeAfter: 20 * time.Millisecond})
	start := time.Now()
	resp, err := c.Post(context.Background(), ts.URL, "application/json", []byte("{}"))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	drain(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("hedge did not rescue the tail: took %v", took)
	}
	s := c.StatsSnapshot()
	if s.Hedges != 1 || s.HedgeWins != 1 {
		t.Fatalf("stats %+v, want hedges=1 hedge_wins=1", s)
	}
}

func TestHedgedWinnerBodyReadableAfterReturn(t *testing.T) {
	// Regression: the winning racer's context must stay alive until its
	// body is consumed. The handler flushes the first byte with the
	// headers and delivers the bulk after a pause, so nothing beyond that
	// byte is buffered by the transport when Post returns — a premature
	// cancel of the winner's context would surface here as a "context
	// canceled" error mid-read.
	payload := bytes.Repeat([]byte("merge-path"), 100_000) // ~1 MB
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(2 * time.Second):
			}
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
		w.Write(payload[:1])
		w.(http.Flusher).Flush()
		time.Sleep(50 * time.Millisecond)
		w.Write(payload[1:])
	}))
	defer ts.Close()
	c := New(ts.Client(), Config{HedgeAfter: 20 * time.Millisecond})
	resp, err := c.Post(context.Background(), ts.URL, "application/json", []byte("{}"))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading hedged winner's body: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("hedged winner body truncated/corrupted: got %d bytes, want %d", len(got), len(payload))
	}
}

func TestHedgeNotLaunchedWhenPrimaryFast(t *testing.T) {
	ts, _ := failNTimes(0, 0, nil)
	defer ts.Close()
	c := New(ts.Client(), Config{HedgeAfter: time.Second})
	resp, err := c.Post(context.Background(), ts.URL, "application/json", []byte("{}"))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	drain(resp)
	if s := c.StatsSnapshot(); s.Hedges != 0 {
		t.Fatalf("hedges = %d for a fast primary, want 0", s.Hedges)
	}
}

func TestContextCancellationStopsRetries(t *testing.T) {
	ts, calls := failNTimes(1000, http.StatusServiceUnavailable, nil)
	defer ts.Close()
	c := New(ts.Client(), Config{
		MaxRetries: 1000,
		Backoff:    BackoffConfig{Base: 10 * time.Millisecond, Max: 10 * time.Millisecond},
		Budget:     BudgetConfig{RatePerSec: 1e6, Burst: 1e6},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	resp, _ := c.Post(ctx, ts.URL, "application/json", []byte("{}"))
	drain(resp)
	if n := calls.Load(); n > 20 {
		t.Fatalf("canceled context did not stop the retry loop: %d calls", n)
	}
}
