// Package resilience is the client half of the overload story: a
// retrying HTTP client built to survive a daemon that sheds, browns
// out, or injects faults (internal/overload, internal/fault) without
// making the overload worse.
//
// Four mechanisms compose, each individually boring and jointly the
// standard production recipe:
//
//   - Exponential backoff with full jitter between retries, honoring a
//     server-supplied Retry-After header (the daemon computes one from
//     its measured drain rate) over the local schedule.
//   - A token-bucket retry *budget*: retries spend tokens that refill at
//     a fixed rate, so a broken server sees the offered load approach
//     1× instead of multiplying into a retry storm.
//   - Optional hedged requests: if the first attempt has not answered
//     within HedgeAfter, a second identical request races it and the
//     first response wins — a tail-latency tool, paid for with
//     duplicate work, so it is off by default.
//   - A per-endpoint circuit breaker (closed → open → half-open):
//     consecutive failures open the circuit, requests fail fast without
//     touching the network while it is open, and after a cooldown a
//     limited number of probes decide between closing and re-opening.
//
// The package is dependency-free and transport-agnostic above
// *http.Client; cmd/mergeload wires it to the daemon.
package resilience

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Errors returned without touching the network. Both are terminal for
// the call that receives them; the caller decides whether to try again
// later (the breaker's cooldown is doing exactly that on its behalf).
var (
	// ErrBreakerOpen means the endpoint's circuit breaker is open: the
	// recent failure streak crossed the threshold and the cooldown has
	// not elapsed (or the half-open probe quota is spoken for).
	ErrBreakerOpen = errors.New("resilience: circuit breaker open")
	// ErrBudgetExhausted means a retry was wanted but the token-bucket
	// retry budget was empty; the last attempt's outcome is returned
	// with it where available.
	ErrBudgetExhausted = errors.New("resilience: retry budget exhausted")
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

// The breaker states, in the classic closed/open/half-open cycle.
const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests fail fast with ErrBreakerOpen until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: a bounded number of probe requests are admitted;
	// a success closes the breaker, a failure re-opens it.
	BreakerHalfOpen
)

// String names the breaker state for stats output.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes one circuit breaker. Zero values select the
// documented defaults.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// breaker. Default 5.
	FailureThreshold int
	// OpenFor is the cooldown before an open breaker admits half-open
	// probes. Default 1s.
	OpenFor time.Duration
	// HalfOpenProbes bounds concurrent probe requests while half-open.
	// Default 1.
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	return c
}

// Breaker is one endpoint's circuit breaker. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	inFlight int       // half-open probes currently outstanding

	opens   atomic.Uint64 // closed/half-open → open transitions
	reopens atomic.Uint64 // half-open probe failures (subset of opens)
	closes  atomic.Uint64 // half-open → closed recoveries
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State reports the breaker's current state (open flips to half-open
// lazily, on the Allow call that finds the cooldown elapsed).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow asks to send one request. nil admits it (every admitted request
// MUST be answered with exactly one Record call); ErrBreakerOpen
// rejects it without a network round trip.
func (b *Breaker) Allow() error { return b.allow(time.Now()) }

func (b *Breaker) allow(now time.Time) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cfg.OpenFor {
			return ErrBreakerOpen
		}
		b.state = BreakerHalfOpen
		b.inFlight = 0
		fallthrough
	case BreakerHalfOpen:
		if b.inFlight >= b.cfg.HalfOpenProbes {
			return ErrBreakerOpen
		}
		b.inFlight++
		return nil
	default:
		return nil
	}
}

// Record reports an admitted request's outcome (success = 2xx/4xx-class
// response; failure = 5xx, 429, timeout or transport error).
func (b *Breaker) Record(success bool) { b.record(success, time.Now()) }

func (b *Breaker) record(success bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		if b.inFlight > 0 {
			b.inFlight--
		}
		if success {
			b.state = BreakerClosed
			b.failures = 0
			b.closes.Add(1)
			return
		}
		b.state = BreakerOpen
		b.openedAt = now
		b.opens.Add(1)
		b.reopens.Add(1)
	case BreakerClosed:
		if success {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.state = BreakerOpen
			b.openedAt = now
			b.opens.Add(1)
		}
	}
	// BreakerOpen: a straggler from before the trip; nothing to count.
}

// BudgetConfig tunes the retry token bucket. Zero values select the
// documented defaults.
type BudgetConfig struct {
	// RatePerSec is the sustained retries-per-second refill rate.
	// Default 10.
	RatePerSec float64
	// Burst is the bucket capacity (and initial fill). Default 2×Rate,
	// minimum 1.
	Burst float64
}

func (c BudgetConfig) withDefaults() BudgetConfig {
	if c.RatePerSec < 0 {
		c.RatePerSec = 0
	}
	if c.RatePerSec == 0 && c.Burst == 0 {
		c.RatePerSec = 10
	}
	if c.Burst <= 0 {
		c.Burst = 2 * c.RatePerSec
	}
	if c.Burst < 1 {
		c.Burst = 1
	}
	return c
}

// Budget is a token-bucket retry budget shared by all of a client's
// endpoints: every retry spends one token; an empty bucket means the
// original error stands. This caps the load amplification a retrying
// fleet can inflict on an already-struggling server.
type Budget struct {
	cfg    BudgetConfig
	mu     sync.Mutex
	tokens float64
	last   time.Time
	denied atomic.Uint64
}

// NewBudget builds a full bucket.
func NewBudget(cfg BudgetConfig) *Budget {
	cfg = cfg.withDefaults()
	return &Budget{cfg: cfg, tokens: cfg.Burst, last: time.Now()}
}

// Allow spends one retry token if available.
func (g *Budget) Allow() bool { return g.allow(time.Now()) }

func (g *Budget) allow(now time.Time) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if dt := now.Sub(g.last).Seconds(); dt > 0 {
		g.tokens += dt * g.cfg.RatePerSec
		if g.tokens > g.cfg.Burst {
			g.tokens = g.cfg.Burst
		}
	}
	g.last = now
	if g.tokens >= 1 {
		g.tokens--
		return true
	}
	g.denied.Add(1)
	return false
}

// BackoffConfig tunes the retry delay schedule. Zero values select the
// documented defaults.
type BackoffConfig struct {
	// Base is the cap of the first retry's jitter window; the window
	// doubles per attempt. Default 50ms.
	Base time.Duration
	// Max caps the jitter window. Default 2s.
	Max time.Duration
}

func (c BackoffConfig) withDefaults() BackoffConfig {
	if c.Base <= 0 {
		c.Base = 50 * time.Millisecond
	}
	if c.Max <= 0 {
		c.Max = 2 * time.Second
	}
	if c.Max < c.Base {
		c.Max = c.Base
	}
	return c
}

// delay returns the full-jitter backoff before retry #attempt (attempt
// counts from 0): uniform in [0, min(Max, Base·2^attempt)). Full jitter
// decorrelates a fleet of clients that all failed at the same instant.
func (c BackoffConfig) delay(attempt int, rng *rand.Rand) time.Duration {
	window := c.Base << uint(attempt)
	if window <= 0 || window > c.Max { // <<-overflow or past the cap
		window = c.Max
	}
	return time.Duration(rng.Int63n(int64(window) + 1))
}

// Config assembles a Client. Zero values select the documented
// defaults (note MaxRetries: zero really means no retries).
type Config struct {
	// MaxRetries is how many times one request may be re-sent after its
	// first attempt. 0 disables retries (backoff/budget moot).
	MaxRetries int
	// Backoff is the retry delay schedule.
	Backoff BackoffConfig
	// Budget is the shared token-bucket retry budget.
	Budget BudgetConfig
	// HedgeAfter, when positive, launches a duplicate request if the
	// first has not answered within this duration; first response wins.
	HedgeAfter time.Duration
	// Breaker tunes the per-endpoint circuit breakers.
	Breaker BreakerConfig
	// Seed feeds the jitter RNG so load runs are reproducible.
	Seed int64
}

// Stats are the client's cumulative counters, read with StatsSnapshot.
type Stats struct {
	// Calls is top-level requests issued through the client.
	Calls uint64 `json:"calls"`
	// Attempts counts actual HTTP sends (retries and hedges included).
	Attempts uint64 `json:"attempts"`
	// Retries is re-sends after a retryable failure.
	Retries uint64 `json:"retries"`
	// RetryAfterHonored counts retries whose delay came from a server
	// Retry-After header rather than the jittered backoff.
	RetryAfterHonored uint64 `json:"retry_after_honored"`
	// Hedges is duplicate requests launched after HedgeAfter elapsed.
	Hedges uint64 `json:"hedges"`
	// HedgeWins counts hedges whose response arrived before the
	// primary's.
	HedgeWins uint64 `json:"hedge_wins"`
	// BreakerRejects is calls refused instantly by an open breaker.
	BreakerRejects uint64 `json:"breaker_rejects"`
	// BreakerOpens aggregates closed/half-open -> open transitions across
	// all endpoint breakers.
	BreakerOpens uint64 `json:"breaker_opens"`
	// BreakerCloses aggregates half-open -> closed recoveries across all
	// endpoint breakers.
	BreakerCloses uint64 `json:"breaker_closes"`
	// BudgetDenied is retries skipped because the token bucket was
	// empty.
	BudgetDenied uint64 `json:"budget_denied"`
}

// Client is a resilient HTTP client: *http.Client plus retries with
// jittered backoff and Retry-After, a retry budget, optional hedging,
// and per-endpoint circuit breakers. Safe for concurrent use.
type Client struct {
	http   *http.Client
	cfg    Config
	budget *Budget

	mu       sync.Mutex
	rng      *rand.Rand
	breakers map[string]*Breaker

	calls, attempts, retries, raHonored atomic.Uint64
	hedges, hedgeWins                   atomic.Uint64
	breakerRejects, budgetDenied        atomic.Uint64
}

// New wraps hc (nil = a default client with a 10s timeout) in the
// resilience stack.
func New(hc *http.Client, cfg Config) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	cfg.Backoff = cfg.Backoff.withDefaults()
	cfg.Breaker = cfg.Breaker.withDefaults()
	return &Client{
		http:     hc,
		cfg:      cfg,
		budget:   NewBudget(cfg.Budget),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		breakers: make(map[string]*Breaker),
	}
}

// breakerFor returns (creating on first use) the breaker keyed by the
// URL path — one circuit per endpoint, so a broken /v1/sort cannot
// blacken /v1/merge.
func (c *Client) breakerFor(rawURL string) *Breaker {
	key := rawURL
	if u, err := url.Parse(rawURL); err == nil {
		key = u.Path
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.breakers[key]
	if !ok {
		b = NewBreaker(c.cfg.Breaker)
		c.breakers[key] = b
	}
	return b
}

// jitter draws one backoff delay under the client's seeded RNG.
func (c *Client) jitter(attempt int) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.Backoff.delay(attempt, c.rng)
}

// StatsSnapshot returns the cumulative counters, folding in per-breaker
// transition counts.
func (c *Client) StatsSnapshot() Stats {
	s := Stats{
		Calls:             c.calls.Load(),
		Attempts:          c.attempts.Load(),
		Retries:           c.retries.Load(),
		RetryAfterHonored: c.raHonored.Load(),
		Hedges:            c.hedges.Load(),
		HedgeWins:         c.hedgeWins.Load(),
		BreakerRejects:    c.breakerRejects.Load(),
		BudgetDenied:      c.budgetDenied.Load(),
	}
	c.mu.Lock()
	for _, b := range c.breakers {
		s.BreakerOpens += b.opens.Load()
		s.BreakerCloses += b.closes.Load()
	}
	c.mu.Unlock()
	return s
}

// BreakerStates reports each endpoint breaker's current state, keyed by
// URL path.
func (c *Client) BreakerStates() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.breakers))
	for k, b := range c.breakers {
		out[k] = b.State().String()
	}
	return out
}

// retryable classifies a response status: 429 and the retryable 5xx
// family mean "try again later"; everything else (2xx, other 4xx)
// stands.
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryAfter parses a delay-seconds Retry-After header; 0 when absent
// or unparseable (HTTP-date form is not worth supporting here — the
// daemon always sends seconds).
func retryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	h := resp.Header.Get("Retry-After")
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Post sends body to url with retries, hedging and the breaker, under
// ctx. On success the caller owns resp.Body. A non-nil response may
// accompany a nil error even for non-2xx statuses — like http.Client,
// status handling is the caller's business; the stack only *retries*
// the retryable ones until attempts or budget run out, then hands the
// last response over.
func (c *Client) Post(ctx context.Context, url, contentType string, body []byte) (*http.Response, error) {
	return c.PostHeaders(ctx, url, contentType, nil, body)
}

// PostHeaders is Post with extra request headers applied to every
// attempt (retries and hedges included) — how mergerouter forwards
// X-Request-Id and X-Timeout-Ms to its backends without giving up the
// resilience stack. hdr may be nil; Content-Type is still governed by
// contentType.
func (c *Client) PostHeaders(ctx context.Context, url, contentType string, hdr http.Header, body []byte) (*http.Response, error) {
	c.calls.Add(1)
	br := c.breakerFor(url)
	var lastResp *http.Response
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := br.Allow(); err != nil {
			c.breakerRejects.Add(1)
			if lastResp != nil || lastErr != nil {
				return lastResp, lastErr // mid-call trip: surface the real outcome
			}
			return nil, err
		}
		if lastResp != nil {
			drain(lastResp) // superseded by the attempt we are about to make
			lastResp = nil
		}
		resp, err := c.attemptOnce(ctx, url, contentType, hdr, body)
		success := err == nil && !retryable(resp.StatusCode)
		br.Record(success)
		if success {
			return resp, nil
		}
		lastResp, lastErr = resp, err
		if ctx.Err() != nil || attempt >= c.cfg.MaxRetries {
			return lastResp, lastErr
		}
		if !c.budget.Allow() {
			c.budgetDenied.Add(1)
			if lastErr == nil {
				return lastResp, nil
			}
			// Never pair a response with an error: callers follow the
			// usual "err != nil ⇒ ignore resp" convention and would leak
			// the body.
			drain(lastResp)
			return nil, fmt.Errorf("%w (last error: %v)", ErrBudgetExhausted, lastErr)
		}
		delay := c.jitter(attempt)
		if ra := retryAfter(resp); ra > 0 {
			delay = ra
			c.raHonored.Add(1)
		}
		c.retries.Add(1)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return lastResp, lastErr
		}
	}
}

// drain discards and closes a response body so the connection can be
// reused.
func drain(resp *http.Response) {
	if resp != nil && resp.Body != nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// attemptResult is one racer's outcome in a (possibly hedged) attempt.
type attemptResult struct {
	resp   *http.Response
	err    error
	cancel context.CancelFunc // releases this racer's own context
	hedged bool
}

// cancelOnClose releases the winning racer's context once the caller
// closes the response body. The winner's context must outlive
// attemptOnce — canceling it earlier would abort the body read for any
// payload the transport has not already buffered.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelOnClose) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// attemptOnce performs one logical attempt: the primary request, plus —
// when hedging is on and the primary is slow — one duplicate racing it.
// The first *response* wins (whatever its status: retry policy is the
// outer loop's job); a racer's transport error only decides the attempt
// once no other racer is left. Each racer runs under its own context so
// the loser can be canceled and drained without touching the winner,
// whose context is released only when its body is closed.
func (c *Client) attemptOnce(ctx context.Context, url, contentType string, hdr http.Header, body []byte) (*http.Response, error) {
	if c.cfg.HedgeAfter <= 0 {
		c.attempts.Add(1)
		return c.send(ctx, url, contentType, hdr, body)
	}
	results := make(chan attemptResult, 2) // buffered: losers never block
	fire := func(rctx context.Context, cancel context.CancelFunc, hedged bool) {
		c.attempts.Add(1)
		resp, err := c.send(rctx, url, contentType, hdr, body)
		results <- attemptResult{resp: resp, err: err, cancel: cancel, hedged: hedged}
	}
	primCtx, primCancel := context.WithCancel(ctx)
	var hedgeCancel context.CancelFunc
	go fire(primCtx, primCancel, false)
	hedgeTimer := time.NewTimer(c.cfg.HedgeAfter)
	defer hedgeTimer.Stop()
	inFlight, hedged := 1, false
	var firstErr error
	for {
		select {
		case <-hedgeTimer.C:
			if !hedged {
				hedged = true
				inFlight++
				c.hedges.Add(1)
				var hedgeCtx context.Context
				hedgeCtx, hedgeCancel = context.WithCancel(ctx)
				go fire(hedgeCtx, hedgeCancel, true)
			}
		case r := <-results:
			inFlight--
			if r.err != nil {
				r.cancel()
				if firstErr == nil {
					firstErr = r.err
				}
				if inFlight > 0 {
					continue // the surviving racer decides the attempt
				}
				return nil, firstErr
			}
			if inFlight > 0 {
				// Abort the loser and reap it in the background so its
				// connection is freed; its own canceled context unblocks
				// it promptly without disturbing the winner.
				loserCancel := hedgeCancel
				if r.hedged {
					loserCancel = primCancel
				}
				loserCancel()
				go func() {
					l := <-results
					drain(l.resp)
					l.cancel()
				}()
			}
			if r.hedged {
				c.hedgeWins.Add(1)
			}
			r.resp.Body = &cancelOnClose{ReadCloser: r.resp.Body, cancel: r.cancel}
			return r.resp, nil
		}
	}
}

// send performs one HTTP POST with a replayable body.
func (c *Client) send(ctx context.Context, url, contentType string, hdr http.Header, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	req.Header.Set("Content-Type", contentType)
	return c.http.Do(req)
}
