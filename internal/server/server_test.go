package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mergepath/internal/verify"
)

// post sends a JSON body and decodes the JSON reply into out (which may
// be nil when only the status matters).
func post(t *testing.T, ts *httptest.Server, path string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decoding response: %v", path, err)
		}
	}
	return resp.StatusCode
}

func sortedInt64(rng *rand.Rand, n int) []int64 {
	s := make([]int64, n)
	for i := range s {
		s[i] = rng.Int63n(1 << 20)
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s
}

// newRawServer wraps s in an httptest transport without draining it on
// cleanup — for tests that manage the drain themselves.
func newRawServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

func TestMergeCoalescedCorrect(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		a := sortedInt64(rng, rng.Intn(400))
		b := sortedInt64(rng, rng.Intn(400))
		var got MergeResponse
		if code := post(t, ts, "/v1/merge", MergeRequest{A: a, B: b}, &got); code != http.StatusOK {
			t.Fatalf("trial %d: status %d", trial, code)
		}
		if !verify.Equal(got.Result, verify.ReferenceMerge(a, b)) {
			t.Fatalf("trial %d: wrong merge", trial)
		}
	}
}

func TestMergeLargePartitionedPath(t *testing.T) {
	// CoalesceLimit 64 forces anything bigger through the
	// whole-pool ParallelMerge path.
	_, ts := newTestServer(t, Config{CoalesceLimit: 64, Workers: 4})
	rng := rand.New(rand.NewSource(2))
	a := sortedInt64(rng, 5000)
	b := sortedInt64(rng, 7000)
	var got MergeResponse
	if code := post(t, ts, "/v1/merge", MergeRequest{A: a, B: b}, &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !verify.Equal(got.Result, verify.ReferenceMerge(a, b)) {
		t.Fatal("wrong merge on large path")
	}
}

func TestMergeStableOrdering(t *testing.T) {
	// Heavy ties: the service must return the reference *stable* merge,
	// bit-identical, not merely some sorted permutation.
	_, ts := newTestServer(t, Config{})
	a := []int64{1, 1, 2, 2, 2, 3, 9, 9}
	b := []int64{1, 2, 2, 3, 3, 9}
	var got MergeResponse
	if code := post(t, ts, "/v1/merge", MergeRequest{A: a, B: b}, &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !verify.Equal(got.Result, verify.ReferenceMerge(a, b)) {
		t.Fatalf("not the stable reference merge: %v", got.Result)
	}
}

func TestSortEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(3))
	data := make([]int64, 3000)
	for i := range data {
		data[i] = rng.Int63n(1000)
	}
	orig := append([]int64(nil), data...)
	var got SortResponse
	if code := post(t, ts, "/v1/sort", SortRequest{Data: data}, &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !verify.Sorted(got.Result) || !verify.SameMultiset(got.Result, orig) {
		t.Fatal("sort endpoint returned a non-sort")
	}
}

func TestMergeKEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(4))
	lists := make([][]int64, 5)
	var all []int64
	for i := range lists {
		lists[i] = sortedInt64(rng, 100+rng.Intn(200))
		all = append(all, lists[i]...)
	}
	var got MergeKResponse
	if code := post(t, ts, "/v1/mergek", MergeKRequest{Lists: lists}, &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !verify.Sorted(got.Result) || !verify.SameMultiset(got.Result, all) {
		t.Fatal("mergek endpoint wrong")
	}
}

func TestSetOpsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a := []int64{1, 2, 2, 3, 5}
	b := []int64{2, 3, 3, 6}
	cases := []struct {
		op   string
		want []int64
	}{
		{"union", []int64{1, 2, 2, 3, 3, 5, 6}},
		{"intersect", []int64{2, 3}},
		{"diff", []int64{1, 2, 5}},
	}
	for _, c := range cases {
		var got SetOpsResponse
		if code := post(t, ts, "/v1/setops", SetOpsRequest{Op: c.op, A: a, B: b}, &got); code != http.StatusOK {
			t.Fatalf("%s: status %d", c.op, code)
		}
		if !verify.Equal(got.Result, c.want) {
			t.Errorf("%s = %v, want %v", c.op, got.Result, c.want)
		}
	}
}

func TestSelectEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a := []int64{1, 3, 5, 7, 9}
	b := []int64{2, 4, 6, 8}
	merged := verify.ReferenceMerge(a, b)
	for k := 0; k <= len(merged); k++ {
		var got SelectResponse
		if code := post(t, ts, "/v1/select", SelectRequest{A: a, B: b, K: k}, &got); code != http.StatusOK {
			t.Fatalf("k=%d: status %d", k, code)
		}
		if got.ARank+got.BRank != k {
			t.Fatalf("k=%d: ranks %d+%d", k, got.ARank, got.BRank)
		}
		if k >= 1 {
			if got.Kth == nil || *got.Kth != merged[k-1] {
				t.Fatalf("k=%d: kth = %v, want %d", k, got.Kth, merged[k-1])
			}
		} else if got.Kth != nil {
			t.Fatalf("k=0 must omit kth, got %d", *got.Kth)
		}
	}
}

func TestMalformedInput400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Broken JSON.
	resp, err := ts.Client().Post(ts.URL+"/v1/merge", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("broken JSON: status %d, want 400", resp.StatusCode)
	}
	// Unsorted inputs.
	if code := post(t, ts, "/v1/merge", MergeRequest{A: []int64{3, 1}, B: nil}, nil); code != http.StatusBadRequest {
		t.Errorf("unsorted a: status %d, want 400", code)
	}
	if code := post(t, ts, "/v1/mergek", MergeKRequest{Lists: [][]int64{{1, 2}, {5, 4}}}, nil); code != http.StatusBadRequest {
		t.Errorf("unsorted list: status %d, want 400", code)
	}
	if code := post(t, ts, "/v1/setops", SetOpsRequest{Op: "xor", A: []int64{1}, B: []int64{2}}, nil); code != http.StatusBadRequest {
		t.Errorf("bad op: status %d, want 400", code)
	}
	if code := post(t, ts, "/v1/select", SelectRequest{A: []int64{1}, B: []int64{2}, K: 99}, nil); code != http.StatusBadRequest {
		t.Errorf("k out of range: status %d, want 400", code)
	}
}

func TestOversizedInput413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 128})
	rng := rand.New(rand.NewSource(5))
	big := sortedInt64(rng, 1000)
	if code := post(t, ts, "/v1/merge", MergeRequest{A: big, B: big}, nil); code != http.StatusRequestEntityTooLarge {
		t.Errorf("status %d, want 413", code)
	}
}

// blockPool submits a job that occupies the dispatcher until release is
// closed, making queue states deterministic for shedding/drain tests.
func blockPool(t *testing.T, s *Server) (release chan struct{}, blocked chan struct{}) {
	t.Helper()
	release = make(chan struct{})
	blocked = make(chan struct{})
	j := &job{done: make(chan error, 1), run: func(context.Context, int) error {
		close(blocked)
		<-release
		return nil
	}}
	if err := s.pool.submit(j); err != nil {
		t.Fatalf("blocker rejected: %v", err)
	}
	<-blocked // dispatcher is now inside the blocker round
	return release, blocked
}

func TestQueueFull503(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 2, Workers: 2})
	release, _ := blockPool(t, s)
	defer close(release)
	// Fill the queue to capacity behind the blocker.
	for i := 0; i < 2; i++ {
		if err := s.pool.submit(&job{done: make(chan error, 1), run: func(context.Context, int) error { return nil }}); err != nil {
			t.Fatalf("filler %d rejected: %v", i, err)
		}
	}
	// The next request must be shed immediately, not queued or spawned.
	code := post(t, ts, "/v1/merge", MergeRequest{A: []int64{1}, B: []int64{2}}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", code)
	}
	snap := s.Metrics().snapshot(s.pool)
	if snap.Queue.Shed == 0 {
		t.Error("shed counter not incremented")
	}
	if snap.Queue.Capacity != 2 {
		t.Errorf("capacity %d, want 2", snap.Queue.Capacity)
	}
}

func TestDeadlineWhileQueued504(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 8})
	release, _ := blockPool(t, s)
	defer close(release)
	req, err := http.NewRequest("POST", ts.URL+"/v1/merge",
		strings.NewReader(`{"a":[1],"b":[2]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Timeout-Ms", "50")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
}

func TestCoalescingBatchesConcurrentRequests(t *testing.T) {
	// A long batch window plus a paused dispatcher lets several small
	// merges pile up; on release they must execute as coalesced rounds,
	// observable via batch_rounds/batch_pairs metrics.
	s, ts := newTestServer(t, Config{BatchWindow: 2 * time.Millisecond, Workers: 4, QueueDepth: 64})
	release, _ := blockPool(t, s)
	rng := rand.New(rand.NewSource(6))
	const n = 16
	type result struct {
		code int
		got  MergeResponse
		a, b []int64
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		a := sortedInt64(rng, 50+rng.Intn(100))
		b := sortedInt64(rng, 50+rng.Intn(100))
		go func(a, b []int64) {
			var got MergeResponse
			code := post(t, ts, "/v1/merge", MergeRequest{A: a, B: b}, &got)
			results <- result{code, got, a, b}
		}(a, b)
	}
	time.Sleep(20 * time.Millisecond) // let requests reach the queue
	close(release)
	for i := 0; i < n; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, r.code)
		}
		if !verify.Equal(r.got.Result, verify.ReferenceMerge(r.a, r.b)) {
			t.Fatalf("request %d: wrong merge", i)
		}
	}
	snap := s.Metrics().snapshot(s.pool)
	if snap.Pool.BatchRounds == 0 || snap.Pool.BatchPairs == 0 {
		t.Fatalf("no coalesced rounds recorded: %+v", snap.Pool)
	}
	if snap.Pool.PairsPerRound <= 1 {
		t.Errorf("expected coalescing >1 pair per round, got %.2f (rounds=%d pairs=%d)",
			snap.Pool.PairsPerRound, snap.Pool.BatchRounds, snap.Pool.BatchPairs)
	}
	if len(snap.Pool.LastRoundLoad) == 0 {
		t.Error("last round loads missing")
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	// Generate a little traffic, then check the snapshot document.
	for i := 0; i < 5; i++ {
		post(t, ts, "/v1/merge", MergeRequest{A: []int64{1, 3}, B: []int64{2}}, nil)
	}
	post(t, ts, "/v1/merge", MergeRequest{A: []int64{9, 1}, B: nil}, nil) // 400
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	em := snap.Endpoints["merge"]
	if em.Count != 6 || em.Err4xx != 1 {
		t.Errorf("merge endpoint: count=%d err4xx=%d, want 6/1", em.Count, em.Err4xx)
	}
	if em.Latency.Count != 5 || em.Latency.P95MS < em.Latency.P50MS {
		t.Errorf("latency histogram off: %+v", em.Latency)
	}
	if snap.Pool.Workers != s.Workers() || snap.Queue.Capacity == 0 {
		t.Errorf("pool/queue snapshot off: %+v %+v", snap.Pool, snap.Queue)
	}
}

func TestEndpointLabels(t *testing.T) {
	// Every /v1 route must have a metrics slot — a new endpoint without
	// one silently drops its observations.
	m := NewMetrics()
	for _, name := range endpointNames {
		if _, ok := m.endpoints[name]; !ok {
			t.Errorf("endpoint %q missing from metrics registry", name)
		}
	}
	m.observe("nonexistent", 200, time.Millisecond) // must not panic
}

func BenchmarkServeMergeSmall(b *testing.B) {
	s := New(Config{})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	}()
	rng := rand.New(rand.NewSource(7))
	a := sortedInt64(rng, 256)
	bb := sortedInt64(rng, 256)
	body, _ := json.Marshal(MergeRequest{A: a, B: bb})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest("POST", "/v1/merge", bytes.NewReader(body))
			w := httptest.NewRecorder()
			s.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d", w.Code)
			}
		}
	})
}

func ExampleServer() {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()
	body := strings.NewReader(`{"a":[1,3,5],"b":[2,4,6]}`)
	resp, _ := http.Post(ts.URL+"/v1/merge", "application/json", body)
	var out MergeResponse
	_ = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	fmt.Println(out.Result)
	// Output: [1 2 3 4 5 6]
}
