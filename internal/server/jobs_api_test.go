package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"testing"
	"time"

	"mergepath/internal/fault"
	"mergepath/internal/jobs"
)

func encodeRecords(vals []int64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
	}
	return buf
}

func postDataset(t *testing.T, base string, payload []byte) jobs.Dataset {
	t.Helper()
	resp, err := http.Post(base+"/v1/datasets", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("upload status %d: %s", resp.StatusCode, body)
	}
	var ds jobs.Dataset
	if err := json.NewDecoder(resp.Body).Decode(&ds); err != nil {
		t.Fatal(err)
	}
	return ds
}

func submitJob(t *testing.T, base, dsID string) (jobs.View, int) {
	t.Helper()
	body, _ := json.Marshal(JobRequest{Type: "sortfile", Dataset: dsID})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobs.View
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return v, resp.StatusCode
}

func getJob(t *testing.T, base, id string) (jobs.View, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobs.View
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return v, resp.StatusCode
}

// TestJobsAPIEndToEnd is the acceptance test for the out-of-core path: a
// dataset 10x the job memory budget goes through the full HTTP lifecycle
// — streamed upload, 202 submission, polling with monotonically
// non-decreasing progress, result streaming — and the sorted bytes are
// identical to an in-RAM sort while the engine's peak buffer allocation
// stayed within the budget.
func TestJobsAPIEndToEnd(t *testing.T) {
	const budget = 4096
	const n = 10 * budget
	s := New(Config{Workers: 4, Jobs: jobs.Config{MemoryRecords: budget, Workers: 2}})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(t.Context())

	rng := rand.New(rand.NewSource(77))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63() - rng.Int63()
	}
	ds := postDataset(t, ts.URL, encodeRecords(vals))
	if ds.Records != n {
		t.Fatalf("dataset records %d, want %d", ds.Records, n)
	}

	v, status := submitJob(t, ts.URL, ds.ID)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	if v.State != jobs.Pending && v.State != jobs.Running {
		t.Fatalf("fresh job state %s", v.State)
	}

	// Poll until terminal; progress must never go backwards.
	last := -1.0
	deadline := time.Now().Add(30 * time.Second)
	for {
		got, st := getJob(t, ts.URL, v.ID)
		if st != http.StatusOK {
			t.Fatalf("poll status %d", st)
		}
		if got.Progress < last {
			t.Fatalf("progress regressed: %g -> %g", last, got.Progress)
		}
		last = got.Progress
		v = got
		if got.State != jobs.Pending && got.State != jobs.Running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s at %g", got.State, got.Progress)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if v.State != jobs.Done {
		t.Fatalf("job ended %s: %s", v.State, v.Error)
	}
	if v.Progress != 1 {
		t.Fatalf("done progress %g", v.Progress)
	}
	if v.Stats == nil {
		t.Fatal("done job missing sort stats")
	}
	if v.Stats.PeakBufferRecords > budget {
		t.Fatalf("peak buffer %d records exceeds the %d budget", v.Stats.PeakBufferRecords, budget)
	}
	if v.Stats.MergePasses < 1 {
		t.Fatalf("a 10x dataset must need merge passes: %+v", v.Stats)
	}

	// The streamed result must be byte-identical to the in-RAM sort.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d err %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("result content type %q", ct)
	}
	slices.Sort(vals)
	if !bytes.Equal(raw, encodeRecords(vals)) {
		t.Fatal("streamed result differs from the in-RAM sort")
	}

	// All three observability surfaces must report the jobs subsystem.
	var snap MetricsSnapshot
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(mresp.Body).Decode(&snap)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Jobs == nil || snap.Jobs.Submitted != 1 || snap.Jobs.Completed != 1 {
		t.Fatalf("metrics jobs block: %+v", snap.Jobs)
	}
	if snap.Jobs.BlockReads == 0 || snap.Jobs.BlockWrites == 0 {
		t.Fatalf("metrics jobs I/O not accounted: %+v", snap.Jobs)
	}
	if ep, ok := snap.Endpoints["jobs"]; !ok || ep.Count == 0 {
		t.Fatalf("jobs endpoint metrics missing: %+v", snap.Endpoints)
	}
	presp, err := http.Get(ts.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	for _, series := range []string{
		"mergepathd_jobs_submitted_total 1",
		"mergepathd_jobs_completed_total 1",
		"mergepathd_jobs_memory_records 4096",
	} {
		if !strings.Contains(string(prom), series) {
			t.Fatalf("prom exposition missing %q", series)
		}
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	err = json.NewDecoder(hresp.Body).Decode(&h)
	hresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if h.Jobs == nil || h.Jobs.Completed != 1 {
		t.Fatalf("healthz jobs block: %+v", h.Jobs)
	}

	// Dataset CRUD round-trip.
	dresp, err := http.Get(ts.URL + "/v1/datasets/" + ds.ID)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("dataset get %d", dresp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/"+ds.ID, nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("dataset delete %d", delResp.StatusCode)
	}
	gone, err := http.Get(ts.URL + "/v1/datasets/" + ds.ID)
	if err != nil {
		t.Fatal(err)
	}
	gone.Body.Close()
	if gone.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted dataset answered %d", gone.StatusCode)
	}
}

// TestJobsAPIErrorsAndCancel covers the API's error statuses and the
// DELETE-cancel path.
func TestJobsAPIErrorsAndCancel(t *testing.T) {
	inj, err := fault.Parse("sortfile:latency=400ms@1", 7)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 2, Fault: inj,
		Jobs: jobs.Config{MemoryRecords: 64, MaxConcurrent: 1}})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(t.Context())

	// Ragged upload -> 400; unknown dataset -> 404; bad type -> 400.
	resp, err := http.Post(ts.URL+"/v1/datasets", "application/octet-stream", bytes.NewReader(make([]byte, 11)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ragged upload %d", resp.StatusCode)
	}
	if _, st := submitJob(t, ts.URL, "ds-nope"); st != http.StatusNotFound {
		t.Fatalf("unknown dataset submit %d", st)
	}
	ds := postDataset(t, ts.URL, encodeRecords(make([]int64, 512)))
	body, _ := json.Marshal(JobRequest{Type: "shred", Dataset: ds.ID})
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad type %d", resp.StatusCode)
	}
	if _, st := getJob(t, ts.URL, "job-nope"); st != http.StatusNotFound {
		t.Fatalf("unknown job get %d", st)
	}

	// Submit a job held open by injected latency, cancel it over HTTP.
	v, st := submitJob(t, ts.URL, ds.ID)
	if st != http.StatusAccepted {
		t.Fatalf("submit %d", st)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var canceled jobs.View
	_ = json.NewDecoder(cresp.Body).Decode(&canceled)
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", cresp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, _ := getJob(t, ts.URL, v.ID)
		if got.State == jobs.Canceled {
			break
		}
		if got.State != jobs.Pending && got.State != jobs.Running {
			t.Fatalf("canceled job ended %s", got.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancel never landed: %s", got.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// No result for a canceled job -> 409.
	rresp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusConflict {
		t.Fatalf("canceled result %d", rresp.StatusCode)
	}
	// Canceling it again is idempotent (200); canceling a done job is 409.
	c2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	c2.Body.Close()
	if c2.StatusCode != http.StatusOK {
		t.Fatalf("re-cancel %d", c2.StatusCode)
	}
}

// TestDatasetDeleteDefersUntilJobReleases is the regression test for the
// DELETE-vs-running-job race: deleting a dataset while a job still needs
// it answers 200 and hides the record immediately, but the backing file
// survives until the job releases it — the sort completes correctly
// instead of failing on an unlinked input.
func TestDatasetDeleteDefersUntilJobReleases(t *testing.T) {
	// Latency on the "job" op lands BEFORE copy-in, so the delete below
	// races the job's first read of the dataset — the exact window the
	// refcount exists for.
	inj, err := fault.Parse("job:latency=300ms@1", 7)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 2, Fault: inj,
		Jobs: jobs.Config{MemoryRecords: 4096, MaxConcurrent: 1}})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(t.Context())

	rng := rand.New(rand.NewSource(9))
	vals := make([]int64, 8192)
	for i := range vals {
		vals[i] = rng.Int63() - rng.Int63()
	}
	ds := postDataset(t, ts.URL, encodeRecords(vals))
	v, st := submitJob(t, ts.URL, ds.ID)
	if st != http.StatusAccepted {
		t.Fatalf("submit %d", st)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/"+ds.ID, nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("delete during job %d", delResp.StatusCode)
	}
	gone, err := http.Get(ts.URL + "/v1/datasets/" + ds.ID)
	if err != nil {
		t.Fatal(err)
	}
	gone.Body.Close()
	if gone.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted dataset still answers %d", gone.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		got, _ := getJob(t, ts.URL, v.ID)
		if got.State == jobs.Done {
			break
		}
		if got.State != jobs.Pending && got.State != jobs.Running {
			t.Fatalf("job ended %s: %s (dataset yanked mid-read?)", got.State, got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	slices.Sort(vals)
	if !bytes.Equal(raw, encodeRecords(vals)) {
		t.Fatal("result wrong after deferred dataset delete")
	}
	// The deferred removal ran at job finalize: the file is gone now.
	if _, ok := s.Jobs().GetDataset(ds.ID); ok {
		t.Fatal("dataset record resurrected")
	}
}

// TestResultStreamPinsAgainstTTL is the regression test for the
// result-stream-vs-GC race: a sweep that would expire the job fires
// while the result stream is open, and the stream must still complete
// byte-perfect — expiry is deferred until the stream closes.
func TestResultStreamPinsAgainstTTL(t *testing.T) {
	s := New(Config{Workers: 2, Jobs: jobs.Config{MemoryRecords: 4096}})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(t.Context())

	rng := rand.New(rand.NewSource(10))
	vals := make([]int64, 8192)
	for i := range vals {
		vals[i] = rng.Int63() - rng.Int63()
	}
	ds := postDataset(t, ts.URL, encodeRecords(vals))
	v, st := submitJob(t, ts.URL, ds.ID)
	if st != http.StatusAccepted {
		t.Fatalf("submit %d", st)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		got, _ := getJob(t, ts.URL, v.ID)
		if got.State == jobs.Done {
			break
		}
		if (got.State != jobs.Pending && got.State != jobs.Running) || time.Now().After(deadline) {
			t.Fatalf("job ended %s: %s", got.State, got.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}

	r, _, err := s.Jobs().OpenResult(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	// A sweep far past every TTL while the stream is open: the open
	// stream must pin the job's files.
	s.Jobs().Sweep(time.Now().Add(time.Hour))
	raw, err := io.ReadAll(r)
	if cerr := r.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("stream raced GC: %v", err)
	}
	slices.Sort(vals)
	if !bytes.Equal(raw, encodeRecords(vals)) {
		t.Fatal("streamed result differs")
	}
	// With the stream closed the same sweep expires the job normally.
	s.Jobs().Sweep(time.Now().Add(time.Hour))
	got, _ := getJob(t, ts.URL, v.ID)
	if got.State != jobs.Expired {
		t.Fatalf("job not expired after stream closed: %s", got.State)
	}
}
