package server

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"mergepath/internal/verify"
)

// TestGracefulDrain verifies the shutdown contract: work admitted before
// Drain completes and is answered 200; work arriving after Drain begins
// is refused with 503; Drain returns only once the queue is empty.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 64, BatchWindow: time.Millisecond})
	ts := newRawServer(t, s)
	release, _ := blockPool(t, s)

	// Admit a deterministic set of in-flight requests behind the blocker.
	const n = 12
	rng := rand.New(rand.NewSource(8))
	var wg sync.WaitGroup
	codes := make([]int, n)
	results := make([]MergeResponse, n)
	inputs := make([]MergeRequest, n)
	for i := 0; i < n; i++ {
		inputs[i] = MergeRequest{A: sortedInt64(rng, 80), B: sortedInt64(rng, 120)}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = post(t, ts, "/v1/merge", inputs[i], &results[i])
		}(i)
	}
	// Wait until all n jobs are actually queued (blocker holds the round).
	deadline := time.Now().Add(2 * time.Second)
	for s.pool.depth() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d jobs queued", s.pool.depth(), n)
		}
		time.Sleep(time.Millisecond)
	}

	// Begin the drain concurrently, then let the pool go.
	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drainDone <- s.Drain(ctx)
	}()
	time.Sleep(5 * time.Millisecond) // let Drain set the flag and close the queue
	close(release)

	wg.Wait()
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Errorf("in-flight request %d: status %d, want 200 (drain must finish admitted work)", i, codes[i])
			continue
		}
		if !verify.Equal(results[i].Result, verify.ReferenceMerge(inputs[i].A, inputs[i].B)) {
			t.Errorf("in-flight request %d: wrong merge after drain", i)
		}
	}

	// After the drain: new work refused, health reports draining.
	if code := post(t, ts, "/v1/merge", MergeRequest{A: []int64{1}, B: []int64{2}}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("post-drain request: status %d, want 503", code)
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("second drain must be a no-op, got %v", err)
	}
}

// TestConcurrentHammer drives the daemon from 32 goroutines across every
// endpoint at once; run under -race (the Makefile race target includes
// this package). Sheds — hard 503s from the bounded queue or adaptive
// 429s from the overload controller — are legal under this load; wrong
// bytes are not.
func TestConcurrentHammer(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 128, CoalesceLimit: 1 << 10})
	ts := newRawServer(t, s)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})

	const workers = 32
	const perWorker = 12
	var ok, shed, bad int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				var code int
				var wrong bool
				switch w % 4 {
				case 0, 1: // merge, mixed sizes so both pool paths run
					n := 50 + rng.Intn(200)
					if i%5 == 0 {
						n = 2000 // output 4000 > CoalesceLimit: partitioned path
					}
					a, b := sortedInt64(rng, n), sortedInt64(rng, n)
					var got MergeResponse
					code = post(t, ts, "/v1/merge", MergeRequest{A: a, B: b}, &got)
					wrong = code == http.StatusOK && !verify.Equal(got.Result, verify.ReferenceMerge(a, b))
				case 2: // mergek
					lists := make([][]int64, 3+rng.Intn(3))
					var all []int64
					for j := range lists {
						lists[j] = sortedInt64(rng, 50+rng.Intn(50))
						all = append(all, lists[j]...)
					}
					var got MergeKResponse
					code = post(t, ts, "/v1/mergek", MergeKRequest{Lists: lists}, &got)
					wrong = code == http.StatusOK &&
						(!verify.Sorted(got.Result) || !verify.SameMultiset(got.Result, all))
				case 3: // metrics reads race against everything else
					resp, err := ts.Client().Get(ts.URL + "/metrics")
					if err != nil {
						t.Error(err)
						return
					}
					var snap MetricsSnapshot
					if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
						t.Errorf("metrics decode: %v", err)
					}
					resp.Body.Close()
					code = resp.StatusCode
				}
				mu.Lock()
				switch {
				case wrong:
					bad++
				case code == http.StatusOK:
					ok++
				case code == http.StatusServiceUnavailable,
					code == http.StatusTooManyRequests:
					shed++
				default:
					bad++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if bad != 0 {
		t.Fatalf("%d bad responses (ok=%d shed=%d)", bad, ok, shed)
	}
	if ok == 0 {
		t.Fatal("no request succeeded")
	}
	t.Logf("hammer: ok=%d shed=%d", ok, shed)
}
