// Package server is the mergepath service layer: an HTTP/JSON daemon that
// multiplexes many concurrent merge/sort/k-way/set-algebra requests onto
// one fixed worker pool.
//
// The paper's Algorithm 1 balances ONE merge across p workers; a service
// sees the dual problem — thousands of small independent requests whose
// sizes are skewed and bursty. Both collapse to the same primitive: the
// dispatcher coalesces concurrent small merges into a single globally
// load-balanced batch round (internal/batch), and partitions large
// requests across the whole pool (internal/core), so worker load is even
// regardless of the request mix. Admission control is a bounded queue:
// when it is full the daemon sheds with 503 instead of accumulating
// goroutines, and per-request deadlines bound queue wait. /metrics
// exports request counters, queue depth, worker utilization, per-round
// batch loads, and p50/p95/p99 latency histograms.
package server

import (
	"cmp"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"mergepath/internal/batch"
	"mergepath/internal/core"
	"mergepath/internal/fault"
	"mergepath/internal/jobs"
	"mergepath/internal/kway"
	"mergepath/internal/overload"
	"mergepath/internal/psort"
	"mergepath/internal/setops"
	"mergepath/internal/wire"
)

// StatusClientClosedRequest is the de-facto-standard status (nginx's
// 499) for a request whose client went away before the response: not a
// server failure (5xx) and not the client's request being wrong (4xx in
// the usual sense), so it gets the conventional off-registry code. The
// client never reads it; logs and metrics do.
const StatusClientClosedRequest = 499

// Config shapes the daemon. Zero values select the documented defaults.
type Config struct {
	// Workers is the pool size; every round engages all of them.
	// Default GOMAXPROCS.
	Workers int
	// QueueDepth bounds the admission queue; a full queue sheds with
	// 503. Default 256.
	QueueDepth int
	// BatchWindow is how long a small merge may wait for company before
	// its coalesced round is flushed. Default 500µs.
	BatchWindow time.Duration
	// BatchElements flushes a coalesced round early once its combined
	// output reaches this many elements. Default 1<<20.
	BatchElements int
	// CoalesceLimit is the largest merge output (elements) that takes
	// the coalescing path; bigger requests are partitioned across the
	// pool as their own round. Default 1<<16.
	CoalesceLimit int
	// MaxBodyBytes caps request bodies; beyond it the daemon answers
	// 413. Default 8 MiB.
	MaxBodyBytes int64
	// RequestTimeout is the default per-request deadline covering queue
	// wait plus execution; clients may lower (not raise) it per request
	// with an X-Timeout-Ms header. Timed-out requests get 504.
	// Default 5s.
	RequestTimeout time.Duration
	// Overload tunes the adaptive overload controller (CoDel-style
	// queue-sojourn admission, brownout degradation, computed
	// Retry-After). Zero values select the controller's documented
	// defaults; the controller is always on.
	Overload overload.Config
	// StrictInput upgrades sortedness-violation 400s with forensic
	// detail: the error names the first violating index and the
	// offending pair of values (internal/verify.FirstUnsorted), so a
	// client feeding garbage learns exactly where instead of hunting.
	// Off by default because the message grows with no benefit for
	// well-behaved clients.
	StrictInput bool
	// Fault, when non-nil, injects panics/errors/latency into round
	// execution keyed by op (internal/fault) — chaos testing for the
	// panic-isolation and cancellation machinery. Nil in production.
	Fault *fault.Injector
	// AccessLog, when true, writes one structured (key=value) log line
	// per finished request with its ID, endpoint, status and per-stage
	// span timings. Off by default: the spans still reach /metrics and
	// the Server-Timing header either way.
	AccessLog bool
	// Jobs shapes the asynchronous dataset/jobs subsystem (spill
	// directory, per-job memory budget, concurrency and TTL bounds —
	// see internal/jobs). Zero values select the jobs package defaults;
	// the Fault injector above is shared with it automatically.
	Jobs jobs.Config
	// KWayStrategy selects the k-way merge implementation behind
	// /v1/mergek: kway.StrategyAuto (the zero value) picks co-ranking
	// for large merges and the sequential heap for small ones;
	// StrategyHeap / StrategyTree / StrategyCoRank pin one
	// implementation for benchmarking. Output bytes are identical
	// across strategies. See docs/KWAY.md.
	KWayStrategy kway.Strategy
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 500 * time.Microsecond
	}
	if c.BatchElements <= 0 {
		c.BatchElements = 1 << 20
	}
	if c.CoalesceLimit <= 0 {
		c.CoalesceLimit = 1 << 16
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	return c
}

// Server is the service. It is an http.Handler; pair it with an
// http.Server (or httptest) for transport.
type Server struct {
	cfg      Config
	m        *Metrics
	pool     *pool
	ctrl     *overload.Controller
	jobs     *jobs.Manager
	mux      *http.ServeMux
	draining atomic.Bool
}

// New starts a Server (its dispatcher runs immediately). Call Drain to
// stop it. New panics if the jobs spill directory cannot be created —
// the one setup step that touches the filesystem.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, m: NewMetrics(), mux: http.NewServeMux()}
	s.m.kwayStrategy = cfg.KWayStrategy.String()
	s.ctrl = overload.New(cfg.Overload)
	s.pool = newPool(cfg.Workers, cfg.QueueDepth, cfg.BatchWindow, cfg.BatchElements, s.m, s.ctrl)
	// Jobs share the overload controller's element accounting: a queued
	// or running sort is backlog like any admitted request, and each
	// completed sort feeds the drain-rate EWMA.
	jcfg := cfg.Jobs
	jcfg.Fault = cfg.Fault
	jcfg.Hooks = jobs.Hooks{
		Enqueue: func(n int) { s.ctrl.Enqueue(n) },
		Done:    func(n int) { s.ctrl.Done(n) },
		Drained: func(n int, took time.Duration) { s.ctrl.ObserveDrain(n, took) },
	}
	jm, err := jobs.New(jcfg)
	if err != nil {
		panic("server: jobs subsystem: " + err.Error())
	}
	s.jobs = jm
	s.jobRoutes()
	s.mux.HandleFunc("POST /v1/merge", s.route("merge", s.handleMerge))
	s.mux.HandleFunc("POST /v1/sort", s.route("sort", s.handleSort))
	s.mux.HandleFunc("POST /v1/mergek", s.route("mergek", s.handleMergeK))
	s.mux.HandleFunc("POST /v1/setops", s.route("setops", s.handleSetOps))
	s.mux.HandleFunc("POST /v1/select", s.route("select", s.handleSelect))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics/prom", s.handleMetricsProm)
	return s
}

// ServeHTTP implements http.Handler by dispatching to the service mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics exposes the registry (the daemon logs a summary on exit).
func (s *Server) Metrics() *Metrics { return s.m }

// Snapshot returns the current /metrics document.
func (s *Server) Snapshot() MetricsSnapshot {
	snap := s.m.snapshot(s.pool)
	js := s.jobs.Snapshot()
	snap.Jobs = &js
	return snap
}

// Jobs exposes the jobs manager (the daemon reports its spill dir).
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Workers reports the configured pool size.
func (s *Server) Workers() int { return s.cfg.Workers }

// Drain gracefully shuts the service down: new work is refused with 503
// while everything already admitted — queued jobs and the round in
// flight — completes. Returns when the dispatcher has exited or ctx
// expires. Call after http.Server.Shutdown so in-flight handlers have
// already received their responses.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	err := s.pool.close(ctx)
	// Jobs are cancellation-prompt (merge-window boundaries), so closing
	// the manager — which cancels live jobs and removes an owned spill
	// dir — does not need the ctx budget the pool drain got.
	if jerr := s.jobs.Close(); err == nil {
		err = jerr
	}
	return err
}

// route wraps an endpoint handler with the shared envelope: request-ID
// assignment, per-stage tracing, response encoding in the negotiated
// format (JSON, or the binary frame via arrayResult), Server-Timing
// exposition, per-endpoint count/latency metrics, and the optional
// structured access log.
func (s *Server) route(endpoint string, h func(*http.Request) (int, any)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = nextRequestID()
		}
		tr := newTrace(id, start)
		r = r.WithContext(withTrace(r.Context(), tr))
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		status, body := h(r)
		w.Header().Set("X-Request-Id", id)
		if st := tr.serverTiming(); st != "" {
			w.Header().Set("Server-Timing", st)
		}
		if status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests {
			// Both shed classes — hard sheds (queue full, draining) and
			// adaptive sheds (overload controller) — tell the client when
			// the backlog should have drained at the measured element
			// throughput, instead of a hardcoded guess.
			w.Header().Set("Retry-After", strconv.Itoa(s.ctrl.RetryAfterSeconds()))
		}
		if status >= 400 {
			// Error and shed responses fire before the body was (fully)
			// read; consuming a bounded remainder keeps the keep-alive
			// connection reusable instead of forcing every refused client
			// into a reconnect exactly when the server is loaded.
			drainBody(r)
		}
		wstart := time.Now()
		s.writeBody(w, status, body)
		tr.span(StageWrite, wstart)
		total := time.Since(start)
		s.m.observe(endpoint, status, total)
		s.m.observeSpans(tr.Spans())
		if s.cfg.AccessLog {
			log.Print("server: ", tr.logLine(endpoint, status, total))
		}
	}
}

// writeBody encodes one response body in its negotiated format. Array
// results carry their own format decision and pooled buffers (released
// here, after the bytes are on the wire); everything else — error
// documents, job/dataset docs, select responses — is JSON.
func (s *Server) writeBody(w http.ResponseWriter, status int, body any) {
	ar, isArray := body.(*arrayResult)
	if isArray {
		defer ar.free()
	}
	if isArray && ar.binary {
		w.Header().Set("Content-Type", wire.ContentType)
		var n int64
		if ar.isFloat {
			n = wire.Size(len(ar.floats))
		} else {
			n = wire.Size(len(ar.ints))
		}
		w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
		w.WriteHeader(status)
		if ar.isFloat {
			_ = wire.EncodeFloat64(w, ar.floats)
		} else {
			_ = wire.EncodeInt64(w, ar.ints)
		}
		s.m.respBinary.Add(1)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	switch {
	case isArray && ar.isFloat:
		_ = json.NewEncoder(w).Encode(floatResult{Result: ar.floats})
	case isArray:
		_ = json.NewEncoder(w).Encode(MergeResponse{Result: ar.ints})
	default:
		_ = json.NewEncoder(w).Encode(body)
	}
	s.m.respJSON.Add(1)
}

// decode parses a JSON body, distinguishing oversized (413) from
// malformed (400). A nil error return means req is populated and the
// document was the entire body — a request with trailing bytes after
// the closing brace ({"a":[1]}junk) is malformed, not "parsed fine up
// to the part we read". The body read + parse is recorded as the
// request's decode span.
func decode(r *http.Request, req any) (int, error) {
	t0 := time.Now()
	dec := json.NewDecoder(r.Body)
	err := dec.Decode(req)
	if err == nil {
		// json.Decoder stops at the document's end by design (it decodes
		// streams); asking for one more token distinguishes clean EOF
		// from trailing garbage or a second document.
		switch _, terr := dec.Token(); terr {
		case io.EOF:
		case nil:
			err = errors.New("request body: trailing data after JSON document")
		default:
			err = fmt.Errorf("request body: trailing data after JSON document: %w", terr)
		}
	}
	traceFrom(r.Context()).span(StageDecode, t0)
	if err == nil {
		return http.StatusOK, nil
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge, errors.New("request body exceeds limit")
	}
	return http.StatusBadRequest, err
}

// errBadTimeout rejects malformed X-Timeout-Ms values with 400: zero,
// negative, non-numeric and overflowing values are client errors, not
// values to silently ignore (ignoring them would run the request under a
// deadline the client never agreed to).
var errBadTimeout = errors.New("invalid X-Timeout-Ms: must be a positive integer count of milliseconds")

// requestCtx applies the effective deadline: the configured default, or
// a smaller client-requested X-Timeout-Ms. Per the documented contract a
// client may lower the server deadline but never raise it, so values
// above RequestTimeout are clamped; values that don't parse as a
// positive int64 (including overflow) are a 400-worthy error.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc, error) {
	timeout := s.cfg.RequestTimeout
	if h := r.Header.Get("X-Timeout-Ms"); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			return nil, nil, errBadTimeout
		}
		// Compare in milliseconds before converting: ms near MaxInt64
		// would overflow the Duration multiply.
		if ms < timeout.Milliseconds() {
			timeout = time.Duration(ms) * time.Millisecond
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	return ctx, cancel, nil
}

// newJob allocates a job for an endpoint op, attaching the request's
// trace and, when chaos is configured, the fault injector's hook.
func (s *Server) newJob(op string, r *http.Request) *job {
	j := &job{done: make(chan error, 1), trace: traceFrom(r.Context())}
	if inj := s.cfg.Fault; inj != nil {
		j.fault = func() error { return inj.Before(op) }
	}
	return j
}

// noteRunStats folds a whole-pool round's per-worker stats into the
// request trace (partition/merge spans carrying cumulative worker time)
// and the load-imbalance metrics. began is when the round started.
func (s *Server) noteRunStats(tr *Trace, began time.Time, ws []core.WorkerStat) {
	if len(ws) == 0 {
		return
	}
	var search, merge time.Duration
	for _, w := range ws {
		search += w.Search
		merge += w.Merge
	}
	tr.add(StagePartition, began, search)
	tr.add(StageMerge, began, merge)
	s.m.recordRunRound(ws)
}

// admit is the pre-decode admission gate: the drain flag and the
// adaptive overload controller (429, sojourn over target for too
// long). It runs before the body is decoded so a shedding server does
// not also pay to parse the requests it refuses — under overload,
// decode CPU is exactly what must be protected. Returns 0 when the
// request may proceed to decode + execute.
func (s *Server) admit() (int, error) {
	if s.draining.Load() {
		return http.StatusServiceUnavailable, ErrDraining
	}
	if ok, _ := s.ctrl.Admit(); !ok {
		s.m.throttled.Add(1)
		return http.StatusTooManyRequests, ErrOverloaded
	}
	return 0, nil
}

// execute runs an admitted job through the pool and maps pool errors to
// HTTP status codes. Returns 0 on success. Admission is two-layered:
// admit() sheds first (429, before decode), then the bounded queue
// sheds on hard overflow (503) — the 429 layer should normally keep
// the queue from ever filling.
func (s *Server) execute(r *http.Request, j *job) (int, error) {
	ctx, cancel, err := s.requestCtx(r)
	if err != nil {
		return http.StatusBadRequest, err
	}
	defer cancel()
	t0 := time.Now()
	err = s.pool.do(ctx, j)
	j.trace.span(StageExecute, t0)
	switch {
	case err == nil:
		return 0, nil
	case errors.Is(err, ErrQueueFull):
		s.m.shed.Add(1)
		return http.StatusServiceUnavailable, err
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, err
	case errors.Is(err, ErrDeadline):
		s.m.timeouts.Add(1)
		return http.StatusGatewayTimeout, err
	case errors.Is(err, ErrCanceled):
		s.m.canceled.Add(1)
		return StatusClientClosedRequest, err
	default:
		return http.StatusInternalServerError, err
	}
}

func errBody(err error) ErrorResponse { return ErrorResponse{Error: err.Error()} }

// checkInput validates sortedness of a request array. Both modes run the
// same O(n) scan; StrictInput buys a forensic error message (first
// violating index and values) for the price of a second scan on the
// failure path only. Generic because the binary frame carries float64
// arrays over the same endpoints.
func checkInput[T cmp.Ordered](s *Server, name string, v []T) error {
	if s.cfg.StrictInput {
		return checkSortedStrict(name, v)
	}
	return checkSorted(name, v)
}

// mergeTwo validates a and b and merges them into out through the
// pool. Small int64 merges take the coalescing pair path (the batch
// layer is int64-typed); everything else — large merges and all float64
// merges — runs as an instrumented whole-pool round: per-worker
// search/merge timings become partition/merge spans and the round's
// element spread feeds the imbalance metrics (the Theorem 5 check: it
// should sit at ~1.0). Returns execute()'s status mapping.
func mergeTwo[T cmp.Ordered](s *Server, r *http.Request, a, b, out []T) (int, error) {
	if err := checkInput(s, "a", a); err != nil {
		return http.StatusBadRequest, err
	}
	if err := checkInput(s, "b", b); err != nil {
		return http.StatusBadRequest, err
	}
	j := s.newJob("merge", r)
	j.elems = len(out)
	if ia, ok := any(a).([]int64); ok && len(out) <= s.cfg.CoalesceLimit {
		j.pair = &batch.Pair[int64]{A: ia, B: any(b).([]int64), Out: any(out).([]int64)}
	} else {
		tr := j.trace
		j.run = func(ctx context.Context, workers int) error {
			began := time.Now()
			ws, err := core.ParallelMergeCtxStats(ctx, a, b, out, workers)
			s.noteRunStats(tr, began, ws)
			return err
		}
	}
	return s.execute(r, j)
}

// sortData sorts data in place through the pool's whole-pool round
// path, recording psort's phase timings as partition/merge spans.
func sortData[T cmp.Ordered](s *Server, r *http.Request, data []T) (int, error) {
	j := s.newJob("sort", r)
	j.elems = len(data)
	tr := j.trace
	j.run = func(ctx context.Context, workers int) error {
		began := time.Now()
		st, err := psort.SortCtxStats(ctx, data, workers)
		// Partition = co-rank searches; merge = run sorting + merge
		// steps (both are element-processing work). Imbalance: worst
		// phase-2 round.
		tr.add(StagePartition, began, st.Search)
		tr.add(StageMerge, began, st.RunSort+st.Merge)
		s.m.noteImbalance(st.MaxImbalance)
		return err
	}
	return s.execute(r, j)
}

// mergeKLists validates and k-way merges lists through the pool. With a
// non-nil dst the merge lands there (the pooled binary-response path);
// otherwise kway allocates — which preserves the JSON contract that an
// empty request yields a null result.
func mergeKLists[T cmp.Ordered](s *Server, r *http.Request, lists [][]T, dst []T) (int, []T, error) {
	for i, list := range lists {
		if err := checkInput(s, "lists["+strconv.Itoa(i)+"]", list); err != nil {
			return http.StatusBadRequest, nil, err
		}
	}
	var result []T
	j := s.newJob("mergek", r)
	for _, list := range lists {
		j.elems += len(list)
	}
	// kway rounds are not chunk-cancellable yet; observe ctx at the round
	// boundary so an abandoned job at least never starts.
	j.run = func(ctx context.Context, workers int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		out := dst
		if out == nil {
			if len(lists) == 0 {
				return nil // JSON contract: an empty request merges to null
			}
			out = make([]T, j.elems)
		}
		var st kway.Stats
		result, st = kway.MergeIntoStats(out, lists, workers, s.cfg.KWayStrategy)
		s.m.noteKWay(st)
		return nil
	}
	status, err := s.execute(r, j)
	return status, result, err
}

func (s *Server) handleMerge(r *http.Request) (int, any) {
	if status, err := s.admit(); status != 0 {
		return status, errBody(err)
	}
	bf, err := s.requestFormat(r)
	if err != nil {
		return http.StatusUnsupportedMediaType, errBody(err)
	}
	binOut := wantsWire(r)
	if bf == fmtBinary {
		f, status, err := s.decodeFrame(r, 2)
		if err != nil {
			return status, errBody(err)
		}
		if f.Type == wire.Float64 {
			a, b := f.Floats[0], f.Floats[1]
			out := wire.GetFloat64(len(a) + len(b))
			if status, err := mergeTwo(s, r, a, b, out); err != nil {
				f.Release()
				wire.PutFloat64(out)
				return status, errBody(err)
			}
			f.Release()
			return http.StatusOK, &arrayResult{binary: binOut, isFloat: true, floats: out,
				release: func() { wire.PutFloat64(out) }}
		}
		a, b := f.Ints[0], f.Ints[1]
		out := wire.GetInt64(len(a) + len(b))
		if status, err := mergeTwo(s, r, a, b, out); err != nil {
			f.Release()
			wire.PutInt64(out)
			return status, errBody(err)
		}
		f.Release()
		return http.StatusOK, &arrayResult{binary: binOut, ints: out,
			release: func() { wire.PutInt64(out) }}
	}
	var req MergeRequest
	if status, err := decode(r, &req); err != nil {
		return status, errBody(err)
	}
	out := make([]int64, len(req.A)+len(req.B))
	if status, err := mergeTwo(s, r, req.A, req.B, out); err != nil {
		return status, errBody(err)
	}
	return http.StatusOK, &arrayResult{binary: binOut, ints: out}
}

func (s *Server) handleSort(r *http.Request) (int, any) {
	if status, err := s.admit(); status != 0 {
		return status, errBody(err)
	}
	bf, err := s.requestFormat(r)
	if err != nil {
		return http.StatusUnsupportedMediaType, errBody(err)
	}
	binOut := wantsWire(r)
	if bf == fmtBinary {
		// The frame's single list is sorted in place inside its pooled
		// arena and encoded straight back out of it — the large-array
		// path allocates nothing per request.
		f, status, err := s.decodeFrame(r, 1)
		if err != nil {
			return status, errBody(err)
		}
		if f.Type == wire.Float64 {
			data := f.Floats[0]
			if status, err := sortData(s, r, data); err != nil {
				f.Release()
				return status, errBody(err)
			}
			return http.StatusOK, &arrayResult{binary: binOut, isFloat: true, floats: data, release: f.Release}
		}
		data := f.Ints[0]
		if status, err := sortData(s, r, data); err != nil {
			f.Release()
			return status, errBody(err)
		}
		return http.StatusOK, &arrayResult{binary: binOut, ints: data, release: f.Release}
	}
	var req SortRequest
	if status, err := decode(r, &req); err != nil {
		return status, errBody(err)
	}
	if status, err := sortData(s, r, req.Data); err != nil {
		return status, errBody(err)
	}
	return http.StatusOK, &arrayResult{binary: binOut, ints: req.Data}
}

func (s *Server) handleMergeK(r *http.Request) (int, any) {
	if status, err := s.admit(); status != 0 {
		return status, errBody(err)
	}
	bf, err := s.requestFormat(r)
	if err != nil {
		return http.StatusUnsupportedMediaType, errBody(err)
	}
	binOut := wantsWire(r)
	if bf == fmtBinary {
		f, status, err := s.decodeFrame(r, -1)
		if err != nil {
			return status, errBody(err)
		}
		if f.Type == wire.Float64 {
			dst := wire.GetFloat64(f.Elements())
			status, result, err := mergeKLists(s, r, f.Floats, dst)
			if err != nil {
				f.Release()
				wire.PutFloat64(dst)
				return status, errBody(err)
			}
			f.Release()
			return http.StatusOK, &arrayResult{binary: binOut, isFloat: true, floats: result,
				release: func() { wire.PutFloat64(dst) }}
		}
		dst := wire.GetInt64(f.Elements())
		status, result, err := mergeKLists(s, r, f.Ints, dst)
		if err != nil {
			f.Release()
			wire.PutInt64(dst)
			return status, errBody(err)
		}
		f.Release()
		return http.StatusOK, &arrayResult{binary: binOut, ints: result,
			release: func() { wire.PutInt64(dst) }}
	}
	var req MergeKRequest
	if status, err := decode(r, &req); err != nil {
		return status, errBody(err)
	}
	status, result, err := mergeKLists(s, r, req.Lists, nil)
	if err != nil {
		return status, errBody(err)
	}
	return http.StatusOK, &arrayResult{binary: binOut, ints: result}
}

func (s *Server) handleSetOps(r *http.Request) (int, any) {
	if status, err := s.admit(); status != 0 {
		return status, errBody(err)
	}
	bf, err := s.requestFormat(r)
	if err != nil {
		return http.StatusUnsupportedMediaType, errBody(err)
	}
	if bf == fmtBinary {
		// The setops document carries an op name the bare-array frame
		// cannot express; the request stays JSON (the response side still
		// honours Accept).
		s.m.badMedia.Add(1)
		return http.StatusUnsupportedMediaType, errBody(errNoBinaryForm("setops"))
	}
	var req SetOpsRequest
	if status, err := decode(r, &req); err != nil {
		return status, errBody(err)
	}
	var op func(a, b []int64, p int) []int64
	switch req.Op {
	case "union":
		op = setops.Union[int64]
	case "intersect":
		op = setops.Intersect[int64]
	case "diff":
		op = setops.Diff[int64]
	default:
		return http.StatusBadRequest, errBody(errors.New(`op must be "union", "intersect" or "diff"`))
	}
	if err := checkInput(s, "a", req.A); err != nil {
		return http.StatusBadRequest, errBody(err)
	}
	if err := checkInput(s, "b", req.B); err != nil {
		return http.StatusBadRequest, errBody(err)
	}
	var result []int64
	a, b := req.A, req.B
	j := s.newJob("setops", r)
	j.elems = len(a) + len(b)
	j.run = func(ctx context.Context, workers int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		result = op(a, b, workers)
		return nil
	}
	if status, err := s.execute(r, j); err != nil {
		return status, errBody(err)
	}
	return http.StatusOK, &arrayResult{binary: wantsWire(r), ints: result}
}

// handleSelect answers diagonal rank selection inline: a pair of binary
// searches is far cheaper than a trip through the queue, and keeping it
// off the pool means rank probes stay fast even when merges are shedding.
func (s *Server) handleSelect(r *http.Request) (int, any) {
	if bf, err := s.requestFormat(r); err != nil {
		return http.StatusUnsupportedMediaType, errBody(err)
	} else if bf == fmtBinary {
		// Select's request carries a rank K the bare-array frame cannot
		// express, and its response is a rank document, not an array.
		s.m.badMedia.Add(1)
		return http.StatusUnsupportedMediaType, errBody(errNoBinaryForm("select"))
	}
	var req SelectRequest
	if status, err := decode(r, &req); err != nil {
		return status, errBody(err)
	}
	if err := checkInput(s, "a", req.A); err != nil {
		return http.StatusBadRequest, errBody(err)
	}
	if err := checkInput(s, "b", req.B); err != nil {
		return http.StatusBadRequest, errBody(err)
	}
	if req.K < 0 || req.K > len(req.A)+len(req.B) {
		return http.StatusBadRequest, errBody(errors.New("k out of range [0, len(a)+len(b)]"))
	}
	pt := core.SearchDiagonal(req.A, req.B, req.K)
	resp := SelectResponse{ARank: pt.A, BRank: pt.B}
	if req.K >= 1 {
		// The K-th smallest is the last element consumed before the
		// crossing: the larger of the two candidates behind the point.
		var kth int64
		switch {
		case pt.A == 0:
			kth = req.B[pt.B-1]
		case pt.B == 0:
			kth = req.A[pt.A-1]
		default:
			kth = max(req.A[pt.A-1], req.B[pt.B-1])
		}
		resp.Kth = &kth
	}
	return http.StatusOK, resp
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Snapshot())
}
