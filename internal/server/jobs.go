package server

import (
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"strconv"
	"time"

	"mergepath/internal/jobs"
)

// The dataset/jobs API: the request/response endpoints above move at most
// MaxBodyBytes per call, while these endpoints exist for inputs that
// don't fit — a dataset is streamed to a spill file once, then sorted
// out-of-core by an asynchronous job under a hard memory budget
// (internal/jobs + internal/extsort), with the client polling progress
// and streaming the result when done.
//
//	POST   /v1/datasets           octet-stream upload -> 201 dataset doc
//	GET    /v1/datasets/{id}      dataset doc
//	DELETE /v1/datasets/{id}      204
//	POST   /v1/jobs               {"type":"sortfile","dataset":id} -> 202 job doc
//	GET    /v1/jobs/{id}          job doc (state, progress, spans, stats)
//	DELETE /v1/jobs/{id}          cancel -> job doc
//	GET    /v1/jobs/{id}/result   octet-stream sorted records

// JobRequest is the POST /v1/jobs body.
type JobRequest struct {
	// Type is the job type; "sortfile" is the only one today.
	Type string `json:"type"`
	// Dataset is the input dataset's ID from POST /v1/datasets.
	Dataset string `json:"dataset"`
}

// jobRoutes registers the dataset/jobs endpoints on the mux.
func (s *Server) jobRoutes() {
	s.mux.HandleFunc("POST /v1/datasets", s.rawRoute("datasets", s.handleDatasetCreate))
	s.mux.HandleFunc("GET /v1/datasets/{id}", s.route("datasets", s.handleDatasetGet))
	s.mux.HandleFunc("DELETE /v1/datasets/{id}", s.route("datasets", s.handleDatasetDelete))
	s.mux.HandleFunc("POST /v1/jobs", s.route("jobs", s.handleJobSubmit))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.route("jobs", s.handleJobGet))
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.route("jobs", s.handleJobCancel))
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.rawRoute("jobs", s.handleJobResult))
}

// rawRoute is the route() envelope for endpoints that stream raw bytes
// instead of JSON bodies: request-ID assignment, per-endpoint metrics and
// the optional access log, but no body cap (dataset uploads are exactly
// the requests MaxBodyBytes exists to keep off the JSON path) and no
// response encoding — the handler writes its own response and returns
// the status it sent.
func (s *Server) rawRoute(endpoint string, h func(http.ResponseWriter, *http.Request) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = nextRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		status := h(w, r)
		total := time.Since(start)
		s.m.observe(endpoint, status, total)
		if s.cfg.AccessLog {
			log.Print("server: id=", id, " endpoint=", endpoint,
				" status=", status, " total_ms=", total.Milliseconds())
		}
	}
}

// writeJSON emits a JSON response from a rawRoute handler.
func writeJSON(w http.ResponseWriter, status int, body any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
	return status
}

// jobsErrStatus maps internal/jobs errors onto HTTP statuses.
func jobsErrStatus(err error) int {
	switch {
	case errors.Is(err, jobs.ErrUnknownJob), errors.Is(err, jobs.ErrUnknownDataset):
		return http.StatusNotFound
	case errors.Is(err, jobs.ErrBadType), errors.Is(err, jobs.ErrBadLength):
		return http.StatusBadRequest
	case errors.Is(err, jobs.ErrTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, jobs.ErrNotDone), errors.Is(err, jobs.ErrTerminal):
		return http.StatusConflict
	case errors.Is(err, jobs.ErrBusy), errors.Is(err, jobs.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleDatasetCreate(w http.ResponseWriter, r *http.Request) int {
	if s.draining.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(s.ctrl.RetryAfterSeconds()))
		// Shedding without touching the upload kills the keep-alive
		// connection; drain a bounded slice of it first (same policy as
		// the route() envelope's error path).
		drainBody(r)
		return writeJSON(w, http.StatusServiceUnavailable, errBody(ErrDraining))
	}
	ds, err := s.jobs.CreateDataset(r.Body)
	if err != nil {
		drainBody(r)
		return writeJSON(w, jobsErrStatus(err), errBody(err))
	}
	return writeJSON(w, http.StatusCreated, ds)
}

func (s *Server) handleDatasetGet(r *http.Request) (int, any) {
	ds, ok := s.jobs.GetDataset(r.PathValue("id"))
	if !ok {
		return http.StatusNotFound, errBody(jobs.ErrUnknownDataset)
	}
	return http.StatusOK, ds
}

func (s *Server) handleDatasetDelete(r *http.Request) (int, any) {
	if err := s.jobs.DeleteDataset(r.PathValue("id")); err != nil {
		return jobsErrStatus(err), errBody(err)
	}
	return http.StatusOK, struct{}{}
}

// handleJobSubmit admits a job through the same two-layer gate as
// synchronous requests: drain check, adaptive overload controller (429 —
// a multi-pass external sort is exactly the elephant the controller's
// element backlog should know about), then the manager's own bounded
// queue (503).
func (s *Server) handleJobSubmit(r *http.Request) (int, any) {
	if status, err := s.admit(); status != 0 {
		return status, errBody(err)
	}
	var req JobRequest
	if status, err := decode(r, &req); err != nil {
		return status, errBody(err)
	}
	v, err := s.jobs.Submit(req.Type, req.Dataset)
	if err != nil {
		if errors.Is(err, jobs.ErrBusy) {
			s.m.shed.Add(1)
		}
		return jobsErrStatus(err), errBody(err)
	}
	return http.StatusAccepted, v
}

func (s *Server) handleJobGet(r *http.Request) (int, any) {
	v, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		return http.StatusNotFound, errBody(jobs.ErrUnknownJob)
	}
	return http.StatusOK, v
}

func (s *Server) handleJobCancel(r *http.Request) (int, any) {
	id := r.PathValue("id")
	if err := s.jobs.Cancel(id); err != nil {
		return jobsErrStatus(err), errBody(err)
	}
	v, _ := s.jobs.Get(id)
	return http.StatusOK, v
}

// handleJobResult streams a finished job's sorted records. The 200 is
// committed before the copy starts, so a stream that dies mid-body
// cannot change the client-visible status — but it must not be
// *recorded* as a success either: aborts are logged, counted in
// jobs_result_aborts_total, and classified for metrics as 499 (client
// went away) or 500 (the spill file failed under us).
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) int {
	id := r.PathValue("id")
	rc, size, err := s.jobs.OpenResult(id)
	if err != nil {
		return writeJSON(w, jobsErrStatus(err), errBody(err))
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.WriteHeader(http.StatusOK)
	n, err := io.Copy(w, rc)
	if err == nil && n == size {
		return http.StatusOK
	}
	s.jobs.NoteResultAbort()
	if r.Context().Err() != nil {
		// The write failed because the client disconnected mid-download —
		// their choice, not a server failure.
		log.Printf("server: job %s result aborted by client after %d/%d bytes", id, n, size)
		return StatusClientClosedRequest
	}
	// Either the source read failed or it ended short of the size the
	// job recorded — both mean the stored result is suspect.
	log.Printf("server: job %s result stream failed after %d/%d bytes: %v", id, n, size, err)
	return http.StatusInternalServerError
}
