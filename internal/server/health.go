package server

import (
	"encoding/json"
	"net/http"

	"mergepath/internal/jobs"
	"mergepath/internal/overload"
)

// Health is the machine-readable GET /healthz document. It is the wire
// contract between a mergepathd node and the mergerouter routing tier:
// the router polls it to learn each backend's overload state, element
// backlog, queue depth and drain rate, and routes (or diverts) traffic
// on those fields instead of guessing from error rates. The same
// overload snapshot backs /metrics and /metrics/prom, so all three
// surfaces always agree.
type Health struct {
	// Status is "ok" while healthy, the overload state name
	// ("degraded", "shedding") while the controller is escalated, and
	// "draining" during graceful shutdown (the only 503 case).
	Status string `json:"status"`
	// Role identifies the process class answering: "node" for
	// mergepathd. mergerouter reports "router" on its own /healthz, so
	// tooling (mergeload's bench tag, dashboards) can tell the tiers
	// apart without out-of-band config.
	Role string `json:"role"`
	// Workers is the node's fixed worker-pool size.
	Workers int `json:"workers"`
	// QueueDepth is the number of jobs currently in the admission
	// queue — the router's cheapest instantaneous load signal.
	QueueDepth int `json:"queue_depth"`
	// QueueCapacity is the admission queue bound; a full queue sheds
	// with 503.
	QueueCapacity int `json:"queue_capacity"`
	// Formats lists the request/response body media types the /v1
	// endpoints accept. The mergerouter tier reads it to decide whether
	// scatter sub-requests to this backend may use the binary frame —
	// capability discovery instead of fleet-wide config, so a mixed-
	// version fleet mid-rollout degrades to JSON per backend.
	Formats []string `json:"formats,omitempty"`
	// Draining is true during graceful shutdown; new work is refused.
	Draining bool `json:"draining,omitempty"`
	// Overload is the adaptive overload controller's snapshot: state
	// machine position, element backlog, EWMA drain rate and the
	// computed Retry-After. Nil only while draining.
	Overload *overload.Snapshot `json:"overload,omitempty"`
	// Jobs is the asynchronous jobs subsystem's snapshot — running and
	// pending counts are the router-relevant fields (a node grinding
	// through a big external sort is busier than its request queue
	// shows). Nil only while draining.
	Jobs *jobs.Snapshot `json:"jobs,omitempty"`
	// KWay reports the node's k-way merge strategy knob and co-rank
	// window balance (docs/KWAY.md) — the same numbers as /metrics.
	// Nil only while draining.
	KWay *KWaySnapshot `json:"kway,omitempty"`
}

// handleHealthz reports liveness plus the overload state machine.
// Draining is the only 503: degraded and shedding still answer 200 —
// the process is healthy, it is the offered load that isn't — with the
// state in the body so orchestrators (and the mergerouter tier) can
// route on it without killing the instance.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	h := Health{
		Role:          "node",
		Workers:       s.cfg.Workers,
		QueueDepth:    s.pool.depth(),
		QueueCapacity: s.cfg.QueueDepth,
		Formats:       wireFormats(),
	}
	if s.draining.Load() {
		h.Status = "draining"
		h.Draining = true
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(h)
		return
	}
	ov := s.ctrl.SnapshotNow()
	h.Status = "ok"
	if ov.State != overload.Healthy.String() {
		h.Status = ov.State
	}
	h.Overload = &ov
	js := s.jobs.Snapshot()
	h.Jobs = &js
	kw := s.m.kwaySnapshot()
	h.KWay = &kw
	_ = json.NewEncoder(w).Encode(h)
}
