package server

import (
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"mergepath/internal/overload"
	"mergepath/internal/promtext"
)

// Prometheus text exposition format 0.0.4 line grammar, as accepted by
// real scrapers: sample lines and # HELP / # TYPE comments.
var (
	promSampleRe = regexp.MustCompile(
		`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|NaN|[+-]Inf)$`)
	promHelpRe = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	promTypeRe = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$`)
)

// scrapeProm fetches /metrics/prom, validates every line against the
// exposition grammar (including HELP/TYPE-before-first-sample ordering),
// and returns the samples keyed by "name{labels}".
func scrapeProm(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics/prom: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != promtext.ContentType {
		t.Fatalf("content type %q, want %q", ct, promtext.ContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	if !strings.HasSuffix(text, "\n") {
		t.Error("exposition must end with a newline")
	}

	samples := make(map[string]float64)
	typed := make(map[string]string) // metric name -> declared type
	helped := make(map[string]bool)
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if m := promHelpRe.FindStringSubmatch(line); m != nil {
				if helped[m[1]] {
					t.Errorf("line %d: duplicate HELP for %s", i+1, m[1])
				}
				helped[m[1]] = true
				continue
			}
			if m := promTypeRe.FindStringSubmatch(line); m != nil {
				if _, dup := typed[m[1]]; dup {
					t.Errorf("line %d: duplicate TYPE for %s", i+1, m[1])
				}
				typed[m[1]] = m[2]
				continue
			}
			t.Errorf("line %d: malformed comment: %q", i+1, line)
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d: not a valid sample: %q", i+1, line)
			continue
		}
		name, labels, valText := m[1], m[2], m[4]
		// Summary _sum/_count series hang off the summary's base name.
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if _, ok := typed[base]; !ok {
			base = name
		}
		if !helped[base] || typed[base] == "" {
			t.Errorf("line %d: sample %s before its HELP/TYPE header", i+1, name)
		}
		if !strings.HasPrefix(name, "mergepathd_") {
			t.Errorf("line %d: metric %s missing mergepathd_ namespace", i+1, name)
		}
		v, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			t.Errorf("line %d: bad value %q: %v", i+1, valText, err)
			continue
		}
		key := name + labels
		if _, dup := samples[key]; dup {
			t.Errorf("line %d: duplicate series %s", i+1, key)
		}
		samples[key] = v
	}
	return samples
}

// sample fetches one series or fails the test.
func sample(t *testing.T, samples map[string]float64, key string) float64 {
	t.Helper()
	v, ok := samples[key]
	if !ok {
		t.Fatalf("series %s missing from exposition", key)
	}
	return v
}

func TestMetricsPromFormatAndAgreement(t *testing.T) {
	// Exercise both execution paths plus an error before scraping:
	// coalesced small merges, an uncoalesced whole-pool merge, a sort,
	// and a 400. The generous sojourn target keeps a scheduler hiccup on
	// a loaded CI machine from tripping the overload controller — this
	// test is about surface agreement, not the state machine.
	s, ts := newTestServer(t, Config{CoalesceLimit: 64, Workers: 4,
		Overload: overload.Config{Target: time.Second}})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 4; i++ {
		a, b := sortedInt64(rng, 20), sortedInt64(rng, 20)
		if code := post(t, ts, "/v1/merge", MergeRequest{A: a, B: b}, nil); code != http.StatusOK {
			t.Fatalf("small merge: status %d", code)
		}
	}
	big := sortedInt64(rng, 4000)
	if code := post(t, ts, "/v1/merge", MergeRequest{A: big, B: big}, nil); code != http.StatusOK {
		t.Fatalf("large merge: status %d", code)
	}
	if code := post(t, ts, "/v1/sort", SortRequest{Data: []int64{5, 2, 9, 1}}, nil); code != http.StatusOK {
		t.Fatalf("sort: status %d", code)
	}
	post(t, ts, "/v1/merge", MergeRequest{A: []int64{3, 1}}, nil) // 400

	// No /v1 traffic between the two scrapes, and the metrics endpoints
	// themselves mutate nothing, so the surfaces must agree exactly.
	samples := scrapeProm(t, ts)
	snap := s.Snapshot()

	agree := func(key string, want float64) {
		t.Helper()
		if got := sample(t, samples, key); got != want {
			t.Errorf("%s = %v, prom/JSON disagree (JSON says %v)", key, got, want)
		}
	}
	for name, e := range snap.Endpoints {
		lbl := `{endpoint="` + name + `"}`
		agree("mergepathd_requests_total"+lbl, float64(e.Count))
		agree(`mergepathd_request_errors_total{endpoint="`+name+`",class="4xx"}`, float64(e.Err4xx))
		agree(`mergepathd_request_errors_total{endpoint="`+name+`",class="5xx"}`, float64(e.Err5xx))
		agree("mergepathd_request_latency_seconds_count"+lbl, float64(e.Latency.Count))
		sum := sample(t, samples, "mergepathd_request_latency_seconds_sum"+lbl)
		if want := e.Latency.SumMS / 1e3; math.Abs(sum-want) > 1e-9 {
			t.Errorf("latency sum %s: prom %v s vs JSON %v ms", name, sum, e.Latency.SumMS)
		}
	}
	agree("mergepathd_queue_shed_total", float64(snap.Queue.Shed))
	agree("mergepathd_throttled_total", float64(snap.Queue.Throttled))
	agree("mergepathd_queue_capacity", float64(snap.Queue.Capacity))
	agree("mergepathd_batch_rounds_total", float64(snap.Pool.BatchRounds))
	agree("mergepathd_batch_pairs_total", float64(snap.Pool.BatchPairs))
	agree("mergepathd_run_rounds_total", float64(snap.Pool.RunRounds))
	agree("mergepathd_pool_workers", float64(snap.Pool.Workers))
	agree("mergepathd_round_imbalance", snap.Pool.LastRound.Imbalance)
	agree("mergepathd_round_imbalance_max", snap.Pool.ImbalanceMax)
	agree("mergepathd_round_workers", float64(snap.Pool.LastRound.Workers))
	for _, stage := range StageNames() {
		h, ok := snap.Stages[stage]
		if !ok {
			t.Errorf("JSON snapshot missing stage %q", stage)
			continue
		}
		agree(`mergepathd_stage_latency_seconds_count{stage="`+stage+`"}`, float64(h.Count))
	}

	// Overload controller: the state machine must read identically on all
	// three surfaces (prom here, the JSON snapshot, and /healthz below).
	// Interval-scoped signals (sojourn min) can roll over between scrapes,
	// so the agreement set is the stable-by-construction fields.
	ov := snap.Overload
	if ov.State != "healthy" {
		t.Errorf("overload state %q after light traffic, want healthy", ov.State)
	}
	for _, st := range []string{"healthy", "degraded", "shedding"} {
		want := 0.0
		if st == ov.State {
			want = 1
		}
		agree(`mergepathd_overload_state{state="`+st+`"}`, want)
	}
	agree("mergepathd_overload_state_code", float64(ov.StateCode))
	agree("mergepathd_overload_target_seconds", ov.TargetMS/1e3)
	agree("mergepathd_overload_backlog_elements", float64(ov.BacklogElements))
	agree("mergepathd_overload_drain_elements_per_second", ov.DrainElemsPerSec)
	agree("mergepathd_overload_retry_after_seconds", float64(ov.RetryAfterSeconds))
	agree("mergepathd_overload_shed_total", float64(ov.ShedTotal))
	agree(`mergepathd_overload_transitions_total{to="degraded"}`, float64(ov.TransitionsDegraded))
	agree(`mergepathd_overload_transitions_total{to="shedding"}`, float64(ov.TransitionsShedding))
	agree(`mergepathd_overload_transitions_total{to="healthy"}`, float64(ov.TransitionsHealthy))
	if sample(t, samples, "mergepathd_overload_drain_elements_per_second") <= 0 {
		t.Error("drain rate still zero after completed rounds")
	}

	// /healthz reports the same state machine.
	hres, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	var health struct {
		Status   string `json:"status"`
		Overload struct {
			State string `json:"state"`
		} `json:"overload"`
	}
	if err := json.NewDecoder(hres.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Overload.State != ov.State {
		t.Errorf("healthz status=%q overload.state=%q, want ok/%s", health.Status, health.Overload.State, ov.State)
	}

	// The traffic above must actually have moved the needles.
	if sample(t, samples, `mergepathd_requests_total{endpoint="merge"}`) != 6 {
		t.Errorf("merge requests_total = %v, want 6",
			samples[`mergepathd_requests_total{endpoint="merge"}`])
	}
	if sample(t, samples, "mergepathd_run_rounds_total") < 1 {
		t.Error("large merge did not record a run round")
	}
	if sample(t, samples, `mergepathd_stage_latency_seconds_count{stage="execute"}`) == 0 {
		t.Error("execute stage histogram never observed")
	}
}

func TestPromRenderEmptyRegistry(t *testing.T) {
	// A freshly started daemon must still expose a parseable document
	// (scrapers arrive before traffic does).
	_, ts := newTestServer(t, Config{})
	samples := scrapeProm(t, ts)
	if sample(t, samples, `mergepathd_requests_total{endpoint="merge"}`) != 0 {
		t.Error("fresh registry should report zero requests")
	}
	if sample(t, samples, "mergepathd_round_imbalance") != 0 {
		t.Error("no rounds ran; imbalance gauge should be 0")
	}
}
