package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"mergepath/internal/batch"
	"mergepath/internal/core"
	"mergepath/internal/overload"
)

// Admission-control and lifecycle errors, mapped to HTTP codes by the
// handlers.
var (
	// ErrQueueFull means the bounded admission queue rejected the job —
	// the daemon sheds load with 503 instead of queueing unboundedly.
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrDraining means the daemon is shutting down and admits no new work.
	ErrDraining = errors.New("server: draining, not accepting work")
	// ErrDeadline means the job's deadline expired before it finished.
	ErrDeadline = errors.New("server: deadline exceeded before execution")
	// ErrCanceled means the client abandoned the request (disconnect or
	// explicit cancel) before it finished. Distinct from ErrDeadline: a
	// cancel is the client's choice, not a server timeout, so it maps to
	// the 499 class and its own counter, never to 504/timeouts.
	ErrCanceled = errors.New("server: request canceled by client")
	// ErrOverloaded means the CoDel admission controller is shedding: queue
	// sojourn time has exceeded its target long enough that brownout alone
	// cannot keep up. Maps to 429 with a computed Retry-After, distinct
	// from ErrQueueFull (503) which is the hard capacity backstop.
	ErrOverloaded = errors.New("server: overloaded, shedding new work")
)

// PanicError is a panic recovered inside a round, converted to a per-job
// error so one poisoned request cannot take down the dispatcher or its
// round-mates. The handlers map it to 500.
type PanicError struct {
	Value any // the recovered panic value
}

// Error renders the recovered panic value.
func (e *PanicError) Error() string { return fmt.Sprintf("server: round panicked: %v", e.Value) }

// job is one unit of admitted work. Exactly one of pair/run is set:
// pair jobs are small merges the dispatcher coalesces into one globally
// load-balanced batch.Merge round; run jobs (large merges, sorts, k-way
// merges, set operations) take the whole pool for one round. run
// receives the request context and must observe its cancellation at
// chunk boundaries; a non-nil return fails the job (ctx errors are
// normalized to ErrCanceled/ErrDeadline, anything else maps to 500).
type job struct {
	pair      *batch.Pair[int64]
	run       func(ctx context.Context, workers int) error
	fault     func() error // optional injection hook (internal/fault); runs inside recovery
	ctx       context.Context
	deadline  time.Time
	done      chan error // buffered(1): the dispatcher never blocks on it
	trace     *Trace     // nil-safe span sink; nil for untraced work
	submitted time.Time  // when the job entered the admission queue
	parked    time.Time  // when a pair job entered the pending buffer
	elems     int        // output elements this job represents (overload backlog accounting)
}

// expired reports whether the job's deadline has passed at now.
func (j *job) expired(now time.Time) bool {
	return !j.deadline.IsZero() && now.After(j.deadline)
}

// canceled reports whether the request context was canceled by the
// client (as opposed to expiring, which expired covers).
func (j *job) canceled() bool {
	return j.ctx != nil && context.Cause(j.ctx) == context.Canceled
}

// pool multiplexes all in-flight requests onto one fixed set of workers.
//
// Architecture: a bounded queue (admission control) feeds a single
// dispatcher goroutine that executes *rounds*. Small merges accumulate
// for up to cfg.BatchWindow (or cfg.BatchElements output elements) and
// then run as ONE batch.MergeWithLoads round — p workers split the
// combined output of every coalesced request evenly, so a burst of skewed
// little requests cannot starve any worker (the paper's load-balance
// argument applied across requests instead of within one). Everything
// else runs as its own round via the job's run closure with all workers.
// One round executes at a time; each round engages every worker; the
// goroutine count is bounded by workers+1 regardless of offered load.
//
// Lifecycle hardening: every round executes behind panic recovery (a
// request-induced panic becomes that job's error, the dispatcher and all
// other requests live on), jobs whose deadline passed or whose client
// went away are dropped at dequeue AND at batch-flush time, and run
// closures observe request-context cancellation at chunk boundaries so
// an abandoned 100M-element round frees the pool early.
type pool struct {
	workers int
	queue   chan *job
	// mu serializes admissions against shutdown: submit holds the read
	// side while sending, close holds the write side while setting
	// draining and closing the queue, so a send can never hit a closed
	// channel.
	mu       sync.RWMutex
	draining bool
	stopped  chan struct{} // closed when the dispatcher exits

	window       time.Duration
	batchElems   int
	m            *Metrics
	ctrl         *overload.Controller // adaptive admission + brownout; never nil
	busyNanos    atomic.Int64         // time spent executing rounds
	queueDepth   atomic.Int64
	panicLogs    atomic.Uint64 // recovered panics logged (stacks rate-limited)
	flushPending func([]*job)  // test hook; nil in production
}

func newPool(workers, queueDepth int, window time.Duration, batchElems int, m *Metrics, ctrl *overload.Controller) *pool {
	if ctrl == nil {
		ctrl = overload.New(overload.Config{})
	}
	p := &pool{
		workers:    workers,
		queue:      make(chan *job, queueDepth),
		stopped:    make(chan struct{}),
		window:     window,
		batchElems: batchElems,
		m:          m,
		ctrl:       ctrl,
	}
	go p.dispatch()
	return p
}

// effectiveWindow is the coalesce window under brownout: when the
// overload controller has left Healthy, shrink the window to a quarter
// so parked pairs spend less time accumulating sojourn before their
// round runs. Trades batching efficiency for latency exactly when
// latency is the scarce resource.
func (p *pool) effectiveWindow() time.Duration {
	if p.ctrl.State() != overload.Healthy {
		if w := p.window / 4; w > 0 {
			return w
		}
	}
	return p.window
}

// effectiveWorkers is the per-round parallelism under brownout: when
// degraded or shedding, cap each round at half the pool so a single
// huge run job cannot monopolize every worker while the queue backs up.
// The paper's per-worker cost bound (Theorem 5) means halving workers
// at most doubles one round's latency — a predictable trade.
func (p *pool) effectiveWorkers() int {
	if p.ctrl.State() != overload.Healthy {
		if w := p.workers / 2; w >= 1 {
			return w
		}
		return 1
	}
	return p.workers
}

// finish completes a job: releases its elements from the overload
// backlog, then delivers err on the (buffered) done channel. Every
// completion path must go through here exactly once or the controller's
// backlog drifts.
func (p *pool) finish(j *job, err error) {
	p.ctrl.Done(j.elems)
	j.done <- err
}

// submit admits a job or rejects it immediately (never blocks): the
// admission queue is a fixed-capacity channel and a full channel is a
// shed, not a wait.
func (p *pool) submit(j *job) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.draining {
		return ErrDraining
	}
	// Enqueue before the channel send: once the job is in the queue the
	// dispatcher may finish it (calling Done) at any moment, and the
	// backlog must never go transiently negative.
	p.ctrl.Enqueue(j.elems)
	select {
	case p.queue <- j:
		p.queueDepth.Add(1)
		return nil
	default:
		p.ctrl.Done(j.elems) // roll back: the job was never admitted
		return ErrQueueFull
	}
}

// do submits the job and waits for completion, ctx expiry, or client
// cancellation. An abandoned job does not run to completion behind the
// client's back: the dispatcher skips jobs whose deadline passed or
// whose ctx was canceled, drops expired coalesced pairs at flush time,
// and run closures observe ctx at chunk boundaries mid-round.
func (p *pool) do(ctx context.Context, j *job) error {
	j.ctx = ctx
	if dl, ok := ctx.Deadline(); ok {
		j.deadline = dl
	}
	j.submitted = time.Now()
	if err := p.submit(j); err != nil {
		return err
	}
	select {
	case err := <-j.done:
		return normalizeCtxErr(err)
	case <-ctx.Done():
		if context.Cause(ctx) == context.Canceled {
			return ErrCanceled
		}
		return ErrDeadline
	}
}

// normalizeCtxErr maps raw context errors escaping a run closure onto
// the pool's error vocabulary, so handlers see one canonical error per
// outcome no matter which side (waiter or dispatcher) observed it first.
func normalizeCtxErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.Canceled):
		return ErrCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return ErrDeadline
	default:
		return err
	}
}

// dispatch is the round loop. It owns `pending` (coalesced small merges)
// entirely — no other goroutine touches it — so the only synchronization
// in the whole engine is the queue channel and the per-job done channels.
func (p *pool) dispatch() {
	defer close(p.stopped)
	var (
		pending      []*job
		pendingElems int
		timer        *time.Timer
		timerC       <-chan time.Time
	)
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
			timerC = nil
		}
	}
	flush := func() {
		stopTimer()
		if len(pending) == 0 {
			return
		}
		p.runBatch(pending)
		pending = pending[:0]
		pendingElems = 0
	}
	handle := func(j *job) {
		p.queueDepth.Add(-1)
		now := time.Now()
		p.ctrl.ObserveSojourn(now.Sub(j.submitted))
		j.trace.span(StageQueueWait, j.submitted)
		// Expired or abandoned while queued: drop it unexecuted. The
		// handler (or its abandoned ctx wait) accounts the timeout or
		// cancel; doing it here too would double count.
		if j.expired(now) {
			p.finish(j, ErrDeadline)
			return
		}
		if j.canceled() {
			p.finish(j, ErrCanceled)
			return
		}
		if j.pair != nil {
			j.parked = time.Now()
			pending = append(pending, j)
			pendingElems += len(j.pair.Out)
			if pendingElems >= p.batchElems {
				flush()
			} else if timer == nil {
				timer = time.NewTimer(p.effectiveWindow())
				timerC = timer.C
			}
			return
		}
		// A run job forms its own round. Flush first so earlier small
		// requests aren't held hostage behind a big one.
		flush()
		start := time.Now()
		err := p.runRound(j)
		took := time.Since(start)
		p.busyNanos.Add(took.Nanoseconds())
		if err == nil {
			p.ctrl.ObserveDrain(j.elems, took)
		}
		p.finish(j, err)
	}
	for {
		select {
		case j, ok := <-p.queue:
			if !ok {
				flush()
				return
			}
			handle(j)
		case <-timerC:
			flush()
		}
	}
}

// runRound executes one run job with panic isolation: a panic anywhere
// inside the fault hook or the run closure is recovered into that job's
// error, stack-logged, and counted — the dispatcher keeps going.
func (p *pool) runRound(j *job) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = p.recovered(v, j.trace.ID())
		}
	}()
	if j.fault != nil {
		if ferr := j.fault(); ferr != nil {
			return ferr
		}
	}
	ctx := j.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return j.run(ctx, p.effectiveWorkers())
}

// panicStackLogLimit caps how many recovered panics get a full stack in
// the log: a panic storm (adversarial traffic, chaos mode) must not
// flood the log at one stack per request. The count keeps going; the
// stacks stop.
const panicStackLogLimit = 5

// recovered converts a round panic into a job error: counted, stack
// logged (rate-limited), dispatcher alive. reqID ties the log line to
// the offending request's trace ("" for shared batch rounds, where no
// single request owns the round yet).
func (p *pool) recovered(v any, reqID string) error {
	if p.m != nil {
		p.m.panics.Add(1)
	}
	if reqID == "" {
		reqID = "-"
	}
	if n := p.panicLogs.Add(1); n <= panicStackLogLimit {
		log.Printf("server: recovered panic in round (req=%s): %v\n%s", reqID, v, debug.Stack())
	} else {
		log.Printf("server: recovered panic in round (req=%s): %v (stacks suppressed after %d)", reqID, v, panicStackLogLimit)
	}
	return &PanicError{Value: v}
}

// runBatch executes one coalesced round: every still-live pending pair
// merged by one globally balanced batch round, all workers splitting the
// combined output evenly.
//
// Lifecycle at flush time:
//   - pairs whose deadline passed while parked in pending are dropped and
//     counted as shed-at-flush — the client already got its 504, merging
//     anyway would be silent wasted work;
//   - pairs whose client canceled are dropped the same way;
//   - per-pair fault hooks run under per-job recovery, so an injected
//     panic or error fails only its own job;
//   - the batch round itself runs under recovery; if it panics, the
//     round is quarantined — each surviving pair re-runs alone under its
//     own recovery, so exactly the poisoned pair fails and its
//     round-mates still get correct 200s.
func (p *pool) runBatch(jobs []*job) {
	if p.flushPending != nil {
		p.flushPending(jobs)
	}
	now := time.Now()
	live := make([]*job, 0, len(jobs))
	for _, j := range jobs {
		j.trace.span(StageCoalesceWait, j.parked)
		switch {
		case j.expired(now):
			if p.m != nil {
				p.m.shedFlush.Add(1)
			}
			p.finish(j, ErrDeadline)
		case j.canceled():
			if p.m != nil {
				p.m.shedFlush.Add(1)
			}
			p.finish(j, ErrCanceled)
		default:
			if err := p.runPairFault(j); err != nil {
				p.finish(j, err)
				continue
			}
			live = append(live, j)
		}
	}
	if len(live) == 0 {
		return
	}
	pairs := make([]batch.Pair[int64], len(live))
	elems := 0
	for i, j := range live {
		pairs[i] = *j.pair
		elems += len(j.pair.Out)
	}
	start := time.Now()
	loads, err := p.safeBatchMerge(pairs)
	if err != nil {
		// Quarantine: one pair poisoned the round. Re-merge each pair
		// individually, each under its own recovery, so only the
		// culprit's job fails.
		for _, j := range live {
			p.finish(j, p.safeMergeOne(j))
		}
		p.busyNanos.Add(time.Since(start).Nanoseconds())
		return
	}
	took := time.Since(start)
	p.busyNanos.Add(took.Nanoseconds())
	p.ctrl.ObserveDrain(elems, took)
	if p.m != nil {
		p.m.recordBatchRound(len(pairs), elems, loads)
	}
	// Round-level spans: the coalesced round is shared, so every member
	// request gets the round's cumulative worker time for the partition
	// (diagonal + offset searches) and merge stages.
	var searchMS, mergeMS float64
	for _, l := range loads {
		searchMS += l.SearchMS
		mergeMS += l.MergeMS
	}
	searchDur := time.Duration(searchMS * float64(time.Millisecond))
	mergeDur := time.Duration(mergeMS * float64(time.Millisecond))
	for _, j := range live {
		j.trace.add(StagePartition, start, searchDur)
		j.trace.add(StageMerge, start, mergeDur)
		p.finish(j, nil)
	}
}

// runPairFault runs a pair job's fault hook (if any) with panic
// isolation; the returned error fails just that job.
func (p *pool) runPairFault(j *job) (err error) {
	if j.fault == nil {
		return nil
	}
	defer func() {
		if v := recover(); v != nil {
			err = p.recovered(v, j.trace.ID())
		}
	}()
	return j.fault()
}

// safeBatchMerge is batch.MergeWithLoads behind panic recovery.
func (p *pool) safeBatchMerge(pairs []batch.Pair[int64]) (loads []batch.WorkerLoad, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = p.recovered(v, "")
		}
	}()
	return batch.MergeWithLoads(pairs, p.effectiveWorkers()), nil
}

// safeMergeOne re-merges a single quarantined pair sequentially behind
// panic recovery. Pairs are small by construction (they passed the
// coalesce limit), so losing parallelism on this salvage path is cheap.
func (p *pool) safeMergeOne(j *job) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = p.recovered(v, j.trace.ID())
		}
	}()
	core.Merge(j.pair.A, j.pair.B, j.pair.Out)
	return nil
}

// depth reports the current admission-queue depth.
func (p *pool) depth() int { return int(p.queueDepth.Load()) }

// close stops admissions, drains every queued job, and waits (up to ctx)
// for the dispatcher to finish in-flight rounds. Safe to call more than
// once.
func (p *pool) close(ctx context.Context) error {
	p.mu.Lock()
	already := p.draining
	p.draining = true
	if !already {
		close(p.queue) // no submit can be in flight: they hold mu.RLock
	}
	p.mu.Unlock()
	select {
	case <-p.stopped:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
