package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"mergepath/internal/batch"
)

// Admission-control errors, mapped to HTTP codes by the handlers.
var (
	// ErrQueueFull means the bounded admission queue rejected the job —
	// the daemon sheds load with 503 instead of queueing unboundedly.
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrDraining means the daemon is shutting down and admits no new work.
	ErrDraining = errors.New("server: draining, not accepting work")
	// ErrDeadline means the job's deadline expired before it ran.
	ErrDeadline = errors.New("server: deadline exceeded before execution")
)

// job is one unit of admitted work. Exactly one of pair/run is set:
// pair jobs are small merges the dispatcher coalesces into one globally
// load-balanced batch.Merge round; run jobs (large merges, sorts, k-way
// merges, set operations) take the whole pool for one round.
type job struct {
	pair     *batch.Pair[int64]
	run      func(workers int)
	deadline time.Time
	done     chan error // buffered(1): the dispatcher never blocks on it
}

// pool multiplexes all in-flight requests onto one fixed set of workers.
//
// Architecture: a bounded queue (admission control) feeds a single
// dispatcher goroutine that executes *rounds*. Small merges accumulate
// for up to cfg.BatchWindow (or cfg.BatchElements output elements) and
// then run as ONE batch.MergeWithLoads round — p workers split the
// combined output of every coalesced request evenly, so a burst of skewed
// little requests cannot starve any worker (the paper's load-balance
// argument applied across requests instead of within one). Everything
// else runs as its own round via the job's run closure with all workers.
// One round executes at a time; each round engages every worker; the
// goroutine count is bounded by workers+1 regardless of offered load.
type pool struct {
	workers int
	queue   chan *job
	// mu serializes admissions against shutdown: submit holds the read
	// side while sending, close holds the write side while setting
	// draining and closing the queue, so a send can never hit a closed
	// channel.
	mu       sync.RWMutex
	draining bool
	stopped  chan struct{} // closed when the dispatcher exits

	window       time.Duration
	batchElems   int
	m            *Metrics
	busyNanos    atomic.Int64 // time spent executing rounds
	queueDepth   atomic.Int64
	flushPending func([]*job) // test hook; nil in production
}

func newPool(workers, queueDepth int, window time.Duration, batchElems int, m *Metrics) *pool {
	p := &pool{
		workers:    workers,
		queue:      make(chan *job, queueDepth),
		stopped:    make(chan struct{}),
		window:     window,
		batchElems: batchElems,
		m:          m,
	}
	go p.dispatch()
	return p
}

// submit admits a job or rejects it immediately (never blocks): the
// admission queue is a fixed-capacity channel and a full channel is a
// shed, not a wait.
func (p *pool) submit(j *job) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.draining {
		return ErrDraining
	}
	select {
	case p.queue <- j:
		p.queueDepth.Add(1)
		return nil
	default:
		return ErrQueueFull
	}
}

// do submits the job and waits for completion or ctx expiry. On ctx
// expiry the job still executes eventually (its slice results are simply
// discarded); the dispatcher independently skips jobs whose deadline has
// already passed so abandoned work is usually dropped, not done.
func (p *pool) do(ctx context.Context, j *job) error {
	if dl, ok := ctx.Deadline(); ok {
		j.deadline = dl
	}
	if err := p.submit(j); err != nil {
		return err
	}
	select {
	case err := <-j.done:
		return err
	case <-ctx.Done():
		return ErrDeadline
	}
}

// dispatch is the round loop. It owns `pending` (coalesced small merges)
// entirely — no other goroutine touches it — so the only synchronization
// in the whole engine is the queue channel and the per-job done channels.
func (p *pool) dispatch() {
	defer close(p.stopped)
	var (
		pending      []*job
		pendingElems int
		timer        *time.Timer
		timerC       <-chan time.Time
	)
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
			timerC = nil
		}
	}
	flush := func() {
		stopTimer()
		if len(pending) == 0 {
			return
		}
		p.runBatch(pending)
		pending = pending[:0]
		pendingElems = 0
	}
	handle := func(j *job) {
		p.queueDepth.Add(-1)
		// Expired while queued: drop it unexecuted. The handler (or its
		// abandoned ctx wait) accounts the timeout; doing it here too
		// would double count.
		if !j.deadline.IsZero() && time.Now().After(j.deadline) {
			j.done <- ErrDeadline
			return
		}
		if j.pair != nil {
			pending = append(pending, j)
			pendingElems += len(j.pair.Out)
			if pendingElems >= p.batchElems {
				flush()
			} else if timer == nil {
				timer = time.NewTimer(p.window)
				timerC = timer.C
			}
			return
		}
		// A run job forms its own round. Flush first so earlier small
		// requests aren't held hostage behind a big one.
		flush()
		start := time.Now()
		j.run(p.workers)
		p.busyNanos.Add(time.Since(start).Nanoseconds())
		j.done <- nil
	}
	for {
		select {
		case j, ok := <-p.queue:
			if !ok {
				flush()
				return
			}
			handle(j)
		case <-timerC:
			flush()
		}
	}
}

// runBatch executes one coalesced round: every pending pair merged by one
// globally balanced batch round, all workers splitting the combined
// output evenly.
func (p *pool) runBatch(jobs []*job) {
	if p.flushPending != nil {
		p.flushPending(jobs)
	}
	pairs := make([]batch.Pair[int64], len(jobs))
	elems := 0
	for i, j := range jobs {
		pairs[i] = *j.pair
		elems += len(j.pair.Out)
	}
	start := time.Now()
	loads := batch.MergeWithLoads(pairs, p.workers)
	p.busyNanos.Add(time.Since(start).Nanoseconds())
	if p.m != nil {
		p.m.recordBatchRound(len(pairs), elems, loads)
	}
	for _, j := range jobs {
		j.done <- nil
	}
}

// depth reports the current admission-queue depth.
func (p *pool) depth() int { return int(p.queueDepth.Load()) }

// close stops admissions, drains every queued job, and waits (up to ctx)
// for the dispatcher to finish in-flight rounds. Safe to call more than
// once.
func (p *pool) close(ctx context.Context) error {
	p.mu.Lock()
	already := p.draining
	p.draining = true
	if !already {
		close(p.queue) // no submit can be in flight: they hold mu.RLock
	}
	p.mu.Unlock()
	select {
	case <-p.stopped:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
