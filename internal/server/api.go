package server

import (
	"fmt"
	"sort"
)

// Wire types for the JSON endpoints. Elements are int64 on the wire —
// the engine underneath is generic, but a service needs one concrete
// schema, and int64 survives JSON number round-trips for the full range
// of keys the examples (timestamps, doc ids, ranks) use in practice.

// MergeRequest is the body of POST /v1/merge: two sorted arrays.
type MergeRequest struct {
	A []int64 `json:"a"`
	B []int64 `json:"b"`
}

// MergeResponse carries the stable merge of A and B.
type MergeResponse struct {
	Result []int64 `json:"result"`
}

// SortRequest is the body of POST /v1/sort: one unsorted array.
type SortRequest struct {
	Data []int64 `json:"data"`
}

// SortResponse carries the sorted array.
type SortResponse struct {
	Result []int64 `json:"result"`
}

// MergeKRequest is the body of POST /v1/mergek: k sorted lists.
type MergeKRequest struct {
	Lists [][]int64 `json:"lists"`
}

// MergeKResponse carries the k-way merge (stable across lists).
type MergeKResponse struct {
	Result []int64 `json:"result"`
}

// SetOpsRequest is the body of POST /v1/setops. Op is one of "union",
// "intersect", "diff"; A and B must be sorted.
type SetOpsRequest struct {
	Op string  `json:"op"`
	A  []int64 `json:"a"`
	B  []int64 `json:"b"`
}

// SetOpsResponse carries the sorted multiset result.
type SetOpsResponse struct {
	Result []int64 `json:"result"`
}

// SelectRequest is the body of POST /v1/select: diagonal rank selection.
// K is an output rank in [0, len(A)+len(B)].
type SelectRequest struct {
	A []int64 `json:"a"`
	B []int64 `json:"b"`
	K int     `json:"k"`
}

// SelectResponse reports where the merge path crosses diagonal K: the
// first K elements of the merge are A[:ARank] and B[:BRank]. Kth is the
// K-th smallest of the union (the element at output rank K-1), present
// when K >= 1.
type SelectResponse struct {
	ARank int    `json:"a_rank"`
	BRank int    `json:"b_rank"`
	Kth   *int64 `json:"kth,omitempty"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

func checkSorted(name string, s []int64) error {
	if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] }) {
		return fmt.Errorf("input %q is not sorted", name)
	}
	return nil
}
