package server

import (
	"cmp"
	"fmt"
	"slices"

	"mergepath/internal/verify"
)

// Wire types for the JSON endpoints. Elements are int64 on the wire —
// the engine underneath is generic, but a service needs one concrete
// schema, and int64 survives JSON number round-trips for the full range
// of keys the examples (timestamps, doc ids, ranks) use in practice.

// MergeRequest is the body of POST /v1/merge: two sorted arrays.
type MergeRequest struct {
	A []int64 `json:"a"` // first sorted input
	B []int64 `json:"b"` // second sorted input
}

// MergeResponse carries the stable merge of A and B.
type MergeResponse struct {
	Result []int64 `json:"result"` // the merged array, len(A)+len(B) elements
}

// SortRequest is the body of POST /v1/sort: one unsorted array.
type SortRequest struct {
	Data []int64 `json:"data"` // elements to sort, any order
}

// SortResponse carries the sorted array.
type SortResponse struct {
	Result []int64 `json:"result"` // Data in ascending order
}

// MergeKRequest is the body of POST /v1/mergek: k sorted lists.
type MergeKRequest struct {
	Lists [][]int64 `json:"lists"` // each list individually sorted
}

// MergeKResponse carries the k-way merge (stable across lists).
type MergeKResponse struct {
	Result []int64 `json:"result"` // all lists merged into one sorted array
}

// SetOpsRequest is the body of POST /v1/setops. Op is one of "union",
// "intersect", "diff"; A and B must be sorted.
type SetOpsRequest struct {
	Op string  `json:"op"` // "union", "intersect" or "diff"
	A  []int64 `json:"a"`  // left sorted operand
	B  []int64 `json:"b"`  // right sorted operand
}

// SetOpsResponse carries the sorted multiset result.
type SetOpsResponse struct {
	Result []int64 `json:"result"` // sorted multiset result of Op
}

// SelectRequest is the body of POST /v1/select: diagonal rank selection.
// K is an output rank in [0, len(A)+len(B)].
type SelectRequest struct {
	A []int64 `json:"a"` // first sorted input
	B []int64 `json:"b"` // second sorted input
	K int     `json:"k"` // output rank to locate, in [0, len(A)+len(B)]
}

// SelectResponse reports where the merge path crosses diagonal K: the
// first K elements of the merge are A[:ARank] and B[:BRank]. Kth is the
// K-th smallest of the union (the element at output rank K-1), present
// when K >= 1.
type SelectResponse struct {
	ARank int    `json:"a_rank"`        // elements of A among the K smallest
	BRank int    `json:"b_rank"`        // elements of B among the K smallest
	Kth   *int64 `json:"kth,omitempty"` // the K-th smallest element; omitted when K == 0
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"` // human-readable failure description
}

// floatResult is the JSON shape of a float64 array response — the same
// {"result": ...} document as MergeResponse, float-typed. Float arrays
// only enter through the binary frame, but a client may still Accept
// JSON for the answer.
type floatResult struct {
	Result []float64 `json:"result"` // the computed array
}

// checkSorted validates ascending order. Generic because the binary
// frame carries float64 arrays over the same endpoints as JSON's int64.
// Float64 NaN handling is unspecified (docs/WIRE.md): a NaN-bearing
// array may be accepted or rejected, and merges over one have no
// defined order.
func checkSorted[T cmp.Ordered](name string, s []T) error {
	if !slices.IsSorted(s) {
		return fmt.Errorf("input %q is not sorted", name)
	}
	return nil
}

// checkSortedStrict is the -strict-input variant of checkSorted: it runs
// the verify package's scan and names the first violating index, so a
// client shipping a 10M-element array learns exactly where its sort
// invariant broke instead of re-deriving it locally.
func checkSortedStrict[T cmp.Ordered](name string, s []T) error {
	if i := verify.FirstUnsorted(s); i >= 0 {
		return fmt.Errorf("input %q is not sorted: element %d (%v) < element %d (%v)",
			name, i, s[i], i-1, s[i-1])
	}
	return nil
}
