package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"sort"
	"strings"
	"testing"
	"time"

	"mergepath/internal/jobs"
	"mergepath/internal/verify"
	"mergepath/internal/wire"
)

// doRaw posts body with explicit Content-Type/Accept headers and
// returns status, response Content-Type and the raw response bytes.
func doRaw(t *testing.T, ts *httptest.Server, path, ctype, accept string, body []byte) (int, string, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if ctype != "" {
		req.Header.Set("Content-Type", ctype)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), out
}

func sortedFloat64(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64() * 1e6
	}
	sort.Float64s(s)
	return s
}

// TestWireDifferential is the format-equivalence acceptance test: on
// /v1/merge, /v1/sort and /v1/mergek, across sizes straddling the
// coalesce limit, the four Content-Type × Accept combinations must
// agree byte-for-byte — both JSON replies identical, both binary
// replies identical, and the binary payload element-for-element equal
// to the JSON result.
func TestWireDifferential(t *testing.T) {
	_, ts := newTestServer(t, Config{CoalesceLimit: 1 << 10, MaxBodyBytes: 32 << 20})
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 17, 1000, 5000} {
		a := sortedInt64(rng, n)
		b := sortedInt64(rng, n/2+1)
		c := sortedInt64(rng, n/3+1)

		cases := []struct {
			path     string
			jsonBody any
			lists    [][]int64
			want     []int64 // reference result
		}{
			{"/v1/merge", MergeRequest{A: a, B: b}, [][]int64{a, b}, verify.ReferenceMerge(a, b)},
			{"/v1/sort", SortRequest{Data: append([]int64(nil), b...)}, [][]int64{b}, verify.ReferenceMerge(b, nil)},
			{"/v1/mergek", MergeKRequest{Lists: [][]int64{a, b, c}}, [][]int64{a, b, c},
				verify.ReferenceMerge(verify.ReferenceMerge(a, b), c)},
		}
		for _, tc := range cases {
			jsonBody, err := json.Marshal(tc.jsonBody)
			if err != nil {
				t.Fatal(err)
			}
			// /v1/sort's frame must carry the unsorted data, like its JSON
			// body does; the other endpoints' lists are already what the
			// JSON carries.
			binBody := wire.AppendInt64(nil, tc.lists...)

			st1, ct1, jFromJSON := doRaw(t, ts, tc.path, "application/json", "", jsonBody)
			st2, ct2, jFromBin := doRaw(t, ts, tc.path, wire.ContentType, "application/json", binBody)
			st3, ct3, bFromJSON := doRaw(t, ts, tc.path, "application/json", wire.ContentType, jsonBody)
			st4, ct4, bFromBin := doRaw(t, ts, tc.path, wire.ContentType, wire.ContentType, binBody)
			for i, st := range []int{st1, st2, st3, st4} {
				if st != http.StatusOK {
					t.Fatalf("%s n=%d combo %d: status %d", tc.path, n, i+1, st)
				}
			}
			if ct1 != "application/json" || ct2 != "application/json" {
				t.Fatalf("%s: JSON replies carried Content-Type %q / %q", tc.path, ct1, ct2)
			}
			if ct3 != wire.ContentType || ct4 != wire.ContentType {
				t.Fatalf("%s: binary replies carried Content-Type %q / %q", tc.path, ct3, ct4)
			}
			if !bytes.Equal(jFromJSON, jFromBin) {
				t.Fatalf("%s n=%d: JSON reply differs between request formats", tc.path, n)
			}
			if !bytes.Equal(bFromJSON, bFromBin) {
				t.Fatalf("%s n=%d: binary reply differs between request formats", tc.path, n)
			}
			// Cross-format: the frame's payload must equal the JSON result
			// and the reference.
			var jr MergeResponse
			if err := json.Unmarshal(jFromJSON, &jr); err != nil {
				t.Fatal(err)
			}
			fr, err := wire.Decode(bytes.NewReader(bFromBin), wire.Limits{})
			if err != nil {
				t.Fatalf("%s n=%d: decoding binary reply: %v", tc.path, n, err)
			}
			if fr.Lists() != 1 || !verify.Equal(fr.Ints[0], jr.Result) {
				t.Fatalf("%s n=%d: binary payload != JSON result", tc.path, n)
			}
			if !verify.Equal(jr.Result, tc.want) {
				t.Fatalf("%s n=%d: result != reference", tc.path, n)
			}
			fr.Release()
		}
	}
}

// TestWireFloat64 drives the float64 element type the frame enables:
// binary float merges and sorts answer correctly in both response
// formats, and the JSON and binary replies carry the same values.
func TestWireFloat64(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(9))
	a := sortedFloat64(rng, 3000)
	b := sortedFloat64(rng, 1700)
	body := wire.AppendFloat64(nil, a, b)

	st, ct, bin := doRaw(t, ts, "/v1/merge", wire.ContentType, wire.ContentType, body)
	if st != http.StatusOK || ct != wire.ContentType {
		t.Fatalf("binary float merge: status %d ct %q body %s", st, ct, bin)
	}
	fr, err := wire.Decode(bytes.NewReader(bin), wire.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Release()
	want := verify.ReferenceMerge(a, b)
	if fr.Type != wire.Float64 || !verify.Equal(fr.Floats[0], want) {
		t.Fatalf("float merge payload wrong (type %v, %d elements)", fr.Type, fr.Elements())
	}

	st, _, js := doRaw(t, ts, "/v1/merge", wire.ContentType, "application/json", body)
	if st != http.StatusOK {
		t.Fatalf("float merge with JSON accept: status %d", st)
	}
	var jr struct {
		Result []float64 `json:"result"`
	}
	if err := json.Unmarshal(js, &jr); err != nil {
		t.Fatal(err)
	}
	if !verify.Equal(jr.Result, want) {
		t.Fatal("JSON float reply != reference")
	}

	data := append([]float64(nil), b...)
	rng.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })
	st, _, sbin := doRaw(t, ts, "/v1/sort", wire.ContentType, wire.ContentType, wire.AppendFloat64(nil, data))
	if st != http.StatusOK {
		t.Fatalf("float sort: status %d", st)
	}
	sf, err := wire.Decode(bytes.NewReader(sbin), wire.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Release()
	if !verify.Equal(sf.Floats[0], b) {
		t.Fatal("float sort payload != sorted reference")
	}

	// An unsorted float input must fail validation like an int64 one.
	st, _, _ = doRaw(t, ts, "/v1/merge", wire.ContentType, "", wire.AppendFloat64(nil, []float64{2, 1}, nil))
	if st != http.StatusBadRequest {
		t.Fatalf("unsorted float merge: status %d, want 400", st)
	}
}

// TestTrailingGarbageRejected pins the decode() fix: a valid JSON
// document followed by anything but whitespace is a 400, on every JSON
// endpoint.
func TestTrailingGarbageRejected(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	cases := []struct {
		body string
		want int
	}{
		{`{"a":[1],"b":[2]}junk`, http.StatusBadRequest},
		{`{"a":[1],"b":[2]}{"a":[],"b":[]}`, http.StatusBadRequest},
		{`{"a":[1],"b":[2]}]`, http.StatusBadRequest},
		{`{"a":[1],"b":[2]}` + "  \n\t ", http.StatusOK}, // whitespace is fine
		{`{"a":[1],"b":[2]}`, http.StatusOK},
	}
	for _, tc := range cases {
		st, _, body := doRaw(t, ts, "/v1/merge", "application/json", "", []byte(tc.body))
		if st != tc.want {
			t.Errorf("body %q: status %d, want %d (%s)", tc.body, st, tc.want, body)
		}
	}
	// The other decode() users share the fix.
	if st, _, _ := doRaw(t, ts, "/v1/sort", "application/json", "", []byte(`{"data":[3,1]}x`)); st != http.StatusBadRequest {
		t.Errorf("sort trailing garbage: status %d, want 400", st)
	}
	if st, _, _ := doRaw(t, ts, "/v1/jobs", "application/json", "", []byte(`{"type":"sortfile"}[]`)); st != http.StatusBadRequest {
		t.Errorf("jobs trailing garbage: status %d, want 400", st)
	}
	if n := s.Snapshot().Wire.RequestsJSON; n == 0 {
		t.Error("wire.requests_json stayed zero")
	}
}

// TestUnsupportedMediaType covers the 415 paths and their counter: an
// unknown Content-Type anywhere, and the frame on the endpoints whose
// request documents cannot be arrays.
func TestUnsupportedMediaType(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	cases := []struct {
		path, ctype string
		body        []byte
	}{
		{"/v1/merge", "text/csv", []byte("1,2")},
		{"/v1/merge", "application/x-msgpack", []byte{0x80}},
		{"/v1/setops", wire.ContentType, wire.AppendInt64(nil, []int64{1}, []int64{2})},
		{"/v1/select", wire.ContentType, wire.AppendInt64(nil, []int64{1}, []int64{2})},
	}
	for _, tc := range cases {
		st, _, body := doRaw(t, ts, tc.path, tc.ctype, "", tc.body)
		if st != http.StatusUnsupportedMediaType {
			t.Errorf("%s with %s: status %d, want 415 (%s)", tc.path, tc.ctype, st, body)
		}
	}
	snap := s.Snapshot()
	if got := snap.Wire.UnsupportedMediaType; got != uint64(len(cases)) {
		t.Errorf("unsupported_media_type_total = %d, want %d", got, len(cases))
	}
	// The counters reach the Prometheus surface too.
	prom := renderProm(snap)
	if !strings.Contains(prom, "mergepathd_unsupported_media_type_total 4") {
		t.Error("415 counter missing from the prom exposition")
	}
	if !strings.Contains(prom, `mergepathd_wire_requests_total{format="binary"}`) {
		t.Error("binary request counter missing from the prom exposition")
	}
}

// TestBinaryFrameBadRequests maps malformed frames onto the JSON
// path's status contract: truncation and structural nonsense are 400,
// an absurd length table is 413 — and none of them crash the daemon.
func TestBinaryFrameBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1 << 20})
	valid := wire.AppendInt64(nil, []int64{1, 2}, []int64{3})
	huge := append([]byte(nil), valid...)
	for i := 0; i < 8; i++ {
		huge[8+i] = 0xFF // first list length -> 2^64-1
	}
	cases := []struct {
		name string
		body []byte
		want int
	}{
		{"truncated header", valid[:6], http.StatusBadRequest},
		{"truncated payload", valid[:len(valid)-3], http.StatusBadRequest},
		{"trailing bytes", append(append([]byte(nil), valid...), 1), http.StatusBadRequest},
		{"not a frame", []byte("{}"), http.StatusBadRequest},
		{"wrong list count", wire.AppendInt64(nil, []int64{1}), http.StatusBadRequest},
		{"absurd lengths", huge, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		st, _, body := doRaw(t, ts, "/v1/merge", wire.ContentType, "", tc.body)
		if st != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, st, tc.want, body)
		}
	}
	// The daemon is still alive and correct.
	var out MergeResponse
	if st := post(t, ts, "/v1/merge", MergeRequest{A: []int64{1}, B: []int64{2}}, &out); st != http.StatusOK {
		t.Fatalf("follow-up merge: status %d", st)
	}
}

// TestConnReuseAfterEarly4xx pins the drain fix: an error response that
// fires before the body was read (415 here) must leave the keep-alive
// connection reusable. The 512 KiB body is deliberately bigger than
// net/http's own 256 KiB post-handler auto-drain allowance — without
// the handler-side drain the server would close the connection.
func TestConnReuseAfterEarly4xx(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	client := ts.Client()
	big := bytes.Repeat([]byte{7}, 512<<10)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/merge", bytes.NewReader(big))
	req.Header.Set("Content-Type", "application/x-unknown")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("status %d, want 415", resp.StatusCode)
	}

	reused := false
	trace := &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) { reused = info.Reused },
	}
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/merge",
		strings.NewReader(`{"a":[1],"b":[2]}`))
	req2 = req2.WithContext(httptrace.WithClientTrace(context.Background(), trace))
	req2.Header.Set("Content-Type", "application/json")
	resp2, err := client.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("follow-up status %d", resp2.StatusCode)
	}
	if !reused {
		t.Fatal("connection was not reused after the drained 415")
	}
}

// TestJobResultAbortCounted pins the handleJobResult fix: a client that
// vanishes mid-download of a job result must increment
// jobs result_aborts_total (on /metrics and the prom rendering), not be
// recorded as a clean 200.
func TestJobResultAbortCounted(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Jobs: jobs.Config{Dir: t.TempDir(), MemoryRecords: 1 << 20},
	})
	rng := rand.New(rand.NewSource(3))
	vals := make([]int64, 1<<19) // 4 MiB result: far beyond socket buffers
	for i := range vals {
		vals[i] = rng.Int63()
	}
	ds := postDataset(t, ts.URL, encodeRecords(vals))
	v, st := submitJob(t, ts.URL, ds.ID)
	if st != http.StatusAccepted {
		t.Fatalf("submit status %d", st)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, _ := getJob(t, ts.URL, v.ID)
		if cur.State == "done" {
			break
		}
		if cur.State == "failed" || time.Now().After(deadline) {
			t.Fatalf("job state %q", cur.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+v.ID+"/result", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read a sliver, then vanish.
	if _, err := io.ReadFull(resp.Body, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	var aborts uint64
	for time.Now().Before(deadline) {
		aborts = s.Snapshot().Jobs.ResultAborts
		if aborts > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if aborts != 1 {
		t.Fatalf("result_aborts_total = %d, want 1", aborts)
	}
	if !strings.Contains(renderProm(s.Snapshot()), "mergepathd_jobs_result_aborts_total 1") {
		t.Error("abort counter missing from the prom exposition")
	}

	// A clean download still records no further aborts.
	resp2, err := ts.Client().Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp2.Body); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := s.Snapshot().Jobs.ResultAborts; got != 1 {
		t.Fatalf("aborts after clean download = %d, want 1", got)
	}
}

// TestHealthzAdvertisesFormats pins the capability advertisement the
// router's binary scatter hops key on.
func TestHealthzAdvertisesFormats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"application/json": false, wire.ContentType: false}
	for _, f := range h.Formats {
		if _, ok := want[f]; ok {
			want[f] = true
		}
	}
	for f, seen := range want {
		if !seen {
			t.Errorf("/healthz formats missing %q (got %v)", f, h.Formats)
		}
	}
}
