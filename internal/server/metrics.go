package server

import (
	"sync"
	"sync/atomic"
	"time"

	"mergepath/internal/batch"
	"mergepath/internal/core"
	"mergepath/internal/jobs"
	"mergepath/internal/kway"
	"mergepath/internal/overload"
	"mergepath/internal/stats"
)

// Metrics is the daemon's observability surface, exported as JSON on
// /metrics. All updates are atomic or mutex-scoped to the last-round
// record; handlers and the dispatcher write concurrently.
type Metrics struct {
	start     time.Time
	endpoints map[string]*endpointMetrics // fixed key set, created up front
	stages    map[string]*stats.Histogram // fixed key set: per-stage span latency

	shed      atomic.Uint64 // 503s from the full admission queue
	throttled atomic.Uint64 // 429s from the adaptive overload controller
	timeouts  atomic.Uint64 // jobs expired before or while queued
	canceled  atomic.Uint64 // requests abandoned by their client (499 class)
	shedFlush atomic.Uint64 // coalesced pairs dropped expired/canceled at flush
	panics    atomic.Uint64 // round panics recovered into per-job 500s

	reqJSON    atomic.Uint64 // request bodies classified application/json
	reqBinary  atomic.Uint64 // request bodies classified as the wire frame
	respJSON   atomic.Uint64 // responses written as JSON (route envelope)
	respBinary atomic.Uint64 // responses written as wire frames
	badMedia   atomic.Uint64 // requests refused with 415

	batchRounds atomic.Uint64 // coalesced rounds executed
	batchPairs  atomic.Uint64 // small requests coalesced into those rounds
	batchElems  atomic.Uint64 // output elements merged by those rounds
	runRounds   atomic.Uint64 // uncoalesced (whole-pool) rounds with load stats

	kwayHeap   atomic.Uint64 // k-way merges executed with the heap strategy
	kwayTree   atomic.Uint64 // k-way merges executed with the tree strategy
	kwayCoRank atomic.Uint64 // k-way merges executed with the co-rank strategy

	kwayStrategy string // configured k-way strategy knob (set once at New)

	mu            sync.Mutex
	lastRoundLoad []batch.WorkerLoad // per-worker loads of the latest round
	lastRound     stats.LoadSummary  // summary of the latest balanced round
	imbMax        float64            // worst per-round imbalance ratio seen
	imbSum        float64            // running sum of per-round imbalance ratios
	imbCount      uint64             // rounds contributing to imbSum

	kwayLastK       int     // run count of the latest k-way round
	kwayLastWorkers int     // windows of the latest k-way co-rank round
	kwayImbMax      float64 // worst k-way per-worker imbalance seen
	kwayImbSum      float64 // running sum of k-way imbalance ratios
	kwayImbCount    uint64  // co-rank rounds contributing to kwayImbSum
}

type endpointMetrics struct {
	count   atomic.Uint64
	err4xx  atomic.Uint64
	err5xx  atomic.Uint64
	latency stats.Histogram // successful requests only
}

// endpointNames is the fixed metric key set; one entry per /v1 route
// family ("datasets" and "jobs" each cover their whole CRUD surface).
var endpointNames = []string{"merge", "sort", "mergek", "setops", "select", "datasets", "jobs"}

// NewMetrics returns a zeroed metrics registry.
func NewMetrics() *Metrics {
	m := &Metrics{
		start:     time.Now(),
		endpoints: make(map[string]*endpointMetrics, len(endpointNames)),
		stages:    make(map[string]*stats.Histogram, len(stageNames)),
	}
	for _, name := range endpointNames {
		m.endpoints[name] = &endpointMetrics{}
	}
	for _, name := range stageNames {
		m.stages[name] = &stats.Histogram{}
	}
	return m
}

// observeSpans folds one request's spans into the per-stage latency
// histograms. Unknown stage names are dropped (fixed key set, like
// endpoints).
func (m *Metrics) observeSpans(spans []Span) {
	for _, sp := range spans {
		if h, ok := m.stages[sp.Stage]; ok {
			h.Observe(sp.Dur)
		}
	}
}

// noteRound records the load summary of one globally balanced round —
// coalesced batch or whole-pool — updating the latest summary and the
// running max/mean imbalance that /metrics exports.
func (m *Metrics) noteRound(s stats.LoadSummary) {
	if s.Workers == 0 {
		return
	}
	m.mu.Lock()
	m.lastRound = s
	if s.Imbalance > m.imbMax {
		m.imbMax = s.Imbalance
	}
	m.imbSum += s.Imbalance
	m.imbCount++
	m.mu.Unlock()
}

// noteImbalance records a bare imbalance ratio (no per-worker element
// detail — e.g. a sort's worst merge round) against the running max and
// mean. Zero means "no balanced round ran" and is skipped.
func (m *Metrics) noteImbalance(imb float64) {
	if imb <= 0 {
		return
	}
	m.mu.Lock()
	if imb > m.imbMax {
		m.imbMax = imb
	}
	m.imbSum += imb
	m.imbCount++
	m.mu.Unlock()
}

// noteKWay records one k-way merge round: the strategy that actually
// executed, and — on the co-rank path, which reports per-worker loads —
// the window loads against both the pool-wide balanced-round metrics
// (extending the Theorem 5 imbalance validation from 2-way to k-way)
// and the k-way-specific aggregates.
func (m *Metrics) noteKWay(st kway.Stats) {
	switch st.Strategy {
	case kway.StrategyHeap:
		m.kwayHeap.Add(1)
	case kway.StrategyTree:
		m.kwayTree.Add(1)
	case kway.StrategyCoRank:
		m.kwayCoRank.Add(1)
	}
	m.mu.Lock()
	m.kwayLastK = st.K
	m.kwayLastWorkers = st.Workers
	m.mu.Unlock()
	if len(st.PerWorker) == 0 {
		return
	}
	m.noteRound(stats.SummarizeLoads(st.PerWorker))
	m.mu.Lock()
	if st.Imbalance > m.kwayImbMax {
		m.kwayImbMax = st.Imbalance
	}
	m.kwayImbSum += st.Imbalance
	m.kwayImbCount++
	m.mu.Unlock()
}

// observe records one finished request against an endpoint. Only 2xx
// requests contribute to the latency histogram so shed traffic cannot
// flatter the percentiles.
func (m *Metrics) observe(endpoint string, status int, d time.Duration) {
	e, ok := m.endpoints[endpoint]
	if !ok {
		return
	}
	e.count.Add(1)
	switch {
	case status >= 500:
		e.err5xx.Add(1)
	case status >= 400:
		e.err4xx.Add(1)
	default:
		e.latency.Observe(d)
	}
}

func (m *Metrics) recordBatchRound(pairs, elems int, loads []batch.WorkerLoad) {
	m.batchRounds.Add(1)
	m.batchPairs.Add(uint64(pairs))
	m.batchElems.Add(uint64(elems))
	m.mu.Lock()
	m.lastRoundLoad = loads
	m.mu.Unlock()
	m.noteRound(batch.Summarize(loads))
}

// recordRunRound records the per-worker stats of one uncoalesced
// whole-pool round (large merge) against the imbalance metrics.
func (m *Metrics) recordRunRound(ws []core.WorkerStat) {
	if len(ws) == 0 {
		return
	}
	m.runRounds.Add(1)
	elems := make([]int, len(ws))
	for i, w := range ws {
		elems[i] = w.Elements
	}
	m.noteRound(stats.SummarizeLoads(elems))
}

// EndpointSnapshot is one endpoint's row in the /metrics JSON.
type EndpointSnapshot struct {
	Count   uint64                  `json:"count"`      // requests finished, all statuses
	Err4xx  uint64                  `json:"errors_4xx"` // client-error responses
	Err5xx  uint64                  `json:"errors_5xx"` // server-error responses
	Latency stats.HistogramSnapshot `json:"latency"`    // successful requests only
}

// QueueSnapshot describes admission control state.
type QueueSnapshot struct {
	Depth    int    `json:"depth"`          // jobs currently queued
	Capacity int    `json:"capacity"`       // queue bound; full queue sheds 503
	Shed     uint64 `json:"shed_total"`     // requests refused with 503
	Timeouts uint64 `json:"timeouts_total"` // deadlines expired before completion (504)
	// Throttled counts requests refused with 429 by the adaptive overload
	// controller (queue sojourn over target) — separate from Shed because
	// a 429 is the controller working as designed while a 503 means the
	// hard queue bound was hit despite it.
	Throttled uint64 `json:"throttled_total"`
	// Canceled counts requests abandoned by their client (disconnect or
	// explicit cancel) — deliberately separate from Timeouts: a cancel is
	// the client's choice, not a server SLO violation.
	Canceled uint64 `json:"canceled_total"`
	// ShedAtFlush counts coalesced pairs dropped at batch-flush time
	// because their deadline passed (or client vanished) while parked in
	// the pending buffer.
	ShedAtFlush uint64 `json:"shed_at_flush_total"`
}

// PoolSnapshot describes the worker pool and the coalescing path.
type PoolSnapshot struct {
	Workers       int                `json:"workers"`                    // fixed pool size
	Utilization   float64            `json:"utilization"`                // fraction of uptime spent in rounds
	BusySeconds   float64            `json:"busy_seconds"`               // total round-execution time
	BatchRounds   uint64             `json:"batch_rounds"`               // coalesced rounds executed
	BatchPairs    uint64             `json:"batch_pairs"`                // small merges coalesced into them
	BatchElems    uint64             `json:"batch_elements"`             // output elements those rounds produced
	PairsPerRound float64            `json:"pairs_per_round"`            // mean coalescing factor
	LastRoundLoad []batch.WorkerLoad `json:"last_round_loads,omitempty"` // per-worker detail of the latest coalesced round
	// RunRounds counts uncoalesced whole-pool rounds (large merges) that
	// reported per-worker load stats.
	RunRounds uint64 `json:"run_rounds"`
	// LastRound summarizes the per-worker element counts of the latest
	// balanced round (coalesced or whole-pool): min/max/mean elements
	// per worker and the max/min imbalance ratio. Theorem 5 predicts
	// Imbalance ~1.0 for every uncoalesced round.
	LastRound stats.LoadSummary `json:"last_round"`
	// ImbalanceMax is the worst per-round imbalance ratio since start.
	ImbalanceMax float64 `json:"imbalance_max"`
	// ImbalanceMean is the mean per-round imbalance ratio since start.
	ImbalanceMean float64 `json:"imbalance_mean"`
	// PanicsRecovered counts request-induced panics caught inside rounds
	// and converted to per-job 500s; nonzero means a request found a bug
	// (or the fault injector is on) but the daemon survived it.
	PanicsRecovered uint64 `json:"panics_recovered"`
}

// WireSnapshot counts request and response bodies on the /v1 request
// endpoints by negotiated format, plus the 415 refusals. A fleet
// migrating from JSON to the binary frame watches RequestsBinary climb
// here (and on the router) to know when the compatibility path can be
// retired.
type WireSnapshot struct {
	// RequestsJSON counts request bodies negotiated as JSON.
	RequestsJSON uint64 `json:"requests_json"`
	// RequestsBinary counts request bodies negotiated as the frame.
	RequestsBinary uint64 `json:"requests_binary"`
	// ResponsesJSON counts responses written as JSON.
	ResponsesJSON uint64 `json:"responses_json"`
	// ResponsesBinary counts responses written as frames.
	ResponsesBinary uint64 `json:"responses_binary"`
	// UnsupportedMediaType counts requests refused with 415 — an
	// unparseable/unknown Content-Type, or the frame sent to an endpoint
	// with no binary request form (setops, select).
	UnsupportedMediaType uint64 `json:"unsupported_media_type_total"`
}

// KWaySnapshot reports the k-way merge strategy counters: rounds by
// executed strategy, the configured knob, and the per-worker window
// imbalance of the co-rank path — the k-way extension of the Theorem 5
// balance check (see docs/KWAY.md). Exported on /metrics,
// /metrics/prom and (strategy + imbalance) /healthz.
type KWaySnapshot struct {
	// Strategy is the configured -kway-strategy knob; "auto" resolves
	// per call by k and output size.
	Strategy string `json:"strategy"`
	// MergesHeap counts k-way rounds executed with the sequential heap.
	MergesHeap uint64 `json:"merges_heap"`
	// MergesTree counts rounds executed with the pairwise merge tree.
	MergesTree uint64 `json:"merges_tree"`
	// MergesCoRank counts rounds executed with co-ranking windows.
	MergesCoRank uint64 `json:"merges_corank"`
	// LastK is the run count of the latest k-way round.
	LastK int `json:"last_k"`
	// LastWorkers is the parallel window count of the latest round.
	LastWorkers int `json:"last_workers"`
	// ImbalanceMax is the worst per-worker window imbalance ratio of
	// any co-rank round since start (~1.0 by construction).
	ImbalanceMax float64 `json:"imbalance_max"`
	// ImbalanceMean is the mean co-rank window imbalance since start.
	ImbalanceMean float64 `json:"imbalance_mean"`
}

// MetricsSnapshot is the /metrics JSON document. The same numbers back
// the Prometheus exposition on /metrics/prom (rendered from this struct
// so the two surfaces cannot drift).
type MetricsSnapshot struct {
	UptimeSeconds float64                     `json:"uptime_seconds"` // seconds since the server started
	Queue         QueueSnapshot               `json:"queue"`          // admission-control state
	Pool          PoolSnapshot                `json:"pool"`           // worker pool, rounds, load balance
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`      // per-endpoint counters and latency
	// Stages aggregates per-request lifecycle spans: one latency
	// histogram per stage (see the Stage* constants and docs/METRICS.md
	// for semantics; partition and merge record cumulative worker time,
	// everything else wall time).
	Stages map[string]stats.HistogramSnapshot `json:"stages"`
	// Overload is the adaptive admission controller's state: the CoDel
	// state machine, the congestion signal it acts on, and the computed
	// Retry-After it is currently quoting. Same snapshot as /healthz.
	Overload overload.Snapshot `json:"overload"`
	// Wire counts bodies by negotiated format (JSON vs the binary
	// frame) and 415 refusals on the /v1 request endpoints.
	Wire WireSnapshot `json:"wire"`
	// KWay reports the /v1/mergek strategy counters and co-rank window
	// balance (see docs/KWAY.md).
	KWay KWaySnapshot `json:"kway"`
	// Jobs is the asynchronous dataset/jobs subsystem's counters and
	// gauges (internal/jobs): submissions by outcome, queue occupancy,
	// spill usage and external-sort block I/O. Nil only in unit tests
	// that snapshot a bare Metrics without a server.
	Jobs *jobs.Snapshot `json:"jobs,omitempty"`
}

// kwaySnapshot assembles the k-way strategy counters; shared by
// /metrics and /healthz so the surfaces cannot drift.
func (m *Metrics) kwaySnapshot() KWaySnapshot {
	s := KWaySnapshot{
		Strategy:     m.kwayStrategy,
		MergesHeap:   m.kwayHeap.Load(),
		MergesTree:   m.kwayTree.Load(),
		MergesCoRank: m.kwayCoRank.Load(),
	}
	if s.Strategy == "" {
		s.Strategy = kway.StrategyAuto.String()
	}
	m.mu.Lock()
	s.LastK = m.kwayLastK
	s.LastWorkers = m.kwayLastWorkers
	s.ImbalanceMax = m.kwayImbMax
	if m.kwayImbCount > 0 {
		s.ImbalanceMean = m.kwayImbSum / float64(m.kwayImbCount)
	}
	m.mu.Unlock()
	return s
}

// snapshot assembles the exported document. p supplies live queue/worker
// state (nil-safe for tests that only exercise counters).
func (m *Metrics) snapshot(p *pool) MetricsSnapshot {
	s := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Queue: QueueSnapshot{
			Shed:        m.shed.Load(),
			Throttled:   m.throttled.Load(),
			Timeouts:    m.timeouts.Load(),
			Canceled:    m.canceled.Load(),
			ShedAtFlush: m.shedFlush.Load(),
		},
		Pool: PoolSnapshot{
			BatchRounds:     m.batchRounds.Load(),
			BatchPairs:      m.batchPairs.Load(),
			BatchElems:      m.batchElems.Load(),
			RunRounds:       m.runRounds.Load(),
			PanicsRecovered: m.panics.Load(),
		},
		Wire: WireSnapshot{
			RequestsJSON:         m.reqJSON.Load(),
			RequestsBinary:       m.reqBinary.Load(),
			ResponsesJSON:        m.respJSON.Load(),
			ResponsesBinary:      m.respBinary.Load(),
			UnsupportedMediaType: m.badMedia.Load(),
		},
		Endpoints: make(map[string]EndpointSnapshot, len(m.endpoints)),
		Stages:    make(map[string]stats.HistogramSnapshot, len(m.stages)),
	}
	if rounds := s.Pool.BatchRounds; rounds > 0 {
		s.Pool.PairsPerRound = float64(s.Pool.BatchPairs) / float64(rounds)
	}
	if p != nil {
		s.Queue.Depth = p.depth()
		s.Queue.Capacity = cap(p.queue)
		s.Pool.Workers = p.workers
		s.Pool.BusySeconds = time.Duration(p.busyNanos.Load()).Seconds()
		if up := s.UptimeSeconds; up > 0 {
			s.Pool.Utilization = s.Pool.BusySeconds / up
		}
		s.Overload = p.ctrl.SnapshotNow()
	}
	s.KWay = m.kwaySnapshot()
	m.mu.Lock()
	s.Pool.LastRoundLoad = append([]batch.WorkerLoad(nil), m.lastRoundLoad...)
	s.Pool.LastRound = m.lastRound
	s.Pool.ImbalanceMax = m.imbMax
	if m.imbCount > 0 {
		s.Pool.ImbalanceMean = m.imbSum / float64(m.imbCount)
	}
	m.mu.Unlock()
	for name, e := range m.endpoints {
		s.Endpoints[name] = EndpointSnapshot{
			Count:   e.count.Load(),
			Err4xx:  e.err4xx.Load(),
			Err5xx:  e.err5xx.Load(),
			Latency: e.latency.Snapshot(),
		}
	}
	for name, h := range m.stages {
		s.Stages[name] = h.Snapshot()
	}
	return s
}
