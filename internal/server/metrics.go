package server

import (
	"sync"
	"sync/atomic"
	"time"

	"mergepath/internal/batch"
	"mergepath/internal/stats"
)

// Metrics is the daemon's observability surface, exported as JSON on
// /metrics. All updates are atomic or mutex-scoped to the last-round
// record; handlers and the dispatcher write concurrently.
type Metrics struct {
	start     time.Time
	endpoints map[string]*endpointMetrics // fixed key set, created up front

	shed      atomic.Uint64 // 503s from the full admission queue
	timeouts  atomic.Uint64 // jobs expired before or while queued
	canceled  atomic.Uint64 // requests abandoned by their client (499 class)
	shedFlush atomic.Uint64 // coalesced pairs dropped expired/canceled at flush
	panics    atomic.Uint64 // round panics recovered into per-job 500s

	batchRounds atomic.Uint64 // coalesced rounds executed
	batchPairs  atomic.Uint64 // small requests coalesced into those rounds
	batchElems  atomic.Uint64 // output elements merged by those rounds

	mu            sync.Mutex
	lastRoundLoad []batch.WorkerLoad // per-worker loads of the latest round
}

type endpointMetrics struct {
	count   atomic.Uint64
	err4xx  atomic.Uint64
	err5xx  atomic.Uint64
	latency stats.Histogram // successful requests only
}

// endpointNames is the fixed metric key set; one entry per /v1 route.
var endpointNames = []string{"merge", "sort", "mergek", "setops", "select"}

// NewMetrics returns a zeroed metrics registry.
func NewMetrics() *Metrics {
	m := &Metrics{start: time.Now(), endpoints: make(map[string]*endpointMetrics, len(endpointNames))}
	for _, name := range endpointNames {
		m.endpoints[name] = &endpointMetrics{}
	}
	return m
}

// observe records one finished request against an endpoint. Only 2xx
// requests contribute to the latency histogram so shed traffic cannot
// flatter the percentiles.
func (m *Metrics) observe(endpoint string, status int, d time.Duration) {
	e, ok := m.endpoints[endpoint]
	if !ok {
		return
	}
	e.count.Add(1)
	switch {
	case status >= 500:
		e.err5xx.Add(1)
	case status >= 400:
		e.err4xx.Add(1)
	default:
		e.latency.Observe(d)
	}
}

func (m *Metrics) recordBatchRound(pairs, elems int, loads []batch.WorkerLoad) {
	m.batchRounds.Add(1)
	m.batchPairs.Add(uint64(pairs))
	m.batchElems.Add(uint64(elems))
	m.mu.Lock()
	m.lastRoundLoad = loads
	m.mu.Unlock()
}

// EndpointSnapshot is one endpoint's row in the /metrics JSON.
type EndpointSnapshot struct {
	Count   uint64                  `json:"count"`
	Err4xx  uint64                  `json:"errors_4xx"`
	Err5xx  uint64                  `json:"errors_5xx"`
	Latency stats.HistogramSnapshot `json:"latency"`
}

// QueueSnapshot describes admission control state.
type QueueSnapshot struct {
	Depth    int    `json:"depth"`
	Capacity int    `json:"capacity"`
	Shed     uint64 `json:"shed_total"`
	Timeouts uint64 `json:"timeouts_total"`
	// Canceled counts requests abandoned by their client (disconnect or
	// explicit cancel) — deliberately separate from Timeouts: a cancel is
	// the client's choice, not a server SLO violation.
	Canceled uint64 `json:"canceled_total"`
	// ShedAtFlush counts coalesced pairs dropped at batch-flush time
	// because their deadline passed (or client vanished) while parked in
	// the pending buffer.
	ShedAtFlush uint64 `json:"shed_at_flush_total"`
}

// PoolSnapshot describes the worker pool and the coalescing path.
type PoolSnapshot struct {
	Workers       int                `json:"workers"`
	Utilization   float64            `json:"utilization"`
	BusySeconds   float64            `json:"busy_seconds"`
	BatchRounds   uint64             `json:"batch_rounds"`
	BatchPairs    uint64             `json:"batch_pairs"`
	BatchElems    uint64             `json:"batch_elements"`
	PairsPerRound float64            `json:"pairs_per_round"`
	LastRoundLoad []batch.WorkerLoad `json:"last_round_loads,omitempty"`
	// PanicsRecovered counts request-induced panics caught inside rounds
	// and converted to per-job 500s; nonzero means a request found a bug
	// (or the fault injector is on) but the daemon survived it.
	PanicsRecovered uint64 `json:"panics_recovered"`
}

// MetricsSnapshot is the /metrics JSON document.
type MetricsSnapshot struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	Queue         QueueSnapshot               `json:"queue"`
	Pool          PoolSnapshot                `json:"pool"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
}

// snapshot assembles the exported document. p supplies live queue/worker
// state (nil-safe for tests that only exercise counters).
func (m *Metrics) snapshot(p *pool) MetricsSnapshot {
	s := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Queue: QueueSnapshot{
			Shed:        m.shed.Load(),
			Timeouts:    m.timeouts.Load(),
			Canceled:    m.canceled.Load(),
			ShedAtFlush: m.shedFlush.Load(),
		},
		Pool: PoolSnapshot{
			BatchRounds:     m.batchRounds.Load(),
			BatchPairs:      m.batchPairs.Load(),
			BatchElems:      m.batchElems.Load(),
			PanicsRecovered: m.panics.Load(),
		},
		Endpoints: make(map[string]EndpointSnapshot, len(m.endpoints)),
	}
	if rounds := s.Pool.BatchRounds; rounds > 0 {
		s.Pool.PairsPerRound = float64(s.Pool.BatchPairs) / float64(rounds)
	}
	if p != nil {
		s.Queue.Depth = p.depth()
		s.Queue.Capacity = cap(p.queue)
		s.Pool.Workers = p.workers
		s.Pool.BusySeconds = time.Duration(p.busyNanos.Load()).Seconds()
		if up := s.UptimeSeconds; up > 0 {
			s.Pool.Utilization = s.Pool.BusySeconds / up
		}
	}
	m.mu.Lock()
	s.Pool.LastRoundLoad = append([]batch.WorkerLoad(nil), m.lastRoundLoad...)
	m.mu.Unlock()
	for name, e := range m.endpoints {
		s.Endpoints[name] = EndpointSnapshot{
			Count:   e.count.Load(),
			Err4xx:  e.err4xx.Load(),
			Err5xx:  e.err5xx.Load(),
			Latency: e.latency.Snapshot(),
		}
	}
	return s
}
