package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mergepath/internal/fault"
	"mergepath/internal/overload"
)

// pressCtrl drives a controller into the given state using its public
// API: repeated over-target sojourn observations spaced across real
// (tiny) intervals. Returns once the state is reached or the deadline
// passes.
func pressCtrl(t *testing.T, c *overload.Controller, want overload.State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("controller never reached %v (state %v)", want, c.State())
		}
		c.ObserveSojourn(time.Second)
		time.Sleep(2 * time.Millisecond)
	}
}

func TestBrownoutShrinksWindowAndWorkers(t *testing.T) {
	ctrl := overload.New(overload.Config{Target: time.Millisecond, Interval: 5 * time.Millisecond})
	p := newPool(8, 16, 800*time.Microsecond, 1<<20, NewMetrics(), ctrl)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = p.close(ctx)
	}()

	if w := p.effectiveWorkers(); w != 8 {
		t.Fatalf("healthy workers = %d, want 8", w)
	}
	if w := p.effectiveWindow(); w != 800*time.Microsecond {
		t.Fatalf("healthy window = %v, want 800µs", w)
	}
	pressCtrl(t, ctrl, overload.Degraded)
	if w := p.effectiveWorkers(); w != 4 {
		t.Errorf("degraded workers = %d, want 4", w)
	}
	if w := p.effectiveWindow(); w != 200*time.Microsecond {
		t.Errorf("degraded window = %v, want 200µs", w)
	}
}

// TestOverloadShedsWithComputedRetryAfter drives the server's controller
// to shedding and verifies new requests get 429 with a Retry-After
// derived from the drain-rate estimate, then that the state steps back
// down once the pressure signal stops.
func TestOverloadShedsWithComputedRetryAfter(t *testing.T) {
	// Interval is 25ms so the post-pressure 429 probe comfortably lands
	// before the first recovery step-down (2 good intervals = 50ms).
	s, ts := newTestServer(t, Config{Workers: 2, Overload: overload.Config{
		Target:   time.Millisecond,
		Interval: 25 * time.Millisecond,
	}})
	// Warm the drain-rate estimate with real traffic so the Retry-After
	// is a measurement, not the clamp floor... then apply pressure.
	for i := 0; i < 3; i++ {
		a := []int64{1, 2, 3}
		if code := post(t, ts, "/v1/merge", MergeRequest{A: a, B: a}, nil); code != http.StatusOK {
			t.Fatalf("warmup merge: status %d", code)
		}
	}
	pressCtrl(t, s.ctrl, overload.Shedding)

	buf, _ := json.Marshal(MergeRequest{A: []int64{1}, B: []int64{2}})
	resp, err := ts.Client().Post(ts.URL+"/v1/merge", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d while shedding, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 30 {
		t.Fatalf("Retry-After %q, want integer in [1,30]", resp.Header.Get("Retry-After"))
	}
	var eresp ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eresp.Error, "overloaded") {
		t.Errorf("429 body %q does not name the overload", eresp.Error)
	}
	if s.Snapshot().Queue.Throttled == 0 {
		t.Error("throttled counter did not move")
	}

	// Pressure stops: idle intervals are good, so scrapes alone must walk
	// the machine back to healthy (shedding→degraded→healthy).
	deadline := time.Now().Add(5 * time.Second)
	for s.ctrl.State() != overload.Healthy {
		if time.Now().After(deadline) {
			t.Fatalf("never recovered, state %v", s.ctrl.State())
		}
		time.Sleep(5 * time.Millisecond)
		_ = s.ctrl.SnapshotNow()
	}
	if code := post(t, ts, "/v1/merge", MergeRequest{A: []int64{1}, B: []int64{2}}, nil); code != http.StatusOK {
		t.Fatalf("post-recovery merge: status %d, want 200", code)
	}
	snap := s.Snapshot().Overload
	if snap.TransitionsShedding < 1 || snap.TransitionsHealthy < 1 {
		t.Errorf("transition counters degraded=%d shedding=%d healthy=%d, want full cycle",
			snap.TransitionsDegraded, snap.TransitionsShedding, snap.TransitionsHealthy)
	}
}

// TestOverloadTripsUnderInjectedLatency exercises the real signal path:
// fault-injected execution latency makes each sort round hold the
// dispatcher for 30ms, queued jobs accumulate sojourn far over the
// target, and the controller leaves healthy without any test backdoor
// touching it.
func TestOverloadTripsUnderInjectedLatency(t *testing.T) {
	inj, err := fault.Parse("sort:latency=30ms@1", 1)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 2, Fault: inj, Overload: overload.Config{
		Target:   time.Millisecond,
		Interval: 10 * time.Millisecond,
	}})
	// One wave of concurrent sorts: rounds execute serially at 30ms each,
	// so the tail of the wave waits hundreds of ms in the queue.
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf, _ := json.Marshal(SortRequest{Data: []int64{3, 1, 2}})
			resp, err := ts.Client().Post(ts.URL+"/v1/sort", "application/json", bytes.NewReader(buf))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	tripped := false
	deadline := time.Now().Add(10 * time.Second)
	for !tripped && time.Now().Before(deadline) {
		var health struct {
			Status string `json:"status"`
		}
		hres, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(hres.Body).Decode(&health); err != nil {
			t.Fatal(err)
		}
		hres.Body.Close()
		if health.Status == "degraded" || health.Status == "shedding" {
			tripped = true
		}
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()
	if !tripped {
		t.Fatal("injected latency never tripped the overload controller")
	}
}

func TestStrictInputNamesViolatingIndex(t *testing.T) {
	_, strict := newTestServer(t, Config{StrictInput: true,
		Overload: overload.Config{Target: time.Second}})
	buf, _ := json.Marshal(MergeRequest{A: []int64{1, 5, 3, 7}, B: []int64{1}})
	resp, err := strict.Client().Post(strict.URL+"/v1/merge", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var eresp ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil {
		t.Fatal(err)
	}
	// A[2]=3 < A[1]=5 is the first violation.
	if !strings.Contains(eresp.Error, "element 2 (3)") || !strings.Contains(eresp.Error, "element 1 (5)") {
		t.Errorf("strict 400 %q does not name the violating pair", eresp.Error)
	}

	// Default mode keeps the terse contract message.
	_, lax := newTestServer(t, Config{Overload: overload.Config{Target: time.Second}})
	resp2, err := lax.Client().Post(lax.URL+"/v1/merge", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var eresp2 ErrorResponse
	if err := json.NewDecoder(resp2.Body).Decode(&eresp2); err != nil {
		t.Fatal(err)
	}
	if eresp2.Error != `input "a" is not sorted` {
		t.Errorf("default 400 message changed: %q", eresp2.Error)
	}
}

// TestQueueFullCarriesRetryAfter pins satellite 1: hard 503s (queue
// full) now carry the computed Retry-After header too.
func TestQueueFullCarriesRetryAfter(t *testing.T) {
	// One worker, depth-1 queue, and a fault that parks every round for
	// 50ms: the queue overflows almost immediately.
	inj, err := fault.Parse("*:latency=50ms@1", 1)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Fault: inj,
		Overload: overload.Config{Target: time.Second}})
	buf, _ := json.Marshal(SortRequest{Data: []int64{3, 1, 2}})
	saw503 := false
	deadline := time.Now().Add(5 * time.Second)
	for !saw503 && time.Now().Before(deadline) {
		results := make(chan *http.Response, 6)
		for i := 0; i < 6; i++ {
			go func() {
				resp, err := ts.Client().Post(ts.URL+"/v1/sort", "application/json", bytes.NewReader(buf))
				if err != nil {
					results <- nil
					return
				}
				results <- resp
			}()
		}
		for i := 0; i < 6; i++ {
			resp := <-results
			if resp == nil {
				continue
			}
			if resp.StatusCode == http.StatusServiceUnavailable {
				saw503 = true
				if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
					t.Errorf("503 Retry-After %q, want integer >= 1", resp.Header.Get("Retry-After"))
				}
			}
			resp.Body.Close()
		}
	}
	if !saw503 {
		t.Fatal("queue never overflowed into a 503")
	}
}
