package server

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// TestHealthzRoundTrip pins the /healthz wire contract the mergerouter
// tier routes on: the document must decode back into Health with the
// role, pool shape and overload signals (backlog, drain rate,
// Retry-After) populated.
func TestHealthzRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3, QueueDepth: 17})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decoding health: %v", err)
	}
	if h.Status != "ok" {
		t.Fatalf("status = %q, want ok", h.Status)
	}
	if h.Role != "node" {
		t.Fatalf("role = %q, want node", h.Role)
	}
	if h.Workers != 3 {
		t.Fatalf("workers = %d, want 3", h.Workers)
	}
	if h.QueueCapacity != 17 {
		t.Fatalf("queue_capacity = %d, want 17", h.QueueCapacity)
	}
	if h.QueueDepth < 0 || h.QueueDepth > 17 {
		t.Fatalf("queue_depth = %d out of range", h.QueueDepth)
	}
	if h.Draining {
		t.Fatal("fresh server reports draining")
	}
	if h.Overload == nil {
		t.Fatal("overload snapshot missing — the router cannot do least-loaded routing without it")
	}
	if h.Overload.State != "healthy" {
		t.Fatalf("overload state = %q, want healthy", h.Overload.State)
	}
	if h.Overload.BacklogElements < 0 || h.Overload.DrainElemsPerSec < 0 {
		t.Fatalf("negative load signals: backlog=%d drain=%f",
			h.Overload.BacklogElements, h.Overload.DrainElemsPerSec)
	}
	if h.Overload.RetryAfterSeconds < 1 {
		t.Fatalf("retry_after_s = %d, want >= 1", h.Overload.RetryAfterSeconds)
	}
}

// TestHealthzDraining pins the draining document: 503, draining flag
// set, status string "draining" — what the router's poller keys the
// draining tier on.
func TestHealthzDraining(t *testing.T) {
	s := New(Config{})
	ts := newRawServer(t, s)
	go func() { _ = s.Drain(t.Context()) }()
	deadline := time.Now().Add(2 * time.Second)
	for !s.draining.Load() {
		if time.Now().After(deadline) {
			t.Fatal("server never entered draining")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decoding health: %v", err)
	}
	if h.Status != "draining" || !h.Draining {
		t.Fatalf("draining health = %+v", h)
	}
}
