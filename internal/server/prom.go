package server

import (
	"net/http"

	"mergepath/internal/promtext"
)

// Prometheus text exposition (format version 0.0.4) on GET
// /metrics/prom. The document is rendered from the same MetricsSnapshot
// that backs the JSON /metrics endpoint, so the two surfaces report
// identical numbers by construction; only the units differ (Prometheus
// convention: seconds — see stats.Millis for the unit policy). Latency
// histograms are exported as summaries: {quantile=...} series plus
// _sum and _count, which is what the fixed-bucket streaming histogram
// supports without re-bucketing. The writer itself lives in
// internal/promtext, shared with mergerouter's exposition.

// renderProm renders the full exposition document for a snapshot.
func renderProm(snap MetricsSnapshot) string {
	w := promtext.NewWriter()
	secs := promtext.Secs

	w.Gauge("mergepathd_uptime_seconds", "", "Seconds since the server started.", snap.UptimeSeconds)

	// Queue / admission control.
	w.Gauge("mergepathd_queue_depth", "", "Jobs currently in the admission queue.", float64(snap.Queue.Depth))
	w.Gauge("mergepathd_queue_capacity", "", "Admission queue capacity; a full queue sheds with 503.", float64(snap.Queue.Capacity))
	w.Counter("mergepathd_queue_shed_total", "", "Requests shed with 503 because the admission queue was full.", float64(snap.Queue.Shed))
	w.Counter("mergepathd_throttled_total", "", "Requests shed with 429 by the adaptive overload controller.", float64(snap.Queue.Throttled))
	w.Counter("mergepathd_request_timeouts_total", "", "Requests whose deadline expired before completion (504).", float64(snap.Queue.Timeouts))
	w.Counter("mergepathd_requests_canceled_total", "", "Requests abandoned by their client before completion (499).", float64(snap.Queue.Canceled))
	w.Counter("mergepathd_shed_at_flush_total", "", "Coalesced pairs dropped expired or canceled at batch-flush time.", float64(snap.Queue.ShedAtFlush))

	// Pool / rounds.
	w.Gauge("mergepathd_pool_workers", "", "Fixed worker pool size; every round engages all workers.", float64(snap.Pool.Workers))
	w.Gauge("mergepathd_pool_utilization", "", "Fraction of uptime the pool spent executing rounds.", snap.Pool.Utilization)
	w.Counter("mergepathd_pool_busy_seconds_total", "", "Total seconds the pool spent executing rounds.", snap.Pool.BusySeconds)
	w.Counter("mergepathd_batch_rounds_total", "", "Coalesced (multi-request) batch rounds executed.", float64(snap.Pool.BatchRounds))
	w.Counter("mergepathd_batch_pairs_total", "", "Small merge requests coalesced into batch rounds.", float64(snap.Pool.BatchPairs))
	w.Counter("mergepathd_batch_elements_total", "", "Output elements produced by coalesced batch rounds.", float64(snap.Pool.BatchElems))
	w.Counter("mergepathd_run_rounds_total", "", "Uncoalesced whole-pool rounds (large merges) with load stats.", float64(snap.Pool.RunRounds))
	w.Counter("mergepathd_panics_recovered_total", "", "Request-induced panics recovered inside rounds (per-job 500s).", float64(snap.Pool.PanicsRecovered))

	// Load balance: the paper's Theorem 5 check. 1.0 = perfect.
	w.Gauge("mergepathd_round_imbalance", "", "Max/min elements per worker of the latest balanced round (Theorem 5 predicts ~1.0).", snap.Pool.LastRound.Imbalance)
	w.Gauge("mergepathd_round_imbalance_max", "", "Worst per-round load-imbalance ratio since start.", snap.Pool.ImbalanceMax)
	w.Gauge("mergepathd_round_imbalance_mean", "", "Mean per-round load-imbalance ratio since start.", snap.Pool.ImbalanceMean)
	w.Gauge("mergepathd_round_workers", "", "Workers engaged by the latest balanced round.", float64(snap.Pool.LastRound.Workers))
	w.Gauge("mergepathd_round_min_elements", "", "Fewest elements any worker merged in the latest balanced round.", float64(snap.Pool.LastRound.Min))
	w.Gauge("mergepathd_round_max_elements", "", "Most elements any worker merged in the latest balanced round.", float64(snap.Pool.LastRound.Max))

	// Overload controller: state machine (one-hot by state plus the raw
	// code), congestion signal, and the computed Retry-After.
	ov := snap.Overload
	for _, st := range []string{"healthy", "degraded", "shedding"} {
		v := 0.0
		if ov.State == st {
			v = 1
		}
		w.Gauge("mergepathd_overload_state", `state="`+st+`"`,
			"Overload state machine, one-hot: 1 on the series matching the current state.", v)
	}
	w.Gauge("mergepathd_overload_state_code", "", "Overload state as a number: 0 healthy, 1 degraded, 2 shedding.", float64(ov.StateCode))
	w.Gauge("mergepathd_overload_target_seconds", "", "CoDel queue-sojourn target.", secs(ov.TargetMS))
	w.Gauge("mergepathd_overload_sojourn_min_seconds", "", "Minimum queue sojourn of the last completed interval with traffic (the congestion signal).", secs(ov.SojournMinMS))
	w.Gauge("mergepathd_overload_backlog_elements", "", "Elements admitted but not yet finished.", float64(ov.BacklogElements))
	w.Gauge("mergepathd_overload_drain_elements_per_second", "", "EWMA element throughput of completed rounds.", ov.DrainElemsPerSec)
	w.Gauge("mergepathd_overload_retry_after_seconds", "", "Computed Retry-After currently quoted on 429/503 responses.", float64(ov.RetryAfterSeconds))
	w.Counter("mergepathd_overload_shed_total", "", "Admissions refused by the overload controller while shedding.", float64(ov.ShedTotal))
	w.Counter("mergepathd_overload_transitions_total", `to="degraded"`, "Overload state transitions, by destination state.", float64(ov.TransitionsDegraded))
	w.Counter("mergepathd_overload_transitions_total", `to="shedding"`, "Overload state transitions, by destination state.", float64(ov.TransitionsShedding))
	w.Counter("mergepathd_overload_transitions_total", `to="healthy"`, "Overload state transitions, by destination state.", float64(ov.TransitionsHealthy))

	// Wire formats: body counts by negotiated encoding and 415 refusals.
	w.Counter("mergepathd_wire_requests_total", `format="json"`, "Request bodies on the /v1 endpoints, by negotiated format.", float64(snap.Wire.RequestsJSON))
	w.Counter("mergepathd_wire_requests_total", `format="binary"`, "Request bodies on the /v1 endpoints, by negotiated format.", float64(snap.Wire.RequestsBinary))
	w.Counter("mergepathd_wire_responses_total", `format="json"`, "Responses written on the /v1 endpoints, by format.", float64(snap.Wire.ResponsesJSON))
	w.Counter("mergepathd_wire_responses_total", `format="binary"`, "Responses written on the /v1 endpoints, by format.", float64(snap.Wire.ResponsesBinary))
	w.Counter("mergepathd_unsupported_media_type_total", "", "Requests refused with 415 for an unknown or endpoint-inapplicable Content-Type.", float64(snap.Wire.UnsupportedMediaType))

	// K-way merges: strategy knob (one-hot), rounds by executed
	// strategy, and the co-rank window balance — the Theorem 5 check
	// extended to k runs (docs/KWAY.md).
	kw := snap.KWay
	for _, st := range []string{"auto", "heap", "tree", "corank"} {
		v := 0.0
		if kw.Strategy == st {
			v = 1
		}
		w.Gauge("mergepathd_kway_strategy", `strategy="`+st+`"`,
			"Configured k-way merge strategy, one-hot: 1 on the series matching the knob.", v)
	}
	w.Counter("mergepathd_kway_merges_total", `strategy="heap"`, "K-way merge rounds, by executed strategy.", float64(kw.MergesHeap))
	w.Counter("mergepathd_kway_merges_total", `strategy="tree"`, "K-way merge rounds, by executed strategy.", float64(kw.MergesTree))
	w.Counter("mergepathd_kway_merges_total", `strategy="corank"`, "K-way merge rounds, by executed strategy.", float64(kw.MergesCoRank))
	w.Gauge("mergepathd_kway_last_k", "", "Run count of the latest k-way merge round.", float64(kw.LastK))
	w.Gauge("mergepathd_kway_last_workers", "", "Parallel windows of the latest k-way merge round.", float64(kw.LastWorkers))
	w.Gauge("mergepathd_kway_imbalance_max", "", "Worst co-rank per-window load-imbalance ratio since start (~1.0 by construction).", kw.ImbalanceMax)
	w.Gauge("mergepathd_kway_imbalance_mean", "", "Mean co-rank per-window load-imbalance ratio since start.", kw.ImbalanceMean)

	// Jobs subsystem: submission outcomes, occupancy, spill usage and
	// the external-sort engine's block I/O.
	if j := snap.Jobs; j != nil {
		w.Counter("mergepathd_jobs_submitted_total", "", "Jobs admitted since start.", float64(j.Submitted))
		w.Counter("mergepathd_jobs_completed_total", "", "Jobs that finished successfully.", float64(j.Completed))
		w.Counter("mergepathd_jobs_failed_total", "", "Jobs that ended in failure.", float64(j.Failed))
		w.Counter("mergepathd_jobs_canceled_total", "", "Jobs canceled before completion.", float64(j.Canceled))
		w.Counter("mergepathd_jobs_expired_total", "", "Finished jobs whose files the TTL sweeper removed.", float64(j.Expired))
		w.Counter("mergepathd_jobs_shed_busy_total", "", "Job submissions refused because the job queue was full.", float64(j.ShedBusy))
		w.Gauge("mergepathd_jobs_running", "", "Jobs executing right now.", float64(j.Running))
		w.Gauge("mergepathd_jobs_pending", "", "Jobs waiting in the bounded job queue.", float64(j.Pending))
		w.Gauge("mergepathd_jobs_queue_capacity", "", "Job queue bound; a full queue sheds with 503.", float64(j.QueueCapacity))
		w.Gauge("mergepathd_jobs_max_concurrent", "", "Bound on jobs executing at once.", float64(j.MaxConcurrent))
		w.Gauge("mergepathd_jobs_tracked", "", "Job records currently retained (all states).", float64(j.Tracked))
		w.Gauge("mergepathd_jobs_datasets", "", "Datasets currently stored in the spill directory.", float64(j.Datasets))
		w.Gauge("mergepathd_jobs_dataset_bytes", "", "Bytes of dataset payload currently on disk.", float64(j.DatasetBytes))
		w.Gauge("mergepathd_jobs_memory_records", "", "Per-job in-memory budget in records (the external sort's M).", float64(j.MemoryRecords))
		w.Counter("mergepathd_jobs_block_reads_total", "", "External-sort block reads accumulated across finished jobs.", float64(j.BlockReads))
		w.Counter("mergepathd_jobs_block_writes_total", "", "External-sort block writes accumulated across finished jobs.", float64(j.BlockWrites))
		w.Counter("mergepathd_jobs_gc_sweeps_total", "", "TTL garbage-collection passes.", float64(j.GCSweeps))
		w.Counter("mergepathd_jobs_files_removed_total", "", "Spill files deleted (GC, cancel cleanup, dataset deletion).", float64(j.FilesRemoved))
		w.Counter("mergepathd_jobs_result_aborts_total", "", "Job result streams that died mid-body (client disconnect or read failure).", float64(j.ResultAborts))

		// Durability: write-ahead journal, fsync discipline, restart
		// recovery and checksum verdicts (docs/DURABILITY.md).
		d := j.Durability
		enabled := 0.0
		if d.JournalEnabled {
			enabled = 1
		}
		w.Gauge("mergepathd_jobs_journal_enabled", "", "1 when the write-ahead manifest journal is active (-journal with a real -spill-dir).", enabled)
		for _, pol := range []string{"always", "state", "never"} {
			v := 0.0
			if d.FsyncPolicy == pol {
				v = 1
			}
			w.Gauge("mergepathd_jobs_fsync_policy", `policy="`+pol+`"`,
				"Configured fsync policy, one-hot: 1 on the series matching -fsync-policy.", v)
		}
		w.Counter("mergepathd_jobs_journal_appends_total", "", "Records appended to the write-ahead manifest journal.", float64(d.JournalAppends))
		w.Counter("mergepathd_jobs_journal_replayed_total", "", "Journal records replayed by the startup recovery pass.", float64(d.JournalReplayed))
		w.Counter("mergepathd_jobs_fsyncs_total", "", "fsync calls issued by the jobs subsystem (journal, data seals, directory).", float64(d.Fsyncs))
		w.Counter("mergepathd_jobs_recovered_datasets_total", "", "Datasets re-registered intact by the startup recovery pass.", float64(d.RecoveredDatasets))
		w.Counter("mergepathd_jobs_recovered_results_total", "", "Done jobs whose results survived restart and were re-registered.", float64(d.RecoveredResults))
		w.Counter("mergepathd_jobs_recovered_failed_total", "", "In-flight jobs marked failed(restart) by the recovery pass.", float64(d.RecoveredFailed))
		w.Counter("mergepathd_jobs_orphans_removed_total", "", "Unaccounted spill files removed by the recovery pass.", float64(d.OrphansRemoved))
		w.Counter("mergepathd_jobs_corruption_detected_total", "", "Checksum and integrity failures detected (corruption is failed loudly, never streamed).", float64(d.CorruptionDetected))
	}

	// Per-endpoint request counters and latency summaries.
	for _, name := range sortedKeys(snap.Endpoints) {
		e := snap.Endpoints[name]
		lbl := `endpoint="` + name + `"`
		w.Counter("mergepathd_requests_total", lbl, "Requests finished, by endpoint (all statuses).", float64(e.Count))
		w.Counter("mergepathd_request_errors_total", lbl+`,class="4xx"`, "Error responses, by endpoint and status class.", float64(e.Err4xx))
		w.Counter("mergepathd_request_errors_total", lbl+`,class="5xx"`, "Error responses, by endpoint and status class.", float64(e.Err5xx))
		w.LatencySummary("mergepathd_request_latency_seconds", lbl,
			"Latency of successful requests, by endpoint.", e.Latency)
	}

	// Per-stage span latency summaries.
	for _, name := range sortedStageNames() {
		h, ok := snap.Stages[name]
		if !ok {
			continue
		}
		w.LatencySummary("mergepathd_stage_latency_seconds", `stage="`+name+`"`,
			"Per-request lifecycle stage timings (partition/merge are cumulative worker time, the rest wall time).", h)
	}
	return w.String()
}

func (s *Server) handleMetricsProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", promtext.ContentType)
	_, _ = w.Write([]byte(renderProm(s.Snapshot())))
}
