package server

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mergepath/internal/fault"
	"mergepath/internal/overload"
	"mergepath/internal/resilience"
	"mergepath/internal/verify"
)

// TestChaosSoak is the closed-loop resilience exercise: injected
// latency stalls the pool until the overload controller sheds, the
// resilient client's circuit breaker opens on the 429s, the fault then
// clears mid-run, and the whole stack must walk back — controller to
// healthy, breaker through half-open to closed — with every successful
// merge byte-identical to the reference oracle throughout.
//
// Runs a few seconds by default so tier-1 stays fast; set
// MERGEPATH_SOAK (e.g. "60s") for the full soak (`make soak` does, with
// -race).
func TestChaosSoak(t *testing.T) {
	total := 4 * time.Second
	if env := os.Getenv("MERGEPATH_SOAK"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("MERGEPATH_SOAK=%q: %v", env, err)
		}
		total = d
	}

	inj, err := fault.Parse("sort:latency=30ms@1", 42)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Workers: 2, Fault: inj, Overload: overload.Config{
		Target:   time.Millisecond,
		Interval: 10 * time.Millisecond,
	}})

	client := resilience.New(ts.Client(), resilience.Config{
		MaxRetries: 2,
		Backoff:    resilience.BackoffConfig{Base: 20 * time.Millisecond, Max: 250 * time.Millisecond},
		Budget:     resilience.BudgetConfig{RatePerSec: 50, Burst: 100},
		Breaker:    resilience.BreakerConfig{FailureThreshold: 3, OpenFor: 300 * time.Millisecond},
		Seed:       42,
	})

	ctx, cancel := context.WithTimeout(context.Background(), total+30*time.Second)
	defer cancel()

	var (
		wrongBytes  atomic.Uint64 // 200s whose payload disagreed with the oracle
		goodPhase1  atomic.Uint64 // verified successes while the fault was live
		goodPhase2  atomic.Uint64 // verified successes after the fault cleared
		faultOn     atomic.Bool
		statesMu    sync.Mutex
		statesSeen  = map[string]bool{}
		stateOrder  []string
		stopWorkers = make(chan struct{})
		stopHealth  = make(chan struct{})
	)
	faultOn.Store(true)

	// Health poller: records the server-side state timeline and — because
	// SnapshotNow settles elapsed intervals — keeps the controller's
	// clock ticking even when the breaker is swallowing client traffic.
	var healthWG sync.WaitGroup
	healthWG.Add(1)
	go func() {
		defer healthWG.Done()
		for {
			select {
			case <-stopHealth:
				return
			case <-time.After(5 * time.Millisecond):
			}
			hres, err := ts.Client().Get(ts.URL + "/healthz")
			if err != nil {
				continue
			}
			var health struct {
				Status string `json:"status"`
			}
			_ = json.NewDecoder(hres.Body).Decode(&health)
			hres.Body.Close()
			statesMu.Lock()
			if !statesSeen[health.Status] {
				statesSeen[health.Status] = true
				stateOrder = append(stateOrder, health.Status)
			}
			statesMu.Unlock()
		}
	}()

	// Pressure: raw (non-retrying) sorts keep the injected 30ms rounds
	// flowing while the fault is enabled, stalling the dispatcher.
	var pressureWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		pressureWG.Add(1)
		go func() {
			defer pressureWG.Done()
			for faultOn.Load() {
				code := post(t, ts, "/v1/sort", SortRequest{Data: []int64{3, 1, 2}}, nil)
				if code == 0 {
					return
				}
			}
		}()
	}

	// Merge workers: the resilient client under test. Every 200 is
	// checked byte-for-byte against the reference merge.
	var workerWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		workerWG.Add(1)
		go func(seed int64) {
			defer workerWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stopWorkers:
					return
				default:
				}
				a := sortedInt64(rng, 1+rng.Intn(64))
				b := sortedInt64(rng, 1+rng.Intn(64))
				body, _ := json.Marshal(MergeRequest{A: a, B: b})
				resp, err := client.Post(ctx, ts.URL+"/v1/merge", "application/json", body)
				if err != nil {
					// Breaker-open rejects return instantly; don't spin.
					time.Sleep(2 * time.Millisecond)
					continue
				}
				if resp.StatusCode == http.StatusOK {
					var mr MergeResponse
					decodeErr := json.NewDecoder(resp.Body).Decode(&mr)
					resp.Body.Close()
					if decodeErr != nil {
						wrongBytes.Add(1)
						continue
					}
					if !verify.Equal(mr.Result, verify.ReferenceMerge(a, b)) {
						wrongBytes.Add(1)
						continue
					}
					if faultOn.Load() {
						goodPhase1.Add(1)
					} else {
						goodPhase2.Add(1)
					}
				} else {
					resp.Body.Close()
				}
			}
		}(int64(100 + g))
	}

	// Phase 1: fault live for half the run. Phase 2: fault clears.
	time.Sleep(total / 2)
	inj.SetEnabled(false)
	faultOn.Store(false)
	pressureWG.Wait()
	time.Sleep(total / 2)
	close(stopWorkers)
	workerWG.Wait()

	// Grace period: wait for the controller to settle back to healthy.
	deadline := time.Now().Add(10 * time.Second)
	for s.ctrl.State() != overload.Healthy && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		_ = s.ctrl.SnapshotNow()
	}
	close(stopHealth)
	healthWG.Wait()

	snap := s.Snapshot()
	stats := client.StatsSnapshot()
	statesMu.Lock()
	timeline := append([]string(nil), stateOrder...)
	sawShedding := statesSeen["shedding"]
	statesMu.Unlock()
	t.Logf("state timeline: %v", timeline)
	t.Logf("server: throttled=%d sheds(503)=%d transitions(d/s/h)=%d/%d/%d",
		snap.Queue.Throttled, snap.Queue.Shed,
		snap.Overload.TransitionsDegraded, snap.Overload.TransitionsShedding, snap.Overload.TransitionsHealthy)
	t.Logf("client: %+v", stats)
	t.Logf("goodput: phase1=%d phase2=%d wrong=%d", goodPhase1.Load(), goodPhase2.Load(), wrongBytes.Load())

	// Correctness is non-negotiable at every point of the loop.
	if n := wrongBytes.Load(); n != 0 {
		t.Fatalf("%d successful responses carried wrong merge bytes", n)
	}
	// The fault must have tripped the controller all the way to shedding
	// and produced 429s...
	if !sawShedding {
		t.Errorf("server never reached shedding; timeline %v", timeline)
	}
	if snap.Queue.Throttled == 0 {
		t.Error("no requests were throttled with 429")
	}
	if snap.Overload.TransitionsShedding == 0 || snap.Overload.TransitionsHealthy == 0 {
		t.Errorf("incomplete state cycle: transitions %d/%d/%d",
			snap.Overload.TransitionsDegraded, snap.Overload.TransitionsShedding, snap.Overload.TransitionsHealthy)
	}
	// ...the breaker must have opened on them and closed again after the
	// fault cleared...
	if stats.BreakerOpens == 0 {
		t.Error("client breaker never opened under shedding")
	}
	if stats.BreakerCloses == 0 {
		t.Error("client breaker never closed after recovery")
	}
	if st := client.BreakerStates()["/v1/merge"]; st != "closed" {
		t.Errorf("merge breaker finished %q, want closed", st)
	}
	// ...and goodput must survive the episode: some successes under
	// fault (retries doing their job) and a recovered flow afterwards.
	if goodPhase2.Load() == 0 {
		t.Error("no successful merges after the fault cleared")
	}
	if s.ctrl.State() != overload.Healthy {
		t.Errorf("controller finished %v, want healthy", s.ctrl.State())
	}
}
