package server

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"mergepath/internal/kway"
	"mergepath/internal/verify"
)

// TestMergeKStrategyIdentical pins the server-level contract behind the
// -kway-strategy knob: /v1/mergek responses are byte-identical whichever
// strategy the operator configures.
func TestMergeKStrategyIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	lists := make([][]int64, 9)
	for i := range lists {
		lists[i] = sortedInt64(rng, rng.Intn(700))
	}
	var want []int64
	for _, strat := range []kway.Strategy{kway.StrategyAuto, kway.StrategyHeap, kway.StrategyTree, kway.StrategyCoRank} {
		_, ts := newTestServer(t, Config{KWayStrategy: strat, Workers: 4})
		var got MergeKResponse
		if code := post(t, ts, "/v1/mergek", MergeKRequest{Lists: lists}, &got); code != http.StatusOK {
			t.Fatalf("strategy %v: status %d", strat, code)
		}
		if want == nil {
			want = got.Result
			continue
		}
		if !verify.Equal(got.Result, want) {
			t.Fatalf("strategy %v: response differs from first strategy's", strat)
		}
	}
}

// TestKWayMetricsSurfaces drives /v1/mergek with the co-rank strategy
// forced and checks all three observability surfaces agree: the kway
// block on /metrics, the mergepathd_kway_* series on /metrics/prom and
// the kway block on /healthz.
func TestKWayMetricsSurfaces(t *testing.T) {
	_, ts := newTestServer(t, Config{KWayStrategy: kway.StrategyCoRank, Workers: 4})
	rng := rand.New(rand.NewSource(51))
	lists := make([][]int64, 6)
	for i := range lists {
		lists[i] = sortedInt64(rng, 300)
	}
	if code := post(t, ts, "/v1/mergek", MergeKRequest{Lists: lists}, nil); code != http.StatusOK {
		t.Fatalf("mergek status %d", code)
	}

	var snap MetricsSnapshot
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(mresp.Body).Decode(&snap)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.KWay.Strategy != "corank" {
		t.Fatalf("kway strategy %q, want corank", snap.KWay.Strategy)
	}
	if snap.KWay.MergesCoRank != 1 || snap.KWay.MergesHeap != 0 || snap.KWay.MergesTree != 0 {
		t.Fatalf("kway merge counters: %+v", snap.KWay)
	}
	if snap.KWay.LastK != len(lists) {
		t.Fatalf("kway last_k %d, want %d", snap.KWay.LastK, len(lists))
	}
	if snap.KWay.LastWorkers < 1 {
		t.Fatalf("kway last_workers %d", snap.KWay.LastWorkers)
	}
	// The co-rank cut balances windows to within one element, so the
	// recorded imbalance must be ~1.0 — Theorem 5 extended to k runs.
	if snap.KWay.ImbalanceMax == 0 || snap.KWay.ImbalanceMax > 1.5 {
		t.Fatalf("kway imbalance_max %.3f", snap.KWay.ImbalanceMax)
	}
	// The window loads also feed the pool-wide round-balance metrics.
	if snap.Pool.ImbalanceMax == 0 {
		t.Fatal("co-rank loads did not reach the pool round metrics")
	}

	presp, err := http.Get(ts.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	for _, series := range []string{
		`mergepathd_kway_strategy{strategy="corank"} 1`,
		`mergepathd_kway_merges_total{strategy="corank"} 1`,
		`mergepathd_kway_merges_total{strategy="heap"} 0`,
		"mergepathd_kway_last_k 6",
		"mergepathd_kway_imbalance_max 1",
	} {
		if !strings.Contains(string(prom), series) {
			t.Fatalf("prom exposition missing %q", series)
		}
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	err = json.NewDecoder(hresp.Body).Decode(&h)
	hresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if h.KWay == nil || h.KWay.Strategy != "corank" || h.KWay.MergesCoRank != 1 {
		t.Fatalf("healthz kway block: %+v", h.KWay)
	}
}

// TestKWayAutoStrategyCounts checks the auto knob resolves per call:
// a small mergek lands on the heap counter (below the co-rank
// threshold), never the auto label.
func TestKWayAutoStrategyCounts(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if code := post(t, ts, "/v1/mergek", MergeKRequest{Lists: [][]int64{{1, 3}, {2}, {4}}}, nil); code != http.StatusOK {
		t.Fatalf("mergek status %d", code)
	}
	snap := s.Snapshot()
	if snap.KWay.Strategy != "auto" {
		t.Fatalf("configured strategy %q, want auto", snap.KWay.Strategy)
	}
	if snap.KWay.MergesHeap != 1 {
		t.Fatalf("small mergek should resolve to heap: %+v", snap.KWay)
	}
}
