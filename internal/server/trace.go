// Per-request tracing: every request gets an ID and a Trace that
// collects one Span per lifecycle stage it passes through. Spans are
// surfaced three ways — aggregated into the per-stage latency
// histograms on /metrics and /metrics/prom, echoed to the client in a
// Server-Timing response header (so load generators can attribute
// latency without server access), and written to the structured access
// log when Config.AccessLog is on. The request ID is echoed in the
// X-Request-Id response header and stamped on every log line the
// request produces, including recovered-panic stacks.
package server

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mergepath/internal/stats"
)

// Lifecycle stage names, shared by spans, the per-stage histograms on
// /metrics, and docs/METRICS.md. Stages record wall time except
// StagePartition and StageMerge, which record cumulative worker time
// (summed across the round's concurrent workers) — the right measure
// for the paper's "co-ranking is negligible next to merging" claim.
const (
	// StageDecode is request-body read + JSON parse + sortedness checks.
	StageDecode = "decode"
	// StageQueueWait is admission: submit to the bounded queue until the
	// dispatcher dequeues the job.
	StageQueueWait = "queue_wait"
	// StageCoalesceWait is the time a small merge sat in the pending
	// buffer waiting for round-mates (coalesced pair jobs only).
	StageCoalesceWait = "coalesce_wait"
	// StagePartition is cumulative worker time in diagonal/offset binary
	// searches (the co-rank step) for this request's round.
	StagePartition = "partition"
	// StageMerge is cumulative worker time executing merge/sort steps
	// for this request's round.
	StageMerge = "merge"
	// StageExecute is wall time from admission until the job completed
	// or failed (queue wait + coalesce wait + round execution).
	StageExecute = "execute"
	// StageWrite is response serialization: status + JSON body write.
	StageWrite = "write"
)

// stageNames is the fixed stage key set, in lifecycle order.
var stageNames = []string{
	StageDecode, StageQueueWait, StageCoalesceWait,
	StagePartition, StageMerge, StageExecute, StageWrite,
}

// StageNames returns the lifecycle stage keys in order — the key set of
// the Stages map in MetricsSnapshot and of Server-Timing entries.
// Callers own the returned slice.
func StageNames() []string { return append([]string(nil), stageNames...) }

// Span is one timed lifecycle stage of one request. Start is the offset
// from request arrival; for the round-level stages (partition, merge)
// it is best-effort (the stage ran inside a shared round).
type Span struct {
	Stage string        // one of the Stage* constants
	Start time.Duration // offset from request arrival
	Dur   time.Duration // stage duration (wall or cumulative worker time, per stage)
}

// Trace accumulates the spans of one request. All methods are safe on a
// nil receiver (instrumentation points fire unconditionally; jobs
// submitted without a trace — tests, internal work — skip recording)
// and safe for concurrent use (the dispatcher and the handler goroutine
// both record).
type Trace struct {
	id    string
	start time.Time
	mu    sync.Mutex
	spans []Span
}

func newTrace(id string, start time.Time) *Trace {
	return &Trace{id: id, start: start}
}

// NewTrace starts a trace for a request with the given ID that arrived
// at start. Exported for mergerouter, which records its own lifecycle
// stages (route/forward/scatter/gather) with the same span machinery
// and Server-Timing exposition as the node daemon.
func NewTrace(id string, start time.Time) *Trace { return newTrace(id, start) }

// ID returns the request ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// add records a span for stage that began at begin and lasted d.
func (t *Trace) add(stage string, begin time.Time, d time.Duration) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Stage: stage, Start: begin.Sub(t.start), Dur: d})
	t.mu.Unlock()
}

// span records a stage that began at begin and ends now.
func (t *Trace) span(stage string, begin time.Time) {
	t.add(stage, begin, time.Since(begin))
}

// Spans returns a copy of the recorded spans.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Add records a span for stage that began at begin and lasted d — the
// exported form of add, used by mergerouter to stamp stages whose
// duration was measured elsewhere (e.g. cumulative scatter wall time).
func (t *Trace) Add(stage string, begin time.Time, d time.Duration) { t.add(stage, begin, d) }

// Span records a stage that began at begin and ends now (exported for
// mergerouter).
func (t *Trace) Span(stage string, begin time.Time) { t.span(stage, begin) }

// ServerTiming renders the spans recorded so far as a Server-Timing
// header value — the exported form of serverTiming, used by
// mergerouter to emit the same header format as the node daemon.
func (t *Trace) ServerTiming() string { return t.serverTiming() }

// LogLine renders one structured (logfmt-style key=value) access-log
// line for a finished request (exported for mergerouter's -access-log).
func (t *Trace) LogLine(endpoint string, status int, total time.Duration) string {
	return t.logLine(endpoint, status, total)
}

// serverTiming renders the spans recorded so far as a Server-Timing
// header value (RFC: metric;dur=<milliseconds>). The write span cannot
// appear — the header is sent before the body is written; it is still
// aggregated into /metrics.
func (t *Trace) serverTiming() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) == 0 {
		return ""
	}
	var b strings.Builder
	for i, sp := range t.spans {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s;dur=%.3f", sp.Stage, stats.Millis(sp.Dur))
	}
	return b.String()
}

// logLine renders one structured (logfmt-style key=value) access-log
// line for a finished request.
func (t *Trace) logLine(endpoint string, status int, total time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "req id=%s endpoint=%s status=%d total_ms=%.3f",
		t.ID(), endpoint, status, stats.Millis(total))
	for _, sp := range t.Spans() {
		fmt.Fprintf(&b, " %s_ms=%.3f", sp.Stage, stats.Millis(sp.Dur))
	}
	return b.String()
}

// Request IDs: a per-process random prefix plus a monotonic sequence —
// unique within and (with high probability) across daemon restarts,
// cheap to generate, and graspable in logs. Clients may supply their
// own via an X-Request-Id header, which the daemon honours and echoes.
var (
	reqSeq    atomic.Uint64
	reqPrefix = func() string {
		var b [4]byte
		if _, err := crand.Read(b[:]); err != nil {
			return "00000000"
		}
		return hex.EncodeToString(b[:])
	}()
)

func nextRequestID() string {
	return reqPrefix + "-" + strconv.FormatUint(reqSeq.Add(1), 10)
}

// NextRequestID mints a fresh request ID (process-random prefix plus a
// monotonic sequence number). Exported so mergerouter assigns IDs from
// the same generator scheme and sub-requests stay correlatable in
// backend logs.
func NextRequestID() string { return nextRequestID() }

// traceKey carries the request's *Trace through its context.
type traceKey struct{}

func withTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// traceFrom returns the request's trace, or nil when tracing was not
// set up (direct handler tests); all Trace methods accept nil.
func traceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// sortedStageNames returns the stage keys in lifecycle order for stable
// exposition output.
func sortedStageNames() []string { return stageNames }

// sortedKeys returns map keys in lexical order (stable Prometheus and
// test output).
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
