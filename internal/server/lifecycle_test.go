package server

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"mergepath/internal/batch"
	"mergepath/internal/fault"
	"mergepath/internal/verify"
)

// pollUntil spins (with a deadline) until cond holds — for asserting on
// metrics the dispatcher updates asynchronously.
func pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPanicIsolation is the tentpole's headline guarantee, run under
// -race by the Makefile race target: a request that panics mid-round
// gets its own 500 while concurrent requests complete normally and the
// daemon stays up.
func TestPanicIsolation(t *testing.T) {
	inj := fault.New(map[string]fault.Rule{"sort": {Panic: 1}}, 1)
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64, Fault: inj})

	const merges, sorts = 8, 2
	var wg sync.WaitGroup
	mergeCodes := make([]int, merges)
	sortCodes := make([]int, sorts)
	for i := 0; i < merges; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, b := []int64{1, 3, 5}, []int64{2, 4, 6}
			var got MergeResponse
			mergeCodes[i] = post(t, ts, "/v1/merge", MergeRequest{A: a, B: b}, &got)
			if mergeCodes[i] == http.StatusOK && !verify.Equal(got.Result, verify.ReferenceMerge(a, b)) {
				t.Error("merge alongside panicking sorts returned wrong bytes")
			}
		}(i)
	}
	for i := 0; i < sorts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sortCodes[i] = post(t, ts, "/v1/sort", SortRequest{Data: []int64{3, 1, 2}}, nil)
		}(i)
	}
	wg.Wait()

	for i, code := range mergeCodes {
		if code != http.StatusOK {
			t.Errorf("concurrent merge %d: status %d, want 200", i, code)
		}
	}
	for i, code := range sortCodes {
		if code != http.StatusInternalServerError {
			t.Errorf("panicking sort %d: status %d, want 500", i, code)
		}
	}

	// The daemon survived: health is green and new work still runs.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panics: %d", resp.StatusCode)
	}
	if code := post(t, ts, "/v1/merge", MergeRequest{A: []int64{1}, B: []int64{2}}, nil); code != http.StatusOK {
		t.Fatalf("post-panic merge: status %d", code)
	}

	snap := s.Snapshot()
	if snap.Pool.PanicsRecovered != sorts {
		t.Errorf("panics_recovered = %d, want %d", snap.Pool.PanicsRecovered, sorts)
	}
	if snap.Endpoints["sort"].Err5xx != sorts {
		t.Errorf("sort err5xx = %d, want %d", snap.Endpoints["sort"].Err5xx, sorts)
	}
}

// TestBatchRoundQuarantine drives a panic out of the batch kernel itself
// (a mis-sized pair reaching batch.MergeWithLoads' length check): the
// round must be quarantined so only the poisoned pair's job fails and
// its coalesced round-mates still merge correctly.
func TestBatchRoundQuarantine(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, QueueDepth: 16, BatchWindow: time.Millisecond})
	release, _ := blockPool(t, s)

	bad := &job{done: make(chan error, 1), pair: &batch.Pair[int64]{
		A: []int64{1, 2}, B: []int64{3}, Out: make([]int64, 2), // wrong length: panics in the round
	}}
	type goodJob struct {
		j    *job
		a, b []int64
	}
	goods := make([]goodJob, 3)
	for i := range goods {
		a := []int64{int64(i), int64(i + 10)}
		b := []int64{int64(i + 5)}
		goods[i] = goodJob{
			j: &job{done: make(chan error, 1), pair: &batch.Pair[int64]{A: a, B: b, Out: make([]int64, 3)}},
			a: a, b: b,
		}
	}
	if err := s.pool.submit(bad); err != nil {
		t.Fatal(err)
	}
	for _, g := range goods {
		if err := s.pool.submit(g.j); err != nil {
			t.Fatal(err)
		}
	}
	close(release)

	var pe *PanicError
	if err := <-bad.done; !errors.As(err, &pe) {
		t.Fatalf("poisoned pair: err %v, want PanicError", err)
	}
	for i, g := range goods {
		if err := <-g.j.done; err != nil {
			t.Fatalf("round-mate %d failed: %v (quarantine must salvage it)", i, err)
		}
		if !verify.Equal(g.j.pair.Out, verify.ReferenceMerge(g.a, g.b)) {
			t.Fatalf("round-mate %d: wrong merge after quarantine", i)
		}
	}
	if n := s.Snapshot().Pool.PanicsRecovered; n == 0 {
		t.Error("panics_recovered not incremented by quarantined round")
	}
}

// TestClientCancelDistinctFromTimeout: a client disconnect must surface
// as the 499-class canceled path with its own counter — never as a 504
// or a timeout metric (the satellite fix for pool.do conflating the two).
func TestClientCancelDistinctFromTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 8})
	release, _ := blockPool(t, s)
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/merge",
		strings.NewReader(`{"a":[1],"b":[2]}`))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	// Wait until the job is actually parked behind the blocker, then
	// abandon it.
	pollUntil(t, "job queued", func() bool { return s.pool.depth() >= 1 })
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled request returned a response, want client-side error")
	}
	pollUntil(t, "canceled counter", func() bool { return s.Snapshot().Queue.Canceled == 1 })
	if n := s.Snapshot().Queue.Timeouts; n != 0 {
		t.Errorf("timeouts = %d after a client cancel, want 0 (cancel must not count as timeout)", n)
	}
}

// TestPairExpiredAtFlushShed: a coalesced pair whose deadline passes
// while parked in pending must be dropped at flush time and counted as
// shed-at-flush, not merged after its client already got 504.
func TestPairExpiredAtFlushShed(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 8, BatchWindow: 300 * time.Millisecond})
	req, err := http.NewRequest("POST", ts.URL+"/v1/merge", strings.NewReader(`{"a":[1],"b":[2]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Timeout-Ms", "40")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (deadline shorter than batch window)", resp.StatusCode)
	}
	pollUntil(t, "shed-at-flush counter", func() bool { return s.Snapshot().Queue.ShedAtFlush == 1 })
	if n := s.Snapshot().Pool.BatchRounds; n != 0 {
		t.Errorf("batch_rounds = %d, want 0: the expired pair must not be merged", n)
	}
}

// TestTimeoutHeaderValidation: the documented X-Timeout-Ms contract —
// malformed values are 400, large values clamp to the server deadline.
func TestTimeoutHeaderValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: 2 * time.Second})
	send := func(header string) int {
		t.Helper()
		req, err := http.NewRequest("POST", ts.URL+"/v1/merge", strings.NewReader(`{"a":[1],"b":[2]}`))
		if err != nil {
			t.Fatal(err)
		}
		if header != "" {
			req.Header.Set("X-Timeout-Ms", header)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, bad := range []string{"0", "-5", "abc", "1.5", "1e3", "99999999999999999999999"} {
		if code := send(bad); code != http.StatusBadRequest {
			t.Errorf("X-Timeout-Ms=%q: status %d, want 400", bad, code)
		}
	}
	// Valid values — including ones above the server deadline, which
	// clamp ("lower, not raise") rather than erroring.
	for _, good := range []string{"", "50", "1000", "999999999"} {
		if code := send(good); code != http.StatusOK {
			t.Errorf("X-Timeout-Ms=%q: status %d, want 200", good, code)
		}
	}
}

// TestInjectedErrorIs500 covers the error (non-panic) injection path end
// to end: the job fails with ErrInjected, the handler maps it to 500.
func TestInjectedErrorIs500(t *testing.T) {
	inj := fault.New(map[string]fault.Rule{"setops": {Error: 1}}, 1)
	_, ts := newTestServer(t, Config{Fault: inj})
	code := post(t, ts, "/v1/setops", SetOpsRequest{Op: "union", A: []int64{1}, B: []int64{2}}, nil)
	if code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", code)
	}
	if inj.Errors.Load() != 1 {
		t.Fatalf("injector error count = %d, want 1", inj.Errors.Load())
	}
	// The daemon is unaffected.
	if code := post(t, ts, "/v1/merge", MergeRequest{A: []int64{1}, B: []int64{2}}, nil); code != http.StatusOK {
		t.Fatalf("follow-up merge: status %d", code)
	}
}

// TestCoalescedPairFaultIsolation: an injected panic on the coalescing
// path fails only the faulted pair, not the batch round it would have
// joined.
func TestCoalescedPairFaultIsolation(t *testing.T) {
	inj := fault.New(map[string]fault.Rule{"merge": {Panic: 1}}, 1)
	s, ts := newTestServer(t, Config{Workers: 2, Fault: inj})
	if code := post(t, ts, "/v1/merge", MergeRequest{A: []int64{1}, B: []int64{2}}, nil); code != http.StatusInternalServerError {
		t.Fatalf("faulted merge: status %d, want 500", code)
	}
	pollUntil(t, "panic recovered", func() bool { return s.Snapshot().Pool.PanicsRecovered >= 1 })
	// Sorts are un-faulted and must still work.
	if code := post(t, ts, "/v1/sort", SortRequest{Data: []int64{2, 1}}, nil); code != http.StatusOK {
		t.Fatalf("sort after merge fault: status %d", code)
	}
}
