package server

import (
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRequestIDAssignedAndEchoed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"a":[1,3],"b":[2,4]}`

	// No inbound ID: the server must mint one and echo it.
	resp, err := ts.Client().Post(ts.URL+"/v1/merge", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); id == "" {
		t.Error("server did not assign an X-Request-Id")
	}
	st := resp.Header.Get("Server-Timing")
	for _, stage := range []string{StageDecode, StageQueueWait, StageExecute} {
		if !strings.Contains(st, stage+";dur=") {
			t.Errorf("Server-Timing missing %s span: %q", stage, st)
		}
	}
	// The write span cannot appear: the header is sent before the body.
	if strings.Contains(st, StageWrite+";dur=") {
		t.Errorf("Server-Timing must not carry the write span: %q", st)
	}

	// Inbound ID: honoured and echoed verbatim.
	req, err := http.NewRequest("POST", ts.URL+"/v1/merge", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "caller-supplied-42")
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); id != "caller-supplied-42" {
		t.Errorf("inbound request ID not echoed: got %q", id)
	}
}

func TestLargeMergeServerTimingHasRoundSpans(t *testing.T) {
	// The whole-pool path must attribute its round: partition (co-rank
	// searches) and merge (merge steps) spans in the response header.
	_, ts := newTestServer(t, Config{CoalesceLimit: 64, Workers: 4})
	rng := rand.New(rand.NewSource(21))
	a, b := sortedInt64(rng, 3000), sortedInt64(rng, 3000)
	buf := `{"a":[` + joinInt64(a) + `],"b":[` + joinInt64(b) + `]}`
	resp, err := ts.Client().Post(ts.URL+"/v1/merge", "application/json", strings.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := resp.Header.Get("Server-Timing")
	for _, stage := range []string{StagePartition, StageMerge} {
		if !strings.Contains(st, stage+";dur=") {
			t.Errorf("large merge Server-Timing missing %s: %q", stage, st)
		}
	}
}

// joinInt64 renders a JSON array body fragment ("1,2,3") for raw
// requests that need header control.
func joinInt64(s []int64) string {
	var b strings.Builder
	for i, v := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(v, 10))
	}
	return b.String()
}

// TestTraceSpansConcurrent hammers both execution paths from many
// goroutines so `go test -race` exercises concurrent span recording
// (handler goroutine + dispatcher writing the same Trace) and
// concurrent stage-histogram observation. It also asserts minted
// request IDs never collide.
func TestTraceSpansConcurrent(t *testing.T) {
	s, ts := newTestServer(t, Config{CoalesceLimit: 512, Workers: 4, QueueDepth: 256,
		BatchWindow: 200 * time.Microsecond})
	const goroutines, perG = 8, 24

	var (
		mu  sync.Mutex
		ids = make(map[string]bool)
	)
	var wg sync.WaitGroup
	errc := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				var path, body string
				switch i % 3 {
				case 0: // coalesced small merge
					path = "/v1/merge"
					body = `{"a":[` + joinInt64(sortedInt64(rng, 40)) + `],"b":[` + joinInt64(sortedInt64(rng, 40)) + `]}`
				case 1: // uncoalesced whole-pool merge
					path = "/v1/merge"
					body = `{"a":[` + joinInt64(sortedInt64(rng, 400)) + `],"b":[` + joinInt64(sortedInt64(rng, 400)) + `]}`
				default: // sort (run-sort + merge-round spans)
					path = "/v1/sort"
					data := make([]int64, 500)
					for j := range data {
						data[j] = rng.Int63n(1000)
					}
					body = `{"data":[` + joinInt64(data) + `]}`
				}
				resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s: status %d", path, resp.StatusCode)
				}
				id := resp.Header.Get("X-Request-Id")
				if id == "" {
					t.Error("missing X-Request-Id under load")
				}
				mu.Lock()
				if ids[id] {
					t.Errorf("request ID %q served twice", id)
				}
				ids[id] = true
				mu.Unlock()
				if resp.Header.Get("Server-Timing") == "" {
					t.Error("missing Server-Timing under load")
				}
			}
		}(int64(100 + g))
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	snap := s.Snapshot()
	total := uint64(goroutines * perG)
	if got := snap.Stages[StageExecute].Count; got != total {
		t.Errorf("execute spans = %d, want %d", got, total)
	}
	for _, stage := range []string{StageDecode, StageQueueWait, StagePartition, StageMerge, StageWrite} {
		if snap.Stages[stage].Count == 0 {
			t.Errorf("stage %q never observed under mixed load", stage)
		}
	}
}

// TestLargeMergeImbalanceNearOne is the service-level Theorem 5 check:
// an uncoalesced merge partitioned by diagonal co-ranking must hand
// every worker (|A|+|B|)/p ± 1 elements, so the recorded max/min
// imbalance ratio of the round sits at ~1.0.
func TestLargeMergeImbalanceNearOne(t *testing.T) {
	s, ts := newTestServer(t, Config{CoalesceLimit: 64, Workers: 4})
	rng := rand.New(rand.NewSource(23))
	a, b := sortedInt64(rng, 6000), sortedInt64(rng, 6000)
	if code := post(t, ts, "/v1/merge", MergeRequest{A: a, B: b}, nil); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	snap := s.Snapshot()
	if snap.Pool.RunRounds != 1 {
		t.Fatalf("run rounds = %d, want 1", snap.Pool.RunRounds)
	}
	lr := snap.Pool.LastRound
	if lr.Workers != 4 {
		t.Errorf("round engaged %d workers, want 4", lr.Workers)
	}
	// 12000 elements across 4 workers: 3000 each, ±1 at worst.
	if lr.Imbalance < 1.0 || lr.Imbalance > 1.001 {
		t.Errorf("imbalance = %v, want ~1.0 (Theorem 5); round %+v", lr.Imbalance, lr)
	}
	if lr.Min < 2999 || lr.Max > 3001 {
		t.Errorf("per-worker spread %d..%d, want 3000 +/- 1", lr.Min, lr.Max)
	}
}

func TestTraceNilSafe(t *testing.T) {
	// Jobs submitted without a request (internal tests, warmup) carry a
	// nil trace; every instrumentation point must tolerate it.
	var tr *Trace
	if tr.ID() != "" {
		t.Error("nil trace ID should be empty")
	}
	tr.add(StageMerge, time.Now(), time.Millisecond)
	tr.span(StageDecode, time.Now())
	if tr.Spans() != nil {
		t.Error("nil trace should have no spans")
	}
	if tr.serverTiming() != "" {
		t.Error("nil trace should render no Server-Timing")
	}
}

func TestNextRequestIDUnique(t *testing.T) {
	const n = 1000
	seen := make(map[string]bool, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				id := nextRequestID()
				mu.Lock()
				if seen[id] {
					t.Errorf("duplicate request ID %q", id)
				}
				seen[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}
