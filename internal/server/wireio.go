package server

import (
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"
	"time"

	"mergepath/internal/wire"
)

// Content negotiation for the /v1 array endpoints. JSON is the default
// and compatibility path; the binary frame (internal/wire,
// application/x-mergepath-frame) is selected per request via
// Content-Type and per response via Accept, independently — a client
// may upload binary and read JSON or vice versa. Unknown request media
// types get 415; unknown Accept values fall back to JSON (the lenient
// reading of Accept, so curl without headers keeps working).

// bodyFormat identifies the negotiated encoding of one request or
// response body.
type bodyFormat int

const (
	fmtJSON bodyFormat = iota
	fmtBinary
)

// String names the format the way metrics label it.
func (f bodyFormat) String() string {
	if f == fmtBinary {
		return "binary"
	}
	return "json"
}

// requestFormat classifies the request body by Content-Type and counts
// it. An empty Content-Type means JSON (the pre-negotiation contract);
// anything neither JSON nor the frame type is a 415-worthy error.
func (s *Server) requestFormat(r *http.Request) (bodyFormat, error) {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		s.m.reqJSON.Add(1)
		return fmtJSON, nil
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		s.m.badMedia.Add(1)
		return 0, fmt.Errorf("unparseable Content-Type %q: %v", ct, err)
	}
	switch mt {
	case "application/json", "text/json":
		s.m.reqJSON.Add(1)
		return fmtJSON, nil
	case wire.ContentType:
		s.m.reqBinary.Add(1)
		return fmtBinary, nil
	}
	s.m.badMedia.Add(1)
	return 0, fmt.Errorf("unsupported Content-Type %q: this endpoint speaks application/json and %s", mt, wire.ContentType)
}

// errNoBinaryForm rejects a binary request body on the endpoints whose
// request document cannot be expressed as bare arrays (setops carries
// an op, select carries a rank).
func errNoBinaryForm(endpoint string) error {
	return fmt.Errorf("%s has no binary request form; send application/json (Accept may still pick %s for the response)", endpoint, wire.ContentType)
}

// wantsWire reports whether the client's Accept header asks for the
// binary frame. Absent or other Accept values select JSON; there is no
// 406 path — a client that can name the frame type can also parse JSON.
func wantsWire(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt, _, err := mime.ParseMediaType(strings.TrimSpace(part))
		if err == nil && mt == wire.ContentType {
			return true
		}
	}
	return false
}

// wireFormats is the Formats advertisement on /healthz: the body media
// types this build accepts on /v1. The router gates binary scatter hops
// on seeing wire.ContentType here.
func wireFormats() []string { return []string{"application/json", wire.ContentType} }

// arrayResult is the 200 body of an array endpoint (merge, sort,
// mergek, setops): one result list plus how to encode it and which
// pooled buffers to return once the response is on the wire. route()
// writes it as a binary frame when the client Accepted one, else as the
// canonical JSON {"result": ...} document — byte-identical to the
// MergeResponse/SortResponse/... encodings it replaces.
type arrayResult struct {
	binary  bool // encode as a wire frame (client Accepted it)
	isFloat bool // floats is the payload rather than ints
	ints    []int64
	floats  []float64
	release func() // returns pooled buffers; nil when nothing is pooled
}

// free returns the result's pooled buffers (idempotent).
func (ar *arrayResult) free() {
	if ar.release != nil {
		ar.release()
		ar.release = nil
	}
}

// maxDrainBytes bounds how much unread request body the server consumes
// before an error or shed response. Reading the remainder keeps the
// keep-alive connection reusable — exactly what an overloaded server
// wants, since 429 retries on fresh connections would add handshake
// load — while the bound keeps a huge abandoned upload from being
// streamed through for nothing (net/http closes the connection itself
// when more than that remains).
const maxDrainBytes = 1 << 20

// drainBody consumes a bounded remainder of the request body.
func drainBody(r *http.Request) {
	_, _ = io.CopyN(io.Discard, r.Body, maxDrainBytes)
}

// decodeFrame reads a binary-frame request body into pooled arenas,
// recording the decode span. Failures map like the JSON path's: bodies
// over the byte cap or frames over the element limit are 413, malformed
// frames 400. want is the exact list count the endpoint requires
// (negative = any). On success the caller owns the frame and must
// Release it.
func (s *Server) decodeFrame(r *http.Request, want int) (*wire.Frame, int, error) {
	t0 := time.Now()
	f, err := wire.Decode(r.Body, wire.Limits{MaxElements: int(s.cfg.MaxBodyBytes / 8)})
	traceFrom(r.Context()).span(StageDecode, t0)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, http.StatusRequestEntityTooLarge, errors.New("request body exceeds limit")
		}
		if errors.Is(err, wire.ErrTooLarge) {
			return nil, http.StatusRequestEntityTooLarge, err
		}
		return nil, http.StatusBadRequest, err
	}
	if want >= 0 && f.Lists() != want {
		f.Release()
		return nil, http.StatusBadRequest, fmt.Errorf("frame carries %d lists; this endpoint takes exactly %d", f.Lists(), want)
	}
	return f, 0, nil
}
