package stats

import (
	"testing"
	"time"
)

func sample(ds ...time.Duration) Sample { return Sample{Durations: ds} }

func TestSummaries(t *testing.T) {
	s := sample(3*time.Millisecond, 1*time.Millisecond, 2*time.Millisecond)
	if s.Median() != 2*time.Millisecond {
		t.Errorf("median %v", s.Median())
	}
	if s.Min() != time.Millisecond || s.Max() != 3*time.Millisecond {
		t.Errorf("min/max %v/%v", s.Min(), s.Max())
	}
	if s.Mean() != 2*time.Millisecond {
		t.Errorf("mean %v", s.Mean())
	}
}

func TestMedianEven(t *testing.T) {
	s := sample(1*time.Millisecond, 3*time.Millisecond)
	if s.Median() != 2*time.Millisecond {
		t.Errorf("even median %v", s.Median())
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Median() != 0 || s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 {
		t.Error("empty sample summaries must be zero")
	}
}

func TestMeasure(t *testing.T) {
	calls := 0
	s := Measure(2, 3, func() { calls++ })
	if calls != 5 {
		t.Errorf("calls %d, want 5 (2 warmup + 3 measured)", calls)
	}
	if len(s.Durations) != 3 {
		t.Errorf("sample size %d", len(s.Durations))
	}
	for _, d := range s.Durations {
		if d < 0 {
			t.Errorf("negative duration %v", d)
		}
	}
}

func TestMeasurePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Measure(0, 0, func() {})
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(10*time.Second, 2*time.Second); got != 5 {
		t.Errorf("speedup %f", got)
	}
	if Speedup(time.Second, 0) != 0 {
		t.Error("zero denominator must yield 0")
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Errorf("throughput %f", got)
	}
	if Throughput(10, 0) != 0 {
		t.Error("zero duration must yield 0")
	}
}
