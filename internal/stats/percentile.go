package stats

import (
	"math"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// sorted returns an ascending copy of the sample — the one O(n log n)
// step every quantile read shares. Quantile readers must go through
// this plus quantileSorted so a multi-quantile summary pays for the
// sort once, not once per quantile.
func (s Sample) sorted() []time.Duration {
	d := append([]time.Duration(nil), s.Durations...)
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	return d
}

// quantileSorted reads the q-th quantile (0 <= q <= 1, clamped) off an
// already-sorted slice using linear interpolation between closest ranks
// — the same estimator as numpy's default.
func quantileSorted(d []time.Duration, q float64) time.Duration {
	n := len(d)
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if n == 1 {
		return d[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return d[lo]
	}
	frac := pos - float64(lo)
	return d[lo] + time.Duration(frac*float64(d[hi]-d[lo]))
}

// Percentile returns the q-th quantile (0 <= q <= 1) of the sample using
// linear interpolation between closest ranks — the same estimator as
// numpy's default. Percentile(0.5) agrees with Median on odd sample sizes
// and on even sizes interpolates the middle pair identically. Each call
// sorts a copy of the sample; to read several quantiles, use Quantiles,
// which sorts once.
func (s Sample) Percentile(q float64) time.Duration {
	return quantileSorted(s.sorted(), q)
}

// Quantiles returns the interpolated quantile for each q, in order,
// sorting the sample once for the whole batch — a p50/p95/p99 summary
// costs one sort, not three.
func (s Sample) Quantiles(qs ...float64) []time.Duration {
	d := s.sorted()
	out := make([]time.Duration, len(qs))
	for i, q := range qs {
		out[i] = quantileSorted(d, q)
	}
	return out
}

// P50 is the interpolated median.
func (s Sample) P50() time.Duration { return s.Percentile(0.50) }

// P95 returns the 95th percentile.
func (s Sample) P95() time.Duration { return s.Percentile(0.95) }

// P99 returns the 99th percentile.
func (s Sample) P99() time.Duration { return s.Percentile(0.99) }

// Histogram bucket geometry: durations are bucketed on a log scale with
// histSub sub-buckets per power-of-two octave, so any recorded quantile is
// within 1/histSub relative error of the true value while the whole
// structure is a fixed array of counters — O(1) memory no matter how many
// observations stream through, and wait-free to update.
const (
	histSub     = 16 // sub-buckets per octave: <= 6.25% relative error
	histOctaves = 40 // 1ns .. ~73min; beyond the last octave clamps
	histBuckets = histSub * histOctaves
)

// Histogram is a streaming latency histogram safe for concurrent Observe
// from any number of goroutines (every update is a single atomic add).
// The zero value is ready to use. Reads (Quantile, Snapshot) are
// lock-free too and see some consistent-enough recent state; exact
// linearizability is not needed for monitoring.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

// bucketIndex maps a duration to its bucket. Negative durations land in
// bucket 0; durations beyond the top octave clamp to the last bucket.
func bucketIndex(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	ns := uint64(d.Nanoseconds())
	if ns < histSub {
		// First octaves are exact: one bucket per nanosecond until the
		// log scale has histSub values per octave to work with.
		return int(ns)
	}
	exp := bits.Len64(ns) - 1 // floor(log2 ns), >= log2(histSub)
	// Position within the octave, scaled to histSub sub-buckets.
	sub := int((ns - 1<<exp) >> (uint(exp) - log2HistSub))
	idx := (exp-log2HistSub+1)*histSub + sub
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

const log2HistSub = 4 // log2(histSub)

// bucketLower returns the smallest duration mapped to bucket idx — the
// conservative (lower-bound) representative value used when reading
// quantiles back out.
func bucketLower(idx int) time.Duration {
	if idx < histSub {
		return time.Duration(idx)
	}
	exp := idx/histSub - 1 + log2HistSub
	sub := idx % histSub
	return time.Duration(1<<uint(exp) + uint64(sub)<<(uint(exp)-log2HistSub))
}

// Observe records one duration. Negative durations (clock steps) are
// clamped to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(d.Nanoseconds())
	for {
		cur := h.max.Load()
		if d.Nanoseconds() <= cur || h.max.CompareAndSwap(cur, d.Nanoseconds()) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observations — with Count, the pair a
// Prometheus summary needs for its _sum/_count series.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the arithmetic mean of all observations.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sum.Load()) / n)
}

// Max returns the largest observation (exact, not bucketed).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns the q-th quantile (0 <= q <= 1) of the recorded
// distribution, accurate to the bucket geometry (<= 1/histSub relative
// error). Returns 0 when nothing has been observed.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based, nearest-rank estimator.
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			return bucketLower(i)
		}
	}
	return bucketLower(histBuckets - 1)
}

// Millis converts a duration to float milliseconds — THE unit
// conversion point for every JSON surface in this repository. The unit
// policy (documented in docs/METRICS.md) is: Go APIs carry
// time.Duration (unit-safe, nanosecond resolution); JSON documents
// carry float64 milliseconds with an `_ms` suffix, matching the unit
// the flags and the X-Timeout-Ms header already speak; the Prometheus
// exposition carries seconds, per Prometheus convention. Nothing else
// may convert units ad hoc.
func Millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// HistogramSnapshot is a point-in-time summary of a Histogram. The Go
// fields are time.Duration for unit-safe programmatic use and are NOT
// serialized; the wire carries only the float millisecond fields (see
// Millis for the unit policy).
type HistogramSnapshot struct {
	// Count is the number of observations.
	Count uint64 `json:"count"`
	// Mean, P50, P95, P99, Max and Sum are the duration-typed summary
	// statistics for Go consumers; JSON readers use the _ms fields.
	Mean, P50, P95, P99, Max, Sum time.Duration `json:"-"`
	// The _ms fields are the wire form of the durations above, in float
	// milliseconds (see Millis for the unit policy).
	MeanMS float64 `json:"mean_ms"` // wire form of Mean
	P50MS  float64 `json:"p50_ms"`  // wire form of P50
	P95MS  float64 `json:"p95_ms"`  // wire form of P95
	P99MS  float64 `json:"p99_ms"`  // wire form of P99
	MaxMS  float64 `json:"max_ms"`  // wire form of Max
	SumMS  float64 `json:"sum_ms"`  // wire form of Sum
}

// Snapshot captures count, sum, mean, p50/p95/p99 and max in one read
// pass.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
		Sum:   h.Sum(),
	}
	s.MeanMS, s.P50MS, s.P95MS = Millis(s.Mean), Millis(s.P50), Millis(s.P95)
	s.P99MS, s.MaxMS, s.SumMS = Millis(s.P99), Millis(s.Max), Millis(s.Sum)
	return s
}
