package stats

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestPercentileKnownValues(t *testing.T) {
	// 1..100 ns: the q-th percentile under linear interpolation of
	// closest ranks is 1 + 99q exactly.
	s := Sample{}
	for i := 1; i <= 100; i++ {
		s.Durations = append(s.Durations, time.Duration(i))
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0, 1}, {1, 100}, {0.5, time.Duration(math.Round(1 + 99*0.5))},
		{0.95, time.Duration(math.Round(1 + 99*0.95))},
		{0.99, time.Duration(math.Round(1 + 99*0.99))},
	}
	for _, c := range cases {
		got := s.Percentile(c.q)
		if got < c.want-1 || got > c.want+1 { // interpolation truncation slack
			t.Errorf("Percentile(%v) = %v, want ~%v", c.q, got, c.want)
		}
	}
}

func TestPercentileMatchesMedian(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 11} {
		rng := rand.New(rand.NewSource(int64(n)))
		s := Sample{}
		for i := 0; i < n; i++ {
			s.Durations = append(s.Durations, time.Duration(rng.Intn(1000)))
		}
		if got, want := s.Percentile(0.5), s.Median(); got != want {
			t.Errorf("n=%d: Percentile(0.5)=%v != Median()=%v", n, got, want)
		}
	}
}

// TestQuantilesMatchPercentile pins the sort-once batch reader to the
// one-sort-per-call estimator: same inputs, same outputs, any order of
// quantiles, including an unsorted sample and out-of-range q.
func TestQuantilesMatchPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := Sample{}
	for i := 0; i < 257; i++ {
		s.Durations = append(s.Durations, time.Duration(rng.Intn(1_000_000)))
	}
	qs := []float64{0.99, 0.5, 0, 1, 0.95, -0.5, 2, 0.123}
	got := s.Quantiles(qs...)
	if len(got) != len(qs) {
		t.Fatalf("len = %d, want %d", len(got), len(qs))
	}
	for i, q := range qs {
		if want := s.Percentile(q); got[i] != want {
			t.Errorf("Quantiles[%d] (q=%v) = %v, want %v", i, q, got[i], want)
		}
	}
	if got := (Sample{}).Quantiles(0.5, 0.99); got[0] != 0 || got[1] != 0 {
		t.Errorf("empty sample Quantiles = %v, want zeros", got)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if got := (Sample{}).Percentile(0.5); got != 0 {
		t.Errorf("empty sample: got %v, want 0", got)
	}
	one := Sample{Durations: []time.Duration{42}}
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := one.Percentile(q); got != 42 {
			t.Errorf("single sample Percentile(%v) = %v, want 42", q, got)
		}
	}
	if got := one.P95(); got != 42 {
		t.Errorf("P95 = %v, want 42", got)
	}
}

// TestHistogramUniform checks quantiles of a uniform distribution stay
// within the documented bucket error (1/16 relative) plus nearest-rank
// granularity.
func TestHistogramUniform(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	const limit = 1_000_000 // 1ms in ns
	for i := 0; i < n; i++ {
		h.Observe(time.Duration(rng.Int63n(limit)))
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	for _, q := range []float64{0.10, 0.50, 0.90, 0.95, 0.99} {
		got := float64(h.Quantile(q))
		want := q * limit
		// Bucket lower bound under-reports by at most one sub-bucket
		// (6.25%); sampling noise adds a little more.
		if got < want*0.85 || got > want*1.05 {
			t.Errorf("Quantile(%v) = %v, want within [0.85,1.05]x of %v", q, got, want)
		}
	}
	if mean := float64(h.Mean()); mean < 0.45*limit || mean > 0.55*limit {
		t.Errorf("Mean = %v, want ~%v", mean, limit/2)
	}
}

// TestHistogramExponential checks a heavy-tailed distribution: the p99
// must sit far above the median and match the analytic quantile
// -ln(1-q)*scale within bucket+noise tolerance.
func TestHistogramExponential(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(11))
	const n = 200000
	const scale = 100_000 // ns
	for i := 0; i < n; i++ {
		h.Observe(time.Duration(rng.ExpFloat64() * scale))
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := float64(h.Quantile(q))
		want := -math.Log(1-q) * scale
		if got < want*0.85 || got > want*1.10 {
			t.Errorf("Quantile(%v) = %v, want ~%v", q, got, want)
		}
	}
	if p50, p99 := h.Quantile(0.5), h.Quantile(0.99); p99 < 5*p50 {
		t.Errorf("exponential tail lost: p50=%v p99=%v", p50, p99)
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	// Durations below histSub ns are bucketed exactly.
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(time.Duration(i))
	}
	if got := h.Quantile(0.0); got != 0 {
		t.Errorf("Quantile(0) = %v, want 0", got)
	}
	if got := h.Quantile(1.0); got != 9 {
		t.Errorf("Quantile(1) = %v, want 9", got)
	}
	if got := h.Max(); got != 9 {
		t.Errorf("Max = %v, want 9", got)
	}
}

func TestHistogramBucketMonotone(t *testing.T) {
	// bucketIndex must be monotone and bucketLower must invert it to the
	// bucket's lower edge for a sweep of magnitudes.
	prev := -1
	for _, ns := range []int64{0, 1, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, 1 << 30, 1 << 40, 1 << 45} {
		idx := bucketIndex(time.Duration(ns))
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", ns, idx, prev)
		}
		prev = idx
		if lower := bucketLower(idx); lower > time.Duration(ns) {
			t.Errorf("bucketLower(%d) = %v > observed %dns", idx, lower, ns)
		}
	}
	if bucketIndex(-5*time.Second) != 0 {
		t.Error("negative duration must map to bucket 0")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(rng.Int63n(1 << 20)))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	snap := h.Snapshot()
	if snap.Count != workers*per || snap.P50 == 0 || snap.P99 < snap.P50 {
		t.Errorf("bad snapshot: %+v", snap)
	}
}
