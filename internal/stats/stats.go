// Package stats provides the small measurement toolkit the experiment
// harness uses: repeated timing with warmup, robust summaries (median,
// not just mean — wall-clock benches on shared machines are noisy), and
// speedup arithmetic for the Figure 5 style tables.
package stats

import (
	"time"
)

// Sample is a collection of repeated measurements of one configuration.
type Sample struct {
	Durations []time.Duration // one entry per measured repetition
}

// Measure runs f reps times after warmup warm-up runs and returns the
// sample. reps must be at least 1; warmup may be 0.
func Measure(warmup, reps int, f func()) Sample {
	if reps < 1 {
		panic("stats: need at least one measured repetition")
	}
	for i := 0; i < warmup; i++ {
		f()
	}
	s := Sample{Durations: make([]time.Duration, reps)}
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		s.Durations[i] = time.Since(start)
	}
	return s
}

// Median returns the median duration (mean of the middle two for even
// sample sizes — identically the interpolated 0.5 quantile).
func (s Sample) Median() time.Duration {
	return quantileSorted(s.sorted(), 0.5)
}

// Min returns the fastest run — the conventional "best of n" figure for
// microbenchmarks, least affected by interference.
func (s Sample) Min() time.Duration {
	if len(s.Durations) == 0 {
		return 0
	}
	best := s.Durations[0]
	for _, d := range s.Durations[1:] {
		if d < best {
			best = d
		}
	}
	return best
}

// Max returns the slowest run.
func (s Sample) Max() time.Duration {
	if len(s.Durations) == 0 {
		return 0
	}
	worst := s.Durations[0]
	for _, d := range s.Durations[1:] {
		if d > worst {
			worst = d
		}
	}
	return worst
}

// Mean returns the arithmetic mean.
func (s Sample) Mean() time.Duration {
	if len(s.Durations) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range s.Durations {
		total += d
	}
	return total / time.Duration(len(s.Durations))
}

// Speedup returns base/t — how many times faster t is than base.
func Speedup(base, t time.Duration) float64 {
	if t <= 0 {
		return 0
	}
	return float64(base) / float64(t)
}

// Throughput returns elements per second for n elements processed in d.
func Throughput(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}
