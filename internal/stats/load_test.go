package stats

import (
	"testing"
	"time"
)

func TestSummarizeLoads(t *testing.T) {
	cases := []struct {
		name  string
		elems []int
		want  LoadSummary
	}{
		{"empty", nil, LoadSummary{}},
		{"perfect", []int{5, 5, 5}, LoadSummary{Workers: 3, Min: 5, Max: 5, Mean: 5, Imbalance: 1}},
		{"skewed", []int{2, 4}, LoadSummary{Workers: 2, Min: 2, Max: 4, Mean: 3, Imbalance: 2}},
		// A starved worker makes max/min undefined; the documented rule
		// reports float64(Max) so the ratio stays finite and encodable.
		{"starved", []int{0, 10}, LoadSummary{Workers: 2, Max: 10, Mean: 5, Imbalance: 10}},
		{"all-idle", []int{0, 0}, LoadSummary{Workers: 2, Imbalance: 1}},
	}
	for _, c := range cases {
		if got := SummarizeLoads(c.elems); got != c.want {
			t.Errorf("%s: SummarizeLoads(%v) = %+v, want %+v", c.name, c.elems, got, c.want)
		}
	}
}

func TestMillis(t *testing.T) {
	if got := Millis(1500 * time.Microsecond); got != 1.5 {
		t.Errorf("Millis(1.5ms) = %v, want 1.5", got)
	}
	if got := Millis(0); got != 0 {
		t.Errorf("Millis(0) = %v, want 0", got)
	}
}

func TestHistogramSumAndWireFields(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		h.Observe(d)
	}
	if got := h.Sum(); got != 6*time.Millisecond {
		t.Errorf("Sum = %v, want 6ms", got)
	}
	snap := h.Snapshot()
	if snap.SumMS != 6 {
		t.Errorf("SumMS = %v, want 6", snap.SumMS)
	}
	if snap.MeanMS != Millis(snap.Mean) || snap.P99MS != Millis(snap.P99) {
		t.Errorf("wire fields diverge from Duration fields: %+v", snap)
	}
}
