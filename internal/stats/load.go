package stats

// LoadSummary condenses the per-worker element counts of one balanced
// round into the numbers the paper's load-balance guarantee is stated
// in: Theorem 5 promises every worker merges within one element of
// total/p, so Min and Max differ by at most 1 and Imbalance sits at
// ~1.0 whenever the guarantee holds. The service layer records one
// summary per round and exports the latest plus running max/mean on its
// metrics surface.
type LoadSummary struct {
	// Workers is how many workers the round actually engaged (after
	// clamping to the total output size).
	Workers int `json:"workers"`
	// Min is the smallest number of output elements any worker produced.
	Min int `json:"min_elements"`
	// Max is the largest number of output elements any worker produced.
	Max int `json:"max_elements"`
	// Mean is the arithmetic mean of elements per worker.
	Mean float64 `json:"mean_elements"`
	// Imbalance is Max/Min — 1.0 is perfect balance. When Min is 0 but
	// Max is not (a worker did nothing while another worked; impossible
	// under merge-path partitioning, possible for naive schedulers) the
	// true ratio is unbounded, so it is reported as float64(Max): large,
	// finite, and JSON-encodable.
	Imbalance float64 `json:"imbalance"`
}

// SummarizeLoads computes the LoadSummary of a round from its
// per-worker output element counts. An empty slice yields the zero
// summary.
func SummarizeLoads(elems []int) LoadSummary {
	if len(elems) == 0 {
		return LoadSummary{}
	}
	s := LoadSummary{Workers: len(elems), Min: elems[0], Max: elems[0]}
	total := 0
	for _, e := range elems {
		total += e
		if e < s.Min {
			s.Min = e
		}
		if e > s.Max {
			s.Max = e
		}
	}
	s.Mean = float64(total) / float64(len(elems))
	switch {
	case s.Min > 0:
		s.Imbalance = float64(s.Max) / float64(s.Min)
	case s.Max > 0:
		s.Imbalance = float64(s.Max)
	default:
		s.Imbalance = 1 // no work, no imbalance
	}
	return s
}
