package psort

import (
	"cmp"

	"mergepath/internal/core"
	"mergepath/internal/sched"
)

// SortDataflow sorts s with p workers by expressing the whole merge sort
// as a fine-grain task graph (the Hypercore execution model of §VI)
// instead of barrier-separated rounds: leaf tasks sort grain-sized chunks;
// each merge node becomes one partition task plus one task per output
// segment, and a segment task becomes runnable the moment its inputs'
// subtree finishes — merges from different subtrees and different tree
// levels execute concurrently, which removes the round barriers of Sort.
//
// grain is the leaf chunk size; values < 2 select a default that yields a
// few tasks per worker per level. The result is identical (stable) to
// Sort's.
func SortDataflow[T cmp.Ordered](s []T, p, grain int) {
	if p < 1 {
		panic("psort: worker count must be positive")
	}
	n := len(s)
	if n < 2 {
		return
	}
	if grain < 2 {
		grain = max(n/(4*p), insertionThreshold)
	}
	if grain > n {
		grain = n
	}

	scratch := make([]T, n)
	var g sched.Graph

	// Leaves: chunk sorts over s.
	type node struct {
		lo, hi int
		ready  []*sched.Task // tasks whose completion makes the run sorted
	}
	var level []node
	for lo := 0; lo < n; lo += grain {
		hi := min(lo+grain, n)
		task := g.Add(func() {
			seqSort(s[lo:hi], scratch[lo:hi])
		})
		level = append(level, node{lo: lo, hi: hi, ready: []*sched.Task{task}})
	}

	// Merge tree: ping-pong between s and scratch per level.
	src, dst := s, scratch
	for len(level) > 1 {
		var next []node
		for i := 0; i+1 < len(level); i += 2 {
			left, right := level[i], level[i+1]
			lo, mid, hi := left.lo, right.lo, right.hi
			deps := append(append([]*sched.Task(nil), left.ready...), right.ready...)
			// Partition task: computes the segment boundaries once both
			// children are sorted in src.
			segCount := max((hi-lo)/grain, 1)
			bounds := make([]core.Point, segCount+1)
			srcLocal, dstLocal := src, dst
			partition := g.Add(func() {
				copy(bounds, core.Partition(srcLocal[lo:mid], srcLocal[mid:hi], segCount))
			}, deps...)
			segTasks := make([]*sched.Task, segCount)
			for sIdx := 0; sIdx < segCount; sIdx++ {
				sIdx := sIdx
				segTasks[sIdx] = g.Add(func() {
					b0, b1 := bounds[sIdx], bounds[sIdx+1]
					core.MergeSteps(srcLocal[lo:mid], srcLocal[mid:hi], b0,
						b1.Diagonal()-b0.Diagonal(), dstLocal[lo+b0.Diagonal():lo+b1.Diagonal()])
				}, partition)
			}
			next = append(next, node{lo: lo, hi: hi, ready: segTasks})
		}
		if len(level)%2 == 1 {
			last := level[len(level)-1]
			srcLocal, dstLocal := src, dst
			carry := g.Add(func() {
				copy(dstLocal[last.lo:last.hi], srcLocal[last.lo:last.hi])
			}, last.ready...)
			next = append(next, node{lo: last.lo, hi: last.hi, ready: []*sched.Task{carry}})
		}
		level = next
		src, dst = dst, src
	}

	g.Run(p)
	if &src[0] != &s[0] {
		copy(s, src)
	}
}
