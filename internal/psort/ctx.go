package psort

import (
	"cmp"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"mergepath/internal/core"
	"mergepath/internal/stats"
)

// cancelRunElems caps the initial run length of SortCtx so cancellation
// is observed between runs in phase 1 as well as between chunks in the
// phase-2 merges (core.ParallelMergeCtx). Matches core's chunking
// granularity.
const cancelRunElems = 1 << 16

// SortStats reports what an instrumented SortCtxStats run did: how the
// work decomposed (runs, merge rounds) and where the time went. RunSort
// and Search/Merge are cumulative worker time (summed across concurrent
// workers, not wall time), so Search/Merge is directly the partition
// overhead ratio the paper argues is negligible. MaxImbalance is the
// worst per-round max/min elements-per-worker ratio observed across all
// phase-2 merge rounds — ~1.0 when the merge-path balance guarantee
// holds.
type SortStats struct {
	// Runs is the number of phase-1 sequential runs sorted.
	Runs int
	// MergeRounds is the number of phase-2 pairwise merge rounds.
	MergeRounds int
	// RunSort is cumulative worker time spent sequentially sorting
	// phase-1 runs.
	RunSort time.Duration
	// Search is cumulative worker time spent in diagonal (co-rank)
	// searches across all phase-2 merges.
	Search time.Duration
	// Merge is cumulative worker time spent executing merge steps
	// across all phase-2 merges.
	Merge time.Duration
	// MaxImbalance is the worst per-round load-imbalance ratio
	// (max/min elements per engaged worker) across merge rounds; 0 if
	// no merge round ran.
	MaxImbalance float64
}

// SortCtx is Sort with cooperative cancellation: a canceled or expired
// ctx stops the sort at the next chunk boundary instead of running the
// full O(n log n) to completion. Phase 1 sorts runs of at most
// cancelRunElems elements (workers pull runs from a shared counter and
// check ctx between runs); phase 2 executes every pairwise merge through
// core.ParallelMergeCtx, which checks ctx every cancelCheckElems output
// elements.
//
// Returns nil when s is fully sorted and ctx.Err() when the sort was
// abandoned — s then holds an unspecified intermediate state (it may not
// even be a permutation of the input, since ping-pong rounds were
// interrupted mid-copy) and must be discarded. Like Sort, the result is
// stable and p < 1 panics.
func SortCtx[T cmp.Ordered](ctx context.Context, s []T, p int) error {
	_, err := sortCtx(ctx, s, p, false)
	return err
}

// SortCtxStats is SortCtx plus observability: the identical cancellable
// sort, additionally reporting the phase/time decomposition and the
// worst per-round load imbalance (see SortStats). Stats are returned
// even when the sort was abandoned, covering the work done so far.
func SortCtxStats[T cmp.Ordered](ctx context.Context, s []T, p int) (SortStats, error) {
	return sortCtx(ctx, s, p, true)
}

// sortCtx is the shared engine of SortCtx and SortCtxStats; timed
// selects whether per-phase timing and per-round load summaries are
// collected.
func sortCtx[T cmp.Ordered](ctx context.Context, s []T, p int, timed bool) (SortStats, error) {
	var st SortStats
	if p < 1 {
		panic("psort: worker count must be positive")
	}
	n := len(s)
	if n < 2 {
		return st, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return st, err
	}
	if p > n {
		p = n
	}

	// Runs sized for cancellation granularity: n/p like Sort, but capped
	// so one sequential run sort cannot outlive the deadline by much.
	runLen := (n + p - 1) / p
	if runLen > cancelRunElems {
		runLen = cancelRunElems
	}
	var runs [][2]int
	for lo := 0; lo < n; lo += runLen {
		runs = append(runs, [2]int{lo, min(lo+runLen, n)})
	}
	st.Runs = len(runs)

	scratch := make([]T, n)
	var stop atomic.Bool
	var runSortNanos atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			var local time.Duration
			for {
				if stop.Load() {
					break
				}
				if ctx.Err() != nil {
					stop.Store(true)
					break
				}
				i := int(next.Add(1)) - 1
				if i >= len(runs) {
					break
				}
				lo, hi := runs[i][0], runs[i][1]
				var t0 time.Time
				if timed {
					t0 = time.Now()
				}
				seqSort(s[lo:hi], scratch[lo:hi])
				if timed {
					local += time.Since(t0)
				}
			}
			if timed {
				runSortNanos.Add(local.Nanoseconds())
			}
		}()
	}
	wg.Wait()
	st.RunSort = time.Duration(runSortNanos.Load())
	if stop.Load() {
		return st, ctx.Err()
	}

	// Phase 2: pairwise merge rounds, ping-ponging s and scratch, each
	// merge cancellation-aware. A merge that observes ctx done leaves its
	// destination range partial; the round is then abandoned wholesale.
	// In timed mode each merge collects per-worker stats; the round's
	// element counts feed one LoadSummary per round and MaxImbalance
	// keeps the worst.
	src, dst := s, scratch
	for len(runs) > 1 {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		pairs := len(runs) / 2
		nextRuns := make([][2]int, 0, (len(runs)+1)/2)
		perMerge := p / pairs
		if perMerge < 1 {
			perMerge = 1
		}
		var aborted atomic.Bool
		var roundStats [][]core.WorkerStat
		if timed {
			roundStats = make([][]core.WorkerStat, pairs)
		}
		wg.Add(pairs)
		for m := 0; m < pairs; m++ {
			r1, r2 := runs[2*m], runs[2*m+1]
			nextRuns = append(nextRuns, [2]int{r1[0], r2[1]})
			go func(m int, r1, r2 [2]int) {
				defer wg.Done()
				a, b, out := src[r1[0]:r1[1]], src[r2[0]:r2[1]], dst[r1[0]:r2[1]]
				var err error
				if timed {
					roundStats[m], err = core.ParallelMergeCtxStats(ctx, a, b, out, perMerge)
				} else {
					err = core.ParallelMergeCtx(ctx, a, b, out, perMerge)
				}
				if err != nil {
					aborted.Store(true)
				}
			}(m, r1, r2)
		}
		wg.Wait()
		st.MergeRounds++
		if timed {
			var elems []int
			for _, ws := range roundStats {
				for _, w := range ws {
					st.Search += w.Search
					st.Merge += w.Merge
					elems = append(elems, w.Elements)
				}
			}
			if imb := stats.SummarizeLoads(elems).Imbalance; imb > st.MaxImbalance {
				st.MaxImbalance = imb
			}
		}
		if aborted.Load() {
			return st, ctx.Err()
		}
		if len(runs)%2 == 1 {
			last := runs[len(runs)-1]
			copy(dst[last[0]:last[1]], src[last[0]:last[1]])
			nextRuns = append(nextRuns, last)
		}
		runs = nextRuns
		src, dst = dst, src
	}
	if &src[0] != &s[0] {
		copy(s, src)
	}
	return st, nil
}
