package psort

import (
	"cmp"
	"context"
	"sync"
	"sync/atomic"

	"mergepath/internal/core"
)

// cancelRunElems caps the initial run length of SortCtx so cancellation
// is observed between runs in phase 1 as well as between chunks in the
// phase-2 merges (core.ParallelMergeCtx). Matches core's chunking
// granularity.
const cancelRunElems = 1 << 16

// SortCtx is Sort with cooperative cancellation: a canceled or expired
// ctx stops the sort at the next chunk boundary instead of running the
// full O(n log n) to completion. Phase 1 sorts runs of at most
// cancelRunElems elements (workers pull runs from a shared counter and
// check ctx between runs); phase 2 executes every pairwise merge through
// core.ParallelMergeCtx, which checks ctx every cancelCheckElems output
// elements.
//
// Returns nil when s is fully sorted and ctx.Err() when the sort was
// abandoned — s then holds an unspecified intermediate state (it may not
// even be a permutation of the input, since ping-pong rounds were
// interrupted mid-copy) and must be discarded. Like Sort, the result is
// stable and p < 1 panics.
func SortCtx[T cmp.Ordered](ctx context.Context, s []T, p int) error {
	if p < 1 {
		panic("psort: worker count must be positive")
	}
	n := len(s)
	if n < 2 {
		return ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if p > n {
		p = n
	}

	// Runs sized for cancellation granularity: n/p like Sort, but capped
	// so one sequential run sort cannot outlive the deadline by much.
	runLen := (n + p - 1) / p
	if runLen > cancelRunElems {
		runLen = cancelRunElems
	}
	var runs [][2]int
	for lo := 0; lo < n; lo += runLen {
		runs = append(runs, [2]int{lo, min(lo+runLen, n)})
	}

	scratch := make([]T, n)
	var stop atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				if ctx.Err() != nil {
					stop.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(runs) {
					return
				}
				lo, hi := runs[i][0], runs[i][1]
				seqSort(s[lo:hi], scratch[lo:hi])
			}
		}()
	}
	wg.Wait()
	if stop.Load() {
		return ctx.Err()
	}

	// Phase 2: pairwise merge rounds, ping-ponging s and scratch, each
	// merge cancellation-aware. A merge that observes ctx done leaves its
	// destination range partial; the round is then abandoned wholesale.
	src, dst := s, scratch
	for len(runs) > 1 {
		if err := ctx.Err(); err != nil {
			return err
		}
		pairs := len(runs) / 2
		next := make([][2]int, 0, (len(runs)+1)/2)
		perMerge := p / pairs
		if perMerge < 1 {
			perMerge = 1
		}
		var aborted atomic.Bool
		wg.Add(pairs)
		for m := 0; m < pairs; m++ {
			r1, r2 := runs[2*m], runs[2*m+1]
			next = append(next, [2]int{r1[0], r2[1]})
			go func(r1, r2 [2]int) {
				defer wg.Done()
				if err := core.ParallelMergeCtx(ctx, src[r1[0]:r1[1]], src[r2[0]:r2[1]], dst[r1[0]:r2[1]], perMerge); err != nil {
					aborted.Store(true)
				}
			}(r1, r2)
		}
		wg.Wait()
		if aborted.Load() {
			return ctx.Err()
		}
		if len(runs)%2 == 1 {
			last := runs[len(runs)-1]
			copy(dst[last[0]:last[1]], src[last[0]:last[1]])
			next = append(next, last)
		}
		runs = next
		src, dst = dst, src
	}
	if &src[0] != &s[0] {
		copy(s, src)
	}
	return nil
}
