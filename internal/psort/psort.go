// Package psort implements the paper's two sorting algorithms:
//
//   - Sort (§III): parallel merge sort. Each of p workers first sorts an
//     N/p chunk sequentially; then log2(p) rounds of pairwise merges follow,
//     every merge executed with the Merge Path parallel merge so that all p
//     workers stay busy in every round — the property that motivates the
//     paper (the later rounds of merge sort are where naive parallelization
//     starves).
//   - CacheEfficientSort (§IV.C): sort cache-sized blocks one after another
//     (each with the parallel sort, all workers on one block so the block
//     stays cache-resident), then a binary tree of segmented parallel
//     merges (spm.Merge) whose working set never exceeds the cache.
//
// Both sorts are stable and out-of-place internally (ping-pong scratch),
// with the result always landing back in the caller's slice.
package psort

import (
	"cmp"
	"sync"

	"mergepath/internal/core"
	"mergepath/internal/spm"
)

// insertionThreshold is the run length below which the sequential kernel
// switches to insertion sort, the usual bottom-of-recursion optimization.
const insertionThreshold = 24

// Sort sorts s with p concurrent workers using parallel merge sort.
// p < 1 panics; p == 1 degenerates to the sequential kernel.
func Sort[T cmp.Ordered](s []T, p int) {
	if p < 1 {
		panic("psort: worker count must be positive")
	}
	n := len(s)
	if n < 2 {
		return
	}
	if p > n {
		p = n
	}
	if p == 1 {
		scratch := make([]T, n)
		seqSort(s, scratch)
		return
	}

	scratch := make([]T, n)
	// Phase 1: p chunks sorted concurrently, each by the sequential kernel.
	runs := make([][2]int, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		lo, hi := i*n/p, (i+1)*n/p
		runs[i] = [2]int{lo, hi}
		go func(lo, hi int) {
			defer wg.Done()
			seqSort(s[lo:hi], scratch[lo:hi])
		}(lo, hi)
	}
	wg.Wait()

	// Phase 2: rounds of pairwise parallel merges, ping-ponging between s
	// and scratch. All p workers are spread over the round's merges.
	src, dst := s, scratch
	for len(runs) > 1 {
		pairs := len(runs) / 2
		next := make([][2]int, 0, (len(runs)+1)/2)
		perMerge := p / pairs
		if perMerge < 1 {
			perMerge = 1
		}
		wg.Add(pairs)
		for m := 0; m < pairs; m++ {
			r1, r2 := runs[2*m], runs[2*m+1]
			next = append(next, [2]int{r1[0], r2[1]})
			go func(r1, r2 [2]int) {
				defer wg.Done()
				core.ParallelMerge(src[r1[0]:r1[1]], src[r2[0]:r2[1]], dst[r1[0]:r2[1]], perMerge)
			}(r1, r2)
		}
		wg.Wait()
		if len(runs)%2 == 1 {
			last := runs[len(runs)-1]
			copy(dst[last[0]:last[1]], src[last[0]:last[1]])
			next = append(next, last)
		}
		runs = next
		src, dst = dst, src
	}
	if &src[0] != &s[0] {
		copy(s, src)
	}
}

// CacheEfficientSort sorts s with p workers, keeping the working set of
// every phase within cacheElems elements (§IV.C): cache-sized blocks are
// sorted one at a time with the parallel sort, then merged pairwise with
// the segmented parallel merge whose window is cacheElems/3.
func CacheEfficientSort[T cmp.Ordered](s []T, cacheElems, p int) {
	if p < 1 {
		panic("psort: worker count must be positive")
	}
	if cacheElems < 3 {
		panic("psort: cache must hold at least 3 elements")
	}
	n := len(s)
	if n < 2 {
		return
	}
	// "Equisized sub-arrays whose size is some fraction of the cache size":
	// blocks of C/2 leave room for the sort's scratch within the cache.
	block := cacheElems / 2
	if block < 1 {
		block = 1
	}
	if block > n {
		block = n
	}
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		Sort(s[lo:hi], p)
	}

	// Merge rounds: a binary tree of segmented merges, one merge at a time
	// (the segmentation, not merge-level concurrency, provides the
	// parallelism — all p workers cooperate inside each window).
	scratch := make([]T, n)
	src, dst := s, scratch
	window := cacheElems / 3
	for width := block; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			if mid >= n {
				copy(dst[lo:n], src[lo:n])
				break
			}
			hi := mid + width
			if hi > n {
				hi = n
			}
			spm.Merge(src[lo:mid], src[mid:hi], dst[lo:hi], spm.Config{Window: window, Workers: p})
		}
		src, dst = dst, src
	}
	if &src[0] != &s[0] {
		copy(s, src)
	}
}

// SortFunc sorts s under a caller-supplied strict weak ordering with p
// workers. The structure mirrors Sort; it exists for the stability tests
// and for callers whose element type is not cmp.Ordered.
func SortFunc[T any](s []T, p int, less func(x, y T) bool) {
	if p < 1 {
		panic("psort: worker count must be positive")
	}
	n := len(s)
	if n < 2 {
		return
	}
	if p > n {
		p = n
	}
	scratch := make([]T, n)
	if p == 1 {
		seqSortFunc(s, scratch, less)
		return
	}
	runs := make([][2]int, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		lo, hi := i*n/p, (i+1)*n/p
		runs[i] = [2]int{lo, hi}
		go func(lo, hi int) {
			defer wg.Done()
			seqSortFunc(s[lo:hi], scratch[lo:hi], less)
		}(lo, hi)
	}
	wg.Wait()
	src, dst := s, scratch
	for len(runs) > 1 {
		pairs := len(runs) / 2
		next := make([][2]int, 0, (len(runs)+1)/2)
		perMerge := p / pairs
		if perMerge < 1 {
			perMerge = 1
		}
		wg.Add(pairs)
		for m := 0; m < pairs; m++ {
			r1, r2 := runs[2*m], runs[2*m+1]
			next = append(next, [2]int{r1[0], r2[1]})
			go func(r1, r2 [2]int) {
				defer wg.Done()
				core.ParallelMergeFunc(src[r1[0]:r1[1]], src[r2[0]:r2[1]], dst[r1[0]:r2[1]], perMerge, less)
			}(r1, r2)
		}
		wg.Wait()
		if len(runs)%2 == 1 {
			last := runs[len(runs)-1]
			copy(dst[last[0]:last[1]], src[last[0]:last[1]])
			next = append(next, last)
		}
		runs = next
		src, dst = dst, src
	}
	if &src[0] != &s[0] {
		copy(s, src)
	}
}

// seqSort is the sequential kernel: bottom-up merge sort over scratch with
// insertion-sorted leaves. Stable. len(scratch) must equal len(s).
func seqSort[T cmp.Ordered](s, scratch []T) {
	n := len(s)
	for lo := 0; lo < n; lo += insertionThreshold {
		hi := lo + insertionThreshold
		if hi > n {
			hi = n
		}
		insertionSort(s[lo:hi])
	}
	src, dst := s, scratch
	for width := insertionThreshold; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid, hi := lo+width, lo+2*width
			if mid >= n {
				copy(dst[lo:n], src[lo:n])
				break
			}
			if hi > n {
				hi = n
			}
			core.Merge(src[lo:mid], src[mid:hi], dst[lo:hi])
		}
		src, dst = dst, src
	}
	if &src[0] != &s[0] {
		copy(s, src)
	}
}

func seqSortFunc[T any](s, scratch []T, less func(x, y T) bool) {
	n := len(s)
	for lo := 0; lo < n; lo += insertionThreshold {
		hi := lo + insertionThreshold
		if hi > n {
			hi = n
		}
		insertionSortFunc(s[lo:hi], less)
	}
	src, dst := s, scratch
	for width := insertionThreshold; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid, hi := lo+width, lo+2*width
			if mid >= n {
				copy(dst[lo:n], src[lo:n])
				break
			}
			if hi > n {
				hi = n
			}
			core.MergeFunc(src[lo:mid], src[mid:hi], dst[lo:hi], less)
		}
		src, dst = dst, src
	}
	if &src[0] != &s[0] {
		copy(s, src)
	}
}

func insertionSort[T cmp.Ordered](s []T) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i
		for j > 0 && v < s[j-1] {
			s[j] = s[j-1]
			j--
		}
		s[j] = v
	}
}

func insertionSortFunc[T any](s []T, less func(x, y T) bool) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i
		for j > 0 && less(v, s[j-1]) {
			s[j] = s[j-1]
			j--
		}
		s[j] = v
	}
}

// CacheEfficientSortFunc is CacheEfficientSort under a caller-supplied
// strict weak ordering. Stable.
func CacheEfficientSortFunc[T any](s []T, cacheElems, p int, less func(x, y T) bool) {
	if p < 1 {
		panic("psort: worker count must be positive")
	}
	if cacheElems < 3 {
		panic("psort: cache must hold at least 3 elements")
	}
	n := len(s)
	if n < 2 {
		return
	}
	block := cacheElems / 2
	if block < 1 {
		block = 1
	}
	if block > n {
		block = n
	}
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		SortFunc(s[lo:hi], p, less)
	}
	scratch := make([]T, n)
	src, dst := s, scratch
	window := cacheElems / 3
	for width := block; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			if mid >= n {
				copy(dst[lo:n], src[lo:n])
				break
			}
			hi := mid + width
			if hi > n {
				hi = n
			}
			spm.MergeFunc(src[lo:mid], src[mid:hi], dst[lo:hi], spm.Config{Window: window, Workers: p}, less)
		}
		src, dst = dst, src
	}
	if &src[0] != &s[0] {
		copy(s, src)
	}
}
