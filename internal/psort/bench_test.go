package psort

import (
	"fmt"
	"math/rand"
	"testing"

	"mergepath/internal/workload"
)

func BenchmarkSortWorkers(b *testing.B) {
	const n = 1 << 20
	data := workload.Unsorted(rand.New(rand.NewSource(1)), n)
	scratch := make([]int32, n)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.SetBytes(int64(n) * 4)
			for i := 0; i < b.N; i++ {
				copy(scratch, data)
				Sort(scratch, p)
			}
		})
	}
}

func BenchmarkSeqSortKernel(b *testing.B) {
	const n = 1 << 18
	data := workload.Unsorted(rand.New(rand.NewSource(2)), n)
	work := make([]int32, n)
	scratch := make([]int32, n)
	b.SetBytes(int64(n) * 4)
	for i := 0; i < b.N; i++ {
		copy(work, data)
		seqSort(work, scratch)
	}
}

func BenchmarkCacheEfficientSortWindow(b *testing.B) {
	const n = 1 << 20
	data := workload.Unsorted(rand.New(rand.NewSource(3)), n)
	scratch := make([]int32, n)
	for _, cacheKB := range []int{32, 256, 2048} {
		b.Run(fmt.Sprintf("cache=%dKB", cacheKB), func(b *testing.B) {
			b.SetBytes(int64(n) * 4)
			for i := 0; i < b.N; i++ {
				copy(scratch, data)
				CacheEfficientSort(scratch, cacheKB<<10/4, 4)
			}
		})
	}
}

func BenchmarkSortDataflowVsRounds(b *testing.B) {
	const n = 1 << 20
	data := workload.Unsorted(rand.New(rand.NewSource(4)), n)
	scratch := make([]int32, n)
	for _, p := range []int{4, 8} {
		b.Run(fmt.Sprintf("rounds/p=%d", p), func(b *testing.B) {
			b.SetBytes(int64(n) * 4)
			for i := 0; i < b.N; i++ {
				copy(scratch, data)
				Sort(scratch, p)
			}
		})
		b.Run(fmt.Sprintf("dataflow/p=%d", p), func(b *testing.B) {
			b.SetBytes(int64(n) * 4)
			for i := 0; i < b.N; i++ {
				copy(scratch, data)
				SortDataflow(scratch, p, 0)
			}
		})
	}
}
