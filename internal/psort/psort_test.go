package psort

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

func TestSortBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for _, n := range []int{0, 1, 2, 3, 10, 23, 24, 25, 100, 1000, 12345} {
		for _, p := range []int{1, 2, 3, 4, 8, 16} {
			s := workload.Unsorted(rng, n)
			want := append([]int32(nil), s...)
			Sort(s, p)
			if !verify.Sorted(s) {
				t.Fatalf("n=%d p=%d: not sorted (first violation at %d)", n, p, verify.FirstUnsorted(s))
			}
			if !verify.SameMultiset(s, want) {
				t.Fatalf("n=%d p=%d: elements lost", n, p)
			}
		}
	}
}

func TestSortAlreadySortedAndReversed(t *testing.T) {
	for _, p := range []int{1, 4} {
		n := 5000
		asc := make([]int32, n)
		desc := make([]int32, n)
		for i := range asc {
			asc[i] = int32(i)
			desc[i] = int32(n - i)
		}
		Sort(asc, p)
		Sort(desc, p)
		if !verify.Sorted(asc) || !verify.Sorted(desc) {
			t.Fatalf("p=%d: pathological inputs mis-sorted", p)
		}
	}
}

func TestSortDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5000)
		p := 1 + rng.Intn(8)
		s := make([]int32, n)
		for i := range s {
			s[i] = int32(rng.Intn(4))
		}
		want := append([]int32(nil), s...)
		Sort(s, p)
		if !verify.Sorted(s) || !verify.SameMultiset(s, want) {
			t.Fatalf("n=%d p=%d: duplicate-heavy sort failed", n, p)
		}
	}
}

func TestSortFuncStability(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(3000)
		p := 1 + rng.Intn(8)
		keys := workload.UnsortedInts(rng, n, 16)
		s := verify.Tag(keys, 0)
		SortFunc(s, p, verify.TaggedLess)
		if !verify.StableSortOrder(s) {
			t.Fatalf("n=%d p=%d: sort not stable", n, p)
		}
	}
}

func TestSortPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"sort-p0":      func() { Sort([]int32{2, 1}, 0) },
		"sortfunc-p0":  func() { SortFunc([]int32{2, 1}, 0, func(a, b int32) bool { return a < b }) },
		"ce-p0":        func() { CacheEfficientSort([]int32{2, 1}, 64, 0) },
		"ce-tinycache": func() { CacheEfficientSort([]int32{2, 1}, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCacheEfficientSort(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, n := range []int{0, 1, 5, 100, 1000, 9999} {
		for _, cache := range []int{3, 48, 256, 4096} {
			for _, p := range []int{1, 4} {
				s := workload.Unsorted(rng, n)
				want := append([]int32(nil), s...)
				CacheEfficientSort(s, cache, p)
				if !verify.Sorted(s) {
					t.Fatalf("n=%d C=%d p=%d: not sorted", n, cache, p)
				}
				if !verify.SameMultiset(s, want) {
					t.Fatalf("n=%d C=%d p=%d: elements lost", n, cache, p)
				}
			}
		}
	}
}

func TestCacheEfficientSortAgreesWithSort(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(8000)
		s1 := workload.Unsorted(rng, n)
		s2 := append([]int32(nil), s1...)
		Sort(s1, 4)
		CacheEfficientSort(s2, 512, 4)
		if !verify.Equal(s1, s2) {
			t.Fatalf("trial %d: cache-efficient sort diverged", trial)
		}
	}
}

func TestSeqSortKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(2000)
		s := workload.Unsorted(rng, n)
		want := append([]int32(nil), s...)
		if n > 0 {
			seqSort(s, make([]int32, n))
		}
		if !verify.Sorted(s) || !verify.SameMultiset(s, want) {
			t.Fatalf("n=%d: sequential kernel failed", n)
		}
	}
}

func TestInsertionSort(t *testing.T) {
	s := []int32{5, 2, 8, 2, 1}
	insertionSort(s)
	if !verify.Sorted(s) {
		t.Fatalf("insertion sort: %v", s)
	}
	var empty []int32
	insertionSort(empty)
}

func TestSortQuick(t *testing.T) {
	f := func(raw []int32, pSeed uint8) bool {
		s := append([]int32(nil), raw...)
		Sort(s, 1+int(pSeed)%8)
		return verify.Sorted(s) && verify.SameMultiset(s, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheEfficientSortQuick(t *testing.T) {
	f := func(raw []int32, cSeed, pSeed uint8) bool {
		s := append([]int32(nil), raw...)
		CacheEfficientSort(s, 3+int(cSeed), 1+int(pSeed)%6)
		return verify.Sorted(s) && verify.SameMultiset(s, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortDataflowMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(20000)
		p := 1 + rng.Intn(8)
		grain := 2 + rng.Intn(500)
		s1 := workload.Unsorted(rng, n)
		s2 := append([]int32(nil), s1...)
		Sort(s1, p)
		SortDataflow(s2, p, grain)
		if !verify.Equal(s1, s2) {
			t.Fatalf("n=%d p=%d grain=%d: dataflow sort diverges", n, p, grain)
		}
	}
}

func TestSortDataflowDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	s := workload.Unsorted(rng, 10000)
	want := append([]int32(nil), s...)
	SortDataflow(s, 4, 0) // default grain
	if !verify.Sorted(s) || !verify.SameMultiset(s, want) {
		t.Fatal("default-grain dataflow sort failed")
	}
	// Tiny inputs and degenerate grains.
	var empty []int32
	SortDataflow(empty, 2, 0)
	one := []int32{5}
	SortDataflow(one, 2, 100000)
	pair := []int32{2, 1}
	SortDataflow(pair, 8, 3)
	if pair[0] != 1 || pair[1] != 2 {
		t.Fatalf("pair: %v", pair)
	}
}

func TestSortDataflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SortDataflow([]int32{2, 1}, 0, 0)
}

func TestSortDataflowStability(t *testing.T) {
	// SortDataflow uses the same stable kernels and the same left-first
	// merge tree as Sort, so value-level agreement with the (stability-
	// tested) Sort on duplicate-heavy data is the check here.
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 15; trial++ {
		n := rng.Intn(5000)
		s1 := make([]int32, n)
		for i := range s1 {
			s1[i] = int32(rng.Intn(3))
		}
		s2 := append([]int32(nil), s1...)
		Sort(s1, 4)
		SortDataflow(s2, 4, 64)
		if !verify.Equal(s1, s2) {
			t.Fatalf("trial %d: dataflow diverges on duplicates", trial)
		}
	}
}

func TestCacheEfficientSortFuncStability(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(3000)
		keys := workload.UnsortedInts(rng, n, 12)
		s := verify.Tag(keys, 0)
		CacheEfficientSortFunc(s, 64+trial*16, 1+trial%4, verify.TaggedLess)
		if !verify.StableSortOrder(s) {
			t.Fatalf("n=%d trial=%d: not stable", n, trial)
		}
	}
}

func TestCacheEfficientSortFuncMatchesOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	less := func(x, y int32) bool { return x < y }
	for trial := 0; trial < 15; trial++ {
		n := rng.Intn(6000)
		s1 := workload.Unsorted(rng, n)
		s2 := append([]int32(nil), s1...)
		CacheEfficientSort(s1, 512, 4)
		CacheEfficientSortFunc(s2, 512, 4, less)
		if !verify.Equal(s1, s2) {
			t.Fatalf("trial %d: func variant diverges", trial)
		}
	}
}

func TestCacheEfficientSortFuncPanics(t *testing.T) {
	less := func(x, y int32) bool { return x < y }
	for name, f := range map[string]func(){
		"p0":    func() { CacheEfficientSortFunc([]int32{2, 1}, 64, 0, less) },
		"cache": func() { CacheEfficientSortFunc([]int32{2, 1}, 2, 1, less) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
