package psort

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestSortCtxSorts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 1000, 1 << 17, 1<<17 + 77} {
		for _, p := range []int{1, 3, 8} {
			s := make([]int, n)
			for i := range s {
				s[i] = rng.Intn(1 << 20)
			}
			if err := SortCtx(context.Background(), s, p); err != nil {
				t.Fatalf("n=%d p=%d: err %v", n, p, err)
			}
			if !sort.IntsAreSorted(s) {
				t.Fatalf("n=%d p=%d: not sorted", n, p)
			}
		}
	}
}

func TestSortCtxStable(t *testing.T) {
	// Stability is observable through SortFunc only for key/payload pairs,
	// but SortCtx is keyed on cmp.Ordered; instead verify it produces the
	// exact same bytes as Sort (which the existing suite proves stable).
	rng := rand.New(rand.NewSource(2))
	a := make([]int, 1<<16)
	for i := range a {
		a[i] = rng.Intn(100) // heavy ties
	}
	b := append([]int(nil), a...)
	Sort(a, 4)
	if err := SortCtx(context.Background(), b, 4); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("SortCtx diverged from Sort at %d", i)
		}
	}
}

func TestSortCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := make([]int, 1<<20)
	for i := range s {
		s[i] = len(s) - i
	}
	start := time.Now()
	err := SortCtx(ctx, s, 4)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("pre-canceled sort took %v", d)
	}
}

func TestSortCtxMidFlightCancel(t *testing.T) {
	// The tentpole's cancellation guarantee: a large sort observes ctx
	// cancellation at a chunk boundary and stops well before completing.
	rng := rand.New(rand.NewSource(3))
	const n = 1 << 23
	data := make([]int, n)
	for i := range data {
		data[i] = rng.Int()
	}

	// Baseline full-sort duration on this machine.
	base := append([]int(nil), data...)
	t0 := time.Now()
	if err := SortCtx(context.Background(), base, 2); err != nil {
		t.Fatal(err)
	}
	full := time.Since(t0)

	work := append([]int(nil), data...)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(full / 20)
		cancel()
	}()
	t1 := time.Now()
	err := SortCtx(ctx, work, 2)
	aborted := time.Since(t1)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled (aborted after %v, full sort %v)", err, aborted, full)
	}
	if aborted >= full {
		t.Errorf("canceled sort ran %v, full sort only %v — cancellation not observed early", aborted, full)
	}
}

func TestSortCtxDeadline(t *testing.T) {
	// An expired deadline surfaces as DeadlineExceeded, not Canceled.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	s := []int{3, 1, 2, 5, 4, 9, 7, 8}
	s = append(s, s...)
	if err := SortCtx(ctx, s, 2); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
