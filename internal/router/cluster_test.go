package router

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"mergepath/internal/fault"
	"mergepath/internal/resilience"
	"mergepath/internal/server"
	"mergepath/internal/verify"
)

// TestClusterSoak is the in-process version of `make cluster`: three
// real mergepathd backends — one injecting errors into 80% of its merge
// rounds — behind one router, under closed-loop mixed traffic (small
// whole-routed merges and large scattered ones). It asserts the fault
// stays local: the router's success rate stays high because requests
// reroute, every 200 is still the exact reference merge, the faulted
// backend's circuit breaker opened, and the healthy backends' breakers
// never did. Set MERGEPATH_CLUSTER_SOAK=1 for a longer run.
func TestClusterSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster soak skipped in -short")
	}
	const faulted = 2
	inj, err := fault.Parse("merge:error=0.8", 7)
	if err != nil {
		t.Fatal(err)
	}
	var (
		nodes    []*server.Server
		nodeURLs []string
	)
	for i := 0; i < 3; i++ {
		cfg := server.Config{Workers: 2, QueueDepth: 64}
		if i == faulted {
			cfg.Fault = inj
		}
		s := server.New(cfg)
		ts := httptest.NewServer(s)
		nodes = append(nodes, s)
		nodeURLs = append(nodeURLs, ts.URL)
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = s.Drain(ctx)
		})
	}
	rt, err := New(Config{
		Backends:         nodeURLs,
		HealthInterval:   20 * time.Millisecond,
		ScatterThreshold: 1024,
		MaxScatter:       3,
		Resilience: resilience.Config{
			MaxRetries: 1,
			Backoff:    resilience.BackoffConfig{Base: time.Millisecond, Max: 10 * time.Millisecond},
			Breaker:    resilience.BreakerConfig{FailureThreshold: 5, OpenFor: 200 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)

	requests := 150
	if os.Getenv("MERGEPATH_CLUSTER_SOAK") != "" {
		requests = 2000
	}
	const workers = 4
	var (
		mu       sync.Mutex
		ok, fail int
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for n := 0; n < requests/workers; n++ {
				var a, b []int64
				if n%3 == 0 { // large: scattered across the fleet
					a = sortedInt64(rng, 800+rng.Intn(800), 1<<20)
					b = sortedInt64(rng, 800+rng.Intn(800), 64) // duplicate-heavy side
				} else { // small: routed whole
					a = sortedInt64(rng, rng.Intn(300), 1<<20)
					b = sortedInt64(rng, rng.Intn(300), 1<<20)
				}
				var got server.MergeResponse
				code := post(t, ts.URL, "/v1/merge", server.MergeRequest{A: a, B: b}, &got)
				mu.Lock()
				if code == http.StatusOK {
					ok++
				} else {
					fail++
				}
				mu.Unlock()
				if code == http.StatusOK && !verify.Equal(got.Result, verify.ReferenceMerge(a, b)) {
					t.Errorf("worker %d req %d: wrong merge through faulted cluster", w, n)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	total := ok + fail
	if total == 0 {
		t.Fatal("no requests completed")
	}
	if rate := float64(ok) / float64(total); rate < 0.95 {
		t.Fatalf("ok rate %.3f (%d/%d) — fault did not stay local", rate, ok, total)
	}

	// The fault's blast radius: the faulted backend's merge breaker
	// opened at least once; no healthy backend's breaker ever did.
	for i, b := range rt.reg.backends {
		st := b.client.StatsSnapshot()
		if i == faulted {
			if st.BreakerOpens == 0 {
				t.Errorf("faulted backend: breaker never opened (errors=%d)", b.errors.Load())
			}
			continue
		}
		if st.BreakerOpens != 0 {
			t.Errorf("healthy backend %d: breaker opened %d times", i, st.BreakerOpens)
		}
	}

	// Errors concentrated on the faulted backend.
	var healthyErrs, faultedErrs uint64
	for i, b := range rt.reg.backends {
		if i == faulted {
			faultedErrs = b.errors.Load()
		} else {
			healthyErrs += b.errors.Load()
		}
	}
	if faultedErrs == 0 {
		t.Error("faulted backend recorded no errors — injector never fired?")
	}
	if healthyErrs > faultedErrs/4 {
		t.Errorf("errors not concentrated: healthy=%d faulted=%d", healthyErrs, faultedErrs)
	}
	if inj.Errors.Load() == 0 {
		t.Error("fault injector idle — the soak tested nothing")
	}

	// The router survived with its fleet view intact: healthz still ok
	// (the faulted node answers /healthz fine; its failures are
	// request-level) and reroutes were actually exercised.
	snap := rt.Snapshot()
	if snap.Routing.Rerouted == 0 {
		t.Error("no reroutes recorded despite an 80% faulty backend")
	}
	if snap.Routing.Scattered == 0 {
		t.Error("no scatters recorded")
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h RouterHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("router health %q after soak, want ok (states %v)", h.Status, h.BackendStates)
	}
}
