package router

import (
	"encoding/json"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mergepath/internal/resilience"
	"mergepath/internal/server"
	"mergepath/internal/wire"
)

// Backend state tiers, ordered by routing preference. The router routes
// to the best available tier and only walks down when a tier is empty:
// a shedding node still answers 429 faster than a dead one times out,
// so even the worst tiers stay addressable as a last resort.
const (
	tierHealthy  = iota // polled ok, overload state healthy
	tierDegraded        // browning out: admitted but deprioritized
	tierShedding        // refusing new work with 429
	tierDraining        // graceful shutdown in progress
	tierDown            // unreachable for pollDownAfter consecutive polls
)

// pollDownAfter is how many consecutive failed health polls mark a
// backend down. One failure is forgiven (a dropped poll during a GC
// pause or listener hiccup must not divert traffic); two in a row at
// the default 250ms interval means ~500ms of silence, which is real.
const pollDownAfter = 2

// stateName maps a tier to its /healthz and /metrics wire name.
func stateName(tier int) string {
	switch tier {
	case tierHealthy:
		return "healthy"
	case tierDegraded:
		return "degraded"
	case tierShedding:
		return "shedding"
	case tierDraining:
		return "draining"
	default:
		return "down"
	}
}

// backend is one mergepathd node as the router sees it: its resilient
// client (per-backend breakers, retries, budget), the last polled
// health document, and cumulative traffic counters.
type backend struct {
	url    string // base URL, no trailing slash
	client *resilience.Client

	mu         sync.Mutex
	health     server.Health // last successfully polled document
	polledOnce bool
	failStreak int       // consecutive poll failures
	lastPoll   time.Time // when the last poll attempt finished

	requests atomic.Uint64 // sub- and whole requests sent
	errors   atomic.Uint64 // transport errors and 5xx/429 outcomes
}

// tier classifies the backend for routing, from its poll state.
func (b *backend) tier() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tierLocked()
}

func (b *backend) tierLocked() int {
	if !b.polledOnce || b.failStreak >= pollDownAfter {
		return tierDown
	}
	switch b.health.Status {
	case "ok", "healthy":
		return tierHealthy
	case "degraded":
		return tierDegraded
	case "shedding":
		return tierShedding
	case "draining":
		return tierDraining
	default:
		return tierDown
	}
}

// speaksWire reports whether the backend's last polled /healthz
// advertised the binary frame format. Backends that predate the wire
// protocol publish no formats list and keep getting JSON — the
// mixed-version fleet degrades per backend instead of breaking.
func (b *backend) speaksWire() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, f := range b.health.Formats {
		if f == wire.ContentType {
			return true
		}
	}
	return false
}

// load reports the backend's element backlog — the least-loaded
// routing signal. Queue depth breaks backlog ties (both zero on an
// idle node; a node with queued jobs whose sizes aren't known yet
// still reports depth).
func (b *backend) load() (backlog int64, queueDepth int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.health.Overload != nil {
		backlog = b.health.Overload.BacklogElements
	}
	return backlog, b.health.QueueDepth
}

// notePoll folds one health-poll outcome into the backend state.
func (b *backend) notePoll(h *server.Health, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lastPoll = time.Now()
	if err != nil {
		b.failStreak++
		return
	}
	b.failStreak = 0
	b.polledOnce = true
	b.health = *h
}

// registry owns the backend set and the health poller.
type registry struct {
	backends []*backend
	interval time.Duration
	hc       *http.Client
	stop     chan struct{}
	done     chan struct{}
}

func newRegistry(urls []string, interval, timeout time.Duration, mk func(u string) *resilience.Client) *registry {
	r := &registry{
		interval: interval,
		hc:       &http.Client{Timeout: timeout},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, u := range urls {
		for len(u) > 0 && u[len(u)-1] == '/' {
			u = u[:len(u)-1]
		}
		r.backends = append(r.backends, &backend{url: u, client: mk(u)})
	}
	return r
}

// start polls every backend once synchronously (so the first request
// already routes on real state) and then keeps polling on the interval
// until close.
func (r *registry) start() {
	r.pollAll()
	go func() {
		defer close(r.done)
		t := time.NewTicker(r.interval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				r.pollAll()
			}
		}
	}()
}

func (r *registry) close() {
	close(r.stop)
	<-r.done
}

// pollAll refreshes every backend's health concurrently and returns
// when all polls finished (bounded by the poll client's timeout).
func (r *registry) pollAll() {
	var wg sync.WaitGroup
	for _, b := range r.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			h, err := r.pollOne(b)
			b.notePoll(h, err)
		}(b)
	}
	wg.Wait()
}

// pollOne fetches one backend's /healthz. A 503 body still parses —
// that is how draining is learned — so only transport and decode
// failures count as poll errors.
func (r *registry) pollOne(b *backend) (*server.Health, error) {
	resp, err := r.hc.Get(b.url + "/healthz")
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	var h server.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	return &h, nil
}

// candidate is one backend with its selection signals captured at pick
// time, so a routing decision is made against one consistent view.
type candidate struct {
	b       *backend
	tier    int
	backlog int64
	depth   int
	score   uint64 // rendezvous score for the current key (whole routing only)
}

// candidates snapshots every backend's tier and load.
func (r *registry) candidates() []candidate {
	cs := make([]candidate, 0, len(r.backends))
	for _, b := range r.backends {
		t := b.tier()
		backlog, depth := b.load()
		cs = append(cs, candidate{b: b, tier: t, backlog: backlog, depth: depth})
	}
	return cs
}

// bestTier returns the candidates of the most-preferred non-empty tier
// at or below maxTier, walking down (healthy → degraded → shedding →
// draining → down) until one is populated. This is the brownout
// diversion: a degraded or shedding node simply stops being selected
// while any better node exists, instead of failing requests.
func bestTier(cs []candidate, maxTier int) []candidate {
	for t := tierHealthy; t <= maxTier; t++ {
		var out []candidate
		for _, c := range cs {
			if c.tier == t {
				out = append(out, c)
			}
		}
		if len(out) > 0 {
			return out
		}
	}
	return nil
}

// rendezvousScore is highest-random-weight hashing: each (key, backend)
// pair gets an independent pseudo-random score and the top scorer owns
// the key. Removing a backend only remaps the keys it owned; adding one
// only steals 1/n of each key space — no global reshuffle, which keeps
// any per-backend locality (warm page cache, JIT'd branch history)
// intact across membership changes.
func rendezvousScore(key uint64, backendURL string) uint64 {
	h := fnv.New64a()
	var kb [8]byte
	for i := range kb {
		kb[i] = byte(key >> (8 * i))
	}
	h.Write(kb[:])
	h.Write([]byte(backendURL))
	return h.Sum64()
}

// pickWhole selects one backend for an unsplit request: rendezvous-hash
// the request key over the best available tier, then pick the less
// loaded of the top two scorers (power-of-two-choices on the element
// backlog). exclude skips one backend (failover re-picks). preferWire
// narrows the pool to backends advertising the binary frame format —
// a preference, not a requirement: when no backend speaks it the full
// pool is used and the chosen node answers 415 itself, which is the
// honest passthrough outcome. Returns nil when no backend exists at
// all.
func (r *registry) pickWhole(key uint64, exclude *backend, preferWire bool) *backend {
	cs := r.candidates()
	if exclude != nil && len(cs) > 1 {
		kept := cs[:0]
		for _, c := range cs {
			if c.b != exclude {
				kept = append(kept, c)
			}
		}
		cs = kept
	}
	if preferWire {
		var speaking []candidate
		for _, c := range cs {
			if c.b.speaksWire() {
				speaking = append(speaking, c)
			}
		}
		if len(speaking) > 0 {
			cs = speaking
		}
	}
	pool := bestTier(cs, tierDown)
	if len(pool) == 0 {
		return nil
	}
	for i := range pool {
		pool[i].score = rendezvousScore(key, pool[i].b.url)
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].score > pool[j].score })
	if len(pool) == 1 {
		return pool[0].b
	}
	// Least-loaded between the two rendezvous winners: affinity decides
	// the shortlist, live backlog decides the final pick, so one hot key
	// cannot pin a drowning node.
	a, b := pool[0], pool[1]
	if b.backlog < a.backlog || (b.backlog == a.backlog && b.depth < a.depth) {
		return b.b
	}
	return a.b
}

// pickScatter selects up to want backends for a scattered merge,
// ordered least-loaded first. Only healthy and degraded nodes
// participate — scattering to a shedding node would guarantee a 429 on
// a sub-request and fail the whole merge. The caller checks the count:
// fewer than two means route whole instead.
func (r *registry) pickScatter(want int) []*backend {
	pool := bestTier(r.candidates(), tierDegraded)
	// A lone healthy node must not starve a scatter that two
	// healthy+degraded nodes could serve: widen to both tiers.
	if len(pool) < 2 {
		var both []candidate
		for _, c := range r.candidates() {
			if c.tier <= tierDegraded {
				both = append(both, c)
			}
		}
		pool = both
	}
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].tier != pool[j].tier {
			return pool[i].tier < pool[j].tier
		}
		if pool[i].backlog != pool[j].backlog {
			return pool[i].backlog < pool[j].backlog
		}
		return pool[i].b.url < pool[j].b.url
	})
	if want > len(pool) {
		want = len(pool)
	}
	out := make([]*backend, 0, want)
	for _, c := range pool[:want] {
		out = append(out, c.b)
	}
	return out
}
