// Package router is the mergepath fleet tier: a scatter-gather HTTP
// front door that multiplexes the /v1 API across N mergepathd backends.
//
// Small requests are routed whole — rendezvous-hashed over the best
// available backend tier with a least-loaded (power-of-two-choices)
// final pick — so one hot key keeps locality without pinning a
// struggling node. Large merges are split with the paper's diagonal
// co-ranking cut (SplitMerge): disjoint, balanced output windows that
// independent backends serve with zero coordination, recombined by the
// gather stage with internal/kway into a response byte-identical to a
// single node's.
//
// Every backend is driven through its own internal/resilience client
// (jittered retries honoring Retry-After, a retry budget, per-endpoint
// circuit breakers), and a poller watches each backend's /healthz so
// overload state (healthy/degraded/shedding), element backlog and drain
// rate steer routing before errors ever happen: brownout on one node
// diverts traffic instead of failing requests. The router exposes the
// same operational surface as the node daemon — /healthz, /metrics,
// /metrics/prom — with route/forward/scatter/gather lifecycle spans on
// Server-Timing.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"mime"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"time"

	"mergepath/internal/kway"
	"mergepath/internal/resilience"
	"mergepath/internal/server"
	"mergepath/internal/wire"
)

// Router lifecycle stage names, surfaced on Server-Timing, /metrics and
// /metrics/prom exactly like the node daemon's stages (all wall time).
const (
	// StageDecode is request-body read (and, for scatterable merges,
	// JSON parse + sortedness check).
	StageDecode = "decode"
	// StageRoute is backend selection: tier filtering, rendezvous
	// hashing and the least-loaded pick.
	StageRoute = "route"
	// StageForward is the whole-request backend round trip, failover
	// included.
	StageForward = "forward"
	// StageScatter is the fan-out: all sub-merge round trips, measured
	// as wall time from first send to last response.
	StageScatter = "scatter"
	// StageGather is the recombination of sorted partials via
	// internal/kway into the single response array.
	StageGather = "gather"
	// StageWrite is response serialization.
	StageWrite = "write"
)

// stageNames is the fixed stage key set, in lifecycle order.
var stageNames = []string{
	StageDecode, StageRoute, StageForward, StageScatter, StageGather, StageWrite,
}

// StageNames returns the router lifecycle stage keys in order. Callers
// own the returned slice.
func StageNames() []string { return append([]string(nil), stageNames...) }

// Config shapes the router. Zero values select the documented defaults;
// Backends is the only required field.
type Config struct {
	// Backends is the mergepathd base URLs fronted by this router.
	Backends []string
	// HealthInterval is the /healthz poll period per backend.
	// Default 250ms.
	HealthInterval time.Duration
	// HealthTimeout bounds one health poll. Default 1s.
	HealthTimeout time.Duration
	// ScatterThreshold is the smallest total element count
	// (len(a)+len(b)) at which a /v1/merge request is split across
	// backends instead of routed whole. Default 1<<17.
	ScatterThreshold int
	// MaxScatter caps the scatter fan-out (windows per request).
	// Default 8, clamped to the backend count at pick time.
	MaxScatter int
	// GatherStrategy selects how sorted partials from a scatter are
	// recombined: kway.StrategyAuto (the zero value) picks by partial
	// count and total size, the rest force one of heap, tree or corank
	// (see docs/KWAY.md). The output is byte-identical either way.
	GatherStrategy kway.Strategy
	// MaxBodyBytes caps request bodies; beyond it the router answers
	// 413 without touching a backend. Default 32 MiB (larger than the
	// node default: the router exists to take requests one node
	// would rather not).
	MaxBodyBytes int64
	// RequestTimeout bounds one routed request end to end, sub-request
	// retries and failover included. Default 15s.
	RequestTimeout time.Duration
	// Resilience tunes each backend's client stack (retries, backoff,
	// budget, hedging, breaker). Zero values select that package's
	// defaults plus MaxRetries=1 — one retry on the same backend before
	// the router fails over to a different one.
	Resilience resilience.Config
	// Transport, when non-nil, overrides the shared *http.Client the
	// per-backend resilience clients wrap (tests inject the in-process
	// listener's client). Nil selects a 10s-timeout default.
	Transport *http.Client
	// AccessLog, when true, writes one structured log line per finished
	// request with its ID, endpoint, status and span timings.
	AccessLog bool
}

func (c Config) withDefaults() Config {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.ScatterThreshold <= 0 {
		c.ScatterThreshold = 1 << 17
	}
	if c.MaxScatter <= 0 {
		c.MaxScatter = 8
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.Resilience.MaxRetries == 0 {
		c.Resilience.MaxRetries = 1
	}
	return c
}

// Router is the scatter-gather routing tier. It is an http.Handler;
// pair it with an http.Server for transport and call Close on shutdown.
type Router struct {
	cfg Config
	reg *registry
	m   *metrics
	mux *http.ServeMux
}

// New starts a Router: backends are polled once synchronously so the
// first request routes on real state, then the poller continues in the
// background until Close.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("router: at least one backend URL is required")
	}
	hc := cfg.Transport
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	rt := &Router{cfg: cfg, m: newMetrics(), mux: http.NewServeMux()}
	rt.m.gatherStrategy = cfg.GatherStrategy.String()
	seed := cfg.Resilience.Seed
	rt.reg = newRegistry(cfg.Backends, cfg.HealthInterval, cfg.HealthTimeout, func(u string) *resilience.Client {
		rc := cfg.Resilience
		// Decorrelate the per-backend jitter RNGs while keeping runs
		// reproducible under one configured seed.
		h := fnv.New64a()
		h.Write([]byte(u))
		rc.Seed = seed + int64(h.Sum64()&0x7fffffff)
		return resilience.New(hc, rc)
	})
	rt.mux.HandleFunc("POST /v1/merge", rt.route("merge", rt.handleMerge))
	rt.mux.HandleFunc("POST /v1/sort", rt.route("sort", rt.forwardHandler("/v1/sort")))
	rt.mux.HandleFunc("POST /v1/mergek", rt.route("mergek", rt.forwardHandler("/v1/mergek")))
	rt.mux.HandleFunc("POST /v1/setops", rt.route("setops", rt.forwardHandler("/v1/setops")))
	rt.mux.HandleFunc("POST /v1/select", rt.route("select", rt.forwardHandler("/v1/select")))
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /metrics/prom", rt.handleMetricsProm)
	rt.reg.start()
	return rt, nil
}

// ServeHTTP implements http.Handler by dispatching to the router mux.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Close stops the health poller. In-flight requests finish normally
// (shut the http.Server down first, as with the node daemon).
func (rt *Router) Close() { rt.reg.close() }

// Snapshot returns the current /metrics document.
func (rt *Router) Snapshot() MetricsSnapshot { return rt.m.snapshot(rt.reg) }

// reply is one handler's outcome: either a raw backend passthrough
// (body non-nil) or an object the envelope JSON-encodes.
type reply struct {
	status     int
	obj        any         // encoded when body is nil
	body       []byte      // raw passthrough from a backend
	ctype      string      // body's Content-Type; empty means application/json
	retryAfter string      // Retry-After to surface (backend-quoted)
	timing     string      // backend Server-Timing to append to ours
	backendID  string      // X-Request-Id minted downstream, if any
}

// route wraps an endpoint handler with the shared envelope: request-ID
// assignment, per-stage tracing, response write, Server-Timing
// exposition, per-endpoint metrics, and the optional access log.
func (rt *Router) route(endpoint string, h func(*http.Request, *server.Trace) *reply) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = server.NextRequestID()
		}
		tr := server.NewTrace(id, start)
		r.Body = http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)
		r.Header.Set("X-Request-Id", id)
		rep := h(r, tr)
		ct := rep.ctype
		if ct == "" {
			ct = "application/json"
		}
		w.Header().Set("Content-Type", ct)
		w.Header().Set("X-Request-Id", id)
		st := tr.ServerTiming()
		if rep.timing != "" {
			// The backend's own spans ride along after the router's, so a
			// client sees the whole path: route/forward here, then
			// decode/queue_wait/merge/... from the node that served it.
			if st != "" {
				st += ", "
			}
			st += rep.timing
		}
		if st != "" {
			w.Header().Set("Server-Timing", st)
		}
		if rep.retryAfter != "" {
			w.Header().Set("Retry-After", rep.retryAfter)
		}
		wstart := time.Now()
		w.WriteHeader(rep.status)
		if rep.body != nil {
			_, _ = w.Write(rep.body)
		} else {
			_ = json.NewEncoder(w).Encode(rep.obj)
		}
		tr.Span(StageWrite, wstart)
		total := time.Since(start)
		rt.m.observe(endpoint, rep.status, total)
		rt.m.observeSpans(tr.Spans())
		if rt.cfg.AccessLog {
			log.Print("router: ", tr.LogLine(endpoint, rep.status, total))
		}
	}
}

// errReply builds a JSON error reply in the node daemon's envelope.
func errReply(status int, err error) *reply {
	return &reply{status: status, obj: server.ErrorResponse{Error: err.Error()}}
}

// readBody slurps the (size-capped) request body, distinguishing
// oversized (413) from transport trouble (400). Callers record the
// decode span so each request gets exactly one, covering read plus
// whatever parsing the endpoint does on top.
func readBody(r *http.Request) ([]byte, *reply) {
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, errReply(http.StatusRequestEntityTooLarge, errors.New("request body exceeds limit"))
		}
		return nil, errReply(http.StatusBadRequest, err)
	}
	return raw, nil
}

// bodyKey is the rendezvous routing key: a content hash, so identical
// request bodies land on the same backend (page-cache and
// response-cache affinity) while the overall spread stays uniform.
func bodyKey(raw []byte) uint64 {
	h := fnv.New64a()
	h.Write(raw)
	return h.Sum64()
}

// fwdHeaders assembles the headers forwarded to a backend: the
// correlation ID (suffixed per sub-request by the scatter path) and the
// client's deadline preference.
func fwdHeaders(r *http.Request, id string) http.Header {
	hdr := http.Header{}
	hdr.Set("X-Request-Id", id)
	if v := r.Header.Get("X-Timeout-Ms"); v != "" {
		hdr.Set("X-Timeout-Ms", v)
	}
	return hdr
}

// mediaTypeIs reports whether header value v names media type want,
// ignoring parameters and case.
func mediaTypeIs(v, want string) bool {
	mt, _, err := mime.ParseMediaType(v)
	return err == nil && mt == want
}

// wireRequest reports whether the client posted a binary frame.
func wireRequest(r *http.Request) bool {
	return mediaTypeIs(r.Header.Get("Content-Type"), wire.ContentType)
}

// wantsWire reports whether the client's Accept header asks for a
// binary frame response. Same lenient policy as the node daemon: any
// unparseable or unknown Accept falls back to JSON, never 406.
func wantsWire(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		if mediaTypeIs(strings.TrimSpace(part), wire.ContentType) {
			return true
		}
	}
	return false
}

// backendResult is one backend call's outcome with the body drained, so
// connections are reused and failover can freely discard it.
type backendResult struct {
	status int
	body   []byte
	header http.Header
}

// retryableStatus reports whether a backend's final status still means
// "another backend might do better": the resilience client already
// spent its retries on this backend before handing this back.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// postBackend performs one resilient call to a backend and fully reads
// the response, folding the outcome into the backend's counters. ctype
// is the request body's Content-Type — JSON for legacy backends, the
// binary frame for wire-speaking hops.
func (rt *Router) postBackend(ctx context.Context, b *backend, path, ctype string, hdr http.Header, body []byte) (*backendResult, error) {
	b.requests.Add(1)
	resp, err := b.client.PostHeaders(ctx, b.url+path, ctype, hdr, body)
	if err != nil {
		b.errors.Add(1)
		return nil, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		b.errors.Add(1)
		return nil, err
	}
	if retryableStatus(resp.StatusCode) {
		b.errors.Add(1)
	}
	return &backendResult{status: resp.StatusCode, body: buf, header: resp.Header}, nil
}

// forwardHandler builds the whole-request handler for one /v1 path.
func (rt *Router) forwardHandler(path string) func(*http.Request, *server.Trace) *reply {
	return func(r *http.Request, tr *server.Trace) *reply {
		t0 := time.Now()
		raw, rep := readBody(r)
		tr.Span(StageDecode, t0)
		if rep != nil {
			return rep
		}
		return rt.forwardWhole(r, tr, path, raw)
	}
}

// forwardWhole routes one request to a single backend, failing over to
// a different backend once if the pick's resilient client could not get
// a useful answer (transport error or a still-retryable status). The
// client's Content-Type and Accept pass through untouched — the
// backend negotiates the format exactly as if it were hit directly —
// and binary-frame requests prefer wire-speaking backends so a
// mixed-version fleet routes them where they can succeed.
func (rt *Router) forwardWhole(r *http.Request, tr *server.Trace, path string, raw []byte) *reply {
	key := bodyKey(raw)
	preferWire := wireRequest(r)
	t0 := time.Now()
	first := rt.reg.pickWhole(key, nil, preferWire)
	tr.Span(StageRoute, t0)
	if first == nil {
		rt.m.failed.Add(1)
		return errReply(http.StatusServiceUnavailable, errors.New("no backends available"))
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	defer cancel()
	hdr := fwdHeaders(r, r.Header.Get("X-Request-Id"))
	if a := r.Header.Get("Accept"); a != "" {
		hdr.Set("Accept", a)
	}
	ctype := r.Header.Get("Content-Type")
	if ctype == "" {
		ctype = "application/json"
	}
	fstart := time.Now()
	res, err := rt.postBackend(ctx, first, path, ctype, hdr, raw)
	if (err != nil || retryableStatus(res.status)) && ctx.Err() == nil {
		if second := rt.reg.pickWhole(key, first, preferWire); second != nil && second != first {
			rt.m.rerouted.Add(1)
			res2, err2 := rt.postBackend(ctx, second, path, ctype, hdr, raw)
			// Keep the better outcome: any response beats an error, a
			// conclusive status beats a retryable one.
			switch {
			case err2 == nil && (err != nil || !retryableStatus(res2.status) || retryableStatus(res.status)):
				res, err = res2, nil
			case err2 == nil && res == nil:
				res, err = res2, nil
			}
		}
	}
	tr.Span(StageForward, fstart)
	if err != nil {
		rt.m.failed.Add(1)
		return errReply(http.StatusBadGateway, fmt.Errorf("backend unavailable: %w", err))
	}
	rt.m.routed.Add(1)
	rep := &reply{status: res.status, body: res.body,
		ctype: res.header.Get("Content-Type"), timing: res.header.Get("Server-Timing")}
	if ra := res.header.Get("Retry-After"); ra != "" &&
		(res.status == http.StatusTooManyRequests || res.status == http.StatusServiceUnavailable) {
		rep.retryAfter = ra
	}
	return rep
}

// handleMerge decides between whole routing and the co-ranking scatter
// for one /v1/merge request. Both request formats scatter: a binary
// frame is decoded into the same (a, b) view a JSON body yields. Float
// frames and anything else the scatter path has no cut for route whole
// — the backend negotiates those exactly as if hit directly.
func (rt *Router) handleMerge(r *http.Request, tr *server.Trace) *reply {
	t0 := time.Now()
	raw, rep := readBody(r)
	if rep != nil {
		tr.Span(StageDecode, t0)
		return rep
	}
	var req server.MergeRequest
	if wireRequest(r) {
		fr, err := wire.Decode(bytes.NewReader(raw), wire.Limits{MaxElements: int(rt.cfg.MaxBodyBytes / 8)})
		if err != nil {
			tr.Span(StageDecode, t0)
			if errors.Is(err, wire.ErrTooLarge) {
				return errReply(http.StatusRequestEntityTooLarge, err)
			}
			return errReply(http.StatusBadRequest, err)
		}
		defer fr.Release()
		if fr.Type != wire.Int64 || fr.Lists() != 2 {
			// Float merges (or frames a backend will reject anyway) are
			// not scatterable here; let one node answer authoritatively.
			tr.Span(StageDecode, t0)
			return rt.forwardWhole(r, tr, "/v1/merge", raw)
		}
		req.A, req.B = fr.Ints[0], fr.Ints[1]
	} else if ct := r.Header.Get("Content-Type"); ct != "" &&
		!mediaTypeIs(ct, "application/json") && !mediaTypeIs(ct, "text/json") {
		// Unknown media type: not ours to parse. Forward whole so the
		// client gets the node's own 415, not a confusing parse error.
		tr.Span(StageDecode, t0)
		return rt.forwardWhole(r, tr, "/v1/merge", raw)
	} else if err := json.Unmarshal(raw, &req); err != nil {
		tr.Span(StageDecode, t0)
		return errReply(http.StatusBadRequest, err)
	}
	total := len(req.A) + len(req.B)
	if total < rt.cfg.ScatterThreshold {
		tr.Span(StageDecode, t0)
		return rt.forwardWhole(r, tr, "/v1/merge", raw)
	}
	// The split searches assume sorted inputs; garbage in would scatter
	// into windows whose sub-merges can silently succeed. Check here so
	// the router's 400 matches the node's instead of returning a wrong
	// 200 — the scan is O(n) but so is the node-side check it replaces.
	for name, s := range map[string][]int64{"a": req.A, "b": req.B} {
		if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] }) {
			tr.Span(StageDecode, t0)
			return errReply(http.StatusBadRequest, fmt.Errorf("input %q is not sorted", name))
		}
	}
	tr.Span(StageDecode, t0)
	return rt.scatterMerge(r, tr, req, raw)
}

// scatterMerge splits a large merge across backends with the diagonal
// co-ranking cut, runs the sub-merges concurrently (with per-window
// failover), and gathers the sorted partials with internal/kway.
func (rt *Router) scatterMerge(r *http.Request, tr *server.Trace, req server.MergeRequest, raw []byte) *reply {
	t0 := time.Now()
	backs := rt.reg.pickScatter(rt.cfg.MaxScatter)
	tr.Span(StageRoute, t0)
	if len(backs) < 2 {
		// A one-node fleet (or one survivor) cannot scatter usefully;
		// route whole and let that node's own pool parallelize.
		return rt.forwardWhole(r, tr, "/v1/merge", raw)
	}
	windows := SplitMerge(req.A, req.B, len(backs))
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	defer cancel()
	id := r.Header.Get("X-Request-Id")

	sstart := time.Now()
	partials := make([][]int64, len(windows))
	errs := make([]error, len(windows))
	done := make(chan int, len(windows))
	for i, w := range windows {
		go func(i int, w Window) {
			partials[i], errs[i] = rt.mergeWindow(ctx, r, id, i, req, w, backs)
			done <- i
		}(i, w)
	}
	for range windows {
		<-done
	}
	tr.Span(StageScatter, sstart)
	for _, err := range errs {
		if err != nil {
			rt.m.failed.Add(1)
			return errReply(http.StatusBadGateway, fmt.Errorf("scatter failed: %w", err))
		}
	}

	gstart := time.Now()
	out := make([]int64, len(req.A)+len(req.B))
	_, st := kway.MergeIntoStats(out, partials, runtime.GOMAXPROCS(0), rt.cfg.GatherStrategy)
	gather := time.Since(gstart)
	tr.Add(StageGather, gstart, gather)
	rt.m.noteScatter(len(windows), gather)
	rt.m.noteGather(st)
	if wantsWire(r) {
		return &reply{status: http.StatusOK, ctype: wire.ContentType, body: wire.AppendInt64(nil, out)}
	}
	return &reply{status: http.StatusOK, obj: server.MergeResponse{Result: out}}
}

// mergeWindow executes one scatter window: its primary backend is
// chosen round-robin by window index, and on failure every other
// scatter participant is tried before the window (and with it the whole
// request) is declared failed. Each hop is encoded in the best format
// that backend advertises — the binary frame when its /healthz lists
// it, JSON otherwise — so a mixed-version fleet degrades per hop.
func (rt *Router) mergeWindow(ctx context.Context, r *http.Request, id string, i int, req server.MergeRequest, w Window, backs []*backend) ([]int64, error) {
	subA, subB := req.A[w.ALo:w.AHi], req.B[w.BLo:w.BHi]
	var jsonBody, wireBody []byte // lazily encoded, at most once each
	hdr := fwdHeaders(r, fmt.Sprintf("%s-s%d", id, i))
	var lastErr error
	for attempt := 0; attempt < len(backs); attempt++ {
		if ctx.Err() != nil {
			break
		}
		b := backs[(i+attempt)%len(backs)]
		if attempt > 0 {
			rt.m.rerouted.Add(1)
		}
		body, ctype := jsonBody, "application/json"
		if b.speaksWire() {
			if wireBody == nil {
				wireBody = wire.AppendInt64(nil, subA, subB)
			}
			body, ctype = wireBody, wire.ContentType
			hdr.Set("Accept", wire.ContentType)
			rt.m.binaryHops.Add(1)
		} else {
			if jsonBody == nil {
				var err error
				if jsonBody, err = json.Marshal(server.MergeRequest{A: subA, B: subB}); err != nil {
					return nil, err
				}
			}
			body = jsonBody
			hdr.Set("Accept", "application/json")
		}
		res, err := rt.postBackend(ctx, b, "/v1/merge", ctype, hdr, body)
		if err != nil {
			lastErr = err
			continue
		}
		if res.status != http.StatusOK {
			lastErr = fmt.Errorf("backend %s: window %d status %d", b.url, i, res.status)
			continue
		}
		result, err := decodeSubMerge(res)
		if err != nil {
			lastErr = fmt.Errorf("backend %s: window %d: %w", b.url, i, err)
			continue
		}
		if len(result) != w.Len() {
			lastErr = fmt.Errorf("backend %s: window %d returned %d elements, want %d",
				b.url, i, len(result), w.Len())
			continue
		}
		return result, nil
	}
	if lastErr == nil {
		lastErr = ctx.Err()
	}
	return nil, lastErr
}

// decodeSubMerge extracts the sorted partial from one sub-merge
// response, in whichever format the backend chose. The frame path
// copies out of the pooled arena so the buffer goes straight back to
// the pool instead of living until the gather finishes.
func decodeSubMerge(res *backendResult) ([]int64, error) {
	if mediaTypeIs(res.header.Get("Content-Type"), wire.ContentType) {
		fr, err := wire.Decode(bytes.NewReader(res.body), wire.Limits{})
		if err != nil {
			return nil, err
		}
		defer fr.Release()
		if fr.Type != wire.Int64 || fr.Lists() != 1 {
			return nil, fmt.Errorf("sub-merge frame: type %d with %d lists, want one int64 list", fr.Type, fr.Lists())
		}
		return append([]int64(nil), fr.Ints[0]...), nil
	}
	var mr server.MergeResponse
	if err := json.Unmarshal(res.body, &mr); err != nil {
		return nil, err
	}
	return mr.Result, nil
}
