package router

import (
	"math/rand"
	"testing"

	"mergepath/internal/core"
	"mergepath/internal/kway"
	"mergepath/internal/verify"
)

// sortedInt64 draws n values from [0, bound) and insertion-sorts them.
// A small bound makes duplicate-heavy inputs (the tie-rule stressor).
func sortedInt64(rng *rand.Rand, n int, bound int64) []int64 {
	s := make([]int64, n)
	for i := range s {
		s[i] = rng.Int63n(bound)
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s
}

// mergeWindows runs every window's sub-merge locally — standing in for
// the backends — and returns the partials in window order.
func mergeWindows(a, b []int64, ws []Window) [][]int64 {
	parts := make([][]int64, len(ws))
	for i, w := range ws {
		out := make([]int64, w.Len())
		core.ParallelMerge(a[w.ALo:w.AHi], b[w.BLo:w.BHi], out, 2)
		parts[i] = out
	}
	return parts
}

// checkWindows asserts the structural invariants SplitMerge guarantees:
// the windows tile both inputs contiguously and their output sizes are
// balanced to within one element.
func checkWindows(t *testing.T, a, b []int64, ws []Window, parts int) {
	t.Helper()
	n := len(a) + len(b)
	if n == 0 {
		if len(ws) != 1 || ws[0] != (Window{}) {
			t.Fatalf("empty input: windows = %+v", ws)
		}
		return
	}
	want := parts
	if want > n {
		want = n
	}
	if len(ws) != want {
		t.Fatalf("got %d windows, want %d", len(ws), want)
	}
	prevA, prevB := 0, 0
	minLen, maxLen := n, 0
	for i, w := range ws {
		if w.ALo != prevA || w.BLo != prevB {
			t.Fatalf("window %d does not tile: %+v after (%d,%d)", i, w, prevA, prevB)
		}
		if w.AHi < w.ALo || w.BHi < w.BLo {
			t.Fatalf("window %d inverted: %+v", i, w)
		}
		if l := w.Len(); l > 0 {
			if l < minLen {
				minLen = l
			}
			if l > maxLen {
				maxLen = l
			}
		}
		prevA, prevB = w.AHi, w.BHi
	}
	if prevA != len(a) || prevB != len(b) {
		t.Fatalf("windows end at (%d,%d), inputs are (%d,%d)", prevA, prevB, len(a), len(b))
	}
	if maxLen-minLen > 1 {
		t.Fatalf("imbalanced windows: min %d, max %d", minLen, maxLen)
	}
}

// TestSplitGatherEqualsSingleNode is the scatter correctness property:
// for any sorted inputs, any part count, cutting with SplitMerge,
// merging each window independently, and gathering the partials with
// internal/kway is byte-identical to one reference merge — duplicates,
// skew and degenerate sizes included. This is exactly the router's
// scatter path with the network removed.
func TestSplitGatherEqualsSingleNode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := [][2]int{
		{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 3},
		{17, 0}, {0, 64}, {100, 100}, {1000, 37}, {5000, 5000},
	}
	bounds := []int64{4, 1 << 20} // duplicate-heavy and mostly-distinct
	for _, sz := range sizes {
		for _, bound := range bounds {
			a := sortedInt64(rng, sz[0], bound)
			b := sortedInt64(rng, sz[1], bound)
			want := verify.ReferenceMerge(a, b)
			for _, parts := range []int{2, 4, 8} {
				ws := SplitMerge(a, b, parts)
				checkWindows(t, a, b, ws, parts)
				partials := mergeWindows(a, b, ws)
				got := kway.Merge(partials, 4)
				if !verify.Equal(got, want) {
					t.Fatalf("a=%d b=%d bound=%d parts=%d: scatter+gather != single merge",
						sz[0], sz[1], bound, parts)
				}
			}
		}
	}
}

// TestSplitGatherSkewed covers pathological skew: one input drained
// long before the other, interleaved blocks, and all-equal inputs where
// every element ties across the arrays.
func TestSplitGatherSkewed(t *testing.T) {
	cases := []struct {
		name string
		a, b []int64
	}{
		{"a-first", seq(0, 1000), seq(5000, 1000)},
		{"b-first", seq(5000, 1000), seq(0, 1000)},
		{"interleaved-blocks", blocks(0, 10, 100), blocks(5, 10, 100)},
		{"all-equal", repeat(42, 777), repeat(42, 333)},
		{"one-empty", seq(0, 999), nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := verify.ReferenceMerge(tc.a, tc.b)
			for _, parts := range []int{2, 4, 8} {
				ws := SplitMerge(tc.a, tc.b, parts)
				checkWindows(t, tc.a, tc.b, ws, parts)
				got := kway.Merge(mergeWindows(tc.a, tc.b, ws), 4)
				if !verify.Equal(got, want) {
					t.Fatalf("parts=%d: scatter+gather != single merge", parts)
				}
			}
		})
	}
}

// TestSplitMergeRandomized fuzzes sizes and part counts beyond the
// fixed grid, including parts exceeding the element count.
func TestSplitMergeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		a := sortedInt64(rng, rng.Intn(300), 1+rng.Int63n(50))
		b := sortedInt64(rng, rng.Intn(300), 1+rng.Int63n(50))
		parts := 1 + rng.Intn(20)
		ws := SplitMerge(a, b, parts)
		checkWindows(t, a, b, ws, parts)
		got := kway.Merge(mergeWindows(a, b, ws), 3)
		if !verify.Equal(got, verify.ReferenceMerge(a, b)) {
			t.Fatalf("trial %d (|a|=%d |b|=%d parts=%d): mismatch", trial, len(a), len(b), parts)
		}
	}
}

func seq(start int64, n int) []int64 {
	s := make([]int64, n)
	for i := range s {
		s[i] = start + int64(i)
	}
	return s
}

func blocks(start, stride int64, n int) []int64 {
	s := make([]int64, n)
	for i := range s {
		s[i] = start + stride*int64(i/10)
	}
	return s
}

func repeat(v int64, n int) []int64 {
	s := make([]int64, n)
	for i := range s {
		s[i] = v
	}
	return s
}
