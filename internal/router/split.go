// The scatter split: the paper's diagonal co-ranking partition applied
// at fleet granularity. Theorem 5 partitions one merge into p disjoint,
// balanced windows with no communication between workers; exactly the
// same cut — SearchDiagonal at equally spaced output ranks — carves one
// large merge request into sub-requests that independent backends can
// serve with no coordination. Each window is a contiguous range of the
// *output*, so the gather stage only has to recombine already-disjoint
// sorted runs (internal/kway), and the result is byte-identical to a
// single-node merge, duplicates included, because the cut inherits the
// search's tie rule (ties go to the first array).
package router

import "mergepath/internal/core"

// Window is one scatter unit: the sub-merge of A[ALo:AHi] and
// B[BLo:BHi], which produces exactly output ranks [ALo+BLo, AHi+BHi) of
// the full merge. Windows returned by SplitMerge tile the output:
// window i+1 begins where window i ends.
type Window struct {
	ALo, AHi int // half-open range of the first input consumed by this window
	BLo, BHi int // half-open range of the second input consumed by this window
}

// Len reports the window's output size.
func (w Window) Len() int { return (w.AHi - w.ALo) + (w.BHi - w.BLo) }

// SplitMerge cuts the merge of sorted a and b into parts contiguous
// output windows of near-equal size (they differ by at most one
// element, Theorem 5's balance guarantee). parts is clamped to
// [1, len(a)+len(b)] (and to 1 when both inputs are empty), so every
// returned window is non-empty. The concatenation of the windows'
// locally merged outputs is exactly the full merge.
func SplitMerge(a, b []int64, parts int) []Window {
	n := len(a) + len(b)
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	if n == 0 {
		return []Window{{}}
	}
	ws := make([]Window, 0, parts)
	prev := core.Point{}
	for i := 1; i <= parts; i++ {
		// Rank boundaries i·n/parts make window sizes differ by ≤1.
		pt := core.SearchDiagonal(a, b, i*n/parts)
		ws = append(ws, Window{ALo: prev.A, AHi: pt.A, BLo: prev.B, BHi: pt.B})
		prev = pt
	}
	return ws
}
