package router

import (
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"testing"

	"mergepath/internal/core"
	"mergepath/internal/kway"
)

// BenchmarkGatherStrategies isolates the scatter path's gather stage:
// recombining the partials of a max-scatter-wide split exactly as
// scatterMerge does. The X15 router-gather column in BENCH_server.json.
func BenchmarkGatherStrategies(b *testing.B) {
	const n = 1 << 19 // per side; 1M-element gathered output
	rng := rand.New(rand.NewSource(170))
	a := make([]int64, n)
	bb := make([]int64, n)
	for i := range a {
		a[i] = rng.Int63n(1 << 40)
		bb[i] = rng.Int63n(1 << 40)
	}
	slices.Sort(a)
	slices.Sort(bb)
	windows := SplitMerge(a, bb, 8) // the default -max-scatter fan-out
	partials := make([][]int64, len(windows))
	for i, w := range windows {
		part := make([]int64, w.Len())
		core.Merge(a[w.ALo:w.AHi], bb[w.BLo:w.BHi], part)
		partials[i] = part
	}
	out := make([]int64, 2*n)
	for _, strat := range []kway.Strategy{kway.StrategyHeap, kway.StrategyTree, kway.StrategyCoRank} {
		b.Run(fmt.Sprintf("strategy=%s", strat), func(b *testing.B) {
			b.SetBytes(int64(2 * n * 8))
			for i := 0; i < b.N; i++ {
				kway.MergeIntoStats(out, partials, runtime.GOMAXPROCS(0), strat)
			}
		})
	}
}
