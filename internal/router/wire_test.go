package router

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mergepath/internal/server"
	"mergepath/internal/verify"
	"mergepath/internal/wire"
)

// doFmt posts body with explicit Content-Type and Accept and returns
// the response plus its bytes.
func doFmt(t *testing.T, url, path, ctype, accept string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ctype)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, buf
}

// TestRouterBinaryScatterByteIdentical: a binary-frame merge big enough
// to scatter must come back byte-identical to what a single node
// answers for the same frame, with the sub-requests riding the binary
// format (every backend here advertises it).
func TestRouterBinaryScatterByteIdentical(t *testing.T) {
	c := newTestCluster(t, 3, func(cfg *Config) { cfg.ScatterThreshold = 64 }, nil)
	rng := rand.New(rand.NewSource(4))
	a := sortedInt64(rng, 3000, 1<<20)
	b := sortedInt64(rng, 2500, 1<<20)
	body := wire.AppendInt64(nil, a, b)

	rresp, rbody := doFmt(t, c.ts.URL, "/v1/merge", wire.ContentType, wire.ContentType, body)
	nresp, nbody := doFmt(t, c.nodeURLs[0], "/v1/merge", wire.ContentType, wire.ContentType, body)
	if rresp.StatusCode != http.StatusOK || nresp.StatusCode != http.StatusOK {
		t.Fatalf("router %d node %d", rresp.StatusCode, nresp.StatusCode)
	}
	if ct := rresp.Header.Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("router reply Content-Type %q", ct)
	}
	if !bytes.Equal(rbody, nbody) {
		t.Fatal("scattered binary response differs from single node's")
	}
	fr, err := wire.Decode(bytes.NewReader(rbody), wire.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Release()
	if !verify.Equal(fr.Ints[0], verify.ReferenceMerge(a, b)) {
		t.Fatal("scattered binary result != reference")
	}

	snap := c.rt.Snapshot()
	if snap.Routing.Scattered == 0 {
		t.Fatal("no scatters recorded")
	}
	if snap.Routing.BinaryHops == 0 {
		t.Fatal("no binary hops recorded on an all-wire fleet")
	}
	if !strings.Contains(renderProm(snap), "mergerouter_binary_hops_total") {
		t.Fatal("binary hop counter missing from the prom exposition")
	}
}

// TestRouterBinaryWholeForward: a small binary request forwards whole
// with Content-Type/Accept passed through, and the backend's binary
// reply comes back untranscoded. A JSON Accept on the same binary body
// must yield the standard JSON envelope.
func TestRouterBinaryWholeForward(t *testing.T) {
	c := newTestCluster(t, 2, nil, nil)
	a, b := seq(0, 50), seq(25, 50)
	body := wire.AppendInt64(nil, a, b)

	resp, buf := doFmt(t, c.ts.URL, "/v1/merge", wire.ContentType, wire.ContentType, body)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != wire.ContentType {
		t.Fatalf("status %d ct %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	fr, err := wire.Decode(bytes.NewReader(buf), wire.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	want := verify.ReferenceMerge(a, b)
	if !verify.Equal(fr.Ints[0], want) {
		t.Fatal("forwarded binary result != reference")
	}
	fr.Release()

	resp2, buf2 := doFmt(t, c.ts.URL, "/v1/merge", wire.ContentType, "application/json", body)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("json accept: status %d ct %q", resp2.StatusCode, resp2.Header.Get("Content-Type"))
	}
	var mr server.MergeResponse
	if err := json.Unmarshal(buf2, &mr); err != nil {
		t.Fatal(err)
	}
	if !verify.Equal(mr.Result, want) {
		t.Fatal("json-accept result != reference")
	}

	// The non-merge passthrough endpoints negotiate at the node too.
	resp3, buf3 := doFmt(t, c.ts.URL, "/v1/sort", wire.ContentType, wire.ContentType,
		wire.AppendInt64(nil, []int64{5, 1, 4}))
	if resp3.StatusCode != http.StatusOK || resp3.Header.Get("Content-Type") != wire.ContentType {
		t.Fatalf("sort: status %d ct %q", resp3.StatusCode, resp3.Header.Get("Content-Type"))
	}
	sf, err := wire.Decode(bytes.NewReader(buf3), wire.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Release()
	if !verify.Equal(sf.Ints[0], []int64{1, 4, 5}) {
		t.Fatalf("sort result %v", sf.Ints[0])
	}

	if snap := c.rt.Snapshot(); snap.Routing.Scattered != 0 {
		t.Fatalf("small binary requests scattered: %d", snap.Routing.Scattered)
	}
}

// TestRouterMixedFleetDegradesToJSON: scattering across one
// wire-speaking node and one legacy backend (no formats in /healthz)
// must feed the legacy backend JSON — proven by it actually serving
// JSON windows — while the request still succeeds end to end.
func TestRouterMixedFleetDegradesToJSON(t *testing.T) {
	var legacyServed atomic.Int64
	legacy := fakeBackend(t, healthyDoc, func(w http.ResponseWriter, r *http.Request) {
		if ct := r.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("legacy backend got Content-Type %q", ct)
			http.Error(w, `{"error":"bad ctype"}`, http.StatusUnsupportedMediaType)
			return
		}
		legacyServed.Add(1)
		mergeOK(w, r)
	})

	node := server.New(server.Config{Workers: 2})
	nts := httptest.NewServer(node)
	t.Cleanup(func() {
		nts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = node.Drain(ctx)
	})

	rt, err := New(Config{
		Backends:         []string{nts.URL, legacy.URL},
		HealthInterval:   20 * time.Millisecond,
		ScatterThreshold: 64,
		MaxScatter:       2,
		Resilience:       resilienceFast(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	rts := httptest.NewServer(rt)
	t.Cleanup(rts.Close)

	rng := rand.New(rand.NewSource(5))
	a := sortedInt64(rng, 2000, 1<<20)
	b := sortedInt64(rng, 2000, 1<<20)
	resp, buf := doFmt(t, rts.URL, "/v1/merge", wire.ContentType, wire.ContentType,
		wire.AppendInt64(nil, a, b))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, buf)
	}
	fr, err := wire.Decode(bytes.NewReader(buf), wire.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Release()
	if !verify.Equal(fr.Ints[0], verify.ReferenceMerge(a, b)) {
		t.Fatal("mixed-fleet result != reference")
	}
	if legacyServed.Load() == 0 {
		t.Fatal("legacy backend served no JSON windows — degrade path untested")
	}
	if snap := rt.Snapshot(); snap.Routing.BinaryHops == 0 {
		t.Fatal("wire-speaking backend got no binary hops")
	}

	// /healthz reports the split fleet.
	hresp, err := http.Get(rts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h RouterHealth
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.WireBackends != 1 {
		t.Fatalf("wire_backends = %d, want 1", h.WireBackends)
	}
	found := false
	for _, f := range h.Formats {
		if f == wire.ContentType {
			found = true
		}
	}
	if !found {
		t.Fatalf("router /healthz formats %v missing the frame type", h.Formats)
	}
}

// TestRouterUnknownContentTypePassthrough: a media type the router
// can't parse forwards whole so the client gets the node's own 415.
func TestRouterUnknownContentTypePassthrough(t *testing.T) {
	c := newTestCluster(t, 2, func(cfg *Config) { cfg.ScatterThreshold = 8 }, nil)
	resp, _ := doFmt(t, c.ts.URL, "/v1/merge", "text/csv", "", []byte("1,2,3"))
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("status %d, want the node's 415", resp.StatusCode)
	}
}

// TestRouterBinaryFrameRejected: a corrupt frame dies at the router
// with a 400 before any backend is bothered.
func TestRouterBinaryFrameRejected(t *testing.T) {
	c := newTestCluster(t, 2, func(cfg *Config) { cfg.ScatterThreshold = 8 }, nil)
	bad := wire.AppendInt64(nil, seq(0, 100), seq(0, 100))[:37]
	resp, _ := doFmt(t, c.ts.URL, "/v1/merge", wire.ContentType, "", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated frame: status %d, want 400", resp.StatusCode)
	}
	// Unsorted binary input is caught by the same pre-scatter check as
	// JSON.
	unsorted := append(seq(0, 100), 5)
	resp2, buf := doFmt(t, c.ts.URL, "/v1/merge", wire.ContentType, "",
		wire.AppendInt64(nil, unsorted, seq(0, 100)))
	if resp2.StatusCode != http.StatusBadRequest || !strings.Contains(string(buf), "not sorted") {
		t.Fatalf("unsorted frame: status %d body %s", resp2.StatusCode, buf)
	}
}
