package router

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mergepath/internal/kway"
	"mergepath/internal/resilience"
	"mergepath/internal/server"
	"mergepath/internal/verify"
)

// testCluster is N real mergepathd nodes behind one router, all
// in-process.
type testCluster struct {
	nodes    []*server.Server
	nodeURLs []string
	rt       *Router
	ts       *httptest.Server // the router's listener
}

func newTestCluster(t *testing.T, n int, mut func(*Config), nodeCfg func(i int) server.Config) *testCluster {
	t.Helper()
	c := &testCluster{}
	for i := 0; i < n; i++ {
		cfg := server.Config{Workers: 2}
		if nodeCfg != nil {
			cfg = nodeCfg(i)
		}
		s := server.New(cfg)
		ts := httptest.NewServer(s)
		c.nodes = append(c.nodes, s)
		c.nodeURLs = append(c.nodeURLs, ts.URL)
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = s.Drain(ctx)
		})
	}
	cfg := Config{
		Backends:       c.nodeURLs,
		HealthInterval: 20 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.rt = rt
	c.ts = httptest.NewServer(rt)
	t.Cleanup(func() {
		c.ts.Close()
		rt.Close()
	})
	return c
}

// postRaw sends body and returns the raw response.
func postRaw(t *testing.T, url, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, buf
}

func post(t *testing.T, url, path string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, buf := postRaw(t, url, path, body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf, out); err != nil {
			t.Fatalf("%s: decoding response: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestRouterSmallRequestWhole(t *testing.T) {
	c := newTestCluster(t, 3, nil, nil)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		a := sortedInt64(rng, rng.Intn(300), 1<<20)
		b := sortedInt64(rng, rng.Intn(300), 1<<20)
		var got server.MergeResponse
		if code := post(t, c.ts.URL, "/v1/merge", server.MergeRequest{A: a, B: b}, &got); code != http.StatusOK {
			t.Fatalf("trial %d: status %d", trial, code)
		}
		if !verify.Equal(got.Result, verify.ReferenceMerge(a, b)) {
			t.Fatalf("trial %d: wrong merge through router", trial)
		}
	}
	snap := c.rt.Snapshot()
	if snap.Routing.Routed == 0 {
		t.Fatal("no requests recorded as routed whole")
	}
	if snap.Routing.Scattered != 0 {
		t.Fatalf("small requests scattered: %d", snap.Routing.Scattered)
	}
}

// TestRouterScatterByteIdentical is the differential acceptance check:
// the scattered response body must be byte-for-byte the single-node
// response body, duplicate-heavy inputs included.
func TestRouterScatterByteIdentical(t *testing.T) {
	c := newTestCluster(t, 3, func(cfg *Config) { cfg.ScatterThreshold = 64 }, nil)
	rng := rand.New(rand.NewSource(2))
	for trial, bound := range []int64{8, 1 << 20, 3} {
		a := sortedInt64(rng, 2000+rng.Intn(2000), bound)
		b := sortedInt64(rng, 2000+rng.Intn(2000), bound)
		body, _ := json.Marshal(server.MergeRequest{A: a, B: b})
		rresp, rbody := postRaw(t, c.ts.URL, "/v1/merge", body)
		nresp, nbody := postRaw(t, c.nodeURLs[0], "/v1/merge", body)
		if rresp.StatusCode != http.StatusOK || nresp.StatusCode != http.StatusOK {
			t.Fatalf("trial %d: router %d node %d", trial, rresp.StatusCode, nresp.StatusCode)
		}
		if !bytes.Equal(rbody, nbody) {
			t.Fatalf("trial %d (bound %d): scattered response differs from single node", trial, bound)
		}
	}
	snap := c.rt.Snapshot()
	if snap.Routing.Scattered == 0 {
		t.Fatal("no scatters recorded — threshold not applied?")
	}
	if len(snap.Routing.Fanout) == 0 {
		t.Fatal("empty fan-out distribution")
	}
}

func TestRouterScatterUnsortedRejected(t *testing.T) {
	c := newTestCluster(t, 2, func(cfg *Config) { cfg.ScatterThreshold = 8 }, nil)
	req := server.MergeRequest{A: []int64{5, 1, 9, 2, 8, 3}, B: seq(0, 10)}
	body, _ := json.Marshal(req)
	resp, buf := postRaw(t, c.ts.URL, "/v1/merge", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var er server.ErrorResponse
	if err := json.Unmarshal(buf, &er); err != nil || !strings.Contains(er.Error, "not sorted") {
		t.Fatalf("error body %q (%v)", buf, err)
	}
}

func TestRouterForwardsAllEndpoints(t *testing.T) {
	c := newTestCluster(t, 2, nil, nil)
	var sr server.SortResponse
	if code := post(t, c.ts.URL, "/v1/sort", server.SortRequest{Data: []int64{5, 1, 4, 1, 3}}, &sr); code != http.StatusOK {
		t.Fatalf("sort status %d", code)
	}
	if !verify.Equal(sr.Result, []int64{1, 1, 3, 4, 5}) {
		t.Fatalf("sort result %v", sr.Result)
	}
	var mk server.MergeKResponse
	if code := post(t, c.ts.URL, "/v1/mergek", server.MergeKRequest{Lists: [][]int64{{1, 4}, {2, 5}, {3}}}, &mk); code != http.StatusOK {
		t.Fatalf("mergek status %d", code)
	}
	if !verify.Equal(mk.Result, []int64{1, 2, 3, 4, 5}) {
		t.Fatalf("mergek result %v", mk.Result)
	}
	var so server.SetOpsResponse
	if code := post(t, c.ts.URL, "/v1/setops", server.SetOpsRequest{Op: "intersect", A: []int64{1, 2, 3}, B: []int64{2, 3, 4}}, &so); code != http.StatusOK {
		t.Fatalf("setops status %d", code)
	}
	if !verify.Equal(so.Result, []int64{2, 3}) {
		t.Fatalf("setops result %v", so.Result)
	}
	var sel server.SelectResponse
	if code := post(t, c.ts.URL, "/v1/select", server.SelectRequest{A: []int64{1, 3}, B: []int64{2, 4}, K: 3}, &sel); code != http.StatusOK {
		t.Fatalf("select status %d", code)
	}
	if sel.Kth == nil || *sel.Kth != 3 {
		t.Fatalf("select result %+v", sel)
	}
	// Client errors pass through untouched (wrong op → node's 400).
	if code := post(t, c.ts.URL, "/v1/setops", server.SetOpsRequest{Op: "bogus"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bogus op status %d, want 400", code)
	}
}

// fakeBackend is a hand-rolled backend for failure-mode tests: a
// scripted /healthz document and a controllable /v1/merge.
func fakeBackend(t *testing.T, health func() server.Health, merge http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(health())
	})
	if merge != nil {
		mux.HandleFunc("POST /v1/merge", merge)
	}
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func healthyDoc() server.Health {
	return server.Health{Status: "ok", Role: "node", Workers: 2, QueueCapacity: 256}
}

func mergeOK(w http.ResponseWriter, r *http.Request) {
	var req server.MergeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(server.MergeResponse{Result: verify.ReferenceMerge(req.A, req.B)})
}

// TestRouterFailover: the rendezvous pick can land on a broken backend;
// the router must retry the other one and still answer 200.
func TestRouterFailover(t *testing.T) {
	broken := fakeBackend(t, healthyDoc, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"injected"}`, http.StatusInternalServerError)
	})
	good := fakeBackend(t, healthyDoc, mergeOK)
	rt, err := New(Config{
		Backends:       []string{broken.URL, good.URL},
		HealthInterval: 20 * time.Millisecond,
		Resilience:     resilienceFast(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)

	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		a := sortedInt64(rng, 50, 1<<20)
		b := sortedInt64(rng, 50, 1<<20)
		var got server.MergeResponse
		if code := post(t, ts.URL, "/v1/merge", server.MergeRequest{A: a, B: b}, &got); code != http.StatusOK {
			t.Fatalf("trial %d: status %d (failover did not rescue)", trial, code)
		}
		if !verify.Equal(got.Result, verify.ReferenceMerge(a, b)) {
			t.Fatalf("trial %d: wrong merge", trial)
		}
	}
}

// TestRouterBrownoutDiversion: a backend that reports shedding on
// /healthz stops receiving traffic while a healthy peer exists — no
// errors needed.
func TestRouterBrownoutDiversion(t *testing.T) {
	var shedHits, goodHits atomic.Int64
	shedding := fakeBackend(t,
		func() server.Health { h := healthyDoc(); h.Status = "shedding"; return h },
		func(w http.ResponseWriter, r *http.Request) { shedHits.Add(1); mergeOK(w, r) })
	good := fakeBackend(t, healthyDoc, func(w http.ResponseWriter, r *http.Request) { goodHits.Add(1); mergeOK(w, r) })
	rt, err := New(Config{
		Backends:       []string{shedding.URL, good.URL},
		HealthInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)

	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		a := sortedInt64(rng, 40, 1<<20)
		b := sortedInt64(rng, 40, 1<<20)
		if code := post(t, ts.URL, "/v1/merge", server.MergeRequest{A: a, B: b}, nil); code != http.StatusOK {
			t.Fatalf("trial %d: status %d", trial, code)
		}
	}
	if n := shedHits.Load(); n != 0 {
		t.Fatalf("shedding backend served %d requests; diversion failed", n)
	}
	if goodHits.Load() == 0 {
		t.Fatal("healthy backend served nothing")
	}
}

// TestRouterNoBackends: every backend down → 503 from the router, not a
// hang or a 502 storm.
func TestRouterAllBackendsDown(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gone", http.StatusNotFound)
	}))
	dead.Close() // listener gone: polls and requests both fail
	rt, err := New(Config{
		Backends:       []string{dead.URL},
		HealthInterval: 10 * time.Millisecond,
		Resilience:     resilienceFast(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)

	code := post(t, ts.URL, "/v1/merge", server.MergeRequest{A: seq(0, 4), B: seq(0, 4)}, nil)
	if code != http.StatusBadGateway && code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 502/503", code)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz status %d, want 503", resp.StatusCode)
	}
	var h RouterHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "down" || h.Role != "router" {
		t.Fatalf("health = %+v", h)
	}
}

func TestRouterObservabilitySurfaces(t *testing.T) {
	c := newTestCluster(t, 2, func(cfg *Config) { cfg.ScatterThreshold = 64 }, nil)
	rng := rand.New(rand.NewSource(5))
	a := sortedInt64(rng, 600, 1<<20)
	b := sortedInt64(rng, 600, 1<<20)
	body, _ := json.Marshal(server.MergeRequest{A: a, B: b})
	resp, _ := postRaw(t, c.ts.URL, "/v1/merge", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("merge status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("no X-Request-Id echoed")
	}
	st := resp.Header.Get("Server-Timing")
	for _, stage := range []string{StageRoute, StageScatter, StageGather} {
		if !strings.Contains(st, stage+";dur=") {
			t.Fatalf("Server-Timing %q missing stage %q", st, stage)
		}
	}

	// /healthz: role router, both backends counted healthy.
	hresp, err := http.Get(c.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h RouterHealth
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Role != "router" || h.Status != "ok" || h.Backends != 2 || h.BackendStates["healthy"] != 2 {
		t.Fatalf("router health = %+v", h)
	}

	// /metrics: parses, has per-backend rows and the scatter counters.
	mresp, err := http.Get(c.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Backends) != 2 {
		t.Fatalf("backend rows = %d", len(snap.Backends))
	}
	if snap.Routing.Scattered == 0 {
		t.Fatal("scatter not counted")
	}
	for _, b := range snap.Backends {
		if b.State != "healthy" {
			t.Fatalf("backend %s state %q", b.URL, b.State)
		}
	}

	// /metrics/prom: exposition content type and the router families.
	presp, err := http.Get(c.ts.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	if ct := presp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("prom content type %q", ct)
	}
	pbody, _ := io.ReadAll(presp.Body)
	for _, want := range []string{
		"mergerouter_scattered_total", "mergerouter_backend_state",
		"mergerouter_scatter_fanout_total", "mergerouter_stage_latency_seconds",
		"mergerouter_requests_total",
	} {
		if !strings.Contains(string(pbody), want) {
			t.Fatalf("prom exposition missing %q", want)
		}
	}
}

// TestRouterGatherStrategy pins the -gather-strategy knob: a forced
// co-rank gather still returns byte-identical responses, and the gather
// counters land on both the /metrics JSON and the prom exposition.
func TestRouterGatherStrategy(t *testing.T) {
	c := newTestCluster(t, 3, func(cfg *Config) {
		cfg.ScatterThreshold = 64
		cfg.GatherStrategy = kway.StrategyCoRank
	}, nil)
	rng := rand.New(rand.NewSource(9))
	a := sortedInt64(rng, 3000, 32) // duplicate-heavy: ties cross windows
	b := sortedInt64(rng, 3000, 32)
	body, _ := json.Marshal(server.MergeRequest{A: a, B: b})
	rresp, rbody := postRaw(t, c.ts.URL, "/v1/merge", body)
	nresp, nbody := postRaw(t, c.nodeURLs[0], "/v1/merge", body)
	if rresp.StatusCode != http.StatusOK || nresp.StatusCode != http.StatusOK {
		t.Fatalf("router %d node %d", rresp.StatusCode, nresp.StatusCode)
	}
	if !bytes.Equal(rbody, nbody) {
		t.Fatal("co-rank gather response differs from single node")
	}

	snap := c.rt.Snapshot()
	if snap.Routing.GatherStrategy != "corank" {
		t.Fatalf("gather strategy %q, want corank", snap.Routing.GatherStrategy)
	}
	if snap.Routing.GatherMerges == 0 {
		t.Fatal("no gather merges counted")
	}
	if snap.Routing.GatherImbalanceMax == 0 || snap.Routing.GatherImbalanceMax > 1.5 {
		t.Fatalf("gather imbalance_max %.3f, want ~1.0", snap.Routing.GatherImbalanceMax)
	}

	presp, err := http.Get(c.ts.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	pbody, _ := io.ReadAll(presp.Body)
	for _, want := range []string{
		`mergerouter_gather_strategy{strategy="corank"} 1`,
		"mergerouter_gather_merges_total",
		"mergerouter_gather_imbalance_max 1",
	} {
		if !strings.Contains(string(pbody), want) {
			t.Fatalf("prom exposition missing %q", want)
		}
	}
}

// resilienceFast returns a resilience config tuned so failure tests
// don't sit out full backoffs.
func resilienceFast() resilience.Config {
	return resilience.Config{
		MaxRetries: 1,
		Backoff:    resilience.BackoffConfig{Base: time.Millisecond, Max: 5 * time.Millisecond},
	}
}
