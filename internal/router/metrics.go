package router

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mergepath/internal/kway"
	"mergepath/internal/promtext"
	"mergepath/internal/server"
	"mergepath/internal/stats"
	"mergepath/internal/wire"
)

// metrics is the router's observability registry, mirroring the node
// daemon's shape: fixed per-endpoint key set, per-stage histograms,
// plus the routing-specific counters (scatter fan-out, reroutes).
type metrics struct {
	start     time.Time
	endpoints map[string]*endpointMetrics
	stages    map[string]*stats.Histogram

	routed     atomic.Uint64 // requests forwarded whole to one backend
	scattered  atomic.Uint64 // merges split across backends
	rerouted   atomic.Uint64 // failovers: retries against a different backend
	failed     atomic.Uint64 // requests the router answered 502/503 for
	binaryHops atomic.Uint64 // scatter sub-requests encoded as binary frames

	gatherStrategy string        // configured gather strategy knob (set once at New)
	gatherMerges   atomic.Uint64 // gather recombinations executed

	mu             sync.Mutex
	fanout         map[int]uint64 // scatter requests by window count
	gatherImbMax   float64        // worst co-rank gather window imbalance seen
	gatherImbSum   float64        // running sum of gather imbalance ratios
	gatherImbCount uint64         // co-rank gathers contributing to gatherImbSum
}

type endpointMetrics struct {
	count   atomic.Uint64
	err4xx  atomic.Uint64
	err5xx  atomic.Uint64
	latency stats.Histogram // successful requests only
}

// endpointNames is the fixed metric key set; one entry per /v1 route.
var endpointNames = []string{"merge", "sort", "mergek", "setops", "select"}

func newMetrics() *metrics {
	m := &metrics{
		start:     time.Now(),
		endpoints: make(map[string]*endpointMetrics, len(endpointNames)),
		stages:    make(map[string]*stats.Histogram, len(stageNames)),
		fanout:    make(map[int]uint64),
	}
	for _, name := range endpointNames {
		m.endpoints[name] = &endpointMetrics{}
	}
	for _, name := range stageNames {
		m.stages[name] = &stats.Histogram{}
	}
	return m
}

// observe records one finished request against an endpoint. Only 2xx
// requests feed the latency histogram (same policy as the node daemon).
func (m *metrics) observe(endpoint string, status int, d time.Duration) {
	e, ok := m.endpoints[endpoint]
	if !ok {
		return
	}
	e.count.Add(1)
	switch {
	case status >= 500:
		e.err5xx.Add(1)
	case status >= 400:
		e.err4xx.Add(1)
	default:
		e.latency.Observe(d)
	}
}

// observeSpans folds one request's spans into the per-stage histograms.
func (m *metrics) observeSpans(spans []server.Span) {
	for _, sp := range spans {
		if h, ok := m.stages[sp.Stage]; ok {
			h.Observe(sp.Dur)
		}
	}
}

// noteScatter records one completed scatter: its fan-out (window count)
// and — via the gather stage histogram fed by observeSpans — its gather
// latency.
func (m *metrics) noteScatter(parts int, _ time.Duration) {
	m.scattered.Add(1)
	m.mu.Lock()
	m.fanout[parts]++
	m.mu.Unlock()
}

// noteGather records one gather recombination: the count plus — when
// the co-rank strategy ran and reported per-window loads — the window
// imbalance, the k-way analogue of the node's round-balance metrics.
func (m *metrics) noteGather(st kway.Stats) {
	m.gatherMerges.Add(1)
	if len(st.PerWorker) == 0 || st.Imbalance <= 0 {
		return
	}
	m.mu.Lock()
	if st.Imbalance > m.gatherImbMax {
		m.gatherImbMax = st.Imbalance
	}
	m.gatherImbSum += st.Imbalance
	m.gatherImbCount++
	m.mu.Unlock()
}

// BackendSnapshot is one backend's row in the router's /metrics JSON:
// the poller's view (state, load signals) plus the traffic this router
// sent it and the state of the resilient client's circuit breakers.
type BackendSnapshot struct {
	// URL is the backend's base URL.
	URL string `json:"url"`
	// State is the routing tier the poller currently assigns: healthy,
	// degraded, shedding, draining or down.
	State string `json:"state"`
	// BacklogElements is the backend's last-reported element backlog —
	// the least-loaded routing signal.
	BacklogElements int64 `json:"backlog_elements"`
	// QueueDepth is the backend's last-reported admission-queue depth.
	QueueDepth int `json:"queue_depth"`
	// DrainElemsPerSec is the backend's last-reported EWMA throughput.
	DrainElemsPerSec float64 `json:"drain_elems_per_sec"`
	// Requests counts whole- and sub-requests this router sent it.
	Requests uint64 `json:"requests"`
	// Errors counts transport failures and retryable-status responses
	// (429/5xx) among those requests.
	Errors uint64 `json:"errors"`
	// Breakers is the per-endpoint circuit-breaker state of this
	// backend's resilience client (path → closed/open/half-open).
	Breakers map[string]string `json:"breakers,omitempty"`
}

// RoutingSnapshot aggregates the router's own decisions.
type RoutingSnapshot struct {
	// Routed counts requests forwarded whole to a single backend.
	Routed uint64 `json:"routed"`
	// Scattered counts merges split across backends with the
	// co-ranking cut.
	Scattered uint64 `json:"scattered"`
	// Rerouted counts failovers — attempts retried against a different
	// backend after the first pick failed.
	Rerouted uint64 `json:"rerouted"`
	// Failed counts requests the router itself answered 502/503 for
	// because no backend produced a usable response.
	Failed uint64 `json:"failed"`
	// BinaryHops counts scatter sub-requests sent as binary frames to
	// backends advertising the wire format — on an all-current fleet it
	// tracks the scatter volume; a persistent gap means some backends
	// are still being fed JSON (mixed-version degrade).
	BinaryHops uint64 `json:"binary_hops"`
	// Fanout is the scatter fan-out distribution: window count →
	// number of scattered requests that used it.
	Fanout map[int]uint64 `json:"fanout,omitempty"`
	// GatherStrategy is the configured -gather-strategy knob; "auto"
	// resolves per gather by partial count and size (docs/KWAY.md).
	GatherStrategy string `json:"gather_strategy"`
	// GatherMerges counts gather recombinations of scatter partials.
	GatherMerges uint64 `json:"gather_merges"`
	// GatherImbalanceMax is the worst co-rank gather window imbalance
	// ratio since start (~1.0 by construction; 0 until a co-rank
	// gather runs).
	GatherImbalanceMax float64 `json:"gather_imbalance_max"`
	// GatherImbalanceMean is the mean co-rank gather window imbalance.
	GatherImbalanceMean float64 `json:"gather_imbalance_mean"`
}

// MetricsSnapshot is the router's /metrics JSON document; the same
// numbers back /metrics/prom.
type MetricsSnapshot struct {
	// UptimeSeconds is seconds since the router started.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Routing aggregates routing decisions and failovers.
	Routing RoutingSnapshot `json:"routing"`
	// Backends has one row per configured backend, poll state included.
	Backends []BackendSnapshot `json:"backends"`
	// Endpoints is per-/v1-route counters and latency, keyed like the
	// node daemon's endpoints map.
	Endpoints map[string]server.EndpointSnapshot `json:"endpoints"`
	// Stages is per-stage span latency (route/forward/scatter/gather
	// plus decode/write), all wall time.
	Stages map[string]stats.HistogramSnapshot `json:"stages"`
}

func (m *metrics) snapshot(reg *registry) MetricsSnapshot {
	s := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Routing: RoutingSnapshot{
			Routed:         m.routed.Load(),
			Scattered:      m.scattered.Load(),
			Rerouted:       m.rerouted.Load(),
			Failed:         m.failed.Load(),
			BinaryHops:     m.binaryHops.Load(),
			GatherStrategy: m.gatherStrategy,
			GatherMerges:   m.gatherMerges.Load(),
		},
		Endpoints: make(map[string]server.EndpointSnapshot, len(m.endpoints)),
		Stages:    make(map[string]stats.HistogramSnapshot, len(m.stages)),
	}
	if s.Routing.GatherStrategy == "" {
		s.Routing.GatherStrategy = kway.StrategyAuto.String()
	}
	m.mu.Lock()
	if len(m.fanout) > 0 {
		s.Routing.Fanout = make(map[int]uint64, len(m.fanout))
		for k, v := range m.fanout {
			s.Routing.Fanout[k] = v
		}
	}
	s.Routing.GatherImbalanceMax = m.gatherImbMax
	if m.gatherImbCount > 0 {
		s.Routing.GatherImbalanceMean = m.gatherImbSum / float64(m.gatherImbCount)
	}
	m.mu.Unlock()
	for name, e := range m.endpoints {
		s.Endpoints[name] = server.EndpointSnapshot{
			Count:   e.count.Load(),
			Err4xx:  e.err4xx.Load(),
			Err5xx:  e.err5xx.Load(),
			Latency: e.latency.Snapshot(),
		}
	}
	for name, h := range m.stages {
		s.Stages[name] = h.Snapshot()
	}
	for _, b := range reg.backends {
		b.mu.Lock()
		bs := BackendSnapshot{
			URL:        b.url,
			State:      stateName(b.tierLocked()),
			QueueDepth: b.health.QueueDepth,
		}
		if b.health.Overload != nil {
			bs.BacklogElements = b.health.Overload.BacklogElements
			bs.DrainElemsPerSec = b.health.Overload.DrainElemsPerSec
		}
		b.mu.Unlock()
		bs.Requests = b.requests.Load()
		bs.Errors = b.errors.Load()
		if states := b.client.BreakerStates(); len(states) > 0 {
			bs.Breakers = states
		}
		s.Backends = append(s.Backends, bs)
	}
	return s
}

// RouterHealth is the router's GET /healthz document: its own liveness
// plus the fleet view, so one poll answers "can this tier take
// traffic" and "how much of the fleet is behind it".
type RouterHealth struct {
	// Status is "ok" while at least one backend is routable outside the
	// down tier, "degraded" when only shedding/draining backends
	// remain, and "down" (with a 503) when every backend is down.
	Status string `json:"status"`
	// Role is "router" (the node daemon reports "node").
	Role string `json:"role"`
	// Backends is the configured backend count.
	Backends int `json:"backends"`
	// BackendStates counts backends by routing tier name.
	BackendStates map[string]int `json:"backend_states"`
	// Formats lists the request body media types this router accepts on
	// /v1/* (same contract as the node daemon's /healthz formats field).
	Formats []string `json:"formats,omitempty"`
	// WireBackends counts backends whose last poll advertised the
	// binary frame format — fleet operators watch this converge to
	// Backends during a rollout.
	WireBackends int `json:"wire_backends"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := RouterHealth{
		Role:          "router",
		Backends:      len(rt.reg.backends),
		BackendStates: make(map[string]int),
		Formats:       []string{"application/json", wire.ContentType},
	}
	best := tierDown
	for _, b := range rt.reg.backends {
		t := b.tier()
		h.BackendStates[stateName(t)]++
		if t < best {
			best = t
		}
		if b.speaksWire() {
			h.WireBackends++
		}
	}
	status := http.StatusOK
	switch {
	case best <= tierDegraded:
		h.Status = "ok"
	case best < tierDown:
		h.Status = "degraded"
	default:
		h.Status = "down"
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(h)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rt.m.snapshot(rt.reg))
}

// renderProm renders the router's Prometheus exposition from a
// snapshot, in the node daemon's dialect with a mergerouter_ prefix.
func renderProm(snap MetricsSnapshot) string {
	w := promtext.NewWriter()

	w.Gauge("mergerouter_uptime_seconds", "", "Seconds since the router started.", snap.UptimeSeconds)
	w.Counter("mergerouter_routed_total", "", "Requests forwarded whole to a single backend.", float64(snap.Routing.Routed))
	w.Counter("mergerouter_scattered_total", "", "Merges split across backends with the co-ranking cut.", float64(snap.Routing.Scattered))
	w.Counter("mergerouter_rerouted_total", "", "Failover attempts retried against a different backend.", float64(snap.Routing.Rerouted))
	w.Counter("mergerouter_failed_total", "", "Requests answered 502/503 by the router itself.", float64(snap.Routing.Failed))
	w.Counter("mergerouter_binary_hops_total", "", "Scatter sub-requests encoded as binary frames (wire-speaking backends).", float64(snap.Routing.BinaryHops))

	// Gather recombination: strategy knob (one-hot), count and co-rank
	// window balance (docs/KWAY.md).
	for _, st := range []string{"auto", "heap", "tree", "corank"} {
		v := 0.0
		if snap.Routing.GatherStrategy == st {
			v = 1
		}
		w.Gauge("mergerouter_gather_strategy", `strategy="`+st+`"`,
			"Configured gather merge strategy, one-hot: 1 on the series matching the knob.", v)
	}
	w.Counter("mergerouter_gather_merges_total", "", "Gather recombinations of scatter partials.", float64(snap.Routing.GatherMerges))
	w.Gauge("mergerouter_gather_imbalance_max", "", "Worst co-rank gather window load-imbalance ratio since start (~1.0 by construction).", snap.Routing.GatherImbalanceMax)
	w.Gauge("mergerouter_gather_imbalance_mean", "", "Mean co-rank gather window load-imbalance ratio since start.", snap.Routing.GatherImbalanceMean)

	// Scatter fan-out distribution, one labelled series per observed
	// window count.
	fanouts := make([]int, 0, len(snap.Routing.Fanout))
	for k := range snap.Routing.Fanout {
		fanouts = append(fanouts, k)
	}
	sort.Ints(fanouts)
	for _, k := range fanouts {
		w.Counter("mergerouter_scatter_fanout_total", `windows="`+strconv.Itoa(k)+`"`,
			"Scattered requests by window count.", float64(snap.Routing.Fanout[k]))
	}

	// Fleet view: one state gauge (one-hot by tier) and the polled load
	// signals per backend.
	for _, b := range snap.Backends {
		lbl := `backend="` + b.URL + `"`
		for t := tierHealthy; t <= tierDown; t++ {
			v := 0.0
			if stateName(t) == b.State {
				v = 1
			}
			w.Gauge("mergerouter_backend_state", lbl+`,state="`+stateName(t)+`"`,
				"Backend routing tier, one-hot: 1 on the series matching the current state.", v)
		}
		w.Gauge("mergerouter_backend_backlog_elements", lbl, "Backend's last-reported element backlog.", float64(b.BacklogElements))
		w.Gauge("mergerouter_backend_queue_depth", lbl, "Backend's last-reported admission-queue depth.", float64(b.QueueDepth))
		w.Gauge("mergerouter_backend_drain_elements_per_second", lbl, "Backend's last-reported EWMA element throughput.", b.DrainElemsPerSec)
		w.Counter("mergerouter_backend_requests_total", lbl, "Whole- and sub-requests this router sent the backend.", float64(b.Requests))
		w.Counter("mergerouter_backend_errors_total", lbl, "Transport failures and retryable-status responses from the backend.", float64(b.Errors))
		open := 0
		for _, st := range b.Breakers {
			if st != "closed" {
				open++
			}
		}
		w.Gauge("mergerouter_backend_breakers_open", lbl, "Backend circuit breakers currently open or half-open.", float64(open))
	}

	// Per-endpoint request counters and latency summaries.
	names := make([]string, 0, len(snap.Endpoints))
	for name := range snap.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := snap.Endpoints[name]
		lbl := `endpoint="` + name + `"`
		w.Counter("mergerouter_requests_total", lbl, "Requests finished, by endpoint (all statuses).", float64(e.Count))
		w.Counter("mergerouter_request_errors_total", lbl+`,class="4xx"`, "Error responses, by endpoint and status class.", float64(e.Err4xx))
		w.Counter("mergerouter_request_errors_total", lbl+`,class="5xx"`, "Error responses, by endpoint and status class.", float64(e.Err5xx))
		w.LatencySummary("mergerouter_request_latency_seconds", lbl,
			"Latency of successful requests, by endpoint.", e.Latency)
	}

	// Per-stage span latency summaries, lifecycle order.
	for _, name := range stageNames {
		h, ok := snap.Stages[name]
		if !ok {
			continue
		}
		w.LatencySummary("mergerouter_stage_latency_seconds", `stage="`+name+`"`,
			"Router lifecycle stage timings (all wall time; gather is the k-way recombination).", h)
	}
	return w.String()
}

func (rt *Router) handleMetricsProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", promtext.ContentType)
	_, _ = w.Write([]byte(renderProm(rt.m.snapshot(rt.reg))))
}
