package jobs

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"os"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mergepath/internal/fault"
)

// encode packs values as the wire format: 8-byte little-endian records.
func encode(vals []int64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
	}
	return buf
}

func decode(b []byte) []int64 {
	vals := make([]int64, len(b)/8)
	for i := range vals {
		vals[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return vals
}

func randomVals(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63() - rng.Int63()
	}
	return vals
}

func newManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.GCInterval == 0 {
		cfg.GCInterval = time.Hour // tests drive Sweep by hand
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// waitTerminal polls until the job leaves the live states, asserting the
// published progress never decreases along the way.
func waitTerminal(t *testing.T, m *Manager, id string) View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	last := -1.0
	for {
		v, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished while live", id)
		}
		if v.Progress < last {
			t.Fatalf("progress went backwards: %g -> %g", last, v.Progress)
		}
		last = v.Progress
		if v.State.terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, v.State)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDatasetLifecycle(t *testing.T) {
	m := newManager(t, Config{MaxDatasetBytes: 1 << 20})
	vals := randomVals(100, 1)
	ds, err := m.CreateDataset(bytes.NewReader(encode(vals)))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Records != 100 || ds.Bytes != 800 {
		t.Fatalf("dataset geometry: %+v", ds)
	}
	if got, ok := m.GetDataset(ds.ID); !ok || got.ID != ds.ID {
		t.Fatal("GetDataset")
	}
	if _, err := m.CreateDataset(bytes.NewReader(make([]byte, 13))); !errors.Is(err, ErrBadLength) {
		t.Fatalf("ragged upload: %v", err)
	}
	if _, err := m.CreateDataset(bytes.NewReader(make([]byte, 1<<21))); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized upload: %v", err)
	}
	if err := m.DeleteDataset(ds.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.DeleteDataset(ds.ID); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("double delete: %v", err)
	}
	// Rejected uploads must not leave files behind.
	ents, err := os.ReadDir(m.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill dir not empty after deletes: %d entries", len(ents))
	}
}

func TestSortJobEndToEnd(t *testing.T) {
	var enq, done atomic.Int64
	var drained atomic.Int64
	m := newManager(t, Config{
		MemoryRecords: 64,
		Workers:       2,
		Hooks: Hooks{
			Enqueue: func(n int) { enq.Add(int64(n)) },
			Done:    func(n int) { done.Add(int64(n)) },
			Drained: func(n int, _ time.Duration) { drained.Add(int64(n)) },
		},
	})
	const n = 5000 // ~78x the memory budget
	vals := randomVals(n, 2)
	ds, err := m.CreateDataset(bytes.NewReader(encode(vals)))
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Submit("sortfile", ds.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != Pending || v.Progress != 0 {
		t.Fatalf("fresh job: %+v", v)
	}
	v = waitTerminal(t, m, v.ID)
	if v.State != Done {
		t.Fatalf("state %s, error %q", v.State, v.Error)
	}
	if v.Progress != 1 {
		t.Fatalf("done progress %g", v.Progress)
	}
	if v.Stats == nil || v.Stats.Runs == 0 || v.Stats.PeakBufferRecords > 64 {
		t.Fatalf("stats: %+v", v.Stats)
	}
	names := map[string]bool{}
	for _, s := range v.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"queue_wait", "copy_in", "run_formation", "merge", "total"} {
		if !names[want] {
			t.Fatalf("missing span %q in %+v", want, v.Spans)
		}
	}
	rc, size, err := m.OpenResult(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) != size || size != 8*n {
		t.Fatalf("result size %d (reported %d)", len(raw), size)
	}
	want := slices.Clone(vals)
	slices.Sort(want)
	if !slices.Equal(decode(raw), want) {
		t.Fatal("result is not the sorted dataset")
	}
	if enq.Load() != int64(n) || done.Load() != int64(n) || drained.Load() != int64(n) {
		t.Fatalf("hook accounting: enq=%d done=%d drained=%d", enq.Load(), done.Load(), drained.Load())
	}
	s := m.Snapshot()
	if s.Submitted != 1 || s.Completed != 1 || s.Running != 0 || s.Pending != 0 {
		t.Fatalf("snapshot: %+v", s)
	}
	if s.BlockReads == 0 || s.BlockWrites == 0 {
		t.Fatalf("no I/O accounted: %+v", s)
	}
}

func TestSubmitErrors(t *testing.T) {
	inj, err := fault.Parse("job:latency=300ms@1", 1)
	if err != nil {
		t.Fatal(err)
	}
	m := newManager(t, Config{MemoryRecords: 64, MaxConcurrent: 1, MaxQueued: 1, Fault: inj})
	if _, err := m.Submit("sortfile", "ds-nope"); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("unknown dataset: %v", err)
	}
	ds, err := m.CreateDataset(bytes.NewReader(encode(randomVals(64, 3))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("shred", ds.ID); !errors.Is(err, ErrBadType) {
		t.Fatalf("bad type: %v", err)
	}
	// Slot 1 runs (sleeping in the injector), slot 2 queues, slot 3 sheds.
	j1, err := m.Submit("sortfile", ds.ID)
	if err != nil {
		t.Fatal(err)
	}
	for { // wait until the worker owns j1 so j2 really queues
		if v, _ := m.Get(j1.ID); v.State == Running {
			break
		}
		time.Sleep(time.Millisecond)
	}
	j2, err := m.Submit("sortfile", ds.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("sortfile", ds.ID); !errors.Is(err, ErrBusy) {
		t.Fatalf("full queue: %v", err)
	}
	if m.Snapshot().ShedBusy != 1 {
		t.Fatal("shed not counted")
	}
	inj.SetEnabled(false)
	waitTerminal(t, m, j1.ID)
	waitTerminal(t, m, j2.ID)
}

func TestCancel(t *testing.T) {
	inj, err := fault.Parse("sortfile:latency=300ms@1", 4)
	if err != nil {
		t.Fatal(err)
	}
	var enq, done atomic.Int64
	m := newManager(t, Config{
		MemoryRecords: 64, MaxConcurrent: 1, MaxQueued: 4, Fault: inj,
		Hooks: Hooks{
			Enqueue: func(n int) { enq.Add(int64(n)) },
			Done:    func(n int) { done.Add(int64(n)) },
		},
	})
	ds, err := m.CreateDataset(bytes.NewReader(encode(randomVals(600, 5))))
	if err != nil {
		t.Fatal(err)
	}
	running, _ := m.Submit("sortfile", ds.ID)
	queued, _ := m.Submit("sortfile", ds.ID)

	// Canceling the queued job finalizes it immediately, before a worker
	// ever touches it.
	if err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Get(queued.ID); v.State != Canceled {
		t.Fatalf("queued job state %s", v.State)
	}
	if err := m.Cancel(queued.ID); err != nil {
		t.Fatalf("cancel canceled should be a no-op: %v", err)
	}

	// Cancel the running job mid-sort; it must land in Canceled with its
	// result and scratch files removed.
	if err := m.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, m, running.ID)
	if v.State != Canceled {
		t.Fatalf("running job state %s, error %q", v.State, v.Error)
	}
	if _, _, err := m.OpenResult(running.ID); !errors.Is(err, ErrNotDone) {
		t.Fatalf("result of canceled job: %v", err)
	}
	if err := m.Cancel(running.ID); err != nil {
		t.Fatalf("cancel after cancel: %v", err)
	}
	if err := m.Cancel("job-nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job: %v", err)
	}
	// Only the dataset file may remain in the spill dir.
	ents, err := os.ReadDir(m.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasPrefix(e.Name(), "ds-") {
			t.Fatalf("leaked spill file %q", e.Name())
		}
	}
	if enq.Load() != done.Load() {
		t.Fatalf("hook accounting unbalanced: enq=%d done=%d", enq.Load(), done.Load())
	}
	// Canceling a done job is rejected.
	inj.SetEnabled(false)
	fin, _ := m.Submit("sortfile", ds.ID)
	if v := waitTerminal(t, m, fin.ID); v.State != Done {
		t.Fatalf("state %s", v.State)
	}
	if err := m.Cancel(fin.ID); !errors.Is(err, ErrTerminal) {
		t.Fatalf("cancel done job: %v", err)
	}
}

func TestTTLGarbageCollection(t *testing.T) {
	m := newManager(t, Config{MemoryRecords: 64, TTL: time.Minute})
	ds, err := m.CreateDataset(bytes.NewReader(encode(randomVals(200, 6))))
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Submit("sortfile", ds.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v = waitTerminal(t, m, v.ID); v.State != Done {
		t.Fatalf("state %s", v.State)
	}
	// Within TTL nothing moves.
	if n := m.Sweep(time.Now()); n != 0 {
		t.Fatalf("premature sweep moved %d", n)
	}
	// Past TTL: the job expires (files gone, record kept), the dataset
	// is deleted outright.
	if n := m.Sweep(time.Now().Add(2 * time.Minute)); n != 2 {
		t.Fatalf("first sweep moved %d, want 2", n)
	}
	got, ok := m.Get(v.ID)
	if !ok || got.State != Expired {
		t.Fatalf("after expiry: ok=%v state=%s", ok, got.State)
	}
	if got.Progress != 1 {
		t.Fatalf("expired done job progress %g", got.Progress)
	}
	if _, _, err := m.OpenResult(v.ID); !errors.Is(err, ErrNotDone) {
		t.Fatalf("expired result: %v", err)
	}
	if _, ok := m.GetDataset(ds.ID); ok {
		t.Fatal("dataset survived expiry")
	}
	ents, err := os.ReadDir(m.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("files survive expiry: %v", ents)
	}
	// A second TTL later the record itself is dropped.
	if n := m.Sweep(time.Now().Add(4 * time.Minute)); n != 1 {
		t.Fatalf("second sweep moved %d, want 1", n)
	}
	if _, ok := m.Get(v.ID); ok {
		t.Fatal("expired record survived the second sweep")
	}
	s := m.Snapshot()
	if s.Expired != 1 || s.GCSweeps != 3 || s.Tracked != 0 || s.Datasets != 0 {
		t.Fatalf("snapshot: %+v", s)
	}
}

// TestJobsSoak hammers one manager with concurrent submits, cancels and
// GC sweeps under fault injection (errors, panics, latency), then closes
// it and asserts nothing leaked: hook accounting balances, every job is
// terminal, no goroutines or spill files survive. Run with -race via
// `make jobs-soak`; MERGEPATH_JOBS_SOAK=1 multiplies the iteration count.
func TestJobsSoak(t *testing.T) {
	iters := 40
	if os.Getenv("MERGEPATH_JOBS_SOAK") != "" {
		iters = 600
	}
	baseline := runtime.NumGoroutine()

	inj, err := fault.Parse("job:error=0.2,latency=1ms@0.3;sortfile:panic=0.15,error=0.1", 99)
	if err != nil {
		t.Fatal(err)
	}
	var enq, done atomic.Int64
	m, err := New(Config{
		MemoryRecords: 64,
		MaxConcurrent: 3,
		MaxQueued:     8,
		TTL:           50 * time.Millisecond,
		GCInterval:    10 * time.Millisecond,
		Fault:         inj,
		Hooks: Hooks{
			Enqueue: func(n int) { enq.Add(int64(n)) },
			Done:    func(n int) { done.Add(int64(n)) },
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// A few shared datasets of varying shapes.
	var datasets []string
	for i := 0; i < 3; i++ {
		ds, err := m.CreateDataset(bytes.NewReader(encode(randomVals(300+200*i, int64(i)))))
		if err != nil {
			t.Fatal(err)
		}
		datasets = append(datasets, ds.ID)
	}

	var ids sync.Map
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				v, err := m.Submit("sortfile", datasets[rng.Intn(len(datasets))])
				if err != nil {
					// ErrUnknownDataset can happen if the aggressive TTL
					// swept an idle dataset out from under us.
					if !errors.Is(err, ErrBusy) && !errors.Is(err, ErrClosed) &&
						!errors.Is(err, ErrUnknownDataset) {
						t.Errorf("submit: %v", err)
					}
					time.Sleep(time.Millisecond)
					continue
				}
				ids.Store(v.ID, true)
				if rng.Intn(3) == 0 {
					time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
					if err := m.Cancel(v.ID); err != nil &&
						!errors.Is(err, ErrTerminal) && !errors.Is(err, ErrUnknownJob) {
						t.Errorf("cancel: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Let in-flight jobs settle, then verify every submitted job reached
	// a terminal state (or was already GC-deleted) and accounting closed.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if enq.Load() == done.Load() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("accounting never balanced: enq=%d done=%d", enq.Load(), done.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	ids.Range(func(k, _ any) bool {
		if v, ok := m.Get(k.(string)); ok && !v.State.terminal() {
			t.Errorf("job %s still %s after drain", v.ID, v.State)
		}
		return true
	})
	s := m.Snapshot()
	if s.Submitted == 0 || s.Completed == 0 {
		t.Fatalf("soak did no work: %+v", s)
	}
	if s.Failed == 0 {
		t.Logf("note: no injected failures surfaced (seed too kind): %+v", s)
	}
	dir := m.Dir()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatal("Close should remove the owned spill dir")
	}
	// Goroutines must drain back to (about) the baseline.
	deadline = time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d -> %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestManagerClosed(t *testing.T) {
	m, err := New(Config{MemoryRecords: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateDataset(bytes.NewReader(nil)); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after close: %v", err)
	}
	if _, err := m.Submit("sortfile", "ds-x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}
