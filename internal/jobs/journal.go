package jobs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The write-ahead manifest journal: an append-only JSON-lines file
// (journal.log) under the spill directory recording every durable state
// transition — dataset sealed, job accepted, job running, job terminal,
// files expired, records deleted. A restarted daemon replays it to
// re-register completed datasets and results, surface in-flight jobs as
// failed(restart) instead of silently vanished, and identify which
// files in the spill directory are orphans. The journal record, not the
// data file, is the commit point: a result whose rename landed but
// whose job-done record did not is treated as never finished and its
// files are garbage-collected.
//
// The journal only exists when the manager runs over a caller-provided
// spill directory (Config.Dir != "") and journaling is not disabled —
// a manager on an ephemeral temp dir has nothing worth recovering.

// journalName is the journal's filename inside the spill directory.
const journalName = "journal.log"

// FsyncPolicy says when the jobs subsystem calls fsync: on every
// journal append, only at durable state boundaries, or never.
type FsyncPolicy string

// The fsync policies. FsyncState — the default — fsyncs the journal at
// state boundaries (dataset sealed, job accepted, job terminal) and
// fsyncs data at seal points (sorted result before rename, dataset
// after upload); losing a non-boundary record (job-running, expiry
// bookkeeping) costs nothing on replay. FsyncAlways additionally
// fsyncs every journal append. FsyncNever trades crash safety for
// speed: the journal is still written, but a power cut may lose its
// tail and unsealed data.
const (
	FsyncAlways FsyncPolicy = "always"
	FsyncState  FsyncPolicy = "state"
	FsyncNever  FsyncPolicy = "never"
)

// ParseFsyncPolicy validates a -fsync-policy flag value; empty selects
// the default (state).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(strings.TrimSpace(s)) {
	case "":
		return FsyncState, nil
	case FsyncAlways:
		return FsyncAlways, nil
	case FsyncState:
		return FsyncState, nil
	case FsyncNever:
		return FsyncNever, nil
	}
	return "", fmt.Errorf("jobs: unknown fsync policy %q (want always, state or never)", s)
}

// Journal record types, one per durable state transition.
const (
	recDataset    = "dataset"      // dataset uploaded, sealed, checksummed
	recDatasetDel = "dataset-del"  // dataset record + file removed
	recAccepted   = "job-accepted" // job admitted to the queue
	recRunning    = "job-running"  // job began executing
	recDone       = "job-done"     // result sealed, renamed, streamable
	recFailed     = "job-failed"   // job failed; Error carries the reason
	recCanceled   = "job-canceled" // job canceled
	recExpired    = "job-expired"  // TTL sweep removed the job's files
	recJobDel     = "job-del"      // job record deleted entirely
)

// record is one journal line. Every record is self-contained — replay
// needs only the LAST record per ID, which is also what compaction
// writes — so the fields cover both dataset and job shapes.
type record struct {
	// T is the record type (the rec* constants).
	T string `json:"t"`
	// TS is the wall-clock time of the transition, RFC3339Nano.
	TS time.Time `json:"ts"`
	// ID is the dataset or job ID the record is about.
	ID string `json:"id"`
	// JobType is the job's type ("sortfile") on job records.
	JobType string `json:"job_type,omitempty"`
	// Dataset is the input dataset ID on job records.
	Dataset string `json:"dataset,omitempty"`
	// Records is the dataset/job length in 8-byte records.
	Records int `json:"records,omitempty"`
	// Bytes is the dataset or result size on disk.
	Bytes int64 `json:"bytes,omitempty"`
	// Error is the failure reason on job-failed records.
	Error string `json:"error,omitempty"`
}

// stateBoundary reports whether t is a transition FsyncState must make
// durable before acknowledging: the records replay depends on to not
// lose committed work or resurrect canceled work.
func stateBoundary(t string) bool {
	switch t {
	case recDataset, recDatasetDel, recAccepted, recDone, recFailed, recCanceled:
		return true
	}
	return false
}

// journal is the append-side handle. All methods are safe for
// concurrent use and safe on a nil receiver (no-op) so call sites need
// no journaling-enabled guards.
type journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	policy FsyncPolicy

	appends *atomic.Uint64 // Manager.jAppends
	fsyncs  *atomic.Uint64 // Manager.fsyncs
}

// openJournal opens (creating if needed) the journal for appending.
func openJournal(dir string, policy FsyncPolicy, appends, fsyncs *atomic.Uint64) (*journal, error) {
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("jobs: open journal: %w", err)
	}
	return &journal{f: f, path: path, policy: policy, appends: appends, fsyncs: fsyncs}, nil
}

// marshalRecord encodes one record as a newline-terminated JSON line.
func marshalRecord(rec record) ([]byte, error) {
	line, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("jobs: journal encode: %w", err)
	}
	return append(line, '\n'), nil
}

// append writes one record as a JSON line and fsyncs it per policy.
func (jn *journal) append(rec record) error {
	if jn == nil {
		return nil
	}
	rec.TS = time.Now()
	line, err := marshalRecord(rec)
	if err != nil {
		return err
	}
	jn.mu.Lock()
	defer jn.mu.Unlock()
	if _, err := jn.f.Write(line); err != nil {
		return fmt.Errorf("jobs: journal append: %w", err)
	}
	jn.appends.Add(1)
	if jn.policy == FsyncAlways || (jn.policy == FsyncState && stateBoundary(rec.T)) {
		if err := jn.f.Sync(); err != nil {
			return fmt.Errorf("jobs: journal fsync: %w", err)
		}
		jn.fsyncs.Add(1)
	}
	return nil
}

// close closes the journal file.
func (jn *journal) close() error {
	if jn == nil {
		return nil
	}
	jn.mu.Lock()
	defer jn.mu.Unlock()
	return jn.f.Close()
}

// readJournal parses the journal at path into its records, tolerating a
// torn final line (the crash the journal exists to survive can land
// mid-append). A missing journal yields no records and no error.
func readJournal(path string) ([]record, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("jobs: read journal: %w", err)
	}
	defer f.Close()
	var recs []record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var rec record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			// A torn or garbled line: everything before it already parsed,
			// everything after it is unreachable state from before the
			// tear — stop here and recover from what we have.
			break
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return recs, fmt.Errorf("jobs: read journal: %w", err)
	}
	return recs, nil
}
