package jobs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mergepath/internal/extsort"
)

// restartReason is the client-visible error put on jobs that were in
// flight (accepted or running) when the daemon died: they are failed,
// loudly, never left hung in "running".
const restartReason = "restart: daemon crashed or restarted while the job was in flight; resubmit"

// recoverState is the startup recovery pass, run from New before any
// worker starts, when journaling is enabled. It replays the journal,
// re-registers datasets and finished jobs whose files survived intact,
// marks in-flight jobs failed(restart), removes every file the journal
// does not account for, and compacts the journal to the live state.
// The manager is not yet shared, so no locking is needed.
func (m *Manager) recoverState() error {
	recs, err := readJournal(filepath.Join(m.dir, journalName))
	if err != nil {
		return err
	}
	m.jReplayed.Add(uint64(len(recs)))

	// Fold the journal: the last record per ID wins (records are
	// self-contained by construction).
	last := make(map[string]record, len(recs))
	order := make([]string, 0, len(recs))
	for _, rec := range recs {
		if _, seen := last[rec.ID]; !seen {
			order = append(order, rec.ID)
		}
		last[rec.ID] = rec
	}

	now := time.Now()
	keep := map[string]bool{filepath.Join(m.dir, journalName): true}
	keepData := func(path string) {
		keep[path] = true
		keep[path+extsort.ChecksumSuffix] = true
	}

	for _, id := range order {
		rec := last[id]
		switch rec.T {
		case recDataset:
			path := filepath.Join(m.dir, id+".data")
			if err := checkSealed(path, rec.Bytes); err != nil {
				// Damaged or vanished: count, leave for orphan GC.
				m.corruption.Add(1)
				continue
			}
			m.datasets[id] = &dataset{
				Dataset:  Dataset{ID: id, Records: rec.Records, Bytes: rec.Bytes, Created: rec.TS},
				path:     path,
				lastUsed: now,
			}
			keepData(path)
			m.recDatasets.Add(1)
		case recDatasetDel:
			// Gone for good; its files (if any survive) are orphans.
		case recAccepted, recRunning:
			// In flight at the crash: fail it with a client-visible
			// restart reason. Its partial files are orphans.
			j := recoveredJob(rec)
			j.state = Failed
			j.err = restartReason
			j.finished = now
			m.jobs[id] = j
			m.recFailed.Add(1)
		case recDone:
			path := filepath.Join(m.dir, id+".result")
			j := recoveredJob(rec)
			if err := checkSealed(path, rec.Bytes); err != nil {
				// The journal committed the result but the disk lost or
				// damaged it: surface as failed, count the corruption.
				m.corruption.Add(1)
				j.state = Failed
				j.err = "restart: result file lost or damaged after restart: " + err.Error()
				j.finished = now
			} else {
				j.state = Done
				j.finished = rec.TS
				j.resultPath = path
				j.resultBytes = rec.Bytes
				j.bumpProgress(1)
				keepData(path)
				m.recResults.Add(1)
			}
			m.jobs[id] = j
		case recFailed, recCanceled:
			j := recoveredJob(rec)
			j.state = Failed
			if rec.T == recCanceled {
				j.state = Canceled
			}
			j.err = rec.Error
			j.finished = rec.TS
			m.jobs[id] = j
		case recExpired:
			j := recoveredJob(rec)
			j.state = Expired
			j.finished = rec.TS
			j.expired = rec.TS
			m.jobs[id] = j
		case recJobDel:
			// Forgotten entirely.
		}
	}

	// Orphan GC: everything in the spill directory the journal does not
	// vouch for is a leftover from the crash — partial results, scratch
	// files, damaged datasets — and is removed.
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return fmt.Errorf("jobs: recovery scan: %w", err)
	}
	for _, e := range entries {
		path := filepath.Join(m.dir, e.Name())
		if keep[path] || e.IsDir() {
			continue
		}
		if err := os.Remove(path); err == nil {
			m.orphansRemoved.Add(1)
			m.filesRemoved.Add(1)
		}
	}

	return m.compactJournal()
}

// recoveredJob rebuilds a job skeleton from its last journal record.
// Recovered jobs are always terminal: accounted is set so no hook ever
// fires for them (the hooks' Enqueue side was lost with the old
// process), and they carry no context or cancel func.
func recoveredJob(rec record) *job {
	return &job{
		id:        rec.ID,
		typ:       rec.JobType,
		datasetID: rec.Dataset,
		records:   rec.Records,
		created:   rec.TS,
		accounted: true,
	}
}

// checkSealed is the recovery pass's structural integrity probe on a
// sealed file: it must exist at exactly its journaled size and carry a
// well-formed sidecar that agrees. Block checksums are verified lazily
// at stream time by VerifiedReader (scanning every dataset end to end
// on startup would make restart cost proportional to stored bytes).
func checkSealed(path string, bytes int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if fi.Size() != bytes {
		return fmt.Errorf("size %d, journaled %d", fi.Size(), bytes)
	}
	side, err := os.Stat(path + extsort.ChecksumSuffix)
	if err != nil {
		return err
	}
	// 16-byte header + at least one CRC per block; exact agreement is
	// checked by readSidecar when the file is streamed.
	if side.Size() < 16 {
		return fmt.Errorf("sidecar truncated to %d bytes", side.Size())
	}
	return nil
}

// compactJournal rewrites the journal to one record per live ID —
// replayed state plus nothing — so it does not grow without bound
// across restarts. The rewrite is crash-safe: write a temp file, fsync
// it, rename over the journal, fsync the directory.
func (m *Manager) compactJournal() error {
	var recs []record
	for id, ds := range m.datasets {
		recs = append(recs, record{
			T: recDataset, TS: ds.Created, ID: id,
			Records: ds.Records, Bytes: ds.Bytes,
		})
	}
	for id, j := range m.jobs {
		rec := record{
			TS: j.created, ID: id, JobType: j.typ,
			Dataset: j.datasetID, Records: j.records,
		}
		switch j.state {
		case Done:
			rec.T, rec.Bytes = recDone, j.resultBytes
		case Failed:
			rec.T, rec.Error = recFailed, j.err
		case Canceled:
			rec.T = recCanceled
		case Expired:
			rec.T = recExpired
		default:
			continue
		}
		recs = append(recs, rec)
	}

	path := filepath.Join(m.dir, journalName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("jobs: compact journal: %w", err)
	}
	var sb strings.Builder
	for _, rec := range recs {
		line, err := marshalRecord(rec)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		sb.Write(line)
	}
	if _, err := f.WriteString(sb.String()); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("jobs: compact journal: %w", err)
	}
	if m.cfg.Fsync != FsyncNever {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("jobs: compact journal fsync: %w", err)
		}
		m.fsyncs.Add(1)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobs: compact journal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobs: compact journal: %w", err)
	}
	if m.cfg.Fsync != FsyncNever {
		m.syncDir()
	}
	return nil
}

// syncDir fsyncs the spill directory so renames within it are durable.
// Best-effort: some filesystems refuse directory fsync; the rename is
// still atomic, only its durability timing weakens.
func (m *Manager) syncDir() {
	d, err := os.Open(m.dir)
	if err != nil {
		return
	}
	if d.Sync() == nil {
		m.fsyncs.Add(1)
	}
	d.Close()
}
