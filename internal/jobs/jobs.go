// Package jobs is the asynchronous job subsystem behind the dataset API:
// clients upload datasets too large for a request/response cycle, submit
// long-running jobs against them (today: "sortfile", an external sort via
// internal/extsort under a hard memory budget), poll for progress, and
// stream the result when done. The manager bounds concurrent jobs, spills
// everything to files under one directory, garbage-collects expired job
// state and temp files on a TTL, and reports every lifecycle transition
// through hooks so the server's overload controller sees big sorts as
// backlog — the node browns out gracefully instead of OOMing.
//
// Job state machine:
//
//	pending -> running -> done | failed | canceled
//	pending -> canceled                      (canceled before starting)
//	done | failed | canceled -> expired      (TTL; files removed)
//	expired -> (record deleted)              (second TTL)
package jobs

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mergepath/internal/extsort"
	"mergepath/internal/fault"
	"mergepath/internal/kway"
)

// Lifecycle and admission errors, mapped to HTTP statuses by the server.
var (
	// ErrUnknownJob means no job with that ID exists (404).
	ErrUnknownJob = errors.New("jobs: unknown job")
	// ErrUnknownDataset means no dataset with that ID exists (404).
	ErrUnknownDataset = errors.New("jobs: unknown dataset")
	// ErrBusy means the bounded job queue is full — the service sheds
	// the submission (503) instead of queueing unboundedly.
	ErrBusy = errors.New("jobs: job queue full")
	// ErrBadType rejects job types the manager does not implement (400).
	ErrBadType = errors.New(`jobs: unknown job type (want "sortfile")`)
	// ErrNotDone means the job has no streamable result in its current
	// state (409): it is still running, or it failed, was canceled, or
	// its result already expired.
	ErrNotDone = errors.New("jobs: result not available in this state")
	// ErrTerminal rejects canceling a job that already finished (409).
	ErrTerminal = errors.New("jobs: job already in a terminal state")
	// ErrClosed means the manager is shut down and accepts no work.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrTooLarge rejects dataset uploads over the configured byte limit
	// (413).
	ErrTooLarge = errors.New("jobs: dataset exceeds the configured size limit")
	// ErrBadLength rejects dataset uploads whose byte length is not a
	// whole number of 8-byte records (400).
	ErrBadLength = errors.New("jobs: dataset length is not a whole number of 8-byte records")
)

// State is a job's position in the lifecycle state machine.
type State string

// The job states. Pending and Running are live; Done, Failed, Canceled
// and Expired are terminal (Expired additionally means the TTL sweeper
// removed the job's files).
const (
	Pending  State = "pending"
	Running  State = "running"
	Done     State = "done"
	Failed   State = "failed"
	Canceled State = "canceled"
	Expired  State = "expired"
)

// terminal reports whether s is past Running.
func (s State) terminal() bool { return s != Pending && s != Running }

// Hooks lets the owner observe job lifecycle transitions — the server
// wires these to the overload controller so queued and running job
// records count as element backlog (Enqueue/Done) and completed sorts
// feed the drain-rate EWMA (Drained). All hooks are optional.
type Hooks struct {
	// Enqueue fires when a job is admitted, with its record count.
	Enqueue func(records int)
	// Done fires exactly once when a job reaches a terminal state, with
	// the same record count Enqueue saw.
	Done func(records int)
	// Drained fires when a job completes successfully: records sorted
	// and the execution wall time (copy-in through final write).
	Drained func(records int, took time.Duration)
}

// Config shapes a Manager. Zero values select the documented defaults.
type Config struct {
	// Dir is the spill directory for datasets, results and scratch
	// files. Empty means a fresh os.MkdirTemp directory owned (and
	// removed on Close) by the manager.
	Dir string
	// MemoryRecords is the per-job in-memory budget in records — the
	// extsort M. Default 1<<20 (8 MiB of int64s).
	MemoryRecords int
	// FanIn is the merge-tree fan-in passed to extsort. Default
	// extsort.DefaultFanIn.
	FanIn int
	// KWay is the in-window k-way merge strategy passed to extsort
	// (docs/KWAY.md). The zero value (auto) picks per round.
	KWay kway.Strategy
	// Workers is the in-memory parallelism of each job's sort phases.
	// Default GOMAXPROCS.
	Workers int
	// MaxConcurrent bounds jobs executing at once. Default 1: sorts are
	// I/O- and memory-hungry, and the merge/sort request path shares the
	// machine.
	MaxConcurrent int
	// MaxQueued bounds jobs waiting to run; a full queue sheds
	// submissions with ErrBusy. Default 8.
	MaxQueued int
	// TTL is how long finished jobs keep their result files and expired
	// records linger, and how long unreferenced datasets survive.
	// Default 10m.
	TTL time.Duration
	// GCInterval is how often the TTL sweeper runs. Default 30s.
	GCInterval time.Duration
	// MaxDatasetBytes caps one dataset upload. Default 2 GiB.
	MaxDatasetBytes int64
	// BlockRecords is the file-device block size in records. Default
	// extsort.DefaultFileBlockRecords.
	BlockRecords int
	// Fault, when non-nil, injects errors/panics/latency into job
	// execution keyed by op ("job" at start, "sortfile" before the
	// sort, and the disk.* ops on every file device) — chaos testing
	// for the failure paths. Nil in production.
	Fault *fault.Injector
	// Hooks observe lifecycle transitions (overload wiring).
	Hooks Hooks
	// DisableJournal turns the write-ahead manifest journal off even
	// when Dir is set (-journal=false). Managers on an owned temp dir
	// (Dir == "") never journal — there is nothing to recover into.
	DisableJournal bool
	// Fsync is the fsync policy (docs/DURABILITY.md). Zero value is
	// FsyncState: fsync the journal at state boundaries and data files
	// at seal points.
	Fsync FsyncPolicy
}

func (c Config) withDefaults() Config {
	if c.MemoryRecords <= 0 {
		c.MemoryRecords = 1 << 20
	}
	if c.MemoryRecords < extsort.MinMemoryRecords {
		c.MemoryRecords = extsort.MinMemoryRecords
	}
	if c.FanIn <= 0 {
		c.FanIn = extsort.DefaultFanIn
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 1
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 8
	}
	if c.TTL <= 0 {
		c.TTL = 10 * time.Minute
	}
	if c.GCInterval <= 0 {
		c.GCInterval = 30 * time.Second
	}
	if c.MaxDatasetBytes <= 0 {
		c.MaxDatasetBytes = 2 << 30
	}
	if c.BlockRecords <= 0 {
		c.BlockRecords = extsort.DefaultFileBlockRecords
	}
	if c.Fsync == "" {
		c.Fsync = FsyncState
	}
	return c
}

// Span is one timed phase of a job's execution, reported in its View —
// the job-level analogue of the request trace: queue_wait, copy_in,
// run_formation, merge, copyback, total. Start is the offset from
// submission.
type Span struct {
	// Name is the phase name.
	Name string `json:"name"`
	// StartMS is the phase's start offset from job submission, in
	// milliseconds.
	StartMS float64 `json:"start_ms"`
	// DurMS is the phase duration in milliseconds.
	DurMS float64 `json:"dur_ms"`
}

// Dataset describes one uploaded dataset.
type Dataset struct {
	// ID addresses the dataset in job submissions and the HTTP API.
	ID string `json:"id"`
	// Records is the dataset length in 8-byte records.
	Records int `json:"records"`
	// Bytes is the dataset size on disk.
	Bytes int64 `json:"bytes"`
	// Created is the upload completion time.
	Created time.Time `json:"created"`
}

// dataset is the manager's internal record: the public view plus the
// backing path, the TTL clock, and the reference count that makes
// deletion safe against running jobs (guarded by Manager.mu).
type dataset struct {
	Dataset
	path     string
	lastUsed time.Time
	refs     int  // live jobs reading this dataset
	deleting bool // DeleteDataset arrived while refs > 0; remove at last release
}

// View is a job's client-visible state — the GET /v1/jobs/{id} document.
type View struct {
	// ID addresses the job.
	ID string `json:"id"`
	// Type is the job type ("sortfile").
	Type string `json:"type"`
	// Dataset is the input dataset's ID.
	Dataset string `json:"dataset"`
	// Records is the input size in records.
	Records int `json:"records"`
	// State is the lifecycle state: pending, running, done, failed,
	// canceled or expired.
	State State `json:"state"`
	// Error carries the failure message for failed jobs.
	Error string `json:"error,omitempty"`
	// Progress is the fraction of the job's total record traffic already
	// processed, in [0,1], monotonically non-decreasing across polls.
	Progress float64 `json:"progress"`
	// Phase names the currently executing phase for running jobs.
	Phase string `json:"phase,omitempty"`
	// Created is the submission time.
	Created time.Time `json:"created"`
	// Started is when execution began (zero while pending).
	Started time.Time `json:"started,omitempty"`
	// Finished is when the job reached a terminal state (zero before).
	Finished time.Time `json:"finished,omitempty"`
	// Spans are the job's per-phase timings, populated as phases finish.
	Spans []Span `json:"spans,omitempty"`
	// Stats is the external-sort I/O accounting of a finished sort.
	Stats *extsort.Stats `json:"stats,omitempty"`
	// ResultBytes is the streamable result size for done jobs.
	ResultBytes int64 `json:"result_bytes,omitempty"`
}

// job is the manager's internal record.
type job struct {
	id        string
	typ       string
	datasetID string
	dsPath    string
	records   int
	created   time.Time
	ds        *dataset // refcounted input; nil for recovered (terminal) jobs

	cancel context.CancelFunc
	ctx    context.Context

	// progress is atomic: the runner publishes, pollers read without the
	// manager lock. Stored as float64 bits, monotonically non-decreasing.
	progress atomic.Uint64
	phase    atomic.Pointer[string]

	// Remaining fields are guarded by Manager.mu.
	state       State
	err         string
	started     time.Time
	finished    time.Time
	expired     time.Time // when the TTL sweep removed the files
	spans       []Span
	stats       *extsort.Stats
	resultPath  string
	resultBytes int64
	resultRefs  int  // open result streams; TTL expiry defers while > 0
	accounted   bool // Hooks.Done fired
}

// bumpProgress raises the job's published progress to f (never lowers).
func (j *job) bumpProgress(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	for {
		old := j.progress.Load()
		if mathFloat(old) >= f {
			return
		}
		if j.progress.CompareAndSwap(old, mathBits(f)) {
			return
		}
	}
}

// Manager owns the dataset store, the bounded job queue and workers, and
// the TTL garbage collector. All methods are safe for concurrent use.
type Manager struct {
	cfg    Config
	dir    string
	ownDir bool // we created dir and remove it on Close

	mu       sync.Mutex
	closed   bool
	datasets map[string]*dataset
	jobs     map[string]*job
	pending  int
	running  int

	queue  chan *job
	wg     sync.WaitGroup
	stopGC chan struct{}
	gcDone chan struct{}

	jnl *journal // nil when journaling is disabled

	submitted    atomic.Uint64
	completed    atomic.Uint64
	failed       atomic.Uint64
	canceledN    atomic.Uint64
	expiredN     atomic.Uint64
	shedBusy     atomic.Uint64
	gcSweeps     atomic.Uint64
	filesRemoved atomic.Uint64
	blockReads   atomic.Uint64
	blockWrites  atomic.Uint64
	resultAborts atomic.Uint64

	// Durability counters (Snapshot.Durability).
	jAppends       atomic.Uint64
	jReplayed      atomic.Uint64
	fsyncs         atomic.Uint64
	recDatasets    atomic.Uint64
	recResults     atomic.Uint64
	recFailed      atomic.Uint64
	orphansRemoved atomic.Uint64
	corruption     atomic.Uint64
}

// NoteCorruption records one detected integrity failure (checksum
// mismatch, truncated sealed file). Fed by the verified readers and the
// recovery pass.
func (m *Manager) NoteCorruption() { m.corruption.Add(1) }

// NoteResultAbort records one result stream that died mid-body — the
// client vanished or the spill file failed under the copy. The transfer
// happens in the HTTP layer, so the counter is fed from there; it lives
// here so it reaches /metrics, /healthz and /metrics/prom through the
// one jobs Snapshot like every other jobs number.
func (m *Manager) NoteResultAbort() { m.resultAborts.Add(1) }

// New creates a Manager: spill directory ready, workers started, GC
// ticking. Call Close to stop it.
func New(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	dir := cfg.Dir
	ownDir := false
	if dir == "" {
		d, err := os.MkdirTemp("", "mergepath-jobs-")
		if err != nil {
			return nil, fmt.Errorf("jobs: spill dir: %w", err)
		}
		dir, ownDir = d, true
	} else if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("jobs: spill dir: %w", err)
	}
	m := &Manager{
		cfg:      cfg,
		dir:      dir,
		ownDir:   ownDir,
		datasets: make(map[string]*dataset),
		jobs:     make(map[string]*job),
		queue:    make(chan *job, cfg.MaxQueued),
		stopGC:   make(chan struct{}),
		gcDone:   make(chan struct{}),
	}
	// Journaling requires a caller-owned spill directory: an ephemeral
	// temp dir dies with the process, so there is no restart to recover.
	if !ownDir && !cfg.DisableJournal {
		// Recover BEFORE opening the append side: compaction replaces the
		// journal file, and an open O_APPEND handle would keep writing to
		// the replaced inode.
		if err := m.recoverState(); err != nil {
			return nil, err
		}
		jnl, err := openJournal(dir, cfg.Fsync, &m.jAppends, &m.fsyncs)
		if err != nil {
			return nil, err
		}
		m.jnl = jnl
	}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	go m.gcLoop()
	return m, nil
}

// Dir returns the spill directory path.
func (m *Manager) Dir() string { return m.dir }

// MemoryRecords returns the effective per-job memory budget in records.
func (m *Manager) MemoryRecords() int { return m.cfg.MemoryRecords }

// CreateDataset streams r to a spill file, seals it (fsync per policy,
// sidecar checksums, journal record) and registers the dataset. The
// stream must be a whole number of 8-byte little-endian records and at
// most MaxDatasetBytes long.
func (m *Manager) CreateDataset(r io.Reader) (Dataset, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Dataset{}, ErrClosed
	}
	m.mu.Unlock()

	id := "ds-" + nextID()
	path := filepath.Join(m.dir, id+".data")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return Dataset{}, fmt.Errorf("jobs: create dataset: %w", err)
	}
	// Copy with a one-byte overshoot window so an over-limit stream is
	// detected without reading it to the end.
	n, err := io.Copy(f, io.LimitReader(r, m.cfg.MaxDatasetBytes+1))
	if err == nil && m.cfg.Fsync != FsyncNever {
		// Seal point: the bytes must be on the platter before the journal
		// record (and the 201 response) claims the dataset exists.
		if err = f.Sync(); err == nil {
			m.fsyncs.Add(1)
		}
	}
	cerr := f.Close()
	if err == nil {
		err = cerr
	}
	discard := func() { os.Remove(path); os.Remove(path + extsort.ChecksumSuffix) }
	switch {
	case err != nil:
		discard()
		return Dataset{}, fmt.Errorf("jobs: dataset upload: %w", err)
	case n > m.cfg.MaxDatasetBytes:
		discard()
		return Dataset{}, ErrTooLarge
	case n%extsort.RecordBytes != 0:
		discard()
		return Dataset{}, ErrBadLength
	}
	if _, err := extsort.WriteChecksumFile(path, m.cfg.BlockRecords, m.cfg.Fsync != FsyncNever); err != nil {
		discard()
		return Dataset{}, fmt.Errorf("jobs: seal dataset: %w", err)
	}
	if m.cfg.Fsync != FsyncNever {
		m.fsyncs.Add(1) // the sidecar fsync inside WriteChecksumFile
	}
	now := time.Now()
	ds := &dataset{
		Dataset:  Dataset{ID: id, Records: int(n / extsort.RecordBytes), Bytes: n, Created: now},
		path:     path,
		lastUsed: now,
	}
	if err := m.jnl.append(record{T: recDataset, ID: id, Records: ds.Records, Bytes: n}); err != nil {
		// Not durable -> not created: a dataset the journal cannot vouch
		// for would be garbage-collected at the next restart anyway.
		discard()
		return Dataset{}, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		discard()
		return Dataset{}, ErrClosed
	}
	m.datasets[id] = ds
	m.mu.Unlock()
	return ds.Dataset, nil
}

// GetDataset returns a dataset's public record.
func (m *Manager) GetDataset(id string) (Dataset, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ds, ok := m.datasets[id]
	if !ok {
		return Dataset{}, false
	}
	return ds.Dataset, true
}

// DeleteDataset removes a dataset with deferred-delete semantics: the
// record disappears immediately (subsequent submissions 404) but, when
// live jobs still hold the dataset, the file removal is deferred until
// the last job releases it — the delete never races a running sort's
// reads. Documented in docs/DURABILITY.md.
func (m *Manager) DeleteDataset(id string) error {
	m.mu.Lock()
	ds, ok := m.datasets[id]
	if ok {
		delete(m.datasets, id)
		if ds.refs > 0 {
			ds.deleting = true // last finalizeLocked removes the file
			ds = nil
		}
	}
	m.mu.Unlock()
	if !ok {
		return ErrUnknownDataset
	}
	m.jnl.append(record{T: recDatasetDel, ID: id})
	if ds != nil {
		m.removeFile(ds.path)
	}
	return nil
}

// Submit admits a job of the given type against a dataset, or sheds with
// ErrBusy when the bounded queue is full. The returned View is the 202
// body: state pending, progress 0.
func (m *Manager) Submit(typ, datasetID string) (View, error) {
	if typ != "sortfile" {
		return View{}, ErrBadType
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return View{}, ErrClosed
	}
	ds, ok := m.datasets[datasetID]
	if !ok {
		m.mu.Unlock()
		return View{}, ErrUnknownDataset
	}
	ds.lastUsed = time.Now()
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:        "job-" + nextID(),
		typ:       typ,
		datasetID: datasetID,
		dsPath:    ds.path,
		records:   ds.Records,
		created:   time.Now(),
		ds:        ds,
		ctx:       ctx,
		cancel:    cancel,
		state:     Pending,
	}
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		cancel()
		m.shedBusy.Add(1)
		return View{}, ErrBusy
	}
	m.jobs[j.id] = j
	m.pending++
	// The job holds its dataset until it reaches a terminal state: the
	// refcount is what makes DELETE /v1/datasets safe mid-sort.
	ds.refs++
	m.mu.Unlock()
	m.submitted.Add(1)
	m.jnl.append(record{T: recAccepted, ID: j.id, JobType: typ, Dataset: datasetID, Records: j.records})
	if h := m.cfg.Hooks.Enqueue; h != nil {
		h(j.records)
	}
	return m.view(j), nil
}

// Get returns a job's current view.
func (m *Manager) Get(id string) (View, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return View{}, false
	}
	return m.view(j), true
}

// Cancel requests cancellation: a pending job is finalized canceled
// immediately, a running job is interrupted at its next merge-window
// boundary. Canceling an already-canceled job is a no-op; canceling any
// other terminal job returns ErrTerminal.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrUnknownJob
	}
	switch j.state {
	case Canceled:
		m.mu.Unlock()
		return nil
	case Pending:
		post := m.finalizeLocked(j, Canceled, nil)
		m.mu.Unlock()
		if post != nil {
			post()
		}
		j.cancel()
		return nil
	case Running:
		m.mu.Unlock()
		j.cancel()
		return nil
	default:
		m.mu.Unlock()
		return ErrTerminal
	}
}

// OpenResult opens a done job's sorted result for checksum-verified
// streaming and reports its size. The job's result is pinned against
// TTL expiry for the life of the stream (resultRefs), so a sweep racing
// a slow download can never unlink the file mid-copy. The caller must
// Close the reader. A corrupted result surfaces as an error wrapping
// extsort.ErrCorrupt (and bumps corruption_detected_total), never as
// wrong bytes.
func (m *Manager) OpenResult(id string) (io.ReadCloser, int64, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, 0, ErrUnknownJob
	}
	if j.state != Done {
		m.mu.Unlock()
		return nil, 0, ErrNotDone
	}
	path, size := j.resultPath, j.resultBytes
	j.resultRefs++
	m.mu.Unlock()
	r, err := extsort.OpenVerifiedReader(path)
	if err != nil {
		m.releaseResult(j)
		if errors.Is(err, extsort.ErrCorrupt) {
			m.corruption.Add(1)
		}
		return nil, 0, fmt.Errorf("jobs: open result: %w", err)
	}
	r.SetFault(m.cfg.Fault)
	return &resultStream{m: m, j: j, r: r}, size, nil
}

// resultStream wraps a verified result reader, counting corruption
// verdicts and releasing the job's stream pin on Close.
type resultStream struct {
	m       *Manager
	j       *job
	r       *extsort.VerifiedReader
	counted bool
	closed  bool
}

// Read streams verified bytes; the first corruption verdict is counted.
func (s *resultStream) Read(p []byte) (int, error) {
	n, err := s.r.Read(p)
	if err != nil && !s.counted && errors.Is(err, extsort.ErrCorrupt) {
		s.counted = true
		s.m.corruption.Add(1)
	}
	return n, err
}

// Close releases the stream's expiry pin and closes the file. Safe to
// call twice.
func (s *resultStream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.m.releaseResult(s.j)
	return s.r.Close()
}

// releaseResult drops one result-stream pin.
func (m *Manager) releaseResult(j *job) {
	m.mu.Lock()
	j.resultRefs--
	m.mu.Unlock()
}

// view assembles a View from a job (takes the manager lock).
func (m *Manager) view(j *job) View {
	m.mu.Lock()
	v := View{
		ID:          j.id,
		Type:        j.typ,
		Dataset:     j.datasetID,
		Records:     j.records,
		State:       j.state,
		Error:       j.err,
		Created:     j.created,
		Started:     j.started,
		Finished:    j.finished,
		Spans:       append([]Span(nil), j.spans...),
		Stats:       j.stats,
		ResultBytes: j.resultBytes,
	}
	m.mu.Unlock()
	v.Progress = mathFloat(j.progress.Load())
	if v.State == Done || v.State == Expired {
		v.Progress = 1
	}
	if v.State == Running {
		if p := j.phase.Load(); p != nil {
			v.Phase = *p
		}
	}
	return v
}

// finalizeLocked moves a job to a terminal state, firing Hooks.Done
// exactly once and releasing the job's dataset reference. Callers hold
// m.mu and MUST run the returned closure (nil when the job was already
// terminal) after unlocking: it appends the terminal journal record and
// performs any dataset removal this release unblocked — file I/O and
// fsyncs that must not happen under the manager lock.
func (m *Manager) finalizeLocked(j *job, state State, err error) func() {
	if j.state.terminal() {
		return nil
	}
	switch j.state {
	case Pending:
		m.pending--
	case Running:
		m.running--
	}
	j.state = state
	j.finished = time.Now()
	if err != nil {
		j.err = err.Error()
	}
	j.spans = append(j.spans, Span{Name: "total", StartMS: 0, DurMS: millis(j.finished.Sub(j.created))})
	switch state {
	case Done:
		m.completed.Add(1)
		j.bumpProgress(1)
	case Failed:
		m.failed.Add(1)
	case Canceled:
		m.canceledN.Add(1)
	}
	if !j.accounted {
		j.accounted = true
		if h := m.cfg.Hooks.Done; h != nil {
			// Fire outside the lock? The hook is a counter bump; keep it
			// simple and document that hooks must not call back into the
			// manager.
			h(j.records)
		}
	}
	if state == Done {
		if h := m.cfg.Hooks.Drained; h != nil && !j.started.IsZero() {
			h(j.records, j.finished.Sub(j.started))
		}
	}

	// Release the dataset; a deferred delete whose last reader just left
	// is removed by the closure, outside the lock.
	var removeDS string
	if j.ds != nil {
		j.ds.refs--
		if j.ds.refs == 0 && j.ds.deleting {
			removeDS = j.ds.path
		}
		j.ds = nil
	}
	rec := record{ID: j.id, JobType: j.typ, Dataset: j.datasetID, Records: j.records, Error: j.err}
	switch state {
	case Done:
		rec.T, rec.Bytes = recDone, j.resultBytes
	case Failed:
		rec.T = recFailed
	default:
		rec.T = recCanceled
	}
	return func() {
		m.jnl.append(rec)
		m.removeFile(removeDS)
	}
}

// Sweep runs one TTL garbage-collection pass at time now and reports how
// many jobs or datasets it transitioned or deleted. Exposed for tests;
// the background loop calls it every GCInterval.
func (m *Manager) Sweep(now time.Time) int {
	m.gcSweeps.Add(1)
	ttl := m.cfg.TTL
	var swept int
	var toRemove []string
	var toJournal []record
	m.mu.Lock()
	for id, ds := range m.datasets {
		// A dataset a live job still reads never expires (refs > 0) —
		// the job, not the clock, decides when it is safe to let go.
		if ds.refs == 0 && now.Sub(ds.lastUsed) > ttl {
			delete(m.datasets, id)
			toRemove = append(toRemove, ds.path)
			toJournal = append(toJournal, record{T: recDatasetDel, ID: id})
			swept++
		}
	}
	for id, j := range m.jobs {
		switch {
		case j.state == Expired:
			if now.Sub(j.expired) > ttl {
				delete(m.jobs, id)
				toJournal = append(toJournal, record{T: recJobDel, ID: id})
				swept++
			}
		case j.state.terminal():
			// An open result stream pins the files: expiry waits for the
			// stream to close instead of unlinking mid-copy.
			if j.resultRefs == 0 && now.Sub(j.finished) > ttl {
				j.state = Expired
				j.expired = now
				if j.resultPath != "" {
					toRemove = append(toRemove, j.resultPath)
					j.resultPath = ""
				}
				toJournal = append(toJournal, record{T: recExpired, ID: id, JobType: j.typ, Dataset: j.datasetID, Records: j.records})
				m.expiredN.Add(1)
				swept++
			}
		}
	}
	m.mu.Unlock()
	for _, p := range toRemove {
		m.removeFile(p)
	}
	for _, rec := range toJournal {
		m.jnl.append(rec)
	}
	return swept
}

// removeFile deletes a spill file and, when present, its checksum
// sidecar, counting successful removals. Files without sidecars
// (scratch) lose nothing to the extra attempt.
func (m *Manager) removeFile(path string) {
	if path == "" {
		return
	}
	if err := os.Remove(path); err == nil {
		m.filesRemoved.Add(1)
	}
	if err := os.Remove(path + extsort.ChecksumSuffix); err == nil {
		m.filesRemoved.Add(1)
	}
}

// gcLoop runs Sweep every GCInterval until Close.
func (m *Manager) gcLoop() {
	defer close(m.gcDone)
	t := time.NewTicker(m.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stopGC:
			return
		case now := <-t.C:
			m.Sweep(now)
		}
	}
}

// Close stops the manager: no new admissions, all live jobs canceled,
// workers joined, the GC stopped, and — when the manager created its own
// temp spill directory — the directory removed.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		<-m.gcDone
		m.wg.Wait()
		return nil
	}
	m.closed = true
	for _, j := range m.jobs {
		if !j.state.terminal() {
			j.cancel()
		}
	}
	close(m.queue)
	m.mu.Unlock()
	close(m.stopGC)
	<-m.gcDone
	m.wg.Wait()
	m.jnl.close()
	if m.ownDir {
		return os.RemoveAll(m.dir)
	}
	return nil
}

// Snapshot is the jobs subsystem's metrics document, embedded in the
// server's /metrics JSON and rendered as mergepathd_jobs_* on
// /metrics/prom.
type Snapshot struct {
	// Submitted counts admitted jobs since start.
	Submitted uint64 `json:"submitted_total"`
	// Completed counts jobs that reached Done.
	Completed uint64 `json:"completed_total"`
	// Failed counts jobs that reached Failed.
	Failed uint64 `json:"failed_total"`
	// Canceled counts jobs that reached Canceled.
	Canceled uint64 `json:"canceled_total"`
	// Expired counts jobs whose files the TTL sweeper removed.
	Expired uint64 `json:"expired_total"`
	// ShedBusy counts submissions refused because the job queue was full.
	ShedBusy uint64 `json:"shed_busy_total"`
	// Running is the number of jobs executing right now.
	Running int `json:"running"`
	// Pending is the number of jobs waiting in the queue.
	Pending int `json:"pending"`
	// QueueCapacity is the pending-queue bound; a full queue sheds.
	QueueCapacity int `json:"queue_capacity"`
	// MaxConcurrent is the executing-jobs bound.
	MaxConcurrent int `json:"max_concurrent"`
	// Tracked is the number of job records currently retained (all
	// states, including expired records awaiting deletion).
	Tracked int `json:"tracked"`
	// Datasets is the number of datasets currently stored.
	Datasets int `json:"datasets"`
	// DatasetBytes is the bytes of dataset payload currently on disk.
	DatasetBytes int64 `json:"dataset_bytes"`
	// MemoryRecords is the per-job memory budget (extsort M).
	MemoryRecords int `json:"memory_records"`
	// BlockReads accumulates finished jobs' external-sort block reads.
	BlockReads uint64 `json:"block_reads_total"`
	// BlockWrites accumulates finished jobs' external-sort block writes.
	BlockWrites uint64 `json:"block_writes_total"`
	// GCSweeps counts TTL sweeper passes.
	GCSweeps uint64 `json:"gc_sweeps_total"`
	// FilesRemoved counts spill files the manager deleted (GC, cancel
	// cleanup, dataset deletion).
	FilesRemoved uint64 `json:"files_removed_total"`
	// ResultAborts counts result streams that died mid-body (client
	// disconnect or read failure) instead of completing.
	ResultAborts uint64 `json:"result_aborts_total"`
	// Durability is the crash-safety sub-document: journal, fsync,
	// recovery and corruption accounting (docs/DURABILITY.md).
	Durability DurabilitySnapshot `json:"durability"`
}

// DurabilitySnapshot is the crash-safety corner of the jobs metrics
// document, surfaced on /metrics, /metrics/prom and /healthz.
type DurabilitySnapshot struct {
	// JournalEnabled reports whether the write-ahead journal is active.
	JournalEnabled bool `json:"journal_enabled"`
	// FsyncPolicy is the effective policy: always, state or never.
	FsyncPolicy string `json:"fsync_policy"`
	// JournalAppends counts records appended to the journal.
	JournalAppends uint64 `json:"journal_appends_total"`
	// JournalReplayed counts records replayed by the startup recovery.
	JournalReplayed uint64 `json:"journal_replayed_total"`
	// Fsyncs counts fsync calls (journal, data seals, directory).
	Fsyncs uint64 `json:"fsyncs_total"`
	// RecoveredDatasets counts datasets re-registered intact at startup.
	RecoveredDatasets uint64 `json:"recovered_datasets_total"`
	// RecoveredResults counts done jobs whose results survived restart.
	RecoveredResults uint64 `json:"recovered_results_total"`
	// RecoveredFailed counts in-flight jobs marked failed(restart).
	RecoveredFailed uint64 `json:"recovered_failed_total"`
	// OrphansRemoved counts unaccounted files the recovery pass deleted.
	OrphansRemoved uint64 `json:"orphans_removed_total"`
	// CorruptionDetected counts integrity failures caught by checksums
	// (never silently streamed).
	CorruptionDetected uint64 `json:"corruption_detected_total"`
}

// Snapshot assembles the current metrics document.
func (m *Manager) Snapshot() Snapshot {
	s := Snapshot{
		Submitted:     m.submitted.Load(),
		Completed:     m.completed.Load(),
		Failed:        m.failed.Load(),
		Canceled:      m.canceledN.Load(),
		Expired:       m.expiredN.Load(),
		ShedBusy:      m.shedBusy.Load(),
		QueueCapacity: m.cfg.MaxQueued,
		MaxConcurrent: m.cfg.MaxConcurrent,
		MemoryRecords: m.cfg.MemoryRecords,
		BlockReads:    m.blockReads.Load(),
		BlockWrites:   m.blockWrites.Load(),
		GCSweeps:      m.gcSweeps.Load(),
		FilesRemoved:  m.filesRemoved.Load(),
		ResultAborts:  m.resultAborts.Load(),
		Durability: DurabilitySnapshot{
			JournalEnabled:     m.jnl != nil,
			FsyncPolicy:        string(m.cfg.Fsync),
			JournalAppends:     m.jAppends.Load(),
			JournalReplayed:    m.jReplayed.Load(),
			Fsyncs:             m.fsyncs.Load(),
			RecoveredDatasets:  m.recDatasets.Load(),
			RecoveredResults:   m.recResults.Load(),
			RecoveredFailed:    m.recFailed.Load(),
			OrphansRemoved:     m.orphansRemoved.Load(),
			CorruptionDetected: m.corruption.Load(),
		},
	}
	m.mu.Lock()
	s.Running = m.running
	s.Pending = m.pending
	s.Tracked = len(m.jobs)
	s.Datasets = len(m.datasets)
	for _, ds := range m.datasets {
		s.DatasetBytes += ds.Bytes
	}
	m.mu.Unlock()
	return s
}

// ID generation: a per-process random prefix plus a monotonic sequence —
// unique within a process, collision-resistant across restarts, short
// enough to read in logs.
var (
	idSeq    atomic.Uint64
	idPrefix = func() string {
		var b [3]byte
		if _, err := crand.Read(b[:]); err != nil {
			return "000000"
		}
		return hex.EncodeToString(b[:])
	}()
)

func nextID() string {
	return idPrefix + "-" + strconv.FormatUint(idSeq.Add(1), 10)
}

// millis converts a duration to float milliseconds (the repo's JSON unit
// policy).
func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
