package jobs

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mergepath/internal/extsort"
)

// recoveryDataset builds an n-record unsorted payload.
func recoveryDataset(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, n*extsort.RecordBytes)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(buf[i*extsort.RecordBytes:], uint64(rng.Int63()))
	}
	return buf
}

// waitDone polls a job to a terminal state.
func waitDone(t *testing.T, m *Manager, id string) View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if v.State.terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return View{}
}

// streamResult reads a job's full verified result.
func streamResult(t *testing.T, m *Manager, id string) []byte {
	t.Helper()
	r, _, err := m.OpenResult(id)
	if err != nil {
		t.Fatalf("open result: %v", err)
	}
	defer r.Close()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("stream result: %v", err)
	}
	return b
}

// TestRestartRecovery is the in-process kill-restart drill `make verify`
// runs (the out-of-process SIGKILL variant is scripts/restart-soak.sh):
// a journaled manager uploads a dataset and finishes a job; a fake
// in-flight job and stray temp files simulate a crash mid-sort; a
// second manager over the same spill directory must re-register the
// dataset and the byte-identical result, fail the in-flight job with a
// client-visible restart reason, remove the orphans, and detect
// deliberate corruption of the recovered result.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	const n = 40_000
	payload := recoveryDataset(n, 1)

	m1, err := New(Config{Dir: dir, MemoryRecords: 4096, GCInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := m1.CreateDataset(bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	v, err := m1.Submit("sortfile", ds.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, m1, v.ID); got.State != Done {
		t.Fatalf("job ended %s: %s", got.State, got.Error)
	}
	want := streamResult(t, m1, v.ID)
	if !sorted(want) {
		t.Fatal("result is not sorted")
	}

	// Simulate a crash mid-job: journal records for a job that never
	// reached a terminal state, plus the partial files it would leave.
	// (m1's graceful Close writes nothing for this fake job, so to the
	// journal it looks exactly like a SIGKILL mid-sort.)
	fake := record{T: recAccepted, ID: "job-fake-1", JobType: "sortfile", Dataset: ds.ID, Records: n}
	if err := m1.jnl.append(fake); err != nil {
		t.Fatal(err)
	}
	fake.T = recRunning
	if err := m1.jnl.append(fake); err != nil {
		t.Fatal(err)
	}
	for _, orphan := range []string{"job-fake-1.result.tmp", "job-fake-1.scratch", "stray.bin"} {
		if err := os.WriteFile(filepath.Join(dir, orphan), []byte("partial"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	// A torn final journal line — the classic crash artifact.
	jf, err := os.OpenFile(filepath.Join(dir, journalName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.WriteString(`{"t":"job-acc`); err != nil {
		t.Fatal(err)
	}
	jf.Close()
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart.
	m2, err := New(Config{Dir: dir, MemoryRecords: 4096, GCInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()

	if _, ok := m2.GetDataset(ds.ID); !ok {
		t.Fatal("dataset not recovered")
	}
	got, ok := m2.Get(v.ID)
	if !ok || got.State != Done {
		t.Fatalf("done job not recovered: ok=%v state=%v", ok, got.State)
	}
	if b := streamResult(t, m2, v.ID); !bytes.Equal(b, want) {
		t.Fatal("recovered result is not byte-identical")
	}
	fk, ok := m2.Get("job-fake-1")
	if !ok {
		t.Fatal("in-flight job vanished instead of failing")
	}
	if fk.State != Failed || !strings.Contains(fk.Error, "restart") {
		t.Fatalf("in-flight job: state=%s error=%q, want failed(restart)", fk.State, fk.Error)
	}
	for _, orphan := range []string{"job-fake-1.result.tmp", "job-fake-1.scratch", "stray.bin"} {
		if _, err := os.Stat(filepath.Join(dir, orphan)); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived recovery", orphan)
		}
	}
	snap := m2.Snapshot().Durability
	if !snap.JournalEnabled {
		t.Fatal("journal not enabled")
	}
	if snap.JournalReplayed == 0 || snap.RecoveredDatasets != 1 || snap.RecoveredResults != 1 ||
		snap.RecoveredFailed != 1 || snap.OrphansRemoved != 3 {
		t.Fatalf("durability counters off: %+v", snap)
	}

	// The recovered dataset is still usable for new work.
	v2, err := m2.Submit("sortfile", ds.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, m2, v2.ID); got.State != Done {
		t.Fatalf("post-restart job ended %s: %s", got.State, got.Error)
	}
	if b := streamResult(t, m2, v2.ID); !bytes.Equal(b, want) {
		t.Fatal("post-restart sort differs")
	}

	// Corrupt the recovered result on disk: streaming must fail with a
	// typed corruption error and bump corruption_detected_total.
	resPath := filepath.Join(dir, v.ID+".result")
	raw, err := os.ReadFile(resPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(resPath, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	r, _, err := m2.OpenResult(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	_, cerr := io.ReadAll(r)
	r.Close()
	if !errors.Is(cerr, extsort.ErrCorrupt) {
		t.Fatalf("corrupted result streamed without a typed error: %v", cerr)
	}
	if c := m2.Snapshot().Durability.CorruptionDetected; c == 0 {
		t.Fatal("corruption_detected_total not incremented")
	}
}

// TestRestartRecoveryDamagedResult covers the uglier crash: the journal
// committed job-done but the result file itself was lost — the job must
// come back failed with a restart reason, not done with a 404 body.
func TestRestartRecoveryDamagedResult(t *testing.T) {
	dir := t.TempDir()
	payload := recoveryDataset(10_000, 2)
	m1, err := New(Config{Dir: dir, MemoryRecords: 4096, GCInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := m1.CreateDataset(bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	v, err := m1.Submit("sortfile", ds.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, m1, v.ID); got.State != Done {
		t.Fatalf("job ended %s: %s", got.State, got.Error)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, v.ID+".result")); err != nil {
		t.Fatal(err)
	}

	m2, err := New(Config{Dir: dir, MemoryRecords: 4096, GCInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	got, ok := m2.Get(v.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	if got.State != Failed || !strings.Contains(got.Error, "restart") {
		t.Fatalf("lost result: state=%s error=%q, want failed(restart)", got.State, got.Error)
	}
	snap := m2.Snapshot().Durability
	if snap.CorruptionDetected == 0 {
		t.Fatal("lost result not counted as corruption")
	}
}

// TestJournalDisabled confirms -journal=false leaves the spill dir
// journal-free while everything else keeps working.
func TestJournalDisabled(t *testing.T) {
	dir := t.TempDir()
	m, err := New(Config{Dir: dir, MemoryRecords: 4096, DisableJournal: true, GCInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.CreateDataset(bytes.NewReader(recoveryDataset(1000, 3))); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, journalName)); !os.IsNotExist(err) {
		t.Fatal("journal written despite DisableJournal")
	}
	if m.Snapshot().Durability.JournalEnabled {
		t.Fatal("snapshot claims journal enabled")
	}
}

// sorted reports whether a little-endian record buffer is non-decreasing.
func sorted(b []byte) bool {
	var prev int64
	for i := 0; i+extsort.RecordBytes <= len(b); i += extsort.RecordBytes {
		v := int64(binary.LittleEndian.Uint64(b[i:]))
		if i > 0 && v < prev {
			return false
		}
		prev = v
	}
	return true
}
