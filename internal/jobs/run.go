package jobs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"mergepath/internal/extsort"
)

// copyShare is the fraction of a job's progress bar assigned to the
// copy-in phase (dataset file -> result file). The external sort's own
// (done, total) accounting fills the remaining 1-copyShare, so progress
// is monotone across the phase boundary by construction.
const copyShare = 0.1

// copyChunkBytes is the copy-in I/O granularity; the job context is
// checked between chunks so cancellation lands promptly.
const copyChunkBytes = 1 << 18

// mathFloat and mathBits convert between the atomic progress cell's
// uint64 representation and the float64 it stores.
func mathFloat(bits uint64) float64 { return math.Float64frombits(bits) }
func mathBits(f float64) uint64     { return math.Float64bits(f) }

// worker consumes the bounded queue until Close; one goroutine per
// MaxConcurrent slot.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

// runJob executes one sortfile job: copy the dataset to the result file,
// external-sort the result file in place under the memory budget, and
// finalize. Any error, panic or cancellation lands the job in the right
// terminal state with its temp files cleaned up.
func (m *Manager) runJob(j *job) {
	m.mu.Lock()
	if j.state != Pending {
		// Canceled while queued; Cancel already finalized it.
		m.mu.Unlock()
		return
	}
	j.state = Running
	j.started = time.Now()
	m.pending--
	m.running++
	j.spans = append(j.spans, Span{Name: "queue_wait", StartMS: 0, DurMS: millis(j.started.Sub(j.created))})
	m.mu.Unlock()
	m.jnl.append(record{T: recRunning, ID: j.id, JobType: j.typ, Dataset: j.datasetID, Records: j.records})

	// The sort runs against a .result.tmp file; only after the sorted
	// data is fsynced and checksummed is it renamed to .result, and only
	// after the rename does the journal commit the job as done. A crash
	// in any window leaves either a tmp file (orphan, GC'd at restart)
	// or a result the journal does not vouch for (same) — never a
	// half-written file a client can stream.
	resultPath := filepath.Join(m.dir, j.id+".result")
	tmpPath := resultPath + ".tmp"
	scratchPath := filepath.Join(m.dir, j.id+".scratch")
	cleanup := func() {
		m.removeFile(tmpPath)
		m.removeFile(scratchPath)
	}
	defer func() {
		if r := recover(); r != nil {
			cleanup()
			m.mu.Lock()
			post := m.finalizeLocked(j, Failed, fmt.Errorf("jobs: panic: %v", r))
			m.mu.Unlock()
			if post != nil {
				post()
			}
		}
	}()

	err := m.execute(j, tmpPath, scratchPath)
	if err == nil {
		err = m.sealResult(tmpPath, resultPath)
	}
	state := Done
	if err != nil {
		cleanup()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			state = Canceled
		} else {
			state = Failed
		}
	}
	m.mu.Lock()
	if state == Done {
		j.resultPath = resultPath
		j.resultBytes = int64(j.records) * extsort.RecordBytes
	}
	post := m.finalizeLocked(j, state, err)
	m.mu.Unlock()
	if post != nil {
		post()
	}
}

// sealResult publishes a finished sort atomically: fsync the sorted
// tmp file (per policy), write its checksum sidecar, rename sidecar
// then data into place, and fsync the directory. After sealResult
// returns the result is streamable and verifiable; the journal's
// job-done record (appended by finalize) is what commits it against
// restart.
func (m *Manager) sealResult(tmpPath, resultPath string) error {
	sync := m.cfg.Fsync != FsyncNever
	if sync {
		f, err := os.OpenFile(tmpPath, os.O_WRONLY, 0)
		if err != nil {
			return fmt.Errorf("jobs: seal result: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("jobs: seal result fsync: %w", err)
		}
		m.fsyncs.Add(1)
		if err := f.Close(); err != nil {
			return fmt.Errorf("jobs: seal result: %w", err)
		}
	}
	if _, err := extsort.WriteChecksumFile(tmpPath, m.cfg.BlockRecords, sync); err != nil {
		return fmt.Errorf("jobs: seal result: %w", err)
	}
	if sync {
		m.fsyncs.Add(1) // the sidecar fsync inside WriteChecksumFile
	}
	// Sidecar first: a visible .result always has its .crc.
	if err := os.Rename(tmpPath+extsort.ChecksumSuffix, resultPath+extsort.ChecksumSuffix); err != nil {
		return fmt.Errorf("jobs: seal result: %w", err)
	}
	if err := os.Rename(tmpPath, resultPath); err != nil {
		os.Remove(resultPath + extsort.ChecksumSuffix)
		return fmt.Errorf("jobs: seal result: %w", err)
	}
	if sync {
		m.syncDir()
	}
	return nil
}

// execute is the fallible body of runJob. On success the sorted (but
// not yet sealed) result is at resultPath — the caller's .result.tmp —
// and the scratch file is already removed.
func (m *Manager) execute(j *job, resultPath, scratchPath string) error {
	if inj := m.cfg.Fault; inj != nil {
		if err := inj.Before("job"); err != nil {
			return err
		}
	}
	setPhase := func(name string) {
		p := name
		j.phase.Store(&p)
	}

	setPhase("copy_in")
	copyStart := time.Now()
	if err := m.copyIn(j, resultPath); err != nil {
		return err
	}
	m.addSpan(j, Span{
		Name:    "copy_in",
		StartMS: millis(copyStart.Sub(j.created)),
		DurMS:   millis(time.Since(copyStart)),
	})
	j.bumpProgress(copyShare)

	dev, err := extsort.OpenFileDevice(resultPath, m.cfg.BlockRecords)
	if err != nil {
		return err
	}
	defer dev.Close()
	dev.SetFault(m.cfg.Fault)
	scratch, err := extsort.CreateFileDevice(scratchPath, j.records, m.cfg.BlockRecords)
	if err != nil {
		return err
	}
	// The scratch file is pure temp state: remove it on every exit path.
	defer scratch.Remove()
	scratch.SetFault(m.cfg.Fault)

	if inj := m.cfg.Fault; inj != nil {
		if err := inj.Before("sortfile"); err != nil {
			return err
		}
	}

	// Track extsort phase transitions into job spans, and map the
	// engine's record accounting onto the job's progress bar.
	var curPhase string
	var phaseStart time.Time
	stats, err := extsort.Sort[int64](j.ctx, dev, scratch, j.records, extsort.Config{
		MemoryRecords: m.cfg.MemoryRecords,
		Workers:       m.cfg.Workers,
		FanIn:         m.cfg.FanIn,
		KWay:          m.cfg.KWay,
		Progress: func(done, total int64, phase string) {
			if phase != curPhase {
				now := time.Now()
				if curPhase != "" {
					m.addSpan(j, Span{
						Name:    curPhase,
						StartMS: millis(phaseStart.Sub(j.created)),
						DurMS:   millis(now.Sub(phaseStart)),
					})
				}
				curPhase, phaseStart = phase, now
				setPhase(phase)
			}
			if total > 0 {
				j.bumpProgress(copyShare + (1-copyShare)*float64(done)/float64(total))
			}
		},
	})
	if curPhase != "" {
		m.addSpan(j, Span{
			Name:    curPhase,
			StartMS: millis(phaseStart.Sub(j.created)),
			DurMS:   millis(time.Since(phaseStart)),
		})
	}
	if err != nil {
		return err
	}
	m.blockReads.Add(stats.BlockReads)
	m.blockWrites.Add(stats.BlockWrites)
	m.mu.Lock()
	j.stats = &stats
	m.mu.Unlock()
	return dev.Close()
}

// copyIn streams the dataset file into the job's tmp result file in
// chunks through the checksum-verifying reader — a dataset rotted on
// disk fails the job with a typed corruption error instead of sorting
// garbage — checking the job context between chunks and feeding the
// copy-in share of the progress bar.
func (m *Manager) copyIn(j *job, resultPath string) error {
	src, err := extsort.OpenVerifiedReader(j.dsPath)
	if err != nil {
		if errors.Is(err, extsort.ErrCorrupt) {
			m.corruption.Add(1)
		}
		return fmt.Errorf("jobs: open dataset: %w", err)
	}
	defer src.Close()
	src.SetFault(m.cfg.Fault)
	dst, err := os.OpenFile(resultPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("jobs: create result: %w", err)
	}
	total := int64(j.records) * extsort.RecordBytes
	var copied int64
	buf := make([]byte, copyChunkBytes)
	for {
		if err := j.ctx.Err(); err != nil {
			dst.Close()
			return err
		}
		n, rerr := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				dst.Close()
				return fmt.Errorf("jobs: copy-in: %w", werr)
			}
			copied += int64(n)
			if total > 0 {
				j.bumpProgress(copyShare * float64(copied) / float64(total))
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			dst.Close()
			if errors.Is(rerr, extsort.ErrCorrupt) {
				m.corruption.Add(1)
			}
			return fmt.Errorf("jobs: copy-in: %w", rerr)
		}
	}
	if copied != total {
		dst.Close()
		return fmt.Errorf("jobs: dataset changed size mid-copy: have %d bytes, want %d", copied, total)
	}
	return dst.Close()
}

// addSpan appends a finished phase timing under the manager lock.
func (m *Manager) addSpan(j *job, s Span) {
	m.mu.Lock()
	j.spans = append(j.spans, s)
	m.mu.Unlock()
}
