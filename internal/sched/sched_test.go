package sched

import (
	"sync/atomic"
	"testing"
)

func TestLinearChainRunsInOrder(t *testing.T) {
	var g Graph
	var order []int
	var prev *Task
	for i := 0; i < 10; i++ {
		i := i
		if prev == nil {
			prev = g.Add(func() { order = append(order, i) })
		} else {
			prev = g.Add(func() { order = append(order, i) }, prev)
		}
	}
	g.Run(4) // chain forces sequential execution; appends are safe
	if len(order) != 10 {
		t.Fatalf("ran %d tasks", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v", order)
		}
	}
}

func TestDiamondDependencies(t *testing.T) {
	var g Graph
	var state atomic.Int32
	a := g.Add(func() { state.Add(1) })
	b := g.Add(func() {
		if state.Load() < 1 {
			t.Error("b ran before a")
		}
		state.Add(10)
	}, a)
	c := g.Add(func() {
		if state.Load() < 1 {
			t.Error("c ran before a")
		}
		state.Add(100)
	}, a)
	g.Add(func() {
		if got := state.Load(); got != 111 {
			t.Errorf("d ran before b and c: state %d", got)
		}
	}, b, c)
	g.Run(3)
}

func TestAllTasksRunExactlyOnce(t *testing.T) {
	var g Graph
	var count atomic.Int64
	var layer []*Task
	for i := 0; i < 50; i++ {
		layer = append(layer, g.Add(func() { count.Add(1) }))
	}
	for len(layer) > 1 {
		var next []*Task
		for i := 0; i+1 < len(layer); i += 2 {
			next = append(next, g.Add(func() { count.Add(1) }, layer[i], layer[i+1]))
		}
		if len(layer)%2 == 1 {
			next = append(next, layer[len(layer)-1])
		}
		layer = next
	}
	total := g.Len()
	g.Run(8)
	if int(count.Load()) != total {
		t.Fatalf("ran %d of %d tasks", count.Load(), total)
	}
}

func TestEmptyGraph(t *testing.T) {
	var g Graph
	g.Run(2) // no-op
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"nil-body": func() { var g Graph; g.Add(nil) },
		"nil-dep":  func() { var g Graph; g.Add(func() {}, nil) },
		"w0":       func() { var g Graph; g.Add(func() {}); g.Run(0) },
		"cycle": func() {
			var g Graph
			a := g.Add(func() {})
			b := g.Add(func() {}, a)
			// Illegal back-edge: forge a cycle by appending by hand.
			b.succs = append(b.succs, a)
			a.pending++
			g.Run(2)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHighFanout(t *testing.T) {
	var g Graph
	var count atomic.Int64
	root := g.Add(func() { count.Add(1) })
	for i := 0; i < 500; i++ {
		g.Add(func() { count.Add(1) }, root)
	}
	g.Run(16)
	if count.Load() != 501 {
		t.Fatalf("ran %d", count.Load())
	}
}
