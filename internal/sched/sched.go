// Package sched is a fixed-worker, dependency-counting task scheduler —
// the execution model of the Plurality Hypercore the paper reports results
// on in §VI ("a many-core architecture ... that supports fine-grain
// task-level parallelism"). The paper's algorithms are expressed there as
// small tasks with data dependencies rather than fork/join rounds; this
// package provides that substrate so the dataflow formulation of the
// merge sort (psort.SortDataflow) can be built and compared against the
// barrier-per-round formulation.
//
// Usage: build a Graph of tasks with Add (declaring dependencies), then
// Run it on w workers. Tasks whose dependency count reaches zero become
// ready; workers drain the ready queue until every task has run. The
// scheduler itself is deliberately simple — a single shared ready queue,
// no stealing, no priorities — because its role is structural, not
// performance-tuned.
package sched

import "sync"

// Task is a node in a Graph. Created by Graph.Add.
type Task struct {
	run     func()
	pending int
	succs   []*Task
}

// Graph is a DAG of tasks under construction. The zero value is usable.
type Graph struct {
	tasks []*Task
}

// Add creates a task executing run after every task in deps has finished.
// Dependencies must already belong to the graph; Add must not be called
// concurrently with Run.
func (g *Graph) Add(run func(), deps ...*Task) *Task {
	if run == nil {
		panic("sched: nil task body")
	}
	t := &Task{run: run, pending: len(deps)}
	for _, d := range deps {
		if d == nil {
			panic("sched: nil dependency")
		}
		d.succs = append(d.succs, t)
	}
	g.tasks = append(g.tasks, t)
	return t
}

// Len reports the number of tasks in the graph.
func (g *Graph) Len() int { return len(g.tasks) }

// Run executes the graph on w workers and blocks until every task has
// finished. It panics if w < 1 or if the graph has no runnable task while
// unfinished tasks remain (a dependency cycle).
func (g *Graph) Run(w int) {
	if w < 1 {
		panic("sched: need at least one worker")
	}
	n := len(g.tasks)
	if n == 0 {
		return
	}
	// Validate acyclicity up front (Kahn's algorithm on scratch counts) so
	// a malformed graph panics instead of deadlocking the workers.
	scratch := make(map[*Task]int, n)
	queue := make([]*Task, 0, n)
	for _, t := range g.tasks {
		scratch[t] = t.pending
		if t.pending == 0 {
			queue = append(queue, t)
		}
	}
	processed := 0
	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		processed++
		for _, s := range t.succs {
			scratch[s]--
			if scratch[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if processed != n {
		panic("sched: dependency cycle")
	}

	ready := make(chan *Task, n)
	for _, t := range g.tasks {
		if t.pending == 0 {
			ready <- t
		}
	}

	var mu sync.Mutex
	remaining := n
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case t := <-ready:
					t.run()
					mu.Lock()
					for _, s := range t.succs {
						s.pending--
						if s.pending == 0 {
							ready <- s
						}
					}
					remaining--
					finished := remaining == 0
					mu.Unlock()
					if finished {
						close(done)
						return
					}
				case <-done:
					return
				}
			}
		}()
	}
	wg.Wait()
	if remaining != 0 {
		panic("sched: deadlock — tasks remained blocked (dependency cycle)")
	}
	// Reset for idempotent re-Run misuse detection: graphs are single-shot.
	g.tasks = nil
}
