// Package verify provides correctness oracles for the merge and sort
// implementations: sortedness checks, multiset-permutation checks, and a
// reference stable merge to compare against. Every parallel algorithm in
// this repository is validated against these oracles in its tests.
package verify

import "cmp"

// Sorted reports whether s is sorted in non-decreasing order.
func Sorted[T cmp.Ordered](s []T) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

// SortedFunc reports whether s is sorted under less.
func SortedFunc[T any](s []T, less func(x, y T) bool) bool {
	for i := 1; i < len(s); i++ {
		if less(s[i], s[i-1]) {
			return false
		}
	}
	return true
}

// FirstUnsorted returns the index i of the first element with s[i] < s[i-1],
// or -1 if s is sorted. Useful in test failure messages.
func FirstUnsorted[T cmp.Ordered](s []T) int {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return i
		}
	}
	return -1
}

// SameMultiset reports whether got and want contain exactly the same
// elements with the same multiplicities.
func SameMultiset[T comparable](got, want []T) bool {
	if len(got) != len(want) {
		return false
	}
	counts := make(map[T]int, len(want))
	for _, v := range want {
		counts[v]++
	}
	for _, v := range got {
		counts[v]--
		if counts[v] < 0 {
			return false
		}
	}
	return true
}

// IsMergeOf reports whether out is a correct merge of sorted inputs a and b:
// sorted, and a multiset-permutation of a followed by b.
func IsMergeOf[T cmp.Ordered](out, a, b []T) bool {
	if len(out) != len(a)+len(b) {
		return false
	}
	if !Sorted(out) {
		return false
	}
	joined := make([]T, 0, len(a)+len(b))
	joined = append(joined, a...)
	joined = append(joined, b...)
	return SameMultiset(out, joined)
}

// ReferenceMerge is an independent, deliberately simple stable merge used as
// the oracle for output-equality checks (ties taken from a first). It is
// written differently from core.Merge (index arithmetic instead of
// three-loop draining) so that a shared bug is less likely.
func ReferenceMerge[T cmp.Ordered](a, b []T) []T {
	out := make([]T, len(a)+len(b))
	i, j := 0, 0
	for k := range out {
		takeA := i < len(a) && (j >= len(b) || a[i] <= b[j])
		if takeA {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
	}
	return out
}

// Equal reports whether two slices are element-wise identical.
func Equal[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Tagged wraps a value with its provenance (source array and original
// index) so stability can be asserted through comparison-function based
// merges: two Tagged values compare only on Key.
type Tagged struct {
	Key    int
	Source int // 0 = array a, 1 = array b
	Index  int // index within the source array
}

// TaggedLess orders Tagged values by Key only, making equal keys
// indistinguishable to the algorithm under test.
func TaggedLess(x, y Tagged) bool { return x.Key < y.Key }

// Tag converts keys into Tagged values recording source s.
func Tag(keys []int, s int) []Tagged {
	out := make([]Tagged, len(keys))
	for i, k := range keys {
		out[i] = Tagged{Key: k, Source: s, Index: i}
	}
	return out
}

// StableMergeOrder reports whether the merged Tagged sequence respects
// stability: among equal keys, all elements of source 0 precede those of
// source 1, and within each source original indices are increasing.
func StableMergeOrder(out []Tagged) bool {
	for i := 1; i < len(out); i++ {
		prev, cur := out[i-1], out[i]
		if cur.Key < prev.Key {
			return false
		}
		if cur.Key == prev.Key {
			if prev.Source > cur.Source {
				return false
			}
			if prev.Source == cur.Source && prev.Index >= cur.Index {
				return false
			}
		}
	}
	return true
}

// StableSortOrder reports whether the sorted Tagged sequence respects
// stability for a single-source sort: among equal keys, original indices
// are strictly increasing.
func StableSortOrder(out []Tagged) bool {
	for i := 1; i < len(out); i++ {
		prev, cur := out[i-1], out[i]
		if cur.Key < prev.Key {
			return false
		}
		if cur.Key == prev.Key && prev.Index >= cur.Index {
			return false
		}
	}
	return true
}
