package verify

import (
	"testing"
	"testing/quick"
)

func TestSorted(t *testing.T) {
	cases := []struct {
		s    []int
		want bool
	}{
		{nil, true},
		{[]int{1}, true},
		{[]int{1, 1, 2}, true},
		{[]int{2, 1}, false},
		{[]int{1, 3, 2, 4}, false},
	}
	for _, c := range cases {
		if got := Sorted(c.s); got != c.want {
			t.Errorf("Sorted(%v) = %v", c.s, got)
		}
	}
}

func TestSortedFunc(t *testing.T) {
	desc := func(x, y int) bool { return x > y }
	if !SortedFunc([]int{3, 2, 1}, desc) {
		t.Error("descending order under reversed less should be sorted")
	}
	if SortedFunc([]int{1, 2}, desc) {
		t.Error("ascending under reversed less should not be sorted")
	}
}

func TestFirstUnsorted(t *testing.T) {
	if got := FirstUnsorted([]int{1, 2, 3}); got != -1 {
		t.Errorf("sorted slice: %d", got)
	}
	if got := FirstUnsorted([]int{1, 3, 2, 0}); got != 2 {
		t.Errorf("first violation: %d", got)
	}
	if got := FirstUnsorted([]int{}); got != -1 {
		t.Errorf("empty: %d", got)
	}
}

func TestSameMultiset(t *testing.T) {
	if !SameMultiset([]int{1, 2, 2}, []int{2, 1, 2}) {
		t.Error("permutation not recognized")
	}
	if SameMultiset([]int{1, 2, 2}, []int{1, 1, 2}) {
		t.Error("different multiplicities accepted")
	}
	if SameMultiset([]int{1}, []int{1, 1}) {
		t.Error("different lengths accepted")
	}
	if !SameMultiset([]int{}, []int{}) {
		t.Error("empty sets differ")
	}
}

func TestIsMergeOf(t *testing.T) {
	a := []int{1, 3}
	b := []int{2}
	if !IsMergeOf([]int{1, 2, 3}, a, b) {
		t.Error("valid merge rejected")
	}
	if IsMergeOf([]int{1, 3, 2}, a, b) {
		t.Error("unsorted output accepted")
	}
	if IsMergeOf([]int{1, 2, 4}, a, b) {
		t.Error("wrong elements accepted")
	}
	if IsMergeOf([]int{1, 2}, a, b) {
		t.Error("short output accepted")
	}
}

func TestReferenceMergeProperties(t *testing.T) {
	f := func(rawA, rawB []int) bool {
		a := append([]int(nil), rawA...)
		b := append([]int(nil), rawB...)
		insertionSort(a)
		insertionSort(b)
		out := ReferenceMerge(a, b)
		return IsMergeOf(out, a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReferenceMergeTieRule(t *testing.T) {
	// Equal values: all of a's must precede b's. Verified with Tagged.
	a := Tag([]int{5, 5}, 0)
	b := Tag([]int{5}, 1)
	out := make([]Tagged, 0, 3)
	// ReferenceMerge needs cmp.Ordered; emulate via the explicit rule on
	// raw keys and check Tagged ordering through StableMergeOrder instead.
	i, j := 0, 0
	for len(out) < 3 {
		takeA := i < len(a) && (j >= len(b) || a[i].Key <= b[j].Key)
		if takeA {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	if !StableMergeOrder(out) {
		t.Fatalf("tie rule broken: %+v", out)
	}
}

func TestEqual(t *testing.T) {
	if !Equal([]int{1, 2}, []int{1, 2}) {
		t.Error("equal slices differ")
	}
	if Equal([]int{1, 2}, []int{2, 1}) {
		t.Error("different slices equal")
	}
	if Equal([]int{1}, []int{1, 2}) {
		t.Error("different lengths equal")
	}
	if !Equal([]int{}, []int{}) {
		t.Error("empty slices differ")
	}
}

func TestTagAndTaggedLess(t *testing.T) {
	tags := Tag([]int{9, 3}, 1)
	if len(tags) != 2 || tags[0].Key != 9 || tags[0].Source != 1 || tags[1].Index != 1 {
		t.Fatalf("tags %+v", tags)
	}
	if !TaggedLess(tags[1], tags[0]) || TaggedLess(tags[0], tags[1]) {
		t.Error("TaggedLess wrong")
	}
	if TaggedLess(tags[0], tags[0]) {
		t.Error("irreflexivity broken")
	}
}

func TestStableMergeOrder(t *testing.T) {
	good := []Tagged{
		{Key: 1, Source: 0, Index: 0},
		{Key: 1, Source: 0, Index: 1},
		{Key: 1, Source: 1, Index: 0},
		{Key: 2, Source: 1, Index: 1},
	}
	if !StableMergeOrder(good) {
		t.Error("stable order rejected")
	}
	badSource := []Tagged{
		{Key: 1, Source: 1, Index: 0},
		{Key: 1, Source: 0, Index: 0},
	}
	if StableMergeOrder(badSource) {
		t.Error("source inversion accepted")
	}
	badIndex := []Tagged{
		{Key: 1, Source: 0, Index: 1},
		{Key: 1, Source: 0, Index: 0},
	}
	if StableMergeOrder(badIndex) {
		t.Error("index inversion accepted")
	}
	badKey := []Tagged{
		{Key: 2, Source: 0, Index: 0},
		{Key: 1, Source: 0, Index: 1},
	}
	if StableMergeOrder(badKey) {
		t.Error("key inversion accepted")
	}
}

func TestStableSortOrder(t *testing.T) {
	good := []Tagged{
		{Key: 1, Index: 3},
		{Key: 1, Index: 5},
		{Key: 2, Index: 0},
	}
	if !StableSortOrder(good) {
		t.Error("stable sort order rejected")
	}
	bad := []Tagged{
		{Key: 1, Index: 5},
		{Key: 1, Index: 3},
	}
	if StableSortOrder(bad) {
		t.Error("index inversion accepted")
	}
}

func insertionSort(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
