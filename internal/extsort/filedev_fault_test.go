package extsort

import (
	"errors"
	"io"
	"path/filepath"
	"testing"

	"mergepath/internal/fault"
)

// TestFileDeviceFaultTable drives every disk fault op through FileDevice
// and asserts each surfaces as a typed *DeviceError — never a silently
// truncated or wrong-length operation.
func TestFileDeviceFaultTable(t *testing.T) {
	cases := []struct {
		name string
		spec string
		call func(d *FileDevice) error
		op   string // expected DeviceError.Op
		is   error  // expected errors.Is target (nil = skip)
	}{
		{
			name: "enospc on write",
			spec: FaultOpENOSPC + ":error=1",
			call: func(d *FileDevice) error { return d.Write(0, make([]int64, 64)) },
			op:   "write",
			is:   fault.ErrInjected,
		},
		{
			name: "short write",
			spec: FaultOpShortWrite + ":error=1",
			call: func(d *FileDevice) error { return d.Write(0, make([]int64, 64)) },
			op:   "write",
			is:   io.ErrShortWrite,
		},
		{
			name: "read io error",
			spec: FaultOpRead + ":error=1",
			call: func(d *FileDevice) error { return d.Read(0, make([]int64, 64)) },
			op:   "read",
			is:   fault.ErrInjected,
		},
		{
			name: "sync failure",
			spec: FaultOpSync + ":error=1",
			call: func(d *FileDevice) error { return d.Sync() },
			op:   "sync",
			is:   fault.ErrInjected,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := CreateFileDevice(filepath.Join(t.TempDir(), "dev.bin"), 256, 64)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			inj, err := fault.Parse(tc.spec, 1)
			if err != nil {
				t.Fatal(err)
			}
			d.SetFault(inj)
			err = tc.call(d)
			var de *DeviceError
			if !errors.As(err, &de) {
				t.Fatalf("want *DeviceError, got %v", err)
			}
			if de.Op != tc.op {
				t.Fatalf("Op = %q, want %q", de.Op, tc.op)
			}
			if tc.is != nil && !errors.Is(err, tc.is) {
				t.Fatalf("error %v does not wrap %v", err, tc.is)
			}
			// A failed op must not be charged as successful I/O.
			reads, writes := d.Stats()
			if reads != 0 || writes != 0 {
				t.Fatalf("failed op charged I/O: reads=%d writes=%d", reads, writes)
			}
		})
	}
}

// TestShortWriteNeverSilentlyTruncates proves the torn-write fault is a
// loud failure: after an injected short write the caller gets a typed
// error, and retrying the full write (fault cleared) restores an intact
// run — the device never pretends the prefix was a complete write.
func TestShortWriteNeverSilentlyTruncates(t *testing.T) {
	d, err := CreateFileDevice(filepath.Join(t.TempDir(), "dev.bin"), 128, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	src := make([]int64, 128)
	for i := range src {
		src[i] = int64(i * 3)
	}
	inj, err := fault.Parse(FaultOpShortWrite+":error=1", 2)
	if err != nil {
		t.Fatal(err)
	}
	d.SetFault(inj)
	werr := d.Write(0, src)
	if !errors.Is(werr, io.ErrShortWrite) {
		t.Fatalf("torn write not reported: %v", werr)
	}
	// The caller's contract after an error: the range is unwritten.
	// Clear the fault and rewrite; the device must hold the full run.
	inj.SetEnabled(false)
	if err := d.Write(0, src); err != nil {
		t.Fatalf("retry after torn write: %v", err)
	}
	got := make([]int64, 128)
	if err := d.Read(0, got); err != nil {
		t.Fatalf("readback: %v", err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("record %d = %d, want %d (truncated run leaked)", i, got[i], src[i])
		}
	}
}

// TestFlipFaultIsSilentAtDeviceLevel documents the threat model: a
// read-side bit flip at the raw device is NOT detectable by FileDevice
// itself (no error), which is precisely why sealed files carry sidecar
// checksums — see TestVerifiedReaderCatchesInjectedFlip.
func TestFlipFaultIsSilentAtDeviceLevel(t *testing.T) {
	d, err := CreateFileDevice(filepath.Join(t.TempDir(), "dev.bin"), 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	src := make([]int64, 64)
	for i := range src {
		src[i] = int64(i)
	}
	if err := d.Write(0, src); err != nil {
		t.Fatal(err)
	}
	inj, err := fault.Parse(FaultOpFlip+":error=1", 3)
	if err != nil {
		t.Fatal(err)
	}
	d.SetFault(inj)
	got := make([]int64, 64)
	if err := d.Read(0, got); err != nil {
		t.Fatalf("flip must be silent at this layer, got %v", err)
	}
	if got[0] == src[0] {
		t.Fatal("flip fault did not corrupt the read")
	}
}
