package extsort

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync/atomic"
)

// RecordBytes is the on-disk size of one int64 record (little-endian).
const RecordBytes = 8

// DefaultFileBlockRecords is the default block size of a FileDevice:
// 4 KiB of records, matching a common filesystem block.
const DefaultFileBlockRecords = 4096 / RecordBytes

// FileDevice is a Device[int64] backed by a real file: records are 8-byte
// little-endian integers addressed by record offset, and every read or
// write is charged in whole blocks like the in-memory BlockDevice — so
// the external sort's I/O accounting holds whether the "next memory
// level" is simulated or a real disk. Read/Write are not safe for
// concurrent use (the sort engine is single-threaded at the I/O layer);
// the I/O counters are atomic so metrics may sample them concurrently.
type FileDevice struct {
	f            *os.File
	path         string
	blockRecords int
	capacity     int
	reads        atomic.Uint64
	writes       atomic.Uint64
	buf          []byte // reused encode/decode scratch
}

// CreateFileDevice creates (or truncates) a file device at path holding
// capacity records. blockRecords <= 0 selects DefaultFileBlockRecords.
func CreateFileDevice(path string, capacity, blockRecords int) (*FileDevice, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("extsort: negative capacity %d", capacity)
	}
	if blockRecords <= 0 {
		blockRecords = DefaultFileBlockRecords
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, fmt.Errorf("extsort: create device: %w", err)
	}
	if err := f.Truncate(int64(capacity) * RecordBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("extsort: size device: %w", err)
	}
	return &FileDevice{f: f, path: path, blockRecords: blockRecords, capacity: capacity}, nil
}

// OpenFileDevice opens an existing record file as a device; its capacity
// is the file size in records. The file length must be a whole number of
// records. blockRecords <= 0 selects DefaultFileBlockRecords.
func OpenFileDevice(path string, blockRecords int) (*FileDevice, error) {
	if blockRecords <= 0 {
		blockRecords = DefaultFileBlockRecords
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("extsort: open device: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("extsort: stat device: %w", err)
	}
	if fi.Size()%RecordBytes != 0 {
		f.Close()
		return nil, fmt.Errorf("extsort: %s: size %d is not a whole number of %d-byte records", path, fi.Size(), RecordBytes)
	}
	return &FileDevice{f: f, path: path, blockRecords: blockRecords, capacity: int(fi.Size() / RecordBytes)}, nil
}

// Capacity returns the device size in records.
func (d *FileDevice) Capacity() int { return d.capacity }

// BlockRecords returns the block size in records.
func (d *FileDevice) BlockRecords() int { return d.blockRecords }

// Path returns the backing file's path.
func (d *FileDevice) Path() string { return d.path }

// scratch returns the reused byte buffer grown to n records.
func (d *FileDevice) scratch(n int) []byte {
	if cap(d.buf) < n*RecordBytes {
		d.buf = make([]byte, n*RecordBytes)
	}
	return d.buf[:n*RecordBytes]
}

// Read copies len(dst) records starting at record offset off into dst,
// charging block reads.
func (d *FileDevice) Read(off int, dst []int64) error {
	if off < 0 || off+len(dst) > d.capacity {
		return fmt.Errorf("extsort: read [%d,%d) outside device of %d records", off, off+len(dst), d.capacity)
	}
	if len(dst) == 0 {
		return nil
	}
	buf := d.scratch(len(dst))
	if _, err := d.f.ReadAt(buf, int64(off)*RecordBytes); err != nil {
		return fmt.Errorf("extsort: read device: %w", err)
	}
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(buf[i*RecordBytes:]))
	}
	d.reads.Add(blocksSpanned(d.blockRecords, off, len(dst)))
	return nil
}

// Write copies src to the device at record offset off, charging block
// writes.
func (d *FileDevice) Write(off int, src []int64) error {
	if off < 0 || off+len(src) > d.capacity {
		return fmt.Errorf("extsort: write [%d,%d) outside device of %d records", off, off+len(src), d.capacity)
	}
	if len(src) == 0 {
		return nil
	}
	buf := d.scratch(len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint64(buf[i*RecordBytes:], uint64(v))
	}
	if _, err := d.f.WriteAt(buf, int64(off)*RecordBytes); err != nil {
		return fmt.Errorf("extsort: write device: %w", err)
	}
	d.writes.Add(blocksSpanned(d.blockRecords, off, len(src)))
	return nil
}

// Stats reports accumulated block I/O counts.
func (d *FileDevice) Stats() (reads, writes uint64) { return d.reads.Load(), d.writes.Load() }

// ResetStats zeroes the I/O counters.
func (d *FileDevice) ResetStats() { d.reads.Store(0); d.writes.Store(0) }

// Close closes the backing file (the file itself remains on disk).
func (d *FileDevice) Close() error { return d.f.Close() }

// Remove closes the backing file and deletes it from disk.
func (d *FileDevice) Remove() error {
	cerr := d.f.Close()
	rerr := os.Remove(d.path)
	if cerr != nil {
		return cerr
	}
	return rerr
}
