package extsort

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"mergepath/internal/fault"
)

// DeviceError is the typed failure every fallible FileDevice operation
// returns: which op failed ("read", "write", "sync"), on which file,
// wrapping the underlying cause. Callers that must distinguish a failed
// disk from wrong input match with errors.As; the jobs layer surfaces
// it as a failed job instead of wrong bytes.
type DeviceError struct {
	// Op is the failing operation: "read", "write" or "sync".
	Op string
	// Path is the backing file.
	Path string
	// Err is the underlying cause (wrapped).
	Err error
}

// Error formats the failure.
func (e *DeviceError) Error() string {
	return fmt.Sprintf("extsort: %s %s: %v", e.Op, e.Path, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *DeviceError) Unwrap() error { return e.Err }

// Fault-injection ops the device consults when an injector is attached
// (SetFault), keyed like the request-path ops so one -fault/-chaos spec
// drives disk havoc too:
//
//	disk.enospc     Write fails up front with ENOSPC-shaped error
//	disk.shortwrite Write persists only a prefix, then fails typed
//	disk.read       Read fails with an injected I/O error
//	disk.flip       a read returns data with one bit flipped (silent —
//	                only sealed-file checksums can catch it; also
//	                consulted by VerifiedReader)
//	disk.sync       Sync fails with an injected I/O error
const (
	// FaultOpENOSPC injects a full-disk write failure.
	FaultOpENOSPC = "disk.enospc"
	// FaultOpShortWrite injects a torn (partial) write.
	FaultOpShortWrite = "disk.shortwrite"
	// FaultOpRead injects a read I/O failure.
	FaultOpRead = "disk.read"
	// FaultOpFlip injects a read-side single-bit flip.
	FaultOpFlip = "disk.flip"
	// FaultOpSync injects an fsync failure.
	FaultOpSync = "disk.sync"
)

// errNoSpace is the injected ENOSPC shape (wrapping fault.ErrInjected so
// tests can classify injected vs real disk failures).
var errNoSpace = fmt.Errorf("%w: no space left on device", fault.ErrInjected)

// errReadFault is the injected read-failure shape.
var errReadFault = fmt.Errorf("%w: input/output error", fault.ErrInjected)

// RecordBytes is the on-disk size of one int64 record (little-endian).
const RecordBytes = 8

// DefaultFileBlockRecords is the default block size of a FileDevice:
// 4 KiB of records, matching a common filesystem block.
const DefaultFileBlockRecords = 4096 / RecordBytes

// FileDevice is a Device[int64] backed by a real file: records are 8-byte
// little-endian integers addressed by record offset, and every read or
// write is charged in whole blocks like the in-memory BlockDevice — so
// the external sort's I/O accounting holds whether the "next memory
// level" is simulated or a real disk. Read/Write are not safe for
// concurrent use (the sort engine is single-threaded at the I/O layer);
// the I/O counters are atomic so metrics may sample them concurrently.
type FileDevice struct {
	f            *os.File
	path         string
	blockRecords int
	capacity     int
	reads        atomic.Uint64
	writes       atomic.Uint64
	syncs        atomic.Uint64
	buf          []byte // reused encode/decode scratch
	fault        *fault.Injector
}

// SetFault attaches a fault injector consulted by Read/Write/Sync under
// the disk.* ops (chaos testing of the storage error paths). A nil
// injector — the default — is a no-op.
func (d *FileDevice) SetFault(inj *fault.Injector) { d.fault = inj }

// CreateFileDevice creates (or truncates) a file device at path holding
// capacity records. blockRecords <= 0 selects DefaultFileBlockRecords.
func CreateFileDevice(path string, capacity, blockRecords int) (*FileDevice, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("extsort: negative capacity %d", capacity)
	}
	if blockRecords <= 0 {
		blockRecords = DefaultFileBlockRecords
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, fmt.Errorf("extsort: create device: %w", err)
	}
	if err := f.Truncate(int64(capacity) * RecordBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("extsort: size device: %w", err)
	}
	return &FileDevice{f: f, path: path, blockRecords: blockRecords, capacity: capacity}, nil
}

// OpenFileDevice opens an existing record file as a device; its capacity
// is the file size in records. The file length must be a whole number of
// records. blockRecords <= 0 selects DefaultFileBlockRecords.
func OpenFileDevice(path string, blockRecords int) (*FileDevice, error) {
	if blockRecords <= 0 {
		blockRecords = DefaultFileBlockRecords
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("extsort: open device: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("extsort: stat device: %w", err)
	}
	if fi.Size()%RecordBytes != 0 {
		f.Close()
		return nil, fmt.Errorf("extsort: %s: size %d is not a whole number of %d-byte records", path, fi.Size(), RecordBytes)
	}
	return &FileDevice{f: f, path: path, blockRecords: blockRecords, capacity: int(fi.Size() / RecordBytes)}, nil
}

// Capacity returns the device size in records.
func (d *FileDevice) Capacity() int { return d.capacity }

// BlockRecords returns the block size in records.
func (d *FileDevice) BlockRecords() int { return d.blockRecords }

// Path returns the backing file's path.
func (d *FileDevice) Path() string { return d.path }

// scratch returns the reused byte buffer grown to n records.
func (d *FileDevice) scratch(n int) []byte {
	if cap(d.buf) < n*RecordBytes {
		d.buf = make([]byte, n*RecordBytes)
	}
	return d.buf[:n*RecordBytes]
}

// Read copies len(dst) records starting at record offset off into dst,
// charging block reads.
func (d *FileDevice) Read(off int, dst []int64) error {
	if off < 0 || off+len(dst) > d.capacity {
		return fmt.Errorf("extsort: read [%d,%d) outside device of %d records", off, off+len(dst), d.capacity)
	}
	if len(dst) == 0 {
		return nil
	}
	if d.fault.Hit(FaultOpRead) {
		return &DeviceError{Op: "read", Path: d.path, Err: errReadFault}
	}
	buf := d.scratch(len(dst))
	if _, err := d.f.ReadAt(buf, int64(off)*RecordBytes); err != nil {
		return &DeviceError{Op: "read", Path: d.path, Err: err}
	}
	if d.fault.Hit(FaultOpFlip) {
		buf[0] ^= 1
	}
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(buf[i*RecordBytes:]))
	}
	d.reads.Add(blocksSpanned(d.blockRecords, off, len(dst)))
	return nil
}

// Write copies src to the device at record offset off, charging block
// writes.
func (d *FileDevice) Write(off int, src []int64) error {
	if off < 0 || off+len(src) > d.capacity {
		return fmt.Errorf("extsort: write [%d,%d) outside device of %d records", off, off+len(src), d.capacity)
	}
	if len(src) == 0 {
		return nil
	}
	if d.fault.Hit(FaultOpENOSPC) {
		return &DeviceError{Op: "write", Path: d.path, Err: errNoSpace}
	}
	buf := d.scratch(len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint64(buf[i*RecordBytes:], uint64(v))
	}
	if d.fault.Hit(FaultOpShortWrite) {
		// A torn write: persist only a prefix, then fail — the caller
		// must treat the whole range as unwritten, never as truncated-
		// but-fine data.
		if half := len(buf) / 2; half > 0 {
			_, _ = d.f.WriteAt(buf[:half], int64(off)*RecordBytes)
		}
		return &DeviceError{Op: "write", Path: d.path, Err: io.ErrShortWrite}
	}
	if _, err := d.f.WriteAt(buf, int64(off)*RecordBytes); err != nil {
		return &DeviceError{Op: "write", Path: d.path, Err: err}
	}
	d.writes.Add(blocksSpanned(d.blockRecords, off, len(src)))
	return nil
}

// Sync flushes the device's dirty pages to stable storage (fsync),
// counting the sync. The jobs layer calls it at seal points — after the
// final sorted write, before the result rename — per its fsync policy.
func (d *FileDevice) Sync() error {
	if d.fault.Hit(FaultOpSync) {
		return &DeviceError{Op: "sync", Path: d.path, Err: errReadFault}
	}
	if err := d.f.Sync(); err != nil {
		return &DeviceError{Op: "sync", Path: d.path, Err: err}
	}
	d.syncs.Add(1)
	return nil
}

// Syncs reports how many fsyncs the device has performed.
func (d *FileDevice) Syncs() uint64 { return d.syncs.Load() }

// Stats reports accumulated block I/O counts.
func (d *FileDevice) Stats() (reads, writes uint64) { return d.reads.Load(), d.writes.Load() }

// ResetStats zeroes the I/O counters.
func (d *FileDevice) ResetStats() { d.reads.Store(0); d.writes.Store(0) }

// Close closes the backing file (the file itself remains on disk).
func (d *FileDevice) Close() error { return d.f.Close() }

// Remove closes the backing file and deletes it from disk.
func (d *FileDevice) Remove() error {
	cerr := d.f.Close()
	rerr := os.Remove(d.path)
	if cerr != nil {
		return cerr
	}
	return rerr
}
