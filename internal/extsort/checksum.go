package extsort

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"mergepath/internal/fault"
)

// Block-integrity layer for sealed spill files. A file that has reached
// its final, immutable state — an uploaded dataset, a finished job
// result — gets a sidecar checksum file (<path> + ChecksumSuffix)
// holding one CRC32C per block of the data file, so a torn write,
// flipped bit or truncation on the disk underneath is detected as a
// typed error instead of streamed to a client as wrong bytes. The data
// file itself stays pure records: byte-identical to what the client
// uploaded or will download, streamable with plain tools. Files still
// being mutated (scratch, in-progress results) are not checksummed —
// a crash mid-job loses the job, never the integrity story; see
// docs/DURABILITY.md.
//
// Sidecar layout, all little-endian:
//
//	magic   "MPC1"  (4 bytes)
//	block   uint32  block size in bytes
//	size    uint64  data file size in bytes
//	crcs    nblocks x uint32, CRC32C per block; the last block may be
//	        short (size % block bytes)
//
// where nblocks = ceil(size/block).

// ChecksumSuffix is appended to a data file's path to name its sidecar.
const ChecksumSuffix = ".crc"

// checksumMagic identifies a sidecar checksum file.
var checksumMagic = [4]byte{'M', 'P', 'C', '1'}

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is the sentinel wrapped by every corruption detection —
// block checksum mismatch, bad sidecar, or a data/sidecar size
// disagreement. Callers classify with errors.Is(err, ErrCorrupt).
var ErrCorrupt = errors.New("extsort: corruption detected")

// CorruptionError pinpoints a failed integrity check: which file, and —
// for a block mismatch — which block with both CRC values. It unwraps
// to ErrCorrupt.
type CorruptionError struct {
	// Path is the data file that failed verification.
	Path string
	// Block is the zero-based index of the mismatching block, or -1 when
	// the failure is structural (bad sidecar, size mismatch).
	Block int
	// Detail says what was wrong.
	Detail string
}

// Error formats the corruption report.
func (e *CorruptionError) Error() string {
	if e.Block >= 0 {
		return fmt.Sprintf("extsort: %s: block %d: %s", e.Path, e.Block, e.Detail)
	}
	return fmt.Sprintf("extsort: %s: %s", e.Path, e.Detail)
}

// Unwrap ties every CorruptionError to the ErrCorrupt sentinel.
func (e *CorruptionError) Unwrap() error { return ErrCorrupt }

// WriteChecksumFile seals dataPath: it streams the file once, computes a
// CRC32C per block of blockRecords records, and writes the sidecar next
// to it. sync additionally fsyncs the sidecar before close (the
// fsync-policy knob gates it). Returns the number of blocks summed.
func WriteChecksumFile(dataPath string, blockRecords int, sync bool) (int, error) {
	if blockRecords <= 0 {
		blockRecords = DefaultFileBlockRecords
	}
	blockBytes := blockRecords * RecordBytes
	f, err := os.Open(dataPath)
	if err != nil {
		return 0, fmt.Errorf("extsort: checksum source: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("extsort: checksum source: %w", err)
	}
	size := fi.Size()
	nblocks := int((size + int64(blockBytes) - 1) / int64(blockBytes))
	out := make([]byte, 16+4*nblocks)
	copy(out, checksumMagic[:])
	binary.LittleEndian.PutUint32(out[4:], uint32(blockBytes))
	binary.LittleEndian.PutUint64(out[8:], uint64(size))
	buf := make([]byte, blockBytes)
	for i := 0; i < nblocks; i++ {
		want := blockBytes
		if rem := size - int64(i)*int64(blockBytes); rem < int64(want) {
			want = int(rem)
		}
		if _, err := io.ReadFull(f, buf[:want]); err != nil {
			return 0, fmt.Errorf("extsort: checksum read: %w", err)
		}
		binary.LittleEndian.PutUint32(out[16+4*i:], crc32.Checksum(buf[:want], castagnoli))
	}
	side, err := os.OpenFile(dataPath+ChecksumSuffix, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return 0, fmt.Errorf("extsort: checksum sidecar: %w", err)
	}
	if _, err := side.Write(out); err != nil {
		side.Close()
		return 0, fmt.Errorf("extsort: checksum sidecar: %w", err)
	}
	if sync {
		if err := side.Sync(); err != nil {
			side.Close()
			return 0, fmt.Errorf("extsort: checksum sidecar sync: %w", err)
		}
	}
	if err := side.Close(); err != nil {
		return 0, fmt.Errorf("extsort: checksum sidecar: %w", err)
	}
	return nblocks, nil
}

// readSidecar parses and sanity-checks dataPath's sidecar against the
// data file's actual size.
func readSidecar(dataPath string, dataSize int64) (blockBytes int, crcs []uint32, err error) {
	raw, err := os.ReadFile(dataPath + ChecksumSuffix)
	if err != nil {
		return 0, nil, fmt.Errorf("extsort: checksum sidecar: %w", err)
	}
	if len(raw) < 16 || [4]byte(raw[:4]) != checksumMagic {
		return 0, nil, &CorruptionError{Path: dataPath, Block: -1, Detail: "sidecar is not a checksum file"}
	}
	blockBytes = int(binary.LittleEndian.Uint32(raw[4:]))
	size := int64(binary.LittleEndian.Uint64(raw[8:]))
	if blockBytes <= 0 {
		return 0, nil, &CorruptionError{Path: dataPath, Block: -1, Detail: "sidecar block size is not positive"}
	}
	if size != dataSize {
		return 0, nil, &CorruptionError{Path: dataPath, Block: -1,
			Detail: fmt.Sprintf("size %d disagrees with sealed size %d (truncated or grown)", dataSize, size)}
	}
	nblocks := int((size + int64(blockBytes) - 1) / int64(blockBytes))
	if len(raw) != 16+4*nblocks {
		return 0, nil, &CorruptionError{Path: dataPath, Block: -1, Detail: "sidecar length disagrees with its header"}
	}
	crcs = make([]uint32, nblocks)
	for i := range crcs {
		crcs[i] = binary.LittleEndian.Uint32(raw[16+4*i:])
	}
	return blockBytes, crcs, nil
}

// VerifiedReader streams a sealed data file while checking every block
// against its sidecar checksums. Each block is read and verified in full
// before any of its bytes are handed to the caller, so a mismatch
// surfaces as a *CorruptionError and not one unverified byte ever
// escapes — a client streaming a result sees a clean prefix and a
// failed connection, never corrupt data. It reads strictly sequentially
// (io.ReadCloser, no Seek) and buffers exactly one block.
type VerifiedReader struct {
	f          *os.File
	path       string
	blockBytes int
	crcs       []uint32
	block      int    // index of the next block to read+verify
	buf        []byte // the current verified block
	served     int    // bytes of buf already returned
	remaining  int64  // data bytes not yet read from the file
	fault      *fault.Injector
}

// OpenVerifiedReader opens dataPath and its sidecar for verified
// streaming. Structural problems (missing or malformed sidecar, size
// mismatch) are detected here; per-block mismatches surface from Read.
func OpenVerifiedReader(dataPath string) (*VerifiedReader, error) {
	f, err := os.Open(dataPath)
	if err != nil {
		return nil, fmt.Errorf("extsort: open verified: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("extsort: open verified: %w", err)
	}
	blockBytes, crcs, err := readSidecar(dataPath, fi.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	return &VerifiedReader{f: f, path: dataPath, blockBytes: blockBytes, crcs: crcs, remaining: fi.Size()}, nil
}

// SetFault attaches a fault injector for the read-side bit-flip op
// ("disk.flip"): when it hits, one bit of the freshly read buffer is
// flipped before hashing — the flip MUST then surface as a
// *CorruptionError, which is exactly what chaos runs assert.
func (r *VerifiedReader) SetFault(inj *fault.Injector) { r.fault = inj }

// fill reads the next block in full, applies any injected bit flip, and
// verifies it against the sealed CRC before it becomes servable.
func (r *VerifiedReader) fill() error {
	want := r.blockBytes
	if r.remaining < int64(want) {
		want = int(r.remaining)
	}
	if cap(r.buf) < want {
		r.buf = make([]byte, want)
	}
	r.buf = r.buf[:want]
	if _, err := io.ReadFull(r.f, r.buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return &CorruptionError{Path: r.path, Block: r.block, Detail: "file shrank below its sealed size"}
		}
		return &DeviceError{Op: "read", Path: r.path, Err: err}
	}
	if r.fault.Hit(FaultOpFlip) {
		r.buf[0] ^= 1
	}
	got := crc32.Checksum(r.buf, castagnoli)
	if r.block >= len(r.crcs) || got != r.crcs[r.block] {
		detail := "sidecar has no checksum for this block"
		if r.block < len(r.crcs) {
			detail = fmt.Sprintf("checksum mismatch: have %08x, sealed %08x", got, r.crcs[r.block])
		}
		return &CorruptionError{Path: r.path, Block: r.block, Detail: detail}
	}
	r.block++
	r.served = 0
	r.remaining -= int64(want)
	return nil
}

// Read implements io.Reader, serving only bytes whose block has already
// passed verification.
func (r *VerifiedReader) Read(p []byte) (int, error) {
	if r.served == len(r.buf) {
		if r.remaining <= 0 {
			return 0, io.EOF
		}
		if err := r.fill(); err != nil {
			return 0, err
		}
	}
	n := copy(p, r.buf[r.served:])
	r.served += n
	return n, nil
}

// Close closes the underlying file.
func (r *VerifiedReader) Close() error { return r.f.Close() }

// VerifyChecksumFile scans a sealed file end to end against its sidecar
// and returns the first corruption found (nil when intact). It is the
// recovery pass's and `make corrupt-check`'s deep integrity probe.
func VerifyChecksumFile(dataPath string) error {
	r, err := OpenVerifiedReader(dataPath)
	if err != nil {
		return err
	}
	defer r.Close()
	_, err = io.Copy(io.Discard, r)
	return err
}
