package extsort

import (
	"fmt"
	"math/rand"
	"testing"

	"mergepath/internal/kway"
	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

// TestSortKWayStrategyIdentical pins the Config.KWay contract: the
// sorted device contents are byte-identical whichever in-window merge
// strategy the fan-in phase uses, and a forced co-rank run reports its
// window balance in Stats.
func TestSortKWayStrategyIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(160))
	for trial := 0; trial < 10; trial++ {
		n := 2000 + rng.Intn(4000)
		m := 64 + rng.Intn(200)
		data := workload.Unsorted(rng, n)
		var want []int32
		for _, strat := range []kway.Strategy{kway.StrategyAuto, kway.StrategyHeap, kway.StrategyTree, kway.StrategyCoRank} {
			dev := NewBlockDevice[int32](n, 16)
			dev.Load(data)
			stats := sortMem(t, dev, n, Config{MemoryRecords: m, Workers: 2, KWay: strat})
			got := dev.Snapshot(n)
			if want == nil {
				want = got
				continue
			}
			if !verify.Equal(got, want) {
				t.Fatalf("trial %d strategy %v: sorted output differs", trial, strat)
			}
			if strat == kway.StrategyCoRank && stats.MergePasses > 0 {
				if stats.KWayImbalanceMax == 0 || stats.KWayImbalanceMax > 1.5 {
					t.Fatalf("trial %d: co-rank imbalance %.3f, want ~1.0", trial, stats.KWayImbalanceMax)
				}
			}
		}
	}
}

// BenchmarkSortFanInStrategies measures the external-sort fan-in delta
// between the in-window merge strategies — the X15 extsort column.
func BenchmarkSortFanInStrategies(b *testing.B) {
	const n = 1 << 18
	const m = 1 << 13 // 32 runs -> fan-in 8 merge tree, 2 passes
	rng := rand.New(rand.NewSource(161))
	data := workload.Unsorted(rng, n)
	for _, strat := range []kway.Strategy{kway.StrategyHeap, kway.StrategyTree, kway.StrategyCoRank} {
		b.Run(fmt.Sprintf("strategy=%s", strat), func(b *testing.B) {
			b.SetBytes(int64(n) * 4)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dev := NewBlockDevice[int32](n, 1024)
				dev.Load(data)
				scratch := NewBlockDevice[int32](n, 1024)
				b.StartTimer()
				if _, err := Sort(bg, dev, scratch, n, Config{MemoryRecords: m, Workers: 2, KWay: strat}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
