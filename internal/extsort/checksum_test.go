package extsort

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"mergepath/internal/fault"
)

// writeRecordFile writes n pseudorandom records to a fresh file in dir
// and returns its path and raw bytes.
func writeRecordFile(t *testing.T, dir string, n int, seed int64) (string, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	raw := make([]byte, n*RecordBytes)
	rng.Read(raw)
	path := filepath.Join(dir, "data.bin")
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	return path, raw
}

func TestChecksumRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 511, 512, 513, 5000} {
		path, raw := writeRecordFile(t, t.TempDir(), n, int64(n)+1)
		blocks, err := WriteChecksumFile(path, 512, true)
		if err != nil {
			t.Fatal(err)
		}
		wantBlocks := (n + 511) / 512
		if blocks != wantBlocks {
			t.Fatalf("n=%d: %d blocks, want %d", n, blocks, wantBlocks)
		}
		if err := VerifyChecksumFile(path); err != nil {
			t.Fatalf("n=%d: intact file failed verification: %v", n, err)
		}
		r, err := OpenVerifiedReader(path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(r)
		r.Close()
		if err != nil {
			t.Fatalf("n=%d: verified stream: %v", n, err)
		}
		if !bytes.Equal(got, raw) {
			t.Fatalf("n=%d: verified stream is not byte-identical", n)
		}
	}
}

// TestCorruptCheck is the `make corrupt-check` gate: flip one byte of a
// sealed spill file and assert the corruption is detected as a typed
// error naming the right block — by the full-scan probe and by the
// streaming reader — and that truncation and sidecar damage are caught
// too.
func TestCorruptCheck(t *testing.T) {
	const n, block = 4096, 512
	path, raw := writeRecordFile(t, t.TempDir(), n, 7)
	if _, err := WriteChecksumFile(path, block, false); err != nil {
		t.Fatal(err)
	}

	// Flip one byte in the third block.
	corrupt := append([]byte(nil), raw...)
	off := 2*block*RecordBytes + 37
	corrupt[off] ^= 0x40
	if err := os.WriteFile(path, corrupt, 0o600); err != nil {
		t.Fatal(err)
	}
	err := VerifyChecksumFile(path)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped byte not detected: %v", err)
	}
	var ce *CorruptionError
	if !errors.As(err, &ce) || ce.Block != 2 {
		t.Fatalf("wrong corruption detail: %v", err)
	}

	// The streaming reader must fail at (or before) the bad block, and
	// every byte it did hand out must be from verified blocks.
	r, err := OpenVerifiedReader(path)
	if err != nil {
		t.Fatal(err)
	}
	got, rerr := io.ReadAll(r)
	r.Close()
	if !errors.Is(rerr, ErrCorrupt) {
		t.Fatalf("stream did not surface corruption: %v", rerr)
	}
	if len(got) > 2*block*RecordBytes {
		t.Fatalf("stream handed out %d bytes incl. the corrupt block", len(got))
	}
	if !bytes.Equal(got, corrupt[:len(got)]) {
		t.Fatal("verified prefix differs from the file")
	}

	// Truncation below the sealed size is structural corruption.
	if err := os.WriteFile(path, raw[:len(raw)-RecordBytes], 0o600); err != nil {
		t.Fatal(err)
	}
	if err := VerifyChecksumFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncation not detected: %v", err)
	}

	// Restore the data, damage the sidecar instead.
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+ChecksumSuffix, []byte("junk"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := VerifyChecksumFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sidecar damage not detected: %v", err)
	}

	// A missing sidecar is an error (not silent success), but not a
	// corruption verdict — the file was never sealed.
	if err := os.Remove(path + ChecksumSuffix); err != nil {
		t.Fatal(err)
	}
	if err := VerifyChecksumFile(path); err == nil || errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing sidecar: %v", err)
	}
}

// TestVerifiedReaderCatchesInjectedFlip proves the read-side bit-flip
// fault op cannot slip past the checksum layer: every injected flip
// surfaces as a typed corruption error.
func TestVerifiedReaderCatchesInjectedFlip(t *testing.T) {
	path, _ := writeRecordFile(t, t.TempDir(), 2048, 11)
	if _, err := WriteChecksumFile(path, 512, false); err != nil {
		t.Fatal(err)
	}
	inj, err := fault.Parse("disk.flip:error=1", 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenVerifiedReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.SetFault(inj)
	if _, err := io.Copy(io.Discard, r); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("injected flip escaped detection: %v", err)
	}
	if inj.Errors.Load() == 0 {
		t.Fatal("flip op never fired")
	}
}
