// Package extsort implements external merge sort on top of the library's
// parallel merge — the workload that motivates merge-based sorting in the
// first place (the paper's §I "core of the merge-sort algorithm", and the
// I/O-complexity setting of its reference [10], Aggarwal & Vitter). The
// engine runs against a Device: a block-addressed record store with I/O
// accounting. Two implementations ship — an in-memory BlockDevice that
// makes the classic external-sort I/O bound (2N/B·(1 + passes) block
// transfers) a measurable, testable quantity, and a FileDevice that backs
// the records with a real file so datasets larger than RAM sort within a
// fixed memory budget (the jobs subsystem's engine).
package extsort

import "fmt"

// Device is the block-store contract the external sort runs against:
// records addressed by absolute record offset, every read or write of a
// record range charged in whole blocks. Implementations report their
// accumulated I/O via Stats; the sort engine sums device and scratch
// counts into its own Stats. Read and Write return I/O errors (a real
// file can fail); out-of-range accesses are programmer errors and may
// panic instead.
type Device[T any] interface {
	// Capacity returns the device size in records.
	Capacity() int
	// BlockRecords returns the block size in records.
	BlockRecords() int
	// Read copies len(dst) records starting at record offset off into dst.
	Read(off int, dst []T) error
	// Write copies src to the device at record offset off.
	Write(off int, src []T) error
	// Stats reports accumulated block reads and writes.
	Stats() (reads, writes uint64)
}

// BlockDevice is a simulated in-memory block store with I/O accounting.
// Records are addressed by absolute record offset; every read or write of
// a record range is charged in whole blocks. It is the test and
// experiment substrate: no real disk, but the same I/O arithmetic.
type BlockDevice[T any] struct {
	blockRecords int
	data         []T
	reads        uint64 // block reads
	writes       uint64 // block writes
}

// NewBlockDevice creates a device holding capacity records with the given
// block size (records per block).
func NewBlockDevice[T any](capacity, blockRecords int) *BlockDevice[T] {
	if blockRecords < 1 {
		panic("extsort: block size must be positive")
	}
	if capacity < 0 {
		panic("extsort: negative capacity")
	}
	return &BlockDevice[T]{blockRecords: blockRecords, data: make([]T, capacity)}
}

// Capacity returns the device size in records.
func (d *BlockDevice[T]) Capacity() int { return len(d.data) }

// BlockRecords returns the block size in records.
func (d *BlockDevice[T]) BlockRecords() int { return d.blockRecords }

// blocksSpanned counts the blocks a record range [off, off+n) touches.
func blocksSpanned(blockRecords, off, n int) uint64 {
	if n <= 0 {
		return 0
	}
	first := off / blockRecords
	last := (off + n - 1) / blockRecords
	return uint64(last - first + 1)
}

// Read copies n records starting at offset off into dst, charging block
// reads. Out-of-range reads panic (programmer error); the error return
// exists for the Device contract and is always nil here.
func (d *BlockDevice[T]) Read(off int, dst []T) error {
	if off < 0 || off+len(dst) > len(d.data) {
		panic(fmt.Sprintf("extsort: read [%d,%d) outside device of %d records", off, off+len(dst), len(d.data)))
	}
	copy(dst, d.data[off:off+len(dst)])
	d.reads += blocksSpanned(d.blockRecords, off, len(dst))
	return nil
}

// Write copies src to the device at offset off, charging block writes.
// Out-of-range writes panic (programmer error); the error return exists
// for the Device contract and is always nil here.
func (d *BlockDevice[T]) Write(off int, src []T) error {
	if off < 0 || off+len(src) > len(d.data) {
		panic(fmt.Sprintf("extsort: write [%d,%d) outside device of %d records", off, off+len(src), len(d.data)))
	}
	copy(d.data[off:off+len(src)], src)
	d.writes += blocksSpanned(d.blockRecords, off, len(src))
	return nil
}

// Load initializes device contents without charging I/O (test setup).
func (d *BlockDevice[T]) Load(records []T) {
	if len(records) > len(d.data) {
		panic("extsort: load exceeds capacity")
	}
	copy(d.data, records)
}

// Snapshot returns a copy of the first n records without charging I/O
// (test inspection).
func (d *BlockDevice[T]) Snapshot(n int) []T {
	return append([]T(nil), d.data[:n]...)
}

// Stats reports accumulated block I/O counts.
func (d *BlockDevice[T]) Stats() (reads, writes uint64) { return d.reads, d.writes }

// ResetStats zeroes the I/O counters.
func (d *BlockDevice[T]) ResetStats() { d.reads, d.writes = 0, 0 }
