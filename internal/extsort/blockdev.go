// Package extsort implements external merge sort on top of the library's
// parallel merge — the workload that motivates merge-based sorting in the
// first place (the paper's §I "core of the merge-sort algorithm", and the
// I/O-complexity setting of its reference [10], Aggarwal & Vitter). Since
// no real disk is available (or desirable) in tests, data lives on a
// simulated block device that counts block reads and writes, so the
// classic external-sort I/O bound — 2N/B·(1 + ceil(log_{k}(N/M))) block
// transfers for run formation plus merge passes — becomes a measurable,
// testable quantity.
package extsort

import "fmt"

// BlockDevice is a simulated block store of int32 records with I/O
// accounting. Records are addressed by absolute record offset; every read
// or write of a record range is charged in whole blocks.
type BlockDevice struct {
	blockRecords int
	data         []int32
	reads        uint64 // block reads
	writes       uint64 // block writes
}

// NewBlockDevice creates a device holding capacity records with the given
// block size (records per block).
func NewBlockDevice(capacity, blockRecords int) *BlockDevice {
	if blockRecords < 1 {
		panic("extsort: block size must be positive")
	}
	if capacity < 0 {
		panic("extsort: negative capacity")
	}
	return &BlockDevice{blockRecords: blockRecords, data: make([]int32, capacity)}
}

// Capacity returns the device size in records.
func (d *BlockDevice) Capacity() int { return len(d.data) }

// BlockRecords returns the block size in records.
func (d *BlockDevice) BlockRecords() int { return d.blockRecords }

// blocksSpanned counts the blocks a record range [off, off+n) touches.
func (d *BlockDevice) blocksSpanned(off, n int) uint64 {
	if n <= 0 {
		return 0
	}
	first := off / d.blockRecords
	last := (off + n - 1) / d.blockRecords
	return uint64(last - first + 1)
}

// Read copies n records starting at offset off into dst, charging block
// reads.
func (d *BlockDevice) Read(off int, dst []int32) {
	if off < 0 || off+len(dst) > len(d.data) {
		panic(fmt.Sprintf("extsort: read [%d,%d) outside device of %d records", off, off+len(dst), len(d.data)))
	}
	copy(dst, d.data[off:off+len(dst)])
	d.reads += d.blocksSpanned(off, len(dst))
}

// Write copies src to the device at offset off, charging block writes.
func (d *BlockDevice) Write(off int, src []int32) {
	if off < 0 || off+len(src) > len(d.data) {
		panic(fmt.Sprintf("extsort: write [%d,%d) outside device of %d records", off, off+len(src), len(d.data)))
	}
	copy(d.data[off:off+len(src)], src)
	d.writes += d.blocksSpanned(off, len(src))
}

// Load initializes device contents without charging I/O (test setup).
func (d *BlockDevice) Load(records []int32) {
	if len(records) > len(d.data) {
		panic("extsort: load exceeds capacity")
	}
	copy(d.data, records)
}

// Snapshot returns a copy of the first n records without charging I/O
// (test inspection).
func (d *BlockDevice) Snapshot(n int) []int32 {
	return append([]int32(nil), d.data[:n]...)
}

// Stats reports accumulated block I/O counts.
func (d *BlockDevice) Stats() (reads, writes uint64) { return d.reads, d.writes }

// ResetStats zeroes the I/O counters.
func (d *BlockDevice) ResetStats() { d.reads, d.writes = 0, 0 }
