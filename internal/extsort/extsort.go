package extsort

import (
	"sync"

	"mergepath/internal/core"
	"mergepath/internal/psort"
)

// Config parameterizes an external sort.
type Config struct {
	// MemoryRecords is M, the in-memory workspace in records. Run
	// formation sorts M records at a time; each merge step buffers M/3
	// records of each input run plus M/3 of output — the paper's
	// Algorithm 2 with the "cache" replaced by RAM and "memory" by the
	// block device.
	MemoryRecords int
	// Workers is the parallelism of the in-memory phases.
	Workers int
}

// Stats reports what an external sort did.
type Stats struct {
	Runs        int    // initial sorted runs formed
	MergePasses int    // binary merge passes over the data
	BlockReads  uint64 // total block reads (device + scratch)
	BlockWrites uint64
}

// Sort sorts the first n records of dev in place (externally) and returns
// the I/O statistics. It is the textbook external merge sort with the
// library as its engine: run formation uses the parallel merge sort of
// §III on M records at a time; each merge pass streams pairs of runs
// through a windowed 2-way merge that is exactly the paper's Algorithm 2
// with block I/O as the next memory level. Total traffic is
// 2·N/B·(1 + ceil(log2(N/M))) block transfers plus rounding.
func Sort(dev *BlockDevice, n int, cfg Config) Stats {
	if n < 0 || n > dev.Capacity() {
		panic("extsort: sort range outside device")
	}
	m := cfg.MemoryRecords
	if m < 6 {
		panic("extsort: memory must hold at least 6 records")
	}
	p := cfg.Workers
	if p < 1 {
		p = 1
	}
	var stats Stats
	if n == 0 {
		return stats
	}

	// Phase 1: run formation.
	buf := make([]int32, m)
	for lo := 0; lo < n; lo += m {
		hi := min(lo+m, n)
		chunk := buf[:hi-lo]
		dev.Read(lo, chunk)
		psort.Sort(chunk, p)
		dev.Write(lo, chunk)
		stats.Runs++
	}

	// Phase 2: binary merge passes, ping-ponging with a scratch device.
	scratch := NewBlockDevice(n, dev.BlockRecords())
	src, dst := dev, scratch
	srcIsDev := true
	for width := m; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := min(lo+width, n)
			hi := min(lo+2*width, n)
			if mid == hi {
				// Lone tail run: carry it over.
				carry := make([]int32, hi-lo)
				src.Read(lo, carry)
				dst.Write(lo, carry)
				continue
			}
			mergeRuns(src, dst, lo, mid, hi, m, p)
		}
		src, dst = dst, src
		srcIsDev = !srcIsDev
		stats.MergePasses++
	}
	if !srcIsDev {
		// Result ended on scratch: stream it back, charging the copy.
		for lo := 0; lo < n; lo += m {
			hi := min(lo+m, n)
			chunk := buf[:hi-lo]
			src.Read(lo, chunk)
			dst.Write(lo, chunk)
		}
	}

	r1, w1 := dev.Stats()
	r2, w2 := scratch.Stats()
	stats.BlockReads = r1 + r2
	stats.BlockWrites = w1 + w2
	return stats
}

// mergeRuns streams src[aLo:aHi) merged with src[aHi:bHi) into dst[aLo:bHi)
// using three m/3-record windows — Algorithm 2 against the block device.
func mergeRuns(src, dst *BlockDevice, aLo, aHi, bHi, m, p int) {
	window := m / 3
	bufA := make([]int32, 0, window)
	bufB := make([]int32, 0, window)
	out := make([]int32, window)
	nextA, nextB := aLo, aHi // next unread record of each run
	outPos := aLo
	for outPos < bHi {
		// Refill both input windows ("fetch the next elements of A and B in
		// numbers equal to the respective numbers of consumed elements").
		if want := min(window-len(bufA), aHi-nextA); want > 0 {
			bufA = bufA[:len(bufA)+want]
			src.Read(nextA, bufA[len(bufA)-want:])
			nextA += want
		}
		if want := min(window-len(bufB), bHi-nextB); want > 0 {
			bufB = bufB[:len(bufB)+want]
			src.Read(nextB, bufB[len(bufB)-want:])
			nextB += want
		}
		steps := min(window, len(bufA)+len(bufB))

		// In-window parallel merge (Theorem 16: the staged prefixes
		// suffice for every diagonal in the window).
		end := windowMerge(bufA, bufB, out[:steps], p)
		dst.Write(outPos, out[:steps])
		outPos += steps

		// Drop consumed prefixes (compacting copies stand in for the
		// paper's cyclic indexing; the I/O accounting is unaffected).
		bufA = bufA[:copy(bufA, bufA[end.A:])]
		bufB = bufB[:copy(bufB, bufB[end.B:])]
	}
}

// windowMerge merges exactly len(out) steps of bufA and bufB into out with
// p workers, returning the consumed co-ranks.
func windowMerge(bufA, bufB, out []int32, p int) core.Point {
	steps := len(out)
	end := core.SearchDiagonal(bufA, bufB, steps)
	if p <= 1 || steps < 2*p {
		core.MergeSteps(bufA, bufB, core.Point{}, steps, out)
		return end
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			lo := w * steps / p
			hi := (w + 1) * steps / p
			start := core.SearchDiagonal(bufA, bufB, lo)
			core.MergeSteps(bufA, bufB, start, hi-lo, out[lo:hi])
		}(w)
	}
	wg.Wait()
	return end
}
