package extsort

import (
	"cmp"
	"context"
	"fmt"
	"sort"

	"mergepath/internal/kway"
	"mergepath/internal/psort"
)

// MinMemoryRecords is the smallest workable in-memory budget: the merge
// phase needs at least one record of input window per run plus one of
// output at the minimum fan-in of two.
const MinMemoryRecords = 6

// DefaultFanIn is the merge-tree fan-in used when Config.FanIn is zero:
// wide enough that one pass usually suffices, narrow enough that each
// run's window stays block-sized under modest budgets.
const DefaultFanIn = 8

// Config parameterizes an external sort.
type Config struct {
	// MemoryRecords is M, the in-memory workspace in records — a hard
	// budget covering run formation (M records sorted at a time) and the
	// merge phase (per-run input windows plus the output buffer). The
	// engine's peak allocation is reported in Stats.PeakBufferRecords and
	// never exceeds M.
	MemoryRecords int
	// Workers is the parallelism of the in-memory phases (run sorting
	// and in-window merging). Default 1.
	Workers int
	// FanIn is the number of runs merged per merge-tree node. Higher
	// fan-in means fewer passes over the data (ceil(log_F(runs)) instead
	// of ceil(log2)) at the cost of smaller per-run windows. Default
	// DefaultFanIn; clamped to [2, MemoryRecords/3] so every run keeps at
	// least a one-record window.
	FanIn int
	// Progress, when non-nil, is called as the sort advances: done
	// counts records processed so far across all phases (monotonically
	// non-decreasing), total is the precomputed whole-sort record count,
	// and phase names the current phase ("run_formation", "merge",
	// "copyback"). Called from the sorting goroutine; keep it cheap.
	Progress func(done, total int64, phase string)
	// KWay selects the in-window k-way merge strategy used by the fan-in
	// phase: kway.StrategyAuto (the zero value) picks per round by run
	// count and window size, the rest force heap, tree or corank (see
	// docs/KWAY.md). Output bytes are identical for every choice.
	KWay kway.Strategy
}

// Stats reports what an external sort did.
type Stats struct {
	// Runs is the number of initial sorted runs formed.
	Runs int `json:"runs"`
	// MergePasses is the number of merge passes over the data
	// (ceil(log_FanIn(Runs))).
	MergePasses int `json:"merge_passes"`
	// FanIn is the effective merge-tree fan-in after clamping.
	FanIn int `json:"fan_in"`
	// BlockReads is the total block reads charged against the device and
	// the scratch device by this sort.
	BlockReads uint64 `json:"block_reads"`
	// BlockWrites is the matching block write count.
	BlockWrites uint64 `json:"block_writes"`
	// PeakBufferRecords is the largest number of in-memory record slots
	// the engine had allocated at any point — the measured side of the
	// MemoryRecords contract (always <= MemoryRecords).
	PeakBufferRecords int `json:"peak_buffer_records"`
	// KWayImbalanceMax is the worst per-worker window imbalance ratio of
	// any co-rank in-window merge this sort ran (the k-way Theorem 5
	// check; ~1.0 by construction). Zero when no co-rank round ran —
	// the heap or tree strategies report no per-worker loads.
	KWayImbalanceMax float64 `json:"kway_imbalance_max,omitempty"`
}

// sorter carries one Sort invocation's state.
type sorter[T cmp.Ordered] struct {
	cfg     Config
	workers int
	fanIn   int
	window  int // per-run merge window, MemoryRecords/(3*fanIn)
	done    int64
	total   int64
	peak    int     // PeakBufferRecords accumulator
	kwayImb float64 // KWayImbalanceMax accumulator
}

// note records a buffer allocation high-water mark of n records.
func (s *sorter[T]) note(n int) {
	if n > s.peak {
		s.peak = n
	}
}

// advance moves the progress counter by n records in phase.
func (s *sorter[T]) advance(n int, phase string) {
	s.done += int64(n)
	if s.cfg.Progress != nil {
		s.cfg.Progress(s.done, s.total, phase)
	}
}

// Sort sorts the first n records of dev in place (externally) and returns
// the I/O statistics. It is the textbook external merge sort with the
// library as its engine: run formation uses the parallel merge sort of
// §III on M records at a time; merging streams groups of FanIn runs
// through windowed k-way merges (internal/kway) — the paper's Algorithm 2
// with block I/O as the next memory level, generalized from two runs to
// F. Each merge round cuts every run's buffered window at the same value
// bound (the smallest last-buffered record across unfinished runs), so
// the emitted prefixes are exactly the records whose final position is
// already decidable — index-space partitioning of the runs in the spirit
// of multi-way co-ranking. Total traffic is 2·N/B·(1 + ceil(log_F(N/M)))
// block transfers plus rounding.
//
// scratch is the ping-pong partner device; it must hold at least n
// records, and may be nil only when n <= cfg.MemoryRecords (a single
// in-memory run needs no merge phase). ctx cancellation is observed at
// run and merge-window boundaries: the sort returns ctx's error (wrapped)
// and the devices are left in a valid but unspecified intermediate state.
// Configuration and device errors are returned, never panicked.
func Sort[T cmp.Ordered](ctx context.Context, dev, scratch Device[T], n int, cfg Config) (Stats, error) {
	var stats Stats
	if dev == nil {
		return stats, fmt.Errorf("extsort: nil device")
	}
	if n < 0 || n > dev.Capacity() {
		return stats, fmt.Errorf("extsort: sort range %d outside device of %d records", n, dev.Capacity())
	}
	m := cfg.MemoryRecords
	if m < MinMemoryRecords {
		return stats, fmt.Errorf("extsort: memory budget %d below minimum %d records", m, MinMemoryRecords)
	}
	s := &sorter[T]{cfg: cfg, workers: cfg.Workers}
	if s.workers < 1 {
		s.workers = 1
	}
	s.fanIn = cfg.FanIn
	if s.fanIn == 0 {
		s.fanIn = DefaultFanIn
	}
	if s.fanIn < 2 {
		s.fanIn = 2
	}
	if s.fanIn > m/3 {
		s.fanIn = m / 3
	}
	if s.fanIn < 2 {
		s.fanIn = 2
	}
	s.window = m / (3 * s.fanIn)
	if s.window < 1 {
		s.window = 1
	}
	stats.FanIn = s.fanIn

	if n == 0 {
		return stats, nil
	}

	// Plan the passes up front so progress has a fixed denominator:
	// formation touches n records, each pass touches n, and an odd pass
	// count adds the copy-back stream from scratch.
	passes := 0
	for width := m; width < n; width *= s.fanIn {
		passes++
	}
	copyBack := passes%2 == 1
	s.total = int64(n) * int64(1+passes)
	if copyBack {
		s.total += int64(n)
	}
	if passes > 0 {
		if scratch == nil {
			return stats, fmt.Errorf("extsort: %d records exceed the %d-record memory budget and no scratch device was given", n, m)
		}
		if scratch.Capacity() < n {
			return stats, fmt.Errorf("extsort: scratch device holds %d records, need %d", scratch.Capacity(), n)
		}
	}

	devR0, devW0 := dev.Stats()
	var scrR0, scrW0 uint64
	if scratch != nil {
		scrR0, scrW0 = scratch.Stats()
	}

	// Phase 1: run formation — sort M records at a time in place.
	buf := make([]T, min(m, n))
	s.note(len(buf))
	for lo := 0; lo < n; lo += m {
		hi := min(lo+m, n)
		chunk := buf[:hi-lo]
		if err := dev.Read(lo, chunk); err != nil {
			return stats, err
		}
		if err := psort.SortCtx(ctx, chunk, s.workers); err != nil {
			return stats, fmt.Errorf("extsort: run formation: %w", err)
		}
		if err := dev.Write(lo, chunk); err != nil {
			return stats, err
		}
		stats.Runs++
		s.advance(len(chunk), "run_formation")
	}
	buf = nil

	// Phase 2: F-way merge passes, ping-ponging with the scratch device.
	src, dst := dev, scratch
	srcIsDev := true
	for width := m; width < n; width *= s.fanIn {
		groupSpan := width * s.fanIn
		for lo := 0; lo < n; lo += groupSpan {
			hi := min(lo+groupSpan, n)
			if lo+width >= hi {
				// Lone tail run: carry it over unchanged.
				if err := s.carry(ctx, src, dst, lo, hi); err != nil {
					return stats, err
				}
				continue
			}
			var spans [][2]int
			for rlo := lo; rlo < hi; rlo += width {
				spans = append(spans, [2]int{rlo, min(rlo+width, hi)})
			}
			if err := s.mergeGroup(ctx, src, dst, spans); err != nil {
				return stats, err
			}
		}
		src, dst = dst, src
		srcIsDev = !srcIsDev
		stats.MergePasses++
	}
	if !srcIsDev {
		// Result ended on scratch: stream it back, charging the copy.
		if err := s.copyBack(ctx, src, dst, n); err != nil {
			return stats, err
		}
	}

	devR1, devW1 := dev.Stats()
	stats.BlockReads = devR1 - devR0
	stats.BlockWrites = devW1 - devW0
	if scratch != nil {
		scrR1, scrW1 := scratch.Stats()
		stats.BlockReads += scrR1 - scrR0
		stats.BlockWrites += scrW1 - scrW0
	}
	stats.PeakBufferRecords = s.peak
	stats.KWayImbalanceMax = s.kwayImb
	return stats, nil
}

// carry streams the lone tail run src[lo:hi) to dst unchanged, in
// budget-sized chunks.
func (s *sorter[T]) carry(ctx context.Context, src, dst Device[T], lo, hi int) error {
	chunk := make([]T, min(s.cfg.MemoryRecords, hi-lo))
	s.note(len(chunk))
	for ; lo < hi; lo += len(chunk) {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("extsort: merge canceled: %w", err)
		}
		c := chunk[:min(len(chunk), hi-lo)]
		if err := src.Read(lo, c); err != nil {
			return err
		}
		if err := dst.Write(lo, c); err != nil {
			return err
		}
		s.advance(len(c), "merge")
	}
	return nil
}

// copyBack streams the final n records from scratch back to the primary
// device.
func (s *sorter[T]) copyBack(ctx context.Context, src, dst Device[T], n int) error {
	chunk := make([]T, min(s.cfg.MemoryRecords, n))
	s.note(len(chunk))
	for lo := 0; lo < n; lo += len(chunk) {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("extsort: copy-back canceled: %w", err)
		}
		c := chunk[:min(len(chunk), n-lo)]
		if err := src.Read(lo, c); err != nil {
			return err
		}
		if err := dst.Write(lo, c); err != nil {
			return err
		}
		s.advance(len(c), "copyback")
	}
	return nil
}

// runCursor is one input run of a merge group: the half-open device range
// still unread plus the buffered window.
type runCursor[T any] struct {
	next, end int // next unread device record, one past the run's last
	buf       []T // sorted window, cap = s.window
}

// mergeGroup merges the runs at spans (consecutive, each sorted) from src
// into dst at the same offsets — one node of the merge tree. Each round
// refills every run's window, finds the value bound up to which the merge
// is decidable (the smallest last-buffered record among runs with data
// still on the device), cuts every window at that bound, and k-way merges
// the cut prefixes (internal/kway) straight into the output buffer.
// Memory: fanIn windows plus the output buffer plus kway's internal
// scratch, all within MemoryRecords by construction of s.window.
func (s *sorter[T]) mergeGroup(ctx context.Context, src, dst Device[T], spans [][2]int) error {
	w := s.window
	cursors := make([]*runCursor[T], len(spans))
	for i, sp := range spans {
		cursors[i] = &runCursor[T]{next: sp[0], end: sp[1], buf: make([]T, 0, w)}
	}
	outLo, outHi := spans[0][0], spans[len(spans)-1][1]
	outBuf := make([]T, 0, len(spans)*w)
	// Peak: input windows + output + kway's intermediate scratch (one
	// output-sized array per live tree level; at most one extra alive).
	kwayScratch := 0
	if len(spans) > 2 {
		kwayScratch = cap(outBuf)
	}
	s.note(len(spans)*w + cap(outBuf) + kwayScratch)

	outPos := outLo
	prefixes := make([][]T, 0, len(cursors))
	for outPos < outHi {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("extsort: merge canceled: %w", err)
		}
		// Refill every window ("fetch the next elements ... in numbers
		// equal to the respective numbers of consumed elements").
		for _, c := range cursors {
			if want := min(w-len(c.buf), c.end-c.next); want > 0 {
				c.buf = c.buf[:len(c.buf)+want]
				if err := src.Read(c.next, c.buf[len(c.buf)-want:]); err != nil {
					return err
				}
				c.next += want
			}
		}
		// The decidable bound: any record still on the device belongs to
		// some run whose last buffered record is <= it, so everything
		// buffered at or below the smallest such last record can be
		// emitted now without ever being overtaken.
		haveMore := false
		var limit T
		for _, c := range cursors {
			if c.next < c.end {
				last := c.buf[len(c.buf)-1]
				if !haveMore || last < limit {
					limit, haveMore = last, true
				}
			}
		}
		prefixes = prefixes[:0]
		cut := make([]int, len(cursors))
		steps := 0
		for i, c := range cursors {
			p := len(c.buf)
			if haveMore {
				p = sort.Search(len(c.buf), func(j int) bool { return c.buf[j] > limit })
			}
			cut[i] = p
			steps += p
			if p > 0 {
				prefixes = append(prefixes, c.buf[:p])
			}
		}
		// At least the bound-attaining run's whole window is emitted, so
		// every round makes progress.
		out := outBuf[:steps]
		_, st := kway.MergeIntoStats(out, prefixes, s.workers, s.cfg.KWay)
		if st.Imbalance > s.kwayImb {
			s.kwayImb = st.Imbalance
		}
		if err := dst.Write(outPos, out); err != nil {
			return err
		}
		outPos += steps
		s.advance(steps, "merge")
		for i, c := range cursors {
			c.buf = c.buf[:copy(c.buf, c.buf[cut[i]:])]
		}
	}
	return nil
}
