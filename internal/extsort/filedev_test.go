package extsort

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFileDeviceRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dev.bin")
	d, err := CreateFileDevice(path, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Capacity() != 64 || d.BlockRecords() != 8 || d.Path() != path {
		t.Fatal("geometry wrong")
	}
	if err := d.Write(0, []int64{1, -2, 3}); err != nil {
		t.Fatal(err)
	}
	got := make([]int64, 3)
	if err := d.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != -2 || got[2] != 3 {
		t.Fatalf("roundtrip: %v", got)
	}
	r, w := d.Stats()
	if r != 1 || w != 1 {
		t.Fatalf("io counts: r=%d w=%d", r, w)
	}
	// Straddling a block boundary charges both blocks, like BlockDevice.
	d.ResetStats()
	if err := d.Write(6, []int64{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if _, w := d.Stats(); w != 2 {
		t.Fatalf("straddling write charged %d blocks", w)
	}
	// Zero-length I/O is free and legal.
	if err := d.Read(0, nil); err != nil {
		t.Fatal(err)
	}
	if r, _ := d.Stats(); r != 0 {
		t.Fatalf("empty read charged %d", r)
	}
}

func TestFileDeviceErrors(t *testing.T) {
	dir := t.TempDir()
	d, err := CreateFileDevice(filepath.Join(dir, "dev.bin"), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Read(2, make([]int64, 3)); err == nil {
		t.Fatal("oob read should error")
	}
	if err := d.Write(-1, make([]int64, 1)); err == nil {
		t.Fatal("oob write should error")
	}
	if _, err := CreateFileDevice(filepath.Join(dir, "dev2.bin"), -1, 2); err == nil {
		t.Fatal("negative capacity should error")
	}
	// A file that is not a whole number of records cannot be opened.
	ragged := filepath.Join(dir, "ragged.bin")
	if err := os.WriteFile(ragged, make([]byte, 12), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileDevice(ragged, 0); err == nil {
		t.Fatal("ragged file should error")
	}
	if _, err := OpenFileDevice(filepath.Join(dir, "missing.bin"), 0); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestFileDeviceOpenExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dev.bin")
	d, err := CreateFileDevice(path, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Write(0, []int64{5, 6, 7, 8, 9, 10, 11, 12, 13, 14}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenFileDevice(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Capacity() != 10 {
		t.Fatalf("capacity from size: %d", d2.Capacity())
	}
	if d2.BlockRecords() != DefaultFileBlockRecords {
		t.Fatalf("default block size: %d", d2.BlockRecords())
	}
	got := make([]int64, 10)
	if err := d2.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 || got[9] != 14 {
		t.Fatalf("persisted contents: %v", got)
	}
	if err := d2.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("Remove should delete the backing file")
	}
}
