package extsort

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"mergepath/internal/psort"
	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

var bg = context.Background()

// sortMem runs Sort on an in-memory device pair, failing the test on any
// error — the common setup of the accounting tests.
func sortMem(t *testing.T, dev *BlockDevice[int32], n int, cfg Config) Stats {
	t.Helper()
	scratch := NewBlockDevice[int32](n, dev.BlockRecords())
	stats, err := Sort(bg, dev, scratch, n, cfg)
	if err != nil {
		t.Fatalf("Sort: %v", err)
	}
	return stats
}

func TestBlockDeviceBasics(t *testing.T) {
	d := NewBlockDevice[int32](64, 8)
	if d.Capacity() != 64 || d.BlockRecords() != 8 {
		t.Fatal("geometry wrong")
	}
	d.Write(0, []int32{1, 2, 3})
	got := make([]int32, 3)
	d.Read(0, got)
	if got[0] != 1 || got[2] != 3 {
		t.Fatalf("roundtrip: %v", got)
	}
	r, w := d.Stats()
	if r != 1 || w != 1 {
		t.Fatalf("io counts: r=%d w=%d", r, w)
	}
	// Range straddling a block boundary charges both blocks.
	d.ResetStats()
	d.Write(6, []int32{9, 9, 9, 9}) // records 6..9 touch blocks 0 and 1
	if _, w := d.Stats(); w != 2 {
		t.Fatalf("straddling write charged %d blocks", w)
	}
	// Zero-length I/O is free.
	d.Read(0, nil)
	if r, _ := d.Stats(); r != 0 {
		t.Fatalf("empty read charged %d", r)
	}
}

func TestBlockDevicePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"read-oob":    func() { NewBlockDevice[int32](4, 2).Read(2, make([]int32, 3)) },
		"write-oob":   func() { NewBlockDevice[int32](4, 2).Write(-1, make([]int32, 1)) },
		"zero-block":  func() { NewBlockDevice[int32](4, 0) },
		"neg-cap":     func() { NewBlockDevice[int32](-1, 2) },
		"load-exceed": func() { NewBlockDevice[int32](1, 1).Load(make([]int32, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSortCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(150))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(5000)
		m := MinMemoryRecords + rng.Intn(200)
		block := 1 + rng.Intn(16)
		p := 1 + rng.Intn(4)
		fanIn := rng.Intn(10) // 0 = default
		data := workload.Unsorted(rng, n)
		dev := NewBlockDevice[int32](n, block)
		dev.Load(data)
		stats := sortMem(t, dev, n, Config{MemoryRecords: m, Workers: p, FanIn: fanIn})
		got := dev.Snapshot(n)
		if !verify.Sorted(got) {
			t.Fatalf("n=%d m=%d block=%d fanin=%d: not sorted", n, m, block, fanIn)
		}
		if !verify.SameMultiset(got, data) {
			t.Fatalf("n=%d m=%d: records lost", n, m)
		}
		if n > 0 && stats.Runs != (n+m-1)/m {
			t.Fatalf("n=%d m=%d: %d runs, want %d", n, m, stats.Runs, (n+m-1)/m)
		}
		if stats.PeakBufferRecords > m {
			t.Fatalf("n=%d m=%d fanin=%d: peak buffer %d exceeds budget %d",
				n, m, fanIn, stats.PeakBufferRecords, m)
		}
	}
}

func TestSortEmptyAndTiny(t *testing.T) {
	dev := NewBlockDevice[int32](10, 4)
	stats, err := Sort(bg, dev, nil, 0, Config{MemoryRecords: MinMemoryRecords})
	if err != nil {
		t.Fatalf("empty sort: %v", err)
	}
	if stats.Runs != 0 || stats.BlockReads != 0 {
		t.Fatalf("empty sort: %+v", stats)
	}
	dev.Load([]int32{3})
	// n <= memory needs no scratch device at all.
	if _, err := Sort(bg, dev, nil, 1, Config{MemoryRecords: MinMemoryRecords}); err != nil {
		t.Fatalf("single record: %v", err)
	}
	if dev.Snapshot(1)[0] != 3 {
		t.Fatal("single record")
	}
}

func TestSortErrors(t *testing.T) {
	dev := NewBlockDevice[int32](8, 2)
	cases := map[string]error{
		"nil-device": func() error {
			_, err := Sort[int32](bg, nil, nil, 0, Config{MemoryRecords: 6})
			return err
		}(),
		"range": func() error {
			_, err := Sort(bg, dev, NewBlockDevice[int32](9, 2), 9, Config{MemoryRecords: 6})
			return err
		}(),
		"mem": func() error {
			_, err := Sort(bg, dev, NewBlockDevice[int32](8, 2), 8, Config{MemoryRecords: MinMemoryRecords - 1})
			return err
		}(),
		"no-scratch": func() error {
			_, err := Sort(bg, dev, nil, 8, Config{MemoryRecords: 6})
			return err
		}(),
		"short-scratch": func() error {
			_, err := Sort(bg, dev, NewBlockDevice[int32](4, 2), 8, Config{MemoryRecords: 6})
			return err
		}(),
	}
	for name, err := range cases {
		if err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSortIOBound(t *testing.T) {
	// The external merge sort bound: run formation reads+writes everything
	// once; each of ceil(log_F(ceil(N/M))) passes reads+writes everything
	// once; plus the final copy-back when the pass count is odd, plus
	// per-window block rounding slack.
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 20; trial++ {
		n := 1000 + rng.Intn(20000)
		m := 60 + rng.Intn(500)
		block := 4 + rng.Intn(13)
		data := workload.Unsorted(rng, n)
		dev := NewBlockDevice[int32](n, block)
		dev.Load(data)
		stats := sortMem(t, dev, n, Config{MemoryRecords: m, Workers: 2})

		runs := (n + m - 1) / m
		passes := 0
		for w := m; w < n; w *= stats.FanIn {
			passes++
		}
		if stats.MergePasses != passes {
			t.Fatalf("n=%d m=%d fanin=%d: %d passes, want %d", n, m, stats.FanIn, stats.MergePasses, passes)
		}
		window := m / (3 * stats.FanIn)
		if window < 1 {
			window = 1
		}
		blocksN := uint64((n + block - 1) / block)
		// Generous rounding slack: every buffered read/write can waste one
		// block at each end. Per pass there are at most n/window emit
		// rounds, each with fanIn refills plus one write, plus per-run
		// tails.
		slackPerPass := uint64(2 * (stats.FanIn + 2) * (n/window + 2*runs + 2))
		totalPasses := uint64(passes + 1 + 1) // formation + passes + possible copy-back
		bound := 2 * totalPasses * (blocksN + slackPerPass)
		if got := stats.BlockReads + stats.BlockWrites; got > bound {
			t.Fatalf("n=%d m=%d block=%d: %d block transfers exceed bound %d",
				n, m, block, got, bound)
		}
	}
}

func TestSortIOScalesWithLogRuns(t *testing.T) {
	// Doubling memory (reducing runs) must not increase total I/O.
	n := 1 << 15
	data := workload.Unsorted(rand.New(rand.NewSource(152)), n)
	var prev uint64 = math.MaxUint64
	for _, m := range []int{1 << 8, 1 << 10, 1 << 12, 1 << 14} {
		dev := NewBlockDevice[int32](n, 16)
		dev.Load(data)
		stats := sortMem(t, dev, n, Config{MemoryRecords: m, Workers: 2})
		total := stats.BlockReads + stats.BlockWrites
		if total > prev {
			t.Fatalf("m=%d: I/O %d grew from %d with more memory", m, total, prev)
		}
		prev = total
		if !verify.Sorted(dev.Snapshot(n)) {
			t.Fatalf("m=%d: not sorted", m)
		}
	}
}

func TestSortQuick(t *testing.T) {
	f := func(raw []int32, mSeed uint8, blockSeed uint8) bool {
		n := len(raw)
		dev := NewBlockDevice[int32](n, 1+int(blockSeed)%8)
		dev.Load(raw)
		scratch := NewBlockDevice[int32](n, dev.BlockRecords())
		if _, err := Sort(bg, dev, scratch, n, Config{MemoryRecords: MinMemoryRecords + int(mSeed), Workers: 1}); err != nil {
			return false
		}
		got := dev.Snapshot(n)
		return verify.Sorted(got) && verify.SameMultiset(got, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// datasets for the differential tests: each returns n records.
var differentialInputs = map[string]func(rng *rand.Rand, n int) []int64{
	"random": func(rng *rand.Rand, n int) []int64 {
		s := make([]int64, n)
		for i := range s {
			s[i] = rng.Int63n(1 << 40)
		}
		return s
	},
	"duplicate-heavy": func(rng *rand.Rand, n int) []int64 {
		s := make([]int64, n)
		for i := range s {
			s[i] = rng.Int63n(16)
		}
		return s
	},
	"presorted": func(rng *rand.Rand, n int) []int64 {
		s := make([]int64, n)
		v := int64(0)
		for i := range s {
			v += rng.Int63n(4)
			s[i] = v
		}
		return s
	},
}

// TestSortDifferentialFileBacked external-sorts a file-backed dataset and
// compares byte-for-byte against psort.Sort of the same data in RAM, at
// sizes spanning 1x, 3x and 10x the memory budget, across input shapes.
func TestSortDifferentialFileBacked(t *testing.T) {
	const m = 2048
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(153))
	for shape, gen := range differentialInputs {
		for _, factor := range []int{1, 3, 10} {
			n := factor * m
			data := gen(rng, n)
			want := append([]int64(nil), data...)
			psort.Sort(want, 4)

			dev, err := CreateFileDevice(filepath.Join(dir, "data.bin"), n, 64)
			if err != nil {
				t.Fatal(err)
			}
			if err := dev.Write(0, data); err != nil {
				t.Fatal(err)
			}
			dev.ResetStats()
			scratch, err := CreateFileDevice(filepath.Join(dir, "scratch.bin"), n, 64)
			if err != nil {
				t.Fatal(err)
			}
			stats, err := Sort[int64](bg, dev, scratch, n, Config{MemoryRecords: m, Workers: 4})
			if err != nil {
				t.Fatalf("%s x%d: %v", shape, factor, err)
			}
			got := make([]int64, n)
			if err := dev.Read(0, got); err != nil {
				t.Fatal(err)
			}
			if !verify.Equal(got, want) {
				t.Fatalf("%s x%d: external and in-RAM sorts disagree", shape, factor)
			}
			if stats.PeakBufferRecords > m {
				t.Fatalf("%s x%d: peak buffer %d exceeds budget %d", shape, factor, stats.PeakBufferRecords, m)
			}
			if factor > 1 && stats.MergePasses == 0 {
				t.Fatalf("%s x%d: expected at least one merge pass", shape, factor)
			}
			if err := dev.Remove(); err != nil {
				t.Fatal(err)
			}
			if err := scratch.Remove(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSortProgressMonotonic checks the progress contract: done never
// decreases, total is fixed, and the final call reports done == total.
func TestSortProgressMonotonic(t *testing.T) {
	n, m := 10000, 512
	data := workload.Unsorted(rand.New(rand.NewSource(154)), n)
	dev := NewBlockDevice[int32](n, 16)
	dev.Load(data)
	scratch := NewBlockDevice[int32](n, 16)
	var lastDone, sawTotal int64
	phases := map[string]bool{}
	_, err := Sort(bg, dev, scratch, n, Config{
		MemoryRecords: m,
		Workers:       2,
		Progress: func(done, total int64, phase string) {
			if done < lastDone {
				t.Errorf("progress went backwards: %d -> %d", lastDone, done)
			}
			if sawTotal != 0 && total != sawTotal {
				t.Errorf("total changed: %d -> %d", sawTotal, total)
			}
			lastDone, sawTotal = done, total
			phases[phase] = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lastDone != sawTotal {
		t.Fatalf("final progress %d != total %d", lastDone, sawTotal)
	}
	if !phases["run_formation"] || !phases["merge"] {
		t.Fatalf("missing phases: %v", phases)
	}
}

// TestSortCancellation checks that a context canceled mid-merge stops the
// sort at a window boundary with the context's error.
func TestSortCancellation(t *testing.T) {
	n, m := 50000, 256
	data := workload.Unsorted(rand.New(rand.NewSource(155)), n)
	dev := NewBlockDevice[int32](n, 16)
	dev.Load(data)
	scratch := NewBlockDevice[int32](n, 16)
	ctx, cancel := context.WithCancel(bg)
	_, err := Sort(ctx, dev, scratch, n, Config{
		MemoryRecords: m,
		Progress: func(done, total int64, phase string) {
			if phase == "merge" {
				cancel() // first merge window: abandon the job
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("error should say canceled: %v", err)
	}

	// Already-canceled context: fails in run formation.
	dev2 := NewBlockDevice[int32](100, 16)
	dev2.Load(workload.Unsorted(rand.New(rand.NewSource(156)), 100))
	ctx2, cancel2 := context.WithCancel(bg)
	cancel2()
	if _, err := Sort(ctx2, dev2, NewBlockDevice[int32](100, 16), 100, Config{MemoryRecords: 16}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled: want context.Canceled, got %v", err)
	}
}
