package extsort

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

func TestBlockDeviceBasics(t *testing.T) {
	d := NewBlockDevice(64, 8)
	if d.Capacity() != 64 || d.BlockRecords() != 8 {
		t.Fatal("geometry wrong")
	}
	d.Write(0, []int32{1, 2, 3})
	got := make([]int32, 3)
	d.Read(0, got)
	if got[0] != 1 || got[2] != 3 {
		t.Fatalf("roundtrip: %v", got)
	}
	r, w := d.Stats()
	if r != 1 || w != 1 {
		t.Fatalf("io counts: r=%d w=%d", r, w)
	}
	// Range straddling a block boundary charges both blocks.
	d.ResetStats()
	d.Write(6, []int32{9, 9, 9, 9}) // records 6..9 touch blocks 0 and 1
	if _, w := d.Stats(); w != 2 {
		t.Fatalf("straddling write charged %d blocks", w)
	}
	// Zero-length I/O is free.
	d.Read(0, nil)
	if r, _ := d.Stats(); r != 0 {
		t.Fatalf("empty read charged %d", r)
	}
}

func TestBlockDevicePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"read-oob":    func() { NewBlockDevice(4, 2).Read(2, make([]int32, 3)) },
		"write-oob":   func() { NewBlockDevice(4, 2).Write(-1, make([]int32, 1)) },
		"zero-block":  func() { NewBlockDevice(4, 0) },
		"neg-cap":     func() { NewBlockDevice(-1, 2) },
		"load-exceed": func() { NewBlockDevice(1, 1).Load(make([]int32, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSortCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(150))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(5000)
		m := 6 + rng.Intn(200)
		block := 1 + rng.Intn(16)
		p := 1 + rng.Intn(4)
		data := workload.Unsorted(rng, n)
		dev := NewBlockDevice(n, block)
		dev.Load(data)
		stats := Sort(dev, n, Config{MemoryRecords: m, Workers: p})
		got := dev.Snapshot(n)
		if !verify.Sorted(got) {
			t.Fatalf("n=%d m=%d block=%d: not sorted", n, m, block)
		}
		if !verify.SameMultiset(got, data) {
			t.Fatalf("n=%d m=%d: records lost", n, m)
		}
		if n > 0 && stats.Runs != (n+m-1)/m {
			t.Fatalf("n=%d m=%d: %d runs, want %d", n, m, stats.Runs, (n+m-1)/m)
		}
	}
}

func TestSortEmptyAndTiny(t *testing.T) {
	dev := NewBlockDevice(10, 4)
	stats := Sort(dev, 0, Config{MemoryRecords: 6})
	if stats.Runs != 0 || stats.BlockReads != 0 {
		t.Fatalf("empty sort: %+v", stats)
	}
	dev.Load([]int32{3})
	Sort(dev, 1, Config{MemoryRecords: 6})
	if dev.Snapshot(1)[0] != 3 {
		t.Fatal("single record")
	}
}

func TestSortPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"range": func() { Sort(NewBlockDevice(4, 2), 5, Config{MemoryRecords: 6}) },
		"mem":   func() { Sort(NewBlockDevice(4, 2), 4, Config{MemoryRecords: 5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSortIOBound(t *testing.T) {
	// The external merge sort bound: run formation reads+writes everything
	// once; each of ceil(log2(ceil(N/M))) passes reads+writes everything
	// once; plus the final copy-back when the pass count is odd, plus
	// per-run block rounding slack.
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 20; trial++ {
		n := 1000 + rng.Intn(20000)
		m := 60 + rng.Intn(500)
		block := 4 + rng.Intn(13)
		data := workload.Unsorted(rng, n)
		dev := NewBlockDevice(n, block)
		dev.Load(data)
		stats := Sort(dev, n, Config{MemoryRecords: m, Workers: 2})

		runs := (n + m - 1) / m
		passes := 0
		for w := 1; w < runs; w <<= 1 {
			passes++
		}
		if stats.MergePasses != passes {
			t.Fatalf("n=%d m=%d: %d passes, want %d", n, m, stats.MergePasses, passes)
		}
		blocksN := uint64((n + block - 1) / block)
		// Generous rounding slack: every buffered read/write can waste one
		// block at each end, and there are ~n/(m/3) windows per pass.
		slackPerPass := uint64(3*(n/(m/3)+2) + 2*runs)
		totalPasses := uint64(passes + 1 + 1) // formation + passes + possible copy-back
		bound := 2 * totalPasses * (blocksN + slackPerPass)
		if got := stats.BlockReads + stats.BlockWrites; got > bound {
			t.Fatalf("n=%d m=%d block=%d: %d block transfers exceed bound %d",
				n, m, block, got, bound)
		}
	}
}

func TestSortIOScalesWithLogRuns(t *testing.T) {
	// Doubling memory (halving runs) must not increase total I/O.
	n := 1 << 15
	data := workload.Unsorted(rand.New(rand.NewSource(152)), n)
	var prev uint64 = math.MaxUint64
	for _, m := range []int{1 << 8, 1 << 10, 1 << 12, 1 << 14} {
		dev := NewBlockDevice(n, 16)
		dev.Load(data)
		stats := Sort(dev, n, Config{MemoryRecords: m, Workers: 2})
		total := stats.BlockReads + stats.BlockWrites
		if total > prev {
			t.Fatalf("m=%d: I/O %d grew from %d with more memory", m, total, prev)
		}
		prev = total
		if !verify.Sorted(dev.Snapshot(n)) {
			t.Fatalf("m=%d: not sorted", m)
		}
	}
}

func TestSortQuick(t *testing.T) {
	f := func(raw []int32, mSeed uint8, blockSeed uint8) bool {
		n := len(raw)
		dev := NewBlockDevice(n, 1+int(blockSeed)%8)
		dev.Load(raw)
		Sort(dev, n, Config{MemoryRecords: 6 + int(mSeed), Workers: 1})
		got := dev.Snapshot(n)
		return verify.Sorted(got) && verify.SameMultiset(got, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
