package harness

import (
	"fmt"

	"mergepath/internal/cachesim"
	"mergepath/internal/trace"
	"mergepath/internal/workload"
)

// Timing parameters for the roofline model (in abstract cycles). These are
// illustrative of a 2010-era Xeon's relative costs, not calibrated to any
// specific part: what matters for the Figure 5 shape is the *ratio*
// between compute throughput and memory-controller occupancy.
const (
	costAccess    = 1  // any data access (issue + L1 hit)
	costSharedHit = 10 // extra cycles for an L1 miss served by the LLC
	costMemory    = 40 // extra cycles of latency for a memory fill
	costMemBusy   = 6  // memory-controller occupancy per line transferred
)

// Fig5Roofline is E1c: the simulated Figure 5 *including memory effects*,
// which E1b's pure PRAM-cycle model deliberately omits. Per configuration
// it replays the real access trace of Algorithm 1 through the cache
// hierarchy and computes
//
//	T(p) = max( slowest core's compute+miss time,  total line traffic * controller occupancy )
//
// — a roofline: compute scales with p, the memory-controller term does
// not. Small inputs live in the LLC and speed up near-linearly; inputs
// far beyond the LLC saturate the memory roof, reproducing the paper's
// "slight reduction in performance for the bigger input arrays".
func Fig5Roofline(opt CacheOptions) *Table {
	// Sizes chosen so every configuration exceeds the cores' aggregate L1
	// (no superlinear cache effects) while spanning the LLC boundary: with
	// a 2 MiB LLC, 64K- and 128K-element inputs stay LLC-resident across
	// benchmark reps; 256K and 512K do not. Tests may override via
	// opt.RooflineSizes.
	sizes := opt.RooflineSizes
	if len(sizes) == 0 {
		sizes = []int{1 << 16, 1 << 17, 1 << 18, 1 << 19}
	}
	threads := []int{1, 2, 4, 6, 8, 10, 12}
	header := []string{"threads"}
	for _, n := range sizes {
		header = append(header, fmt.Sprintf("%s speedup", humanSize(n)))
	}
	t := NewTable("Figure 5 (roofline simulation) — speedup with cache hierarchy + memory bandwidth", header...)

	llc := &cachesim.Config{SizeBytes: 2 << 20, LineBytes: opt.LineBytes, Ways: 16}
	base := make([]uint64, len(sizes))
	times := make([][]uint64, len(threads))
	for ti, p := range threads {
		times[ti] = make([]uint64, len(sizes))
		for si, n := range sizes {
			a, b := workload.Pair(workload.Uniform, n, n, opt.Seed)
			sys := cachesim.NewSystem(cachesim.SystemConfig{
				Cores:   p,
				Private: []cachesim.Config{{SizeBytes: 32 << 10, LineBytes: opt.LineBytes, Ways: 8}},
				Shared:  llc,
			})
			space := trace.NewSpace()
			lay := trace.StandardLayout(space, n, n, uint64(opt.LineBytes))
			events := trace.RoundRobin(trace.ParallelMerge(a, b, p, lay))
			// The paper's Figure 5 times repeated merges of the same arrays,
			// so the measured iterations run against a warm LLC: inputs that
			// fit stay resident between reps, the biggest ones do not. Model
			// that by replaying the trace twice and costing only the second
			// pass.
			sys.Run(events)
			warmStats := sys.Stats()
			warmCores := sys.PerCore()
			sys.Run(events)

			var slowest uint64
			for i, c := range sys.PerCore() {
				c.Accesses -= warmCores[i].Accesses
				c.SharedHits -= warmCores[i].SharedHits
				c.MemoryReads -= warmCores[i].MemoryReads
				cycles := c.Accesses*costAccess +
					(c.SharedHits+c.MemoryReads)*costSharedHit +
					c.MemoryReads*costMemory
				if cycles > slowest {
					slowest = cycles
				}
			}
			memRoof := (sys.Stats().MemoryTraffic() - warmStats.MemoryTraffic()) * costMemBusy
			total := slowest
			if memRoof > total {
				total = memRoof
			}
			times[ti][si] = total
			if p == 1 {
				base[si] = total
			}
		}
	}
	for ti, p := range threads {
		cells := []interface{}{p}
		for si := range sizes {
			cells = append(cells, float64(base[si])/float64(times[ti][si]))
		}
		t.Addf(cells...)
	}
	t.Note = fmt.Sprintf("LLC = %s; costs: access %d, LLC hit +%d, memory +%d, controller %d cyc/line.\n"+
		"Small inputs fit the LLC (compute-bound, ~linear); the largest hit the bandwidth roof — the paper's droop.",
		humanSize(llc.SizeBytes), costAccess, costSharedHit, costMemory, costMemBusy)
	return t
}
