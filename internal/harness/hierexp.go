package harness

import (
	"fmt"

	"mergepath/internal/core"
	"mergepath/internal/stats"
	"mergepath/internal/workload"
)

// Hierarchical is the two-level partitioning ablation: the flat Algorithm 1
// against block/team decompositions with the same total worker count — the
// structure Merge Path's GPU descendants use, measured here for wall time
// and for the partition-search comparison counts (local searches bisect
// only a block's worth of elements).
func Hierarchical(opt Options) *Table {
	t := NewTable("Ablation — flat Algorithm 1 vs two-level (blocks x team) decomposition",
		"config", "workers", "time", "vs flat", "global search comparisons")
	n := opt.Sizes[0]
	a, b := workload.Pair(workload.Uniform, n, n, opt.Seed)
	out := make([]int32, 2*n)
	for _, total := range []int{4, 8, 12} {
		flat := stats.Measure(opt.Warmup, opt.Reps, func() {
			core.ParallelMerge(a, b, out, total)
		}).Median()
		_, flatComparisons := core.PartitionCounted(a, b, total)
		t.Addf(fmt.Sprintf("flat p=%d", total), total, flat.String(), 1.0, flatComparisons)
		for _, blocks := range []int{2, total} {
			team := total / blocks
			if team < 1 {
				team = 1
			}
			cfg := core.HierarchicalConfig{Blocks: blocks, TeamSize: team}
			med := stats.Measure(opt.Warmup, opt.Reps, func() {
				core.HierarchicalMerge(a, b, out, cfg)
			}).Median()
			_, comparisons := core.PartitionCounted(a, b, blocks)
			t.Addf(fmt.Sprintf("blocks=%d team=%d", blocks, team), blocks*team,
				med.String(), stats.Speedup(flat, med), comparisons)
		}
	}
	t.Note = "Global comparisons are the level-1 partition cost only; level-2 searches bisect <= a block (log(N/blocks))."
	return t
}
