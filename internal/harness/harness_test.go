package harness

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Title", "col1", "column2")
	tbl.Add("a", "b")
	tbl.Add("longer-cell") // missing second cell -> blank
	tbl.Add("x", "y", "dropped-extra")
	tbl.Note = "footnote"
	out := tbl.String()
	for _, want := range []string{"Title", "col1", "column2", "longer-cell", "footnote", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "dropped-extra") {
		t.Error("extra cell should have been dropped")
	}
	// All lines of the body should be equally aligned: header and rule have
	// the same length.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("header/rule misaligned: %q vs %q", lines[1], lines[2])
	}
}

func TestTableAddf(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.Addf(7, 3.14159, "s")
	if got := tbl.Rows[0]; got[0] != "7" || got[1] != "3.14" || got[2] != "s" {
		t.Errorf("row %v", got)
	}
}

// tinyOptions makes every experiment run in milliseconds for smoke tests.
func tinyOptions() Options {
	return Options{
		Sizes:   []int{1 << 10},
		Threads: []int{1, 2},
		Reps:    1,
		Warmup:  0,
		Seed:    1,
	}
}

func TestExperimentSmoke(t *testing.T) {
	opt := tinyOptions()
	for name, f := range map[string]func(Options) *Table{
		"fig5":      Fig5,
		"overhead":  Overhead,
		"partition": PartitionCost,
		"balance":   LoadBalance,
		"related":   RelatedWork,
		"sort":      SortSpeedup,
		"window":    WindowSweep,
		"kway":      KWay,
	} {
		tbl := f(opt)
		if tbl == nil || len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", name)
			continue
		}
		if tbl.String() == "" {
			t.Errorf("%s: empty rendering", name)
		}
	}
}

func TestCacheExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cache replay is slow")
	}
	opt := CacheOptions{Elements: 1 << 12, Seed: 1, LineBytes: 64}
	for name, f := range map[string]func(CacheOptions) *Table{
		"spm":     SPMvsBasic,
		"assoc":   Associativity,
		"private": PrivateCaches,
		"sort":    SortCacheTraffic,
	} {
		tbl := f(opt)
		if tbl == nil || len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", name)
			continue
		}
		if tbl.String() == "" {
			t.Errorf("%s: empty rendering", name)
		}
	}
}

func TestHumanSize(t *testing.T) {
	cases := map[int]string{
		1 << 20: "1M",
		4 << 20: "4M",
		2 << 10: "2K",
		1000:    "1000",
		0:       "0",
	}
	for n, want := range cases {
		if got := humanSize(n); got != want {
			t.Errorf("humanSize(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestDefaults(t *testing.T) {
	opt := Defaults()
	if len(opt.Sizes) == 0 || len(opt.Threads) == 0 || opt.Reps < 1 {
		t.Errorf("unusable defaults: %+v", opt)
	}
	copt := CacheDefaults()
	if copt.Elements == 0 || copt.LineBytes == 0 {
		t.Errorf("unusable cache defaults: %+v", copt)
	}
}

func TestRooflineSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cache replay is slow")
	}
	tbl := Fig5Roofline(CacheOptions{Elements: 1 << 12, Seed: 1, LineBytes: 64,
		RooflineSizes: []int{1 << 12, 1 << 13}})
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
}

func TestExternalSortIOSmoke(t *testing.T) {
	tbl := ExternalSortIO(Options{Sizes: []int{1 << 12}, Seed: 1})
	if len(tbl.Rows) == 0 {
		t.Fatal("empty table")
	}
}

func TestHierarchicalSmoke(t *testing.T) {
	tbl := Hierarchical(tinyOptions())
	if len(tbl.Rows) == 0 {
		t.Fatal("empty table")
	}
}

func TestSortNetworksSmoke(t *testing.T) {
	tbl := SortNetworks(tinyOptions())
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
}

func TestSetOpsSmoke(t *testing.T) {
	tbl := SetOps(tinyOptions())
	if len(tbl.Rows) != 9 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
}
