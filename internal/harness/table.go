// Package harness runs the paper-reproduction experiments: parameter
// sweeps with timed repetitions and aligned ASCII tables matching the rows
// and series the paper reports (Figure 5, the §VI overhead remark, and the
// extended experiments of DESIGN.md).
package harness

import (
	"fmt"
	"strings"
)

// Table is a simple aligned ASCII table.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; cells beyond the header width are dropped, missing
// cells are blank.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Addf appends a row of formatted cells: each argument is rendered with
// %v, except float64 which renders with two decimals.
func (t *Table) Addf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.Add(row...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		sb.WriteString(t.Note)
		sb.WriteByte('\n')
	}
	return sb.String()
}
