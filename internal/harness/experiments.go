package harness

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"mergepath/internal/baseline"
	"mergepath/internal/bitonic"
	"mergepath/internal/core"
	"mergepath/internal/kway"
	"mergepath/internal/psort"
	"mergepath/internal/spm"
	"mergepath/internal/stats"
	"mergepath/internal/workload"
)

// Options configures the experiment sweeps. The zero value is not useful;
// call Defaults.
type Options struct {
	Sizes   []int // per-input-array element counts for merge experiments
	Threads []int // worker counts (the paper's 1..12)
	Reps    int   // timed repetitions; the median is reported
	Warmup  int
	Seed    int64
}

// Defaults returns laptop-scale settings: the paper's thread ladder with
// input sizes reduced so the full suite runs in seconds. Pass the paper's
// sizes (1M..256M) via flags to cmd/mergebench for the full-scale run.
func Defaults() Options {
	return Options{
		Sizes:   []int{1 << 20, 4 << 20},
		Threads: []int{1, 2, 4, 6, 8, 10, 12},
		Reps:    5,
		Warmup:  1,
		Seed:    42,
	}
}

// Fig5 reproduces Figure 5: the speedup of parallel Merge Path over its own
// single-threaded run, one column per input size, one row per thread count.
// The paper reports near-linear speedup up to ~11.7x at 12 threads with a
// slight droop at the largest sizes.
func Fig5(opt Options) *Table {
	header := []string{"threads"}
	for _, n := range opt.Sizes {
		header = append(header, fmt.Sprintf("%s speedup", humanSize(n)))
	}
	t := NewTable("Figure 5 — Merge Path speedup vs single-thread Merge Path (median of reps)", header...)
	t.Note = "Paper (2x6-core X5670): near-linear, ~11.7x at 12 threads, slightly lower for the largest arrays."

	baselines := make([]time.Duration, len(opt.Sizes))
	type input struct{ a, b, out []int32 }
	inputs := make([]input, len(opt.Sizes))
	for i, n := range opt.Sizes {
		a, b := workload.Pair(workload.Uniform, n, n, opt.Seed)
		inputs[i] = input{a: a, b: b, out: make([]int32, 2*n)}
		baselines[i] = stats.Measure(opt.Warmup, opt.Reps, func() {
			core.ParallelMerge(a, b, inputs[i].out, 1)
		}).Median()
	}
	for _, p := range opt.Threads {
		cells := []interface{}{p}
		for i := range opt.Sizes {
			in := inputs[i]
			med := stats.Measure(opt.Warmup, opt.Reps, func() {
				core.ParallelMerge(in.a, in.b, in.out, p)
			}).Median()
			cells = append(cells, stats.Speedup(baselines[i], med))
		}
		t.Addf(cells...)
	}
	return t
}

// Overhead reproduces the §VI remark: single-threaded Merge Path vs a truly
// sequential merge (the paper measured ~6% overhead from the partitioning
// framework and OpenMP).
func Overhead(opt Options) *Table {
	t := NewTable("§VI remark — single-thread Merge Path overhead vs sequential merge",
		"size", "sequential", "mergepath p=1", "overhead %")
	t.Note = "Paper: ~6% slower than a truly sequential merge."
	for _, n := range opt.Sizes {
		a, b := workload.Pair(workload.Uniform, n, n, opt.Seed)
		out := make([]int32, 2*n)
		seq := stats.Measure(opt.Warmup, opt.Reps, func() {
			baseline.SequentialMerge(a, b, out)
		}).Median()
		mp := stats.Measure(opt.Warmup, opt.Reps, func() {
			core.ParallelMerge(a, b, out, 1)
		}).Median()
		t.Addf(humanSize(n), seq.String(), mp.String(),
			100*(float64(mp)-float64(seq))/float64(seq))
	}
	return t
}

// PartitionCost verifies Theorem 14 empirically: comparisons per diagonal
// search against the log2(min(|A|,|B|)) bound across array-size ratios.
func PartitionCost(opt Options) *Table {
	t := NewTable("Theorem 14 — diagonal search cost (comparisons, worst over p-1 diagonals)",
		"|A|", "|B|", "p", "max comparisons", "log2(min)+1 bound")
	n := opt.Sizes[0]
	for _, ratio := range []int{1, 4, 64, 4096} {
		na, nb := n, n/ratio
		if nb < 1 {
			nb = 1
		}
		a, b := workload.Pair(workload.Uniform, na, nb, opt.Seed)
		for _, p := range []int{2, 8, 32} {
			maxSteps := 0
			total := na + nb
			for i := 1; i < p; i++ {
				if _, steps := core.SearchDiagonalCounted(a, b, i*total/p); steps > maxSteps {
					maxSteps = steps
				}
			}
			bound := int(math.Log2(float64(min(na, nb)))) + 1
			t.Addf(humanSize(na), humanSize(nb), p, maxSteps, bound)
		}
	}
	return t
}

// LoadBalance reproduces E4: Merge Path's exact segment balance against
// the Shiloach–Vishkin block partition's up-to-2x imbalance, per workload.
func LoadBalance(opt Options) *Table {
	t := NewTable("E4 — load balance: max/mean elements per processor (1.00 is perfect)",
		"workload", "p", "merge path", "shiloach-vishkin")
	n := opt.Sizes[0]
	for _, kind := range workload.Kinds() {
		a, b := workload.Pair(kind, n, n, opt.Seed)
		for _, p := range []int{4, 12} {
			mean := float64(2*n) / float64(p)
			mpMax := 0
			for _, l := range core.SegmentLengths(core.Partition(a, b, p)) {
				if l > mpMax {
					mpMax = l
				}
			}
			svMax := 0
			for _, l := range baseline.ShiloachVishkinLoads(a, b, p) {
				if l > svMax {
					svMax = l
				}
			}
			t.Addf(string(kind), p, float64(mpMax)/mean, float64(svMax)/mean)
		}
	}
	return t
}

// RelatedWork reproduces E9: wall time of the §V algorithm family on the
// same merge, plus comparison-count work for the bitonic network.
func RelatedWork(opt Options) *Table {
	t := NewTable("E9 — §V related-work comparison (median wall time)",
		"algorithm", "p", "time", "speedup vs seq")
	n := opt.Sizes[0]
	a, b := workload.Pair(workload.Uniform, n, n, opt.Seed)
	out := make([]int32, 2*n)
	seq := stats.Measure(opt.Warmup, opt.Reps, func() {
		baseline.SequentialMerge(a, b, out)
	}).Median()
	t.Addf("sequential", 1, seq.String(), 1.0)
	algos := []struct {
		name string
		run  func(p int)
	}{
		{"merge-path", func(p int) { core.ParallelMerge(a, b, out, p) }},
		{"akl-santoro", func(p int) { baseline.AklSantoroMerge(a, b, out, p) }},
		{"deo-sarkar", func(p int) { baseline.DeoSarkarMerge(a, b, out, p) }},
		{"shiloach-vishkin", func(p int) { baseline.ShiloachVishkinMerge(a, b, out, p) }},
		{"bitonic-merge", func(p int) { bitonic.MergeParallel(a, b, out, p) }},
		{"odd-even-merge", func(p int) { bitonic.OddEvenMerge(a, b, out) }},
	}
	for _, algo := range algos {
		for _, p := range opt.Threads {
			med := stats.Measure(opt.Warmup, opt.Reps, func() { algo.run(p) }).Median()
			t.Addf(algo.name, p, med.String(), stats.Speedup(seq, med))
		}
	}
	t.Note = fmt.Sprintf("bitonic-merge performs %d compare-exchanges vs %d merge steps (Theta(NlogN) vs O(N) work).",
		bitonic.MergeComparators(2*n), 2*n)
	return t
}

// SortSpeedup reproduces E7: parallel merge-sort speedup over its own
// single-thread run, per input size.
func SortSpeedup(opt Options) *Table {
	header := []string{"threads"}
	for _, n := range opt.Sizes {
		header = append(header, fmt.Sprintf("%s speedup", humanSize(n)))
	}
	t := NewTable("E7 — parallel merge sort speedup (§III)", header...)
	type input struct{ data, scratch []int32 }
	inputs := make([]input, len(opt.Sizes))
	baselines := make([]time.Duration, len(opt.Sizes))
	for i, n := range opt.Sizes {
		data := workload.Unsorted(rand.New(rand.NewSource(opt.Seed)), n)
		inputs[i] = input{data: data, scratch: make([]int32, n)}
		baselines[i] = stats.Measure(opt.Warmup, opt.Reps, func() {
			copy(inputs[i].scratch, data)
			psort.Sort(inputs[i].scratch, 1)
		}).Median()
	}
	for _, p := range opt.Threads {
		cells := []interface{}{p}
		for i := range opt.Sizes {
			in := inputs[i]
			med := stats.Measure(opt.Warmup, opt.Reps, func() {
				copy(in.scratch, in.data)
				psort.Sort(in.scratch, p)
			}).Median()
			cells = append(cells, stats.Speedup(baselines[i], med))
		}
		t.Addf(cells...)
	}
	t.Note = "Includes the copy of the input each rep; speedups are therefore slightly compressed."
	return t
}

// WindowSweep is the L-sweep ablation for Algorithm 2: wall time of the
// segmented merge across window sizes, against basic parallel merge.
func WindowSweep(opt Options) *Table {
	t := NewTable("Ablation — SPM window size L (Algorithm 2), wall time",
		"L (elements)", "p", "time", "vs basic parallel merge")
	n := opt.Sizes[0]
	a, b := workload.Pair(workload.Uniform, n, n, opt.Seed)
	out := make([]int32, 2*n)
	for _, p := range []int{1, 4} {
		basic := stats.Measure(opt.Warmup, opt.Reps, func() {
			core.ParallelMerge(a, b, out, p)
		}).Median()
		for _, l := range []int{256, 1024, 4096, 16384, 65536} {
			med := stats.Measure(opt.Warmup, opt.Reps, func() {
				spm.Merge(a, b, out, spm.Config{Window: l, Workers: p})
			}).Median()
			t.Addf(l, p, med.String(), stats.Speedup(basic, med))
		}
	}
	t.Note = "On real hardware SPM pays windowing overhead; its payoff is cache behaviour (see cmd/cachesim)."
	return t
}

// kwayLists builds k sorted runs totalling ~n elements in the named
// skew: "uniform" (independent uniform runs), "dups" (4 distinct
// values — every merge step is a tie), "presorted" (disjoint ascending
// ranges, so the merged output is the concatenation) and "onelong"
// (one run holds ~90% of the data, the rest split the remainder).
func kwayLists(k, n int, skew string, seed int64) [][]int32 {
	lists := make([][]int32, k)
	switch skew {
	case "dups":
		for i := range lists {
			la, _ := workload.Pair(workload.Duplicates, n/k, 0, seed+int64(i))
			lists[i] = la
		}
	case "presorted":
		for i := range lists {
			la, _ := workload.Pair(workload.Uniform, n/k, 0, seed+int64(i))
			off := int32(i) * (1 << 21) // disjoint value ranges in list order
			for j := range la {
				la[j] = la[j]%(1<<20) + off
			}
			lists[i] = la
		}
	case "onelong":
		long := n * 9 / 10
		rest := (n - long) / (k - 1)
		for i := range lists {
			sz := rest
			if i == 0 {
				sz = long
			}
			la, _ := workload.Pair(workload.Uniform, sz, 0, seed+int64(i))
			lists[i] = la
		}
	default: // uniform
		for i := range lists {
			la, _ := workload.Pair(workload.Uniform, n/k, 0, seed+int64(i))
			lists[i] = la
		}
	}
	return lists
}

// KWay benches the three k-way merge strategies — sequential heap,
// merge-path tree, co-ranking windows — across k and input skews, with
// the co-rank per-worker imbalance in the last column (extension
// experiment; algorithms in docs/KWAY.md).
func KWay(opt Options) *Table {
	t := NewTable("Extension — k-way merge strategies: heap vs tree vs co-rank",
		"k", "skew", "p", "heap", "tree", "corank", "corank-vs-heap", "imbalance")
	n := opt.Sizes[0]
	for _, k := range []int{4, 16, 64} {
		for _, skew := range []string{"uniform", "dups", "presorted", "onelong"} {
			lists := kwayLists(k, n, skew, opt.Seed)
			total := 0
			for _, l := range lists {
				total += len(l)
			}
			dst := make([]int32, total)
			heapTime := stats.Measure(opt.Warmup, opt.Reps, func() {
				kway.MergeIntoStats(dst, lists, 1, kway.StrategyHeap)
			}).Median()
			for _, p := range []int{1, 4} {
				tree := stats.Measure(opt.Warmup, opt.Reps, func() {
					kway.MergeIntoStats(dst, lists, p, kway.StrategyTree)
				}).Median()
				var st kway.Stats
				corank := stats.Measure(opt.Warmup, opt.Reps, func() {
					_, st = kway.MergeIntoStats(dst, lists, p, kway.StrategyCoRank)
				}).Median()
				t.Addf(k, skew, p, heapTime.String(), tree.String(), corank.String(),
					stats.Speedup(heapTime, corank), fmt.Sprintf("%.3f", st.Imbalance))
			}
		}
	}
	t.Note = "Imbalance is max/mean elements per co-rank window (Theorem 5 extended to k runs); ~1.0 on every row by construction."
	return t
}

func humanSize(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprint(n)
	}
}

// SortNetworks compares the §V sorting-network family against the paper's
// merge-based parallel sort: wall time plus compare-exchange counts (the
// networks' work is Theta(N·log^2 N) vs the merge sort's O(N·logN)
// comparisons).
func SortNetworks(opt Options) *Table {
	t := NewTable("§V family — sorting networks vs parallel merge sort",
		"algorithm", "p", "time", "compare-exchanges")
	n := opt.Sizes[0]
	if n > 1<<19 {
		n = 1 << 19 // the networks are superlinear; keep the sweep quick
	}
	data := workload.Unsorted(rand.New(rand.NewSource(opt.Seed)), n)
	scratch := make([]int32, n)
	mergeComparisons := 0
	for w := 1; w < n; w <<= 1 {
		mergeComparisons += n // at most n comparisons per merge level
	}
	for _, p := range []int{1, 4} {
		med := stats.Measure(opt.Warmup, opt.Reps, func() {
			copy(scratch, data)
			psort.Sort(scratch, p)
		}).Median()
		t.Addf("merge-sort", p, med.String(), mergeComparisons)
		med = stats.Measure(opt.Warmup, opt.Reps, func() {
			copy(scratch, data)
			bitonic.SortParallel(scratch, p)
		}).Median()
		t.Addf("bitonic", p, med.String(), bitonic.SortComparators(n))
		med = stats.Measure(opt.Warmup, opt.Reps, func() {
			copy(scratch, data)
			bitonic.OddEvenSortParallel(scratch, p)
		}).Median()
		t.Addf("odd-even", p, med.String(), bitonic.OddEvenComparators(n))
	}
	t.Note = fmt.Sprintf("n = %s; merge-sort count is the upper bound n per level.", humanSize(n))
	return t
}
