package harness

import (
	"fmt"

	"mergepath/internal/core"
	"mergepath/internal/workload"
)

// Fig5Simulated reproduces Figure 5's *shape* on any host, including
// single-core containers where wall-clock speedup is unmeasurable: it
// computes each worker's operation count under the PRAM cost model the
// paper analyzes (diagonal-search comparisons plus merge steps) and takes
// simulated parallel time as the slowest worker (the barrier semantics of
// Algorithm 1). Speedup = T(1)/T(p) = N / (N/p + O(logN)) — near-linear
// with the slight sub-linearity the partition overhead causes. What this
// deliberately does not model is memory-bandwidth saturation, the paper's
// other droop source at 64M/256M elements; see EXPERIMENTS.md.
func Fig5Simulated(opt Options) *Table {
	header := []string{"threads"}
	for _, n := range opt.Sizes {
		header = append(header, fmt.Sprintf("%s speedup", humanSize(n)))
	}
	t := NewTable("Figure 5 (simulated PRAM cycles) — Merge Path speedup", header...)
	t.Note = "Simulated time = slowest worker's ops (search comparisons + merge steps); use -experiment fig5 on a multi-core host for wall-clock."

	type prepared struct{ a, b []int32 }
	inputs := make([]prepared, len(opt.Sizes))
	for i, n := range opt.Sizes {
		a, b := workload.Pair(workload.Uniform, n, n, opt.Seed)
		inputs[i] = prepared{a, b}
	}
	for _, p := range opt.Threads {
		cells := []interface{}{p}
		for i := range opt.Sizes {
			in := inputs[i]
			cells = append(cells, float64(simCycles(in.a, in.b, 1))/float64(simCycles(in.a, in.b, p)))
		}
		t.Addf(cells...)
	}
	return t
}

// simCycles returns the critical-path operation count of Algorithm 1 with
// p workers: per worker, 2 ops per search comparison plus its segment
// length in merge steps (each step = bounded ops regardless of outcome,
// per Corollary 7); the barrier makes the maximum the elapsed time.
func simCycles(a, b []int32, p int) int {
	total := len(a) + len(b)
	if p > total {
		p = max(total, 1)
	}
	worst := 0
	for i := 0; i < p; i++ {
		lo := i * total / p
		hi := (i + 1) * total / p
		_, comparisons := core.SearchDiagonalCounted(a, b, lo)
		cost := 2*comparisons + (hi - lo)
		if cost > worst {
			worst = cost
		}
	}
	return worst
}
