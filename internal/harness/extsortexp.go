package harness

import (
	"context"
	"math/rand"

	"mergepath/internal/extsort"
	"mergepath/internal/workload"
)

// ExternalSortIO is the external-sorting extension experiment: block I/O
// of the merge-path-based external sort as the in-memory workspace M
// shrinks, against the analytic 2·N/B·(1+ceil(log2(N/M))) transfer count.
// It demonstrates the paper's algorithm working as the engine of the
// textbook external merge sort with the I/O behaviour theory predicts.
func ExternalSortIO(opt Options) *Table {
	t := NewTable("Extension — external merge sort on a simulated block device",
		"N records", "M records", "runs", "passes", "block transfers", "analytic 2N/B(1+passes)", "ratio")
	n := opt.Sizes[0]
	if n > 1<<20 {
		n = 1 << 20 // the device simulation is per-access; cap it
	}
	const block = 16
	data := workload.Unsorted(rand.New(rand.NewSource(opt.Seed)), n)
	for _, m := range []int{n / 256, n / 64, n / 16, n / 4} {
		if m < 6 {
			continue
		}
		dev := extsort.NewBlockDevice[int32](n, block)
		dev.Load(data)
		scratch := extsort.NewBlockDevice[int32](n, block)
		stats, err := extsort.Sort(context.Background(), dev, scratch, n,
			extsort.Config{MemoryRecords: m, Workers: 4})
		if err != nil {
			panic(err) // in-memory devices cannot fail; config is static
		}
		got := stats.BlockReads + stats.BlockWrites
		analytic := uint64(2 * (n / block) * (1 + stats.MergePasses))
		t.Addf(humanSize(n), humanSize(m), stats.Runs, stats.MergePasses, got, analytic,
			float64(got)/float64(analytic))
	}
	t.Note = "ratio > 1 is block-rounding of buffered reads plus the copy-back pass when the pass count is odd; passes shrink with the k-way fan-in."
	return t
}
