package harness

import (
	"fmt"
	"math/rand"

	"mergepath/internal/setops"
	"mergepath/internal/stats"
	"mergepath/internal/workload"
)

// SetOps is the X7 extension experiment: throughput of the parallel
// sorted-set operations on Zipf-skewed postings-shaped inputs.
func SetOps(opt Options) *Table {
	t := NewTable("Extension — parallel sorted-set algebra (Zipf-skewed inputs)",
		"op", "p", "time", "output size")
	n := opt.Sizes[0]
	rng := rand.New(rand.NewSource(opt.Seed))
	a := workload.SortedZipf(rng, n, n/4)
	b := workload.SortedZipf(rng, n, n/4)
	ops := []struct {
		name string
		run  func(p int) int
	}{
		{"union", func(p int) int { return len(setops.Union(a, b, p)) }},
		{"intersect", func(p int) int { return len(setops.Intersect(a, b, p)) }},
		{"diff", func(p int) int { return len(setops.Diff(a, b, p)) }},
	}
	for _, op := range ops {
		for _, p := range []int{1, 4, 8} {
			size := 0
			med := stats.Measure(opt.Warmup, opt.Reps, func() {
				size = op.run(p)
			}).Median()
			t.Addf(op.name, p, med.String(), size)
		}
	}
	t.Note = fmt.Sprintf("inputs: 2 x %s Zipf(1.3) document-frequency lists.", humanSize(n))
	return t
}
