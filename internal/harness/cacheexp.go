package harness

import (
	"fmt"

	"mergepath/internal/cachesim"
	"mergepath/internal/trace"
	"mergepath/internal/workload"
)

// CacheOptions configures the simulated-cache experiments. Sizes here are
// deliberately small: the simulator replays every access, so 128K-element
// merges already produce millions of events.
type CacheOptions struct {
	Elements  int   // per input array
	Seed      int64 // workload seed
	LineBytes int
	// RooflineSizes overrides Fig5Roofline's built-in size ladder (used by
	// fast tests); empty selects the standard sizes.
	RooflineSizes []int
}

// CacheDefaults returns the standard configuration: 64-byte lines, inputs
// big enough to dwarf the simulated caches.
func CacheDefaults() CacheOptions {
	return CacheOptions{Elements: 1 << 16, Seed: 7, LineBytes: 64}
}

// sharedCacheSystem builds a system whose only level is one shared cache —
// the cache-size-C model §IV.B reasons about.
func sharedCacheSystem(cores, sizeBytes, lineBytes, ways int) *cachesim.System {
	return cachesim.NewSystem(cachesim.SystemConfig{
		Cores:  cores,
		Shared: &cachesim.Config{SizeBytes: sizeBytes, LineBytes: lineBytes, Ways: ways},
	})
}

// compulsoryFloor returns the minimum line traffic for merging two
// n-element arrays: inputs read once, output lines fetched (write-allocate)
// and written back once.
func compulsoryFloor(n, lineBytes int) uint64 {
	elemsPerLine := uint64(lineBytes / 4)
	inputLines := uint64(2*n) / elemsPerLine
	outputLines := uint64(2*n) / elemsPerLine
	return inputLines + 2*outputLines
}

// runBasic replays Algorithm 1 with p workers on the given system and
// returns total memory traffic (including the end-of-run flush).
func runBasic(sys *cachesim.System, a, b []int32, p int, align uint64, lineBytes int) uint64 {
	space := trace.NewSpace()
	lay := trace.StandardLayout(space, len(a), len(b), align)
	sys.Run(trace.RoundRobin(trace.ParallelMerge(a, b, p, lay)))
	sys.Flush()
	return sys.Stats().MemoryTraffic()
}

// runSPM replays Algorithm 2 likewise.
func runSPM(sys *cachesim.System, a, b []int32, window, p int, align uint64, lineBytes int) uint64 {
	space := trace.NewSpace()
	lay := trace.StandardLayout(space, len(a), len(b), align)
	sys.Run(trace.SPM(a, b, window, p, lay))
	sys.Flush()
	return sys.Stats().MemoryTraffic()
}

// SPMvsBasic reproduces E5 — the §IV.B claim that the segmented merge keeps
// its working set resident regardless of how many workers share the cache.
//
// The adversarial-but-realistic setting: all three arrays are aligned to
// the cache-span boundary (malloc of big arrays is page- and often
// huge-page-aligned, and cache span divides those), and the per-worker
// segment stride N/p is a multiple of the cache span, so in the BASIC
// algorithm every worker's a-stream (and b-stream, and out-stream) maps to
// the SAME cache sets — 3p streams fighting over a few sets. SPM confines
// all p workers to one 3L-element window, so their streams occupy distinct
// sets by construction. The paper's Theorem 16/§IV.B working-set argument
// in measurable form.
func SPMvsBasic(opt CacheOptions) *Table {
	t := NewTable("E5 — shared-cache memory traffic, way-aligned arrays: basic Merge Path vs SPM",
		"workload", "N per array", "cache", "ways", "p", "basic/floor", "spm/floor")
	n := opt.Elements
	for _, kind := range []workload.Kind{workload.Interleave, workload.Uniform} {
		a, b := workload.Pair(kind, n, n, opt.Seed)
		for _, cacheBytes := range []int{32 << 10, 128 << 10} {
			window := cacheBytes / 4 / 3
			for _, ways := range []int{4, 8} {
				align := uint64(cacheBytes / ways) // way span: same-index lines alias
				for _, p := range []int{1, 4, 8} {
					floor := compulsoryFloor(n, opt.LineBytes)
					basic := runBasic(sharedCacheSystem(max(p, 1), cacheBytes, opt.LineBytes, ways), a, b, p, align, opt.LineBytes)
					spmT := runSPM(sharedCacheSystem(max(p, 1), cacheBytes, opt.LineBytes, ways), a, b, window, p, align, opt.LineBytes)
					t.Addf(string(kind), humanSize(n), humanSize(cacheBytes), ways, p,
						float64(basic)/float64(floor), float64(spmT)/float64(floor))
				}
			}
		}
	}
	t.Note = "floor = compulsory line traffic (inputs once, output fetch+writeback). 1.00 is optimal.\n" +
		"Basic: p worker triples of streams alias into the same sets (segment stride is a multiple of the way span).\n" +
		"SPM: all workers share one cache-sized window, so streams occupy distinct sets (§IV.B)."
	return t
}

// Associativity reproduces E6 — the §IV.B remark that 3-way associativity
// suffices for the segmented algorithm. A single in-window merge touches
// three element streams (a-window, b-window, out-window); with the arrays
// way-aligned these three streams can collide in one set, so 1- and 2-way
// caches thrash while >= 3 ways track the compulsory floor. The basic
// algorithm with p workers needs up to 3p ways under the same alignment.
func Associativity(opt CacheOptions) *Table {
	t := NewTable("E6 — associativity sweep at constant set count (set-span-aligned arrays): traffic / compulsory floor",
		"ways", "cache", "spm p=1", "spm p=4", "basic p=4", "basic p=8")
	n := opt.Elements / 2
	a, b := workload.Pair(workload.Interleave, n, n, opt.Seed)
	// Standard associativity methodology: hold the set count fixed (so the
	// aliasing geometry is identical in every row) and let capacity grow
	// with the way count. Arrays are aligned to the set span, so
	// same-logical-offset lines of a, b and out land in the same set.
	const sets = 128
	setSpan := uint64(sets * opt.LineBytes)
	floor := float64(compulsoryFloor(n, opt.LineBytes))
	for _, ways := range []int{1, 2, 3, 4, 6, 8, 12, 16, 24} {
		cacheBytes := ways * int(setSpan)
		window := cacheBytes / 4 / 3
		spm1 := runSPM(sharedCacheSystem(1, cacheBytes, opt.LineBytes, ways), a, b, window, 1, setSpan, opt.LineBytes)
		spm4 := runSPM(sharedCacheSystem(4, cacheBytes, opt.LineBytes, ways), a, b, window, 4, setSpan, opt.LineBytes)
		basic4 := runBasic(sharedCacheSystem(4, cacheBytes, opt.LineBytes, ways), a, b, 4, setSpan, opt.LineBytes)
		basic8 := runBasic(sharedCacheSystem(8, cacheBytes, opt.LineBytes, ways), a, b, 8, setSpan, opt.LineBytes)
		t.Addf(ways, humanSize(cacheBytes),
			float64(spm1)/floor, float64(spm4)/floor, float64(basic4)/floor, float64(basic8)/floor)
	}
	t.Note = "Paper remark (§IV.B): 3-way associativity suffices for SPM; the basic algorithm's worst case needs ~3p ways."
	return t
}

// PrivateCaches reproduces the coherence side of §IV: the basic parallel
// merge on private per-core caches, measuring invalidations and coherence
// writebacks (false sharing arises only at the workers' output boundary
// lines — the lock-free partitioning keeps everything else disjoint).
func PrivateCaches(opt CacheOptions) *Table {
	t := NewTable("§IV — private caches: coherence traffic of basic Merge Path",
		"N per array", "p", "L1 miss rate", "invalidations", "downgrades", "boundary lines")
	// Three regimes: n=2000 makes segment seams fall mid-line while the
	// segments fit in L1, so boundary false sharing is visible (bounded by
	// ~3 lines per seam); n=2048 line-aligns every seam, eliminating it;
	// large n evicts boundary lines before the neighbour touches them —
	// the paper's "no communication" Remark.
	for _, n := range []int{2000, 2048, opt.Elements / 2} {
		a, b := workload.Pair(workload.Uniform, n, n, opt.Seed)
		for _, p := range []int{2, 4, 8} {
			sys := cachesim.NewSystem(cachesim.SystemConfig{
				Cores:   p,
				Private: []cachesim.Config{{SizeBytes: 32 << 10, LineBytes: opt.LineBytes, Ways: 8}},
				Shared:  &cachesim.Config{SizeBytes: 2 << 20, LineBytes: opt.LineBytes, Ways: 16},
			})
			space := trace.NewSpace()
			lay := trace.StandardLayout(space, n, n, uint64(opt.LineBytes))
			sys.Run(trace.RoundRobin(trace.ParallelMerge(a, b, p, lay)))
			st := sys.Stats()
			// Each adjacent worker pair shares at most one output line plus
			// the input lines straddling the partition points.
			t.Addf(humanSize(n), p, fmt.Sprintf("%.4f", st.MissRate()), st.Invalidations, st.Downgrades, 3*(p-1))
		}
	}
	t.Note = "Invalidations stay within ~3 lines per worker boundary: the Remark of §III in coherence-traffic form."
	return t
}

// SortCacheTraffic reproduces E8: total simulated memory traffic of the
// merge rounds of a merge sort (basic parallel merges vs segmented), from
// sorted runs of one cache each, with way-aligned arrays as in E5.
func SortCacheTraffic(opt CacheOptions) *Table {
	t := NewTable("E8 — merge-round memory traffic of the sort (§IV.C): basic vs segmented",
		"N total", "cache", "ways", "basic/floor", "spm/floor")
	n := opt.Elements
	cacheBytes := 32 << 10
	cacheElems := cacheBytes / 4
	window := cacheElems / 3
	p := 4
	ways := 4
	align := uint64(cacheBytes / ways)

	full, _ := workload.Pair(workload.Uniform, n, 0, opt.Seed)
	var runs [][]int32
	for lo := 0; lo < n; lo += cacheElems {
		hi := min(lo+cacheElems, n)
		runs = append(runs, append([]int32(nil), full[lo:hi]...))
	}

	basicTotal, spmTotal, floorTotal := uint64(0), uint64(0), uint64(0)
	for len(runs) > 1 {
		var next [][]int32
		for m := 0; m+1 < len(runs); m += 2 {
			a, b := runs[m], runs[m+1]
			basicTotal += runBasic(sharedCacheSystem(p, cacheBytes, opt.LineBytes, ways), a, b, p, align, opt.LineBytes)
			spmTotal += runSPM(sharedCacheSystem(p, cacheBytes, opt.LineBytes, ways), a, b, window, p, align, opt.LineBytes)
			// floor for unequal halves: count directly.
			elemsPerLine := uint64(opt.LineBytes / 4)
			lines := uint64(len(a)+len(b)) / elemsPerLine
			floorTotal += lines + 2*lines
			merged := make([]int32, len(a)+len(b))
			copyMerge(a, b, merged)
			next = append(next, merged)
		}
		if len(runs)%2 == 1 {
			next = append(next, runs[len(runs)-1])
		}
		runs = next
	}
	t.Addf(humanSize(n), humanSize(cacheBytes), ways,
		float64(basicTotal)/float64(floorTotal), float64(spmTotal)/float64(floorTotal))
	t.Note = "Block sort phase is identical for both variants and excluded; only merge rounds differ."
	return t
}

// copyMerge is a local two-pointer merge for advancing the sort state.
func copyMerge(a, b, out []int32) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
		k++
	}
	for i < len(a) {
		out[k] = a[i]
		i++
		k++
	}
	for j < len(b) {
		out[k] = b[j]
		j++
		k++
	}
}
