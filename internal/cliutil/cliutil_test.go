package cliutil

import "testing"

func TestParseSizes(t *testing.T) {
	got, err := ParseSizes("1M, 4m,16K,1000, 2k")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1 << 20, 4 << 20, 16 << 10, 1000, 2 << 10}
	if len(got) != len(want) {
		t.Fatalf("len %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d: %d want %d", i, got[i], want[i])
		}
	}
}

func TestParseSizesErrors(t *testing.T) {
	for _, bad := range []string{"", "x", "0", "-1", "1M,oops", "K"} {
		if _, err := ParseSizes(bad); err == nil {
			t.Errorf("%q: expected error", bad)
		}
	}
}

func TestParsePositiveInts(t *testing.T) {
	got, err := ParsePositiveInts("1, 2,12")
	if err != nil || len(got) != 3 || got[2] != 12 {
		t.Fatalf("got %v err %v", got, err)
	}
	for _, bad := range []string{"", "0", "-3", "a", "1,,2"} {
		if _, err := ParsePositiveInts(bad); err == nil {
			t.Errorf("%q: expected error", bad)
		}
	}
}
