// Package cliutil holds the small flag-parsing helpers shared by the
// experiment commands: element-count lists with K/M suffixes and
// positive-integer lists.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSizes parses a comma-separated list of element counts; each entry
// may carry a K (x1024) or M (x1048576) suffix, case-insensitive.
func ParseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		mult := 1
		switch {
		case strings.HasSuffix(p, "M"), strings.HasSuffix(p, "m"):
			mult = 1 << 20
			p = p[:len(p)-1]
		case strings.HasSuffix(p, "K"), strings.HasSuffix(p, "k"):
			mult = 1 << 10
			p = p[:len(p)-1]
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad size %q", p)
		}
		out = append(out, v*mult)
	}
	return out, nil
}

// ParsePositiveInts parses a comma-separated list of positive integers
// (thread counts and the like).
func ParsePositiveInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad count %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
