package spm

import "testing"

func TestRingFillAtDrop(t *testing.T) {
	r := newRing[int](5) // rounds up to capacity 8
	if got := r.fill([]int{1, 2, 3, 4, 5, 6}, 6); got != 6 {
		t.Fatalf("fill staged %d, want 6", got)
	}
	r.drop(4)
	if r.len() != 2 {
		t.Fatalf("len = %d, want 2", r.len())
	}
	if r.at(0) != 5 || r.at(1) != 6 {
		t.Fatalf("head elements %d,%d, want 5,6", r.at(0), r.at(1))
	}
	// Wrap the head around the physical end.
	if got := r.fill([]int{7, 8, 9, 10, 11, 12}, 6); got != 6 {
		t.Fatalf("refill staged %d, want 6", got)
	}
	for i, want := range []int{5, 6, 7, 8, 9, 10, 11, 12} {
		if r.at(i) != want {
			t.Fatalf("at(%d) = %d, want %d", i, r.at(i), want)
		}
	}
	r.drop(8)
	if r.len() != 0 {
		t.Fatalf("len = %d after dropping all, want 0", r.len())
	}
}

func TestRingDropBoundsChecked(t *testing.T) {
	// drop(k) with k > n used to silently corrupt head/n; it must be a
	// loud invariant panic instead.
	for _, k := range []int{-1, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("drop(%d) with 2 staged elements did not panic", k)
				}
			}()
			r := newRing[int](4)
			r.fill([]int{1, 2}, 2)
			r.drop(k)
		}()
	}
	// Dropping exactly n is legal.
	r := newRing[int](4)
	r.fill([]int{1, 2}, 2)
	r.drop(2)
	if r.len() != 0 {
		t.Fatalf("len = %d, want 0", r.len())
	}
}
