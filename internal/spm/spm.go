// Package spm implements Algorithm 2 of the paper, Segmented Parallel Merge
// (§IV.B): the merge path is cut into windows of length L = C/3 (C the
// cache size in elements); each window stages the next L unconsumed
// elements of each input into cyclic buffers, locates the p in-window
// worker start points by diagonal binary search over the staged elements
// (Theorem 16 guarantees the staged prefixes suffice), merges L output
// elements in parallel, writes them out, and refills only what was
// consumed. At any instant at most 3L = C elements (two input buffers plus
// the output window) are live, so the working set fits the cache
// regardless of N.
package spm

import (
	"cmp"
	"sync"
)

// Config parameterizes a segmented merge.
type Config struct {
	// Window is L, the number of output elements produced per iteration;
	// the paper sets L = C/3 for a cache of C elements. Values < 1 select
	// DefaultWindow.
	Window int
	// Workers is p, the number of goroutines merging inside each window.
	// Values < 1 select 1.
	Workers int
}

// DefaultWindow corresponds to one third of a 32 KB L1 holding 4-byte
// elements: (32<<10)/4/3 ≈ 2730, rounded to a friendly power of two.
const DefaultWindow = 2048

// Stats reports what a segmented merge did, for the cache experiments and
// the L-sweep ablation.
type Stats struct {
	Windows     int // number of sequential iterations (≈ ceil(total/L))
	StagedA     int // elements of a that passed through the staging buffer
	StagedB     int // elements of b staged
	MaxResident int // max staged+window elements live at once (≤ 3L)
}

// Merge merges sorted a and b into out (len(out) == len(a)+len(b)) with the
// segmented parallel merge and returns its statistics.
func Merge[T cmp.Ordered](a, b, out []T, cfg Config) Stats {
	if len(out) != len(a)+len(b) {
		panic("spm: output length mismatch")
	}
	l := cfg.Window
	if l < 1 {
		l = DefaultWindow
	}
	p := cfg.Workers
	if p < 1 {
		p = 1
	}

	bufA := newRing[T](l)
	bufB := newRing[T](l)
	var stats Stats
	remA, remB := a, b // unfetched suffixes
	done := 0
	total := len(out)
	for done < total {
		// Step 1 of Algorithm 2: fetch replacements for consumed elements —
		// on the first iteration this fills both buffers to L.
		fetched := bufA.fill(remA, l-bufA.len())
		remA = remA[fetched:]
		stats.StagedA += fetched
		fetched = bufB.fill(remB, l-bufB.len())
		remB = remB[fetched:]
		stats.StagedB += fetched

		steps := l
		if avail := bufA.len() + bufB.len(); steps > avail {
			steps = avail
		}
		if resident := bufA.len() + bufB.len() + steps; resident > stats.MaxResident {
			stats.MaxResident = resident
		}

		// Steps 2–3: in-window parallel merge, written straight to the
		// output segment ("write the results out to memory").
		usedA, usedB := mergeWindow(bufA, bufB, out[done:done+steps], p)
		bufA.drop(usedA)
		bufB.drop(usedB)
		done += steps
		stats.Windows++
	}
	return stats
}

// mergeWindow merges exactly len(window) steps from the staged buffers into
// window using p workers, and reports how many elements of each buffer were
// consumed. It is Theorem 16 in code: the staged prefixes are long enough
// for every in-window diagonal.
func mergeWindow[T cmp.Ordered](bufA, bufB *ring[T], window []T, p int) (usedA, usedB int) {
	steps := len(window)
	if p > steps {
		p = steps
	}
	if p <= 1 {
		ua, ub := ringMergeSteps(bufA, bufB, 0, 0, steps, window)
		return ua, ub
	}
	var wg sync.WaitGroup
	wg.Add(p)
	// The window-final co-rank doubles as the consumption count; find it
	// once on the coordinating goroutine while workers handle the interior.
	endA, endB := ringSearchDiagonal(bufA, bufB, steps)
	for i := 0; i < p; i++ {
		go func(i int) {
			defer wg.Done()
			lo := i * steps / p
			hi := (i + 1) * steps / p
			var sa, sb int
			if i == 0 {
				sa, sb = 0, 0
			} else {
				sa, sb = ringSearchDiagonal(bufA, bufB, lo)
			}
			ringMergeSteps(bufA, bufB, sa, sb, hi-lo, window[lo:hi])
		}(i)
	}
	wg.Wait()
	return endA, endB
}

// ringSearchDiagonal is core.SearchDiagonal transplanted onto the cyclic
// staging buffers: find (i, j), i+j = k, with bufA[i-1] <= bufB[j] and
// bufB[j-1] < bufA[i] (ties to a).
func ringSearchDiagonal[T cmp.Ordered](bufA, bufB *ring[T], k int) (int, int) {
	lo := k - bufB.len()
	if lo < 0 {
		lo = 0
	}
	hi := k
	if hi > bufA.len() {
		hi = bufA.len()
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bufA.at(mid) <= bufB.at(k-mid-1) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, k - lo
}

// ringMergeSteps merges exactly steps elements starting from staged
// co-ranks (i, j) into dst, returning the final co-ranks.
func ringMergeSteps[T cmp.Ordered](bufA, bufB *ring[T], i, j, steps int, dst []T) (int, int) {
	na, nb := bufA.len(), bufB.len()
	k := 0
	for k < steps && i < na && j < nb {
		av, bv := bufA.at(i), bufB.at(j)
		if av <= bv {
			dst[k] = av
			i++
		} else {
			dst[k] = bv
			j++
		}
		k++
	}
	for k < steps && i < na {
		dst[k] = bufA.at(i)
		i++
		k++
	}
	for k < steps && j < nb {
		dst[k] = bufB.at(j)
		j++
		k++
	}
	return i, j
}
