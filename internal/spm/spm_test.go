package spm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

func TestRingBasics(t *testing.T) {
	r := newRing[int32](5) // rounds to capacity 8
	if len(r.buf) != 8 {
		t.Fatalf("capacity %d, want 8", len(r.buf))
	}
	n := r.fill([]int32{1, 2, 3}, 3)
	if n != 3 || r.len() != 3 {
		t.Fatalf("fill: n=%d len=%d", n, r.len())
	}
	r.drop(2)
	if r.len() != 1 || r.at(0) != 3 {
		t.Fatalf("after drop: len=%d at0=%d", r.len(), r.at(0))
	}
	// Wrap-around fill: head is at 2, so filling 7 wraps past the end.
	n = r.fill([]int32{4, 5, 6, 7, 8, 9, 10}, 7)
	if n != 7 || r.len() != 8 {
		t.Fatalf("wrap fill: n=%d len=%d", n, r.len())
	}
	for i := 0; i < 8; i++ {
		if r.at(i) != int32(3+i) {
			t.Fatalf("at(%d) = %d, want %d", i, r.at(i), 3+i)
		}
	}
	// Full buffer accepts nothing more.
	if n = r.fill([]int32{99}, 1); n != 0 {
		t.Fatalf("overfull fill accepted %d", n)
	}
	// want is also clamped by source length.
	r.drop(8)
	if n = r.fill([]int32{1}, 5); n != 1 {
		t.Fatalf("short source fill: %d", n)
	}
}

func TestMergeMatchesReferenceAcrossConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for _, window := range []int{1, 2, 7, 16, 64, 1000} {
		for _, p := range []int{1, 2, 4, 8} {
			for trial := 0; trial < 8; trial++ {
				kind := workload.Kinds()[trial%len(workload.Kinds())]
				na, nb := rng.Intn(800), rng.Intn(800)
				a, b := workload.Pair(kind, na, nb, int64(trial))
				out := make([]int32, na+nb)
				Merge(a, b, out, Config{Window: window, Workers: p})
				if !verify.Equal(out, verify.ReferenceMerge(a, b)) {
					t.Fatalf("kind=%v L=%d p=%d na=%d nb=%d: mismatch", kind, window, p, na, nb)
				}
			}
		}
	}
}

func TestMergeDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	a := workload.SortedUniform32(rng, 5000)
	b := workload.SortedUniform32(rng, 5000)
	out := make([]int32, 10000)
	stats := Merge(a, b, out, Config{}) // default window, one worker
	if !verify.IsMergeOf(out, a, b) {
		t.Fatal("default config merge incorrect")
	}
	if want := (10000 + DefaultWindow - 1) / DefaultWindow; stats.Windows != want {
		t.Errorf("windows = %d, want %d", stats.Windows, want)
	}
}

func TestMergeStats(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	a := workload.SortedUniform32(rng, 4000)
	b := workload.SortedUniform32(rng, 6000)
	l := 256
	stats := Merge(a, b, make([]int32, 10000), Config{Window: l, Workers: 4})
	if stats.StagedA != len(a) || stats.StagedB != len(b) {
		t.Errorf("staged %d/%d, want %d/%d", stats.StagedA, stats.StagedB, len(a), len(b))
	}
	// The paper's residency guarantee: never more than 3L live elements.
	if stats.MaxResident > 3*l {
		t.Errorf("resident %d exceeds 3L = %d", stats.MaxResident, 3*l)
	}
	if stats.Windows < 10000/l {
		t.Errorf("windows = %d, want >= %d", stats.Windows, 10000/l)
	}
}

func TestMergeWindowConsumptionDataDependent(t *testing.T) {
	// §IV.B Remark: the mix of consumed elements per window is data
	// dependent. With all of b greater than all of a, early windows consume
	// only a.
	a, b := workload.Pair(workload.AllBGreater, 512, 512, 3)
	out := make([]int32, 1024)
	stats := Merge(a, b, out, Config{Window: 128, Workers: 2})
	if !verify.IsMergeOf(out, a, b) {
		t.Fatal("merge incorrect")
	}
	if stats.Windows != 8 {
		t.Errorf("windows = %d", stats.Windows)
	}
}

func TestMergeEmptyAndTiny(t *testing.T) {
	var empty []int32
	Merge(empty, empty, nil, Config{Window: 4, Workers: 2})
	one := []int32{5}
	out := make([]int32, 1)
	Merge(one, empty, out, Config{Window: 4, Workers: 8})
	if out[0] != 5 {
		t.Fatal("single element merge")
	}
	out2 := make([]int32, 2)
	Merge(one, []int32{3}, out2, Config{Window: 1, Workers: 3})
	if out2[0] != 3 || out2[1] != 5 {
		t.Fatalf("pair merge: %v", out2)
	}
}

func TestMergePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on output length mismatch")
		}
	}()
	Merge([]int32{1}, []int32{2}, nil, Config{})
}

func TestMergeStability(t *testing.T) {
	// The segmented merge must preserve the tie-to-a rule across window
	// boundaries. Verified through values: with duplicate-heavy inputs the
	// output must be identical (not merely sorted) to the reference stable
	// merge — and we cross-check with a window cutting right through runs
	// of equal values.
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 50; trial++ {
		na, nb := rng.Intn(300), rng.Intn(300)
		a, b := workload.Pair(workload.Duplicates, na, nb, int64(trial))
		out := make([]int32, na+nb)
		Merge(a, b, out, Config{Window: 3 + trial%13, Workers: 1 + trial%4})
		if !verify.Equal(out, verify.ReferenceMerge(a, b)) {
			t.Fatalf("trial %d: tie handling diverged", trial)
		}
	}
}

func TestRingSearchMatchesCore(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 100; trial++ {
		na, nb := rng.Intn(64), rng.Intn(64)
		a := workload.SortedUniform32(rng, na)
		b := workload.SortedUniform32(rng, nb)
		ra, rb := newRing[int32](max(na, 1)), newRing[int32](max(nb, 1))
		ra.fill(a, na)
		rb.fill(b, nb)
		for k := 0; k <= na+nb; k++ {
			i, j := ringSearchDiagonal(ra, rb, k)
			if i+j != k {
				t.Fatalf("k=%d: off diagonal", k)
			}
			if i > 0 && j < nb && a[i-1] > b[j] {
				t.Fatalf("k=%d: invariant 1", k)
			}
			if j > 0 && i < na && b[j-1] >= a[i] {
				t.Fatalf("k=%d: invariant 2", k)
			}
		}
	}
}

func TestMergeQuick(t *testing.T) {
	sorted := func(raw []int32) []int32 {
		s := append([]int32(nil), raw...)
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return s
	}
	f := func(rawA, rawB []int32, lSeed, pSeed uint8) bool {
		a, b := sorted(rawA), sorted(rawB)
		out := make([]int32, len(a)+len(b))
		cfg := Config{Window: 1 + int(lSeed)%32, Workers: 1 + int(pSeed)%6}
		Merge(a, b, out, cfg)
		return verify.Equal(out, verify.ReferenceMerge(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}
