package spm

import "sync"

// MergeFunc is Merge under a caller-supplied strict weak ordering:
// less(x, y) reports whether x must sort before y. Stability matches
// Merge (ties to a, window boundaries preserved).
func MergeFunc[T any](a, b, out []T, cfg Config, less func(x, y T) bool) Stats {
	if len(out) != len(a)+len(b) {
		panic("spm: output length mismatch")
	}
	l := cfg.Window
	if l < 1 {
		l = DefaultWindow
	}
	p := cfg.Workers
	if p < 1 {
		p = 1
	}

	bufA := newRing[T](l)
	bufB := newRing[T](l)
	var stats Stats
	remA, remB := a, b
	done := 0
	total := len(out)
	for done < total {
		fetched := bufA.fill(remA, l-bufA.len())
		remA = remA[fetched:]
		stats.StagedA += fetched
		fetched = bufB.fill(remB, l-bufB.len())
		remB = remB[fetched:]
		stats.StagedB += fetched

		steps := l
		if avail := bufA.len() + bufB.len(); steps > avail {
			steps = avail
		}
		if resident := bufA.len() + bufB.len() + steps; resident > stats.MaxResident {
			stats.MaxResident = resident
		}

		usedA, usedB := mergeWindowFunc(bufA, bufB, out[done:done+steps], p, less)
		bufA.drop(usedA)
		bufB.drop(usedB)
		done += steps
		stats.Windows++
	}
	return stats
}

func mergeWindowFunc[T any](bufA, bufB *ring[T], window []T, p int, less func(x, y T) bool) (usedA, usedB int) {
	steps := len(window)
	if p > steps {
		p = steps
	}
	if p <= 1 {
		return ringMergeStepsFunc(bufA, bufB, 0, 0, steps, window, less)
	}
	var wg sync.WaitGroup
	wg.Add(p)
	endA, endB := ringSearchDiagonalFunc(bufA, bufB, steps, less)
	for i := 0; i < p; i++ {
		go func(i int) {
			defer wg.Done()
			lo := i * steps / p
			hi := (i + 1) * steps / p
			var sa, sb int
			if i > 0 {
				sa, sb = ringSearchDiagonalFunc(bufA, bufB, lo, less)
			}
			ringMergeStepsFunc(bufA, bufB, sa, sb, hi-lo, window[lo:hi], less)
		}(i)
	}
	wg.Wait()
	return endA, endB
}

func ringSearchDiagonalFunc[T any](bufA, bufB *ring[T], k int, less func(x, y T) bool) (int, int) {
	lo := k - bufB.len()
	if lo < 0 {
		lo = 0
	}
	hi := k
	if hi > bufA.len() {
		hi = bufA.len()
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		// bufA[mid] <= bufB[k-mid-1]  <=>  !(bufB[k-mid-1] < bufA[mid])
		if !less(bufB.at(k-mid-1), bufA.at(mid)) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, k - lo
}

func ringMergeStepsFunc[T any](bufA, bufB *ring[T], i, j, steps int, dst []T, less func(x, y T) bool) (int, int) {
	na, nb := bufA.len(), bufB.len()
	k := 0
	for k < steps && i < na && j < nb {
		av, bv := bufA.at(i), bufB.at(j)
		if less(bv, av) {
			dst[k] = bv
			j++
		} else {
			dst[k] = av
			i++
		}
		k++
	}
	for k < steps && i < na {
		dst[k] = bufA.at(i)
		i++
		k++
	}
	for k < steps && j < nb {
		dst[k] = bufB.at(j)
		j++
		k++
	}
	return i, j
}
