package spm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

func TestMergeFuncAgreesWithOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(140))
	less := func(x, y int32) bool { return x < y }
	for trial := 0; trial < 60; trial++ {
		kind := workload.Kinds()[trial%len(workload.Kinds())]
		na, nb := rng.Intn(500), rng.Intn(500)
		a, b := workload.Pair(kind, na, nb, int64(trial))
		cfg := Config{Window: 1 + rng.Intn(64), Workers: 1 + rng.Intn(5)}
		o1 := make([]int32, na+nb)
		o2 := make([]int32, na+nb)
		s1 := Merge(a, b, o1, cfg)
		s2 := MergeFunc(a, b, o2, cfg, less)
		if !verify.Equal(o1, o2) {
			t.Fatalf("kind=%v cfg=%+v: outputs differ", kind, cfg)
		}
		if s1 != s2 {
			t.Fatalf("kind=%v cfg=%+v: stats differ: %+v vs %+v", kind, cfg, s1, s2)
		}
	}
}

func TestMergeFuncStability(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for trial := 0; trial < 40; trial++ {
		na, nb := rng.Intn(300), rng.Intn(300)
		a := verify.Tag(workload.SortedUniform(rng, na, 6), 0)
		b := verify.Tag(workload.SortedUniform(rng, nb, 6), 1)
		out := make([]verify.Tagged, na+nb)
		MergeFunc(a, b, out, Config{Window: 3 + trial%17, Workers: 1 + trial%4}, verify.TaggedLess)
		if !verify.StableMergeOrder(out) {
			t.Fatalf("trial %d: segmented func merge unstable", trial)
		}
	}
}

func TestMergeFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MergeFunc([]int32{1}, []int32{2}, nil, Config{}, func(x, y int32) bool { return x < y })
}

func TestMergeFuncQuick(t *testing.T) {
	less := func(x, y int32) bool { return x < y }
	sorted := func(raw []int32) []int32 {
		s := append([]int32(nil), raw...)
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return s
	}
	f := func(rawA, rawB []int32, lSeed, pSeed uint8) bool {
		a, b := sorted(rawA), sorted(rawB)
		out := make([]int32, len(a)+len(b))
		MergeFunc(a, b, out, Config{Window: 1 + int(lSeed)%24, Workers: 1 + int(pSeed)%5}, less)
		return verify.Equal(out, verify.ReferenceMerge(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
