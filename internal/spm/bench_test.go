package spm

import (
	"fmt"
	"testing"

	"mergepath/internal/workload"
)

func BenchmarkMergeWindows(b *testing.B) {
	const n = 1 << 20
	x, y := workload.Pair(workload.Uniform, n, n, 1)
	out := make([]int32, 2*n)
	for _, window := range []int{512, 2048, 8192, 32768} {
		for _, p := range []int{1, 4} {
			b.Run(fmt.Sprintf("L=%d/p=%d", window, p), func(b *testing.B) {
				b.SetBytes(int64(2*n) * 4)
				for i := 0; i < b.N; i++ {
					Merge(x, y, out, Config{Window: window, Workers: p})
				}
			})
		}
	}
}

func BenchmarkMergeFuncOverhead(b *testing.B) {
	// The price of the comparison-function indirection vs the Ordered path.
	const n = 1 << 19
	x, y := workload.Pair(workload.Uniform, n, n, 2)
	out := make([]int32, 2*n)
	cfg := Config{Window: 4096, Workers: 1}
	b.Run("ordered", func(b *testing.B) {
		b.SetBytes(int64(2*n) * 4)
		for i := 0; i < b.N; i++ {
			Merge(x, y, out, cfg)
		}
	})
	b.Run("func", func(b *testing.B) {
		b.SetBytes(int64(2*n) * 4)
		less := func(a, c int32) bool { return a < c }
		for i := 0; i < b.N; i++ {
			MergeFunc(x, y, out, cfg, less)
		}
	})
}
