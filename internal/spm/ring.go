package spm

// ring is the cyclic staging buffer of Algorithm 2: fetched input elements
// are appended at the tail, consumed elements are dropped from the head,
// and the buffer is never compacted — exactly the paper's "overwriting the
// used elements of the respective arrays (cyclic buffer)". Capacity is
// rounded to a power of two so logical indexing is a mask, not a modulo.
type ring[T any] struct {
	buf  []T
	mask int
	head int // physical index of logical element 0
	n    int // number of staged elements
}

func newRing[T any](capacity int) *ring[T] {
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &ring[T]{buf: make([]T, size), mask: size - 1}
}

// at returns staged element i (0 <= i < n) without consuming it.
func (r *ring[T]) at(i int) T { return r.buf[(r.head+i)&r.mask] }

// len reports the number of staged elements.
func (r *ring[T]) len() int { return r.n }

// fill appends up to want elements from src, returning how many were
// staged (bounded by free capacity and len(src)).
func (r *ring[T]) fill(src []T, want int) int {
	if free := len(r.buf) - r.n; want > free {
		want = free
	}
	if want > len(src) {
		want = len(src)
	}
	tail := (r.head + r.n) & r.mask
	first := len(r.buf) - tail
	if first > want {
		first = want
	}
	copy(r.buf[tail:tail+first], src[:first])
	copy(r.buf[:want-first], src[first:want])
	r.n += want
	return want
}

// drop consumes k elements from the head. k beyond the staged count
// would silently corrupt head/n (the mask wraps, n goes negative, and
// every later at/fill reads garbage), so it is a loud invariant panic
// instead.
func (r *ring[T]) drop(k int) {
	if k < 0 || k > r.n {
		panic("spm: ring drop out of range: k exceeds staged elements")
	}
	r.head = (r.head + k) & r.mask
	r.n -= k
}
