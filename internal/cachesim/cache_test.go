package cachesim

import "testing"

func TestConfigSets(t *testing.T) {
	cases := []struct {
		cfg  Config
		want int
	}{
		{Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8}, 64},
		{Config{SizeBytes: 1 << 10, LineBytes: 64, Ways: 1}, 16},  // direct mapped
		{Config{SizeBytes: 1 << 10, LineBytes: 64, Ways: 0}, 1},   // fully associative
		{Config{SizeBytes: 1 << 10, LineBytes: 64, Ways: 100}, 1}, // clamped to capacity
	}
	for _, c := range cases {
		if got := c.cfg.Sets(); got != c.want {
			t.Errorf("%+v: sets=%d want %d", c.cfg, got, c.want)
		}
	}
}

func TestNewCachePanics(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero-line":    {SizeBytes: 1024, LineBytes: 0, Ways: 1},
		"nonpow2-line": {SizeBytes: 1024, LineBytes: 48, Ways: 1},
		"tiny":         {SizeBytes: 32, LineBytes: 64, Ways: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			NewCache(cfg)
		}()
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(Config{SizeBytes: 256, LineBytes: 64, Ways: 2}) // 2 sets x 2 ways
	if c.Lookup(0, false) {
		t.Fatal("cold cache hit")
	}
	c.Insert(0, false)
	if !c.Lookup(0, false) {
		t.Fatal("miss after insert")
	}
	if !c.Lookup(63, false) {
		t.Fatal("same line, different byte: should hit")
	}
	if c.Lookup(64, false) {
		t.Fatal("next line should miss")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 ways, 2 sets of 64B lines: lines 0,2,4 all map to set 0.
	c := NewCache(Config{SizeBytes: 256, LineBytes: 64, Ways: 2})
	c.Insert(0*64, false)
	c.Insert(2*64, false)
	c.Lookup(0*64, false) // touch line 0: line 2 becomes LRU
	evID, _, evicted := c.Insert(4*64, false)
	if !evicted || evID != 2 {
		t.Fatalf("evicted id=%d evicted=%v, want line 2", evID, evicted)
	}
	if !c.Contains(0) || c.Contains(2*64) || !c.Contains(4*64) {
		t.Fatal("post-eviction residency wrong")
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c := NewCache(Config{SizeBytes: 128, LineBytes: 64, Ways: 1}) // direct mapped, 2 sets
	c.Insert(0, true)                                             // dirty
	_, dirty, evicted := c.Insert(128, false)                     // same set (line 2 maps to set 0)
	if !evicted || !dirty {
		t.Fatalf("expected dirty eviction, got evicted=%v dirty=%v", evicted, dirty)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks=%d", c.Stats().Writebacks)
	}
}

func TestInvalidateAndClean(t *testing.T) {
	c := NewCache(Config{SizeBytes: 256, LineBytes: 64, Ways: 2})
	c.Insert(0, true)
	present, dirty := c.InvalidateLine(0)
	if !present || !dirty {
		t.Fatalf("invalidate: present=%v dirty=%v", present, dirty)
	}
	if c.Contains(0) {
		t.Fatal("line survived invalidation")
	}
	if present, _ := c.InvalidateLine(0); present {
		t.Fatal("double invalidation reported presence")
	}
	c.Insert(64, true)
	present, wasDirty := c.CleanLine(1)
	if !present || !wasDirty {
		t.Fatalf("clean: present=%v wasDirty=%v", present, wasDirty)
	}
	if _, wasDirty := c.CleanLine(1); wasDirty {
		t.Fatal("clean twice reported dirty twice")
	}
}

func TestFullyAssociativeNoConflicts(t *testing.T) {
	// 16 lines fully associative: 16 distinct lines all fit regardless of
	// address bits.
	c := NewCache(Config{SizeBytes: 1024, LineBytes: 64, Ways: 0})
	for i := 0; i < 16; i++ {
		addr := uint64(i) * 4096 // would all collide in a direct-mapped cache
		c.Insert(addr, false)
	}
	for i := 0; i < 16; i++ {
		if !c.Contains(uint64(i) * 4096) {
			t.Fatalf("line %d missing from fully associative cache", i)
		}
	}
}

func TestDirectMappedConflicts(t *testing.T) {
	c := NewCache(Config{SizeBytes: 1024, LineBytes: 64, Ways: 1})
	c.Insert(0, false)
	c.Insert(1024, false) // same set in a 1KB direct-mapped cache
	if c.Contains(0) {
		t.Fatal("conflicting line should have evicted line 0")
	}
}
