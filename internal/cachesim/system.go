package cachesim

import (
	"fmt"

	"mergepath/internal/trace"
)

// SystemConfig describes a multi-core memory system: every core gets its
// own private hierarchy (innermost level first), all cores share an
// optional outer level, and misses beyond that go to memory.
type SystemConfig struct {
	Cores   int
	Private []Config // per-core levels, innermost (L1) first; may be empty
	Shared  *Config  // shared last-level cache; nil means none
}

// SystemStats aggregates a replay.
type SystemStats struct {
	Accesses      uint64
	PrivateHits   []uint64 // per private level, summed over cores
	PrivateMisses []uint64
	SharedHits    uint64
	SharedMisses  uint64
	MemoryReads   uint64 // fills from memory
	MemoryWrites  uint64 // dirty writebacks reaching memory
	Invalidations uint64 // private lines killed by remote writes
	Downgrades    uint64 // dirty private lines cleaned by remote reads
	CoherenceWBs  uint64 // writebacks forced by coherence (subset of above)
}

// MissRate returns misses-at-the-innermost-level per access.
func (s SystemStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	if len(s.PrivateMisses) > 0 {
		return float64(s.PrivateMisses[0]) / float64(s.Accesses)
	}
	return float64(s.SharedMisses) / float64(s.Accesses)
}

// MemoryTraffic returns total line transfers to/from memory.
func (s SystemStats) MemoryTraffic() uint64 { return s.MemoryReads + s.MemoryWrites }

func (s SystemStats) String() string {
	return fmt.Sprintf("accesses=%d l1miss=%.4f sharedMiss=%d memRd=%d memWr=%d inval=%d downgrade=%d",
		s.Accesses, s.MissRate(), s.SharedMisses, s.MemoryReads, s.MemoryWrites, s.Invalidations, s.Downgrades)
}

// dirEntry tracks which cores hold a line, for coherence.
type dirEntry struct {
	sharers uint64 // bitmask over cores
}

// System is the multi-core simulator.
type System struct {
	cfg     SystemConfig
	private [][]*Cache // [core][level]
	shared  *Cache
	dir     map[uint64]*dirEntry // line id -> sharers (line size = innermost level's)
	lineSz  int
	stats   SystemStats
	perCore []CoreStats
}

// NewSystem builds a system. All private levels and the shared level must
// use the same line size (real systems usually do; it keeps the directory
// well-defined).
func NewSystem(cfg SystemConfig) *System {
	if cfg.Cores < 1 {
		panic("cachesim: need at least one core")
	}
	if cfg.Cores > 64 {
		panic("cachesim: directory bitmask supports at most 64 cores")
	}
	if len(cfg.Private) == 0 && cfg.Shared == nil {
		panic("cachesim: system needs at least one cache level")
	}
	lineSz := 0
	check := func(c Config) {
		if lineSz == 0 {
			lineSz = c.LineBytes
		} else if c.LineBytes != lineSz {
			panic("cachesim: all levels must share a line size")
		}
	}
	for _, c := range cfg.Private {
		check(c)
	}
	if cfg.Shared != nil {
		check(*cfg.Shared)
	}
	sys := &System{
		cfg:    cfg,
		dir:    make(map[uint64]*dirEntry),
		lineSz: lineSz,
	}
	sys.private = make([][]*Cache, cfg.Cores)
	for c := range sys.private {
		sys.private[c] = make([]*Cache, len(cfg.Private))
		for l, lc := range cfg.Private {
			sys.private[c][l] = NewCache(lc)
		}
	}
	if cfg.Shared != nil {
		sys.shared = NewCache(*cfg.Shared)
	}
	sys.stats.PrivateHits = make([]uint64, len(cfg.Private))
	sys.stats.PrivateMisses = make([]uint64, len(cfg.Private))
	sys.perCore = make([]CoreStats, cfg.Cores)
	return sys
}

// Access replays one data access by the given core.
func (s *System) Access(core int, addr uint64, write bool) {
	if core < 0 || core >= s.cfg.Cores {
		panic("cachesim: core index out of range")
	}
	s.stats.Accesses++
	id := addr >> log2(uint64(s.lineSz))

	// Coherence first: a write invalidates all other private copies; a read
	// downgrades a remote dirty copy (the owner writes back and keeps a
	// clean copy — MESI's M->S on a remote read).
	if len(s.cfg.Private) > 0 {
		if e := s.dir[id]; e != nil {
			if write {
				others := e.sharers &^ (1 << uint(core))
				for c := 0; others != 0; c++ {
					if others&(1<<uint(c)) == 0 {
						continue
					}
					others &^= 1 << uint(c)
					dirty := false
					for _, cache := range s.private[c] {
						if present, d := cache.InvalidateLine(id); present {
							s.stats.Invalidations++
							dirty = dirty || d
						}
					}
					if dirty {
						s.stats.CoherenceWBs++
						s.fillShared(id, true)
					}
				}
				e.sharers &= 1 << uint(core)
			} else {
				others := e.sharers &^ (1 << uint(core))
				for c := 0; others != 0; c++ {
					if others&(1<<uint(c)) == 0 {
						continue
					}
					others &^= 1 << uint(c)
					for _, cache := range s.private[c] {
						if present, wasDirty := cache.CleanLine(id); present && wasDirty {
							s.stats.Downgrades++
							s.stats.CoherenceWBs++
							s.fillShared(id, true)
						}
					}
				}
			}
		}
	}

	// Walk the private hierarchy innermost-out.
	levels := s.private[core]
	hitLevel := -1
	for l, cache := range levels {
		if cache.Lookup(addr, write) {
			s.stats.PrivateHits[l]++
			hitLevel = l
			break
		}
		s.stats.PrivateMisses[l]++
	}
	s.perCore[core].Accesses++
	if hitLevel != -1 {
		s.perCore[core].PrivateHits++
	} else {
		// Miss in all private levels: consult the shared level, then memory.
		// With private levels present the dirty data stays innermost, so the
		// shared copy is clean; with no private levels the shared level IS
		// the point of coherency and a write dirties it directly.
		sharedWrite := write && len(levels) == 0
		if s.shared != nil {
			if s.shared.Lookup(addr, sharedWrite) {
				s.stats.SharedHits++
				s.perCore[core].SharedHits++
			} else {
				s.stats.SharedMisses++
				s.stats.MemoryReads++
				s.perCore[core].MemoryReads++
				s.insertShared(addr, sharedWrite)
			}
		} else {
			s.stats.MemoryReads++
			s.perCore[core].MemoryReads++
		}
	}
	// Fill every private level above the hit (or all on a full miss).
	fillTo := hitLevel
	if fillTo == -1 {
		fillTo = len(levels)
	}
	for l := fillTo - 1; l >= 0; l-- {
		s.insertPrivate(core, l, addr, write)
	}
	if len(levels) > 0 {
		s.track(core, id)
	}
}

// insertPrivate places a line in one private level, spilling the victim to
// the next level (or the shared level / memory past the last).
func (s *System) insertPrivate(core, level int, addr uint64, write bool) {
	evID, evDirty, evicted := s.private[core][level].Insert(addr, write)
	if !evicted {
		return
	}
	if level+1 < len(s.private[core]) {
		// Victim moves outward one private level (exclusive-style spill).
		evAddr := evID << log2(uint64(s.lineSz))
		evID2, evDirty2, evicted2 := s.private[core][level+1].Insert(evAddr, evDirty)
		if evicted2 {
			s.spillFromLastPrivate(core, evID2, evDirty2, level+1)
		}
		return
	}
	s.spillFromLastPrivate(core, evID, evDirty, level)
}

// spillFromLastPrivate handles a victim leaving the outermost private
// level: dirty victims are written back to the shared level (or memory);
// either way the core no longer holds the line, so the directory is
// updated — unless the line is still resident in an inner level of the
// same core (possible with the non-inclusive spill), in which case
// ownership is retained.
func (s *System) spillFromLastPrivate(core int, id uint64, dirty bool, fromLevel int) {
	if dirty {
		s.fillShared(id, true)
	}
	for l := 0; l <= fromLevel; l++ {
		if s.private[core][l].Contains(id << log2(uint64(s.lineSz))) {
			return
		}
	}
	if e := s.dir[id]; e != nil {
		e.sharers &^= 1 << uint(core)
		if e.sharers == 0 {
			delete(s.dir, id)
		}
	}
}

// fillShared lodges a (possibly dirty) line in the shared level on behalf
// of a writeback; shared victims that are dirty count as memory writes.
func (s *System) fillShared(id uint64, dirty bool) {
	if s.shared == nil {
		if dirty {
			s.stats.MemoryWrites++
		}
		return
	}
	addr := id << log2(uint64(s.lineSz))
	// Writeback probes count in the shared Cache's own hit/miss counters but
	// not in SystemStats.SharedMisses, which tracks demand misses only.
	if s.shared.Lookup(addr, dirty) {
		return
	}
	s.insertShared(addr, dirty)
}

// insertShared inserts into the shared cache, emitting a memory write for a
// dirty victim.
func (s *System) insertShared(addr uint64, dirty bool) {
	if _, evDirty, evicted := s.shared.Insert(addr, dirty); evicted && evDirty {
		s.stats.MemoryWrites++
	}
}

// track records the core as a sharer of the line.
func (s *System) track(core int, id uint64) {
	e := s.dir[id]
	if e == nil {
		e = &dirEntry{}
		s.dir[id] = e
	}
	e.sharers |= 1 << uint(core)
}

// Run replays an event stream.
func (s *System) Run(events []trace.Event) {
	for _, e := range events {
		s.Access(int(e.Core), e.Addr, e.Write)
	}
}

// Stats returns the aggregate counters.
func (s *System) Stats() SystemStats { return s.stats }

// SharedStats exposes the shared level's raw counters (zero value if no
// shared level is configured).
func (s *System) SharedStats() CacheStats {
	if s.shared == nil {
		return CacheStats{}
	}
	return s.shared.Stats()
}

func log2(v uint64) uint {
	n := uint(0)
	for 1<<(n+1) <= v {
		n++
	}
	return n
}

// Flush drains every cache at the end of a replay, charging one memory
// write per dirty line so that runs of different lengths are comparable
// (without it, dirt still resident when the trace ends would never be
// accounted). The directory is cleared too; the system can be reused.
func (s *System) Flush() {
	for _, levels := range s.private {
		for _, c := range levels {
			s.stats.MemoryWrites += uint64(c.FlushDirty())
		}
	}
	if s.shared != nil {
		s.stats.MemoryWrites += uint64(s.shared.FlushDirty())
	}
	s.dir = make(map[uint64]*dirEntry)
}

// CoreStats counts one core's accesses and where they were served.
type CoreStats struct {
	Accesses    uint64
	PrivateHits uint64 // hits in any private level
	SharedHits  uint64
	MemoryReads uint64 // demand fills that went to memory
}

// PerCore returns each core's access/service counts, for timing models
// that need the slowest core (barrier semantics).
func (s *System) PerCore() []CoreStats {
	out := make([]CoreStats, len(s.perCore))
	copy(out, s.perCore)
	return out
}
